(** Machine model tests: description, list scheduler correctness
    (dependences and resources, checked on real and random programs),
    the ready heap's deterministic total order, bit-identity of the
    indexed DDG + heap scheduler with their preserved references,
    critical-path tiling across widths, timing construction. *)

open Util
module Ir = Spd_ir
module M = Spd_machine
module Ddg = Spd_analysis.Ddg
open Ir

let case name f = Alcotest.test_case name `Quick f
let qcase = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Description *)

let test_descr_table_matches_opcodes () =
  (* Table 6-1 as printed must agree with the authoritative encoding *)
  List.iter
    (fun mem_latency ->
      let table = M.Descr.table_6_1 ~mem_latency in
      let lat = Opcode.latency ~mem_latency in
      check_int "Integer multiplies"
        (List.assoc "Integer multiplies" table)
        (lat (Opcode.Ibin Opcode.Mul));
      check_int "Integer and FP divides"
        (List.assoc "Integer and FP divides" table)
        (lat (Opcode.Ibin Opcode.Div));
      check_int "FP compares"
        (List.assoc "FP compares" table)
        (lat (Opcode.Fcmp Opcode.Feq));
      check_int "Other ALU operations"
        (List.assoc "Other ALU operations" table)
        (lat (Opcode.Ibin Opcode.Add));
      check_int "Other FPU operations"
        (List.assoc "Other FPU operations" table)
        (lat (Opcode.Fbin Opcode.Fmul));
      check_int "Memory loads and stores"
        (List.assoc "Memory loads and stores" table)
        (lat Opcode.Load);
      check_int "Branches" (List.assoc "Branches" table) Opcode.branch_latency)
    [ 2; 6 ]

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let all_trees prog =
  let acc = ref [] in
  Prog.iter_trees (fun _ t -> acc := t :: !acc) prog;
  !acc

let test_schedule_valid_on_workloads () =
  List.iter
    (fun bench ->
      let w = Spd_workloads.Registry.by_name bench in
      let spec =
        Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ())
          Spd_harness.Pipeline.Spec (compile w.source)
      in
      List.iter
        (fun tree ->
          let g = Ddg.build ~mem_latency:2 tree in
          List.iter
            (fun fus ->
              let s = M.Scheduler.run ~fus g in
              if not (M.Scheduler.valid ~fus g s) then
                Alcotest.failf "%s %s: invalid %d-wide schedule" bench
                  tree.Tree.name fus)
            [ 1; 2; 5; 8 ])
        (all_trees spec.prog))
    [ "adi"; "fft"; "quick" ]

let test_schedule_matches_asap_when_unlimited () =
  let w = Spd_workloads.Registry.by_name "moment" in
  let prog = compile w.source in
  List.iter
    (fun tree ->
      let g = Ddg.build ~mem_latency:6 tree in
      let s = M.Scheduler.run g in
      let asap = Ddg.asap g in
      Array.iteri
        (fun node t ->
          if s.M.Scheduler.issue.(node) <> t then
            Alcotest.failf "%s: unlimited schedule differs from ASAP"
              tree.Tree.name)
        asap)
    (all_trees prog)

let test_schedule_length_bounds () =
  (* schedule length is at least the critical path and at least
     ceil(ops / width), and a very wide machine meets ASAP *)
  let w = Spd_workloads.Registry.by_name "bcuint" in
  let prog = compile w.source in
  List.iter
    (fun tree ->
      let g = Ddg.build ~mem_latency:2 tree in
      let n = Ddg.n_nodes g in
      let asap = Ddg.asap g in
      let crit = Array.fold_left max 0 asap + 1 in
      List.iter
        (fun fus ->
          let s = M.Scheduler.run ~fus g in
          check_bool "length >= critical path" true (s.M.Scheduler.length >= crit);
          check_bool "length >= ops/width" true
            (s.M.Scheduler.length >= (n + fus - 1) / fus))
        [ 1; 2; 4 ];
      let s = M.Scheduler.run ~fus:(max 1 n) g in
      check_int "width n meets the critical path" crit s.M.Scheduler.length)
    (all_trees prog)

(* Random-program property: schedules at every width respect dependences
   and resources. *)
let prop_schedule_valid_random =
  QCheck.Test.make ~name:"scheduler valid on random programs" ~count:15
    Gen_prog.arbitrary_source (fun src ->
      let spec =
        Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ())
          Spd_harness.Pipeline.Spec (compile src)
      in
      List.for_all
        (fun tree ->
          let g = Ddg.build ~mem_latency:2 tree in
          List.for_all
            (fun fus ->
              M.Scheduler.valid ~fus g (M.Scheduler.run ~fus g))
            [ 1; 3 ])
        (all_trees spec.prog))

(* ------------------------------------------------------------------ *)
(* Ready heap: deterministic total order *)

(* pop a heap dry, returning the node sequence *)
let drain h =
  let rec go acc =
    match M.Scheduler.Heap.pop h with
    | None -> List.rev acc
    | Some node -> go (node :: acc)
  in
  go []

let prop_heap_pop_order =
  QCheck.Test.make ~name:"heap pops (priority desc, node asc)" ~count:200
    QCheck.(list (pair (int_bound 20) (int_bound 1000)))
    (fun pairs ->
      let h = M.Scheduler.Heap.create 4 in
      List.iter (fun (prio, node) -> M.Scheduler.Heap.push h ~prio node) pairs;
      (* the heap is a bag: popping must enumerate exactly the pushed
         multiset, sorted by the deterministic total order *)
      let expect =
        List.sort
          (fun (p1, n1) (p2, n2) ->
            if p1 <> p2 then compare p2 p1 else compare n1 n2)
          pairs
        |> List.map snd
      in
      let got = drain h in
      got = expect)

let prop_heap_interleaved =
  (* interleaved pushes and pops agree with a sorted-list model *)
  QCheck.Test.make ~name:"heap agrees with model under interleaving"
    ~count:200
    QCheck.(list (option (pair (int_bound 10) (int_bound 100))))
    (fun ops ->
      let h = M.Scheduler.Heap.create 1 in
      let model = ref [] in
      let order (p1, n1) (p2, n2) =
        if p1 <> p2 then compare p2 p1 else compare n1 n2
      in
      List.for_all
        (fun op ->
          match op with
          | Some (prio, node) ->
              M.Scheduler.Heap.push h ~prio node;
              model := List.merge order [ (prio, node) ] (List.sort order !model);
              true
          | None -> (
              match (M.Scheduler.Heap.pop h, !model) with
              | None, [] -> true
              | Some node, (p, n) :: tl ->
                  model := tl;
                  ignore p;
                  node = n
              | _ -> false))
        ops
      && M.Scheduler.Heap.size h = List.length !model)

let test_heap_deterministic_ties () =
  (* equal priorities yield ascending node indices, whatever the push
     order *)
  let h = M.Scheduler.Heap.create 2 in
  List.iter
    (fun node -> M.Scheduler.Heap.push h ~prio:7 node)
    [ 9; 3; 11; 1; 5 ];
  M.Scheduler.Heap.push h ~prio:9 4;
  (match M.Scheduler.Heap.peek h with
  | Some (9, 4) -> ()
  | _ -> Alcotest.fail "peek must see the highest-priority node");
  let popped = drain h in
  Alcotest.(check (list int)) "ties pop in node order" [ 4; 1; 3; 5; 9; 11 ]
    popped

(* ------------------------------------------------------------------ *)
(* Rewritten hot paths vs their preserved references *)

let ddg_equal (a : Ddg.t) (b : Ddg.t) =
  a.Ddg.preds = b.Ddg.preds
  && a.Ddg.succs = b.Ddg.succs
  && a.Ddg.node_lat = b.Ddg.node_lat
  && a.Ddg.n_insns = b.Ddg.n_insns
  && a.Ddg.n_exits = b.Ddg.n_exits

let schedule_equal (a : M.Scheduler.t) (b : M.Scheduler.t) =
  a.M.Scheduler.issue = b.M.Scheduler.issue
  && a.M.Scheduler.fu = b.M.Scheduler.fu
  && a.M.Scheduler.length = b.M.Scheduler.length

let prop_indexed_ddg_matches_reference =
  QCheck.Test.make ~name:"indexed DDG = reference all-pairs DDG" ~count:15
    Gen_prog.arbitrary_source (fun src ->
      let spec =
        Spd_harness.Pipeline.prepare
          ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ())
          Spd_harness.Pipeline.Spec (compile src)
      in
      List.for_all
        (fun tree ->
          List.for_all
            (fun mem_latency ->
              ddg_equal
                (Ddg.build ~mem_latency tree)
                (M.Scheduler.Reference.build_ddg ~mem_latency tree))
            [ 2; 6 ])
        (all_trees spec.prog))

let prop_heap_schedule_matches_reference =
  QCheck.Test.make ~name:"heap schedule = reference scan schedule" ~count:15
    Gen_prog.arbitrary_source (fun src ->
      let spec =
        Spd_harness.Pipeline.prepare
          ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ())
          Spd_harness.Pipeline.Spec (compile src)
      in
      List.for_all
        (fun tree ->
          let g = Ddg.build ~mem_latency:2 tree in
          List.for_all
            (fun fus ->
              schedule_equal (M.Scheduler.run ~fus g)
                (M.Scheduler.Reference.run ~fus g))
            [ 1; 2; 5 ])
        (all_trees spec.prog))

let test_heap_schedule_matches_reference_on_workloads () =
  List.iter
    (fun bench ->
      let w = Spd_workloads.Registry.by_name bench in
      let spec =
        Spd_harness.Pipeline.prepare
          ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ())
          Spd_harness.Pipeline.Spec (compile w.source)
      in
      List.iter
        (fun tree ->
          if
            not
              (ddg_equal
                 (Ddg.build ~mem_latency:2 tree)
                 (M.Scheduler.Reference.build_ddg ~mem_latency:2 tree))
          then
            Alcotest.failf "%s %s: indexed DDG differs from reference" bench
              tree.Tree.name;
          let g = Ddg.build ~mem_latency:2 tree in
          List.iter
            (fun fus ->
              if
                not
                  (schedule_equal (M.Scheduler.run ~fus g)
                     (M.Scheduler.Reference.run ~fus g))
              then
                Alcotest.failf "%s %s: %d-wide schedule differs from reference"
                  bench tree.Tree.name fus)
            [ 1; 2; 5; 8 ])
        (all_trees spec.prog))
    [ "adi"; "espresso"; "tree" ]

(* ------------------------------------------------------------------ *)
(* Critical-path attribution across widths *)

let test_critpath_tiles_across_widths () =
  (* Critpath.steps must tile [0, span) exactly at every width, not only
     the width spd explain uses *)
  let w = Spd_workloads.Registry.by_name "quick" in
  let spec =
    Spd_harness.Pipeline.prepare
      ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ())
      Spd_harness.Pipeline.Spec (compile w.source)
  in
  List.iter
    (fun tree ->
      let g = Ddg.build ~mem_latency:2 tree in
      List.iter
        (fun width ->
          let s = M.Schedule.of_ddg ~width g in
          let cp = M.Critpath.analyze s in
          let steps =
            List.sort
              (fun (a : M.Critpath.step) b -> compare a.lo b.lo)
              cp.M.Critpath.steps
          in
          let last =
            List.fold_left
              (fun edge (st : M.Critpath.step) ->
                check_int
                  (Printf.sprintf "%s width step contiguous" tree.Tree.name)
                  edge st.lo;
                st.hi)
              0 steps
          in
          check_int
            (Printf.sprintf "%s: steps tile the makespan" tree.Tree.name)
            cp.M.Critpath.span last;
          check_int
            (Printf.sprintf "%s: category totals sum to makespan"
               tree.Tree.name)
            cp.M.Critpath.span
            (List.fold_left (fun acc (_, n) -> acc + n) 0
               cp.M.Critpath.by_category))
        [ M.Descr.Fus 1; M.Descr.Fus 3; M.Descr.Fus 8; M.Descr.Infinite ])
    (all_trees spec.prog)

(* ------------------------------------------------------------------ *)
(* Timing builder *)

let test_cycles_decrease_with_width () =
  let w = Spd_workloads.Registry.by_name "adi" in
  let prog = compile w.source in
  let naive =
    Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ()) Spd_harness.Pipeline.Naive
      prog
  in
  let c width = Spd_harness.Pipeline.cycles naive ~width in
  let c1 = c (M.Descr.Fus 1) in
  let c8 = c (M.Descr.Fus 8) in
  let cinf = c M.Descr.Infinite in
  check_bool "8 FUs faster than 1 FU" true (c8 < c1);
  check_bool "infinite at least as fast as 8" true (cinf <= c8)

let tests =
  [
    case "Table 6-1 matches opcode latencies" test_descr_table_matches_opcodes;
    case "schedules valid on workloads" test_schedule_valid_on_workloads;
    case "unlimited schedule = ASAP" test_schedule_matches_asap_when_unlimited;
    case "schedule length bounds" test_schedule_length_bounds;
    qcase prop_schedule_valid_random;
    qcase prop_heap_pop_order;
    qcase prop_heap_interleaved;
    case "heap breaks ties deterministically" test_heap_deterministic_ties;
    qcase prop_indexed_ddg_matches_reference;
    qcase prop_heap_schedule_matches_reference;
    case "heap schedules match reference on workloads"
      test_heap_schedule_matches_reference_on_workloads;
    case "critical path tiles the makespan at every width"
      test_critpath_tiles_across_widths;
    case "cycles decrease with width" test_cycles_decrease_with_width;
  ]

(* ------------------------------------------------------------------ *)
(* Hardware dynamic disambiguation baseline *)

let test_dynamic_bounds () =
  (* a huge window with dynamic address checks can only relax constraints:
     cycles(dynamic) <= cycles(static timing); and a window of 0 relaxes
     nothing: cycles equal the static machine's *)
  let w = Spd_workloads.Registry.by_name "moment" in
  let static =
    Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:6 ()) Spd_harness.Pipeline.Static
      (compile w.source)
  in
  let width = Spd_machine.Descr.Fus 5 in
  let base = Spd_harness.Pipeline.cycles static ~width in
  let dyn window =
    M.Dynamic.cycles ~window ~width ~mem_latency:6 static.prog
  in
  check_int "window 0 = static machine" base (dyn 0);
  check_bool "window 64 no slower" true (dyn 64 <= base);
  check_bool "monotone in window" true (dyn 64 <= dyn 2)

let test_dynamic_beats_perfect_per_traversal () =
  (* 'tree' aliases on some traversals but not others: per-traversal
     adaptivity can beat even the PERFECT static oracle *)
  let w = Spd_workloads.Registry.by_name "tree" in
  let lowered = compile w.source in
  let static =
    Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:6 ()) Spd_harness.Pipeline.Static lowered
  in
  let perfect =
    Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:6 ()) Spd_harness.Pipeline.Perfect lowered
  in
  let width = Spd_machine.Descr.Fus 5 in
  let hw = M.Dynamic.cycles ~window:32 ~width ~mem_latency:6 static.prog in
  check_bool "HW window-32 at least matches PERFECT on tree" true
    (hw <= Spd_harness.Pipeline.cycles perfect ~width)

let more_tests =
  [
    case "dynamic baseline bounds" test_dynamic_bounds;
    case "dynamic adaptivity vs PERFECT" test_dynamic_beats_perfect_per_traversal;
  ]

let tests = tests @ more_tests
