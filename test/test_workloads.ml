(** Workload tests: every benchmark's simulated output is checked against
    an independent OCaml reference implementation of the same algorithm,
    and all four disambiguation pipelines are validated on every
    benchmark. *)

open Util
module Ir = Spd_ir
module W = Spd_workloads
module Harness = Spd_harness

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* OCaml mirrors of the mini-C math helpers (same series, same order of
   operations, so results agree bit-for-bit). *)

let reduce_angle x =
  let k = int_of_float (x /. 6.283185307179586) in
  let x = x -. (float_of_int k *. 6.283185307179586) in
  let x = if x > 3.141592653589793 then x -. 6.283185307179586 else x in
  if x < -3.141592653589793 then x +. 6.283185307179586 else x

let my_sin xin =
  let x = reduce_angle xin in
  let x2 = x *. x in
  let term = ref x and sum = ref x in
  for k = 1 to 9 do
    let kf = float_of_int k in
    term := -. !term *. x2 /. ((2.0 *. kf) *. ((2.0 *. kf) +. 1.0));
    sum := !sum +. !term
  done;
  !sum

let my_cos xin =
  let x = reduce_angle xin in
  let x2 = x *. x in
  let term = ref 1.0 and sum = ref 1.0 in
  for k = 1 to 9 do
    let kf = float_of_int k in
    term := -. !term *. x2 /. (((2.0 *. kf) -. 1.0) *. (2.0 *. kf));
    sum := !sum +. !term
  done;
  !sum

let my_sqrt x =
  if x <= 0.0 then 0.0
  else begin
    let r = ref x in
    if !r > 1.0 then r := (x *. 0.5) +. 0.5;
    for _ = 0 to 29 do
      r := 0.5 *. (!r +. (x /. !r))
    done;
    !r
  end

let fft_ref xr xi n isign =
  let j = ref 0 in
  for i = 0 to n - 1 do
    if i < !j then begin
      let tr = xr.(i) in
      xr.(i) <- xr.(!j);
      xr.(!j) <- tr;
      let ti = xi.(i) in
      xi.(i) <- xi.(!j);
      xi.(!j) <- ti
    end;
    let k = ref (n / 2) in
    while !k >= 1 && !j >= !k do
      j := !j - !k;
      k := !k / 2
    done;
    j := !j + !k
  done;
  let mmax = ref 1 in
  while !mmax < n do
    let istep = !mmax * 2 in
    let theta = float_of_int isign *. 3.141592653589793 /. float_of_int !mmax in
    let wtemp = my_sin (0.5 *. theta) in
    let wpr = -2.0 *. wtemp *. wtemp in
    let wpi = my_sin theta in
    let wr = ref 1.0 and wi = ref 0.0 in
    for m = 0 to !mmax - 1 do
      let i = ref m in
      while !i < n do
        let j = !i + !mmax in
        let tr = (!wr *. xr.(j)) -. (!wi *. xi.(j)) in
        let ti = (!wr *. xi.(j)) +. (!wi *. xr.(j)) in
        xr.(j) <- xr.(!i) -. tr;
        xi.(j) <- xi.(!i) -. ti;
        xr.(!i) <- xr.(!i) +. tr;
        xi.(!i) <- xi.(!i) +. ti;
        i := !i + istep
      done;
      let wtemp = !wr in
      wr := (!wr *. wpr) -. (!wi *. wpi) +. !wr;
      wi := (!wi *. wpr) +. (wtemp *. wpi) +. !wi
    done;
    mmax := istep
  done

(* ------------------------------------------------------------------ *)
(* Reference implementations, one per workload, producing the expected
   printed output. *)

let ref_adi () =
  let n = 12 in
  let u = Array.make 144 0.0 and tmp = Array.make 144 0.0 in
  let aa = Array.make 12 0.0
  and bb = Array.make 12 0.0
  and cc = Array.make 12 0.0
  and rr = Array.make 12 0.0
  and xx = Array.make 12 0.0
  and gg = Array.make 12 0.0 in
  let trisolve a b c r x g n =
    let bet = ref b.(0) in
    x.(0) <- r.(0) /. !bet;
    for j = 1 to n - 1 do
      g.(j) <- c.(j - 1) /. !bet;
      bet := b.(j) -. (a.(j) *. g.(j));
      x.(j) <- (r.(j) -. (a.(j) *. x.(j - 1))) /. !bet
    done;
    for j = n - 2 downto 0 do
      x.(j) <- x.(j) -. (g.(j + 1) *. x.(j + 1))
    done
  in
  let fill_coef lam =
    for j = 0 to n - 1 do
      aa.(j) <- -.lam;
      bb.(j) <- 1.0 +. (2.0 *. lam);
      cc.(j) <- -.lam
    done
  in
  let row_sweep grid next lam =
    fill_coef lam;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        rr.(j) <- grid.((i * 12) + j);
        if i > 0 then rr.(j) <- rr.(j) +. (lam *. grid.(((i - 1) * 12) + j));
        if i < n - 1 then
          rr.(j) <- rr.(j) +. (lam *. grid.(((i + 1) * 12) + j));
        rr.(j) <- rr.(j) -. (2.0 *. lam *. grid.((i * 12) + j))
      done;
      trisolve aa bb cc rr xx gg n;
      for j = 0 to n - 1 do
        next.((i * 12) + j) <- xx.(j)
      done
    done
  in
  let col_sweep grid next lam =
    fill_coef lam;
    for j = 0 to n - 1 do
      for i = 0 to n - 1 do
        rr.(i) <- grid.((i * 12) + j);
        if j > 0 then rr.(i) <- rr.(i) +. (lam *. grid.((i * 12) + j - 1));
        if j < n - 1 then
          rr.(i) <- rr.(i) +. (lam *. grid.((i * 12) + j + 1));
        rr.(i) <- rr.(i) -. (2.0 *. lam *. grid.((i * 12) + j))
      done;
      trisolve aa bb cc rr xx gg n;
      for i = 0 to n - 1 do
        next.((i * 12) + j) <- xx.(i)
      done
    done
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      u.((i * 12) + j) <- 0.0;
      if i = 0 then u.((i * 12) + j) <- 1.0;
      if j = 0 then u.((i * 12) + j) <- 0.5
    done
  done;
  for _ = 0 to 3 do
    row_sweep u tmp 0.3;
    col_sweep tmp u 0.3
  done;
  let chk = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      chk := !chk +. (u.((i * 12) + j) *. float_of_int (i + (2 * j) + 1))
    done
  done;
  [ Ir.Value.Float !chk ]

let wt_table =
  [|
    1; 0; -3; 2; 0; 0; 0; 0; -3; 0; 9; -6; 2; 0; -6; 4;
    0; 0; 0; 0; 0; 0; 0; 0; 3; 0; -9; 6; -2; 0; 6; -4;
    0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 9; -6; 0; 0; -6; 4;
    0; 0; 3; -2; 0; 0; 0; 0; 0; 0; -9; 6; 0; 0; 6; -4;
    0; 0; 0; 0; 1; 0; -3; 2; -2; 0; 6; -4; 1; 0; -3; 2;
    0; 0; 0; 0; 0; 0; 0; 0; -1; 0; 3; -2; 1; 0; -3; 2;
    0; 0; 0; 0; 0; 0; 0; 0; 0; 0; -3; 2; 0; 0; 3; -2;
    0; 0; 0; 0; 0; 0; 3; -2; 0; 0; -6; 4; 0; 0; 3; -2;
    0; 1; -2; 1; 0; 0; 0; 0; 0; -3; 6; -3; 0; 2; -4; 2;
    0; 0; 0; 0; 0; 0; 0; 0; 0; 3; -6; 3; 0; -2; 4; -2;
    0; 0; 0; 0; 0; 0; 0; 0; 0; 0; -3; 3; 0; 0; 2; -2;
    0; 0; -1; 1; 0; 0; 0; 0; 0; 0; 3; -3; 0; 0; -2; 2;
    0; 0; 0; 0; 0; 1; -2; 1; 0; -2; 4; -2; 0; 1; -2; 1;
    0; 0; 0; 0; 0; 0; 0; 0; 0; -1; 2; -1; 0; 1; -2; 1;
    0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; -1; 0; 0; -1; 1;
    0; 0; 0; 0; 0; 0; -1; 1; 0; 0; 2; -2; 0; 0; -1; 1;
  |]

let ref_bcuint () =
  let yv = [| 0.0; 1.0; 2.0; 1.0 |] in
  let y1v = [| 0.0; 2.0; 2.0; 0.0 |] in
  let y2v = [| 1.0; 1.0; 3.0; 3.0 |] in
  let y12v = [| 0.0; 2.0; 2.0; 0.0 |] in
  let coef = Array.make 16 0.0 in
  let bcucof y y1 y2 y12 d1 d2 c =
    let x = Array.make 16 0.0 in
    let d1d2 = d1 *. d2 in
    for i = 0 to 3 do
      x.(i) <- y.(i);
      x.(i + 4) <- y1.(i) *. d1;
      x.(i + 8) <- y2.(i) *. d2;
      x.(i + 12) <- y12.(i) *. d1d2
    done;
    for l = 0 to 15 do
      let xx = ref 0.0 in
      for k = 0 to 15 do
        xx := !xx +. (float_of_int wt_table.((l * 16) + k) *. x.(k))
      done;
      c.(l) <- !xx
    done
  in
  let eval c t u =
    let ans = ref 0.0 in
    for i = 3 downto 0 do
      ans :=
        (t *. !ans)
        +. ((((c.((i * 4) + 3) *. u) +. c.((i * 4) + 2)) *. u)
            +. c.((i * 4) + 1))
           *. u
        +. c.((i * 4) + 0)
    done;
    !ans
  in
  let chk = ref 0.0 in
  for pt = 0 to 23 do
    bcucof yv y1v y2v y12v 1.0 1.0 coef;
    let t = float_of_int pt *. (1.0 /. 24.0) in
    let u = 1.0 -. (t *. 0.5) in
    let v = eval coef t u in
    chk := !chk +. (v *. float_of_int (pt + 1));
    for i = 0 to 3 do
      yv.(i) <- yv.(i) +. (v *. 0.001)
    done
  done;
  [ Ir.Value.Float !chk ]

let ref_fft () =
  let re = Array.init 64 (fun i ->
      my_sin (0.35 *. float_of_int i) +. (0.25 *. my_cos (1.1 *. float_of_int i)))
  in
  let im = Array.make 64 0.0 in
  fft_ref re im 64 1;
  let chk = ref 0.0 in
  for i = 0 to 63 do
    chk :=
      !chk
      +. (re.(i) *. float_of_int (i + 1) *. 0.01)
      +. (im.(i) *. 0.005 *. float_of_int i)
  done;
  fft_ref re im 64 (-1);
  chk := !chk +. (re.(5) /. 64.0) +. (re.(17) /. 64.0);
  [ Ir.Value.Float !chk ]

let ref_moment () =
  let data = Array.make 256 0.0 and weight = Array.make 256 0.0 in
  let seed = ref 13 in
  for i = 0 to 255 do
    seed := ((!seed * 1103515245) + 12345) mod 2147483648;
    data.(i) <- float_of_int (!seed mod 1000) *. 0.001;
    weight.(i) <- 1.0 +. (float_of_int (i mod 7) *. 0.125)
  done;
  let n = 256 in
  let nf = float_of_int n in
  let s = ref 0.0 in
  for j = 0 to n - 1 do
    s := !s +. data.(j)
  done;
  let ave = !s /. nf in
  let adev = ref 0.0
  and var = ref 0.0
  and skew = ref 0.0
  and curt = ref 0.0
  and ep = ref 0.0 in
  for j = 0 to n - 1 do
    let dev = data.(j) -. ave in
    ep := !ep +. dev;
    if dev < 0.0 then adev := !adev -. dev else adev := !adev +. dev;
    let p = dev *. dev in
    var := !var +. p;
    let p = p *. dev in
    skew := !skew +. p;
    let p = p *. dev in
    curt := !curt +. p
  done;
  adev := !adev /. nf;
  var := (!var -. (!ep *. !ep /. nf)) /. float_of_int (n - 1);
  let o = Array.make 6 0.0 in
  o.(0) <- ave;
  o.(1) <- !adev;
  o.(2) <- my_sqrt !var;
  o.(3) <- !var;
  if !var > 0.0 then begin
    o.(4) <- !skew /. (nf *. !var *. o.(2));
    o.(5) <- (!curt /. (nf *. !var *. !var)) -. 3.0
  end;
  let chk = ref 0.0 in
  for j = 0 to n - 1 do
    data.(j) <- (data.(j) -. o.(0)) /. o.(2);
    chk := !chk +. (data.(j) *. weight.(j))
  done;
  [ Ir.Value.Float o.(0); Ir.Value.Float o.(3); Ir.Value.Float !chk ]

let ref_smooft () =
  let sr = Array.make 64 0.0
  and si = Array.make 64 0.0
  and win = Array.make 64 0.0
  and orig = Array.make 64 0.0 in
  for i = 0 to 63 do
    sr.(i) <-
      my_sin (0.2 *. float_of_int i) +. (0.3 *. float_of_int (i mod 2)) -. 0.15;
    si.(i) <- 0.0;
    orig.(i) <- sr.(i);
    let f = if i > 32 then 64 - i else i in
    let c = my_cos (3.141592653589793 *. float_of_int f /. 32.0) in
    win.(i) <- 0.25 *. (1.0 +. c) *. (1.0 +. c)
  done;
  fft_ref sr si 64 1;
  for i = 0 to 63 do
    sr.(i) <- sr.(i) *. win.(i);
    si.(i) <- si.(i) *. win.(i)
  done;
  fft_ref sr si 64 (-1);
  for i = 0 to 63 do
    sr.(i) <- sr.(i) /. 64.0;
    si.(i) <- si.(i) /. 64.0
  done;
  let chk = ref 0.0 in
  for i = 0 to 63 do
    chk :=
      !chk
      +. ((sr.(i) -. orig.(i)) *. (sr.(i) -. orig.(i)))
      +. (sr.(i) *. 0.01 *. float_of_int i)
  done;
  [ Ir.Value.Float !chk ]

let ref_solvde () =
  let m = 32 in
  let ya = Array.make 32 0.0
  and yb = Array.make 32 0.0
  and e0 = Array.make 32 0.0
  and e1 = Array.make 32 0.0
  and scale = Array.make 32 0.0 in
  let h = 0.1 in
  for k = 0 to m - 1 do
    ya.(k) <- 0.1 *. float_of_int k *. h;
    yb.(k) <- 1.0;
    scale.(k) <- 1.0 -. (0.004 *. float_of_int k)
  done;
  let err = ref 1.0 and it = ref 0 in
  while !it < 12 && !err > 0.000001 do
    for k = 1 to m - 1 do
      e0.(k) <- ya.(k) -. ya.(k - 1) -. (0.5 *. h *. (yb.(k) +. yb.(k - 1)));
      e1.(k) <- yb.(k) -. yb.(k - 1) +. (0.5 *. h *. (ya.(k) +. ya.(k - 1)))
    done;
    for k = 1 to m - 1 do
      ya.(k) <- ya.(k) -. (0.8 *. e0.(k) *. scale.(k));
      yb.(k) <- yb.(k) -. (0.8 *. e1.(k) *. scale.(k))
    done;
    let e = ref 0.0 in
    for k = 1 to m - 1 do
      let a = if e0.(k) < 0.0 then -.e0.(k) else e0.(k) in
      if a > !e then e := a;
      let a = if e1.(k) < 0.0 then -.e1.(k) else e1.(k) in
      if a > !e then e := a
    done;
    err := !e;
    incr it
  done;
  let chk = ref (!err *. 1000.0) in
  for k = 0 to m - 1 do
    chk :=
      !chk
      +. (ya.(k) *. float_of_int (k + 1) *. 0.125)
      +. (yb.(k) *. 0.0625)
  done;
  [ Ir.Value.Float !chk; Ir.Value.Int !it ]

let ref_perm () =
  let permarray = Array.make 8 0 in
  let pctr = ref 0 in
  let swap a b =
    let t = permarray.(a) in
    permarray.(a) <- permarray.(b);
    permarray.(b) <- t
  in
  let rec permute n =
    incr pctr;
    if n <> 0 then begin
      permute (n - 1);
      for k = n - 1 downto 0 do
        swap n k;
        permute (n - 1);
        swap n k
      done
    end
  in
  let chk = ref 0 in
  for _ = 0 to 2 do
    for i = 0 to 7 do
      permarray.(i) <- i
    done;
    pctr := 0;
    permute 6;
    chk := !chk + !pctr
  done;
  for i = 0 to 7 do
    chk := !chk + (permarray.(i) * (i + 1))
  done;
  [ Ir.Value.Int !chk ]

let ref_queen () = [ Ir.Value.Int 92 ]

let ref_quick () =
  let a = Array.make 256 0 in
  let seed = ref 74755 in
  for i = 0 to 255 do
    seed := ((!seed * 1309) + 13849) mod 65536;
    a.(i) <- !seed
  done;
  Array.sort compare a;
  let chk = ref 0 in
  for i = 0 to 255 do
    chk := (!chk + (a.(i) * (i mod 17))) mod 1000000007
  done;
  [ Ir.Value.Int 1; Ir.Value.Int !chk ]

let ref_tree () =
  let a = Array.make 220 0 in
  let seed = ref 33 in
  for i = 0 to 219 do
    seed := ((!seed * 1309) + 13849) mod 65536;
    a.(i) <- !seed
  done;
  (* inorder traversal of a BST built by insertion order = stable sort by
     key with ties in insertion order *)
  let items = Array.mapi (fun i k -> (k, i)) a in
  Array.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) items;
  let chk = ref 0 in
  Array.iteri
    (fun order (k, _) -> chk := (!chk + (k * ((order mod 13) + 1))) mod 1000000007)
    items;
  [ Ir.Value.Int !chk ]

let ref_espresso () =
  let cover_a = Array.make 192 0 and cover_b = Array.make 192 0 in
  let seed = ref 99 in
  for i = 0 to 191 do
    seed := ((!seed * 1103515245) + 12345) mod 2147483648;
    cover_a.(i) <- !seed mod 65536;
    seed := ((!seed * 1103515245) + 12345) mod 2147483648;
    cover_b.(i) <- !seed mod 65536
  done;
  let keep = Array.make 48 1 in
  let popcount x =
    let c = ref 0 and x = ref x in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr c
    done;
    !c
  in
  let contains_cube a b ai bi =
    let ok = ref true in
    for w = 0 to 3 do
      if a.((ai * 4) + w) land b.((bi * 4) + w) <> b.((bi * 4) + w) then
        ok := false
    done;
    !ok
  in
  for i = 0 to 47 do
    for j = 0 to 47 do
      if i <> j && keep.(i) = 1 then
        if contains_cube cover_a cover_a i j then keep.(j) <- 0
    done
  done;
  let chk = ref 0 in
  for i = 0 to 46 do
    let d = ref 0 in
    for w = 0 to 3 do
      let v = cover_a.((i * 4) + w) land cover_b.(((i + 1) * 4) + w) in
      let v = (v lor (v lsr 1)) land 1431655765 in
      d := !d + 16 - popcount v
    done;
    chk := (!chk + (!d * (i + 3))) mod 1000000007
  done;
  let merged = Array.make 192 0 in
  for i = 0 to 46 do
    if keep.(i) = 1 then
      for w = 0 to 3 do
        merged.((i * 4) + w) <-
          cover_a.((i * 4) + w) lor cover_b.(((i + 1) * 4) + w);
        merged.((i * 4) + w) <-
          merged.((i * 4) + w) land (cover_a.((i * 4) + w) lor 1431655765)
      done
  done;
  for i = 0 to 46 do
    for w = 0 to 3 do
      chk := (!chk + merged.((i * 4) + w) + (keep.(i) * 7)) mod 1000000007
    done
  done;
  [ Ir.Value.Int !chk ]

let references =
  [
    ("adi", ref_adi);
    ("bcuint", ref_bcuint);
    ("fft", ref_fft);
    ("moment", ref_moment);
    ("smooft", ref_smooft);
    ("solvde", ref_solvde);
    ("perm", ref_perm);
    ("queen", ref_queen);
    ("quick", ref_quick);
    ("tree", ref_tree);
    ("espresso", ref_espresso);
  ]

(* ------------------------------------------------------------------ *)

let check_against_reference (w : W.Workload.t) () =
  let expected = (List.assoc w.name references) () in
  let got = (run_src w.source).output in
  check_int "output arity" (List.length expected) (List.length got);
  List.iter2
    (fun e g ->
      match (e, g) with
      | Ir.Value.Int a, Ir.Value.Int b -> check_int "int output" a b
      | Ir.Value.Float a, Ir.Value.Float b ->
          check_close (w.name ^ " float output") b a
      | _ -> Alcotest.failf "%s: output kind mismatch" w.name)
    expected got

(* All four pipelines behave identically on every workload (prepare's
   internal check raises on mismatch), and SpD finds opportunities on the
   NRC suite. *)
let check_pipelines (w : W.Workload.t) () =
  let lowered = compile w.source in
  let spec =
    Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ()) Spd_harness.Pipeline.Spec
      lowered
  in
  List.iter
    (fun k -> ignore (Harness.Pipeline.prepare ~config:(Harness.Pipeline.Config.v ~mem_latency:2 ()) k lowered))
    [ Harness.Pipeline.Naive; Harness.Pipeline.Static; Harness.Pipeline.Perfect ];
  if w.suite = W.Workload.Nrc then
    check_bool
      (w.name ^ ": SpD found at least one application")
      true
      (spec.applications <> [])

let tests =
  List.map
    (fun (w : W.Workload.t) ->
      case (w.name ^ " matches reference") (check_against_reference w))
    W.Registry.all
  @ List.map
      (fun (w : W.Workload.t) ->
        case (w.name ^ " pipelines agree") (check_pipelines w))
      W.Registry.all

(* The exported kernel files in examples/kernels stay in sync with the
   registry (they carry a comment header, then the exact source). *)
let test_exported_kernels_in_sync () =
  let dir = "../../../examples/kernels" in
  if Sys.file_exists dir then
    List.iter
      (fun (w : W.Workload.t) ->
        let path = Filename.concat dir (w.name ^ ".c") in
        let ic = open_in_bin path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let suffix_ok =
          String.length contents >= String.length w.source
          && String.sub contents
               (String.length contents - String.length w.source)
               (String.length w.source)
             = w.source
        in
        check_bool (w.name ^ ".c in sync") true suffix_ok)
      W.Registry.all

let tests =
  tests @ [ case "exported kernels in sync" test_exported_kernels_in_sync ]
