(** Analysis tests: affine forms, arc construction, DDG/ASAP, forwarding. *)

open Util
module Ir = Spd_ir
module A = Spd_analysis
open Ir

let case name f = Alcotest.test_case name `Quick f
let qcase = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Affine algebra *)

let sym_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> A.Affine.Sreg r) (int_bound 6);
        return (A.Affine.Sglobal "g");
        return A.Affine.Sframe;
      ])

let affine_gen =
  QCheck.Gen.(
    let term = pair sym_gen (int_range (-5) 5) in
    map2
      (fun c terms ->
        List.fold_left
          (fun acc (s, k) -> A.Affine.add acc (A.Affine.scale k (A.Affine.sym s)))
          (A.Affine.const c) terms)
      (int_range (-20) 20)
      (list_size (int_bound 4) term))

let affine_arb = QCheck.make ~print:(Fmt.to_to_string A.Affine.pp) affine_gen

let prop_sub_self =
  QCheck.Test.make ~name:"affine: a - a = 0" ~count:300 affine_arb (fun a ->
      A.Affine.equal (A.Affine.sub a a) (A.Affine.const 0))

let prop_add_comm =
  QCheck.Test.make ~name:"affine: a + b = b + a" ~count:300
    QCheck.(pair affine_arb affine_arb)
    (fun (a, b) -> A.Affine.equal (A.Affine.add a b) (A.Affine.add b a))

let prop_scale_distributes =
  QCheck.Test.make ~name:"affine: k(a+b) = ka + kb" ~count:300
    QCheck.(triple (int_range (-5) 5) affine_arb affine_arb)
    (fun (k, a, b) ->
      A.Affine.equal
        (A.Affine.scale k (A.Affine.add a b))
        (A.Affine.add (A.Affine.scale k a) (A.Affine.scale k b)))

(* Affine analysis recovers the subscript math of a compiled loop. *)
let test_affine_analyze () =
  let prog =
    compile
      {|
double a[300];
int main() {
  int i; double y;
  y = 0.0;
  for (i = 1; i <= 100; i = i + 1) {
    a[2 * i] = y;
    y = y + a[i + 4];
  }
  return (int)y;
}
|}
  in
  let main = Prog.find_func prog "main" in
  let loop =
    List.find
      (fun (t : Tree.t) ->
        Array.exists (fun i -> Insn.is_store i) t.insns)
      main.trees
  in
  let env = A.Affine.analyze loop in
  let store = List.find Insn.is_store (Tree.mem_insns loop) in
  let load = List.find Insn.is_load (Tree.mem_insns loop) in
  let diff =
    A.Affine.sub
      (A.Affine.form_of env (Insn.addr store))
      (A.Affine.form_of env (Insn.addr load))
  in
  (* a[2i] - a[i+4]: the global base cancels, leaving i - 4 *)
  check_bool "difference is i - 4 (single symbol, coeff 1, const -4)" true
    (diff.A.Affine.const = -4
    && List.length (A.Affine.Sym_map.bindings diff.A.Affine.terms) = 1
    && List.for_all
         (fun (_, c) -> c = 1)
         (A.Affine.Sym_map.bindings diff.A.Affine.terms));
  (* and the range of the difference under i in [1, 101] is [-3, 97] *)
  let r = A.Affine.range loop diff in
  check_bool "range lo" true (r.Interval.lo = Some (-3));
  check_bool "range hi" true (r.Interval.hi = Some 97)

(* ------------------------------------------------------------------ *)
(* Memory arc construction *)

let test_memarcs_pairs () =
  (* two stores and two loads: arcs = all pairs with >= 1 store *)
  let prog =
    compile
      {|
double a[10];
double b[10];
int main() {
  double x; double y;
  a[1] = 1.0;
  x = b[2];
  b[3] = 2.0;
  y = a[4];
  return (int)(x + y);
}
|}
  in
  let prog = A.Memarcs.annotate prog in
  let main = Prog.find_func prog "main" in
  let tree =
    List.find (fun (t : Tree.t) -> Tree.mem_insns t <> []) main.trees
  in
  (* pairs: (s1,l1) (s1,s2) (s1,l2) (l1,s2) (s2,l2) = 5; the load-load
     pair is skipped *)
  check_int "arc count" 5 (List.length tree.arcs);
  check_bool "all start ambiguous" true
    (List.for_all Memdep.is_ambiguous tree.arcs)

(* ------------------------------------------------------------------ *)
(* DDG and ASAP *)

let test_ddg_asap () =
  (* hand-built chain: c = const; ld = load c; add = ld + c; store *)
  let c = Insn.make ~id:0 (Opcode.Const (Value.Int 100)) ~dst:(Some 1) ~srcs:[] in
  let ld = Insn.make ~id:1 Opcode.Load ~dst:(Some 2) ~srcs:[ 1 ] in
  let add = Insn.make ~id:2 (Opcode.Ibin Opcode.Add) ~dst:(Some 3) ~srcs:[ 2; 1 ] in
  let st = Insn.make ~id:3 Opcode.Store ~dst:None ~srcs:[ 1; 3 ] in
  let tree =
    Tree.make ~id:0 ~name:"chain" ~params:[]
      ~insns:[| c; ld; add; st |]
      ~exits:[| { Tree.xguard = None; kind = Tree.Return { value = None } } |]
      ~arcs:[] ~ranges:Reg.Map.empty ()
  in
  let g = A.Ddg.build ~mem_latency:6 tree in
  let asap = A.Ddg.asap g in
  check_int "const at 0" 0 asap.(0);
  check_int "load waits const" 1 asap.(1);
  check_int "add waits load" 7 asap.(2);
  check_int "store waits add" 8 asap.(3);
  let insn_c, exit_c = A.Ddg.asap_completion g in
  check_int "store completion" 14 insn_c.(3);
  check_int "exit completion" 2 exit_c.(0)

let test_ddg_arc_weights () =
  (* a RAW arc forces the load after store completion; removing it frees
     the load *)
  let c = Insn.make ~id:0 (Opcode.Const (Value.Int 100)) ~dst:(Some 1) ~srcs:[] in
  let st = Insn.make ~id:1 Opcode.Store ~dst:None ~srcs:[ 1; 1 ] in
  let ld = Insn.make ~id:2 Opcode.Load ~dst:(Some 2) ~srcs:[ 1 ] in
  let arc =
    { Memdep.src = 1; dst = 2; kind = Memdep.Raw;
      status = Memdep.Ambiguous None; why = None }
  in
  let tree =
    Tree.make ~id:0 ~name:"raw" ~params:[]
      ~insns:[| c; st; ld |]
      ~exits:[| { Tree.xguard = None; kind = Tree.Return { value = None } } |]
      ~arcs:[ arc ] ~ranges:Reg.Map.empty ()
  in
  let asap_with = A.Ddg.asap (A.Ddg.build ~mem_latency:6 tree) in
  check_int "load waits full store latency" 7 asap_with.(2);
  let tree' =
    { tree with arcs = [ { arc with status = Memdep.Removed Memdep.By_spd } ] }
  in
  let asap_without = A.Ddg.asap (A.Ddg.build ~mem_latency:6 tree') in
  check_int "load free once arc removed" 1 asap_without.(2)

let test_ddg_height () =
  let c = Insn.make ~id:0 (Opcode.Const (Value.Int 100)) ~dst:(Some 1) ~srcs:[] in
  let ld = Insn.make ~id:1 Opcode.Load ~dst:(Some 2) ~srcs:[ 1 ] in
  let tree =
    Tree.make ~id:0 ~name:"h" ~params:[]
      ~insns:[| c; ld |]
      ~exits:[| { Tree.xguard = None; kind = Tree.Return { value = Some 2 } } |]
      ~arcs:[] ~ranges:Reg.Map.empty ()
  in
  let g = A.Ddg.build ~mem_latency:2 tree in
  let h = A.Ddg.height g in
  (* const -> load -> exit: 1 + 2 + 2 *)
  check_int "height of const" 5 h.(0);
  check_int "height of load" 4 h.(1);
  check_int "height of exit" 2 h.(2)

(* ------------------------------------------------------------------ *)
(* Forwarding *)

let count_loads prog =
  let n = ref 0 in
  Prog.iter_trees
    (fun _ (t : Tree.t) ->
      Array.iter (fun i -> if Insn.is_load i then incr n) t.insns)
    prog;
  !n

let test_frontend_forwards_reload () =
  (* the frontend's store-to-load forwarding already removes the reload
     of a[3] during lowering *)
  let src =
    {|
double a[10];
int main() {
  double x;
  a[3] = 1.5;
  x = a[3];
  return (int)(x * 2.0);
}
|}
  in
  check_int "no load survives lowering" 0 (count_loads (compile src));
  check_int "still computes the right value" 3 (ret_int src)

let test_forwarding_pass_removes_reload () =
  (* the IR-level pass catches reloads the frontend cannot see; build the
     tree by hand: store then reload through the same address register *)
  let addr = Insn.make ~id:0 (Opcode.Addrof (Opcode.Global "g")) ~dst:(Some 1) ~srcs:[] in
  let v = Insn.make ~id:1 (Opcode.Const (Value.Int 7)) ~dst:(Some 2) ~srcs:[] in
  let st = Insn.make ~id:2 Opcode.Store ~dst:None ~srcs:[ 1; 2 ] in
  let ld = Insn.make ~id:3 Opcode.Load ~dst:(Some 3) ~srcs:[ 1 ] in
  let tree =
    Tree.make ~id:0 ~name:"main.t0" ~params:[]
      ~insns:[| addr; v; st; ld |]
      ~exits:[| { Tree.xguard = None; kind = Tree.Return { value = Some 3 } } |]
      ~arcs:[] ~ranges:Reg.Map.empty ()
  in
  let prog =
    {
      Prog.funcs =
        [ ("main", { Prog.fname = "main"; fparams = []; frame_words = 0; entry = 0; trees = [ tree ] }) ];
      globals = [ { Prog.gname = "g"; words = 1; ginit = [||] } ];
      main = "main";
    }
  in
  Prog.validate prog;
  let fwd = A.Forwarding.run prog in
  check_int "load removed" 0 (count_loads fwd);
  check_bool "same behaviour" true
    (Spd_sim.Interp.observe prog = Spd_sim.Interp.observe fwd);
  check_int "returns stored value" 7
    (Value.to_int (fst (Spd_sim.Interp.observe fwd)))

let test_forwarding_respects_clobbers () =
  (* the intervening may-alias store must kill the forwarded value *)
  let src =
    {|
int a[10];
int touch(int v[], int i, int j) {
  int x;
  v[i] = 7;
  v[j] = 9;
  x = v[i];
  return x;
}
int main() { return touch(a, 2, 2); }
|}
  in
  let prog = compile src in
  let fwd = A.Forwarding.run prog in
  check_bool "same behaviour (aliased clobber)" true
    (Spd_sim.Interp.observe prog = Spd_sim.Interp.observe fwd);
  check_int "result is the clobbered value" 9
    (Value.to_int (fst (Spd_sim.Interp.observe fwd)))

let test_forwarding_preserves_workloads () =
  List.iter
    (fun (w : Spd_workloads.Workload.t) ->
      let prog = compile w.source in
      check_bool (w.name ^ " behaviour preserved") true
        (Spd_sim.Interp.observe prog
        = Spd_sim.Interp.observe (A.Forwarding.run prog)))
    Spd_workloads.Registry.all

let tests =
  [
    qcase prop_sub_self;
    qcase prop_add_comm;
    qcase prop_scale_distributes;
    case "affine analysis of subscripts" test_affine_analyze;
    case "memarcs pair construction" test_memarcs_pairs;
    case "ddg asap chain" test_ddg_asap;
    case "ddg arc weights" test_ddg_arc_weights;
    case "ddg height" test_ddg_height;
    case "frontend forwards reload" test_frontend_forwards_reload;
    case "forwarding pass removes reload" test_forwarding_pass_removes_reload;
    case "forwarding respects clobbers" test_forwarding_respects_clobbers;
    case "forwarding preserves all workloads" test_forwarding_preserves_workloads;
  ]

(* ------------------------------------------------------------------ *)
(* Grafting (loop unrolling) *)

let test_unroll_shape () =
  let prog =
    compile
      {|
int a[64];
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 50; i = i + 1) { a[i] = i; s = s + a[i]; }
  return s;
}
|}
  in
  let prog = A.Forwarding.run prog in
  let main = Prog.find_func prog "main" in
  let loop =
    List.find
      (fun (t : Tree.t) ->
        match A.Unroll.self_loop t with Some _ -> true | None -> false)
      main.trees
  in
  match A.Unroll.unroll_once loop with
  | None -> Alcotest.fail "expected the loop tree to unroll"
  | Some t' ->
      check_bool "roughly doubled" true
        (Array.length t'.insns >= (2 * Array.length loop.insns) - 2);
      check_int "three exits" 3 (Array.length t'.exits);
      (* still a valid self-loop on the combined condition *)
      (match t'.exits.(0).kind with
      | Tree.Jump { target; _ } -> check_int "back edge" loop.id target
      | _ -> Alcotest.fail "first exit should be the back edge")

let test_unroll_preserves_workloads () =
  (* grafting must never change behaviour; prepare ~check:true raises on
     any mismatch *)
  List.iter
    (fun (w : Spd_workloads.Workload.t) ->
      let lowered = compile w.source in
      ignore
        (Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~graft:true ~mem_latency:2 ())
           Spd_harness.Pipeline.Spec lowered))
    Spd_workloads.Registry.all

let test_unroll_respects_size_cap () =
  let prog = compile (Spd_workloads.Registry.by_name "bcuint").source in
  let prog = A.Forwarding.run prog in
  let small_cap = A.Unroll.run ~max_tree_size:1 prog in
  check_int "cap 1 leaves the program unchanged"
    (Prog.code_size prog) (Prog.code_size small_cap)

let more_tests =
  [
    case "unroll shape" test_unroll_shape;
    case "unroll preserves all workloads" test_unroll_preserves_workloads;
    case "unroll size cap" test_unroll_respects_size_cap;
  ]

let tests = tests @ more_tests
