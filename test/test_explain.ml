(** Schedule introspection, critical-path attribution and the bench
    regression tracker.

    The load-bearing invariants:

    - the per-region cycle attribution of [spd explain] sums {e exactly}
      to the simulator's reported cycle count (ISSUE 4 acceptance);
    - a critical-path attribution is a disjoint tiling of
      [0, makespan), so its category totals sum to the makespan;
    - occupancy grids place every op exactly once, within the machine
      width;
    - [Benchdiff] regresses exactly when a tracked value moves in the
      bad direction beyond the threshold (or disappears);
    - [Table] CSV output round-trips per RFC 4180;
    - [Trace.capture] writes a parseable trace even when the traced
      function raises. *)

open Util
module Schedule = Spd_machine.Schedule
module Critpath = Spd_machine.Critpath
module Ddg = Spd_analysis.Ddg
module Explain = Spd_harness.Explain
module Benchdiff = Spd_harness.Benchdiff
module Faults = Spd_harness.Faults
module Table = Spd_harness.Table
module Json = Spd_telemetry.Json

let case name f = Alcotest.test_case name `Quick f

let explained = Hashtbl.create 4

(* Explain.analyze runs the full pipeline + simulator; share one
   analysis per workload across the tests below. *)
let explain name =
  match Hashtbl.find_opt explained name with
  | Some t -> t
  | None ->
      let t = Explain.analyze name in
      Hashtbl.add explained name t;
      t

(* ------------------------------------------------------------------ *)
(* Attribution sums *)

let test_region_cycles_sum_to_total () =
  List.iter
    (fun name ->
      let t = explain name in
      let sum =
        List.fold_left (fun acc v -> acc + v.Explain.cycles) 0 t.Explain.trees
      in
      check_int (name ^ ": region cycles sum to simulator total")
        t.Explain.total_cycles sum;
      let trav =
        List.fold_left
          (fun acc v -> acc + v.Explain.traversals)
          0 t.Explain.trees
      in
      check_int (name ^ ": region traversals sum to simulator total")
        t.Explain.total_traversals trav)
    [ "matmul300"; "moment" ]

let test_critpath_tiles_makespan () =
  List.iter
    (fun name ->
      let t = explain name in
      List.iter
        (fun v ->
          let cp = v.Explain.critpath in
          let where =
            Printf.sprintf "%s %s/%d" name v.Explain.func
              v.Explain.tree.Spd_ir.Tree.id
          in
          check_int (where ^ ": span matches schedule")
            v.Explain.schedule.Schedule.span cp.Critpath.span;
          let steps =
            List.sort
              (fun (a : Critpath.step) b -> compare a.lo b.lo)
              cp.Critpath.steps
          in
          (* disjoint, contiguous, tiling [0, span) *)
          let last =
            List.fold_left
              (fun edge (st : Critpath.step) ->
                check_int (where ^ ": steps are contiguous") edge st.lo;
                check_bool (where ^ ": step is non-empty") true (st.hi > st.lo);
                st.hi)
              0 steps
          in
          check_int (where ^ ": steps end at the makespan") cp.Critpath.span
            last;
          (* category totals are the same partition, summed *)
          let by_cat =
            List.fold_left
              (fun acc (_, n) -> acc + n)
              0 cp.Critpath.by_category
          in
          check_int (where ^ ": category totals sum to makespan")
            cp.Critpath.span by_cat;
          List.iter
            (fun c ->
              check_bool
                (where ^ ": every category is listed")
                true
                (List.mem_assoc c cp.Critpath.by_category))
            [
              Critpath.Ambiguous_mem; Critpath.Dataflow; Critpath.Resource;
              Critpath.Branch;
            ])
        t.Explain.trees)
    [ "matmul300"; "moment" ]

(* ------------------------------------------------------------------ *)
(* Occupancy grids *)

let test_occupancy_grid_consistent () =
  let t = explain "matmul300" in
  List.iter
    (fun v ->
      let s = v.Explain.schedule in
      let where =
        Printf.sprintf "%s/%d" v.Explain.func v.Explain.tree.Spd_ir.Tree.id
      in
      let grid = Schedule.occupancy s in
      check_int (where ^ ": one grid row per schedule cycle")
        s.Schedule.length (Array.length grid);
      let seen = Hashtbl.create 16 in
      Array.iteri
        (fun cycle slots ->
          check_int (where ^ ": machine width respected")
            (Schedule.n_fus s) (Array.length slots);
          Array.iteri
            (fun fu -> function
              | None -> ()
              | Some node ->
                  check_bool (where ^ ": node placed once") false
                    (Hashtbl.mem seen node);
                  Hashtbl.add seen node (cycle, fu);
                  let op = s.Schedule.ops.(node) in
                  check_int (where ^ ": grid row is the issue cycle")
                    op.Schedule.issue cycle;
                  check_int (where ^ ": grid column is the FU")
                    op.Schedule.fu fu)
            slots)
        grid;
      Array.iteri
        (fun node (op : Schedule.op) ->
          check_bool (where ^ ": every op appears in the grid") true
            (Hashtbl.mem seen node);
          check_bool (where ^ ": slack is non-negative") true
            (op.Schedule.slack >= 0);
          check_bool (where ^ ": FU slot within the machine") true
            (op.Schedule.fu >= 0 && op.Schedule.fu < Schedule.n_fus s))
        s.Schedule.ops)
    t.Explain.trees

(* ------------------------------------------------------------------ *)
(* ALAP / slack *)

let test_alap_slack_sanity () =
  let w = Spd_workloads.Registry.by_name "moment" in
  let prog = compile w.source in
  Spd_ir.Prog.iter_trees
    (fun _ tree ->
      let g = Ddg.build ~mem_latency:2 tree in
      let span = Ddg.span g in
      let asap = Ddg.asap g in
      let alap = Ddg.alap g ~span in
      let slack = Ddg.slack g in
      let n = Ddg.n_nodes g in
      let min_slack = ref max_int in
      for node = 0 to n - 1 do
        check_bool "alap never precedes asap" true (alap.(node) >= asap.(node));
        check_int "slack is alap - asap"
          (alap.(node) - asap.(node))
          slack.(node);
        check_bool "no completion exceeds the span" true
          (alap.(node) + Ddg.node_latency g node <= span);
        min_slack := min !min_slack slack.(node)
      done;
      if n > 0 then
        check_int "a critical (zero-slack) path exists" 0 !min_slack)
    prog

(* ------------------------------------------------------------------ *)
(* SpD provenance *)

let test_provenance_disjoint () =
  let t = explain "matmul300" in
  check_bool "matmul300 has SpD applications" true
    (t.Explain.applications <> []);
  List.iter
    (fun (a : Spd_core.Heuristic.application) ->
      check_bool "alias version ops recorded" true (a.alias_insns <> []);
      List.iter
        (fun id ->
          check_bool "alias and no-alias op sets are disjoint" false
            (List.mem id a.noalias_insns))
        a.alias_insns)
    t.Explain.applications

let test_grid_marks_spd_versions () =
  (* scale tree 1 is matmul300's transformed region: its grid must
     carry both version annotations *)
  let t = explain "matmul300" in
  match Explain.selected ~fn:"scale" ~tree:1 t with
  | [ v ] ->
      let tbl = Explain.grid_table t v in
      let cells =
        List.concat_map
          (fun (r : Table.row) ->
            List.filter_map
              (function Table.Text s -> Some s | _ -> None)
              r.Table.cells)
          tbl.Table.rows
      in
      let has mark =
        List.exists
          (fun s ->
            match String.index_opt s '[' with
            | Some i -> String.length s > i + 1 && s.[i + 1] = mark
            | None -> false)
          cells
      in
      check_bool "alias versions annotated" true (has 'a');
      check_bool "static span recorded" true (v.Explain.static_span <> None)
  | vs ->
      Alcotest.failf "expected exactly one scale/1 tree, got %d"
        (List.length vs)

(* ------------------------------------------------------------------ *)
(* Benchdiff *)

(* a minimal spd-report/1 document with one table; cells are raw JSON
   values so the n/a ([null]) encoding is testable too *)
let report_cells ~table_id rows =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "spd-report/1");
         ( "artefacts",
           Json.List
             [
               Json.Obj
                 [
                   ("name", Json.String "unit");
                   ( "tables",
                     Json.List
                       [
                         Json.Obj
                           [
                             ("id", Json.String table_id);
                             ("title", Json.String "unit");
                             ("columns", Json.List [ Json.String "v" ]);
                             ( "rows",
                               Json.List
                                 (List.map
                                    (fun (label, v) ->
                                      Json.Obj
                                        [
                                          ("label", Json.String label);
                                          ("cells", Json.List [ v ]);
                                        ])
                                    rows) );
                           ];
                       ] );
                 ];
             ] );
       ])

let report ~table_id rows =
  report_cells ~table_id
    (List.map (fun (label, v) -> (label, Json.Float v)) rows)

let diff_exn ?threshold ~table_id old_rows new_rows =
  match
    Benchdiff.diff_strings ?threshold
      ~old_report:(report ~table_id old_rows)
      ~new_report:(report ~table_id new_rows)
      ()
  with
  | Ok d -> d
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_benchdiff_identical () =
  let d =
    diff_exn ~table_id:"cycles.lat2" [ ("a", 100.0) ] [ ("a", 100.0) ]
  in
  check_int "no regressions" 0 d.Benchdiff.regressions;
  check_int "no changes" 0 (List.length d.Benchdiff.changes);
  check_int "one cell compared" 1 d.Benchdiff.compared

let test_benchdiff_polarity () =
  (* cycles go up: lower-better -> regression *)
  let d = diff_exn ~table_id:"cycles.lat2" [ ("a", 100.0) ] [ ("a", 110.0) ] in
  check_int "cycle increase regresses" 1 d.Benchdiff.regressions;
  (* cycles go down: improvement *)
  let d = diff_exn ~table_id:"cycles.lat2" [ ("a", 100.0) ] [ ("a", 90.0) ] in
  check_int "cycle decrease is no regression" 0 d.Benchdiff.regressions;
  check_int "cycle decrease improves" 1 d.Benchdiff.improvements;
  (* speedups go down: higher-better -> regression *)
  let d = diff_exn ~table_id:"fig6_2.lat2" [ ("a", 1.5) ] [ ("a", 1.2) ] in
  check_int "speedup drop regresses" 1 d.Benchdiff.regressions;
  (* informational tables report but never regress *)
  let d = diff_exn ~table_id:"table6_3" [ ("a", 5.0) ] [ ("a", 9.0) ] in
  check_int "informational never regresses" 0 d.Benchdiff.regressions;
  check_int "informational change still listed" 1
    (List.length d.Benchdiff.changes);
  (* wall clock is skipped entirely *)
  let d = diff_exn ~table_id:"timings" [ ("a", 5.0) ] [ ("a", 50.0) ] in
  check_int "timings are skipped" 0 d.Benchdiff.compared;
  check_int "timings never change" 0 (List.length d.Benchdiff.changes)

let test_benchdiff_threshold () =
  let run threshold = diff_exn ~threshold ~table_id:"cycles.lat2"
      [ ("a", 100.0) ] [ ("a", 105.0) ]
  in
  check_int "5% over a 10% threshold passes" 0 (run 10.0).Benchdiff.regressions;
  check_int "5% over a 4% threshold regresses" 1
    (run 4.0).Benchdiff.regressions

let test_benchdiff_missing_value () =
  let d =
    diff_exn ~table_id:"cycles.lat2"
      [ ("a", 100.0); ("b", 50.0) ]
      [ ("a", 100.0) ]
  in
  check_int "a vanished tracked value regresses" 1 d.Benchdiff.regressions

let test_benchdiff_na_transitions () =
  (* the Table CSV/JSON n/a encoding ([null] cells) must agree with the
     tracker: a cell coming back to life is an improvement, a cell dying
     is a regression, and n/a on both sides is no change at all *)
  let diff old_cell new_cell =
    match
      Benchdiff.diff_strings
        ~old_report:(report_cells ~table_id:"cycles.lat2" [ ("a", old_cell) ])
        ~new_report:(report_cells ~table_id:"cycles.lat2" [ ("a", new_cell) ])
        ()
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "diff failed: %s" e
  in
  let d = diff Json.Null (Json.Float 100.0) in
  check_int "n/a -> number is no regression" 0 d.Benchdiff.regressions;
  check_int "n/a -> number improves" 1 d.Benchdiff.improvements;
  (match d.Benchdiff.changes with
  | [ c ] ->
      check_bool "old side reported as n/a" true (c.Benchdiff.old_value = None);
      check_bool "new side carries the number" true
        (c.Benchdiff.new_value = Some 100.0)
  | cs -> Alcotest.failf "expected one change, got %d" (List.length cs));
  let d = diff (Json.Float 100.0) Json.Null in
  check_int "number -> n/a regresses" 1 d.Benchdiff.regressions;
  check_int "number -> n/a is no improvement" 0 d.Benchdiff.improvements;
  let d = diff Json.Null Json.Null in
  check_int "n/a -> n/a is no change" 0 (List.length d.Benchdiff.changes);
  check_int "n/a -> n/a never regresses" 0 d.Benchdiff.regressions

let test_benchdiff_rejects_garbage () =
  (match Benchdiff.diff_strings ~old_report:"{}" ~new_report:"{}" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema-less documents must be rejected");
  match Benchdiff.diff_strings ~old_report:"nope" ~new_report:"{}" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-JSON must be rejected"

let test_pct_change_zero_base () =
  check_bool "growth from zero is +inf" true
    (Benchdiff.pct_change ~old_value:0.0 ~new_value:1.0 = infinity);
  check_bool "no change at zero is 0" true
    (Benchdiff.pct_change ~old_value:0.0 ~new_value:0.0 = 0.0);
  check_bool "10% growth" true
    (abs_float (Benchdiff.pct_change ~old_value:100.0 ~new_value:110.0 -. 10.0)
    < 1e-9)

(* ------------------------------------------------------------------ *)
(* cycles-inflate fault *)

let test_cycles_inflate_fault () =
  (match Faults.parse "cycles-inflate:10" with
  | Ok f ->
      check_int "exact 10% inflation" 110 (Faults.inflate_cycles f 100);
      check_int "fractional cycles round up" 61 (Faults.inflate_cycles f 55)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  check_int "no fault is identity" 123 (Faults.inflate_cycles Faults.none 123);
  match Faults.parse "cycles-inflate:-3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative inflation must be rejected"

(* ------------------------------------------------------------------ *)
(* Table CSV escaping: RFC 4180 round-trip *)

(* a small RFC 4180 reader: quoted fields may contain commas, newlines
   and doubled quotes *)
let parse_csv (s : string) : string list list =
  let records = ref [] and fields = ref [] and buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let n = String.length s in
  let rec plain i =
    if i >= n then (if !fields <> [] || Buffer.length buf > 0 then flush_record ())
    else
      match s.[i] with
      | ',' -> flush_field (); plain (i + 1)
      | '\n' -> flush_record (); plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c -> Buffer.add_char buf c; plain (i + 1)
  and quoted i =
    if i >= n then failwith "unterminated quoted field"
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c -> Buffer.add_char buf c; quoted (i + 1)
  in
  plain 0;
  List.rev !records

let test_csv_round_trip () =
  let tricky =
    [ "comma, inside"; "quote \" inside"; "newline\ninside"; "plain";
      "both \"and\",\nworse" ]
  in
  let tbl =
    Table.v ~id:"csv,test" ~title:"unit" ~columns:[ "va,l"; "w" ]
      (List.map (fun s -> Table.row s [ Table.Text s; Table.Int 7 ]) tricky)
  in
  let doc = String.concat "\n" (Table.to_csv_lines tbl) in
  let records = parse_csv doc in
  check_int "one record per cell"
    (2 * List.length tricky)
    (List.length records);
  List.iteri
    (fun i record ->
      let label = List.nth tricky (i / 2) in
      match record with
      | [ table; row; column; value ] ->
          check_int "four fields per record" 4 (List.length record);
          Alcotest.(check string) "table id round-trips" "csv,test" table;
          Alcotest.(check string) "row label round-trips" label row;
          if i mod 2 = 0 then begin
            Alcotest.(check string) "column round-trips" "va,l" column;
            Alcotest.(check string) "text cell round-trips" label value
          end
          else Alcotest.(check string) "int cell round-trips" "7" value
      | r -> Alcotest.failf "record %d has %d fields" i (List.length r))
    records

let test_csv_na_cell () =
  (* a failed grid cell must render as n/a in the CSV — identically to
     the pretty grid — so a reader can tell it from an empty string, and
     so `spd bench diff` sees the same encoding in both formats *)
  let tbl =
    Table.v ~id:"na" ~title:"unit" ~columns:[ "v" ]
      [ Table.row "dead" [ Table.Na ]; Table.row "live" [ Table.Num 1.5 ] ]
  in
  match parse_csv (String.concat "\n" (Table.to_csv_lines tbl)) with
  | [ [ _; "dead"; "v"; na ]; [ _; "live"; "v"; live ] ] ->
      Alcotest.(check string) "Na encodes as n/a in CSV" "n/a" na;
      Alcotest.(check string)
        "CSV n/a matches the pretty rendering"
        (Table.cell_text Table.Na) na;
      Alcotest.(check string) "numbers keep full precision" "1.5" live
  | records -> Alcotest.failf "unexpected CSV shape (%d records)"
                 (List.length records)

(* ------------------------------------------------------------------ *)
(* Crash-safe tracing *)

let test_trace_capture_on_raise () =
  let path = Filename.temp_file "spd_trace" ".json" in
  (match
     Spd_telemetry.Trace.capture (Some path) (fun () ->
         Spd_telemetry.Trace.instant "before-crash";
         failwith "boom")
   with
  | () -> Alcotest.fail "exception must propagate"
  | exception Failure _ -> ());
  let ic = open_in_bin path in
  let doc =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  match Json.of_string doc with
  | Ok json ->
      check_bool "trace document has events" true
        (Option.bind (Json.member "traceEvents" json) Json.to_list <> None)
  | Error e -> Alcotest.failf "trace not parseable after crash: %s" e

let tests =
  [
    case "region cycle attribution sums to the simulator total"
      test_region_cycles_sum_to_total;
    case "critical-path steps tile the makespan" test_critpath_tiles_makespan;
    case "occupancy grids are consistent" test_occupancy_grid_consistent;
    case "alap/slack sanity" test_alap_slack_sanity;
    case "SpD provenance version sets are disjoint" test_provenance_disjoint;
    case "grids annotate SpD versions" test_grid_marks_spd_versions;
    case "benchdiff: identical reports" test_benchdiff_identical;
    case "benchdiff: polarity by table id" test_benchdiff_polarity;
    case "benchdiff: threshold" test_benchdiff_threshold;
    case "benchdiff: missing value regresses" test_benchdiff_missing_value;
    case "benchdiff: n/a transitions" test_benchdiff_na_transitions;
    case "benchdiff: malformed reports rejected" test_benchdiff_rejects_garbage;
    case "benchdiff: relative change at zero base" test_pct_change_zero_base;
    case "faults: cycles-inflate" test_cycles_inflate_fault;
    case "table: CSV round-trips per RFC 4180" test_csv_round_trip;
    case "table: CSV n/a encoding matches the grid" test_csv_na_cell;
    case "trace: capture survives a crash" test_trace_capture_on_raise;
  ]
