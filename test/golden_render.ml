(** Shared renderer for the golden-schedule corpus.

    One text document per (workload, width): every tree of the SPEC
    pipeline's program rendered as a cycle-by-FU occupancy grid.  The
    test suite ([test_golden]) diffs fresh renderings against the files
    committed under [test/golden/]; [make golden-promote] regenerates
    the files with the same renderer, so an intentional scheduler change
    is a one-command re-bless while an accidental one fails [dune
    runtest] with a readable grid diff.

    The rendering must stay byte-deterministic: trees in program order,
    fixed-width columns sized from the grid's own labels, no timestamps
    or floats. *)

module Pipeline = Spd_harness.Pipeline
module Schedule = Spd_machine.Schedule
module Descr = Spd_machine.Descr

(** The corpus parameters: every paper workload, at a narrow and the
    paper's 5-FU width, 2-cycle memory. *)
let widths = [ 2; 5 ]

let mem_latency = 2
let file_name ~workload ~width = Printf.sprintf "%s.w%d.txt" workload width

let render_tree buf ~func (s : Schedule.t) =
  let tree = s.Schedule.ddg.Spd_analysis.Ddg.tree in
  Printf.bprintf buf "== %s / tree %d (%s): length %d, span %d\n" func
    tree.Spd_ir.Tree.id tree.Spd_ir.Tree.name s.Schedule.length
    s.Schedule.span;
  let grid = Schedule.occupancy s in
  let n_fus = Schedule.n_fus s in
  let label = function
    | None -> "."
    | Some node -> Schedule.node_label s node
  in
  (* column width: widest label in this grid, so the file is stable
     under unrelated edits and readable as-is *)
  let w =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc cell -> max acc (String.length (label cell)))
          acc row)
      1 grid
  in
  Array.iteri
    (fun cycle row ->
      let line = Buffer.create 80 in
      Printf.bprintf line "%4d |" cycle;
      for fu = 0 to n_fus - 1 do
        let cell = if fu < Array.length row then row.(fu) else None in
        Printf.bprintf line " %-*s" w (label cell)
      done;
      (* trailing spaces would be invisible in diffs; trim them *)
      let s = Buffer.contents line in
      let n = String.length s in
      let rec last i = if i > 0 && s.[i - 1] = ' ' then last (i - 1) else i in
      Buffer.add_string buf (String.sub s 0 (last n));
      Buffer.add_char buf '\n')
    grid

let render ~workload ~width : string =
  let w = Spd_workloads.Registry.by_name workload in
  let prepared =
    Pipeline.prepare
      ~config:(Pipeline.Config.v ~check:false ~mem_latency ())
      Pipeline.Spec
      (Spd_lang.Lower.compile w.Spd_workloads.Workload.source)
  in
  let descr = { Descr.width = Descr.Fus width; mem_latency } in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "# golden schedule: %s, %d FUs, mem latency %d, SPEC pipeline\n"
    workload width mem_latency;
  Spd_ir.Prog.iter_trees
    (fun func tree -> render_tree buf ~func (Schedule.of_tree ~descr tree))
    prepared.Pipeline.prog;
  Buffer.contents buf
