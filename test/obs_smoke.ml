(** End-to-end observability smoke (see [make obs-smoke]): start a real
    [spd serve] with [--log]/[--trace]/[--slow-ms] armed, drive a mixed
    RPC burst, and check the whole telemetry story:

    - every response envelope echoes a [rid],
    - the per-method latency histograms count exactly the requests
      issued, and their p95 is sane,
    - the Prometheus exposition round-trips: cumulative buckets are
      monotone and the [+Inf] bucket equals [_count],
    - the served [why] decision ledger and the served [validate]
      verdict ledger are byte-identical to the [spd why --format json]
      and [spd validate --format json] CLI documents,
    - [spd top --count 1] renders one dashboard frame,
    - after shutdown, the [--log] file is valid spd-log/1 JSON-lines
      whose [rpc] records carry rids, and the [--trace] profile has an
      [rpc:query] span whose rid-tagged cell span nests inside it.

    The log, trace and a raw response envelope are saved under the
    smoke directory so [json_lint] can validate them. *)

module Json = Spd_telemetry.Json
module Metrics = Spd_telemetry.Metrics
module Protocol = Spd_serve.Protocol

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("obs_smoke: " ^ s);
      exit 1)
    fmt

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* run a command, capture stdout, require exit status 0 *)
let capture argv =
  let out = Filename.temp_file "spd_obs_out" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
  @@ fun () ->
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid = Unix.create_process argv.(0) argv Unix.stdin fd Unix.stderr in
  Unix.close fd;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> In_channel.with_open_bin out In_channel.input_all
  | _, status ->
      die "%s exited with %s"
        (String.concat " " (Array.to_list argv))
        (match status with
        | Unix.WEXITED n -> Printf.sprintf "status %d" n
        | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> die "document lacks %S: %s" name (Json.to_string j)

let str j =
  match Json.to_string_opt j with
  | Some s -> s
  | None -> die "expected a JSON string"

let call_ok c meth params =
  match Protocol.call c meth params with
  | Ok r -> r
  | Error e -> die "%s: %s" meth e

let query_params =
  Json.Obj
    [
      ("bench", Json.String "moment");
      ("latency", Json.Int 2);
      ("artefact", Json.String "cycles");
      ("pipeline", Json.String "spec");
      ("width", Json.Int 4);
    ]

(* one raw framed exchange, to capture a full response envelope *)
let raw_roundtrip sock body =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let frame =
    Printf.sprintf "Content-Length: %d\r\n\r\n%s" (String.length body) body
  in
  ignore (Unix.write_substring fd frame 0 (String.length frame));
  let buf = Buffer.create 512 in
  let b = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let header_end () =
    let s = Buffer.contents buf in
    let rec find i =
      if i + 4 > String.length s then None
      else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec read_until pred =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then die "raw response timed out"
    else
      match Unix.select [ fd ] [] [] 1.0 with
      | [], _, _ -> read_until pred
      | _ -> (
          match Unix.read fd b 0 4096 with
          | 0 -> die "daemon closed the raw connection early"
          | n ->
              Buffer.add_subbytes buf b 0 n;
              read_until pred)
  in
  read_until (fun () -> header_end () <> None);
  let hdr_end = Option.get (header_end ()) in
  let s = Buffer.contents buf in
  let len =
    (* the only header the daemon sends is Content-Length *)
    Scanf.sscanf (String.sub s 0 hdr_end) "Content-Length: %d" Fun.id
  in
  read_until (fun () -> Buffer.length buf >= hdr_end + len);
  String.sub (Buffer.contents buf) hdr_end len

let hist_count hists name =
  match Option.bind (Json.member name hists) Metrics.hist_of_json with
  | Some h -> h.Metrics.count
  | None -> die "no %s histogram" name

(* ------------------------------------------------------------------ *)

let () =
  let smoke_dir = ref "/tmp" in
  let spd =
    ref
      (Filename.concat
         (Filename.concat (Filename.dirname Sys.executable_name) "..")
         (Filename.concat "bin" "spd.exe"))
  in
  let rec parse = function
    | [] -> ()
    | "--spd" :: path :: tl -> spd := path; parse tl
    | dir :: tl -> smoke_dir := dir; parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !spd) then die "spd binary not found at %s" !spd;
  let sock = Filename.concat !smoke_dir "spd_obs_smoke.sock" in
  if Sys.file_exists sock then Sys.remove sock;
  let log_file = Filename.concat !smoke_dir "spd_obs_log.jsonl" in
  let trace_file = Filename.concat !smoke_dir "spd_obs_trace.json" in
  List.iter
    (fun f -> if Sys.file_exists f then Sys.remove f)
    [ log_file; trace_file ];
  let daemon_out = Filename.concat !smoke_dir "spd_obs_smoke.out" in
  let out_fd =
    Unix.openfile daemon_out
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let daemon =
    Unix.create_process !spd
      [|
        !spd; "serve"; "--socket"; sock; "--workers"; "2"; "--jobs"; "2";
        "--no-cache"; "--log"; log_file; "--log-level"; "debug";
        "--trace"; trace_file; "--slow-ms"; "0.0001";
      |]
      Unix.stdin out_fd out_fd
  in
  Unix.close out_fd;
  let addr = Protocol.Unix_path sock in
  let rec await n =
    if n = 0 then begin
      (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
      die "daemon did not open %s (see %s)" sock daemon_out
    end;
    match Protocol.connect addr with
    | Ok c -> c
    | Error _ ->
        Unix.sleepf 0.1;
        await (n - 1)
  in
  let c = await 100 in

  (* mixed burst with known per-method counts *)
  let n_pings = 5 and n_healths = 3 and n_queries = 10 in
  for _ = 1 to n_pings do
    ignore (call_ok c "ping" (Json.Obj []))
  done;
  if Protocol.last_rid c = None then die "no rid echoed on ping";
  for _ = 1 to n_healths do
    ignore (call_ok c "health" (Json.Obj []))
  done;
  for _ = 1 to n_queries do
    let q = call_ok c "query" query_params in
    if member "ok" q <> Json.Bool true then die "query failed"
  done;
  let query_rid =
    match Protocol.last_rid c with
    | Some r -> r
    | None -> die "no rid echoed on query"
  in

  (* per-method latency histograms: exact counts for the burst *)
  let hists = member "histograms" (call_ok c "metrics" (Json.Obj [])) in
  let check_exact meth want =
    let got = hist_count hists ("spd.serve.rpc.latency." ^ meth) in
    if got <> want then die "latency.%s counted %d, want %d" meth got want
  in
  check_exact "ping" n_pings;
  check_exact "health" n_healths;
  check_exact "query" n_queries;
  (match
     Option.bind
       (Json.member "spd.serve.rpc.latency.query" hists)
       Metrics.hist_of_json
   with
  | None -> die "no query latency histogram"
  | Some h -> (
      match Metrics.quantile h 0.95 with
      | Some p95 when p95 >= 0.0 && p95 < 30.0 -> ()
      | Some p95 -> die "query p95 %g out of range" p95
      | None -> die "query p95 missing"));

  (* the served [why] ledger must agree byte-for-byte with the CLI's
     [spd why --format json] document (the envelope's rid lives outside
     the result, so the result IS the bare spd-decisions/1 document) *)
  let served_why =
    call_ok c "why"
      (Json.Obj
         [ ("workload", Json.String "perm"); ("mem_latency", Json.Int 2) ])
  in
  let served_why_s = Json.to_string served_why in
  write_file (Filename.concat !smoke_dir "spd_obs_why.json") served_why_s;
  let cli_why =
    String.trim
      (capture
         [|
           !spd; "why"; "perm"; "--mem-latency"; "2"; "--no-cache";
           "--format"; "json";
         |])
  in
  if served_why_s <> cli_why then
    die "served why differs from the CLI document:\n%s\nvs\n%s" served_why_s
      cli_why;

  (* likewise the served [validate] verdict ledger: the spd-validate/1
     document is a pure function of its inputs, so the daemon and the
     CLI must emit identical bytes *)
  let served_validate =
    call_ok c "validate"
      (Json.Obj
         [ ("workload", Json.String "perm"); ("mem_latency", Json.Int 2) ])
  in
  let served_validate_s = Json.to_string served_validate in
  write_file
    (Filename.concat !smoke_dir "spd_obs_validate.json")
    served_validate_s;
  let cli_validate =
    String.trim
      (capture
         [|
           !spd; "validate"; "perm"; "--mem-latency"; "2"; "--no-cache";
           "--format"; "json";
         |])
  in
  if served_validate_s <> cli_validate then
    die "served validate differs from the CLI document:\n%s\nvs\n%s"
      served_validate_s cli_validate;

  (* a raw envelope, saved for json_lint: must echo a rid *)
  let envelope =
    raw_roundtrip sock
      {|{"jsonrpc":"2.0","id":99,"method":"ping","params":{}}|}
  in
  (match Json.of_string envelope with
  | Ok e ->
      if Option.bind (Json.member "rid" e) Json.to_string_opt = None then
        die "raw envelope has no rid: %s" envelope
  | Error e -> die "raw envelope is not JSON: %s" e);
  write_file (Filename.concat !smoke_dir "spd_obs_envelope.json") envelope;

  (* Prometheus round-trip via the CLI: cumulative buckets monotone,
     +Inf equals _count *)
  let prom =
    capture
      [| !spd; "call"; "metrics"; "--format"; "prometheus"; "--socket"; sock |]
  in
  write_file (Filename.concat !smoke_dir "spd_obs_metrics.prom") prom;
  let prom_lines = String.split_on_char '\n' prom in
  let series prefix =
    List.filter_map
      (fun l ->
        if String.starts_with ~prefix l then
          match String.rindex_opt l ' ' with
          | Some i ->
              Some
                (int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None
        else None)
      prom_lines
  in
  let buckets = series "spd_serve_rpc_latency_query_bucket{" in
  if buckets = [] then die "no query latency buckets in the exposition";
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  if not (monotone buckets) then die "cumulative buckets not monotone";
  (match (List.rev buckets, series "spd_serve_rpc_latency_query_count") with
  | inf :: _, [ count ] ->
      if inf <> count then die "+Inf bucket %d <> _count %d" inf count;
      if count <> n_queries then
        die "exposition counts %d queries, want %d" count n_queries
  | _ -> die "malformed query latency exposition");

  (* the dashboard: one frame, no terminal *)
  let top =
    capture [| !spd; "top"; "--count"; "1"; "--socket"; sock |]
  in
  if not (contains ~needle:"spd top" top) then
    die "spd top frame lacks its header: %s" top;
  if not (contains ~needle:"latency (ms)" top) then
    die "spd top frame lacks the latency table: %s" top;
  if not (contains ~needle:"query" top) then
    die "spd top frame lacks the query row: %s" top;

  Protocol.close c;

  (* graceful shutdown; the daemon must exit 0 and flush log + trace *)
  ignore (capture [| !spd; "call"; "shutdown"; "--socket"; sock |]);
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "daemon exited with status %d" n
  | _, _ -> die "daemon killed by a signal");

  (* the log: valid spd-log/1 lines; rpc records carry rids; the
     lifecycle and slow-request events are present *)
  let log_lines =
    In_channel.with_open_text log_file In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  if log_lines = [] then die "log file is empty";
  let records =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok d -> d
        | Error e -> die "log line is not JSON: %s (%s)" l e)
      log_lines
  in
  let event d = Option.bind (Json.member "event" d) Json.to_string_opt in
  List.iter
    (fun d ->
      if str (member "schema" d) <> "spd-log/1" then die "bad log schema";
      ignore (member "ts" d);
      ignore (member "level" d);
      if event d = Some "rpc" && Json.member "rid" d = None then
        die "rpc record without a rid: %s" (Json.to_string d))
    records;
  let has ev = List.exists (fun d -> event d = Some ev) records in
  List.iter
    (fun ev -> if not (has ev) then die "no %S record in the log" ev)
    [ "server.start"; "rpc"; "rpc.slow"; "engine.cell.start";
      "server.drain"; "server.stop" ];

  (* the trace: an rpc:query span tagged with the last query's rid,
     with a rid-matching cell span nested inside some rpc:query span *)
  let trace =
    match Json.of_string (In_channel.with_open_text trace_file In_channel.input_all) with
    | Ok t -> t
    | Error e -> die "trace is not JSON: %s" e
  in
  let events =
    match Json.to_list (member "traceEvents" trace) with
    | Some evs -> evs
    | None -> die "trace has no traceEvents"
  in
  let name e = Option.bind (Json.member "name" e) Json.to_string_opt in
  let rid e =
    Option.bind (Json.member "args" e) (fun a ->
        Option.bind (Json.member "rid" a) Json.to_string_opt)
  in
  let ts e = Option.bind (Json.member "ts" e) Json.to_number in
  let dur e = Option.bind (Json.member "dur" e) Json.to_number in
  let rpc_spans =
    List.filter (fun e -> name e = Some "rpc:query") events
  in
  if rpc_spans = [] then die "no rpc:query span in the trace";
  if not (List.exists (fun e -> rid e = Some query_rid) rpc_spans) then
    die "no rpc:query span carries the echoed rid %s" query_rid;
  let cells =
    List.filter
      (fun e ->
        match name e with Some n -> String.starts_with ~prefix:"cell:" n | None -> false)
      events
  in
  let nested =
    List.exists
      (fun cell ->
        match rid cell with
        | None -> false
        | Some r ->
            List.exists
              (fun rpc ->
                rid rpc = Some r
                &&
                match (ts rpc, dur rpc, ts cell, dur cell) with
                | Some t0, Some d0, Some t1, Some d1 ->
                    t0 <= t1 +. 1.0 && t1 +. d1 <= t0 +. d0 +. 1.0
                | _ -> false)
              rpc_spans)
      cells
  in
  if not nested then
    die "no cell span nests (by rid and time) inside an rpc:query span";
  print_endline
    "obs_smoke: OK (rids echoed, histograms exact, exposition monotone, \
     log and trace consistent)"
