(** Golden-schedule corpus.

    Every paper workload's SPEC program is scheduled at each corpus
    width and rendered as cycle-by-FU occupancy grids
    ({!Golden_render}); the result must be byte-identical to the file
    committed under [test/golden/].  This pins the scheduler's {e exact}
    packing decisions — not just validity — so any change to DDG
    construction, heap priorities or tie-breaking shows up as a
    readable grid diff.  After an intentional change, re-bless with
    [make golden-promote] and commit the diff. *)

let case name f = Alcotest.test_case name `Quick f

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* first differing line, for a failure message that names the tree *)
let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go n = function
    | x :: xs, y :: ys when String.equal x y -> go (n + 1) (xs, ys)
    | x :: _, y :: _ -> Some (n, x, y)
    | [], y :: _ -> Some (n, "<end of golden file>", y)
    | x :: _, [] -> Some (n, x, "<end of rendering>")
    | [], [] -> None
  in
  go 1 (la, lb)

let check_workload workload width () =
  let path = Filename.concat "golden" (Golden_render.file_name ~workload ~width) in
  if not (Sys.file_exists path) then
    Alcotest.failf "%s missing — run `make golden-promote` and commit" path;
  let golden = slurp path in
  let got = Golden_render.render ~workload ~width in
  if not (String.equal golden got) then
    match first_diff golden got with
    | Some (line, want, have) ->
        Alcotest.failf
          "schedule drifted from %s at line %d:@.  golden: %s@.  got:    \
           %s@.If the change is intentional, re-bless with `make \
           golden-promote`."
          path line want have
    | None -> Alcotest.failf "schedule drifted from %s" path

let tests =
  List.concat_map
    (fun workload ->
      List.map
        (fun width ->
          case
            (Printf.sprintf "%s @ %d FUs matches golden grid" workload width)
            (check_workload workload width))
        Golden_render.widths)
    Spd_workloads.Registry.names
