(** Disambiguator tests: GCD test (against brute force), Banerjee bounds,
    the combined alias oracle, and the STATIC / PERFECT pipelines. *)

open Util
module Ir = Spd_ir
module D = Spd_disambig
module A = Spd_analysis
open Ir

let case name f = Alcotest.test_case name `Quick f
let qcase = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* GCD test *)

let test_gcd_basics () =
  check_int "gcd" 6 (D.Gcd_test.gcd 54 24);
  check_int "gcd neg" 6 (D.Gcd_test.gcd (-54) 24);
  check_int "gcd zero" 7 (D.Gcd_test.gcd 0 7);
  check_int "gcd list" 4 (D.Gcd_test.gcd_list [ 8; 12; 20 ]);
  check_bool "2x + 4y = 3 has no solution" false
    (D.Gcd_test.may_have_solution ~coeffs:[ 2; 4 ] ~const:3);
  check_bool "2x + 4y = 6 may" true
    (D.Gcd_test.may_have_solution ~coeffs:[ 2; 4 ] ~const:6);
  check_bool "no coeffs, const 0" true
    (D.Gcd_test.may_have_solution ~coeffs:[] ~const:0);
  check_bool "no coeffs, const 5" false
    (D.Gcd_test.may_have_solution ~coeffs:[] ~const:5)

(* Soundness: whenever brute force finds an integer solution in a small
   box, the GCD test must not have declared independence. *)
let prop_gcd_sound =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 3) (int_range (-6) 6))
        (int_range (-20) 20))
  in
  QCheck.Test.make ~name:"GCD test is sound vs brute force" ~count:500
    (QCheck.make
       ~print:(fun (cs, c) ->
         Printf.sprintf "coeffs=[%s] const=%d"
           (String.concat ";" (List.map string_of_int cs))
           c)
       gen)
    (fun (coeffs, const) ->
      let rec solutions acc = function
        | [] -> List.exists (fun s -> s + const = 0) acc
        | c :: rest ->
            let acc' =
              List.concat_map
                (fun s -> List.init 21 (fun i -> s + (c * (i - 10))))
                acc
            in
            solutions acc' rest
      in
      let brute = solutions [ 0 ] coeffs in
      (not brute) || D.Gcd_test.may_have_solution ~coeffs ~const)

(* ------------------------------------------------------------------ *)
(* The alias oracle through the frontend *)

let compile_pair src =
  let prog = A.Forwarding.run (compile src) in
  let result = ref None in
  Prog.iter_trees
    (fun _ tree ->
      if !result = None then begin
        let mems = Tree.mem_insns tree in
        match
          (List.filter Insn.is_store mems, List.filter Insn.is_load mems)
        with
        | store :: _, load :: _ ->
            let env = A.Affine.analyze tree in
            result := Some (D.Alias.query tree env store load)
        | _ -> ()
      end)
    prog;
  Option.get !result

let oracle_expectations =
  [
    ( "never aliases (GCD): a[2i] vs a[2i+1]",
      "double a[100]; int main() { int i; double y; y = 0.0; for (i = 0; i < 40; i = i + 1) { a[2*i] = y; y = y + a[2*i+1]; } return (int)y; }",
      D.Alias.No );
    ( "never aliases (Banerjee bounds): a[i] vs a[i+50], i<40",
      "double a[100]; int main() { int i; double y; y = 0.0; for (i = 0; i < 40; i = i + 1) { a[i] = y; y = y + a[i+50]; } return (int)y; }",
      D.Alias.No );
    ( "must alias: load then store at the same subscript",
      "double a[100]; int main() { int i; double y; y = 0.0; for (i = 0; i < 40; i = i + 1) { y = y + a[i]; a[i] = y; } return (int)y; }",
      D.Alias.Must );
    ( "unknown with probability: a[2i] vs a[i+4], i in [1,100]",
      "double a[300]; int main() { int i; double y; y = 0.0; for (i = 1; i <= 100; i = i + 1) { a[2*i] = y; y = y + a[i+4]; } return (int)y; }",
      D.Alias.Unknown (Some (1.0 /. 101.0)) );
    ( "distinct globals never alias",
      "double a[50]; double b[50]; int main() { int i; double y; y = 0.0; for (i = 0; i < 50; i = i + 1) { a[i] = y; y = y + b[i]; } return (int)y; }",
      D.Alias.No );
    ( "frame vs global never alias",
      "double b[50]; int main() { double a[50]; int i; double y; y = 0.0; for (i = 0; i < 50; i = i + 1) { a[i] = y; y = y + b[i]; } return (int)y; }",
      D.Alias.No );
  ]

let test_oracle_table () =
  List.iter
    (fun (name, src, expected) ->
      let got = compile_pair src in
      if not (D.Alias.equal_answer expected got) then
        Alcotest.failf "%s: expected %a, got %a" name D.Alias.pp_answer
          expected D.Alias.pp_answer got)
    oracle_expectations

let test_pointer_params_unknown () =
  let got =
    compile_pair
      "double g1[50]; double g2[50]; double f(double p[], double q[], int n) { int i; double y; y = 0.0; for (i = 0; i < n; i = i + 1) { p[i] = y; y = y + q[i]; } return y; } int main() { return (int)f(g1, g2, 50); }"
  in
  match got with
  | D.Alias.Unknown _ -> ()
  | a -> Alcotest.failf "expected unknown, got %a" D.Alias.pp_answer a

(* Soundness of the whole STATIC pipeline: every arc it removes is indeed
   never dynamically aliased (checked by profiling the NAIVE program). *)
let test_static_removals_sound () =
  List.iter
    (fun bench ->
      let w = Spd_workloads.Registry.by_name bench in
      let lowered = A.Forwarding.run (compile w.source) in
      let naive = A.Memarcs.annotate lowered in
      let static = D.Static_disambig.run naive in
      let profile = Spd_sim.Profile.create () in
      ignore (Spd_sim.Interp.run ~profile naive);
      Prog.iter_trees
        (fun func (t : Tree.t) ->
          List.iter
            (fun (arc : Memdep.t) ->
              match arc.status with
              | Memdep.Removed Memdep.By_static ->
                  if
                    not
                      (Spd_sim.Profile.superfluous profile ~func
                         ~tree_id:t.id ~src:arc.src ~dst:arc.dst)
                  then
                    Alcotest.failf
                      "%s %s: STATIC removed an arc that aliased \
                       dynamically (#%d -> #%d)"
                      bench t.name arc.src arc.dst
              | _ -> ())
            t.arcs)
        static)
    [ "adi"; "fft"; "moment"; "quick"; "tree"; "espresso" ]

let test_static_stats () =
  let w = Spd_workloads.Registry.by_name "adi" in
  let lowered = A.Forwarding.run (compile w.source) in
  let naive = A.Memarcs.annotate lowered in
  let stats =
    { D.Static_disambig.proven_no = 0; proven_must = 0; unknown = 0 }
  in
  ignore (D.Static_disambig.run ~stats naive);
  check_bool "some proven independent" true (stats.proven_no > 0);
  check_bool "some unknown remain" true (stats.unknown > 0)

let test_perfect_optimistic () =
  let w = Spd_workloads.Registry.by_name "fft" in
  let lowered = compile w.source in
  let naive =
    Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ()) Spd_harness.Pipeline.Naive
      lowered
  in
  let perfect =
    Spd_harness.Pipeline.prepare ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:2 ()) Spd_harness.Pipeline.Perfect
      lowered
  in
  let count sel p =
    let n = ref 0 in
    Prog.iter_trees
      (fun _ (t : Tree.t) -> n := !n + List.length (List.filter sel t.arcs))
      p;
    !n
  in
  check_bool "perfect removed arcs" true
    (count Memdep.is_active perfect.prog < count Memdep.is_active naive.prog)

let tests =
  [
    case "gcd basics" test_gcd_basics;
    qcase prop_gcd_sound;
    case "oracle answer table" test_oracle_table;
    case "pointer params unknown" test_pointer_params_unknown;
    case "STATIC removals are dynamically sound" test_static_removals_sound;
    case "STATIC statistics" test_static_stats;
    case "PERFECT removes superfluous arcs" test_perfect_optimistic;
  ]
