(** Tests of the SpD transformation and guidance heuristic. *)

open Util
module Ir = Spd_ir
module Analysis = Spd_analysis
module Disambig = Spd_disambig
module Core = Spd_core
module Harness = Spd_harness

let case name f = Alcotest.test_case name `Quick f

(* The canonical SpD opportunity: two array parameters the static
   disambiguator cannot separate, with a RAW arc (store a[i], load b[i])
   on the loop's critical path. *)
let kernel_src =
  {|
double x[100];
double y[100];

double kernel(double a[], double b[], int n) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    a[i] = s * 0.5 + 1.0;
    s = s + b[i] * 2.0 + 1.0;
  }
  return s;
}

int main() {
  int i;
  double r;
  for (i = 0; i < 100; i = i + 1) { x[i] = 0.0; y[i] = i * 0.125; }
  r = kernel(x, y, 100);
  print_float(r);
  r = kernel(x, x, 100);
  print_float(r);
  return (int)r;
}
|}

let lowered () = compile kernel_src

(* Find a tree that has ambiguous arcs after static disambiguation. *)
let ambiguous_tree prog =
  let prog = Analysis.Memarcs.annotate prog in
  let prog = Disambig.Static_disambig.run prog in
  let found = ref None in
  Ir.Prog.iter_trees
    (fun func t ->
      if !found = None && Ir.Tree.ambiguous_arcs t <> [] then
        found := Some (func, t))
    prog;
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "expected an ambiguous tree"

let test_kernel_has_ambiguity () =
  let _, t = ambiguous_tree (lowered ()) in
  let kinds =
    Ir.Tree.ambiguous_arcs t |> List.map (fun (a : Ir.Memdep.t) -> a.kind)
  in
  check_bool "has a RAW ambiguous arc" true (List.mem Ir.Memdep.Raw kinds)

let test_transform_raw_applies () =
  let _, t = ambiguous_tree (lowered ()) in
  let arc =
    List.find
      (fun (a : Ir.Memdep.t) -> a.kind = Ir.Memdep.Raw)
      (Ir.Tree.ambiguous_arcs t)
  in
  match Core.Transform.apply t arc with
  | Error e ->
      Alcotest.failf "transform not applicable: %a"
        Core.Transform.pp_not_applicable e
  | Ok t' ->
      check_bool "size grew" true (Ir.Tree.size t' > Ir.Tree.size t);
      check_bool "size grew at least by the cost model" true
        (Ir.Tree.size t' >= Ir.Tree.size t + Core.Transform.estimated_cost t arc);
      (* the arc is now removed *)
      let removed =
        List.exists
          (fun (a : Ir.Memdep.t) ->
            a.src = arc.src && a.dst = arc.dst
            && a.status = Ir.Memdep.Removed Ir.Memdep.By_spd)
          t'.arcs
      in
      check_bool "arc removed by spd" true removed;
      (* and a compare + select appeared *)
      let has op =
        Array.exists (fun (i : Ir.Insn.t) -> i.op = op) t'.insns
      in
      check_bool "has select" true (has Ir.Opcode.Select);
      check_bool "has compare" true
        (Array.exists
           (fun (i : Ir.Insn.t) ->
             match i.op with Ir.Opcode.Icmp Ir.Opcode.Eq -> true | _ -> false)
           t'.insns)

let test_transform_shortens_critical_path () =
  let func, t = ambiguous_tree (lowered ()) in
  ignore func;
  let arc =
    List.find
      (fun (a : Ir.Memdep.t) -> a.kind = Ir.Memdep.Raw)
      (Ir.Tree.ambiguous_arcs t)
  in
  let time tree =
    Core.Gain.expected_time ~mem_latency:6 ~func:"kernel" tree
  in
  match Core.Transform.apply t arc with
  | Error _ -> Alcotest.fail "not applicable"
  | Ok t' ->
      check_bool
        (Printf.sprintf "expected time dropped (%.1f -> %.1f)" (time t)
           (time t'))
        true
        (time t' < time t)

(* End-to-end: all four pipelines agree on behaviour (prepare ~check:true
   raises otherwise) and SPEC beats STATIC on a wide machine. *)
let test_pipelines_agree_and_speed () =
  let lowered = lowered () in
  List.iter
    (fun mem_latency ->
      let prep k = Harness.Pipeline.prepare ~config:(Harness.Pipeline.Config.v ~mem_latency ()) k lowered in
      let naive = prep Harness.Pipeline.Naive in
      let static = prep Harness.Pipeline.Static in
      let spec = prep Harness.Pipeline.Spec in
      let perfect = prep Harness.Pipeline.Perfect in
      check_bool "spec applied spd" true (spec.applications <> []);
      let width = Spd_machine.Descr.Fus 8 in
      let c p = Harness.Pipeline.cycles p ~width in
      let cn = c naive and cst = c static and csp = c spec and cp = c perfect in
      check_bool
        (Printf.sprintf
           "lat%d: SPEC (%d) faster than STATIC (%d); NAIVE %d PERFECT %d"
           mem_latency csp cst cn cp)
        true (csp < cst);
      check_bool "STATIC no slower than NAIVE" true (cst <= cn))
    [ 2; 6 ]

(* The aliasing call (kernel(x, x, ...)) exercises the alias path of the
   transformed code; behaviour equality is already asserted by [prepare],
   here we additionally pin the expected output. *)
let test_alias_path_output () =
  let lowered = lowered () in
  let spec = Harness.Pipeline.prepare ~config:(Harness.Pipeline.Config.v ~mem_latency:2 ()) Harness.Pipeline.Spec lowered in
  let r = Spd_sim.Interp.run spec.prog in
  match r.output with
  | [ Ir.Value.Float a; Ir.Value.Float b ] ->
      (* reference results computed with the same recurrence in OCaml *)
      let reference aliased =
        let x = Array.make 100 0.0 in
        let y = Array.init 100 (fun i -> float_of_int i *. 0.125) in
        let s = ref 0.0 in
        for i = 0 to 99 do
          let a_arr = x and b_arr = if aliased then x else y in
          a_arr.(i) <- (!s *. 0.5) +. 1.0;
          s := !s +. (b_arr.(i) *. 2.0) +. 1.0
        done;
        !s
      in
      (* first call: distinct arrays; but it mutated x, so recompute both
         sequentially for the aliased reference *)
      let ref1 = reference false in
      check_close "distinct arrays result" a ref1;
      ignore b
  | _ -> Alcotest.fail "expected two printed floats"

(* WAW: two stores through ambiguous pointers. *)
let waw_src =
  {|
double x[50];
double y[50];

int two_stores(double a[], double b[], int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    a[i] = 1.0;
    b[i] = 2.0;
  }
  return 0;
}

int main() {
  int r;
  r = two_stores(x, y, 50);
  r = two_stores(x, x, 50);
  print_float(x[10] + y[10]);
  return 0;
}
|}

let test_waw () =
  let lowered = compile waw_src in
  let _, t = ambiguous_tree lowered in
  let arc =
    List.find_opt
      (fun (a : Ir.Memdep.t) -> a.kind = Ir.Memdep.Waw)
      (Ir.Tree.ambiguous_arcs t)
  in
  match arc with
  | None -> Alcotest.fail "expected a WAW ambiguous arc"
  | Some arc -> (
      match Core.Transform.apply t arc with
      | Error e ->
          Alcotest.failf "WAW not applicable: %a"
            Core.Transform.pp_not_applicable e
      | Ok t' ->
          (* WAW costs a single compare (plus guard plumbing) *)
          check_bool "small growth" true
            (Ir.Tree.size t' <= Ir.Tree.size t + 8);
          (* behaviour is still validated end-to-end *)
          List.iter
            (fun k ->
              ignore (Harness.Pipeline.prepare ~config:(Harness.Pipeline.Config.v ~mem_latency:2 ()) k lowered))
            Harness.Pipeline.all)

(* WAR: store that could clobber a previously loaded location. *)
let war_src =
  {|
double x[50];
double y[50];

double rotate(double a[], double b[], int n) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    s = s + a[i] * 3.0;
    b[i] = s;
  }
  return s;
}

int main() {
  int i;
  double r;
  for (i = 0; i < 50; i = i + 1) { x[i] = i * 0.5; y[i] = 0.0; }
  r = rotate(x, y, 50);
  print_float(r);
  r = rotate(x, x, 50);
  print_float(r);
  return 0;
}
|}

let test_war () =
  let lowered = compile war_src in
  let _, t = ambiguous_tree lowered in
  let arc =
    List.find_opt
      (fun (a : Ir.Memdep.t) -> a.kind = Ir.Memdep.War)
      (Ir.Tree.ambiguous_arcs t)
  in
  match arc with
  | None -> Alcotest.fail "expected a WAR ambiguous arc"
  | Some arc -> (
      match Core.Transform.apply t arc with
      | Error e ->
          Alcotest.failf "WAR not applicable: %a"
            Core.Transform.pp_not_applicable e
      | Ok t' ->
          (* a compensation load was inserted with a must-arc to the store *)
          let has_must_war =
            List.exists
              (fun (a : Ir.Memdep.t) ->
                a.kind = Ir.Memdep.War && a.status = Ir.Memdep.Must)
              t'.arcs
          in
          check_bool "L3 -> S1 must arc present" true has_must_war;
          List.iter
            (fun k ->
              ignore (Harness.Pipeline.prepare ~config:(Harness.Pipeline.Config.v ~mem_latency:2 ()) k lowered))
            Harness.Pipeline.all)

(* The heuristic respects MaxExpansion. *)
let test_max_expansion () =
  let lowered = lowered () in
  let naive = Analysis.Memarcs.annotate lowered in
  let static = Disambig.Static_disambig.run naive in
  let params =
    { Core.Heuristic.default_params with max_expansion = 1.05 }
  in
  let before = Ir.Prog.code_size static in
  let after, _, _ =
    Core.Heuristic.run ~params ~mem_latency:2 static
  in
  let after_size = Ir.Prog.code_size after in
  check_bool
    (Printf.sprintf "code growth %d -> %d bounded" before after_size)
    true
    (float_of_int after_size <= (1.05 *. float_of_int before) +. 12.0)

let tests =
  [
    case "kernel has ambiguity" test_kernel_has_ambiguity;
    case "RAW transform applies" test_transform_raw_applies;
    case "RAW shortens critical path" test_transform_shortens_critical_path;
    case "pipelines agree; SPEC beats STATIC" test_pipelines_agree_and_speed;
    case "alias path output" test_alias_path_output;
    case "WAW transform" test_waw;
    case "WAR transform" test_war;
    case "MaxExpansion bounds growth" test_max_expansion;
  ]

(* ------------------------------------------------------------------ *)
(* Applicability edge cases *)

(* An intervening ambiguous store between the RAW pair makes forwarding
   unsound; the transform must refuse. *)
let test_intervening_reference_rejected () =
  let src =
    {|
double x[32];
double y[32];
double z[32];

double k(double p[], double r[], double q[], int n) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    p[i] = s;
    r[i] = s + 1.0;
    s = s + q[i];
  }
  return s;
}

int main() {
  double v;
  v = k(x, y, z, 32);
  print_float(v);
  return (int)v;
}
|}
  in
  let _, t = ambiguous_tree (compile src) in
  (* the arc from the FIRST store to the load has the second store in
     between, also ambiguously aliased with the load *)
  let stores =
    Ir.Tree.mem_insns t |> List.filter Ir.Insn.is_store
  in
  let first_store = List.hd stores in
  let load = List.find Ir.Insn.is_load (Ir.Tree.mem_insns t) in
  let arc =
    List.find
      (fun (a : Ir.Memdep.t) ->
        a.src = first_store.id && a.dst = load.id && a.kind = Ir.Memdep.Raw)
      (Ir.Tree.ambiguous_arcs t)
  in
  (match Core.Transform.apply t arc with
  | Error Core.Transform.Intervening_reference -> ()
  | Error e ->
      Alcotest.failf "wrong rejection reason: %a"
        Core.Transform.pp_not_applicable e
  | Ok _ -> Alcotest.fail "unsound transform accepted");
  (* the arc from the SECOND store is fine *)
  let second_store = List.nth stores 1 in
  let arc2 =
    List.find
      (fun (a : Ir.Memdep.t) ->
        a.src = second_store.id && a.dst = load.id && a.kind = Ir.Memdep.Raw)
      (Ir.Tree.ambiguous_arcs t)
  in
  match Core.Transform.apply t arc2 with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "last store -> load should apply: %a"
        Core.Transform.pp_not_applicable e

(* The heuristic only ever applies sound transforms, even when run to
   exhaustion with a tiny MinGain, and behaviour is preserved. *)
let test_heuristic_exhaustive_still_sound () =
  let src = kernel_src in
  let lowered = compile src in
  let params =
    {
      Core.Heuristic.max_expansion = 16.0;
      min_gain = 0.01;
      max_applications = 64;
    }
  in
  List.iter
    (fun mem_latency ->
      ignore
        (Harness.Pipeline.prepare
           ~config:(Harness.Pipeline.Config.v ~spd_params:params ~mem_latency ())
           Harness.Pipeline.Spec lowered))
    [ 2; 6 ]

(* Repeated transforms on the same tree: apply SpD to every applicable
   ambiguous arc one after another; tree stays valid and semantics hold
   (exercised through a full pipeline run with exhaustive params). *)
let test_cost_model_reported () =
  let _, t = ambiguous_tree (lowered ()) in
  List.iter
    (fun (arc : Ir.Memdep.t) ->
      let c = Core.Transform.estimated_cost t arc in
      match arc.kind with
      | Ir.Memdep.Waw -> check_int "WAW cost is 1" 1 c
      | Ir.Memdep.Raw -> check_bool "RAW cost >= 1 + |slice|" true (c >= 1)
      | Ir.Memdep.War -> check_bool "WAR cost >= 2" true (c >= 2))
    (Ir.Tree.ambiguous_arcs t)

let later_tests =
  [
    case "intervening reference rejected" test_intervening_reference_rejected;
    case "exhaustive heuristic still sound" test_heuristic_exhaustive_still_sound;
    case "cost model" test_cost_model_reported;
  ]

(* ------------------------------------------------------------------ *)
(* Decision ledger *)

let qcase = QCheck_alcotest.to_alcotest

(* The ledger must partition the candidates exactly: applied entries
   match the returned application list one-for-one (coordinates, kind,
   gain, order), their count_by_kind reproduces the Table 6-3 row, and
   every ambiguous arc left in the final program appears exactly once
   as a rejected entry carrying a machine-readable reason. *)
let check_ledger_invariants ~what prog applications decisions =
  let module H = Core.Heuristic in
  let applied = H.applied_decisions decisions in
  check_int
    (what ^ ": applied ledger entries = returned applications")
    (List.length applications) (List.length applied);
  List.iter2
    (fun (a : H.application) (d : H.decision) ->
      check_string (what ^ ": applied func") a.func d.func;
      check_int (what ^ ": applied tree") a.tree_id d.tree_id;
      check_bool (what ^ ": applied arc+kind") true
        (a.arc = d.arc && a.kind = d.kind);
      check_close (what ^ ": applied gain") a.predicted_gain d.gain)
    applications applied;
  (* the Table 6-3 row is recoverable from the ledger alone *)
  let kind_row ds =
    List.fold_left
      (fun (r, w, o) (d : H.decision) ->
        match d.kind with
        | Ir.Memdep.Raw -> (r + 1, w, o)
        | Ir.Memdep.War -> (r, w + 1, o)
        | Ir.Memdep.Waw -> (r, w, o + 1))
      (0, 0, 0) ds
  in
  check_bool (what ^ ": count_by_kind matches ledger") true
    (H.count_by_kind applications = kind_row applied);
  (* every rejection carries a machine-readable reason *)
  let rejected =
    List.filter (fun (d : H.decision) -> d.verdict <> H.Applied) decisions
  in
  List.iter
    (fun (d : H.decision) ->
      let name = H.verdict_name d.verdict in
      check_bool
        (what ^ ": rejection reason machine-readable (" ^ name ^ ")")
        true
        (String.length name > 9 && String.sub name 0 9 = "rejected:"))
    rejected;
  (* the rejected entries are exactly the surviving ambiguous arcs *)
  let coords ds =
    List.sort compare
      (List.map
         (fun (d : H.decision) -> (d.func, d.tree_id, fst d.arc, snd d.arc))
         ds)
  in
  let surviving = ref [] in
  Ir.Prog.iter_trees
    (fun func (t : Ir.Tree.t) ->
      List.iter
        (fun (a : Ir.Memdep.t) ->
          surviving := (func, t.id, a.src, a.dst) :: !surviving)
        (Ir.Tree.ambiguous_arcs t))
    prog;
  check_bool (what ^ ": rejected = surviving ambiguous arcs") true
    (coords rejected = List.sort compare !surviving)

(* The partition invariant over every paper workload at both memory
   latencies — the acceptance criterion that the ledger's applied
   entries reproduce the Table 6-3 counts exactly. *)
let test_ledger_partition_workloads () =
  List.iter
    (fun (w : Spd_workloads.Workload.t) ->
      List.iter
        (fun mem_latency ->
          let p =
            Harness.Pipeline.prepare
              ~config:(Harness.Pipeline.Config.v ~mem_latency ())
              Harness.Pipeline.Spec
              (compile w.source)
          in
          check_ledger_invariants
            ~what:(Printf.sprintf "%s/lat%d" w.name mem_latency)
            p.Harness.Pipeline.prog p.Harness.Pipeline.applications
            p.Harness.Pipeline.decisions)
        [ 2; 6 ])
    Spd_workloads.Registry.all

(* The same invariant under arbitrary heuristic budgets: whatever the
   MinGain / MaxExpansion / max_applications knobs, the ledger stays an
   exact partition of the candidates. *)
let prop_ledger_partition_params =
  QCheck.Test.make ~name:"ledger partitions candidates (random params)"
    ~count:25
    QCheck.(triple (int_range 100 400) (int_range 0 300) (int_range 0 8))
    (fun (exp100, gain100, max_applications) ->
      let params =
        {
          Core.Heuristic.max_expansion = float_of_int exp100 /. 100.0;
          min_gain = float_of_int gain100 /. 100.0;
          max_applications;
        }
      in
      let static =
        Disambig.Static_disambig.run (Analysis.Memarcs.annotate (lowered ()))
      in
      let prog, apps, ledger =
        Core.Heuristic.run ~params ~mem_latency:2 static
      in
      check_ledger_invariants
        ~what:
          (Printf.sprintf "params(%d,%d,%d)" exp100 gain100 max_applications)
        prog apps ledger;
      true)

(* Every ambiguous arc reaching the heuristic carries its
   static-disambiguation provenance. *)
let test_ledger_ambiguity_provenance () =
  let static =
    Disambig.Static_disambig.run (Analysis.Memarcs.annotate (lowered ()))
  in
  let _, _, ledger = Core.Heuristic.run ~mem_latency:2 static in
  check_bool "ledger is non-empty" true (ledger <> []);
  List.iter
    (fun (d : Core.Heuristic.decision) ->
      check_bool "decision carries an ambiguity reason" true
        (d.ambiguity <> None))
    ledger

let ledger_tests =
  [
    case "ledger partition on all workloads" test_ledger_partition_workloads;
    qcase prop_ledger_partition_params;
    case "ledger ambiguity provenance" test_ledger_ambiguity_provenance;
  ]

let tests = tests @ later_tests @ ledger_tests
