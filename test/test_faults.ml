(** Robustness tests: deterministic fault injection, contained cell
    failures with retry, and the self-healing on-disk cache. *)

open Util
module H = Spd_harness
module Engine = H.Engine
module Faults = H.Faults

let case name f = Alcotest.test_case name `Quick f

let parse_ok spec =
  match Faults.parse spec with
  | Ok f -> f
  | Error msg -> Alcotest.failf "Faults.parse %S: %s" spec msg

(* ------------------------------------------------------------------ *)

let test_faults_parse () =
  check_bool "none is none" true (Faults.is_none Faults.none);
  check_bool "empty spec is none" true (Faults.is_none (parse_ok ""));
  check_bool "cache-corrupt armed" false
    (Faults.is_none (parse_ok "cache-corrupt:3"));
  check_int "fuel carried" 1234
    (Option.get (Faults.fuel (parse_ok "fuel:1234,cell-raise:adi/2/SPEC")));
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "Faults.parse %S unexpectedly succeeded" bad
      | Error _ -> ())
    [ "bogus"; "cache-corrupt:x"; "cache-corrupt:0"; "fuel:"; "cell-raise:";
      "cell-raise:k@x"; "conn-torn-frame:"; "conn-torn-frame:0";
      "conn-garbage-header:x"; "conn-stall:-1"; "worker-raise:0" ]

let test_conn_faults_parse () =
  let f =
    parse_ok "conn-torn-frame:4,conn-garbage-header:3,conn-stall:2"
  in
  check_bool "chaos budgets arm the spec" false (Faults.is_none f);
  check_int "torn budget" 4 (Faults.conn_torn_frames f);
  check_int "garbage budget" 3 (Faults.conn_garbage_headers f);
  check_int "stall budget" 2 (Faults.conn_stalls f);
  check_int "unarmed budget is zero" 0 (Faults.conn_torn_frames Faults.none)

let test_worker_raise_hook () =
  let f = parse_ok "worker-raise:2" in
  check_bool "worker-raise arms the spec" false (Faults.is_none f);
  let fired = ref 0 in
  for _ = 1 to 5 do
    match Faults.worker_raise f with
    | () -> ()
    | exception Faults.Injected _ -> incr fired
  done;
  check_int "fires exactly its budget" 2 !fired;
  (* a no-fault spec never fires *)
  Faults.worker_raise Faults.none

let test_cell_raise_matching () =
  let f = parse_ok "cell-raise:adi/2/SPEC" in
  check_bool "prefix match raises" true
    (match Faults.cell_raise f ~key:"adi/2/SPEC/summary" with
    | () -> false
    | exception Faults.Injected _ -> true);
  let f = parse_ok "cell-raise:adi/2/SPEC" in
  Faults.cell_raise f ~key:"adi/6/SPEC/summary";
  Faults.cell_raise f ~key:"fft/2/SPEC/summary" (* no match: no raise *)

let test_checker_raise_budget () =
  let f = parse_ok "checker-raise:2" in
  check_bool "checker-raise arms the spec" false (Faults.is_none f);
  let fired = ref 0 in
  for _ = 1 to 5 do
    match Faults.checker_raise f with
    | () -> ()
    | exception Faults.Injected _ -> incr fired
  done;
  check_int "fires exactly its budget" 2 !fired;
  (* a no-fault spec never fires *)
  Faults.checker_raise Faults.none;
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "Faults.parse %S unexpectedly succeeded" bad
      | Error _ -> ())
    [ "checker-raise:"; "checker-raise:0"; "checker-raise:x" ]

(* A raising per-application checker fails only the grid cell whose
   preparation invoked it — the documented {!Spd_core.Heuristic.checker}
   contract: the exception propagates out of [Heuristic.run] and the
   engine's protected runner contains it. *)
let test_checker_raise_contained () =
  let faults = parse_ok "checker-raise:1" in
  let s = Engine.Session.create ~jobs:1 ~faults () in
  Fun.protect ~finally:(fun () -> Engine.Session.close s) @@ fun () ->
  (match
     Engine.Session.submit s
       (Engine.Query.v ~bench:"moment" ~latency:2 Engine.Query.Spd_counts)
   with
  | Engine.Failed f ->
      check_bool "failure key names the SPEC cell" true
        (String.starts_with ~prefix:"moment/2/SPEC" f.Engine.key);
      check_bool "failure is the injected fault" true
        (match f.Engine.exn with
        | Faults.Injected _ -> true
        | _ -> false)
  | Engine.Ok _ -> Alcotest.fail "expected Failed outcome");
  (* the budget is spent: sibling cells run their checkers cleanly *)
  ignore (Engine.Session.spd_counts s ~bench:"moment" ~latency:6);
  check_int "only the faulted cell failed" 1
    (List.length (Engine.Session.failures s))

(* And through the report: the faulted cell renders n/a, the appendix
   names the injection, every other cell keeps its value. *)
let test_checker_raise_renders_na () =
  let faults = parse_ok "checker-raise:1" in
  Test_harness.with_session
    (Engine.Session.create ~jobs:1 ~faults ())
    (fun s ->
      let table = Test_harness.render (H.Report.table6_3 s) in
      let appendix = Test_harness.render (H.Report.failure_appendix s) in
      check_bool "faulted table renders n/a" true
        (Test_harness.contains table "n/a");
      check_bool "appendix names the fault" true
        (Test_harness.contains appendix "Fault injected");
      check_int "exactly one cell failed" 1
        (List.length (Engine.Session.failures s)))

(* ------------------------------------------------------------------ *)
(* A cell that raises once and then succeeds: with retries=2 the session
   must deliver the clean value and record the retry, not a failure. *)

let test_retry_then_succeed () =
  let clean =
    let s = Engine.Session.create ~jobs:1 () in
    Fun.protect ~finally:(fun () -> Engine.Session.close s) @@ fun () ->
    Engine.Session.spd_counts s ~bench:"moment" ~latency:2
  in
  let faults = parse_ok "cell-raise:moment/2/SPEC/summary@1" in
  let s = Engine.Session.create ~jobs:1 ~retries:2 ~faults () in
  Fun.protect ~finally:(fun () -> Engine.Session.close s) @@ fun () ->
  let got = Engine.Session.spd_counts s ~bench:"moment" ~latency:2 in
  check_bool "value identical to clean session" true (got = clean);
  let st = Engine.Session.stats s in
  check_int "one retry recorded" 1 st.Engine.Stats.cell_retries;
  check_int "no failure recorded" 0 st.Engine.Stats.cell_failures;
  check_bool "failures list empty" true (Engine.Session.failures s = [])

(* Without a retry budget the same fault becomes a contained failure:
   the outcome is [Failed], the raising accessor raises [Cell_failed],
   and sibling cells still compute. *)

let test_contained_failure () =
  let faults = parse_ok "cell-raise:moment/2/SPEC/summary" in
  let s = Engine.Session.create ~jobs:1 ~faults () in
  Fun.protect ~finally:(fun () -> Engine.Session.close s) @@ fun () ->
  (match
     Engine.Session.submit s
       (Engine.Query.v ~bench:"moment" ~latency:2 Engine.Query.Spd_counts)
   with
  | Engine.Failed f ->
      check_bool "failure key names the cell" true
        (f.Engine.key = "moment/2/SPEC/summary")
  | Engine.Ok _ -> Alcotest.fail "expected Failed outcome");
  check_bool "raising accessor raises Cell_failed" true
    (match Engine.Session.spd_counts s ~bench:"moment" ~latency:2 with
    | _ -> false
    | exception Engine.Cell_failed _ -> true);
  (* the failure was memoized, not recomputed *)
  check_int "one failure recorded" 1
    (Engine.Session.stats s).Engine.Stats.cell_failures;
  (* sibling cells are unaffected *)
  ignore (Engine.Session.spd_counts s ~bench:"moment" ~latency:6);
  check_int "sibling cell computed" 1
    (List.length (Engine.Session.failures s))

(* ------------------------------------------------------------------ *)
(* Reports render a failed cell as n/a, append the failure appendix, and
   every other cell still carries its value. *)

let test_report_renders_na () =
  let clean =
    Test_harness.with_session (Engine.Session.create ~jobs:1 ()) (fun s ->
        Test_harness.render (H.Report.table6_3 s))
  in
  let faults = parse_ok "cell-raise:moment/2/SPEC" in
  let faulted, appendix =
    Test_harness.with_session
      (Engine.Session.create ~jobs:2 ~faults ())
      (fun s ->
        let table = Test_harness.render (H.Report.table6_3 s) in
        let appendix =
          Test_harness.render (H.Report.failure_appendix s)
        in
        (table, appendix))
  in
  check_bool "faulted table renders n/a" true
    (Test_harness.contains faulted "n/a");
  check_bool "clean table has no n/a" false
    (Test_harness.contains clean "n/a");
  check_bool "appendix names the injected cell" true
    (Test_harness.contains appendix "moment/2/SPEC/summary");
  check_bool "appendix names the fault" true
    (Test_harness.contains appendix "Fault injected");
  (* every other row still renders its numbers: the outputs differ only
     on the moment row *)
  let lines s = String.split_on_char '\n' s in
  let diff_rows =
    List.combine (lines clean) (lines faulted)
    |> List.filter (fun (a, b) -> not (String.equal a b))
  in
  (* the moment row goes n/a and TOTAL drops its contribution; every
     other row is untouched *)
  check_int "exactly two rows differ (moment + TOTAL)" 2
    (List.length diff_rows);
  check_bool "the differing rows are moment's and TOTAL" true
    (match diff_rows with
    | [ (a, _); (b, _) ] ->
        Test_harness.contains a "moment" && Test_harness.contains b "TOTAL"
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Self-healing cache: truncate one entry and bit-flip another; a warm
   rerun must detect both, evict, recompute and emit identical bytes. *)

let flip_byte path =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string s in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b)

let truncate_file path =
  let s = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub s 0 (String.length s / 2)))

let test_cache_self_healing () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spd_heal_test_%d" (Unix.getpid ()))
  in
  Test_harness.rm_rf dir;
  Fun.protect ~finally:(fun () -> Test_harness.rm_rf dir) @@ fun () ->
  let render s = Test_harness.render (H.Report.table6_3 s) in
  let cold =
    Test_harness.with_session
      (Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir ())
      render
  in
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cache")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  check_bool "cold run wrote cache entries" true (List.length entries >= 2);
  truncate_file (List.nth entries 0);
  flip_byte (List.nth entries 1);
  let s = Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir () in
  let warm = Test_harness.with_session s render in
  let st = Engine.Session.stats s in
  check_int "both corrupt entries evicted" 2 st.Engine.Stats.disk_evictions;
  check_bool "evicted cells recomputed" true
    (st.Engine.Stats.preparations > 0);
  check_bool "healed output bit-identical to cold" true
    (String.equal cold warm);
  (* third run: fully healed, nothing to evict or recompute *)
  let s3 = Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir () in
  let again = Test_harness.with_session s3 render in
  let st3 = Engine.Session.stats s3 in
  check_int "healed cache: no evictions" 0 st3.Engine.Stats.disk_evictions;
  check_int "healed cache: no recomputation" 0 st3.Engine.Stats.preparations;
  check_bool "healed cache output identical" true (String.equal cold again)

(* The cache-corrupt fault: corrupt the Nth cache *read*, so a warm run
   heals exactly that one entry. *)

let test_cache_corrupt_fault () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spd_corrupt_fault_test_%d" (Unix.getpid ()))
  in
  Test_harness.rm_rf dir;
  Fun.protect ~finally:(fun () -> Test_harness.rm_rf dir) @@ fun () ->
  let render s = Test_harness.render (H.Report.table6_3 s) in
  let cold =
    Test_harness.with_session
      (Engine.Session.create ~jobs:1 ~disk_cache:true ~cache_dir:dir ())
      render
  in
  let s =
    Engine.Session.create ~jobs:1 ~disk_cache:true ~cache_dir:dir
      ~faults:(parse_ok "cache-corrupt:1") ()
  in
  let warm = Test_harness.with_session s render in
  let st = Engine.Session.stats s in
  check_int "exactly one eviction" 1 st.Engine.Stats.disk_evictions;
  check_bool "output unaffected" true (String.equal cold warm)

let tests =
  [
    case "faults: parse and reject" test_faults_parse;
    case "faults: cell-raise key matching" test_cell_raise_matching;
    case "faults: chaos-client budgets" test_conn_faults_parse;
    case "faults: worker-raise budget" test_worker_raise_hook;
    case "faults: checker-raise budget" test_checker_raise_budget;
    case "engine: checker-raise contained to its cell"
      test_checker_raise_contained;
    case "report: checker-raise renders n/a" test_checker_raise_renders_na;
    case "engine: retry then succeed" test_retry_then_succeed;
    case "engine: contained cell failure" test_contained_failure;
    case "report: n/a cells and failure appendix" test_report_renders_na;
    case "cache: self-healing after corruption" test_cache_self_healing;
    case "cache: cache-corrupt fault injection" test_cache_corrupt_fault;
  ]
