(** Harness tests: pipeline ordering guarantees, the differential
    random-program property (the repository's strongest correctness
    check), experiment memoization and report rendering. *)

open Util
module Ir = Spd_ir
module H = Spd_harness
module Pipeline = H.Pipeline

let case name f = Alcotest.test_case name `Quick f
let qcase = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* On an infinite machine, removing dependence arcs can only help, so
   PERFECT <= STATIC <= NAIVE holds exactly. *)

let test_pipeline_ordering_infinite () =
  List.iter
    (fun bench ->
      let w = Spd_workloads.Registry.by_name bench in
      let lowered = compile w.source in
      List.iter
        (fun mem_latency ->
          let c kind =
            Pipeline.cycles
              (Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) kind lowered)
              ~width:Spd_machine.Descr.Infinite
          in
          let cn = c Pipeline.Naive in
          let cst = c Pipeline.Static in
          let cp = c Pipeline.Perfect in
          check_bool
            (Printf.sprintf "%s lat%d: STATIC (%d) <= NAIVE (%d)" bench
               mem_latency cst cn)
            true (cst <= cn);
          check_bool
            (Printf.sprintf "%s lat%d: PERFECT (%d) <= STATIC (%d)" bench
               mem_latency cp cst)
            true (cp <= cst))
        [ 2; 6 ])
    [ "adi"; "fft"; "moment"; "tree" ]

(* SPEC on an infinite machine is never slower than STATIC: SpD only
   removes arcs and adds off-critical-path compensation code. *)
let test_spec_no_slower_infinite () =
  List.iter
    (fun bench ->
      let w = Spd_workloads.Registry.by_name bench in
      let lowered = compile w.source in
      let c kind =
        Pipeline.cycles
          (Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency:6 ()) kind lowered)
          ~width:Spd_machine.Descr.Infinite
      in
      let cst = c Pipeline.Static and csp = c Pipeline.Spec in
      check_bool
        (Printf.sprintf "%s: SPEC (%d) <= STATIC (%d) on infinite machine"
           bench csp cst)
        true (csp <= cst))
    [ "adi"; "bcuint"; "fft"; "moment"; "smooft"; "solvde" ]

(* ------------------------------------------------------------------ *)
(* Differential testing on random programs: every pipeline must preserve
   behaviour ([prepare] raises Behaviour_mismatch otherwise). *)

let prop_pipelines_preserve_behaviour =
  QCheck.Test.make ~name:"pipelines preserve behaviour on random programs"
    ~count:40 Gen_prog.arbitrary_source (fun src ->
      let lowered = compile src in
      List.iter
        (fun kind -> ignore (Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency:2 ()) kind lowered))
        Pipeline.all;
      ignore (Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency:6 ()) Pipeline.Spec lowered);
      true)

(* And SpD actually fires on the generated helper (store-then-load on
   pointer parameters) for most programs. *)
let prop_spd_finds_the_helper =
  QCheck.Test.make ~name:"SpD fires on the generated helper" ~count:10
    Gen_prog.arbitrary_source (fun src ->
      let spec = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency:6 ()) Pipeline.Spec (compile src) in
      List.exists
        (fun (a : Spd_core.Heuristic.application) -> a.func = "helper")
        spec.applications)

(* ------------------------------------------------------------------ *)
(* Experiment memoization *)

let with_session = H.Experiment.with_session

let test_experiment_memoizes () =
  with_session (H.Engine.Session.create ~jobs:1 ()) @@ fun s ->
  let t0 = Unix.gettimeofday () in
  let a = H.Experiment.cycles s ~bench:"moment" ~latency:2 Pipeline.Spec
      ~width:(Spd_machine.Descr.Fus 4) in
  let t1 = Unix.gettimeofday () in
  let b = H.Experiment.cycles s ~bench:"moment" ~latency:2 Pipeline.Spec
      ~width:(Spd_machine.Descr.Fus 4) in
  let t2 = Unix.gettimeofday () in
  check_int "same result" a b;
  (* the second call is a table lookup; allow generous slack *)
  check_bool "second call much faster" true
    (t2 -. t1 < Float.max 0.05 ((t1 -. t0) /. 2.0))

let test_speedup_metric () =
  check_close "paper speedup metric" 0.25
    (Pipeline.speedup ~base:125 ~this:100);
  check_close "slowdown negative" (-0.2) (Pipeline.speedup ~base:100 ~this:125)

(* ------------------------------------------------------------------ *)
(* Reports render and mention every benchmark *)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Fmt.with_buffer buf in
  f ppf ();
  Fmt.flush ppf ();
  Buffer.contents buf

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_reports_render () =
  with_session (H.Engine.Session.create ~jobs:1 ()) @@ fun s ->
  let t62 = render (H.Report.table6_2 s) in
  List.iter
    (fun (w : Spd_workloads.Workload.t) ->
      check_bool (w.name ^ " listed") true (contains t62 w.name))
    Spd_workloads.Registry.all;
  let t64 = render (H.Report.table6_4 s) in
  List.iter
    (fun k -> check_bool (k ^ " described") true (contains t64 k))
    [ "NAIVE"; "STATIC"; "SPEC"; "PERFECT" ];
  let t61 = render (H.Report.table6_1 s) in
  check_bool "branch latency shown" true (contains t61 "Branches")

(* ------------------------------------------------------------------ *)
(* Engine determinism: a session with jobs=4 must emit bit-identical
   Table 6-3 / Fig 6-2 / Fig 6-3 numbers to jobs=1, and a warm on-disk
   cache must reproduce them with zero pipeline recomputations. *)

module Engine = H.Engine
module Query = H.Engine.Query

(* the three deterministic grid artefacts, rendered through one
   explicit session *)
let grid_render s =
  render (H.Report.table6_3 s)
  ^ render (H.Report.fig6_2 s)
  ^ render (H.Report.fig6_3 s)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_engine_determinism () =
  let seq = with_session (Engine.Session.create ~jobs:1 ()) grid_render in
  let par = with_session (Engine.Session.create ~jobs:4 ()) grid_render in
  check_bool "jobs=4 output bit-identical to jobs=1" true (String.equal seq par)

(* The machine-readable rendering must be as deterministic as the
   pretty one: the same artefact rendered through a 1-job and a 4-job
   session serialises to bit-identical JSON.  (Only the artefact tables
   are compared — the process-global metrics snapshot accumulates
   across the whole test binary and is deliberately excluded.) *)
let artefact_json s name =
  let a =
    match H.Artefact.find name with
    | Some a -> a
    | None -> Alcotest.failf "artefact %s not registered" name
  in
  String.concat "\n"
    (List.map
       (fun t -> Spd_telemetry.Json.to_string (H.Table.to_json t))
       (a.H.Artefact.tables s))

let test_artefact_json_jobs_invariant () =
  let j1 =
    with_session (Engine.Session.create ~jobs:1 ()) (fun s ->
        artefact_json s "table6_3")
  in
  let j4 =
    with_session (Engine.Session.create ~jobs:4 ()) (fun s ->
        artefact_json s "table6_3")
  in
  check_bool "table6_3 JSON bit-identical across jobs" true
    (String.equal j1 j4)

(* Engine counters (minus wall clock and [jobs]) are themselves
   deterministic: memoization computes each cell exactly once, however
   many domains race for it. *)
let stats_line s =
  Fmt.str "%a" Engine.Stats.pp (Engine.Session.stats s)

let test_stats_pp_stable_across_jobs () =
  let run jobs =
    let s = Engine.Session.create ~jobs () in
    let line =
      with_session s (fun s -> ignore (grid_render s); stats_line s)
    in
    line
  in
  let l1 = run 1 and l4 = run 4 in
  check_bool "Stats.pp sorted key=value" true
    (String.length l1 > 0 && l1.[0] <> ' ');
  check_bool "Stats.pp identical across jobs" true (String.equal l1 l4)

(* SpD run-time dynamics: the interpreter attributes commits to the
   transformed regions.  The profiled arcs SpD picks (low alias
   probability by construction) commit overwhelmingly on the no-alias
   version, and alias-version stores squash. *)
let test_spd_dynamics_counts () =
  with_session (Engine.Session.create ~jobs:2 ()) @@ fun s ->
  let d = H.Experiment.spd_dynamics s ~bench:"perm" ~latency:2 in
  check_bool "perm has transformed regions" true (d.Pipeline.regions <> []);
  check_bool "no-alias commits observed" true
    (List.exists
       (fun (r : Pipeline.region_dynamics) -> r.noalias_commits > 0)
       d.Pipeline.regions);
  let adi = H.Experiment.spd_dynamics s ~bench:"adi" ~latency:2 in
  check_bool "adi squashes alias-version stores" true
    (adi.Pipeline.squashed > 0);
  (* every traversal of a region commits exactly one of its versions *)
  List.iter
    (fun (r : Pipeline.region_dynamics) ->
      check_bool "commit counts non-negative" true
        (r.alias_commits >= 0 && r.noalias_commits >= 0))
    d.Pipeline.regions

let test_engine_disk_cache () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spd_cache_test_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s1 = Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir () in
  let cold = with_session s1 grid_render in
  let st1 = Engine.Session.stats s1 in
  check_bool "cold run prepares pipelines" true
    (st1.Engine.Stats.preparations > 0);
  let s2 = Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir () in
  let warm = with_session s2 grid_render in
  let st2 = Engine.Session.stats s2 in
  check_int "warm run: zero pipeline recomputations" 0
    st2.Engine.Stats.preparations;
  check_int "warm run: zero simulations" 0 st2.Engine.Stats.simulations;
  check_bool "warm run served from disk" true (st2.Engine.Stats.disk_hits > 0);
  check_bool "warm output bit-identical to cold" true
    (String.equal cold warm)

let test_parallel_map_order () =
  let s = Engine.Session.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Engine.Session.close s) @@ fun () ->
  let xs = List.init 100 Fun.id in
  let ys = Engine.Session.parallel_map s (fun x -> x * x) xs in
  check_bool "parallel_map preserves order" true
    (ys = List.map (fun x -> x * x) xs);
  (* exceptions surface after the batch settles *)
  check_bool "parallel_map re-raises" true
    (match
       Engine.Session.parallel_map s
         (fun x -> if x = 17 then failwith "boom" else x)
         xs
     with
    | _ -> false
    | exception Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* The Query API: one typed request path behind every accessor *)

let cycles_q ?fuel ?deadline () =
  Query.v ?fuel ?deadline ~bench:"moment" ~latency:2
    (Query.Cycles { kind = Pipeline.Spec; width = Spd_machine.Descr.Fus 4 })

let get = function
  | Engine.Ok v -> v
  | Engine.Failed f -> raise (Engine.Cell_failed f)

let test_query_submit () =
  with_session (Engine.Session.create ~jobs:1 ()) @@ fun s ->
  (* submit and the deprecated shim answer identically *)
  let via_query =
    Engine.to_int (Engine.Session.submit s (cycles_q ()))
  in
  let via_shim =
    H.Experiment.cycles s ~bench:"moment" ~latency:2 Pipeline.Spec
      ~width:(Spd_machine.Descr.Fus 4)
  in
  check_int "submit = shim" (get via_query) via_shim;
  (* keys are stable, human-readable coordinates *)
  check_bool "key spells the cell" true
    (Query.key (cycles_q ()) = "moment/2/cycles/SPEC/fus4");
  check_bool "budgets are part of the key" true
    (Query.key (cycles_q ~fuel:7 ()) = "moment/2/cycles/SPEC/fus4+fuel=7");
  (* wrong-kind projections fail loudly, not silently *)
  check_bool "to_float on an Int value raises" true
    (match Engine.to_float (Engine.Session.submit s (cycles_q ())) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* the smart constructor refuses nonsense budgets *)
  check_bool "fuel must be positive" true
    (match Query.v ~fuel:0 ~bench:"moment" ~latency:2 Query.Spd_counts with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* The acceptance property of the daemon API: a burst of identical
   concurrent requests funnels onto ONE cell computation.  Eight
   domains submit the same query 100 times in total; the engine's
   counters must record exactly one preparation and one simulation. *)
let test_submit_dedup_concurrent () =
  with_session (Engine.Session.create ~jobs:2 ~disk_cache:false ())
  @@ fun s ->
  let per_domain = 100 / 8 and extra = 100 mod 8 in
  let domains =
    List.init 8 (fun i ->
        let n = per_domain + if i < extra then 1 else 0 in
        Domain.spawn (fun () ->
            List.init n (fun _ ->
                Engine.to_int (Engine.Session.submit s (cycles_q ())))))
  in
  let answers = List.concat_map Domain.join domains in
  check_int "100 requests answered" 100 (List.length answers);
  let first = get (List.hd answers) in
  List.iter (fun o -> check_int "all answers equal" first (get o)) answers;
  let st = Engine.Session.stats s in
  check_int "exactly one preparation" 1 st.Engine.Stats.preparations;
  check_int "exactly one simulation" 1 st.Engine.Stats.simulations

(* Per-request budgets are tenant quotas: a fuel-starved request fails
   alone, and the same coordinates without a budget still succeed. *)
let test_query_quota_isolation () =
  with_session (Engine.Session.create ~jobs:1 ~disk_cache:false ())
  @@ fun s ->
  (match Engine.Session.submit s (cycles_q ~fuel:1 ()) with
  | Engine.Failed _ -> ()
  | Engine.Ok _ -> Alcotest.fail "fuel=1 should exhaust the simulator");
  (match Engine.Session.submit s (cycles_q ()) with
  | Engine.Ok _ -> ()
  | Engine.Failed f ->
      Alcotest.failf "unbudgeted neighbour failed: %s"
        (Printexc.to_string f.Engine.exn));
  (* the starved request is recorded under its own budgeted key *)
  check_bool "failure recorded under the budgeted key" true
    (List.exists
       (fun (f : Engine.failure) ->
         f.Engine.key = "moment/2/SPEC/cycles/fus4+fuel=1")
       (Engine.Session.failures s))

(* ------------------------------------------------------------------ *)
(* The decision ledger through the engine (spd why) *)

(* the spd-decisions/1 document exactly as `spd why --format json`
   prints it *)
let why_json ?fn ?tree s workload =
  Spd_telemetry.Json.to_string
    (H.Why.to_json ?fn ?tree (H.Why.analyze ~mem_latency:2 s workload))

(* The why document is deterministic: byte-identical across job counts
   and across a cold and a warm on-disk cache. *)
let test_why_json_deterministic () =
  let j1 =
    with_session (Engine.Session.create ~jobs:1 ()) (fun s ->
        why_json s "perm")
  in
  let j4 =
    with_session (Engine.Session.create ~jobs:4 ()) (fun s ->
        why_json s "perm")
  in
  check_bool "why JSON bit-identical across jobs" true (String.equal j1 j4);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spd_why_cache_test_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cold =
    with_session
      (Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir ())
      (fun s -> why_json s "perm")
  in
  let s2 = Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir () in
  let warm = with_session s2 (fun s -> why_json s "perm") in
  check_int "warm why: zero pipeline recomputations" 0
    (Engine.Session.stats s2).Engine.Stats.preparations;
  check_bool "warm why byte-identical to cold" true (String.equal cold warm);
  check_bool "why = uncached CLI baseline" true (String.equal j1 cold)

(* The ledger cell, the spd-counts cell and the report rollup agree:
   three surfaces, one underlying ledger. *)
let test_why_agrees_with_counts () =
  with_session (Engine.Session.create ~jobs:2 ()) @@ fun s ->
  List.iter
    (fun latency ->
      List.iter
        (fun bench ->
          let ds = H.Experiment.spd_decisions s ~bench ~latency in
          let applied = Spd_core.Heuristic.applied_decisions ds in
          let row =
            List.fold_left
              (fun (r, w, o) (d : Spd_core.Heuristic.decision) ->
                match d.kind with
                | Spd_ir.Memdep.Raw -> (r + 1, w, o)
                | Spd_ir.Memdep.War -> (r, w + 1, o)
                | Spd_ir.Memdep.Waw -> (r, w, o + 1))
              (0, 0, 0) applied
          in
          check_bool
            (Printf.sprintf "%s/lat%d: ledger row = spd-counts row" bench
               latency)
            true
            (row = H.Experiment.spd_counts s ~bench ~latency))
        (H.Report.benches ()))
    [ 2; 6 ];
  (* the aggregate artefact is registered and builds from the same
     cells *)
  check_bool "spd-decisions artefact registered" true
    (H.Artefact.find "spd-decisions" <> None);
  check_bool "spd-decisions tables non-empty" true
    (H.Report.spd_decisions_tables s <> [])

(* the flag parsers shared by bin/spd, bench/main and the daemon *)
let test_cliflags () =
  let module C = H.Cliflags in
  check_bool "pos_int ok" true (C.pos_int ~flag:"--fuel" "42" = Ok 42);
  (match C.pos_int ~flag:"--fuel" "0" with
  | Error msg ->
      check_bool "pos_int names the flag" true (contains msg "--fuel")
  | Ok _ -> Alcotest.fail "0 is not a positive integer");
  check_bool "pos_float ok" true
    (C.pos_float ~flag:"--deadline" "1.5" = Ok 1.5);
  check_bool "pos_float rejects nan" true
    (Result.is_error (C.pos_float ~flag:"--deadline" "nan"));
  check_bool "widths ok" true (C.widths "1, 2,8" = Ok [ 1; 2; 8 ]);
  (match C.widths "1,zero" with
  | Error msg ->
      check_bool "widths names the flag" true (contains msg "--widths")
  | Ok _ -> Alcotest.fail "widths should reject non-integers")

let tests =
  [
    case "PERFECT <= STATIC <= NAIVE (infinite machine)"
      test_pipeline_ordering_infinite;
    case "SPEC <= STATIC (infinite machine)" test_spec_no_slower_infinite;
    qcase prop_pipelines_preserve_behaviour;
    qcase prop_spd_finds_the_helper;
    case "experiment memoization" test_experiment_memoizes;
    case "query submit: one request path" test_query_submit;
    case "query submit: concurrent burst deduplicates" test_submit_dedup_concurrent;
    case "query quotas isolate tenants" test_query_quota_isolation;
    case "cliflags: shared flag parsers" test_cliflags;
    case "speedup metric" test_speedup_metric;
    case "reports render" test_reports_render;
    case "parallel_map: order and exceptions" test_parallel_map_order;
    case "engine determinism across jobs" test_engine_determinism;
    case "artefact JSON invariant across jobs" test_artefact_json_jobs_invariant;
    case "Stats.pp stable across jobs" test_stats_pp_stable_across_jobs;
    case "spd-dynamics counters" test_spd_dynamics_counts;
    case "engine on-disk cache" test_engine_disk_cache;
    case "why JSON deterministic (jobs, cache)" test_why_json_deterministic;
    case "why ledger = spd-counts row" test_why_agrees_with_counts;
  ]
