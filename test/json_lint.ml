(** Validate that each file named on the command line is a complete
    JSON document, using the repository's own parser — the same one the
    test suite uses on trace and report output.  Exits nonzero on the
    first malformed file (see [make check]). *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: json_lint FILE...";
    exit 2
  end;
  List.iter
    (fun path ->
      match Spd_telemetry.Json.of_string (slurp path) with
      | Ok _ -> Printf.printf "json_lint: %s ok\n" path
      | Error e ->
          Printf.eprintf "json_lint: %s: %s\n" path e;
          exit 1)
    files
