(** Validate that each file named on the command line is a complete
    JSON document, using the repository's own parser — the same one the
    test suite uses on trace and report output.  Documents carrying a
    known [schema] key ([spd-explain/1], [spd-bench-diff/1],
    [spd-micro/1], [spd-decisions/1], [spd-validate/1], [spd-cache/1])
    are additionally checked structurally.  Exits
    nonzero on the first malformed file (see [make check]). *)

module Json = Spd_telemetry.Json

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Structural checks for the schema-versioned documents *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let require_member name json =
  match Json.member name json with
  | Some v -> v
  | None -> bad "missing %S member" name

let require_int name json =
  match Json.to_number (require_member name json) with
  | Some v when Float.is_integer v -> int_of_float v
  | _ -> bad "%S is not an integer" name

let require_number name json =
  match Json.to_number (require_member name json) with
  | Some v -> v
  | None -> bad "%S is not a number" name

let require_string name json =
  match Json.to_string_opt (require_member name json) with
  | Some s -> s
  | None -> bad "%S is not a string" name

let require_list name json =
  match Json.to_list (require_member name json) with
  | Some l -> l
  | None -> bad "%S is not a list" name

(* the shared Table.to_json shape: id/title/columns/rows(+footers) *)
let check_table tbl =
  let (_ : string) = require_string "id" tbl in
  let columns = require_list "columns" tbl in
  let n = List.length columns in
  List.iter
    (fun row ->
      let (_ : string) = require_string "label" row in
      let cells = require_list "cells" row in
      if List.length cells <> n then
        bad "row %S has %d cells for %d columns"
          (require_string "label" row)
          (List.length cells) n)
    (require_list "rows" tbl
    @ Option.value ~default:[]
        (Option.bind (Json.member "footers" tbl) Json.to_list))

let check_explain doc =
  let (_ : string) = require_string "workload" doc in
  let (_ : int) = require_int "width" doc in
  let (_ : int) = require_int "mem_latency" doc in
  let (_ : int) = require_int "cycles" doc in
  let (_ : int) = require_int "traversals" doc in
  let tables = require_list "tables" doc in
  if tables = [] then bad "empty \"tables\" list";
  List.iter check_table tables

let check_bench_diff doc =
  let (_ : float) = require_number "threshold_pct" doc in
  let compared = require_int "compared" doc in
  let regressions = require_int "regressions" doc in
  let improvements = require_int "improvements" doc in
  if compared < 0 || regressions < 0 || improvements < 0 then
    bad "negative counter";
  let changes = require_list "changes" doc in
  if regressions + improvements > List.length changes then
    bad "more regressions+improvements than changes";
  List.iter
    (fun c ->
      let (_ : string) = require_string "table" c in
      let (_ : string) = require_string "row" c in
      let (_ : string) = require_string "column" c in
      let (_ : string) = require_string "polarity" c in
      match (require_member "regression" c, require_member "improvement" c) with
      | Json.Bool _, Json.Bool _ -> ()
      | _ -> bad "regression/improvement are not booleans")
    changes

let check_micro doc =
  let (_ : int) = require_int "mem_latency" doc in
  let (_ : int) = require_int "width" doc in
  let (_ : float) = require_number "min_time" doc in
  let tables = require_list "tables" doc in
  if tables = [] then bad "empty \"tables\" list";
  List.iter check_table tables;
  let workloads = require_list "workloads" doc in
  if workloads = [] then bad "empty \"workloads\" list";
  List.iter
    (fun w ->
      let name = require_string "name" w in
      if require_int "cycles" w < 0 then bad "%s: negative cycles" name;
      if require_int "traversals" w <= 0 then bad "%s: no traversals" name;
      List.iter
        (fun stage ->
          let s = require_member stage w in
          let (_ : string) = require_string "units" s in
          let (_ : int) = require_int "units_per_iter" s in
          if require_int "iters" s <= 0 then
            bad "%s.%s: no iterations" name stage;
          if require_number "secs" s < 0.0 then
            bad "%s.%s: negative wall clock" name stage;
          if require_number "per_sec" s <= 0.0 then
            bad "%s.%s: non-positive throughput" name stage)
        [ "compile"; "schedule"; "simulate"; "e2e" ])
    workloads

(* spd-decisions/1: the guidance heuristic's decision ledger, in both
   its forms at once — aggregate counts plus per-tree decision lists —
   so the two cannot disagree. *)
let check_decision d =
  let (_ : int) = require_int "src" d in
  let (_ : int) = require_int "dst" d in
  let kind = require_string "kind" d in
  if not (List.mem kind [ "raw"; "war"; "waw" ]) then
    bad "unknown dependence kind %S" kind;
  (match require_member "ambiguity" d with
  | Json.Null | Json.String _ -> ()
  | _ -> bad "\"ambiguity\" is neither a string nor null");
  let (_ : float) = require_number "before" d in
  let (_ : float) = require_number "after" d in
  let (_ : float) = require_number "gain" d in
  let (_ : float) = require_number "min_gain" d in
  if require_int "tree_size" d < 1 then bad "tree_size < 1";
  if require_int "max_size" d < 1 then bad "max_size < 1";
  let profile = require_string "profile" d in
  if profile <> "profiled" && profile <> "uniform" then
    bad "unknown profile provenance %S" profile;
  let verdict = require_string "verdict" d in
  let rejected =
    String.length verdict > 9 && String.sub verdict 0 9 = "rejected:"
  in
  if verdict <> "applied" && not rejected then
    bad "malformed verdict %S" verdict;
  verdict

let check_decisions doc =
  let (_ : string) = require_string "workload" doc in
  let (_ : int) = require_int "mem_latency" doc in
  let candidates = require_int "candidates" doc in
  let applied = require_int "applied" doc in
  let rejected = require_int "rejected" doc in
  if applied < 0 || rejected < 0 then bad "negative counter";
  if candidates <> applied + rejected then
    bad "%d candidates but %d applied + %d rejected" candidates applied
      rejected;
  let rejections =
    match require_member "rejections" doc with
    | Json.Obj kvs -> kvs
    | _ -> bad "\"rejections\" is not an object"
  in
  let histogram_total =
    List.fold_left
      (fun acc (reason, v) ->
        if
          String.length reason <= 9 || String.sub reason 0 9 <> "rejected:"
        then bad "histogram key %S is not a rejection verdict" reason;
        match Json.to_number v with
        | Some n when Float.is_integer n -> acc + int_of_float n
        | _ -> bad "histogram count for %S is not an integer" reason)
      0 rejections
  in
  if histogram_total <> rejected then
    bad "rejection histogram sums to %d, not %d" histogram_total rejected;
  let trees = require_list "trees" doc in
  let counted =
    List.fold_left
      (fun (acc_total, acc_applied) tree ->
        let (_ : string) = require_string "func" tree in
        let (_ : int) = require_int "tree" tree in
        let n = require_int "candidates" tree in
        let decisions = require_list "decisions" tree in
        if List.length decisions <> n then
          bad "tree claims %d candidates but lists %d decisions" n
            (List.length decisions);
        let applied_here =
          List.fold_left
            (fun a d -> if check_decision d = "applied" then a + 1 else a)
            0 decisions
        in
        (acc_total + n, acc_applied + applied_here))
      (0, 0) trees
  in
  if fst counted <> candidates then
    bad "per-tree candidates sum to %d, not %d" (fst counted) candidates;
  if snd counted <> applied then
    bad "per-tree applied decisions sum to %d, not %d" (snd counted) applied

(* spd-validate/1: the translation-validation ledger — the top-level
   tally and the per-application verdict list must agree, and each
   verdict's evidence must match its shape (counterexample iff refuted,
   reason iff unknown). *)
let check_validate doc =
  let (_ : string) = require_string "workload" doc in
  let (_ : int) = require_int "mem_latency" doc in
  let applications = require_int "applications" doc in
  let proved = require_int "proved" doc in
  let refuted = require_int "refuted" doc in
  let unknown = require_int "unknown" doc in
  if proved < 0 || refuted < 0 || unknown < 0 then bad "negative tally";
  if applications <> proved + refuted + unknown then
    bad "%d applications but %d proved + %d refuted + %d unknown"
      applications proved refuted unknown;
  let verdicts = require_list "verdicts" doc in
  if List.length verdicts <> applications then
    bad "tally claims %d applications but lists %d verdicts" applications
      (List.length verdicts);
  let counted =
    List.fold_left
      (fun (p, r, u) v ->
        let (_ : string) = require_string "func" v in
        let (_ : int) = require_int "tree" v in
        let (_ : int) = require_int "src" v in
        let (_ : int) = require_int "dst" v in
        let kind = require_string "kind" v in
        if not (List.mem kind [ "raw"; "war"; "waw" ]) then
          bad "unknown dependence kind %S" kind;
        List.iter
          (fun key -> if require_int key v < 0 then bad "negative %S" key)
          [ "paths"; "splits"; "terms" ];
        List.iter
          (fun key ->
            if String.length (require_string key v) = 0 then
              bad "empty %S" key)
          [ "exit_digest"; "store_digest" ];
        let verdict = require_string "verdict" v in
        let reason = require_member "reason" v in
        let cx = require_member "counterexample" v in
        (match (verdict, reason, cx) with
        | "proved", Json.Null, Json.Null -> ()
        | "refuted", Json.Null, Json.Obj _ ->
            if require_int "seed" cx < 0 then bad "negative witness seed";
            (match require_member "inputs" cx with
            | Json.Obj _ -> ()
            | _ -> bad "counterexample \"inputs\" is not an object");
            if String.length (require_string "detail" cx) = 0 then
              bad "refutation without a detail"
        | "unknown", Json.String s, Json.Null ->
            if String.length s = 0 then bad "unknown verdict without a reason"
        | _ ->
            bad "verdict %S with mismatched reason/counterexample evidence"
              verdict);
        match verdict with
        | "proved" -> (p + 1, r, u)
        | "refuted" -> (p, r + 1, u)
        | _ -> (p, r, u + 1))
      (0, 0, 0) verdicts
  in
  if counted <> (proved, refuted, unknown) then
    bad "verdict list tallies do not match the document's counters"

(* spd-cache/1: the [spd cache stats --json] snapshot. *)
let check_cache doc =
  let (_ : string) = require_string "dir" doc in
  let (_ : string) = require_string "version" doc in
  if require_int "entries" doc < 0 then bad "negative entry count";
  if require_int "bytes" doc < 0 then bad "negative byte count";
  List.iter
    (fun key -> if require_int key doc < 0 then bad "negative %S" key)
    [ "hits"; "misses"; "evictions" ]

(* spd-serve/1: the daemon's own response documents, discriminated by
   their "kind" member *)
let check_serve doc =
  match require_string "kind" doc with
  | "ping" ->
      let (_ : string) = require_string "server" doc in
      let (_ : string) = require_string "version" doc in
      if require_list "methods" doc = [] then bad "empty \"methods\" list";
      if require_list "workloads" doc = [] then
        bad "empty \"workloads\" list";
      if require_list "artefacts" doc = [] then
        bad "empty \"artefacts\" list"
  | "query" -> (
      let (_ : string) = require_string "key" doc in
      match require_member "ok" doc with
      | Json.Bool true ->
          if Json.member "value" doc = None then
            bad "ok query without a \"value\""
      | Json.Bool false ->
          let (_ : string) = require_string "error" doc in
          if require_int "attempts" doc < 1 then bad "attempts < 1"
      | _ -> bad "\"ok\" is not a boolean")
  | "run" ->
      let (_ : string) = require_string "pipeline" doc in
      let (_ : string) = require_string "machine" doc in
      if require_int "cycles" doc < 0 then bad "negative cycles";
      if require_int "traversals" doc <= 0 then bad "no traversals";
      let (_ : string) = require_string "return" doc in
      if require_int "code_size" doc <= 0 then bad "no code"
  | "stats" ->
      if require_int "jobs" doc < 1 then bad "jobs < 1";
      let (_ : Json.t) = require_member "counters" doc in
      let (_ : Json.t list) = require_list "failures" doc in
      if require_int "served" doc < 0 then bad "negative served count"
  | "shutdown" -> (
      match require_member "stopping" doc with
      | Json.Bool _ -> ()
      | _ -> bad "\"stopping\" is not a boolean")
  | "health" ->
      if require_int "workers" doc < 1 then bad "workers < 1";
      List.iter
        (fun key ->
          if require_int key doc < 0 then bad "negative %S" key)
        [
          "workers_alive"; "worker_restarts"; "in_flight";
          "active_connections"; "pending_connections"; "conn_timeouts";
          "admission_rejected"; "log_records"; "log_dropped"; "served";
        ];
      if require_number "uptime_seconds" doc < 0.0 then
        bad "negative uptime";
      (match require_member "draining" doc with
      | Json.Bool _ -> ()
      | _ -> bad "\"draining\" is not a boolean")
  | "metrics_prom" ->
      let ct = require_string "content_type" doc in
      if ct <> "text/plain; version=0.0.4" then
        bad "unexpected content_type %S" ct;
      if String.length (require_string "text" doc) = 0 then
        bad "empty exposition text"
  | kind -> bad "unknown spd-serve/1 kind %S" kind

(* A raw JSON-RPC error envelope, as the daemon's load-shedding paths
   emit it: the [server busy] refusal must carry its retry hint, the
   [server shutting down] refusal must not claim success. *)
let check_rpc_error doc =
  if require_string "jsonrpc" doc <> "2.0" then bad "jsonrpc is not 2.0";
  if Json.member "result" doc <> None then
    bad "error envelope also carries a result";
  let err = require_member "error" doc in
  let code = require_int "code" err in
  let (_ : string) = require_string "message" err in
  if code = -32001 then begin
    let data = require_member "data" err in
    if require_int "retry_after_ms" data < 1 then
      bad "server busy without a usable retry_after_ms"
  end

(* Any JSON-RPC envelope a live daemon emitted (success or error) must
   echo a server-assigned request id. *)
let check_rpc_envelope doc =
  if require_string "jsonrpc" doc <> "2.0" then bad "jsonrpc is not 2.0";
  if String.length (require_string "rid" doc) = 0 then bad "empty rid";
  if Json.member "error" doc <> None then check_rpc_error doc
  else if Json.member "result" doc = None then
    bad "envelope has neither result nor error"

(* One spd-log/1 record: the reserved members, with a sane level and a
   plausible wall-clock timestamp. *)
let log_levels = [ "error"; "warn"; "info"; "debug" ]

let check_log_record doc =
  if require_string "schema" doc <> "spd-log/1" then
    bad "schema is not spd-log/1";
  if require_number "ts" doc < 1e9 then bad "implausible \"ts\"";
  let level = require_string "level" doc in
  if not (List.mem level log_levels) then bad "unknown level %S" level;
  if String.length (require_string "event" doc) = 0 then bad "empty event";
  if require_int "domain" doc < 0 then bad "negative domain id"

(* A .jsonl file is a stream of spd-log/1 records, one per line. *)
let check_log_lines path text =
  let n = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        incr n;
        match Json.of_string line with
        | Error e -> bad "line %d: %s" (i + 1) e
        | Ok doc -> (
            try check_log_record doc
            with Bad msg -> bad "line %d: %s" (i + 1) msg)
      end)
    (String.split_on_char '\n' text);
  if !n = 0 then bad "%s: no log records" path

let check_schema doc =
  match Option.bind (Json.member "schema" doc) Json.to_string_opt with
  | Some "spd-explain/1" -> check_explain doc; Some "spd-explain/1"
  | Some "spd-bench-diff/1" -> check_bench_diff doc; Some "spd-bench-diff/1"
  | Some "spd-micro/1" -> check_micro doc; Some "spd-micro/1"
  | Some "spd-decisions/1" -> check_decisions doc; Some "spd-decisions/1"
  | Some "spd-validate/1" -> check_validate doc; Some "spd-validate/1"
  | Some "spd-cache/1" -> check_cache doc; Some "spd-cache/1"
  | Some "spd-serve/1" -> check_serve doc; Some "spd-serve/1"
  | Some "spd-log/1" -> check_log_record doc; Some "spd-log/1"
  | _ ->
      if
        Json.member "jsonrpc" doc <> None
        && (Json.member "result" doc <> None
           || Json.member "error" doc <> None)
      then begin
        check_rpc_envelope doc;
        Some "jsonrpc envelope"
      end
      else None

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: json_lint FILE...";
    exit 2
  end;
  List.iter
    (fun path ->
      (* .jsonl files are structured-log streams: validate every line *)
      if Filename.check_suffix path ".jsonl" then begin
        match check_log_lines path (slurp path) with
        | () -> Printf.printf "json_lint: %s ok (spd-log/1 lines)\n" path
        | exception Bad msg ->
            Printf.eprintf "json_lint: %s: %s\n" path msg;
            exit 1
      end
      else
        match Spd_telemetry.Json.of_string (slurp path) with
        | Error e ->
            Printf.eprintf "json_lint: %s: %s\n" path e;
            exit 1
        | Ok doc -> (
            match check_schema doc with
            | Some schema ->
                Printf.printf "json_lint: %s ok (%s)\n" path schema
            | None -> Printf.printf "json_lint: %s ok\n" path
            | exception Bad msg ->
                Printf.eprintf "json_lint: %s: %s\n" path msg;
                exit 1))
    files
