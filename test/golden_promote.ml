(** Regenerate the golden-schedule corpus ([make golden-promote]).

    Renders every (workload, width) document with the same
    {!Golden_render} the test suite diffs against, and writes the files
    into the directory named on the command line (default
    [test/golden]).  Run it after an {e intentional} scheduler or DDG
    change, eyeball the git diff of the grids, and commit. *)

let () =
  let dir =
    match Array.to_list Sys.argv with
    | [ _ ] -> Filename.concat "test" "golden"
    | [ _; dir ] -> dir
    | _ ->
        prerr_endline "usage: golden_promote [DIR]";
        exit 2
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun workload ->
      List.iter
        (fun width ->
          let path =
            Filename.concat dir (Golden_render.file_name ~workload ~width)
          in
          let doc = Golden_render.render ~workload ~width in
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc doc);
          Printf.printf "golden_promote: wrote %s (%d bytes)\n%!" path
            (String.length doc))
        Golden_render.widths)
    Spd_workloads.Registry.names
