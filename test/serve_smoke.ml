(** End-to-end daemon smoke (see [make serve-smoke]): start a real
    [spd serve] process on a Unix socket, drive it through the framed
    JSON-RPC client, and check the acceptance properties against the
    CLI:

    - a served [report] is byte-identical to
      [spd report --format json] (after dropping the run-dependent
      [metrics] snapshot from both),
    - a 100-request duplicate burst records exactly one simulation in
      the daemon's engine counters,
    - [spd call] round-trips, and [shutdown] terminates the daemon
      with exit status 0.

    Response documents are saved under the smoke directory so
    [json_lint] can validate them against the spd-serve/1 schema. *)

module Json = Spd_telemetry.Json
module Protocol = Spd_serve.Protocol

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve_smoke: " ^ s);
      exit 1)
    fmt

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* run a command, capture stdout, require exit status 0 *)
let capture argv =
  let out = Filename.temp_file "spd_smoke_out" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
  @@ fun () ->
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin fd Unix.stderr
  in
  Unix.close fd;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 ->
      In_channel.with_open_bin out In_channel.input_all
  | _, status ->
      die "%s exited with %s"
        (String.concat " " (Array.to_list argv))
        (match status with
        | Unix.WEXITED n -> Printf.sprintf "status %d" n
        | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> die "response lacks %S: %s" name (Json.to_string j)

let drop_member name = function
  | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> name) kvs)
  | j -> j

let call_ok c meth params =
  match Protocol.call c meth params with
  | Ok r -> r
  | Error e -> die "%s: %s" meth e

let query_params =
  Json.Obj
    [
      ("bench", Json.String "moment");
      ("latency", Json.Int 2);
      ("artefact", Json.String "cycles");
      ("pipeline", Json.String "spec");
      ("width", Json.Int 4);
    ]

let () =
  let smoke_dir = ref "/tmp" in
  let spd =
    (* built next to this executable: _build/default/{test,bin} *)
    ref
      (Filename.concat
         (Filename.concat (Filename.dirname Sys.executable_name) "..")
         (Filename.concat "bin" "spd.exe"))
  in
  let rec parse = function
    | [] -> ()
    | "--spd" :: path :: tl -> spd := path; parse tl
    | dir :: tl -> smoke_dir := dir; parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !spd) then die "spd binary not found at %s" !spd;
  let sock = Filename.concat !smoke_dir "spd_serve_smoke.sock" in
  if Sys.file_exists sock then Sys.remove sock;
  let daemon_log = Filename.concat !smoke_dir "spd_serve_smoke.log" in
  let log_fd =
    Unix.openfile daemon_log
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let daemon =
    Unix.create_process !spd
      [|
        !spd; "serve"; "--socket"; sock; "--workers"; "2"; "--jobs"; "2";
        "--no-cache";
      |]
      Unix.stdin log_fd log_fd
  in
  Unix.close log_fd;
  let addr = Protocol.Unix_path sock in
  (* wait for the daemon to bind *)
  let rec await n =
    if n = 0 then begin
      (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
      die "daemon did not open %s (see %s)" sock daemon_log
    end;
    match Protocol.connect addr with
    | Ok c -> c
    | Error _ ->
        Unix.sleepf 0.1;
        await (n - 1)
  in
  let c = await 100 in

  (* ping: the handshake document *)
  let ping = call_ok c "ping" (Json.Obj []) in
  if member "schema" ping <> Json.String Protocol.schema then
    die "ping schema mismatch";
  write_file
    (Filename.concat !smoke_dir "spd_serve_ping.json")
    (Json.to_string ping);

  (* first query of the grid cell the burst will hammer *)
  let q = call_ok c "query" query_params in
  if member "ok" q <> Json.Bool true then die "query failed";
  write_file
    (Filename.concat !smoke_dir "spd_serve_query.json")
    (Json.to_string q);

  (* duplicate burst: 4 concurrent clients x 25 identical queries *)
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            match Protocol.connect addr with
            | Error e -> die "burst connect: %s" e
            | Ok bc ->
                Fun.protect
                  ~finally:(fun () -> Protocol.close bc)
                  (fun () ->
                    List.init 25 (fun _ ->
                        Json.to_string
                          (call_ok bc "query" query_params)))))
  in
  let answers = List.concat_map Domain.join domains in
  (match answers with
  | first :: rest ->
      if not (List.for_all (String.equal first) rest) then
        die "burst answers differ"
  | [] -> die "no burst answers");
  let stats = call_ok c "stats" (Json.Obj []) in
  write_file
    (Filename.concat !smoke_dir "spd_serve_stats.json")
    (Json.to_string stats);
  (match
     Option.bind
       (Json.member "simulations" (member "counters" stats))
       Json.to_number
   with
  | Some 1.0 -> ()
  | Some n -> die "burst of 100 queries cost %g simulations, want 1" n
  | None -> die "stats lacks a simulations counter");

  (* byte identity: the served report against the CLI's JSON output *)
  let served_report =
    call_ok c "report"
      (Json.Obj [ ("artefacts", Json.List [ Json.String "table6_3" ]) ])
  in
  let cli_report =
    match
      Json.of_string
        (capture
           [|
             !spd; "report"; "table6_3"; "--jobs"; "2"; "--no-cache";
             "--format"; "json";
           |])
    with
    | Ok j -> j
    | Error e -> die "CLI report is not valid JSON: %s" e
  in
  let norm j = Json.to_string (drop_member "metrics" j) in
  if not (String.equal (norm served_report) (norm cli_report)) then begin
    write_file
      (Filename.concat !smoke_dir "spd_serve_report_served.json")
      (norm served_report);
    write_file
      (Filename.concat !smoke_dir "spd_serve_report_cli.json")
      (norm cli_report);
    die "served report differs from the CLI's (see %s)" !smoke_dir
  end;
  (* a quota-starved duplicate fails alone (its budgeted cell is its
     own), and an inline-source run compiles and simulates *)
  let starved =
    call_ok c "query"
      (Json.Obj
         [
           ("bench", Json.String "moment");
           ("latency", Json.Int 2);
           ("artefact", Json.String "cycles");
           ("pipeline", Json.String "spec");
           ("width", Json.Int 4);
           ("fuel", Json.Int 1);
         ])
  in
  if member "ok" starved <> Json.Bool false then
    die "fuel=1 query should fail";
  let run =
    call_ok c "run"
      (Json.Obj
         [
           ( "source",
             Json.String
               "int main() { int a[4]; int i; for (i = 0; i < 4; i = i + \
                1) a[i] = i; return a[3]; }" );
         ])
  in
  write_file
    (Filename.concat !smoke_dir "spd_serve_run.json")
    (Json.to_string run);


  Protocol.close c;

  (* the one-shot CLI client, and shutdown through it *)
  let call_out =
    capture [| !spd; "call"; "ping"; "--socket"; sock |]
  in
  (match Json.of_string (String.trim call_out) with
  | Ok j when Json.member "schema" j <> None -> ()
  | Ok _ -> die "spd call ping: no schema in %s" call_out
  | Error e -> die "spd call ping output is not JSON: %s" e);
  let shutdown_out =
    capture [| !spd; "call"; "shutdown"; "--socket"; sock |]
  in
  write_file
    (Filename.concat !smoke_dir "spd_serve_shutdown.json")
    (String.trim shutdown_out);
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "daemon exited with status %d" n
  | _, _ -> die "daemon killed by a signal");
  if Sys.file_exists sock then die "daemon left its socket behind";
  print_endline "serve_smoke: OK (report byte-identical, burst deduplicated)"
