(** Shared helpers for the test suites. *)

module Ir = Spd_ir

let compile = Spd_lang.Lower.compile

let run_src ?mem_words src =
  let prog = compile src in
  Spd_sim.Interp.run ?mem_words prog

(** Run a source program and return its [main] result as an int. *)
let ret_int ?mem_words src =
  Ir.Value.to_int (run_src ?mem_words src).ret

(** Run a source program and return the printed output values. *)
let output ?mem_words src = (run_src ?mem_words src).output

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let value : Ir.Value.t Alcotest.testable =
  Alcotest.testable Ir.Value.pp Ir.Value.equal

(** Float comparison with tolerance for simulated numeric kernels. *)
let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_close msg a b =
  if not (close a b) then Alcotest.failf "%s: %.17g <> %.17g" msg a b
