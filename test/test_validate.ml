(** Translation-validation tests: the symbolic equivalence checker
    proves every SpD application the heuristic performs on the paper
    workloads, refutes hand-miscompiled transforms with a concretizable
    counterexample, and its verdicts agree with concrete differential
    runs on random programs.  The [spd-validate/1] document is
    deterministic across job counts and cache states. *)

open Util
module H = Spd_harness
module Pipeline = H.Pipeline
module Engine = H.Engine
module V = Spd_validate.Validate
module Verdict = Spd_validate.Verdict

let case name f = Alcotest.test_case name `Quick f
let qcase = QCheck_alcotest.to_alcotest
let with_session = H.Experiment.with_session

(* ------------------------------------------------------------------ *)
(* Capturing (before, application, after) triples: run the heuristic
   exactly as the SPEC pipeline does, with a recording checker. *)

let spec_pairs ?(mem_latency = 2) src =
  let lowered = compile src in
  let cleaned = Spd_analysis.Forwarding.run lowered in
  let naive = Spd_analysis.Memarcs.annotate cleaned in
  let static = Spd_disambig.Static_disambig.run naive in
  let profile = Pipeline.profile_of static in
  let pairs = ref [] in
  let checker ~func ~before app after =
    pairs := (func, before, app, after) :: !pairs
  in
  ignore (Spd_core.Heuristic.run ~profile ~checker ~mem_latency static);
  List.rev !pairs

(* ------------------------------------------------------------------ *)
(* Every SpD application across the full paper grid proves. *)

let test_paper_grid_proved () =
  with_session (Engine.Session.create ~jobs:2 ()) @@ fun s ->
  List.iter
    (fun latency ->
      List.iter
        (fun bench ->
          let reports = Engine.Session.spd_verdicts s ~bench ~latency in
          let applied =
            Spd_core.Heuristic.applied_decisions
              (H.Experiment.spd_decisions s ~bench ~latency)
          in
          check_int
            (Printf.sprintf "%s/lat%d: one verdict per application" bench
               latency)
            (List.length applied) (List.length reports);
          List.iter
            (fun (r : V.report) ->
              match r.verdict with
              | Verdict.Proved -> ()
              | v ->
                  Alcotest.failf "%s/lat%d %s tree %d arc #%d->#%d: %s%s"
                    bench latency r.func r.tree_id (fst r.arc) (snd r.arc)
                    (Verdict.name v)
                    (match v with
                    | Verdict.Unknown reason ->
                        ": " ^ Verdict.reason_text reason
                    | Verdict.Refuted cx ->
                        ": " ^ cx.Verdict.detail
                    | Verdict.Proved -> ""))
            reports)
        (H.Report.benches ()))
    H.Report.latencies

(* ------------------------------------------------------------------ *)
(* Miscompile fixtures: surgically broken transforms must be refuted,
   and the counterexample must concretize to a real divergence. *)

(* the first application pair of the [tree] workload whose transformed
   tree satisfies [want] *)
let fixture_pair what want =
  let w = Spd_workloads.Registry.by_name "tree" in
  let rec pick = function
    | [] -> Alcotest.failf "no SpD application on tree with %s" what
    | (_, before, _, after) :: rest ->
        if want after then (before, after) else pick rest
  in
  pick (spec_pairs w.source)

let has_guarded_store (t : Spd_ir.Tree.t) =
  Array.exists
    (fun (i : Spd_ir.Insn.t) ->
      i.op = Spd_ir.Opcode.Store && i.guard <> None)
    t.insns

let has_select (t : Spd_ir.Tree.t) =
  Array.exists
    (fun (i : Spd_ir.Insn.t) ->
      match (i.op, i.srcs) with
      | Spd_ir.Opcode.Select, [ _; a; b ] -> a <> b
      | _ -> false)
    t.insns

let check_refuted what ~before ~after =
  let verdict, _, _ = V.check_trees ~before ~after () in
  match verdict with
  | Verdict.Refuted cx ->
      (* the stored counterexample replays as a concrete divergence *)
      check_bool
        (what ^ ": counterexample seed concretizes")
        true
        (V.concrete_divergence ~seed:cx.Verdict.seed ~before ~after <> None)
  | Verdict.Proved -> Alcotest.failf "%s: proved a miscompiled tree" what
  | Verdict.Unknown r ->
      Alcotest.failf "%s: unknown (%s), want refuted" what
        (Verdict.reason_text r)

(* Flip the polarity of the first guarded store: the speculated store
   now commits exactly when it must not. *)
let test_refutes_flipped_guard () =
  let before, after = fixture_pair "a guarded store" has_guarded_store in
  let flipped = ref false in
  let insns =
    Array.map
      (fun (i : Spd_ir.Insn.t) ->
        match (i.op, i.guard) with
        | Spd_ir.Opcode.Store, Some g when not !flipped ->
            flipped := true;
            { i with guard = Some { g with positive = not g.positive } }
        | _ -> i)
      after.Spd_ir.Tree.insns
  in
  check_bool "fixture has a guarded store" true !flipped;
  check_refuted "flipped store guard" ~before
    ~after:{ after with Spd_ir.Tree.insns }

(* Swap the data arms of the first select: the merge now picks the
   speculative value on the wrong side of the alias predicate. *)
let test_refutes_swapped_select () =
  let before, after = fixture_pair "a select" has_select in
  let swapped = ref false in
  let insns =
    Array.map
      (fun (i : Spd_ir.Insn.t) ->
        match (i.op, i.srcs) with
        | Spd_ir.Opcode.Select, [ p; a; b ] when (not !swapped) && a <> b ->
            swapped := true;
            { i with srcs = [ p; b; a ] }
        | _ -> i)
      after.Spd_ir.Tree.insns
  in
  check_bool "fixture has a select" true !swapped;
  check_refuted "swapped select arms" ~before
    ~after:{ after with Spd_ir.Tree.insns }

(* ------------------------------------------------------------------ *)
(* Property: on random programs, a [Proved] verdict implies concrete
   exit/store equality on 100 sampled valuations, and the real
   transform is never refuted. *)

let prop_proved_implies_concrete_equality =
  QCheck.Test.make
    ~name:"proved SpD applications agree with concrete runs" ~count:15
    Gen_prog.arbitrary_source (fun src ->
      List.iter
        (fun (func, before, _, after) ->
          let verdict, _, _ = V.check_trees ~before ~after () in
          match verdict with
          | Verdict.Refuted cx ->
              QCheck.Test.fail_reportf
                "validator refuted a real SpD application in %s: %s" func
                cx.Verdict.detail
          | Verdict.Unknown _ -> ()
          | Verdict.Proved ->
              for seed = 0 to 99 do
                match V.concrete_divergence ~seed ~before ~after with
                | None -> ()
                | Some d ->
                    QCheck.Test.fail_reportf
                      "proved application in %s diverges concretely (seed \
                       %d): %s"
                      func seed d
              done)
        (spec_pairs src);
      true)

(* ------------------------------------------------------------------ *)
(* The spd-validate/1 document is a pure function of its inputs. *)

let validate_json ?fn ?tree s workload =
  Spd_telemetry.Json.to_string
    (H.Validation.to_json ?fn ?tree
       (H.Validation.analyze ~mem_latency:2 s workload))

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let test_validate_json_deterministic () =
  let j1 =
    with_session (Engine.Session.create ~jobs:1 ()) (fun s ->
        validate_json s "perm")
  in
  let j4 =
    with_session (Engine.Session.create ~jobs:4 ()) (fun s ->
        validate_json s "perm")
  in
  check_bool "validate JSON bit-identical across jobs" true
    (String.equal j1 j4);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spd_validate_cache_test_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cold =
    with_session
      (Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir ())
      (fun s -> validate_json s "perm")
  in
  let warm =
    with_session
      (Engine.Session.create ~jobs:2 ~disk_cache:true ~cache_dir:dir ())
      (fun s -> validate_json s "perm")
  in
  check_bool "warm validate byte-identical to cold" true
    (String.equal cold warm);
  check_bool "validate = uncached baseline" true (String.equal j1 cold)

(* The certification rollup agrees with the per-cell ledgers and is
   acceptable on the real corpus. *)
let test_certify_acceptable () =
  with_session (Engine.Session.create ~jobs:2 ()) @@ fun s ->
  let c = H.Validation.certify s in
  check_bool "no refutation on the paper grid" true (c.H.Validation.refuted = 0);
  check_bool "no failed cell" true (c.H.Validation.failed = []);
  check_bool "certification acceptable" true (H.Validation.acceptable c);
  check_int "every application proved" c.H.Validation.applications
    c.H.Validation.proved;
  check_int "cells = workloads x latencies"
    (List.length (H.Report.benches ()) * List.length H.Report.latencies)
    c.H.Validation.cells

let tests =
  [
    case "paper grid: every application proved" test_paper_grid_proved;
    case "refutes a flipped store guard" test_refutes_flipped_guard;
    case "refutes swapped select arms" test_refutes_swapped_select;
    qcase prop_proved_implies_concrete_equality;
    case "validate JSON deterministic" test_validate_json_deterministic;
    case "grid certification acceptable" test_certify_acceptable;
  ]
