(** Protocol-level chaos smoke (see [make chaos-smoke]): hammer a real
    [spd serve] daemon with a mix of good, malformed, stalling and
    disconnecting clients while a [worker-raise] fault kills worker
    domains underneath them, and assert the crash-only contract:

    - every well-formed request gets an answer byte-identical to the
      one a fault-free daemon gives,
    - no worker domain is permanently lost (the restart counter is
      positive and workers-alive is back to the full crew),
    - SIGTERM starts a graceful drain: the in-flight request finishes,
      new work is refused with the structured [server shutting down]
      error, and the process exits 0 with its socket removed,
    - a saturated daemon refuses admission with [server busy] carrying
      a [retry_after_ms] hint, and [--retries] rides through it.

    The chaos-client mix is driven by the [Faults] spec grammar
    ([conn-torn-frame]/[conn-garbage-header]/[conn-stall]); the saved
    health and refusal documents are linted by [json_lint]. *)

module Json = Spd_telemetry.Json
module Faults = Spd_harness.Faults
module Protocol = Spd_serve.Protocol

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("chaos_smoke: " ^ s);
      exit 1)
    fmt

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ------------------------------------------------------------------ *)
(* Daemon process control *)

let spawn_daemon ~spd ~log args =
  let log_fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let argv = Array.of_list (spd :: "serve" :: args) in
  let pid = Unix.create_process spd argv Unix.stdin log_fd log_fd in
  Unix.close log_fd;
  pid

let await_bind ~pid ~sock ~log addr =
  let rec go n =
    if n = 0 then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      die "daemon did not open %s (see %s)" sock log
    end;
    match Protocol.connect addr with
    | Ok c -> Protocol.close c
    | Error _ ->
        Unix.sleepf 0.1;
        go (n - 1)
  in
  go 100

let expect_clean_exit ~what pid sock =
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "%s daemon exited with status %d" what n
  | _, _ -> die "%s daemon killed by a signal" what);
  if Sys.file_exists sock then die "%s daemon left its socket behind" what

(* ------------------------------------------------------------------ *)
(* Raw-socket clients for the misbehaving roles *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let raw_send fd s =
  try ignore (Unix.write_substring fd s 0 (String.length s))
  with Unix.Unix_error _ -> ()

let raw_recv_all fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 4096 in
  let rec go () =
    match Unix.select [ fd ] [] [] 10.0 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.read fd b 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf b 0 n;
            go ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ())
  in
  go ();
  Buffer.contents buf

let frame body =
  Printf.sprintf "Content-Length: %d\r\n\r\n%s" (String.length body) body

(* strip the framing off a one-frame server reply *)
let body_of reply =
  let rec find i =
    if i + 4 > String.length reply then None
    else if String.sub reply i 4 = "\r\n\r\n" then
      Some (String.sub reply (i + 4) (String.length reply - i - 4))
    else find (i + 1)
  in
  find 0

(* one raw request/response exchange on a fresh connection *)
let raw_roundtrip sock body =
  let fd = raw_connect sock in
  raw_send fd (frame body);
  let reply = raw_recv_all fd in
  raw_close fd;
  reply

let ping_body = {|{"jsonrpc":"2.0","id":1,"method":"ping","params":{}}|}

let query_body =
  {|{"jsonrpc":"2.0","id":1,"method":"query","params":{"bench":"moment","latency":2,"artefact":"cycles","pipeline":"spec","width":4}}|}

let query_params =
  Json.Obj
    [
      ("bench", Json.String "moment");
      ("latency", Json.Int 2);
      ("artefact", Json.String "cycles");
      ("pipeline", Json.String "spec");
      ("width", Json.Int 4);
    ]

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)

let () =
  (* raw sends to sockets the daemon already closed must error, not
     kill the harness *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let smoke_dir = ref "/tmp" in
  let spd =
    ref
      (Filename.concat
         (Filename.concat (Filename.dirname Sys.executable_name) "..")
         (Filename.concat "bin" "spd.exe"))
  in
  let rec parse = function
    | [] -> ()
    | "--spd" :: path :: tl -> spd := path; parse tl
    | dir :: tl -> smoke_dir := dir; parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !spd) then die "spd binary not found at %s" !spd;
  let in_dir name = Filename.concat !smoke_dir name in

  (* ---------------------------------------------------------------- *)
  (* Phase 1: a fault-free daemon provides the reference answer *)

  let sock = in_dir "spd_chaos_ref.sock" in
  if Sys.file_exists sock then Sys.remove sock;
  let addr = Protocol.Unix_path sock in
  let pid =
    spawn_daemon ~spd:!spd ~log:(in_dir "spd_chaos_ref.log")
      [ "--socket"; sock; "--workers"; "2"; "--jobs"; "2"; "--no-cache" ]
  in
  await_bind ~pid ~sock ~log:(in_dir "spd_chaos_ref.log") addr;
  let reference =
    match Protocol.call_with_retries ~retries:3 addr "query" query_params with
    | Ok r -> Json.to_string r
    | Error e -> die "reference query: %s" e
  in
  (match Protocol.call_with_retries ~retries:3 addr "shutdown" (Json.Obj [])
   with
  | Ok _ -> ()
  | Error e -> die "reference shutdown: %s" e);
  expect_clean_exit ~what:"reference" pid sock;

  (* ---------------------------------------------------------------- *)
  (* Phase 2: the same daemon under chaos — torn frames, garbage
     headers, stalled connections, and a worker-raise fault *)

  let budgets =
    match Faults.parse "conn-torn-frame:4,conn-garbage-header:4,conn-stall:2"
    with
    | Ok f -> f
    | Error e -> die "chaos budget spec: %s" e
  in
  let sock = in_dir "spd_chaos.sock" in
  if Sys.file_exists sock then Sys.remove sock;
  let addr = Protocol.Unix_path sock in
  let log = in_dir "spd_chaos.log" in
  let pid =
    spawn_daemon ~spd:!spd ~log
      [
        "--socket"; sock; "--workers"; "2"; "--jobs"; "2"; "--no-cache";
        "--conn-timeout"; "1"; "--inject-fault"; "worker-raise:2";
      ]
  in
  await_bind ~pid ~sock ~log addr;

  (* stalled connections: opened now, dribbling nothing, evicted by the
     1-second frame deadline while everything else proceeds *)
  let stalls =
    List.init (Faults.conn_stalls budgets) (fun _ ->
        let fd = raw_connect sock in
        raw_send fd "Content-Len";
        fd)
  in
  let torn =
    Domain.spawn (fun () ->
        for _ = 1 to Faults.conn_torn_frames budgets do
          let fd = raw_connect sock in
          raw_send fd "Content-Length: 4096\r\n\r\n{\"jsonrpc\":";
          raw_close fd
        done)
  in
  let garbage =
    Domain.spawn (fun () ->
        for _ = 1 to Faults.conn_garbage_headers budgets do
          let fd = raw_connect sock in
          raw_send fd "Content-Length: banana\r\n\r\n";
          ignore (raw_recv_all fd);
          raw_close fd
        done)
  in
  let good =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            List.init 10 (fun _ ->
                match
                  Protocol.call_with_retries ~retries:8 addr "query"
                    query_params
                with
                | Ok r -> Json.to_string r
                | Error e -> die "good client under chaos: %s" e)))
  in
  let answers = List.concat_map Domain.join good in
  Domain.join torn;
  Domain.join garbage;
  if List.length answers <> 30 then die "expected 30 good answers";
  List.iter
    (fun a ->
      if not (String.equal a reference) then
        die "answer under chaos differs from the fault-free daemon:\n%s\nvs\n%s"
          a reference)
    answers;

  (* supervision: the worker-raise fault killed workers, the crew is
     whole again and the restarts are visible in health *)
  let health =
    let rec poll n =
      if n = 0 then die "workers never recovered (see %s)" log;
      match Protocol.call_with_retries ~retries:3 addr "health" (Json.Obj [])
      with
      | Error e -> die "health under chaos: %s" e
      | Ok h ->
          let num name =
            match Option.bind (Json.member name h) Json.to_number with
            | Some v -> int_of_float v
            | None -> die "health lacks %S" name
          in
          if num "worker_restarts" >= 1 && num "workers_alive" = 2 then h
          else begin
            Unix.sleepf 0.1;
            poll (n - 1)
          end
    in
    poll 50
  in
  write_file (in_dir "spd_chaos_health.json") (Json.to_string health);
  List.iter raw_close stalls;

  (* graceful drain: SIGTERM with a slow request in flight — the
     request finishes, new work is refused, exit status is 0 *)
  let slow =
    Domain.spawn (fun () ->
        Protocol.call_with_retries ~retries:2 addr "micro"
          (Json.Obj
             [
               ("workloads", Json.List [ Json.String "moment" ]);
               ("min_time", Json.Float 0.5);
             ]))
  in
  Unix.sleepf 0.4;
  (* the slow micro is in flight now *)
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  Unix.sleepf 0.15;
  let refused = raw_roundtrip sock query_body in
  if not (contains refused "-32002") then
    die "draining daemon did not refuse with -32002: %S" refused;
  (match body_of refused with
  | Some body -> write_file (in_dir "spd_chaos_refused.json") body
  | None -> die "refusal reply is not a framed message: %S" refused);
  (match Domain.join slow with
  | Ok _ -> ()
  | Error e -> die "in-flight request dropped by the drain: %s" e);
  expect_clean_exit ~what:"chaos" pid sock;

  (* ---------------------------------------------------------------- *)
  (* Phase 3: admission control — one pinned worker, no queue *)

  let sock = in_dir "spd_chaos_busy.sock" in
  if Sys.file_exists sock then Sys.remove sock;
  let addr = Protocol.Unix_path sock in
  let log = in_dir "spd_chaos_busy.log" in
  let pid =
    spawn_daemon ~spd:!spd ~log
      [
        "--socket"; sock; "--workers"; "1"; "--jobs"; "1"; "--no-cache";
        "--max-pending"; "1"; "--conn-timeout"; "1";
      ]
  in
  await_bind ~pid ~sock ~log addr;
  ignore addr;
  (* pin the only worker mid-frame, and fill the one queue slot *)
  let hog = raw_connect sock in
  raw_send hog "Content-";
  Unix.sleepf 0.3;
  let queued = raw_connect sock in
  Unix.sleepf 0.1;
  let busy = raw_roundtrip sock ping_body in
  if not (contains busy "-32001" && contains busy "retry_after_ms") then
    die "saturated daemon did not refuse with server busy: %S" busy;
  (match body_of busy with
  | Some body -> write_file (in_dir "spd_chaos_busy.json") body
  | None -> die "busy reply is not a framed message: %S" busy);
  raw_close hog;
  raw_close queued;
  (* the CLI retry flag rides through the same refusal *)
  (match
     Unix.create_process !spd
       [| !spd; "call"; "shutdown"; "--socket"; sock; "--retries"; "8" |]
       Unix.stdin Unix.stderr Unix.stderr
   with
  | cli -> (
      match Unix.waitpid [] cli with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> die "spd call shutdown --retries failed"));
  expect_clean_exit ~what:"busy" pid sock;

  print_endline
    "chaos_smoke: OK (answers byte-identical under chaos, workers \
     respawned, drain refused new work and kept in-flight, busy refusal \
     carried retry_after_ms)"
