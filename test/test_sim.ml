(** Simulator tests: pure evaluation, guarded commit semantics, calls and
    recursion frames, non-faulting speculative loads, timing accumulation,
    profiling, and the replay cache (a cached traversal summary must be
    byte-identical to full interpretation). *)

open Util
module Ir = Spd_ir
module Sim = Spd_sim
open Ir

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Pure evaluation *)

let test_eval_int () =
  let e op a b = Sim.Eval.eval_pure (Opcode.Ibin op) [ Value.Int a; Value.Int b ] in
  check_bool "add" true (Value.equal (e Opcode.Add 2 3) (Value.Int 5));
  check_bool "div trunc" true (Value.equal (e Opcode.Div 7 2) (Value.Int 3));
  check_bool "neg div" true (Value.equal (e Opcode.Div (-7) 2) (Value.Int (-3)));
  check_bool "rem sign" true (Value.equal (e Opcode.Rem (-7) 2) (Value.Int (-1)));
  check_bool "xor" true (Value.equal (e Opcode.Xor 12 10) (Value.Int 6));
  (match e Opcode.Div 1 0 with
  | exception Sim.Eval.Runtime_error _ -> ()
  | _ -> Alcotest.fail "division by zero accepted")

let test_eval_select_not () =
  let sel p = Sim.Eval.eval_pure Opcode.Select [ p; Value.Int 1; Value.Int 2 ] in
  check_bool "select true" true (Value.equal (sel (Value.Int 5)) (Value.Int 1));
  check_bool "select false" true (Value.equal (sel (Value.Int 0)) (Value.Int 2));
  check_bool "not" true
    (Value.equal (Sim.Eval.eval_pure Opcode.Not [ Value.Int 7 ]) Value.zero)

(* ------------------------------------------------------------------ *)
(* Guarded commit semantics through the frontend *)

let test_guarded_store_commit () =
  (* only the taken branch's store commits *)
  check_int "guarded stores" 5
    (ret_int
       {|
int a[2];
int main() {
  int flag;
  flag = 1;
  if (flag) a[0] = 5; else a[0] = 9;
  return a[0];
}
|})

let test_speculative_load_is_harmless () =
  (* the else-branch load executes speculatively from a wild index but is
     never observed *)
  check_int "wild speculative load" 1
    (ret_int
       {|
int a[4];
int main() {
  int flag; int x;
  flag = 1;
  if (flag) x = 1; else x = a[123456789];
  return x;
}
|})

let test_deep_recursion_frames () =
  (* each activation gets its own locals; 40 frames deep *)
  check_int "frame isolation" 820
    (ret_int
       {|
int sum_to(int n) {
  int local[4];
  int r;
  local[0] = n;
  if (n == 0) return 0;
  r = sum_to(n - 1);
  return r + local[0];
}
int main() { return sum_to(40); }
|})

let test_traversal_budget () =
  let prog =
    compile
      "int main() { int i; i = 0; while (i < 1) { i = i * 1; } return 0; }"
  in
  match Sim.Interp.run ~mem_words:1024 ~fuel:10_000 prog with
  | exception Sim.Interp.Sim_error (Sim.Interp.Fuel_exhausted 10_000, ctx)
    ->
      check_bool "context names the function" true (ctx.in_func = Some "main")
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "infinite loop not caught"

let test_eval_error_context () =
  (* a division by zero reaches the caller as a structured Sim_error
     carrying the faulting function and operation *)
  match run_src "int main() { int x; x = 0; return 1 / x; }" with
  | exception Sim.Interp.Sim_error (Sim.Interp.Eval_error _, ctx) ->
      check_bool "context names the function" true (ctx.in_func = Some "main");
      check_bool "context names the op" true (ctx.at_op <> None)
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "division by zero accepted"

(* ------------------------------------------------------------------ *)
(* Timing: hand-built table, checked against a known trace *)

let test_timing_accumulates () =
  let prog = compile "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) s = s + i; return s; }" in
  let descr = Spd_machine.Descr.infinite ~mem_latency:2 in
  let timing = Spd_machine.Timing_builder.program descr prog in
  let r = Sim.Interp.run ~timing prog in
  check_int "result" 45 (Value.to_int r.ret);
  check_bool "cycles positive" true (r.cycles > 0);
  (* tighter machine cannot be faster *)
  let narrow =
    Spd_machine.Timing_builder.program (Spd_machine.Descr.fus 1 ~mem_latency:2) prog
  in
  let r1 = Sim.Interp.run ~timing:narrow prog in
  check_bool "1 FU no faster than infinite" true (r1.cycles >= r.cycles)

let test_memory_latency_hurts () =
  let prog =
    compile
      {|
double a[64];
int main() {
  int i; double s;
  s = 0.0;
  for (i = 0; i < 64; i = i + 1) a[i] = i;
  for (i = 0; i < 64; i = i + 1) s = s + a[i];
  return (int)s;
}
|}
  in
  let cycles lat =
    (Sim.Interp.run
       ~timing:
         (Spd_machine.Timing_builder.program
            (Spd_machine.Descr.infinite ~mem_latency:lat)
            prog)
       prog)
      .cycles
  in
  check_bool "6-cycle memory slower than 2-cycle" true (cycles 6 > cycles 2)

(* ------------------------------------------------------------------ *)
(* Profiling *)

let test_profile_exit_counts () =
  let prog =
    compile
      "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) s = s + i; return s; }"
  in
  let profile = Sim.Profile.create () in
  ignore (Sim.Interp.run ~profile prog);
  (* the loop tree: 10 back-edge traversals, 1 exit *)
  let main = Prog.find_func prog "main" in
  let loop =
    List.find
      (fun (t : Tree.t) ->
        Array.exists
          (fun (e : Tree.exit) ->
            match e.kind with
            | Tree.Jump { target; _ } -> target = t.id
            | _ -> false)
          t.exits)
      main.trees
  in
  match Sim.Profile.find profile ~func:"main" ~tree_id:loop.id with
  | None -> Alcotest.fail "loop tree not profiled"
  | Some stat ->
      check_int "traversals" 11 stat.traversals;
      check_int "back edge taken" 10 stat.exit_taken.(0);
      check_int "fall through taken" 1 stat.exit_taken.(1);
      check_close "exit probability"
        (10.0 /. 11.0)
        (Sim.Profile.exit_probability profile ~func:"main" ~tree:loop 0)

let test_profile_alias_counts () =
  (* i and j sweep together: a[i] and a[j] alias on every traversal where
     i = j, i.e. always; a[i] and a[i+1] never *)
  let prog =
    compile
      {|
int a[40];
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) {
    a[i] = i;
    a[i + 1] = a[i] + 1;
  }
  return a[10];
}
|}
  in
  let prog = Spd_analysis.Memarcs.annotate prog in
  let profile = Sim.Profile.create () in
  ignore (Sim.Interp.run ~profile prog);
  let checked = ref 0 in
  Prog.iter_trees
    (fun func (t : Tree.t) ->
      List.iter
        (fun (arc : Memdep.t) ->
          match
            Sim.Profile.alias_probability profile ~func ~tree_id:t.id
              ~src:arc.src ~dst:arc.dst
          with
          | None -> ()
          | Some p ->
              incr checked;
              check_bool "alias probability in [0,1]" true (p >= 0.0 && p <= 1.0))
        t.arcs)
    prog;
  check_bool "some arcs profiled" true (!checked > 0)

let test_output_order () =
  let out =
    output
      {|
int main() {
  int i;
  for (i = 0; i < 3; i = i + 1) print_int(i * i);
  return 0;
}
|}
  in
  Alcotest.(check (list value))
    "squares in order"
    [ Value.Int 0; Value.Int 1; Value.Int 4 ]
    out

(* ------------------------------------------------------------------ *)
(* Replay cache *)

(* every counter a profile holds, flattened for deep equality *)
let profile_summary (p : Sim.Profile.t) =
  Hashtbl.fold
    (fun key (ts : Sim.Profile.tree_stat) acc ->
      let arcs =
        Hashtbl.fold
          (fun arc (a : Sim.Profile.arc_stat) l ->
            (arc, a.Sim.Profile.both_active, a.Sim.Profile.aliased) :: l)
          ts.Sim.Profile.arc_stats []
        |> List.sort compare
      in
      ( key,
        ts.Sim.Profile.traversals,
        ts.Sim.Profile.cycles,
        Array.to_list ts.Sim.Profile.exit_taken,
        arcs )
      :: acc)
    p []
  |> List.sort compare

let test_replay_byte_identical () =
  (* a cached (hot) run must reproduce the cold run bit for bit: result,
     cycles, every profile counter, every SpD region counter.  'tree'
     aliases on some traversals only, so its SpD predicates flip at run
     time — exactly the case the cache must fall cold on. *)
  List.iter
    (fun name ->
      let w = Spd_workloads.Registry.by_name name in
      let prepared =
        Spd_harness.Pipeline.prepare
          ~config:(Spd_harness.Pipeline.Config.v ~mem_latency:6 ())
          Spd_harness.Pipeline.Spec (compile w.source)
      in
      let timing =
        Spd_machine.Timing_builder.program
          (Spd_machine.Descr.fus 5 ~mem_latency:6)
          prepared.prog
      in
      let run replay =
        let profile = Sim.Profile.create () in
        let spd = Sim.Profile.Spd.create () in
        List.iter
          (fun (a : Spd_core.Heuristic.application) ->
            ignore
              (Sim.Profile.Spd.watch spd ~func:a.func ~tree_id:a.tree_id
                 ~predicate:a.predicate))
          prepared.applications;
        let r = Sim.Interp.run ~timing ~profile ~spd ~replay prepared.prog in
        (r, profile_summary profile, Sim.Profile.Spd.totals spd)
      in
      let cold, cold_profile, cold_spd = run false in
      let hot, hot_profile, hot_spd = run true in
      check_bool (name ^ ": return value identical") true
        (Value.equal cold.Sim.Interp.ret hot.Sim.Interp.ret);
      check_bool (name ^ ": output identical") true
        (cold.Sim.Interp.output = hot.Sim.Interp.output);
      check_int (name ^ ": cycles identical") cold.Sim.Interp.cycles
        hot.Sim.Interp.cycles;
      check_int (name ^ ": traversals identical") cold.Sim.Interp.traversals
        hot.Sim.Interp.traversals;
      check_bool (name ^ ": profile counters byte-identical") true
        (cold_profile = hot_profile);
      check_bool (name ^ ": SpD totals identical") true (cold_spd = hot_spd))
    [ "tree"; "quick"; "moment" ]

let test_replay_key_packing () =
  let open Sim.Replay in
  (* distinct (taken, gmask) pairs pack to distinct keys *)
  let keys = Hashtbl.create 64 in
  for taken = 0 to 3 do
    for gmask = 0 to 15 do
      let k = key ~taken ~gmask ~n_guarded_stores:4 in
      if Hashtbl.mem keys k then Alcotest.failf "key collision at %d" k;
      Hashtbl.add keys k ()
    done
  done;
  check_int "all pairs distinct" 64 (Hashtbl.length keys)

let test_replay_cacheable_bounds () =
  let open Sim.Replay in
  check_bool "small tree cacheable" true
    (cacheable (create ~n_guarded_stores:3 ()));
  check_bool "boundary cacheable" true
    (cacheable (create ~n_guarded_stores:max_guarded_stores ()));
  let over = create ~n_guarded_stores:(max_guarded_stores + 1) () in
  check_bool "oversized tree not cacheable" false (cacheable over);
  (* an uncacheable table swallows adds and never hits *)
  add over 0 { cost = 1; squashed = 0; active_arcs = [||] };
  check_bool "uncacheable never hits" true (find over 0 = None)

let test_replay_entry_cap () =
  let open Sim.Replay in
  let t = create ~max_entries:2 ~n_guarded_stores:1 () in
  let s = { cost = 1; squashed = 0; active_arcs = [||] } in
  add t 0 s;
  add t 1 s;
  add t 2 s;
  check_bool "capped entry dropped" true (find t 2 = None);
  check_bool "early entries kept" true (find t 0 <> None && find t 1 <> None)

let tests =
  [
    case "eval int ops" test_eval_int;
    case "eval select/not" test_eval_select_not;
    case "guarded store commit" test_guarded_store_commit;
    case "speculative load non-faulting" test_speculative_load_is_harmless;
    case "recursion frames" test_deep_recursion_frames;
    case "traversal budget" test_traversal_budget;
    case "eval error context" test_eval_error_context;
    case "timing accumulates" test_timing_accumulates;
    case "memory latency hurts" test_memory_latency_hurts;
    case "profile exit counts" test_profile_exit_counts;
    case "profile alias counts" test_profile_alias_counts;
    case "output order" test_output_order;
    case "replay cache is byte-identical to cold runs"
      test_replay_byte_identical;
    case "replay key packing is injective" test_replay_key_packing;
    case "replay cacheable bounds" test_replay_cacheable_bounds;
    case "replay entry cap" test_replay_entry_cap;
  ]
