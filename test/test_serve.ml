(** Daemon tests: an in-process [Spd_serve.Server] on a temp Unix
    socket, exercised through the framed JSON-RPC client.

    The two acceptance properties of the serve API live here:
    - a burst of 100 identical concurrent [query] requests records
      exactly one cell computation in the engine's counters, and
    - a served [report] is byte-identical to [Artefact.to_json] on the
      same session (modulo the run-dependent metrics snapshot). *)

open Util
module H = Spd_harness
module Engine = H.Engine
module Json = Spd_telemetry.Json
module Protocol = Spd_serve.Protocol
module Server = Spd_serve.Server

let case name f = Alcotest.test_case name `Quick f
let uniq = Atomic.make 0

let tmp_socket () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "spd_serve_test_%d_%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add uniq 1))

(* start a fresh daemon on a fresh session; always stopped and cleaned
   up, even when the test body raises *)
let with_server ?(workers = 2) ?(jobs = 2) ?conn_timeout ?drain_deadline
    ?max_pending ?faults ?slow_ms f =
  let path = tmp_socket () in
  let addr = Protocol.Unix_path path in
  let session = Engine.Session.create ~jobs ~disk_cache:false () in
  let server =
    Server.start ~workers ?conn_timeout ?drain_deadline ?max_pending ?faults
      ?slow_ms ~session addr
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server;
      Engine.Session.close session;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f ~addr ~session ~server)

let connect addr =
  match Protocol.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let call_ok addr meth params =
  let c = connect addr in
  Fun.protect
    ~finally:(fun () -> Protocol.close c)
    (fun () ->
      match Protocol.call c meth params with
      | Ok r -> r
      | Error e -> Alcotest.failf "%s: %s" meth e)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string j)

let str j =
  match Json.to_string_opt j with
  | Some s -> s
  | None -> Alcotest.fail "expected a JSON string"

let num j =
  match Json.to_number j with
  | Some v -> v
  | None -> Alcotest.fail "expected a JSON number"

let query_params =
  Json.Obj
    [
      ("bench", Json.String "moment");
      ("latency", Json.Int 2);
      ("artefact", Json.String "cycles");
      ("pipeline", Json.String "spec");
      ("width", Json.Int 4);
    ]

let with_member params name v =
  match params with
  | Json.Obj kvs ->
      Json.Obj (List.filter (fun (k, _) -> k <> name) kvs @ [ (name, v) ])
  | _ -> assert false

(* raw-socket access, for speaking broken protocol on purpose *)

let raw_connect addr =
  match addr with
  | Protocol.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Protocol.Tcp _ -> assert false

let raw_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let raw_send fd s =
  try ignore (Unix.write_substring fd s 0 (String.length s))
  with Unix.Unix_error _ -> ()

(* everything the server says until it closes the connection (or a
   5-second safety net trips) *)
let raw_recv_all fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 4096 in
  let rec go () =
    match Unix.select [ fd ] [] [] 5.0 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.read fd b 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf b 0 n;
            go ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ())
  in
  go ();
  Buffer.contents buf

let eventually ?(timeout = 5.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    || Unix.gettimeofday () -. t0 < timeout
       && begin
            Unix.sleepf 0.02;
            go ()
          end
  in
  go ()

(* the worker must still serve a fresh connection after whatever the
   previous test paragraph did to its sibling *)
let assert_still_serving addr =
  match Protocol.call_with_retries ~retries:5 addr "ping" (Json.Obj []) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "daemon stopped serving: %s" e

(* ------------------------------------------------------------------ *)

let test_ping () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let r = call_ok addr "ping" (Json.Obj []) in
  check_string "schema" Protocol.schema (str (member "schema" r));
  let methods =
    match Json.to_list (member "methods" r) with
    | Some l -> List.map str l
    | None -> Alcotest.fail "methods should be a list"
  in
  List.iter
    (fun m -> check_bool (m ^ " advertised") true (List.mem m methods))
    Server.methods

(* one request path: the served value equals a direct submit on the
   same session, and the reported key is the query's key *)
let test_query_matches_direct () =
  with_server @@ fun ~addr ~session ~server:_ ->
  let r = call_ok addr "query" query_params in
  check_bool "ok" true (member "ok" r = Json.Bool true);
  let q =
    Engine.Query.v ~bench:"moment" ~latency:2
      (Engine.Query.Cycles
         { kind = H.Pipeline.Spec; width = Spd_machine.Descr.Fus 4 })
  in
  check_string "key" (Engine.Query.key q) (str (member "key" r));
  match Engine.Session.submit session q with
  | Engine.Ok v ->
      check_int "served value = direct submit"
        (int_of_float (num (member "value" r)))
        (match v with
        | Engine.Int n -> n
        | _ -> Alcotest.fail "cycles should be an Int value")
  | Engine.Failed _ -> Alcotest.fail "direct submit failed"

(* ACCEPTANCE: 100 identical concurrent requests, from 10 client
   domains with their own connections, cost exactly one preparation and
   one simulation in the shared engine *)
let test_concurrent_burst_dedup () =
  with_server ~workers:4 @@ fun ~addr ~session ~server:_ ->
  let domains =
    List.init 10 (fun _ ->
        Domain.spawn (fun () ->
            let c = connect addr in
            Fun.protect
              ~finally:(fun () -> Protocol.close c)
              (fun () ->
                List.init 10 (fun _ ->
                    match Protocol.call c "query" query_params with
                    | Ok r -> int_of_float (num (member "value" r))
                    | Error e -> Alcotest.failf "burst query: %s" e))))
  in
  let answers = List.concat_map Domain.join domains in
  check_int "100 answers" 100 (List.length answers);
  let first = List.hd answers in
  List.iter (fun v -> check_int "all answers equal" first v) answers;
  let st = Engine.Session.stats session in
  check_int "one preparation" 1 st.Engine.Stats.preparations;
  check_int "one simulation" 1 st.Engine.Stats.simulations;
  (* the stats method reports the same counters over the wire *)
  let counters = member "counters" (call_ok addr "stats" (Json.Obj [])) in
  check_int "stats RPC agrees" 1
    (int_of_float (num (member "simulations" counters)))

(* a quota-starved tenant gets ok:false; the same cell without a budget
   still succeeds afterwards (the failure never poisons the clean cell) *)
let test_quota_isolation () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let starved =
    call_ok addr "query" (with_member query_params "fuel" (Json.Int 1))
  in
  check_bool "starved request fails" true
    (member "ok" starved = Json.Bool false);
  check_bool "failure carries an error string" true
    (String.length (str (member "error" starved)) > 0);
  let clean = call_ok addr "query" query_params in
  check_bool "unbudgeted neighbour succeeds" true
    (member "ok" clean = Json.Bool true)

let drop_member name = function
  | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> name) kvs)
  | j -> j

(* ACCEPTANCE: the served report is the same document [Artefact.to_json]
   builds — one code path, so byte-identical JSON (metrics excluded:
   the process-global snapshot moves between the two calls) *)
let test_report_byte_identical () =
  with_server @@ fun ~addr ~session ~server:_ ->
  let artefacts = Json.List [ Json.String "table6_3" ] in
  let served =
    call_ok addr "report" (Json.Obj [ ("artefacts", artefacts) ])
  in
  let direct =
    H.Artefact.to_json ~session (H.Artefact.of_names [ "table6_3" ])
  in
  check_string "served report = direct to_json"
    (Json.to_string (drop_member "metrics" direct))
    (Json.to_string (drop_member "metrics" served))

let test_errors () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
  (match Protocol.call c "frobnicate" (Json.Obj []) with
  | Error e ->
      check_bool "unknown method is -32601" true
        (Test_harness.contains e "-32601")
  | Ok _ -> Alcotest.fail "frobnicate should not resolve");
  (match
     Protocol.call c "query"
       (with_member query_params "bench" (Json.String "nosuch"))
   with
  | Error e ->
      check_bool "unknown bench is -32602 invalid params" true
        (Test_harness.contains e "-32602"
        && Test_harness.contains e "nosuch")
  | Ok _ -> Alcotest.fail "unknown bench should be rejected");
  (* the connection survives errors: a good request still works *)
  match Protocol.call c "ping" (Json.Obj []) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ping after errors: %s" e

let test_shutdown_method () =
  with_server @@ fun ~addr ~session:_ ~server ->
  let r = call_ok addr "shutdown" (Json.Obj []) in
  check_bool "shutdown acknowledged" true
    (member "stopping" r = Json.Bool true);
  (* wait must return promptly now that the daemon is stopping *)
  Server.wait server;
  check_bool "requests were served" true (Server.served server >= 1)

(* ------------------------------------------------------------------ *)
(* Crash-only serving: malformed input, supervision, admission, drain *)

(* a Content-Length past the 64 MiB cap is answered with a structured
   parse error, and the worker goes on serving other connections *)
let test_oversized_content_length () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let fd = raw_connect addr in
  raw_send fd "Content-Length: 999999999\r\n\r\n";
  let resp = raw_recv_all fd in
  raw_close fd;
  check_bool "parse error -32700" true (Test_harness.contains resp "-32700");
  check_bool "names the bad length" true
    (Test_harness.contains resp "unreasonable Content-Length");
  assert_still_serving addr

(* disconnect mid-body: no response possible, the worker just drops the
   torn connection and serves the next one *)
let test_torn_frame () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let fd = raw_connect addr in
  raw_send fd "Content-Length: 4096\r\n\r\n{\"jsonrpc\":";
  raw_close fd;
  assert_still_serving addr

(* an unparsable Content-Length value is a framing error with the
   structured wording, answered once *)
let test_garbage_header () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let fd = raw_connect addr in
  raw_send fd "Content-Length: banana\r\n\r\n";
  let resp = raw_recv_all fd in
  raw_close fd;
  check_bool "parse error -32700" true (Test_harness.contains resp "-32700");
  check_bool "names the bad value" true
    (Test_harness.contains resp "invalid Content-Length");
  assert_still_serving addr

(* an endless header section trips the byte cap instead of growing
   memory *)
let test_header_flood () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let fd = raw_connect addr in
  let line = "X-Flood: " ^ String.make 500 'a' ^ "\r\n" in
  (try
     for _ = 1 to 100 do
       raw_send fd line
     done
   with _ -> ());
  let resp = raw_recv_all fd in
  raw_close fd;
  check_bool "parse error -32700" true (Test_harness.contains resp "-32700");
  check_bool "names the header cap" true
    (Test_harness.contains resp "frame header exceeds");
  assert_still_serving addr

(* peer sends a request and vanishes before the answer: the response
   write fails (EPIPE/ECONNRESET), the worker shrugs and serves on *)
let test_epipe_on_write () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let fd = raw_connect addr in
  let body = {|{"jsonrpc":"2.0","id":1,"method":"ping","params":{}}|} in
  raw_send fd
    (Printf.sprintf "Content-Length: %d\r\n\r\n%s" (String.length body) body);
  raw_close fd;
  assert_still_serving addr

(* slow-loris: a connection dribbling no bytes past the frame deadline
   is evicted and counted *)
let test_conn_timeout_eviction () =
  with_server ~conn_timeout:0.2 @@ fun ~addr ~session:_ ~server ->
  let fd = raw_connect addr in
  raw_send fd "Content-Len";
  (* never finishes the header *)
  check_bool "stalled connection evicted" true
    (eventually (fun () -> Server.conn_timeouts server >= 1));
  raw_close fd;
  assert_still_serving addr

(* admission control: with every worker pinned and no queue, the next
   connection is refused with server busy + retry_after_ms; retries ride
   through once capacity frees up *)
let test_admission_busy () =
  with_server ~workers:1 ~max_pending:0 ~conn_timeout:30.0
  @@ fun ~addr ~session:_ ~server ->
  let hog = raw_connect addr in
  raw_send hog "Content-";
  (* pins the only worker mid-frame *)
  check_bool "worker claimed the hog" true
    (eventually (fun () -> Server.active_conns server >= 1));
  (match Protocol.connect addr with
  | Error e -> Alcotest.failf "connect while busy: %s" e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
      (match Protocol.call_ex c "ping" (Json.Obj []) with
      | Error (Protocol.Rpc e) ->
          check_int "server busy code" Protocol.server_busy e.Protocol.code;
          check_bool "carries retry_after_ms" true
            (e.Protocol.retry_after_ms <> None)
      | Error (Protocol.Transport e) ->
          Alcotest.failf "expected a busy error, got transport: %s" e
      | Ok _ -> Alcotest.fail "expected a busy refusal"));
  check_bool "refusal counted" true (Server.admission_rejected server >= 1);
  (* free the worker; a retrying client must get through *)
  raw_close hog;
  assert_still_serving addr

(* a worker that dies on an unexpected exception is respawned: the
   poisoned connection is lost, the crew is not *)
let test_worker_supervision () =
  let faults =
    match H.Faults.parse "worker-raise:1" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  with_server ~workers:2 ~faults @@ fun ~addr ~session:_ ~server ->
  (match Protocol.connect addr with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
      (* the fault kills this connection's worker before any response *)
      (match Protocol.call_ex c "ping" (Json.Obj []) with
      | Error (Protocol.Transport _) -> ()
      | Error (Protocol.Rpc e) ->
          Alcotest.failf "expected a torn connection, got rpc error %d"
            e.Protocol.code
      | Ok _ -> Alcotest.fail "poisoned connection should not answer"));
  check_bool "restart counted" true
    (eventually (fun () -> Server.worker_restarts server >= 1));
  check_bool "crew back to full strength" true
    (eventually (fun () -> Server.workers_alive server = 2));
  assert_still_serving addr

let test_health () =
  with_server @@ fun ~addr ~session:_ ~server ->
  check_bool "both workers up" true
    (eventually (fun () -> Server.workers_alive server = 2));
  let r = call_ok addr "health" (Json.Obj []) in
  check_string "kind" "health" (str (member "kind" r));
  check_int "workers" 2 (int_of_float (num (member "workers" r)));
  check_int "workers_alive" 2
    (int_of_float (num (member "workers_alive" r)));
  check_bool "not draining" true (member "draining" r = Json.Bool false);
  check_bool "health counts itself in flight" true
    (num (member "in_flight" r) >= 1.0);
  check_bool "uptime ticks" true (num (member "uptime_seconds" r) >= 0.0)

(* drain semantics: during the drain, health still answers (and says
   draining) while real work is refused with -32002 *)
let test_drain_refuses_work () =
  with_server @@ fun ~addr ~session:_ ~server ->
  Server.stop server;
  Server.stop server;
  (* idempotent: second stop is a no-op *)
  check_bool "draining" true (Server.draining server);
  let h = call_ok addr "health" (Json.Obj []) in
  check_bool "health reports draining" true
    (member "draining" h = Json.Bool true);
  match Protocol.connect addr with
  | Error e -> Alcotest.failf "connect while draining: %s" e
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
      match Protocol.call_ex c "query" query_params with
      | Error (Protocol.Rpc e) ->
          check_int "shutting-down code" Protocol.server_shutting_down
            e.Protocol.code
      | Error (Protocol.Transport e) ->
          Alcotest.failf "expected a structured refusal, got: %s" e
      | Ok _ -> Alcotest.fail "draining daemon should refuse a query")

(* the serve counters are registered up front: a metrics snapshot
   carries them even before any fault fires *)
let test_metrics_snapshot_keys () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let counters = member "counters" (call_ok addr "metrics" (Json.Obj [])) in
  List.iter
    (fun key ->
      check_bool (key ^ " registered") true (Json.member key counters <> None))
    [
      "spd.serve.requests"; "spd.serve.errors"; "spd.serve.conn.timeout";
      "spd.serve.worker.restart"; "spd.serve.admission.rejected";
    ]

(* ------------------------------------------------------------------ *)
(* Observability: rid echo, metrics_prom, latency histograms, slow log *)

(* every response envelope echoes a server-assigned rid, and distinct
   requests get distinct rids *)
let test_rid_echo () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
  check_bool "no rid before any call" true (Protocol.last_rid c = None);
  ignore (Protocol.call c "ping" (Json.Obj []));
  let r1 = Protocol.last_rid c in
  ignore (Protocol.call c "ping" (Json.Obj []));
  let r2 = Protocol.last_rid c in
  check_bool "rid echoed" true (r1 <> None && r2 <> None);
  check_bool "rids distinct per request" true (r1 <> r2);
  (* error envelopes carry one too *)
  ignore (Protocol.call c "frobnicate" (Json.Obj []));
  check_bool "rid on error envelope" true
    (Protocol.last_rid c <> None && Protocol.last_rid c <> r2)

let test_metrics_prom_method () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  ignore (call_ok addr "ping" (Json.Obj []));
  let r = call_ok addr "metrics_prom" (Json.Obj []) in
  check_string "kind" "metrics_prom" (str (member "kind" r));
  check_bool "content type versioned" true
    (Test_harness.contains (str (member "content_type" r)) "0.0.4");
  let text = str (member "text" r) in
  check_bool "serve counter exported" true
    (Test_harness.contains text "spd_serve_requests");
  check_bool "histogram has +Inf bucket" true
    (Test_harness.contains text "le=\"+Inf\"")

(* each RPC lands in its per-method latency histogram, and the merged
   histogram yields sane quantiles *)
let test_per_method_latency () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let n_pings = 5 in
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
  for _ = 1 to n_pings do
    ignore (Protocol.call c "ping" (Json.Obj []))
  done;
  let module Metrics = Spd_telemetry.Metrics in
  let hists =
    member "histograms" (call_ok addr "metrics" (Json.Obj []))
  in
  match
    Option.bind
      (Json.member "spd.serve.rpc.latency.ping" hists)
      Metrics.hist_of_json
  with
  | None -> Alcotest.fail "no ping latency histogram"
  | Some h ->
      check_bool "all pings observed" true (h.Metrics.count >= n_pings);
      (match Metrics.quantile h 0.95 with
      | Some p95 -> check_bool "p95 sane" true (p95 >= 0.0 && p95 < 30.0)
      | None -> Alcotest.fail "p95 missing")

(* --slow-ms 0 flags every request: the rpc.slow record lands in the
   log file with the request's rid and a stage breakdown member *)
let test_slow_request_log () =
  let module Log = Spd_telemetry.Log in
  let path = Filename.temp_file "spd_slow" ".jsonl" in
  let prev_level = Log.level () in
  Fun.protect ~finally:(fun () ->
      Log.close ();
      Log.set_level prev_level;
      Sys.remove path)
  @@ fun () ->
  Log.set_level Log.Info;
  (match Log.to_file path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "to_file: %s" e);
  ( with_server ~slow_ms:0.0001 @@ fun ~addr ~session:_ ~server:_ ->
    let c = connect addr in
    Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
    (match Protocol.call c "query" query_params with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "query: %s" e);
    Log.flush ();
    let lines = In_channel.with_open_text path In_channel.input_lines in
    let slow =
      List.filter_map
        (fun l ->
          match Json.of_string l with
          | Ok d
            when Option.bind (Json.member "event" d) Json.to_string_opt
                 = Some "rpc.slow" ->
              Some d
          | _ -> None)
        lines
    in
    match
      List.find_opt
        (fun d ->
          Option.bind (Json.member "method" d) Json.to_string_opt
          = Some "query")
        slow
    with
    | None -> Alcotest.fail "no rpc.slow record for the query"
    | Some d ->
        check_bool "slow record carries the echoed rid" true
          (Option.bind (Json.member "rid" d) Json.to_string_opt
          = Protocol.last_rid c);
        check_bool "stage breakdown present" true
          (match Json.member "stages" d with
          | Some (Json.Obj _) -> true
          | _ -> false);
        check_bool "ms recorded" true
          (match Option.bind (Json.member "ms" d) Json.to_number with
          | Some ms -> ms >= 0.0
          | None -> false) )

(* the spd top data layer over a live daemon: sampling, windowing,
   rendering *)
let test_top_sampling () =
  let module Top = Spd_serve.Top in
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
  let fetch () =
    match Top.fetch c with
    | Ok s -> s
    | Error e -> Alcotest.failf "top fetch: %s" e
  in
  let s0 = fetch () in
  ignore (call_ok addr "ping" (Json.Obj []));
  let s1 = fetch () in
  check_bool "request counter advanced" true
    (Top.counter s1 "spd.serve.requests" > Top.counter s0 "spd.serve.requests");
  (* windowed histogram counts only the new requests *)
  (match Top.window (Some s0) s1 "spd.serve.rpc.latency.ping" with
  | Some h -> check_bool "window counts the new ping" true (h.Spd_telemetry.Metrics.count >= 1)
  | None -> Alcotest.fail "no windowed ping histogram");
  let frame = Top.render ~prev:s0 s1 in
  check_bool "frame names the dashboard" true
    (Test_harness.contains frame "spd top");
  check_bool "frame has the latency table" true
    (Test_harness.contains frame "latency (ms)");
  check_bool "first frame renders too" true
    (String.length (Top.render s0) > 0)

(* health gained the log counters *)
let test_health_log_counters () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let r = call_ok addr "health" (Json.Obj []) in
  check_bool "log_records" true (num (member "log_records" r) >= 0.0);
  check_bool "log_dropped" true (num (member "log_dropped" r) >= 0.0)

let tests =
  [
    case "ping over a unix socket" test_ping;
    case "query = direct submit" test_query_matches_direct;
    case "100-request burst = one computation" test_concurrent_burst_dedup;
    case "fuel quota isolates a tenant" test_quota_isolation;
    case "served report is byte-identical" test_report_byte_identical;
    case "JSON-RPC errors and recovery" test_errors;
    case "shutdown method stops the daemon" test_shutdown_method;
    case "oversized Content-Length is refused" test_oversized_content_length;
    case "torn frame leaves the worker alive" test_torn_frame;
    case "garbage header is a framing error" test_garbage_header;
    case "header flood trips the cap" test_header_flood;
    case "EPIPE on response write is contained" test_epipe_on_write;
    case "slow-loris eviction" test_conn_timeout_eviction;
    case "admission control refuses with busy" test_admission_busy;
    case "worker supervision respawns" test_worker_supervision;
    case "health method" test_health;
    case "drain refuses work, answers health" test_drain_refuses_work;
    case "metrics carries the serve counters" test_metrics_snapshot_keys;
    case "rid echoed on every envelope" test_rid_echo;
    case "metrics_prom method" test_metrics_prom_method;
    case "per-method latency histograms" test_per_method_latency;
    case "slow-request log with stage breakdown" test_slow_request_log;
    case "spd top sampling and rendering" test_top_sampling;
    case "health carries log counters" test_health_log_counters;
  ]
