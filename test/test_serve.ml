(** Daemon tests: an in-process [Spd_serve.Server] on a temp Unix
    socket, exercised through the framed JSON-RPC client.

    The two acceptance properties of the serve API live here:
    - a burst of 100 identical concurrent [query] requests records
      exactly one cell computation in the engine's counters, and
    - a served [report] is byte-identical to [Artefact.to_json] on the
      same session (modulo the run-dependent metrics snapshot). *)

open Util
module H = Spd_harness
module Engine = H.Engine
module Json = Spd_telemetry.Json
module Protocol = Spd_serve.Protocol
module Server = Spd_serve.Server

let case name f = Alcotest.test_case name `Quick f
let uniq = Atomic.make 0

let tmp_socket () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "spd_serve_test_%d_%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add uniq 1))

(* start a fresh daemon on a fresh session; always stopped and cleaned
   up, even when the test body raises *)
let with_server ?(workers = 2) ?(jobs = 2) f =
  let path = tmp_socket () in
  let addr = Protocol.Unix_path path in
  let session = Engine.Session.create ~jobs ~disk_cache:false () in
  let server = Server.start ~workers ~session addr in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server;
      Engine.Session.close session;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f ~addr ~session ~server)

let connect addr =
  match Protocol.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let call_ok addr meth params =
  let c = connect addr in
  Fun.protect
    ~finally:(fun () -> Protocol.close c)
    (fun () ->
      match Protocol.call c meth params with
      | Ok r -> r
      | Error e -> Alcotest.failf "%s: %s" meth e)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string j)

let str j =
  match Json.to_string_opt j with
  | Some s -> s
  | None -> Alcotest.fail "expected a JSON string"

let num j =
  match Json.to_number j with
  | Some v -> v
  | None -> Alcotest.fail "expected a JSON number"

let query_params =
  Json.Obj
    [
      ("bench", Json.String "moment");
      ("latency", Json.Int 2);
      ("artefact", Json.String "cycles");
      ("pipeline", Json.String "spec");
      ("width", Json.Int 4);
    ]

let with_member params name v =
  match params with
  | Json.Obj kvs ->
      Json.Obj (List.filter (fun (k, _) -> k <> name) kvs @ [ (name, v) ])
  | _ -> assert false

(* ------------------------------------------------------------------ *)

let test_ping () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let r = call_ok addr "ping" (Json.Obj []) in
  check_string "schema" Protocol.schema (str (member "schema" r));
  let methods =
    match Json.to_list (member "methods" r) with
    | Some l -> List.map str l
    | None -> Alcotest.fail "methods should be a list"
  in
  List.iter
    (fun m -> check_bool (m ^ " advertised") true (List.mem m methods))
    Server.methods

(* one request path: the served value equals a direct submit on the
   same session, and the reported key is the query's key *)
let test_query_matches_direct () =
  with_server @@ fun ~addr ~session ~server:_ ->
  let r = call_ok addr "query" query_params in
  check_bool "ok" true (member "ok" r = Json.Bool true);
  let q =
    Engine.Query.v ~bench:"moment" ~latency:2
      (Engine.Query.Cycles
         { kind = H.Pipeline.Spec; width = Spd_machine.Descr.Fus 4 })
  in
  check_string "key" (Engine.Query.key q) (str (member "key" r));
  match Engine.Session.submit session q with
  | Engine.Ok v ->
      check_int "served value = direct submit"
        (int_of_float (num (member "value" r)))
        (match v with
        | Engine.Int n -> n
        | _ -> Alcotest.fail "cycles should be an Int value")
  | Engine.Failed _ -> Alcotest.fail "direct submit failed"

(* ACCEPTANCE: 100 identical concurrent requests, from 10 client
   domains with their own connections, cost exactly one preparation and
   one simulation in the shared engine *)
let test_concurrent_burst_dedup () =
  with_server ~workers:4 @@ fun ~addr ~session ~server:_ ->
  let domains =
    List.init 10 (fun _ ->
        Domain.spawn (fun () ->
            let c = connect addr in
            Fun.protect
              ~finally:(fun () -> Protocol.close c)
              (fun () ->
                List.init 10 (fun _ ->
                    match Protocol.call c "query" query_params with
                    | Ok r -> int_of_float (num (member "value" r))
                    | Error e -> Alcotest.failf "burst query: %s" e))))
  in
  let answers = List.concat_map Domain.join domains in
  check_int "100 answers" 100 (List.length answers);
  let first = List.hd answers in
  List.iter (fun v -> check_int "all answers equal" first v) answers;
  let st = Engine.Session.stats session in
  check_int "one preparation" 1 st.Engine.Stats.preparations;
  check_int "one simulation" 1 st.Engine.Stats.simulations;
  (* the stats method reports the same counters over the wire *)
  let counters = member "counters" (call_ok addr "stats" (Json.Obj [])) in
  check_int "stats RPC agrees" 1
    (int_of_float (num (member "simulations" counters)))

(* a quota-starved tenant gets ok:false; the same cell without a budget
   still succeeds afterwards (the failure never poisons the clean cell) *)
let test_quota_isolation () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let starved =
    call_ok addr "query" (with_member query_params "fuel" (Json.Int 1))
  in
  check_bool "starved request fails" true
    (member "ok" starved = Json.Bool false);
  check_bool "failure carries an error string" true
    (String.length (str (member "error" starved)) > 0);
  let clean = call_ok addr "query" query_params in
  check_bool "unbudgeted neighbour succeeds" true
    (member "ok" clean = Json.Bool true)

let drop_member name = function
  | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> name) kvs)
  | j -> j

(* ACCEPTANCE: the served report is the same document [Artefact.to_json]
   builds — one code path, so byte-identical JSON (metrics excluded:
   the process-global snapshot moves between the two calls) *)
let test_report_byte_identical () =
  with_server @@ fun ~addr ~session ~server:_ ->
  let artefacts = Json.List [ Json.String "table6_3" ] in
  let served =
    call_ok addr "report" (Json.Obj [ ("artefacts", artefacts) ])
  in
  let direct =
    H.Artefact.to_json ~session (H.Artefact.of_names [ "table6_3" ])
  in
  check_string "served report = direct to_json"
    (Json.to_string (drop_member "metrics" direct))
    (Json.to_string (drop_member "metrics" served))

let test_errors () =
  with_server @@ fun ~addr ~session:_ ~server:_ ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Protocol.close c) @@ fun () ->
  (match Protocol.call c "frobnicate" (Json.Obj []) with
  | Error e ->
      check_bool "unknown method is -32601" true
        (Test_harness.contains e "-32601")
  | Ok _ -> Alcotest.fail "frobnicate should not resolve");
  (match
     Protocol.call c "query"
       (with_member query_params "bench" (Json.String "nosuch"))
   with
  | Error e ->
      check_bool "unknown bench is -32602 invalid params" true
        (Test_harness.contains e "-32602"
        && Test_harness.contains e "nosuch")
  | Ok _ -> Alcotest.fail "unknown bench should be rejected");
  (* the connection survives errors: a good request still works *)
  match Protocol.call c "ping" (Json.Obj []) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ping after errors: %s" e

let test_shutdown_method () =
  with_server @@ fun ~addr ~session:_ ~server ->
  let r = call_ok addr "shutdown" (Json.Obj []) in
  check_bool "shutdown acknowledged" true
    (member "stopping" r = Json.Bool true);
  (* wait must return promptly now that the daemon is stopping *)
  Server.wait server;
  check_bool "requests were served" true (Server.served server >= 1)

let tests =
  [
    case "ping over a unix socket" test_ping;
    case "query = direct submit" test_query_matches_direct;
    case "100-request burst = one computation" test_concurrent_burst_dedup;
    case "fuel quota isolates a tenant" test_quota_isolation;
    case "served report is byte-identical" test_report_byte_identical;
    case "JSON-RPC errors and recovery" test_errors;
    case "shutdown method stops the daemon" test_shutdown_method;
  ]
