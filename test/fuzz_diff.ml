(** Differential fuzz oracle for the SpD pipeline.

    Every case generates a random mini-C program (from a seeded,
    replayable RNG), runs it through the plain interpreter, and through
    the SpD-transformed program both untimed and under the 4-FU
    scheduled machine.  All three observable behaviours (return value
    and printed output) must be identical; the machine adds timing, not
    semantics.

    Each case additionally cross-checks the rewritten hot paths against
    their preserved originals: the indexed DDG build must produce the
    reference build's edges, the heap list scheduler must emit
    bit-identical schedules to {!Spd_machine.Scheduler.Reference}, and a
    simulation with the replay cache enabled must agree with a cold
    (cache-disabled) run on results, cycle counts, profile counters and
    SpD region dynamics.

    Finally the symbolic translation validator is run as a cross-oracle
    against the concrete differential stages: a transform every
    concrete run certified must not be [Refuted] symbolically — the
    two oracles fail independently, so a divergence flags a bug in
    whichever one is wrong.

    On a mismatch (or a crash in any stage) the failing case is
    greedily shrunk to a minimal spec, and the seed, case number and
    minimized source are printed so the failure replays exactly with
    [--replay CASE --seed SEED].

    {v
    fuzz_diff [--count N] [--seed S] [--replay CASE] [--fuel N] [--verbose]
    v}

    [--fuel] tightens the per-case traversal budget (default 2M);
    exhausting it counts as a stage failure, which also exercises the
    shrinker on demand. *)

module Pipeline = Spd_harness.Pipeline
module Interp = Spd_sim.Interp
module Profile = Spd_sim.Profile
module Scheduler = Spd_machine.Scheduler
module Ddg = Spd_analysis.Ddg

(* a per-case fuel well under the default: generated programs are tiny,
   so a runaway traversal count is itself a bug worth failing on *)
let case_fuel = ref 2_000_000

type mismatch = {
  stage : string;
  detail : string;
}

let pp_observed ppf (ret, output) =
  Fmt.pf ppf "return %a; output [%a]" Spd_ir.Value.pp ret
    Fmt.(list ~sep:semi Spd_ir.Value.pp)
    output

(* Hot-path oracle 1: the indexed DDG build and the heap scheduler must
   reproduce the preserved reference implementations bit for bit. *)
let check_scheduler_equivalence (prog : Spd_ir.Prog.t) =
  Spd_ir.Prog.iter_trees
    (fun _func tree ->
      let g = Ddg.build ~mem_latency:2 tree in
      let r = Scheduler.Reference.build_ddg ~mem_latency:2 tree in
      if
        not
          (g.Ddg.preds = r.Ddg.preds
          && g.Ddg.succs = r.Ddg.succs
          && g.Ddg.node_lat = r.Ddg.node_lat)
      then
        failwith
          (Printf.sprintf "%s: indexed DDG differs from the reference build"
             tree.Spd_ir.Tree.name);
      List.iter
        (fun fus ->
          let s = Scheduler.run ~fus g in
          let s' = Scheduler.Reference.run ~fus r in
          if
            s.Scheduler.issue <> s'.Scheduler.issue
            || s.Scheduler.fu <> s'.Scheduler.fu
            || s.Scheduler.length <> s'.Scheduler.length
          then
            failwith
              (Printf.sprintf
                 "%s: %d-wide heap schedule differs from the reference scan"
                 tree.Spd_ir.Tree.name fus))
        [ 1; 4 ])
    prog

(* Every profile counter, flattened into a canonical comparable value. *)
let profile_summary (p : Profile.t) =
  Hashtbl.fold
    (fun key (ts : Profile.tree_stat) acc ->
      let arcs =
        Hashtbl.fold
          (fun arc (a : Profile.arc_stat) l ->
            (arc, a.Profile.both_active, a.Profile.aliased) :: l)
          ts.Profile.arc_stats []
        |> List.sort compare
      in
      ( key,
        ts.Profile.traversals,
        ts.Profile.cycles,
        Array.to_list ts.Profile.exit_taken,
        arcs )
      :: acc)
    p []
  |> List.sort compare

(* Hot-path oracle 2: a replay-cached simulation must agree with a cold
   run on results, cycles, profile counters and SpD region dynamics. *)
let check_replay_equivalence (prepared : Pipeline.prepared) =
  let descr =
    { Spd_machine.Descr.width = Spd_machine.Descr.Fus 4; mem_latency = 2 }
  in
  let timing = Spd_machine.Timing_builder.program descr prepared.prog in
  let run replay =
    let profile = Profile.create () in
    let spd = Profile.Spd.create () in
    List.iter
      (fun (a : Spd_core.Heuristic.application) ->
        ignore
          (Profile.Spd.watch spd ~func:a.func ~tree_id:a.tree_id
             ~predicate:a.predicate))
      prepared.applications;
    let r = Interp.run ~timing ~profile ~spd ~fuel:!case_fuel ~replay prepared.prog in
    ((r.ret, r.output, r.cycles, r.traversals),
     profile_summary profile,
     Profile.Spd.totals spd)
  in
  let cold = run false in
  let hot = run true in
  if cold <> hot then failwith "replay run diverged from the cold run"

(* The oracle: [Ok ()] when the SpD pipeline preserves the plain
   interpreter's observable behaviour, [Error m] otherwise.  Any
   exception out of compilation, transformation or simulation is a
   failure of that stage. *)
let check (spec : Gen_prog.spec) : (unit, mismatch) result =
  let src = Gen_prog.render spec in
  let stage name f =
    match f () with
    | v -> Ok v
    | exception e ->
        Error { stage = name; detail = Printexc.to_string e }
  in
  let ( let* ) = Result.bind in
  let* lowered = stage "lower" (fun () -> Spd_lang.Lower.compile src) in
  let* expected =
    stage "interpret (plain)" (fun () ->
        Interp.observe ~fuel:!case_fuel lowered)
  in
  let* prepared =
    stage "transform (SpD)" (fun () ->
        Pipeline.prepare
          ~config:(Pipeline.Config.v ~check:false ~fuel:!case_fuel ())
          Pipeline.Spec lowered)
  in
  let* got =
    stage "interpret (SpD)" (fun () ->
        Interp.observe ~fuel:!case_fuel prepared.prog)
  in
  let* () =
    stage "scheduler-equivalence (heap vs reference)" (fun () ->
        check_scheduler_equivalence prepared.prog)
  in
  let* () =
    stage "replay-equivalence (cache vs cold)" (fun () ->
        check_replay_equivalence prepared)
  in
  let* timed =
    stage "simulate (SpD, 4 FU)" (fun () ->
        let descr =
          { Spd_machine.Descr.width = Spd_machine.Descr.Fus 4;
            mem_latency = 2 }
        in
        let timing = Spd_machine.Timing_builder.program descr prepared.prog in
        let r = Interp.run ~timing ~fuel:!case_fuel prepared.prog in
        (r.ret, r.output))
  in
  let* () =
    if got <> expected then
      Error
        {
          stage = "diff (SpD vs plain)";
          detail =
            Fmt.str "plain: %a@.SpD:   %a" pp_observed expected pp_observed
              got;
        }
    else if timed <> expected then
      Error
        {
          stage = "diff (scheduled vs plain)";
          detail =
            Fmt.str "plain:     %a@.scheduled: %a" pp_observed expected
              pp_observed timed;
        }
    else Ok ()
  in
  (* Cross-oracle: every concrete stage above just certified this
     transform, so the symbolic validator must not refute it — a
     [Validation_failed] here means the validator refuted a passing
     program ([Unknown] verdicts are tolerated; [Proved] agreement with
     concrete runs is what the earlier diff stages established). *)
  let* p =
    stage "validate-oracle (symbolic vs concrete)" (fun () ->
        Pipeline.prepare
          ~config:
            (Pipeline.Config.v ~check:false ~validate:true ~fuel:!case_fuel ())
          Pipeline.Spec lowered)
  in
  if List.length p.Pipeline.verdicts <> List.length p.Pipeline.applications
  then
    Error
      {
        stage = "validate-oracle (symbolic vs concrete)";
        detail = "validation ledger is missing applications";
      }
  else Ok ()

let spec_of ~seed ~case =
  let rand = Random.State.make [| seed; case |] in
  QCheck.Gen.generate1 ~rand Gen_prog.gen_spec

let report_failure ~seed ~case spec m =
  Fmt.epr "@.FAIL case %d (seed %d): %s@.%s@." case seed m.stage m.detail;
  Fmt.epr "@.Shrinking...@.";
  let still_fails s = Result.is_error (check s) in
  let small = Gen_prog.shrink ~still_fails spec in
  let m' =
    match check small with Error m' -> m' | Ok () -> m (* unreachable *)
  in
  Fmt.epr "@.Minimized reproducer (%s):@.%s@." m'.stage
    (Gen_prog.render small);
  Fmt.epr "Replay with: fuzz_diff --seed %d --replay %d@." seed case

let () =
  let count = ref 200 in
  let seed = ref 42 in
  let replay = ref None in
  let verbose = ref false in
  let usage () =
    Fmt.epr
      "usage: fuzz_diff [--count N] [--seed S] [--replay CASE] [--verbose]@.";
    exit 1
  in
  let int_flag flag n =
    match int_of_string_opt n with
    | Some v when v >= 0 -> v
    | _ ->
        Fmt.epr "fuzz_diff: %s expects a non-negative integer, got %S@." flag
          n;
        exit 1
  in
  let rec parse = function
    | [] -> ()
    | "--count" :: n :: tl -> count := int_flag "--count" n; parse tl
    | "--seed" :: n :: tl -> seed := int_flag "--seed" n; parse tl
    | "--replay" :: n :: tl ->
        replay := Some (int_flag "--replay" n);
        parse tl
    | "--fuel" :: n :: tl ->
        (match int_flag "--fuel" n with
        | 0 -> Fmt.epr "fuzz_diff: --fuel expects a positive integer@."; exit 1
        | v -> case_fuel := v);
        parse tl
    | "--verbose" :: tl -> verbose := true; parse tl
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed = !seed in
  let cases =
    match !replay with Some c -> [ c ] | None -> List.init !count Fun.id
  in
  let failed = ref 0 in
  List.iter
    (fun case ->
      let spec = spec_of ~seed ~case in
      match check spec with
      | Ok () ->
          if !verbose then Fmt.epr "case %d: ok@." case
      | Error m ->
          incr failed;
          report_failure ~seed ~case spec m)
    cases;
  if !failed > 0 then begin
    Fmt.epr "@.%d of %d differential cases FAILED (seed %d)@." !failed
      (List.length cases) seed;
    exit 1
  end
  else
    Fmt.pr "fuzz_diff: %d differential cases passed (seed %d)@."
      (List.length cases) seed
