let () =
  Alcotest.run "spd"
    [
      ("ir", Test_ir.tests);
      ("lang", Test_lang.tests);
      ("sim", Test_sim.tests);
      ("analysis", Test_analysis.tests);
      ("disambig", Test_disambig.tests);
      ("machine", Test_machine.tests);
      ("spd", Test_spd.tests);
      ("harness", Test_harness.tests);
      ("faults", Test_faults.tests);
      ("validate", Test_validate.tests);
      ("serve", Test_serve.tests);
      ("workloads", Test_workloads.tests);
      ("telemetry", Test_telemetry.tests);
      ("explain", Test_explain.tests);
      ("golden", Test_golden.tests);
    ]
