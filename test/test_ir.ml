(** IR tests: values, intervals, opcodes, instructions, tree validation,
    memory dependence arcs. *)

open Util
module Ir = Spd_ir
open Ir

let case name f = Alcotest.test_case name `Quick f
let qcase = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Values *)

let test_value_truth () =
  check_bool "0 false" false (Value.is_true (Value.Int 0));
  check_bool "1 true" true (Value.is_true (Value.Int 1));
  check_bool "-1 true" true (Value.is_true (Value.Int (-1)));
  check_bool "0.0 false" false (Value.is_true (Value.Float 0.0));
  check_bool "2.5 true" true (Value.is_true (Value.Float 2.5))

let test_value_conversions () =
  check_int "to_int trunc" 2 (Value.to_int (Value.Float 2.9));
  check_int "to_int neg trunc" (-2) (Value.to_int (Value.Float (-2.9)));
  check_close "to_float" 7.0 (Value.to_float (Value.Int 7));
  check_bool "of_bool" true Value.(equal (of_bool true) one);
  check_bool "int/float not equal" false
    (Value.equal (Value.Int 1) (Value.Float 1.0))

(* ------------------------------------------------------------------ *)
(* Intervals *)

let interval_gen =
  QCheck.Gen.(
    let bound = map (fun b -> if b > 90 then None else Some (b - 45)) (int_bound 100) in
    map2
      (fun lo hi ->
        match (lo, hi) with
        | Some a, Some b when a > b -> Interval.make (Some b) (Some a)
        | _ -> Interval.make lo hi)
      bound bound)

let interval_arb = QCheck.make ~print:(Fmt.to_to_string Interval.pp) interval_gen

let member_gen iv =
  let open QCheck.Gen in
  match (iv.Interval.lo, iv.Interval.hi) with
  | Some a, Some b -> map (fun x -> a + (x mod (b - a + 1))) (int_bound 10000)
  | Some a, None -> map (fun x -> a + x) (int_bound 100)
  | None, Some b -> map (fun x -> b - x) (int_bound 100)
  | None, None -> int_range (-1000) 1000

let prop_add_sound =
  QCheck.Test.make ~name:"interval add is sound" ~count:500
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) ->
      let x = QCheck.Gen.generate1 (member_gen a) in
      let y = QCheck.Gen.generate1 (member_gen b) in
      Interval.contains (Interval.add a b) (x + y))

let prop_scale_sound =
  QCheck.Test.make ~name:"interval scale is sound" ~count:500
    QCheck.(pair (int_range (-7) 7) interval_arb)
    (fun (c, a) ->
      let x = QCheck.Gen.generate1 (member_gen a) in
      Interval.contains (Interval.scale c a) (c * x))

let prop_neg_sound =
  QCheck.Test.make ~name:"interval neg is sound" ~count:500 interval_arb
    (fun a ->
      let x = QCheck.Gen.generate1 (member_gen a) in
      Interval.contains (Interval.neg a) (-x))

let test_interval_basics () =
  check_bool "point contains" true (Interval.contains (Interval.point 3) 3);
  check_bool "point excludes" false (Interval.contains (Interval.point 3) 4);
  check_int "cardinal" 5
    (Option.get (Interval.cardinal (Interval.of_bounds ~lo:2 ~hi:6)));
  check_bool "top unbounded" false (Interval.is_bounded Interval.top);
  check_bool "excludes zero pos" true
    (Interval.excludes_zero (Interval.of_bounds ~lo:1 ~hi:9));
  check_bool "excludes zero neg" true
    (Interval.excludes_zero (Interval.of_bounds ~lo:(-9) ~hi:(-1)));
  check_bool "spans zero" false
    (Interval.excludes_zero (Interval.of_bounds ~lo:(-1) ~hi:1))

(* ------------------------------------------------------------------ *)
(* Opcodes *)

let test_latencies () =
  let lat = Opcode.latency ~mem_latency:6 in
  check_int "mul" 3 (lat (Opcode.Ibin Opcode.Mul));
  check_int "div" 7 (lat (Opcode.Ibin Opcode.Div));
  check_int "fdiv" 7 (lat (Opcode.Fbin Opcode.Fdiv));
  check_int "fcmp" 1 (lat (Opcode.Fcmp Opcode.Flt));
  check_int "alu" 1 (lat (Opcode.Ibin Opcode.Add));
  check_int "fpu" 3 (lat (Opcode.Fbin Opcode.Fadd));
  check_int "load" 6 (lat Opcode.Load);
  check_int "store" 6 (lat Opcode.Store);
  check_int "branch" 2 Opcode.branch_latency

let test_opcode_classes () =
  check_bool "store has side effect" true (Opcode.has_side_effect Opcode.Store);
  check_bool "load does not" false (Opcode.has_side_effect Opcode.Load);
  check_bool "store no dst" false (Opcode.has_dst Opcode.Store);
  check_int "select arity" 3 (Opcode.arity Opcode.Select);
  check_int "const arity" 0 (Opcode.arity (Opcode.Const Value.zero))

(* ------------------------------------------------------------------ *)
(* Instructions *)

let test_insn_uses_defs () =
  let i =
    Insn.make ~id:0
      ~guard:{ Insn.greg = 9; positive = false }
      Opcode.Store ~dst:None ~srcs:[ 1; 2 ]
  in
  Alcotest.(check (list int)) "uses include guard" [ 9; 1; 2 ] (Insn.uses i);
  Alcotest.(check (list int)) "no defs" [] (Insn.defs i);
  check_int "addr" 1 (Insn.addr i);
  check_int "store value" 2 (Insn.store_value i)

(* ------------------------------------------------------------------ *)
(* Trees: validation catches broken invariants *)

let mk_tree ?(params = [ 0 ]) ?(arcs = []) insns exits =
  Tree.make ~id:0 ~name:"t" ~params
    ~insns:(Array.of_list insns)
    ~exits:(Array.of_list exits)
    ~arcs ~ranges:Reg.Map.empty ()

let ret = { Tree.xguard = None; kind = Tree.Return { value = None } }

let expect_invalid what tree =
  match Tree.validate tree with
  | () -> Alcotest.failf "expected validation failure: %s" what
  | exception Tree.Invalid _ -> ()

let test_validate_ok () =
  let i0 = Insn.make ~id:0 (Opcode.Const (Value.Int 1)) ~dst:(Some 1) ~srcs:[] in
  let i1 = Insn.make ~id:1 (Opcode.Ibin Opcode.Add) ~dst:(Some 2) ~srcs:[ 0; 1 ] in
  Tree.validate (mk_tree [ i0; i1 ] [ ret ])

let test_validate_failures () =
  let c id dst = Insn.make ~id (Opcode.Const (Value.Int 0)) ~dst:(Some dst) ~srcs:[] in
  expect_invalid "duplicate ids" (mk_tree [ c 0 1; c 0 2 ] [ ret ]);
  expect_invalid "double assignment" (mk_tree [ c 0 1; c 1 1 ] [ ret ]);
  expect_invalid "redefined parameter" (mk_tree [ c 0 0 ] [ ret ]);
  expect_invalid "use before def"
    (mk_tree
       [ Insn.make ~id:0 Opcode.Mov ~dst:(Some 2) ~srcs:[ 1 ]; c 1 1 ]
       [ ret ]);
  expect_invalid "guarded pure op"
    (mk_tree
       [
         c 0 1;
         Insn.make ~id:1
           ~guard:{ Insn.greg = 1; positive = true }
           Opcode.Mov ~dst:(Some 2) ~srcs:[ 1 ];
       ]
       [ ret ]);
  expect_invalid "no exits" (mk_tree [ c 0 1 ] []);
  expect_invalid "guarded last exit"
    (mk_tree [ c 0 1 ]
       [ { Tree.xguard = Some { Insn.greg = 1; positive = true };
           kind = Tree.Return { value = None } } ]);
  expect_invalid "exit uses undefined"
    (mk_tree [ c 0 1 ] [ { Tree.xguard = None; kind = Tree.Return { value = Some 99 } } ]);
  (* arcs must reference memory ops in program order *)
  let ld id dst addr = Insn.make ~id Opcode.Load ~dst:(Some dst) ~srcs:[ addr ] in
  let st id addr v = Insn.make ~id Opcode.Store ~dst:None ~srcs:[ addr; v ] in
  let insns = [ c 0 1; ld 1 2 1; st 2 1 2 ] in
  let arc src dst kind =
    { Memdep.src; dst; kind; status = Memdep.Ambiguous None; why = None }
  in
  Tree.validate (mk_tree ~arcs:[ arc 1 2 Memdep.War ] insns [ ret ]);
  expect_invalid "arc not in program order"
    (mk_tree ~arcs:[ arc 2 1 Memdep.Raw ] insns [ ret ]);
  expect_invalid "arc endpoint not a memory op"
    (mk_tree ~arcs:[ arc 0 2 Memdep.Raw ] insns [ ret ])

let test_tree_size_and_regs () =
  let c id dst = Insn.make ~id (Opcode.Const (Value.Int 0)) ~dst:(Some dst) ~srcs:[] in
  let t = mk_tree [ c 0 1; c 1 2 ] [ ret ] in
  check_int "size counts exits" 3 (Tree.size t);
  check_bool "all_regs" true
    (Reg.Set.equal (Tree.all_regs t) (Reg.Set.of_list [ 0; 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Memory dependence arcs *)

let test_memdep () =
  check_bool "kind raw" true
    (Memdep.kind_of_ops ~src_is_store:true ~dst_is_store:false = Memdep.Raw);
  check_bool "kind war" true
    (Memdep.kind_of_ops ~src_is_store:false ~dst_is_store:true = Memdep.War);
  check_bool "kind waw" true
    (Memdep.kind_of_ops ~src_is_store:true ~dst_is_store:true = Memdep.Waw);
  (match Memdep.kind_of_ops ~src_is_store:false ~dst_is_store:false with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "load-load pair accepted");
  let arc kind status = { Memdep.src = 0; dst = 1; kind; status; why = None } in
  check_int "raw weight is the memory latency" 6
    (Memdep.weight ~mem_latency:6 (arc Memdep.Raw Memdep.Must));
  check_int "war weight is issue-order only" 1
    (Memdep.weight ~mem_latency:6 (arc Memdep.War Memdep.Must));
  check_bool "removed is inactive" false
    (Memdep.is_active (arc Memdep.Raw (Memdep.Removed Memdep.By_spd)));
  check_bool "must is not ambiguous" false
    (Memdep.is_ambiguous (arc Memdep.Raw Memdep.Must))

let tests =
  [
    case "value truth" test_value_truth;
    case "value conversions" test_value_conversions;
    case "interval basics" test_interval_basics;
    qcase prop_add_sound;
    qcase prop_scale_sound;
    qcase prop_neg_sound;
    case "latencies (Table 6-1)" test_latencies;
    case "opcode classes" test_opcode_classes;
    case "insn uses/defs" test_insn_uses_defs;
    case "tree validate accepts" test_validate_ok;
    case "tree validate rejects" test_validate_failures;
    case "tree size and regs" test_tree_size_and_regs;
    case "memdep arcs" test_memdep;
  ]
