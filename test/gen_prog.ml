(** QCheck generator of random mini-C programs.

    The generated programs are terminating by construction (literal loop
    bounds, no recursion), in-bounds by construction (array subscripts are
    wrapped modulo the array size), and always include a helper function
    taking two array parameters that is called once with distinct arrays
    and once with the same array — so the ambiguous references both do and
    do not alias dynamically.  They are used for differential testing of
    the disambiguation pipelines: every pipeline must preserve observable
    behaviour on every generated program.

    Programs are generated as a structured {!spec} — a statement tree plus
    the helper's expression — and only then rendered to source.  The
    structure is what makes counterexamples {e shrinkable}: [candidates]
    enumerates all one-step reductions of a spec (drop a statement, hoist
    a branch or loop body, shrink a loop bound, simplify the helper), and
    a failing oracle can walk them greedily to a minimal reproducer. *)

open QCheck.Gen

let ivars = [ "t0"; "t1"; "t2" ]
let arrays = [ "ga"; "gb" ]
let array_size = 24

(* ------------------------------------------------------------------ *)
(* The shrinkable program shape.  Expressions stay strings — they are
   cheap to generate and the interesting shrinking dimension is the
   statement structure, not expression depth. *)

type stmt =
  | Assign of string * string  (** variable, expression *)
  | Store of string * string * string  (** array, index expr, value expr *)
  | If of string * stmt list * stmt list
  | For of string * int * stmt list  (** loop var, literal bound, body *)

type spec = {
  helper_expr : string;  (** expression mixed into the helper's store *)
  body : stmt list;  (** statements of [main], before the helper calls *)
  n_helper : int;  (** element count passed to the helper (>= 1) *)
}

(* ------------------------------------------------------------------ *)
(* Generation *)

(* Integer expressions over in-scope variables. [iv] is the loop variable
   in scope, if any. *)
let rec gen_iexpr ~iv depth =
  let leaf =
    oneof
      ([
         map string_of_int (int_range 0 9);
         oneofl ivars;
       ]
      @ match iv with Some v -> [ return v ] | None -> [])
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 3,
          let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
          let* a = gen_iexpr ~iv (depth - 1) in
          let* b = gen_iexpr ~iv (depth - 1) in
          return (Printf.sprintf "(%s %s %s)" a op b) );
        ( 2,
          let* arr = oneofl arrays in
          let* idx = gen_iexpr ~iv (depth - 1) in
          return (Printf.sprintf "%s[((%s) %% %d + %d) %% %d]" arr idx array_size array_size array_size) );
      ]

let gen_cond ~iv =
  let* op = oneofl [ "<"; "<="; "=="; "!="; ">" ] in
  let* a = gen_iexpr ~iv 1 in
  let* b = gen_iexpr ~iv 1 in
  return (Printf.sprintf "%s %s %s" a op b)

let rec gen_stmt ~iv ~depth =
  let assign =
    let* v = oneofl ivars in
    let* e = gen_iexpr ~iv 2 in
    return (Assign (v, e))
  in
  let arr_store =
    let* arr = oneofl arrays in
    let* idx = gen_iexpr ~iv 1 in
    let* e = gen_iexpr ~iv 2 in
    return (Store (arr, idx, e))
  in
  if depth = 0 then oneof [ assign; arr_store ]
  else
    frequency
      [
        (3, assign);
        (3, arr_store);
        ( 2,
          let* c = gen_cond ~iv in
          let* then_ = gen_block ~iv ~depth:(depth - 1) in
          let* else_ = gen_block ~iv ~depth:(depth - 1) in
          return (If (c, then_, else_)) );
        ( 2,
          (* a literal-bound loop over the variable not already in use *)
          let var = match iv with None -> "i" | Some _ -> "j" in
          let* bound = int_range 1 8 in
          let* body = gen_block ~iv:(Some var) ~depth:(depth - 1) in
          return (For (var, bound, body)) );
      ]

and gen_block ~iv ~depth =
  let* n = int_range 1 3 in
  list_repeat n (gen_stmt ~iv ~depth)

let gen_spec : spec t =
  let* helper_expr = gen_iexpr ~iv:(Some "k") 2 in
  let* body = gen_block ~iv:None ~depth:2 in
  let* n_helper = int_range 1 (array_size - 1) in
  return { helper_expr; body; n_helper }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let indent n = String.make (2 * n) ' '

let rec render_stmt level = function
  | Assign (v, e) -> Printf.sprintf "%s%s = %s;\n" (indent level) v e
  | Store (arr, idx, e) ->
      Printf.sprintf "%s%s[((%s) %% %d + %d) %% %d] = %s;\n" (indent level)
        arr idx array_size array_size array_size e
  | If (c, then_, else_) ->
      Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" (indent level) c
        (render_block (level + 1) then_)
        (indent level)
        (render_block (level + 1) else_)
        (indent level)
  | For (var, bound, body) ->
      Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n%s%s}\n"
        (indent level) var var bound var var
        (render_block (level + 1) body)
        (indent level)

and render_block level stmts = String.concat "" (List.map (render_stmt level) stmts)

let render_helper helper_expr =
  Printf.sprintf
    {|
int helper(int p[], int q[], int n) {
  int k; int s; int t0; int t1; int t2;
  s = 0; t0 = 1; t1 = 2; t2 = 3;
  for (k = 0; k < n; k = k + 1) {
    p[k] = s + %s;
    s = s + q[k] - p[k] / 3;
  }
  return s;
}
|}
    helper_expr

let render { helper_expr; body; n_helper } =
  Printf.sprintf
    {|
int ga[%d];
int gb[%d];
%s
int main() {
  int i; int j; int t0; int t1; int t2; int chk;
  i = 0; j = 0; t0 = 5; t1 = 11; t2 = 17; chk = 0;
  for (i = 0; i < %d; i = i + 1) {
    ga[i] = i * 7 %% 13;
    gb[i] = i * 3 + 1;
  }
%s  t0 = helper(ga, gb, %d);
  t1 = helper(ga, ga, %d);
  chk = t0 * 31 + t1;
  for (i = 0; i < %d; i = i + 1) {
    chk = (chk + ga[i] * (i + 1) + gb[i]) %% 1000003;
  }
  return chk;
}
|}
    array_size array_size
    (render_helper helper_expr)
    array_size
    (render_block 1 body)
    n_helper n_helper array_size

(* ------------------------------------------------------------------ *)
(* Shrinking: all one-step reductions of a spec, most aggressive first.
   Hoisting an [If] branch or a [For] body into the enclosing block is
   safe because every loop variable ([i], [j], [k]) is declared and
   initialized in the enclosing function regardless of the loop. *)

let rec block_candidates stmts : stmt list list =
  List.concat
    (List.mapi
       (fun i s ->
         let replace rs =
           List.concat
             (List.mapi (fun j s' -> if j = i then rs else [ s' ]) stmts)
         in
         replace []
         ::
         (match s with
         | Assign _ | Store _ -> []
         | If (c, then_, else_) ->
             [ replace then_; replace else_ ]
             @ List.map
                 (fun t' -> replace [ If (c, t', else_) ])
                 (block_candidates then_)
             @ List.map
                 (fun e' -> replace [ If (c, then_, e') ])
                 (block_candidates else_)
         | For (var, bound, body) ->
             replace body
             :: (if bound > 1 then [ replace [ For (var, 1, body) ] ] else [])
             @ List.map
                 (fun b' -> replace [ For (var, bound, b') ])
                 (block_candidates body)))
       stmts)

let candidates spec : spec list =
  List.map (fun body -> { spec with body }) (block_candidates spec.body)
  @ (if spec.n_helper > 1 then [ { spec with n_helper = 1 } ] else [])
  @
  if spec.helper_expr <> "0" then [ { spec with helper_expr = "0" } ]
  else []

(** Greedy shrink: repeatedly take the first one-step reduction that
    still fails the oracle, until none does. *)
let shrink ~(still_fails : spec -> bool) spec =
  let rec go spec =
    match List.find_opt still_fails (candidates spec) with
    | Some smaller -> go smaller
    | None -> spec
  in
  go spec

(* ------------------------------------------------------------------ *)

let gen_source : string t = map render gen_spec

let arbitrary_source =
  QCheck.make ~print:(fun s -> s) gen_source
