(** Telemetry tests: the in-repo JSON codec, span recording and the
    Chrome trace-event document, histogram merge algebra, and the
    determinism of metric snapshots.

    The tracer and the metrics registry are process-global, so these
    tests use their own metric names ([test.telemetry.*]) and bracket
    every tracing test with [Trace.start]/[Trace.stop]. *)

open Util
module Json = Spd_telemetry.Json
module Trace = Spd_telemetry.Trace
module Metrics = Spd_telemetry.Metrics

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.String "a \"quoted\" line\nwith\tescapes \x01");
        ("xs", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok doc' -> check_bool "roundtrip" true (doc = doc')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated"; "1e" ]

let test_json_numbers () =
  check_bool "int stays Int" true (Json.of_string "17" = Ok (Json.Int 17));
  (match Json.of_string "2.5e1" with
  | Ok (Json.Float f) -> check_close "float literal" 25.0 f
  | other ->
      Alcotest.failf "2.5e1 parsed to %s"
        (match other with Ok j -> Json.to_string j | Error e -> e));
  (* non-finite floats must render as null, keeping documents valid *)
  check_bool "nan renders null" true
    (Json.to_string (Json.Float Float.nan) = "null")

(* ------------------------------------------------------------------ *)
(* Tracing *)

let span_named name (e : Trace.event) = e.name = name

let test_span_nesting () =
  Trace.start ();
  Fun.protect ~finally:Trace.stop @@ fun () ->
  let r =
    Trace.with_span ~name:"outer" (fun () ->
        Trace.with_span ~name:"inner"
          ~args:[ ("k", Json.Int 3) ]
          (fun () -> 7))
  in
  check_int "span returns f's value" 7 r;
  let events = Trace.events () in
  let outer =
    match List.find_opt (span_named "outer") events with
    | Some e -> e
    | None -> Alcotest.fail "outer span not recorded"
  and inner =
    match List.find_opt (span_named "inner") events with
    | Some e -> e
    | None -> Alcotest.fail "inner span not recorded"
  in
  (* the inner complete event nests inside the outer one *)
  check_bool "inner begins after outer" true (inner.ts >= outer.ts);
  check_bool "inner ends before outer" true
    (inner.ts +. inner.dur <= outer.ts +. outer.dur +. 1e-6);
  check_bool "inner args kept" true (inner.args = [ ("k", Json.Int 3) ]);
  (* a span records even when its body raises *)
  (try
     Trace.with_span ~name:"raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  check_bool "raising span recorded" true
    (List.exists (span_named "raises") (Trace.events ()))

let test_disabled_tracer_records_nothing () =
  (* not started: with_span must run f and record nothing *)
  check_bool "tracer disabled" false (Trace.enabled ());
  let n0 = List.length (Trace.events ()) in
  check_int "body still runs" 5 (Trace.with_span ~name:"off" (fun () -> 5));
  check_int "nothing recorded" n0 (List.length (Trace.events ()))

(* The Chrome trace-event document must parse with the in-repo reader
   and carry name/ph/ts/dur on every event. *)
let test_trace_json_well_formed () =
  Trace.start ();
  Fun.protect ~finally:Trace.stop @@ fun () ->
  Trace.with_span ~name:"cell:demo" (fun () ->
      Trace.with_span ~name:"stage:simulate" ignore);
  Trace.instant "marker";
  let doc =
    match Json.of_string (Json.to_string (Trace.to_json ())) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents list"
  in
  check_int "three events" 3 (List.length events);
  List.iter
    (fun ev ->
      let field name = Option.is_some (Json.member name ev) in
      check_bool "has name" true (field "name");
      check_bool "has ts" true (field "ts");
      check_bool "has dur" true (field "dur");
      check_bool "ph is X" true
        (Option.bind (Json.member "ph" ev) Json.to_string_opt = Some "X"))
    events

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_across_domains () =
  let c = Metrics.counter "test.telemetry.domains" in
  let per_domain = 10_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join ds;
  match List.assoc_opt "test.telemetry.domains" (Metrics.snapshot ()) with
  | Some (Metrics.Counter n) -> check_int "no lost increments" (4 * per_domain) n
  | _ -> Alcotest.fail "counter missing from snapshot"

let test_snapshot_sorted_and_registration_idempotent () =
  ignore (Metrics.counter "test.telemetry.zz");
  ignore (Metrics.counter "test.telemetry.aa");
  let names = List.map fst (Metrics.snapshot ()) in
  check_bool "snapshot sorted by name" true
    (names = List.sort compare names);
  Metrics.incr ~by:3 (Metrics.counter "test.telemetry.aa");
  Metrics.incr ~by:4 (Metrics.counter "test.telemetry.aa");
  check_bool "same handle at every call site" true
    (List.assoc_opt "test.telemetry.aa" (Metrics.snapshot ())
    = Some (Metrics.Counter 7));
  check_bool "kind clash rejected" true
    (match Metrics.histogram ~buckets:[| 1.0 |] "test.telemetry.aa" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* [merge_hist] is the fold {!Metrics.snapshot} runs over per-domain
   shards; with integer-valued observations float addition is exact, so
   associativity holds structurally. *)
let test_histogram_merge_associative () =
  let h ?(buckets = [| 1.0; 2.0; 4.0 |]) counts sum =
    { Metrics.buckets; counts; count = Array.fold_left ( + ) 0 counts; sum }
  in
  let a = h [| 1; 0; 2; 1 |] 14.0
  and b = h [| 0; 3; 0; 0 |] 6.0
  and c = h [| 2; 2; 2; 2 |] 40.0 in
  let l = Metrics.merge_hist (Metrics.merge_hist a b) c
  and r = Metrics.merge_hist a (Metrics.merge_hist b c) in
  check_bool "associative" true (l = r);
  check_int "counts add" (a.count + b.count + c.count) l.count;
  check_close "sums add" (a.Metrics.sum +. b.Metrics.sum +. c.Metrics.sum)
    l.Metrics.sum;
  check_bool "bucket mismatch rejected" true
    (match Metrics.merge_hist a (h ~buckets:[| 1.0; 2.0 |] [| 0; 0; 0 |] 0.0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_observe () =
  let h =
    Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test.telemetry.hist.obs"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
  match List.assoc_opt "test.telemetry.hist.obs" (Metrics.snapshot ()) with
  | Some (Metrics.Hist s) ->
      check_bool "bucket counts" true (s.counts = [| 1; 1; 1; 1 |]);
      check_int "total" 4 s.count;
      check_close "sum" 105.0 s.Metrics.sum
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_snapshot_json_schema () =
  let doc = Metrics.snapshot_json (Metrics.snapshot ()) in
  check_bool "spd-metrics/1 schema" true
    (Option.bind (Json.member "schema" doc) Json.to_string_opt
    = Some "spd-metrics/1");
  (* the document must parse with the in-repo reader *)
  check_bool "snapshot JSON parses" true
    (match Json.of_string (Json.to_string doc) with
    | Ok _ -> true
    | Error _ -> false)

(* The disabled fast path: one atomic load per [with_span].  The 5%
   whole-run overhead budget translates to "far below a microsecond per
   call"; assert that very loosely so the check is robust on loaded
   machines. *)
let test_disabled_span_overhead () =
  assert (not (Trace.enabled ()));
  let acc = ref 0 in
  let f () = incr acc in
  let n = 200_000 in
  let time g =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      g ()
    done;
    Unix.gettimeofday () -. t0
  in
  let base = time f in
  let spanned = time (fun () -> Trace.with_span ~name:"off" f) in
  check_int "work done" (2 * n) !acc;
  let per_call = (spanned -. base) /. float_of_int n in
  check_bool
    (Printf.sprintf "disabled span cheap (%.0f ns/call)" (per_call *. 1e9))
    true
    (per_call < 2e-6)

(* ------------------------------------------------------------------ *)
(* Quantiles, Prometheus exposition, the monotonic clock, logging *)

module Clock = Spd_telemetry.Clock
module Log = Spd_telemetry.Log
module Context = Spd_telemetry.Context

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_quantile () =
  let h counts sum =
    {
      Metrics.buckets = [| 1.0; 2.0; 4.0 |];
      counts;
      count = Array.fold_left ( + ) 0 counts;
      sum;
    }
  in
  check_bool "empty histogram has no quantiles" true
    (Metrics.quantile (h [| 0; 0; 0; 0 |] 0.0) 0.5 = None);
  (* 10 observations, all in (1,2]: interpolation inside that bucket *)
  let one = h [| 0; 10; 0; 0 |] 15.0 in
  (match Metrics.quantile one 0.5 with
  | Some v -> check_close "p50 interpolates" 1.5 v
  | None -> Alcotest.fail "p50 missing");
  (match Metrics.quantile one 1.0 with
  | Some v -> check_close "p100 is the bucket's top edge" 2.0 v
  | None -> Alcotest.fail "p100 missing");
  (* q is clamped, not rejected *)
  check_bool "q clamps" true
    (Metrics.quantile one 2.0 = Metrics.quantile one 1.0);
  (* exact bucket edge: 4 obs <= 1.0, 6 above; p40 = right edge of b0 *)
  let edge = h [| 4; 6; 0; 0 |] 10.0 in
  (match Metrics.quantile edge 0.4 with
  | Some v -> check_close "exact edge" 1.0 v
  | None -> Alcotest.fail "edge missing");
  (* everything in the overflow bucket: clamp to the last finite bound *)
  match Metrics.quantile (h [| 0; 0; 0; 5 |] 500.0) 0.99 with
  | Some v -> check_close "overflow clamps to last bound" 4.0 v
  | None -> Alcotest.fail "overflow missing"

(* [snapshot] folds [merge_hist] over the per-domain shards; with
   concurrent writers the merged histogram must neither lose
   observations nor produce an out-of-range quantile. *)
let test_quantile_under_concurrent_observe () =
  let h =
    Metrics.histogram ~buckets:Metrics.time_buckets
      "test.telemetry.hist.concurrent"
  in
  let per_domain = 10_000 in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* deterministic spread over (0, 0.1] *)
              let v =
                1e-4 *. float_of_int (1 + (((d * per_domain) + i) mod 1000))
              in
              Metrics.observe h v
            done))
  in
  List.iter Domain.join ds;
  match
    List.assoc_opt "test.telemetry.hist.concurrent" (Metrics.snapshot ())
  with
  | Some (Metrics.Hist s) ->
      check_int "no lost observations" (4 * per_domain) s.count;
      (match Metrics.quantile s 0.5 with
      | Some v -> check_bool "median in range" true (v > 0.0 && v <= 0.1)
      | None -> Alcotest.fail "median missing");
      (match Metrics.quantile s 0.95 with
      | Some v -> check_bool "p95 >= p50" true
          (Some v >= Metrics.quantile s 0.5)
      | None -> Alcotest.fail "p95 missing")
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_hist_json_roundtrip () =
  let h =
    { Metrics.buckets = [| 0.5; 1.0 |]; counts = [| 2; 3; 1 |];
      count = 6; sum = 4.5 }
  in
  (match Metrics.hist_of_json (Metrics.hist_json h) with
  | Some h' -> check_bool "roundtrip" true (h = h')
  | None -> Alcotest.fail "hist_of_json rejected hist_json output");
  check_bool "rejects wrong shape" true
    (Metrics.hist_of_json (Json.Obj []) = None);
  check_bool "rejects count/bucket length mismatch" true
    (Metrics.hist_of_json
       (Json.Obj
          [
            ("buckets", Json.List [ Json.Float 1.0 ]);
            ("counts", Json.List [ Json.Int 1 ]);
          ])
    = None)

let test_prometheus_render () =
  let snap =
    [
      ("test.prom.counter", Metrics.Counter 7);
      ( "test.prom.lat",
        Metrics.Hist
          { Metrics.buckets = [| 0.5; 1.0 |]; counts = [| 2; 3; 1 |];
            count = 6; sum = 4.5 } );
    ]
  in
  let text = Metrics.prometheus snap in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "contains %S" needle) true
        (contains ~needle text))
    [
      "# TYPE test_prom_counter counter\ntest_prom_counter 7\n";
      "# TYPE test_prom_lat histogram\n";
      (* cumulative buckets, mandatory +Inf *)
      "test_prom_lat_bucket{le=\"0.5\"} 2\n";
      "test_prom_lat_bucket{le=\"1\"} 5\n";
      "test_prom_lat_bucket{le=\"+Inf\"} 6\n";
      "test_prom_lat_sum 4.5\n";
      "test_prom_lat_count 6\n";
    ];
  (* dots mangle to underscores; nothing outside [a-zA-Z0-9_:] survives *)
  check_bool "no raw dots in names" true
    (not (contains ~needle:"test.prom" text))

let test_clock_monotonic () =
  let a = Clock.now () in
  let b = Clock.now () in
  check_bool "non-decreasing" true (b >= a);
  (* the wall clock is epoch-based, the monotonic one is not
     necessarily; only the former should look like a modern date *)
  check_bool "wall clock plausible" true (Clock.wall () > 1e9)

let test_context_scoping () =
  check_bool "no ambient rid" true (Context.get () = None);
  let a, b, c =
    Context.with_id "outer" (fun () ->
        let a = Context.get () in
        let b = Context.with_id "inner" (fun () -> Context.get ()) in
        (a, b, Context.get ()))
  in
  check_bool "set inside" true (a = Some "outer");
  check_bool "nested override" true (b = Some "inner");
  check_bool "restored after nesting" true (c = Some "outer");
  check_bool "cleared after" true (Context.get () = None);
  (* restored even when the body raises *)
  (try Context.with_id "boom" (fun () -> failwith "x") with Failure _ -> ());
  check_bool "cleared after raise" true (Context.get () = None)

let test_log_sink () =
  let path = Filename.temp_file "spd_log" ".jsonl" in
  let prev_level = Log.level () in
  Fun.protect ~finally:(fun () ->
      Log.close ();
      Log.set_level prev_level;
      Sys.remove path)
  @@ fun () ->
  Log.set_level Log.Info;
  (match Log.to_file path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "to_file: %s" e);
  let n0 = Log.records () in
  Log.debug "test.below.threshold" [];
  Context.with_id "r-test-1" (fun () ->
      Log.info "test.event" [ ("k", Json.Int 3) ]);
  Log.flush ();
  check_int "only the in-level record counted" (n0 + 1) (Log.records ());
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let line =
    match List.rev lines with
    | l :: _ -> l
    | [] -> Alcotest.fail "log file empty"
  in
  let doc =
    match Json.of_string line with
    | Ok d -> d
    | Error e -> Alcotest.failf "log line is not JSON: %s" e
  in
  let str name = Option.bind (Json.member name doc) Json.to_string_opt in
  check_bool "schema" true (str "schema" = Some Log.schema);
  check_bool "level" true (str "level" = Some "info");
  check_bool "event" true (str "event" = Some "test.event");
  check_bool "ambient rid attached" true (str "rid" = Some "r-test-1");
  check_bool "domain tagged" true
    (Option.is_some (Json.member "domain" doc));
  check_bool "ts present" true
    (match Option.bind (Json.member "ts" doc) Json.to_number with
    | Some ts -> ts > 1e9
    | None -> false);
  check_bool "caller field kept" true
    (Json.member "k" doc = Some (Json.Int 3));
  check_bool "debug below threshold not written" true
    (not (List.exists (contains ~needle:"test.below.threshold") lines))

let test_log_level_parse () =
  check_bool "warn" true (Log.level_of_string "warn" = Ok Log.Warn);
  check_bool "WARNING spelling" true
    (Log.level_of_string "WARNING" = Ok Log.Warn);
  check_bool "debug" true (Log.level_of_string "debug" = Ok Log.Debug);
  check_bool "unknown rejected" true
    (match Log.level_of_string "loud" with Error _ -> true | Ok _ -> false)

let tests =
  [
    case "json roundtrip" test_json_roundtrip;
    case "json rejects garbage" test_json_rejects_garbage;
    case "json numbers" test_json_numbers;
    case "span nesting" test_span_nesting;
    case "disabled tracer records nothing" test_disabled_tracer_records_nothing;
    case "trace document well-formed" test_trace_json_well_formed;
    case "counter across domains" test_counter_across_domains;
    case "snapshot sorted; registration idempotent"
      test_snapshot_sorted_and_registration_idempotent;
    case "histogram merge associative" test_histogram_merge_associative;
    case "histogram observe" test_histogram_observe;
    case "snapshot json schema" test_snapshot_json_schema;
    case "disabled span overhead" test_disabled_span_overhead;
    case "quantile edges" test_quantile;
    case "quantile under concurrent observe"
      test_quantile_under_concurrent_observe;
    case "hist json roundtrip" test_hist_json_roundtrip;
    case "prometheus exposition" test_prometheus_render;
    case "monotonic clock" test_clock_monotonic;
    case "context scoping" test_context_scoping;
    case "log sink" test_log_sink;
    case "log level parse" test_log_level_parse;
  ]
