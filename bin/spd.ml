(** The [spd] command-line tool.

    {v
    spd compile FILE [--pipeline P] [--mem-latency N]   dump the decision-tree IR
    spd run     FILE [--pipeline P] [--width W] ...     compile, simulate, time
    spd bench   NAME [--mem-latency N]                  one built-in benchmark, all pipelines
    spd bench   diff OLD NEW [--threshold PCT]          compare two bench reports
    spd bench   snapshot [--from FILE]                  timestamped copy into bench/history/
    spd explain WORKLOAD [--fn F] [--tree T]            occupancy grids + critical paths
    spd why     WORKLOAD [--fn F] [--tree T]            the heuristic's decision ledger
                [--format pretty|json|csv]
    spd validate WORKLOAD [--fn F] [--tree T]           translation-validate the SpD transform
                [--format pretty|json|csv]
    spd cache   stats [--dir _spd_cache] [--json]       on-disk result cache statistics
    spd report  [ARTEFACT] [--jobs N] [--no-cache]      regenerate the paper's tables/figures
                [--trace FILE] [--format pretty|json|csv]
    spd serve   [--socket PATH | --tcp HOST:PORT]       experiment daemon (framed JSON-RPC)
                [--log FILE] [--trace FILE] [--slow-ms MS]
    spd call    METHOD [PARAMS] [--socket PATH]         one request against a running daemon
                [--format json|prometheus]
    spd top     [--socket PATH | --tcp HOST:PORT]       live daemon dashboard (polls health+metrics)
    spd list                                            list built-in benchmarks
    v}

    [FILE] is a mini-C source file; [P] is one of naive, static, spec,
    perfect (default spec). *)

open Cmdliner
module Pipeline = Spd_harness.Pipeline

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let pipeline_conv =
  let parse = function
    | "naive" -> Ok Pipeline.Naive
    | "static" -> Ok Pipeline.Static
    | "spec" -> Ok Pipeline.Spec
    | "perfect" -> Ok Pipeline.Perfect
    | s -> Error (`Msg (Printf.sprintf "unknown pipeline %S" s))
  in
  Arg.conv (parse, Pipeline.pp)

let pipeline_arg =
  Arg.(
    value
    & opt pipeline_conv Pipeline.Spec
    & info [ "p"; "pipeline" ] ~docv:"PIPELINE"
        ~doc:"Disambiguation pipeline: naive, static, spec or perfect.")

let mem_latency_arg =
  Arg.(
    value
    & opt int 2
    & info [ "m"; "mem-latency" ] ~docv:"CYCLES"
        ~doc:"Memory latency in cycles (the paper uses 2 and 6).")

let width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "w"; "width" ] ~docv:"FUS"
        ~doc:
          "Number of universal functional units (default: infinite \
           machine).")

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Mini-C source file.")

let handle_errors f =
  try f () with
  | Spd_lang.Lexer.Error (msg, line) ->
      Fmt.epr "lexical error, line %d: %s@." line msg;
      exit 1
  | Spd_lang.Parser.Error (msg, line) ->
      Fmt.epr "syntax error, line %d: %s@." line msg;
      exit 1
  | Spd_lang.Typecheck.Error msg ->
      Fmt.epr "type error: %s@." msg;
      exit 1
  | Spd_lang.Lower.Error msg ->
      Fmt.epr "lowering error: %s@." msg;
      exit 1
  | Spd_sim.Interp.Sim_error (kind, ctx) ->
      Fmt.epr "runtime error: %a@." Spd_sim.Interp.pp_error (kind, ctx);
      exit 1

let prepare_src ~mem_latency pipeline src =
  Pipeline.prepare
    ~config:(Pipeline.Config.v ~mem_latency ())
    pipeline
    (Spd_lang.Lower.compile src)

(* shared flags *)

let format_conv =
  let module Artefact = Spd_harness.Artefact in
  let parse s =
    match Artefact.format_of_string s with
    | Some f -> Ok f
    | None ->
        Error (`Msg (Printf.sprintf "expected pretty, json or csv, got %S" s))
  in
  Arg.conv
    ( parse,
      fun ppf f ->
        Fmt.string ppf
          (match f with
          | Artefact.Pretty -> "pretty"
          | Artefact.Json -> "json"
          | Artefact.Csv -> "csv") )

let format_arg ~doc =
  Arg.(
    value
    & opt format_conv Spd_harness.Artefact.Pretty
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let faults_conv =
  let parse s =
    match Spd_harness.Faults.parse s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Spd_harness.Faults.pp)

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "inject-fault" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection: comma-separated \
           $(b,cache-corrupt:N) (corrupt the Nth cache read), \
           $(b,cell-raise:KEY[@TIMES]) (raise in cells whose key \
           starts with KEY, e.g. adi/2/SPEC), $(b,fuel:N) (tight \
           simulator budget), $(b,cycles-inflate:PCT) (inflate \
           reported cycle counts — for exercising the regression \
           tracker), $(b,worker-raise:N) (crash the daemon worker on \
           the first N connections — for exercising supervision) and \
           the chaos-client budgets $(b,conn-torn-frame:N), \
           $(b,conn-garbage-header:N), $(b,conn-stall:N).")

(* budget/pool flags shared by [spd report] and [spd serve]; parsing
   lives in Cliflags so bench/main rejects the same spellings with the
   same wording *)

let pos_int_conv flag =
  Arg.conv
    ( (fun s ->
        Result.map_error
          (fun e -> `Msg e)
          (Spd_harness.Cliflags.pos_int ~flag s)),
      Fmt.int )

let pos_float_conv flag =
  Arg.conv
    ( (fun s ->
        Result.map_error
          (fun e -> `Msg e)
          (Spd_harness.Cliflags.pos_float ~flag s)),
      Fmt.float )

let jobs_arg =
  Arg.(
    value
    & opt (some (pos_int_conv "--jobs")) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the experiment engine's domain pool (default: the \
           number of cores).  $(b,--jobs 1) is fully sequential and \
           emits bit-identical numbers.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the content-addressed on-disk result cache \
           ($(b,_spd_cache/)).")

let retries_arg =
  Arg.(
    value
    & opt (some (pos_int_conv "--retries")) None
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Attempts per grid cell before a failure is recorded and the \
           cell renders as n/a (default 1).")

let fuel_arg =
  Arg.(
    value
    & opt (some (pos_int_conv "--fuel")) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Simulator traversal budget per run (default 60M).")

let deadline_arg =
  Arg.(
    value
    & opt (some (pos_float_conv "--deadline")) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Per-cell wall-clock budget in seconds.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run (spans per grid \
           cell with pipeline-stage child spans), loadable in Perfetto \
           / chrome://tracing.  Written even when the run aborts.")

(* ------------------------------------------------------------------ *)

let compile_cmd =
  let run file pipeline mem_latency =
    handle_errors (fun () ->
        let p = prepare_src ~mem_latency pipeline (read_file file) in
        Fmt.pr "%a@." Spd_ir.Prog.pp p.prog;
        if p.applications <> [] then begin
          Fmt.pr "@.SpD applications:@.";
          List.iter
            (fun (a : Spd_core.Heuristic.application) ->
              Fmt.pr "  %s tree %d: %a arc #%d->#%d gain %.2f cost %d@."
                a.func a.tree_id Spd_ir.Memdep.pp_kind a.kind (fst a.arc)
                (snd a.arc) a.predicted_gain a.cost)
            p.applications
        end)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a mini-C file and dump the IR.")
    Term.(const run $ file_arg $ pipeline_arg $ mem_latency_arg)

let run_cmd =
  let run file pipeline mem_latency width =
    handle_errors (fun () ->
        let p = prepare_src ~mem_latency pipeline (read_file file) in
        let descr =
          {
            Spd_machine.Descr.width =
              (match width with
              | None -> Spd_machine.Descr.Infinite
              | Some n -> Spd_machine.Descr.Fus n);
            mem_latency;
          }
        in
        let timing = Spd_machine.Timing_builder.program descr p.prog in
        let r = Spd_sim.Interp.run ~timing p.prog in
        List.iter (fun v -> Fmt.pr "%a@." Spd_ir.Value.pp v) r.output;
        Fmt.pr "return      %a@." Spd_ir.Value.pp r.ret;
        Fmt.pr "machine     %a (%a)@." Spd_machine.Descr.pp descr Pipeline.pp
          pipeline;
        Fmt.pr "traversals  %d@." r.traversals;
        Fmt.pr "cycles      %d@." r.cycles)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile, disambiguate, schedule and simulate a mini-C file.")
    Term.(const run $ file_arg $ pipeline_arg $ mem_latency_arg $ width_arg)

let workload_names () =
  Spd_workloads.Registry.names
  @ List.map
      (fun (w : Spd_workloads.Workload.t) -> w.name)
      Spd_workloads.Registry.extras

let bench_run_cmd =
  let run name mem_latency width =
    handle_errors (fun () ->
        (if not (List.mem name (workload_names ())) then begin
           Fmt.epr "unknown benchmark %S (one of: %s)@." name
             (String.concat ", " (workload_names ()));
           exit 1
         end);
        let w = Spd_workloads.Registry.by_name name in
        let width =
          match width with
          | None -> Spd_machine.Descr.Fus 5
          | Some n -> Spd_machine.Descr.Fus n
        in
        Fmt.pr "%-10s %-30s@." w.name w.description;
        Fmt.pr "%-8s %10s %10s@." "pipeline" "cycles" "speedup";
        let lowered = Spd_lang.Lower.compile w.source in
        let base = ref 0 in
        List.iter
          (fun kind ->
            let p =
              Pipeline.prepare
                ~config:(Pipeline.Config.v ~mem_latency ())
                kind lowered
            in
            let cycles = Pipeline.cycles p ~width in
            if kind = Pipeline.Naive then base := cycles;
            Fmt.pr "%-8s %10d %9.1f%%@." (Pipeline.name kind) cycles
              (100.0 *. Pipeline.speedup ~base:!base ~this:cycles))
          Pipeline.all)
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark name (see $(b,spd list)).")
  in
  Term.(const run $ name_arg $ mem_latency_arg $ width_arg)

let bench_diff_cmd =
  let module Artefact = Spd_harness.Artefact in
  let module Benchdiff = Spd_harness.Benchdiff in
  let run old_file new_file threshold format =
    match
      Benchdiff.diff_strings ~threshold ~old_report:(read_file old_file)
        ~new_report:(read_file new_file) ()
    with
    | Error msg ->
        Fmt.epr "bench diff: %s@." msg;
        exit 1
    | Ok d ->
        Benchdiff.render format Fmt.stdout d;
        if d.Benchdiff.regressions > 0 then exit 2
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD"
          ~doc:"Baseline spd-report/1 document (e.g. a bench/history/ \
                snapshot).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW"
          ~doc:"Candidate spd-report/1 document (e.g. BENCH_REPORT.json).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Tolerated relative change in percent; a cell regresses only \
             when it moves in the bad direction by more than this \
             (default 0: any worsening counts).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two bench reports cell by cell; exits 2 when any \
          tracked value regresses beyond the threshold.")
    Term.(
      const run $ old_arg $ new_arg $ threshold_arg
      $ format_arg
          ~doc:
            "Output format: $(b,pretty) (default), $(b,json) (one \
             spd-bench-diff/1 document) or $(b,csv).")

let bench_snapshot_cmd =
  let run from dir =
    let doc = read_file from in
    (match Spd_telemetry.Json.of_string doc with
    | Error msg ->
        Fmt.epr "bench snapshot: %s is not valid JSON: %s@." from msg;
        exit 1
    | Ok json -> (
        match
          Option.bind
            (Spd_telemetry.Json.member "schema" json)
            Spd_telemetry.Json.to_string_opt
        with
        | Some s
          when s = Spd_harness.Artefact.report_schema
               || s = Spd_harness.Microbench.schema ->
            ()
        | _ ->
            Fmt.epr "bench snapshot: %s is not an %s or %s document@." from
              Spd_harness.Artefact.report_schema
              Spd_harness.Microbench.schema;
            exit 1));
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let tm = Unix.localtime (Unix.gettimeofday ()) in
    let stamp =
      Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
    in
    let rec fresh n =
      let path =
        Filename.concat dir
          (if n = 0 then stamp ^ ".json"
           else Printf.sprintf "%s-%d.json" stamp n)
      in
      if Sys.file_exists path then fresh (n + 1) else path
    in
    let path = fresh 0 in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc doc);
    Fmt.pr "%s@." path
  in
  let from_arg =
    Arg.(
      value
      & opt file "BENCH_REPORT.json"
      & info [ "from" ] ~docv:"FILE"
          ~doc:"Report to snapshot (default BENCH_REPORT.json).")
  in
  let dir_arg =
    Arg.(
      value
      & opt string "bench/history"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"History directory (default bench/history).")
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Validate a bench report and copy it into the history directory \
          under a timestamped name, printing the path written.")
    Term.(const run $ from_arg $ dir_arg)

let bench_micro_cmd =
  let module Microbench = Spd_harness.Microbench in
  let run names mem_latency width min_time baseline max_drop format =
    handle_errors (fun () ->
        let known = workload_names () in
        List.iter
          (fun n ->
            if not (List.mem n known) then begin
              Fmt.epr "unknown workload %S (one of: %s)@." n
                (String.concat ", " known);
              exit 1
            end)
          names;
        let workloads = match names with [] -> None | ns -> Some ns in
        let t = Microbench.run ~mem_latency ~width ~min_time ?workloads () in
        Microbench.render format Fmt.stdout t;
        match baseline with
        | None -> ()
        | Some file -> (
            match Spd_telemetry.Json.of_string (read_file file) with
            | Error msg ->
                Fmt.epr "bench micro: baseline %s is not valid JSON: %s@."
                  file msg;
                exit 1
            | Ok doc ->
                let dropped = ref false in
                List.iter
                  (fun (s : Microbench.sample) ->
                    match
                      Microbench.simulate_per_sec doc ~workload:s.workload
                    with
                    | None -> ()
                    | Some base ->
                        let cur = s.simulate.Microbench.per_sec in
                        let drop_pct =
                          if base > 0.0 then (base -. cur) /. base *. 100.0
                          else 0.0
                        in
                        Fmt.epr
                          "perf: %-10s simulate %13.0f trav/s, baseline \
                           %13.0f (%+.1f%%)@."
                          s.workload cur base (-.drop_pct);
                        if drop_pct > max_drop then begin
                          dropped := true;
                          Fmt.epr
                            "perf: %s simulate throughput dropped %.1f%% \
                             (budget %.0f%%)@."
                            s.workload drop_pct max_drop
                        end)
                  t.Microbench.samples;
                if !dropped then exit 2))
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Workloads to benchmark (default: the paper's Table 6-2 set \
             plus the extras, e.g. $(b,matmul300)).")
  in
  let min_time_arg =
    Arg.(
      value
      & opt float 0.3
      & info [ "min-time" ] ~docv:"SECONDS"
          ~doc:
            "Minimum wall clock accumulated per measured stage (default \
             0.3).")
  in
  let width_arg =
    Arg.(
      value
      & opt int 5
      & info [ "w"; "width" ] ~docv:"FUS"
          ~doc:"Number of universal functional units (default 5).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Committed spd-micro/1 snapshot to compare simulate \
             throughput against (see $(b,make perf-smoke)); exits 2 \
             when a measured workload drops more than $(b,--max-drop) \
             percent below it.")
  in
  let max_drop_arg =
    Arg.(
      value
      & opt float 25.0
      & info [ "max-drop" ] ~docv:"PCT"
          ~doc:
            "Tolerated simulate-throughput drop vs $(b,--baseline), in \
             percent (default 25).")
  in
  Cmd.v
    (Cmd.info "micro"
       ~doc:
         "Measure compile/schedule/simulate throughput per workload and \
          emit an spd-micro/1 document; optionally gate against a \
          committed baseline snapshot.")
    Term.(
      const run $ names_arg $ mem_latency_arg $ width_arg $ min_time_arg
      $ baseline_arg $ max_drop_arg
      $ format_arg
          ~doc:
            "Output format: $(b,pretty) (default), $(b,json) (one \
             spd-micro/1 document) or $(b,csv).")

(* [spd bench NAME] predates the diff/snapshot subcommands; the main
   entry point rewrites it to [spd bench run NAME] so both forms work. *)
let bench_subcommands = [ "run"; "diff"; "snapshot"; "micro" ]

let bench_cmd =
  Cmd.group ~default:bench_run_cmd
    (Cmd.info "bench"
       ~doc:
         "Run one built-in benchmark under all four pipelines; \
          $(b,diff)/$(b,snapshot)/$(b,micro) track bench reports and \
          hot-path throughput over time.")
    [
      Cmd.v
        (Cmd.info "run"
           ~doc:"Run one built-in benchmark under all four pipelines.")
        bench_run_cmd;
      bench_diff_cmd;
      bench_snapshot_cmd;
      bench_micro_cmd;
    ]

let report_cmd =
  let module Artefact = Spd_harness.Artefact in
  let module Trace = Spd_telemetry.Trace in
  let run list_only validate name jobs no_cache timings retries fuel
      deadline widths faults trace format =
    if list_only then Artefact.pp_list Fmt.stdout ()
    else if validate then begin
      (* grid certification: translation-validate every SpD application
         of the paper grid instead of rendering artefacts *)
      let module Validation = Spd_harness.Validation in
      let failed =
        Trace.capture trace (fun () ->
            Spd_harness.Experiment.with_session
              (Spd_harness.Engine.Session.create ?jobs
                 ~disk_cache:(not no_cache) ?retries ?fuel ?deadline
                 ?faults:(Option.map Fun.id faults) ())
              (fun session ->
                let c = Validation.certify session in
                Fmt.pr "%a@." Validation.pp_certification c;
                not (Validation.acceptable c)))
      in
      if failed then exit 2
    end
    else begin
      (match widths with
      | None -> ()
      | Some ws -> Spd_harness.Report.set_widths ws);
      let failed =
        (* [capture] writes the trace file even when a cell raises *)
        Trace.capture trace (fun () ->
            Spd_harness.Experiment.with_session
              (Spd_harness.Engine.Session.create ?jobs
                 ~disk_cache:(not no_cache) ?retries ?fuel ?deadline
                 ?faults:(Option.map Fun.id faults) ())
              (fun session ->
                (match name with
                | None ->
                    Artefact.render ~session format Fmt.stdout
                      (Artefact.of_names Artefact.paper_set)
                | Some n -> (
                    match Artefact.find n with
                    | Some a -> Artefact.render ~session format Fmt.stdout [ a ]
                    | None ->
                        Fmt.epr "unknown artefact %s (one of: %s)@." n
                          (String.concat ", " (Artefact.names ()));
                        exit 1));
                (match format with
                | Artefact.Pretty ->
                    if timings && name <> Some "timings" then
                      Spd_harness.Report.timings session Fmt.stdout ();
                    Spd_harness.Report.failure_appendix session Fmt.stdout ()
                | _ -> ());
                Spd_harness.Experiment.failures session <> []))
      in
      if failed then exit 2
    end
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the artefact registry with one-line descriptions.")
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ARTEFACT"
          ~doc:"Table or figure to regenerate (default: all).")
  in
  let timings_arg =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:"Append the engine's per-stage wall-clock report.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Certify the paper grid instead of rendering artefacts: \
             translation-validate every SpD application (each built-in \
             workload at 2- and 6-cycle memory) and print the verdict \
             tally.  Exits 2 on any $(b,refuted) verdict or failed \
             cell; $(b,unknown) verdicts are tolerated and counted.")
  in
  let widths_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun e -> `Msg e)
            (Spd_harness.Cliflags.widths s)),
        Fmt.(list ~sep:comma int) )
  in
  let widths_arg =
    Arg.(
      value
      & opt (some widths_conv) None
      & info [ "widths" ] ~docv:"A,B,.."
          ~doc:"Machine widths swept by Figure 6-3 (default 1..8).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate the paper's evaluation tables and figures.")
    Term.(
      const run $ list_arg $ validate_arg $ name_arg $ jobs_arg
      $ no_cache_arg $ timings_arg $ retries_arg $ fuel_arg
      $ deadline_arg $ widths_arg $ faults_arg $ trace_arg
      $ format_arg
          ~doc:
            "Output format: $(b,pretty) (default), $(b,json) (one \
             spd-report/1 document with every table, the failures and a \
             metrics snapshot) or $(b,csv) (long format).")

let explain_cmd =
  let module Explain = Spd_harness.Explain in
  let run list_only name fn tree width mem_latency format =
    if list_only then Spd_harness.Artefact.pp_list Fmt.stdout ()
    else
      match name with
      | None ->
          Fmt.epr "spd explain: missing WORKLOAD (one of: %s)@."
            (String.concat ", " (workload_names ()));
          exit 1
      | Some name ->
          if not (List.mem name (workload_names ())) then begin
            Fmt.epr "unknown workload %S (one of: %s)@." name
              (String.concat ", " (workload_names ()));
            exit 1
          end;
          handle_errors (fun () ->
              let t = Explain.analyze ~width ~mem_latency name in
              (match (fn, tree) with
              | None, None -> ()
              | _ ->
                  if Explain.selected ?fn ?tree t = [] then begin
                    Fmt.epr "no tree matches the --fn/--tree filters@.";
                    exit 1
                  end);
              Explain.render ?fn ?tree format Fmt.stdout t)
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the artefact registry with one-line descriptions.")
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload name (the built-in benchmarks plus extras such \
                as $(b,matmul300)).")
  in
  let fn_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "fn" ] ~docv:"NAME" ~doc:"Restrict to a function.")
  in
  let tree_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "t"; "tree" ] ~docv:"ID" ~doc:"Restrict to a tree id.")
  in
  let width_arg =
    Arg.(
      value
      & opt int 5
      & info [ "w"; "width" ] ~docv:"FUS"
          ~doc:"Number of universal functional units (default 5).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a workload's schedules: cycle-by-FU occupancy grids \
          with SpD version annotations, critical-path cycle attribution \
          per tree, and a per-region table whose cycles sum exactly to \
          the simulated total.")
    Term.(
      const run $ list_arg $ name_arg $ fn_arg $ tree_arg $ width_arg
      $ mem_latency_arg
      $ format_arg
          ~doc:
            "Output format: $(b,pretty) (default), $(b,json) (one \
             spd-explain/1 document) or $(b,csv).")

let why_cmd =
  let module Why = Spd_harness.Why in
  let run name fn tree mem_latency jobs no_cache format =
    match name with
    | None ->
        Fmt.epr "spd why: missing WORKLOAD (one of: %s)@."
          (String.concat ", " (workload_names ()));
        exit 1
    | Some name ->
        if not (List.mem name (workload_names ())) then begin
          Fmt.epr "unknown workload %S (one of: %s)@." name
            (String.concat ", " (workload_names ()));
          exit 1
        end;
        handle_errors (fun () ->
            Spd_harness.Experiment.with_session
              (Spd_harness.Engine.Session.create ?jobs
                 ~disk_cache:(not no_cache) ())
              (fun session ->
                match Why.analyze ~mem_latency session name with
                | exception Spd_harness.Engine.Cell_failed f ->
                    Fmt.epr "%a@." Spd_harness.Engine.pp_failure f;
                    exit 2
                | t ->
                    (match (fn, tree) with
                    | None, None -> ()
                    | _ ->
                        if Why.selected ?fn ?tree t = [] then begin
                          Fmt.epr
                            "no ledger entry matches the --fn/--tree \
                             filters@.";
                          exit 1
                        end);
                    Why.render ?fn ?tree format Fmt.stdout t))
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload name (the built-in benchmarks plus extras such \
                as $(b,matmul300)).")
  in
  let fn_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "fn" ] ~docv:"NAME" ~doc:"Restrict to a function.")
  in
  let tree_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "t"; "tree" ] ~docv:"ID" ~doc:"Restrict to a tree id.")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Explain the SpD guidance heuristic's decisions for a \
          workload: per tree, every candidate ambiguous arc with its \
          predicted gain, the static test that left it ambiguous, the \
          budgets in force and the applied/rejected verdict, plus the \
          rejection-reason histogram.")
    Term.(
      const run $ name_arg $ fn_arg $ tree_arg $ mem_latency_arg
      $ jobs_arg $ no_cache_arg
      $ format_arg
          ~doc:
            "Output format: $(b,pretty) (default), $(b,json) (one \
             spd-decisions/1 document) or $(b,csv).")

let validate_cmd =
  let module Validation = Spd_harness.Validation in
  let run name fn tree mem_latency jobs no_cache format =
    match name with
    | None ->
        Fmt.epr "spd validate: missing WORKLOAD (one of: %s)@."
          (String.concat ", " (workload_names ()));
        exit 1
    | Some name ->
        if not (List.mem name (workload_names ())) then begin
          Fmt.epr "unknown workload %S (one of: %s)@." name
            (String.concat ", " (workload_names ()));
          exit 1
        end;
        handle_errors (fun () ->
            Spd_harness.Experiment.with_session
              (Spd_harness.Engine.Session.create ?jobs
                 ~disk_cache:(not no_cache) ())
              (fun session ->
                match Validation.analyze ~mem_latency session name with
                | exception Spd_harness.Engine.Cell_failed f ->
                    Fmt.epr "%a@." Spd_harness.Engine.pp_failure f;
                    exit 2
                | t ->
                    (match (fn, tree) with
                    | None, None -> ()
                    | _ ->
                        if Validation.selected ?fn ?tree t = [] then begin
                          Fmt.epr
                            "no validation entry matches the --fn/--tree \
                             filters@.";
                          exit 1
                        end);
                    Validation.render ?fn ?tree format Fmt.stdout t))
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload name (the built-in benchmarks plus extras such \
                as $(b,matmul300)).")
  in
  let fn_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "fn" ] ~docv:"NAME" ~doc:"Restrict to a function.")
  in
  let tree_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "t"; "tree" ] ~docv:"ID" ~doc:"Restrict to a tree id.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Translation-validate a workload's SpD transform: for every \
          applied speculation, symbolically prove the original and \
          transformed trees equivalent (taken exit, live-out values, \
          committed stores) on both sides of the speculated alias \
          predicate.  Each application is $(b,proved), $(b,refuted) \
          (with a concrete counterexample — the cell then fails and \
          the exit status is 2) or $(b,unknown) (the proof hit a \
          modelling limit; counted, never fatal).")
    Term.(
      const run $ name_arg $ fn_arg $ tree_arg $ mem_latency_arg
      $ jobs_arg $ no_cache_arg
      $ format_arg
          ~doc:
            "Output format: $(b,pretty) (default), $(b,json) (one \
             spd-validate/1 document) or $(b,csv).")

let cache_cmd =
  let module Json = Spd_telemetry.Json in
  let module Metrics = Spd_telemetry.Metrics in
  let stats_run dir json =
    (* register the cache counter family so the snapshot carries the
       spd.cache.* names even before any cell fires them *)
    Spd_harness.Engine.register_metrics ();
    let entries = ref 0 and bytes = ref 0 in
    (match Sys.readdir dir with
    | names ->
        Array.iter
          (fun n ->
            if Filename.check_suffix n ".cache" then begin
              incr entries;
              match Unix.stat (Filename.concat dir n) with
              | st -> bytes := !bytes + st.Unix.st_size
              | exception Unix.Unix_error _ -> ()
            end)
          names
    | exception Sys_error _ -> ());
    let counter name =
      match List.assoc_opt name (Metrics.snapshot ()) with
      | Some (Metrics.Counter n) -> n
      | _ -> 0
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("schema", Json.String "spd-cache/1");
                ("dir", Json.String dir);
                ("entries", Json.Int !entries);
                ("bytes", Json.Int !bytes);
                ( "version",
                  Json.String Spd_harness.Engine.cache_version );
                ("hits", Json.Int (counter "spd.cache.hit"));
                ("misses", Json.Int (counter "spd.cache.miss"));
                ("evictions", Json.Int (counter "spd.cache.evict"));
              ]))
    else begin
      Fmt.pr "dir        %s@." dir;
      Fmt.pr "entries    %d@." !entries;
      Fmt.pr "bytes      %d@." !bytes;
      Fmt.pr "version    %s@." Spd_harness.Engine.cache_version;
      Fmt.pr "hits       %d@." (counter "spd.cache.hit");
      Fmt.pr "misses     %d@." (counter "spd.cache.miss");
      Fmt.pr "evictions  %d@." (counter "spd.cache.evict")
    end
  in
  let dir_arg =
    Arg.(
      value
      & opt string "_spd_cache"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Cache directory (default $(b,_spd_cache)).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one spd-cache/1 JSON object.")
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect the content-addressed on-disk result cache \
          ($(b,_spd_cache/)).")
    [
      Cmd.v
        (Cmd.info "stats"
           ~doc:
             "Entry count, total bytes, cache format version and the \
              process's live $(b,spd.cache.hit)/$(b,miss)/$(b,evict) \
              counters (also part of the Prometheus exposition).")
        Term.(const stats_run $ dir_arg $ json_arg);
    ]

let graph_cmd =
  let run file pipeline mem_latency func tree_id =
    handle_errors (fun () ->
        let p = prepare_src ~mem_latency pipeline (read_file file) in
        (* default: the tree with the most active memory arcs *)
        let best = ref None in
        Spd_ir.Prog.iter_trees
          (fun f (t : Spd_ir.Tree.t) ->
            let matches =
              (match func with Some n -> n = f | None -> true)
              && match tree_id with Some i -> i = t.id | None -> true
            in
            if matches then
              let n = List.length (Spd_ir.Tree.active_arcs t) in
              match !best with
              | Some (m, _) when m >= n -> ()
              | _ -> best := Some (n, t))
          p.prog;
        match !best with
        | None -> Fmt.epr "no matching tree@."; exit 1
        | Some (_, t) ->
            let g = Spd_analysis.Ddg.build ~mem_latency t in
            Fmt.pr "%a@." Spd_analysis.Ddg.pp_dot g)
  in
  let func_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "function" ] ~docv:"NAME" ~doc:"Restrict to a function.")
  in
  let tree_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "t"; "tree" ] ~docv:"ID" ~doc:"Select a tree id.")
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Emit the dependence graph of a tree in Graphviz DOT format           (default: the tree with the most memory arcs).")
    Term.(
      const run $ file_arg $ pipeline_arg $ mem_latency_arg $ func_arg
      $ tree_arg)

(* ------------------------------------------------------------------ *)
(* The daemon and its one-shot client *)

let default_socket = "_spd_serve.sock"

let resolve_addr ~socket ~tcp =
  match tcp with
  | None -> Spd_serve.Protocol.Unix_path socket
  | Some spec -> (
      match Spd_serve.Protocol.addr_of_string ("tcp:" ^ spec) with
      | Ok a -> a
      | Error msg ->
          Fmt.epr "spd: %s@." msg;
          exit 1)

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          (Printf.sprintf "Unix-domain socket path (default %s)."
             default_socket))

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on / connect to TCP instead of the Unix socket.")

let serve_cmd =
  let module Log = Spd_telemetry.Log in
  let module Trace = Spd_telemetry.Trace in
  let run socket tcp workers conn_timeout drain_deadline max_pending jobs
      no_cache retries fuel deadline faults log log_level slow_ms trace =
    let addr = resolve_addr ~socket ~tcp in
    (* --log without --log-level defaults to info: a file sink wants the
       request log, not just the warnings the stderr default shows *)
    (match (log_level, log) with
    | Some lvl, _ -> Log.set_level lvl
    | None, Some _ -> Log.set_level Log.Info
    | None, None -> ());
    let session =
      Spd_harness.Engine.Session.create ?jobs ~disk_cache:(not no_cache)
        ?retries ?fuel ?deadline ?faults:(Option.map Fun.id faults) ()
    in
    let serve () =
      let server =
        try
          Spd_serve.Server.start ~workers ~conn_timeout ~drain_deadline
            ~max_pending
            ?faults:(Option.map Fun.id faults)
            ?run_fuel:fuel ?run_deadline:deadline ?slow_ms ~session addr
        with Failure msg ->
          Spd_harness.Engine.Session.close session;
          Fmt.epr "%s@." msg;
          exit 1
      in
      (* SIGINT/SIGTERM start the same graceful drain as the shutdown
         method: [stop] is idempotent and signal-safe *)
      let stop _signum = Spd_serve.Server.stop server in
      (try ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop))
       with Invalid_argument _ | Sys_error _ -> ());
      (try ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop))
       with Invalid_argument _ | Sys_error _ -> ());
      Fmt.pr "spd serve: listening on %a, %d worker domains@."
        Spd_serve.Protocol.pp_addr addr (max 1 workers);
      Fmt.pr "spd serve: stop with SIGINT/SIGTERM or the shutdown method@.";
      Spd_serve.Server.wait server;
      Fmt.pr "spd serve: stopped after %d requests@."
        (Spd_serve.Server.served server);
      Spd_harness.Engine.Session.close session
    in
    (* [capture] writes the trace even when serving aborts; [with_file]
       closes (and flushes) the log sink the same way *)
    try Log.with_file log (fun () -> Trace.capture trace serve)
    with Failure msg ->
      Fmt.epr "spd serve: %s@." msg;
      exit 1
  in
  let workers_arg =
    Arg.(
      value
      & opt (pos_int_conv "--workers") 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Serve domains (default 4).")
  in
  let conn_timeout_arg =
    Arg.(
      value
      & opt (pos_float_conv "--conn-timeout") 30.0
      & info [ "conn-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection frame deadline: a peer that takes longer \
             than this to deliver one complete request (or to accept \
             one response) is evicted (default 30).")
  in
  let drain_deadline_arg =
    Arg.(
      value
      & opt (pos_float_conv "--drain-deadline") 10.0
      & info [ "drain-deadline" ] ~docv:"SECONDS"
          ~doc:
            "On shutdown, let in-flight requests finish for up to this \
             long before stopping hard (default 10).")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt (pos_int_conv "--max-pending") 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission control: connections queued beyond the worker \
             count before new ones are refused with a $(b,server busy) \
             error (default 64).")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Append structured $(b,spd-log/1) JSON-lines records to \
             FILE (default: stderr at level warn).  Implies \
             $(b,--log-level info) unless a level is given \
             explicitly.")
  in
  let log_level_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun e -> `Msg e)
            (Spd_telemetry.Log.level_of_string s)),
        fun ppf l -> Fmt.string ppf (Spd_telemetry.Log.level_to_string l) )
  in
  let log_level_arg =
    Arg.(
      value
      & opt (some log_level_conv) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Log threshold: $(b,error), $(b,warn), $(b,info) or \
             $(b,debug).")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some (pos_float_conv "--slow-ms")) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log an $(b,rpc.slow) record, with a per-stage wall-clock \
             breakdown, for every request at least this many \
             milliseconds long.")
  in
  let serve_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the daemon's lifetime: \
             one $(b,rpc:METHOD) span per request (tagged with its \
             $(b,rid)) with the engine's cell and stage spans nested \
             inside.  Written even when serving aborts.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the experiment daemon: framed JSON-RPC over a socket, one \
          shared engine session, so concurrent identical requests \
          deduplicate onto one computation.  $(b,--fuel) and \
          $(b,--deadline) bound every tenant's per-request quotas; \
          $(b,--conn-timeout), $(b,--max-pending) and \
          $(b,--drain-deadline) bound what misbehaving clients and \
          shutdowns can cost; $(b,--log), $(b,--trace) and \
          $(b,--slow-ms) make it observable.")
    Term.(
      const run $ socket_arg $ tcp_arg $ workers_arg $ conn_timeout_arg
      $ drain_deadline_arg $ max_pending_arg $ jobs_arg $ no_cache_arg
      $ retries_arg $ fuel_arg $ deadline_arg $ faults_arg $ log_arg
      $ log_level_arg $ slow_ms_arg $ serve_trace_arg)

let call_cmd =
  let run meth params socket tcp retries format =
    let addr = resolve_addr ~socket ~tcp in
    (* --format prometheus is sugar for the metrics_prom method plus
       printing its "text" member raw, ready for a scraper *)
    let meth =
      match format with
      | `Json -> meth
      | `Prometheus -> (
          match meth with
          | "metrics" | "metrics_prom" -> "metrics_prom"
          | _ ->
              Fmt.epr
                "spd call: --format prometheus only applies to the \
                 metrics method@.";
              exit 1)
    in
    let params_json =
      match params with
      | None -> Spd_telemetry.Json.Obj []
      | Some s -> (
          match Spd_telemetry.Json.of_string s with
          | Ok j -> j
          | Error e ->
              Fmt.epr "spd call: PARAMS is not valid JSON: %s@." e;
              exit 1)
    in
    match
      Spd_serve.Protocol.call_with_retries ~retries addr meth params_json
    with
    | Error e ->
        Fmt.epr "spd call: %s@." e;
        exit 1
    | Ok result ->
        (match format with
        | `Prometheus -> (
            match
              Option.bind
                (Spd_telemetry.Json.member "text" result)
                Spd_telemetry.Json.to_string_opt
            with
            | Some text -> print_string text
            | None ->
                Fmt.epr "spd call: malformed metrics_prom response@.";
                exit 1)
        | `Json ->
            print_string (Spd_telemetry.Json.to_string result);
            print_newline ());
        (* readiness-probe contract: health against a draining daemon
           answers, but the exit code says "not ready" *)
        if
          meth = "health"
          && Spd_telemetry.Json.member "draining" result
             = Some (Spd_telemetry.Json.Bool true)
        then exit 3
  in
  let meth_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"METHOD"
          ~doc:
            "Daemon method: ping, health, query, report, explain, why, \
             validate, micro, run, metrics, metrics_prom, stats or \
             shutdown.")
  in
  let params_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"PARAMS"
          ~doc:"Request parameters as one JSON object (default {}).")
  in
  let retries_arg =
    Arg.(
      value
      & opt (pos_int_conv "--retries") 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Attempts before giving up (default 1).  Transport failures \
             and $(b,server busy)/$(b,shutting down) errors are retried \
             with exponential backoff, honoring the daemon's \
             $(b,retry_after_ms) hint — enough to ride through a \
             restart.")
  in
  let call_format_arg =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("prometheus", `Prometheus) ]) `Json
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "$(b,json) (default) prints the result document; \
             $(b,prometheus) (metrics method only) prints the text \
             exposition format, ready for a scraper.")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send one JSON-RPC request to a running $(b,spd serve) daemon \
          and print the JSON result on stdout.  $(b,spd call health) \
          exits 3 when the daemon answers but is draining.")
    Term.(
      const run $ meth_arg $ params_arg $ socket_arg $ tcp_arg
      $ retries_arg $ call_format_arg)

let top_cmd =
  let module Top = Spd_serve.Top in
  let run socket tcp interval count =
    let addr = resolve_addr ~socket ~tcp in
    match Spd_serve.Protocol.connect addr with
    | Error e ->
        Fmt.epr "spd top: %s@." e;
        exit 1
    | Ok c ->
        let tty = Unix.isatty Unix.stdout in
        let stop = ref false in
        (try
           ignore
             (Sys.signal Sys.sigint
                (Sys.Signal_handle (fun _ -> stop := true)))
         with Invalid_argument _ | Sys_error _ -> ());
        let prev = ref None in
        let frames = ref 0 in
        let rc = ref 0 in
        (try
           while (not !stop) && (count = 0 || !frames < count) do
             (match Top.fetch c with
             | Error e ->
                 Fmt.epr "spd top: %s@." e;
                 rc := 1;
                 raise Exit
             | Ok s ->
                 if tty then print_string "\027[H\027[2J";
                 print_string (Top.render ?prev:!prev s);
                 flush stdout;
                 prev := Some s);
             incr frames;
             if (count = 0 || !frames < count) && not !stop then
               Unix.sleepf interval
           done
         with Exit -> ());
        Spd_serve.Protocol.close c;
        if !rc <> 0 then exit !rc
  in
  let interval_arg =
    Arg.(
      value
      & opt (pos_float_conv "--interval") 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between refreshes (default 2).")
  in
  let count_arg =
    Arg.(
      value
      & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Stop after N frames (default 0: refresh until \
             interrupted).  $(b,--count 1) prints one snapshot and \
             exits — cron-friendly.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running $(b,spd serve) daemon: polls \
          $(b,health) and $(b,metrics), differences consecutive \
          samples, and shows RPS, in-flight requests, worker state, \
          cache hit rate and per-method p50/p95/p99 latency, \
          refreshing in place on a terminal.")
    Term.(
      const run $ socket_arg $ tcp_arg $ interval_arg $ count_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (w : Spd_workloads.Workload.t) ->
        Fmt.pr "%-10s %-9s %s@." w.name
          (Spd_workloads.Workload.suite_name w.suite)
          w.description)
      Spd_workloads.Registry.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmarks.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "spd" ~version:"1.0.0"
      ~doc:
        "Speculative disambiguation for a guarded VLIW: compiler, \
         scheduler, simulator and the ISCA'94 experiments."
  in
  (* keep the historical [spd bench NAME] spelling working alongside
     the bench subcommands *)
  let argv =
    let a = Sys.argv in
    if
      Array.length a >= 3
      && a.(1) = "bench"
      && (not (List.mem a.(2) bench_subcommands))
      && String.length a.(2) > 0
      && a.(2).[0] <> '-'
    then
      Array.concat
        [ [| a.(0); "bench"; "run" |]; Array.sub a 2 (Array.length a - 2) ]
    else a
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [
            compile_cmd; run_cmd; bench_cmd; explain_cmd; why_cmd;
            validate_cmd; report_cmd; serve_cmd; call_cmd; top_cmd;
            cache_cmd; graph_cmd; list_cmd;
          ]))
