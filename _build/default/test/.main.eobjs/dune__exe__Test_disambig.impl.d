test/test_disambig.ml: Alcotest Insn List Memdep Option Printf Prog QCheck QCheck_alcotest Spd_analysis Spd_disambig Spd_harness Spd_ir Spd_sim Spd_workloads String Tree Util
