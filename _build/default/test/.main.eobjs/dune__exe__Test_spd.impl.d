test/test_spd.ml: Alcotest Array List Printf Spd_analysis Spd_core Spd_disambig Spd_harness Spd_ir Spd_machine Spd_sim Util
