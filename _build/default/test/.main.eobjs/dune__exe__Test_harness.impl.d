test/test_harness.ml: Alcotest Buffer Float Fmt Gen_prog List Printf QCheck QCheck_alcotest Spd_core Spd_harness Spd_ir Spd_machine Spd_workloads String Unix Util
