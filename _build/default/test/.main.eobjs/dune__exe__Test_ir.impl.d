test/test_ir.ml: Alcotest Array Fmt Insn Interval Memdep Opcode Option QCheck QCheck_alcotest Reg Spd_ir Tree Util Value
