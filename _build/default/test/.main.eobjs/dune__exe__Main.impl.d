test/main.ml: Alcotest Test_analysis Test_disambig Test_harness Test_ir Test_lang Test_machine Test_sim Test_spd Test_workloads
