test/test_workloads.ml: Alcotest Array Filename List Spd_harness Spd_ir Spd_workloads String Sys Util
