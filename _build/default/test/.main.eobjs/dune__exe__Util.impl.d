test/util.ml: Alcotest Float Spd_ir Spd_lang Spd_sim
