test/test_analysis.ml: Alcotest Array Fmt Insn Interval List Memdep Opcode Prog QCheck QCheck_alcotest Reg Spd_analysis Spd_harness Spd_ir Spd_sim Spd_workloads Tree Util Value
