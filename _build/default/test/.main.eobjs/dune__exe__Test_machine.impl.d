test/test_machine.ml: Alcotest Array Gen_prog List Opcode Prog QCheck QCheck_alcotest Spd_analysis Spd_harness Spd_ir Spd_machine Spd_workloads Tree Util
