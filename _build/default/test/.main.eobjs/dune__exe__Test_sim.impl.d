test/test_sim.ml: Alcotest Array List Memdep Opcode Prog Spd_analysis Spd_ir Spd_machine Spd_sim Tree Util Value
