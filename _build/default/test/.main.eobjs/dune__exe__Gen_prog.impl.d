test/gen_prog.ml: Printf QCheck String
