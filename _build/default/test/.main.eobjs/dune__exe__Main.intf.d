test/main.mli:
