test/test_lang.ml: Alcotest Array List Option Spd_ir Spd_lang Util
