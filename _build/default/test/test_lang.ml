(** Frontend tests: lexer, parser, type checker, normalizer, lowering, all
    validated end-to-end through the interpreter. *)

open Util
module Ir = Spd_ir
module Lang = Spd_lang

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Basic expression and statement semantics *)

let test_return_literal () =
  check_int "literal" 42 (ret_int "int main() { return 42; }")

let test_arith () =
  check_int "arith" 17 (ret_int "int main() { return 2 + 3 * 5; }");
  check_int "paren" 25 (ret_int "int main() { return (2 + 3) * 5; }");
  check_int "div" 3 (ret_int "int main() { return 10 / 3; }");
  check_int "mod" 1 (ret_int "int main() { return 10 % 3; }");
  check_int "neg" (-7) (ret_int "int main() { return -7; }");
  check_int "shift" 40 (ret_int "int main() { return 5 << 3; }");
  check_int "bits" 6 (ret_int "int main() { return (12 ^ 10) & 14 | 0; }")

let test_vars () =
  check_int "assign" 9
    (ret_int "int main() { int x; x = 4; x = x + 5; return x; }")

let test_float_arith () =
  check_int "promotion" 3
    (ret_int "int main() { double x; x = 1.5; return (int)(x * 2.0); }");
  check_int "itof" 7
    (ret_int
       "int main() { double x; int i; i = 3; x = i + 4.25; return (int)x; }")

let test_comparisons () =
  check_int "lt" 1 (ret_int "int main() { return 3 < 4; }");
  check_int "ge" 0 (ret_int "int main() { return 3 >= 4; }");
  check_int "fcmp" 1 (ret_int "int main() { return 1.5 < 2.5; }");
  check_int "logical" 1
    (ret_int "int main() { int x; x = 5; return x && 1; }");
  check_int "lnot" 0 (ret_int "int main() { return !3; }");
  check_int "lor" 1 (ret_int "int main() { return 0 || 2; }")

let test_if () =
  check_int "then" 1 (ret_int "int main() { int x; if (2 < 3) x = 1; else x = 2; return x; }");
  check_int "else" 2 (ret_int "int main() { int x; if (3 < 2) x = 1; else x = 2; return x; }");
  check_int "nested" 12
    (ret_int
       {|
int main() {
  int a; int b;
  a = 10;
  if (a > 5) { if (a > 20) b = 11; else b = 12; } else b = 13;
  return b;
}
|})

let test_while () =
  check_int "sum" 55
    (ret_int
       "int main() { int i; int s; i = 1; s = 0; while (i <= 10) { s = s + i; i = i + 1; } return s; }")

let test_for () =
  check_int "sum" 45
    (ret_int
       "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) s = s + i; return s; }")

let test_arrays () =
  check_int "local array" 70
    (ret_int
       {|
int main() {
  int a[10];
  int i; int s;
  for (i = 0; i < 10; i = i + 1) a[i] = i * 2;
  s = 0;
  for (i = 0; i < 10; i = i + 1) { if (a[i] > 8) s = s + a[i]; }
  return s;
}
|})

let test_global_arrays () =
  check_int "global array with init" 6
    (ret_int
       {|
double w[4] = {1.0, 2.0, 3.0};
int main() { return (int)(w[0] + w[1] + w[2] + w[3]); }
|})

let test_global_scalar () =
  check_int "global scalar" 11
    (ret_int
       {|
int n = 5;
int bump() { n = n + 6; return 0; }
int main() { int x; x = bump(); return n; }
|})

let test_calls () =
  check_int "simple call" 7
    (ret_int
       "int add(int a, int b) { return a + b; } int main() { int x; x = add(3, 4); return x; }");
  check_int "nested calls normalized" 21
    (ret_int
       {|
int twice(int a) { return a * 2; }
int main() { int x; x = twice(3) + twice(twice(3)) + 3; return x; }
|})

let test_recursion () =
  check_int "factorial" 120
    (ret_int
       "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } int main() { return fact(5); }");
  check_int "fib" 55
    (ret_int
       {|
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { return fib(10); }
|})

let test_array_params () =
  check_int "array param aliasing visible to callee" 99
    (ret_int
       {|
int a[8];
int set(int v[], int i, int x) { v[i] = x; return 0; }
int main() { int r; r = set(a, 3, 99); return a[3]; }
|})

let test_print () =
  let out = output {|
int main() {
  print_int(3);
  print_float(1.5);
  print_int(4);
  return 0;
}
|} in
  Alcotest.(check (list value))
    "output" [ Ir.Value.Int 3; Ir.Value.Float 1.5; Ir.Value.Int 4 ] out

let test_call_in_loop_condition () =
  check_int "call in while condition" 4
    (ret_int
       {|
int below(int i, int n) { return i < n; }
int main() {
  int i;
  i = 0;
  while (below(i, 4)) i = i + 1;
  return i;
}
|})

let test_non_flat_if () =
  check_int "loop under if" 10
    (ret_int
       {|
int main() {
  int i; int s; int flag;
  flag = 1; s = 0;
  if (flag) { for (i = 0; i < 5; i = i + 1) s = s + i; }
  else s = 1000;
  return s;
}
|})

let test_return_inside_if () =
  check_int "early return" 1
    (ret_int
       "int main() { int x; x = 3; if (x > 2) return 1; return 0; }")

(* ------------------------------------------------------------------ *)
(* Error paths *)

let expect_parse_error src () =
  match Lang.Parser.parse_program src with
  | exception Lang.Parser.Error _ -> ()
  | exception Lang.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let expect_type_error src () =
  match Lang.Lower.compile src with
  | exception Lang.Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "expected a type error"

let parse_errors =
  [
    ("missing semicolon", "int main() { return 1 }");
    ("bad token", "int main() { return #; }");
    ("unterminated comment", "int main() { /* return 1; }");
    ("stray else", "int main() { else; }");
  ]

let type_errors =
  [
    ("undefined variable", "int main() { return x; }");
    ("array as scalar", "int a[3]; int main() { return a; }");
    ("scalar indexed", "int x; int main() { return x[0]; }");
    ("undefined function", "int main() { return f(1); }");
    ("arity", "int f(int a) { return a; } int main() { return f(1, 2); }");
    ("no main", "int f() { return 1; }");
    ("main with params", "int main(int x) { return x; }");
    ("mod on doubles", "int main() { return (int)(1.5 % 2.0); }");
    ( "array arg type",
      "double a[3]; int f(int v[]) { return v[0]; } int main() { return f(a); }"
    );
    ("duplicate variable", "int main() { int x; double x; return 0; }");
    ("void returning value", "void f() { return 1; } int main() { return 0; }");
  ]

(* ------------------------------------------------------------------ *)
(* Structural checks on the lowered IR *)

let test_loop_becomes_single_tree () =
  let prog =
    compile
      {|
int a[100];
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) a[i] = i;
  return a[7];
}
|}
  in
  let main = Ir.Prog.find_func prog "main" in
  let loop_trees =
    List.filter
      (fun (t : Ir.Tree.t) ->
        Array.exists
          (fun (e : Ir.Tree.exit) ->
            match e.kind with
            | Ir.Tree.Jump { target; _ } -> target = t.id
            | _ -> false)
          t.exits)
      main.trees
  in
  check_int "exactly one self-looping tree" 1 (List.length loop_trees);
  let loop = List.hd loop_trees in
  check_bool "loop body store is guarded" true
    (Array.exists
       (fun (i : Ir.Insn.t) ->
         Ir.Insn.is_store i && Option.is_some i.guard)
       loop.insns)

let test_ranges_attached () =
  let prog =
    compile
      {|
int a[100];
int main() {
  int i;
  for (i = 2; i < 50; i = i + 1) a[i] = i;
  return 0;
}
|}
  in
  let main = Ir.Prog.find_func prog "main" in
  let has_range =
    List.exists
      (fun (t : Ir.Tree.t) ->
        Ir.Reg.Map.exists
          (fun _ (iv : Ir.Interval.t) -> iv.lo = Some 2 && iv.hi = Some 50)
          t.ranges)
      main.trees
  in
  check_bool "loop tree has the induction range [2,50]" true has_range

let test_validated () =
  let srcs =
    [
      "int main() { return 0; }";
      "int f(int x) { return x; } int main() { return f(3); }";
      "int a[4]; int main() { int i; for (i=0;i<4;i=i+1) a[i]=i; return a[2]; }";
    ]
  in
  List.iter (fun s -> ignore (compile s)) srcs

let tests =
  [
    case "return literal" test_return_literal;
    case "arithmetic" test_arith;
    case "variables" test_vars;
    case "float arithmetic" test_float_arith;
    case "comparisons and logic" test_comparisons;
    case "if/else" test_if;
    case "while" test_while;
    case "for" test_for;
    case "arrays" test_arrays;
    case "global arrays" test_global_arrays;
    case "global scalars" test_global_scalar;
    case "calls" test_calls;
    case "recursion" test_recursion;
    case "array parameters" test_array_params;
    case "print builtins" test_print;
    case "call in loop condition" test_call_in_loop_condition;
    case "non-flat if" test_non_flat_if;
    case "return inside if" test_return_inside_if;
    case "loop becomes single tree" test_loop_becomes_single_tree;
    case "induction ranges attached" test_ranges_attached;
    case "validation" test_validated;
  ]
  @ List.map (fun (n, s) -> case ("parse error: " ^ n) (expect_parse_error s)) parse_errors
  @ List.map (fun (n, s) -> case ("type error: " ^ n) (expect_type_error s)) type_errors

(* ------------------------------------------------------------------ *)
(* Lexer details *)

let test_lexer_tokens () =
  let toks src = List.map fst (Lang.Lexer.tokenize src) in
  Alcotest.(check bool)
    "operators" true
    (toks "<= >= == != && || << >>"
    = Lang.Lexer.[ LE; GE; EQ; NE; ANDAND; OROR; SHL; SHR; EOF ]);
  Alcotest.(check bool)
    "floats" true
    (toks "1.5 2. 3e2 4.5e-1 .25"
    = Lang.Lexer.
        [
          FLOAT_LIT 1.5;
          FLOAT_LIT 2.;
          FLOAT_LIT 300.;
          FLOAT_LIT 0.45;
          FLOAT_LIT 0.25;
          EOF;
        ]);
  Alcotest.(check bool)
    "comments vanish" true
    (toks "a /* b c */ d // e\nf" = Lang.Lexer.[ IDENT "a"; IDENT "d"; IDENT "f"; EOF ]);
  Alcotest.(check bool)
    "keywords vs identifiers" true
    (toks "int interior for fortune"
    = Lang.Lexer.[ KW_INT; IDENT "interior"; KW_FOR; IDENT "fortune"; EOF ])

let test_lexer_line_numbers () =
  let toks = Lang.Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map snd toks in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4; 4 ] lines

(* ------------------------------------------------------------------ *)
(* Parser: precedence and associativity, checked semantically *)

let test_precedence () =
  check_int "mul before add" 14 (ret_int "int main() { return 2 + 3 * 4; }");
  check_int "add before shift" 16 (ret_int "int main() { return 1 << 3 + 1; }");
  check_int "shift before compare" 1 (ret_int "int main() { return 1 << 2 > 3; }");
  check_int "compare before and" 1 (ret_int "int main() { return 1 < 2 && 3 < 4; }");
  check_int "band before bor" 6 (ret_int "int main() { return 4 | 6 & 3; }");
  check_int "bxor between" 6 (ret_int "int main() { return 4 ^ 6 & 3; }");
  check_int "unary binds tightest" (-5) (ret_int "int main() { return -2 - 3; }");
  check_int "cast binds before mul" 2
    (ret_int "int main() { return (int)2.9 * 1; }")

let test_associativity () =
  check_int "sub left assoc" 5 (ret_int "int main() { return 10 - 3 - 2; }");
  check_int "div left assoc" 10 (ret_int "int main() { return 100 / 5 / 2; }");
  check_int "mod left assoc" 1 (ret_int "int main() { return 17 % 7 % 2; }")

let test_dangling_else () =
  (* else binds to the nearest if *)
  check_int "dangling else" 3
    (ret_int
       {|
int main() {
  int x;
  x = 0;
  if (1)
    if (0) x = 2;
    else x = 3;
  return x;
}
|})

(* ------------------------------------------------------------------ *)
(* Normalizer structure *)

let test_normalize_flattens_calls () =
  let src =
    "int id(int x) { return x; } int main() { return id(id(1) + id(2)); }"
  in
  check_int "nested call value" 3 (ret_int src);
  (* no TCall survives inside another expression *)
  let tast =
    Spd_lang.Normalize.run
      (Spd_lang.Typecheck.check (Spd_lang.Parser.parse_program src))
  in
  let ok = ref true in
  let rec check_expr (e : Spd_lang.Tast.texpr) ~top =
    match e.node with
    | Spd_lang.Tast.TCall (_, args) ->
        if not top then ok := false;
        List.iter
          (function
            | Spd_lang.Tast.Aexpr a -> check_expr a ~top:false
            | Spd_lang.Tast.Aarray _ -> ())
          args
    | TBinop (_, a, b) ->
        check_expr a ~top:false;
        check_expr b ~top:false
    | TUnop (_, a) | TCast (_, a) | TIndex (_, a) -> check_expr a ~top:false
    | TInt _ | TFloat _ | TVar _ -> ()
  in
  let rec check_stmt (s : Spd_lang.Tast.tstmt) =
    match s with
    | TAssign (_, e) | TExpr e -> check_expr e ~top:true
    | TIf (c, a, b) ->
        check_expr c ~top:false;
        List.iter check_stmt a;
        List.iter check_stmt b
    | TWhile (c, b) ->
        check_expr c ~top:false;
        List.iter check_stmt b
    | TFor { cond; body; _ } ->
        check_expr cond ~top:false;
        List.iter check_stmt body
    | TReturn (Some e) -> check_expr e ~top:false
    | TReturn None -> ()
  in
  List.iter
    (fun (f : Spd_lang.Tast.tfun) -> List.iter check_stmt f.body)
    tast.funs;
  check_bool "calls only in statement position" true !ok

let even_more_tests =
  [
    case "lexer tokens" test_lexer_tokens;
    case "lexer line numbers" test_lexer_line_numbers;
    case "operator precedence" test_precedence;
    case "associativity" test_associativity;
    case "dangling else" test_dangling_else;
    case "normalizer flattens calls" test_normalize_flattens_calls;
  ]

let tests = tests @ even_more_tests
