(** QCheck generator of random mini-C programs.

    The generated programs are terminating by construction (literal loop
    bounds, no recursion), in-bounds by construction (array subscripts are
    wrapped modulo the array size), and always include a helper function
    taking two array parameters that is called once with distinct arrays
    and once with the same array — so the ambiguous references both do and
    do not alias dynamically.  They are used for differential testing of
    the disambiguation pipelines: every pipeline must preserve observable
    behaviour on every generated program. *)

open QCheck.Gen

let ivars = [ "t0"; "t1"; "t2" ]
let arrays = [ "ga"; "gb" ]
let array_size = 24

(* Integer expressions over in-scope variables. [iv] is the loop variable
   in scope, if any. *)
let rec gen_iexpr ~iv depth =
  let leaf =
    oneof
      ([
         map string_of_int (int_range 0 9);
         oneofl ivars;
       ]
      @ match iv with Some v -> [ return v ] | None -> [])
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 3,
          let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
          let* a = gen_iexpr ~iv (depth - 1) in
          let* b = gen_iexpr ~iv (depth - 1) in
          return (Printf.sprintf "(%s %s %s)" a op b) );
        ( 2,
          let* arr = oneofl arrays in
          let* idx = gen_iexpr ~iv (depth - 1) in
          return (Printf.sprintf "%s[((%s) %% %d + %d) %% %d]" arr idx array_size array_size array_size) );
      ]

let gen_cond ~iv =
  let* op = oneofl [ "<"; "<="; "=="; "!="; ">" ] in
  let* a = gen_iexpr ~iv 1 in
  let* b = gen_iexpr ~iv 1 in
  return (Printf.sprintf "%s %s %s" a op b)

let indent n = String.make (2 * n) ' '

let rec gen_stmt ~iv ~depth level =
  let assign =
    let* v = oneofl ivars in
    let* e = gen_iexpr ~iv 2 in
    return (Printf.sprintf "%s%s = %s;\n" (indent level) v e)
  in
  let arr_store =
    let* arr = oneofl arrays in
    let* idx = gen_iexpr ~iv 1 in
    let* e = gen_iexpr ~iv 2 in
    return
      (Printf.sprintf "%s%s[((%s) %% %d + %d) %% %d] = %s;\n" (indent level)
         arr idx array_size array_size array_size e)
  in
  if depth = 0 then oneof [ assign; arr_store ]
  else
    frequency
      [
        (3, assign);
        (3, arr_store);
        ( 2,
          let* c = gen_cond ~iv in
          let* then_ = gen_block ~iv ~depth:(depth - 1) (level + 1) in
          let* else_ = gen_block ~iv ~depth:(depth - 1) (level + 1) in
          return
            (Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n"
               (indent level) c then_ (indent level) else_ (indent level)) );
        ( 2,
          (* a literal-bound loop over the variable not already in use *)
          let var = match iv with None -> "i" | Some _ -> "j" in
          let* bound = int_range 1 8 in
          let* body = gen_block ~iv:(Some var) ~depth:(depth - 1) (level + 1) in
          return
            (Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n%s%s}\n"
               (indent level) var var bound var var body (indent level)) );
      ]

and gen_block ~iv ~depth level =
  let* n = int_range 1 3 in
  let* stmts = list_repeat n (gen_stmt ~iv ~depth level) in
  return (String.concat "" stmts)

(* The helper: a loop over two array parameters with a store-then-load
   pattern, the canonical SpD shape. *)
let gen_helper =
  let* body_expr = gen_iexpr ~iv:(Some "k") 2 in
  return
    (Printf.sprintf
       {|
int helper(int p[], int q[], int n) {
  int k; int s; int t0; int t1; int t2;
  s = 0; t0 = 1; t1 = 2; t2 = 3;
  for (k = 0; k < n; k = k + 1) {
    p[k] = s + %s;
    s = s + q[k] - p[k] / 3;
  }
  return s;
}
|}
       body_expr)

let gen_source : string t =
  let* helper = gen_helper in
  let* body = gen_block ~iv:None ~depth:2 1 in
  let* n_helper = int_range 1 (array_size - 1) in
  return
    (Printf.sprintf
       {|
int ga[%d];
int gb[%d];
%s
int main() {
  int i; int j; int t0; int t1; int t2; int chk;
  i = 0; j = 0; t0 = 5; t1 = 11; t2 = 17; chk = 0;
  for (i = 0; i < %d; i = i + 1) {
    ga[i] = i * 7 %% 13;
    gb[i] = i * 3 + 1;
  }
%s  t0 = helper(ga, gb, %d);
  t1 = helper(ga, ga, %d);
  chk = t0 * 31 + t1;
  for (i = 0; i < %d; i = i + 1) {
    chk = (chk + ga[i] * (i + 1) + gb[i]) %% 1000003;
  }
  return chk;
}
|}
       array_size array_size helper array_size body n_helper n_helper
       array_size)

let arbitrary_source =
  QCheck.make ~print:(fun s -> s) gen_source
