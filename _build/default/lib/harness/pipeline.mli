(** The four disambiguation pipelines of Table 6-4.

    {v
    source --lower--> trees --all-pairs arcs-->            NAIVE
    NAIVE  --GCD/Banerjee (affine forms)-->                STATIC
    STATIC --profiled path probabilities--SpD heuristic--> SPEC
    NAIVE  --profiled alias counts, drop superfluous-->    PERFECT
    v}

    Every prepared program is validated to produce the same observable
    behaviour (return value and printed output) as the NAIVE baseline. *)

module Memarcs = Spd_analysis.Memarcs
module Static = Spd_disambig.Static_disambig
module Heuristic = Spd_core.Heuristic
type kind = Naive | Static | Spec | Perfect
val all : kind list
val name : kind -> string
val pp : Format.formatter -> kind -> unit
type prepared = {
  kind : kind;
  mem_latency : int;
  prog : Spd_ir.Prog.t;
  applications : Heuristic.application list;
}

(** Profile a program: run it once with instrumentation. *)
val profile_of : Spd_ir.Prog.t -> Spd_sim.Profile.t
exception Behaviour_mismatch of string

(** Build pipeline [kind] at [mem_latency] from a lowered program (no arcs
    yet).  [check] (default true) verifies observable equivalence with the
    unoptimized program — the paper validated SpD output the same way. *)
val prepare :
  ?check:bool ->
  ?spd_params:Heuristic.params ->
  ?graft:bool -> mem_latency:int -> kind -> Spd_ir.Prog.t -> prepared

(** Cycle count of a prepared program on [width] functional units. *)
val cycles : prepared -> width:Spd_machine.Descr.width -> int

(** Static code size in operations (Figure 6-4's metric). *)
val code_size : prepared -> int

(** The paper's speedup metric: [cycles_base / cycles_x - 1]. *)
val speedup : base:int -> this:int -> float
