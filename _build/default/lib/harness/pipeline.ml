(** The four disambiguation pipelines of Table 6-4.

    {v
    source --lower--> trees --all-pairs arcs-->            NAIVE
    NAIVE  --GCD/Banerjee (affine forms)-->                STATIC
    STATIC --profiled path probabilities--SpD heuristic--> SPEC
    NAIVE  --profiled alias counts, drop superfluous-->    PERFECT
    v}

    Every prepared program is validated to produce the same observable
    behaviour (return value and printed output) as the NAIVE baseline. *)

open Spd_ir
module Memarcs = Spd_analysis.Memarcs
module Static = Spd_disambig.Static_disambig
module Heuristic = Spd_core.Heuristic

type kind = Naive | Static | Spec | Perfect

let all = [ Naive; Static; Spec; Perfect ]

let name = function
  | Naive -> "NAIVE"
  | Static -> "STATIC"
  | Spec -> "SPEC"
  | Perfect -> "PERFECT"

let pp ppf k = Fmt.string ppf (name k)

type prepared = {
  kind : kind;
  mem_latency : int;
  prog : Prog.t;
  applications : Heuristic.application list;
      (** SpD applications performed (SPEC only) *)
}

(** Profile a program: run it once with instrumentation. *)
let profile_of (prog : Prog.t) : Spd_sim.Profile.t =
  let profile = Spd_sim.Profile.create () in
  ignore (Spd_sim.Interp.run ~profile prog);
  profile

exception Behaviour_mismatch of string

(** Build pipeline [kind] at [mem_latency] from a lowered program (no arcs
    yet).  [check] (default true) verifies observable equivalence with the
    unoptimized program — the paper validated SpD output the same way. *)
let prepare ?(check = true) ?spd_params ?(graft = false) ~mem_latency
    (kind : kind) (lowered : Prog.t) : prepared =
  (* scalar cleanup every pipeline gets: store-to-load forwarding and
     redundant-load elimination, as in the paper's optimizing compiler *)
  let cleaned = Spd_analysis.Forwarding.run lowered in
  (* optional tree grafting (paper section 7): unroll loop trees to expose
     more ambiguous pairs to SpD *)
  let cleaned = if graft then Spd_analysis.Unroll.run cleaned else cleaned in
  let naive = Memarcs.annotate cleaned in
  let prog, applications =
    match kind with
    | Naive -> (naive, [])
    | Static -> (Static.run naive, [])
    | Spec ->
        let static = Static.run naive in
        let profile = profile_of static in
        Heuristic.run ~profile ?params:spd_params ~mem_latency static
    | Perfect ->
        let profile = profile_of naive in
        (Static.perfect ~profile naive, [])
  in
  Prog.validate prog;
  if check then begin
    let expected = Spd_sim.Interp.observe naive in
    let got = Spd_sim.Interp.observe prog in
    if expected <> got then
      raise
        (Behaviour_mismatch
           (Fmt.str "pipeline %s changed program behaviour" (name kind)))
  end;
  { kind; mem_latency; prog; applications }

(** Cycle count of a prepared program on [width] functional units. *)
let cycles (p : prepared) ~(width : Spd_machine.Descr.width) : int =
  let descr =
    { Spd_machine.Descr.width; mem_latency = p.mem_latency }
  in
  Spd_machine.Timing_builder.cycles descr p.prog

(** Static code size in operations (Figure 6-4's metric). *)
let code_size (p : prepared) : int = Prog.code_size p.prog

(** The paper's speedup metric: [cycles_base / cycles_x - 1]. *)
let speedup ~(base : int) ~(this : int) : float =
  (float_of_int base /. float_of_int this) -. 1.0
