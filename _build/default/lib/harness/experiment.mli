(** Experiment driver: prepares and measures benchmark/pipeline/machine
    combinations, memoizing the expensive stages (lowering, profiling,
    SpD, scheduling, simulation) so the table and figure generators can
    share work. *)

module W = Spd_workloads
type key = {
  bench : string;
  latency : int;
  kind : Pipeline.kind;
}
val lowered_cache : (string, Spd_ir.Prog.t) Hashtbl.t
val prep_cache : (key, Pipeline.prepared) Hashtbl.t
val cycles_cache : (key * Spd_machine.Descr.width, int) Hashtbl.t
val memo : ('a, 'b) Hashtbl.t -> 'a -> (unit -> 'b) -> 'b
val lowered : string -> Spd_ir.Prog.t

(** Prepared pipeline for a benchmark at a memory latency (memoized). *)
val prepared :
  bench:string ->
  latency:int -> Pipeline.kind -> Pipeline.prepared

(** Measured cycle count (memoized). *)
val cycles :
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> int

(** Speedup of [kind] over NAIVE, the metric of Figure 6-2. *)
val speedup_over_naive :
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> float

(** Speedup of SPEC over STATIC, the metric of Figure 6-3. *)
val spec_over_static :
  bench:string -> latency:int -> width:Spd_machine.Descr.width -> float

(** SpD application counts by dependence kind (Table 6-3 row). *)
val spd_counts : bench:string -> latency:int -> int * int * int

(** Code growth of SPEC relative to STATIC, as a fraction (Figure 6-4). *)
val code_growth : bench:string -> latency:int -> float
