(** Experiment driver: prepares and measures benchmark/pipeline/machine
    combinations, memoizing the expensive stages (lowering, profiling,
    SpD, scheduling, simulation) so the table and figure generators can
    share work. *)

module W = Spd_workloads

type key = { bench : string; latency : int; kind : Pipeline.kind }

let lowered_cache : (string, Spd_ir.Prog.t) Hashtbl.t = Hashtbl.create 16
let prep_cache : (key, Pipeline.prepared) Hashtbl.t = Hashtbl.create 64

let cycles_cache : (key * Spd_machine.Descr.width, int) Hashtbl.t =
  Hashtbl.create 256

let memo tbl key f =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.replace tbl key v;
      v

let lowered (bench : string) : Spd_ir.Prog.t =
  memo lowered_cache bench (fun () ->
      Spd_lang.Lower.compile (W.Registry.by_name bench).source)

(** Prepared pipeline for a benchmark at a memory latency (memoized). *)
let prepared ~bench ~latency kind : Pipeline.prepared =
  memo prep_cache { bench; latency; kind } (fun () ->
      Pipeline.prepare ~mem_latency:latency kind (lowered bench))

(** Measured cycle count (memoized). *)
let cycles ~bench ~latency kind ~(width : Spd_machine.Descr.width) : int =
  memo cycles_cache ({ bench; latency; kind }, width) (fun () ->
      Pipeline.cycles (prepared ~bench ~latency kind) ~width)

(** Speedup of [kind] over NAIVE, the metric of Figure 6-2. *)
let speedup_over_naive ~bench ~latency kind ~width =
  Pipeline.speedup
    ~base:(cycles ~bench ~latency Pipeline.Naive ~width)
    ~this:(cycles ~bench ~latency kind ~width)

(** Speedup of SPEC over STATIC, the metric of Figure 6-3. *)
let spec_over_static ~bench ~latency ~width =
  Pipeline.speedup
    ~base:(cycles ~bench ~latency Pipeline.Static ~width)
    ~this:(cycles ~bench ~latency Pipeline.Spec ~width)

(** SpD application counts by dependence kind (Table 6-3 row). *)
let spd_counts ~bench ~latency =
  Spd_core.Heuristic.count_by_kind
    (prepared ~bench ~latency Pipeline.Spec).applications

(** Code growth of SPEC relative to STATIC, as a fraction (Figure 6-4). *)
let code_growth ~bench ~latency =
  let base = Pipeline.code_size (prepared ~bench ~latency Pipeline.Static) in
  let spec = Pipeline.code_size (prepared ~bench ~latency Pipeline.Spec) in
  (float_of_int spec /. float_of_int base) -. 1.0
