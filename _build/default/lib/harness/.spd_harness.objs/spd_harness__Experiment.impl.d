lib/harness/experiment.ml: Hashtbl Pipeline Spd_core Spd_ir Spd_lang Spd_machine Spd_workloads
