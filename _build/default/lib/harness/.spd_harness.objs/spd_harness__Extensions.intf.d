lib/harness/extensions.mli: Format Spd_core Spd_workloads
