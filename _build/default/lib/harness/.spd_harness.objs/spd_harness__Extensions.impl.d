lib/harness/extensions.ml: Experiment Fmt List Pipeline Spd_core Spd_machine Spd_workloads String
