lib/harness/pipeline.mli: Format Spd_analysis Spd_core Spd_disambig Spd_ir Spd_machine Spd_sim
