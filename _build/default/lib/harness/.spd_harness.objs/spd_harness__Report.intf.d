lib/harness/report.mli: Format Spd_workloads
