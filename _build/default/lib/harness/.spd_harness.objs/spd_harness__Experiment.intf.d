lib/harness/experiment.mli: Hashtbl Pipeline Spd_ir Spd_machine Spd_workloads
