lib/harness/report.ml: Array Experiment Float Fmt List Pipeline Spd_machine Spd_workloads String
