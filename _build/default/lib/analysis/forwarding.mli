(** Store-to-load forwarding and redundant-load elimination.

    A conservative, syntactic pass any optimizing compiler performs (and
    the paper's LIFE C compiler certainly did): within one tree,

    - a load whose address register was just stored through (with no
      possibly-aliasing store in between) takes the stored value directly;
    - a load from the same address register as an earlier load (with no
      store in between) reuses the earlier result.

    "Possibly aliasing" is judged syntactically: any unguarded store to a
    different address register, or any guarded store at all, invalidates
    everything.  Without this pass, the must-alias reload chains dominate
    every critical path and hide the ambiguous arcs SpD targets. *)

val run_tree : Spd_ir.Tree.t -> Spd_ir.Tree.t

(** Apply forwarding to every tree.  Must run before memory dependence
    arcs are built (it deletes loads). *)
val run : Spd_ir.Prog.t -> Spd_ir.Prog.t
