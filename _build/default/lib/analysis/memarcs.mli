(** Construction of the initial (fully conservative) memory dependence
    arcs of a tree: one arc for every program-ordered pair of memory
    operations of which at least one is a store.  All arcs start out
    [Ambiguous]; the disambiguators refine them. *)

val build_tree : Spd_ir.Tree.t -> Spd_ir.Tree.t

(** Annotate every tree of the program; this produces the NAIVE
    configuration. *)
val annotate : Spd_ir.Prog.t -> Spd_ir.Prog.t
