(** Tree grafting by loop unrolling.

    The paper's section 7 names tree enlargement ("grafting") as the lever
    for exposing more SpD opportunities: trees in integer codes are often
    too small to contain a pair of ambiguous references.  This pass
    implements the loop form of grafting: a canonical self-looping tree

    {v  [pc -> self(args)] [-> after(args0)]  v}

    is replicated in place.  The second body copy reads the back-edge
    arguments of the first, its side effects are additionally guarded by
    the first copy's back-edge condition, and the tree gains a third,
    intermediate exit.  The result is still a decision tree (single entry,
    prioritized exits) with twice the SpD surface.

    Runs before memory-arc construction; arcs are built afresh on the
    enlarged tree. *)


(** Recognize the canonical single-tree loop produced by the frontend. *)
val self_loop :
  Spd_ir.Tree.t ->
  (Spd_ir.Insn.guard * Spd_ir.Reg.t list * Spd_ir.Tree.exit) option
val unroll_once : Spd_ir.Tree.t -> Spd_ir.Tree.t option

(** Unroll every canonical loop tree of the program [factor - 1] times
    (factor 2 = one replication).  Trees larger than [max_tree_size]
    operations are left alone to bound code growth. *)
val run : ?factor:int -> ?max_tree_size:int -> Spd_ir.Prog.t -> Spd_ir.Prog.t
