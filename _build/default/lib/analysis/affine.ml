(** Symbolic affine address analysis.

    Every integer register of a tree is given an affine form

    [c0 + c1*s1 + ... + cn*sn]

    over symbols: tree parameters (opaque), load results (opaque), global
    addresses and the activation frame base.  This is the information the
    static disambiguator's GCD and Banerjee tests consume; it plays the
    role of the linear diophantine subscript equations of the paper's
    section 2.1.

    Registers whose value is not affine (float data, selects, products of
    two non-constants) become opaque symbols themselves, which keeps the
    analysis total: every register has a form. *)

open Spd_ir

type sym =
  | Sreg of Reg.t  (** opaque value: tree parameter or instruction result *)
  | Sglobal of string  (** the address of a global object *)
  | Sframe  (** the activation frame base *)

let compare_sym (a : sym) (b : sym) = Stdlib.compare a b

module Sym_map = Map.Make (struct
  type t = sym

  let compare = compare_sym
end)

type t = { const : int; terms : int Sym_map.t }

let const c = { const = c; terms = Sym_map.empty }
let sym s = { const = 0; terms = Sym_map.add s 1 Sym_map.empty }

let is_const f = Sym_map.is_empty f.terms
let const_value f = if is_const f then Some f.const else None

let norm terms = Sym_map.filter (fun _ c -> c <> 0) terms

let add a b =
  {
    const = a.const + b.const;
    terms =
      norm
        (Sym_map.union (fun _ x y -> Some (x + y)) a.terms b.terms);
  }

let neg a = { const = -a.const; terms = Sym_map.map (fun c -> -c) a.terms }
let sub a b = add a (neg b)

let scale k a =
  if k = 0 then const 0
  else { const = k * a.const; terms = Sym_map.map (fun c -> k * c) a.terms }

let equal a b = a.const = b.const && Sym_map.equal Int.equal a.terms b.terms

let pp_sym ppf = function
  | Sreg r -> Reg.pp ppf r
  | Sglobal g -> Fmt.pf ppf "&%s" g
  | Sframe -> Fmt.string ppf "&frame"

let pp ppf f =
  Fmt.pf ppf "%d" f.const;
  Sym_map.iter (fun s c -> Fmt.pf ppf " + %d*%a" c pp_sym s) f.terms

(* ------------------------------------------------------------------ *)
(* Per-tree analysis *)

type env = t Reg.Map.t

(** Affine form of a register under [env]; unknown registers are opaque. *)
let form_of env r =
  match Reg.Map.find_opt r env with Some f -> f | None -> sym (Sreg r)

(** Compute affine forms for every register defined in the tree.  The
    result maps all parameters and instruction destinations. *)
let analyze (tree : Tree.t) : env =
  let env = ref Reg.Map.empty in
  let bind r f = env := Reg.Map.add r f !env in
  List.iter (fun p -> bind p (sym (Sreg p))) tree.params;
  Array.iter
    (fun (insn : Insn.t) ->
      match insn.dst with
      | None -> ()
      | Some d ->
          let f =
            match (insn.op, insn.srcs) with
            | Opcode.Const (Value.Int v), [] -> const v
            | Opcode.Const (Value.Float _), [] -> sym (Sreg d)
            | Opcode.Addrof (Opcode.Global g), [] -> sym (Sglobal g)
            | Opcode.Addrof (Opcode.Frame off), [] ->
                add (sym Sframe) (const off)
            | Opcode.Ibin Opcode.Add, [ a; b ] ->
                add (form_of !env a) (form_of !env b)
            | Opcode.Ibin Opcode.Sub, [ a; b ] ->
                sub (form_of !env a) (form_of !env b)
            | Opcode.Ineg, [ a ] -> neg (form_of !env a)
            | Opcode.Mov, [ a ] -> form_of !env a
            | Opcode.Ibin Opcode.Mul, [ a; b ] -> (
                let fa = form_of !env a and fb = form_of !env b in
                match (const_value fa, const_value fb) with
                | Some k, _ -> scale k fb
                | _, Some k -> scale k fa
                | None, None -> sym (Sreg d))
            | Opcode.Ibin Opcode.Shl, [ a; b ] -> (
                let fa = form_of !env a and fb = form_of !env b in
                match const_value fb with
                | Some k when k >= 0 && k < 62 -> scale (1 lsl k) fa
                | _ -> sym (Sreg d))
            | _ -> sym (Sreg d)
          in
          bind d f)
    tree.insns;
  !env

(* ------------------------------------------------------------------ *)
(* Ranges and bases *)

(** Interval of the values an affine form may take, given the tree's
    parameter ranges.  Symbols without a known range are unbounded. *)
let range (tree : Tree.t) (f : t) : Interval.t =
  Sym_map.fold
    (fun s c acc ->
      let iv =
        match s with
        | Sreg r -> (
            match Reg.Map.find_opt r tree.ranges with
            | Some iv -> iv
            | None -> Interval.top)
        | Sglobal _ | Sframe -> Interval.top
      in
      Interval.add acc (Interval.scale c iv))
    f.terms (Interval.point f.const)

(** Address-like symbols: known objects plus opaque registers that the
    tree declares to be address parameters. *)
let is_addr_sym (tree : Tree.t) = function
  | Sglobal _ | Sframe -> true
  | Sreg r -> Reg.Set.mem r tree.addr_params

(** Split a form into its address part and its integer part. *)
let split_base tree f =
  let addr, int_part = Sym_map.partition (fun s _ -> is_addr_sym tree s) f.terms in
  (addr, { f with terms = int_part })

(** The base object of an address form, when it is a single known object
    with coefficient one. *)
type base = Known_object of sym | Opaque_pointer of Reg.t | No_base | Mixed

let base_of tree f =
  let addr, _ = split_base tree f in
  match Sym_map.bindings addr with
  | [] -> No_base
  | [ ((Sglobal _ | Sframe) as s, 1) ] -> Known_object s
  | [ (Sreg r, 1) ] -> Opaque_pointer r
  | _ -> Mixed
