(** Store-to-load forwarding and redundant-load elimination.

    A conservative, syntactic pass any optimizing compiler performs (and
    the paper's LIFE C compiler certainly did): within one tree,

    - a load whose address register was just stored through (with no
      possibly-aliasing store in between) takes the stored value directly;
    - a load from the same address register as an earlier load (with no
      store in between) reuses the earlier result.

    "Possibly aliasing" is judged syntactically: any unguarded store to a
    different address register, or any guarded store at all, invalidates
    everything.  Without this pass, the must-alias reload chains dominate
    every critical path and hide the ambiguous arcs SpD targets. *)

open Spd_ir

let run_tree (tree : Tree.t) : Tree.t =
  let subst : Reg.t Reg.Map.t ref = ref Reg.Map.empty in
  let lookup r =
    match Reg.Map.find_opt r !subst with Some r' -> r' | None -> r
  in
  (* available values by address register *)
  let stored : (Reg.t, Reg.t) Hashtbl.t = Hashtbl.create 8 in
  let loaded : (Reg.t, Reg.t) Hashtbl.t = Hashtbl.create 8 in
  let kept = ref [] in
  Array.iter
    (fun (insn : Insn.t) ->
      let insn =
        {
          insn with
          srcs = List.map lookup insn.srcs;
          guard =
            Option.map
              (fun (g : Insn.guard) -> { g with greg = lookup g.greg })
              insn.guard;
        }
      in
      match insn.op with
      | Opcode.Load -> (
          let addr = Insn.addr insn in
          let forwarded =
            match Hashtbl.find_opt stored addr with
            | Some v -> Some v
            | None -> Hashtbl.find_opt loaded addr
          in
          match forwarded with
          | Some v ->
              subst := Reg.Map.add (Option.get insn.dst) v !subst
          | None ->
              Hashtbl.replace loaded addr (Option.get insn.dst);
              kept := insn :: !kept)
      | Opcode.Store ->
          (match insn.guard with
          | None ->
              Hashtbl.reset stored;
              Hashtbl.reset loaded;
              Hashtbl.replace stored (Insn.addr insn) (Insn.store_value insn)
          | Some _ ->
              (* a conditional store may or may not clobber: forget all *)
              Hashtbl.reset stored;
              Hashtbl.reset loaded);
          kept := insn :: !kept
      | _ -> kept := insn :: !kept)
    tree.insns;
  let exits = Array.map (Tree.map_exit_regs lookup) tree.exits in
  { tree with insns = Array.of_list (List.rev !kept); exits }

(** Apply forwarding to every tree.  Must run before memory dependence
    arcs are built (it deletes loads). *)
let run (prog : Prog.t) : Prog.t =
  let prog = Prog.map_trees (fun _ t -> run_tree t) prog in
  Prog.validate prog;
  prog
