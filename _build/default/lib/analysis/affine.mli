(** Symbolic affine address analysis.

    Every integer register of a tree is given an affine form

    [c0 + c1*s1 + ... + cn*sn]

    over symbols: tree parameters (opaque), load results (opaque), global
    addresses and the activation frame base.  This is the information the
    static disambiguator's GCD and Banerjee tests consume; it plays the
    role of the linear diophantine subscript equations of the paper's
    section 2.1.

    Registers whose value is not affine (float data, selects, products of
    two non-constants) become opaque symbols themselves, which keeps the
    analysis total: every register has a form. *)

type sym = Sreg of Spd_ir.Reg.t | Sglobal of string | Sframe

(** the activation frame base *)
val compare_sym : sym -> sym -> int
module Sym_map :
  sig
    type key = sym
    type +!'a t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
type t = { const : int; terms : int Sym_map.t; }
val const : int -> t
val sym : Sym_map.key -> t
val is_const : t -> bool
val const_value : t -> int option
val norm : int Sym_map.t -> int Sym_map.t
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val equal : t -> t -> bool
val pp_sym : Format.formatter -> sym -> unit
val pp : Format.formatter -> t -> unit
type env = t Spd_ir.Reg.Map.t

(** Affine form of a register under [env]; unknown registers are opaque. *)
val form_of : t Spd_ir.Reg.Map.t -> Spd_ir.Reg.Map.key -> t

(** Compute affine forms for every register defined in the tree.  The
    result maps all parameters and instruction destinations. *)
val analyze : Spd_ir.Tree.t -> env

(** Interval of the values an affine form may take, given the tree's
    parameter ranges.  Symbols without a known range are unbounded. *)
val range : Spd_ir.Tree.t -> t -> Spd_ir.Interval.t

(** Address-like symbols: known objects plus opaque registers that the
    tree declares to be address parameters. *)
val is_addr_sym : Spd_ir.Tree.t -> sym -> bool

(** Split a form into its address part and its integer part. *)
val split_base : Spd_ir.Tree.t -> t -> int Sym_map.t * t
type base =
    Known_object of sym
  | Opaque_pointer of Spd_ir.Reg.t
  | No_base
  | Mixed
val base_of : Spd_ir.Tree.t -> t -> base
