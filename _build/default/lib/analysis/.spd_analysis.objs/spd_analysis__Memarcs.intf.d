lib/analysis/memarcs.mli: Spd_ir
