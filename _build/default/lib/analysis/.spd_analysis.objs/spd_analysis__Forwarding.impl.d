lib/analysis/forwarding.ml: Array Hashtbl Insn List Opcode Option Prog Reg Spd_ir Tree
