lib/analysis/ddg.mli: Format Spd_ir
