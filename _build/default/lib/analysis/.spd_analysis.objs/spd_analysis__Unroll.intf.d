lib/analysis/unroll.mli: Spd_ir
