lib/analysis/affine.ml: Array Fmt Insn Int Interval List Map Opcode Reg Spd_ir Stdlib Tree Value
