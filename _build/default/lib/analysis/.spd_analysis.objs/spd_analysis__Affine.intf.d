lib/analysis/affine.mli: Format Seq Spd_ir
