lib/analysis/memarcs.ml: Array Insn List Memdep Prog Spd_ir Tree
