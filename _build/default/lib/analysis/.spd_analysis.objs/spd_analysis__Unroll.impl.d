lib/analysis/unroll.ml: Array Hashtbl Insn List Opcode Option Prog Reg Spd_ir Tree
