lib/analysis/ddg.ml: Array Fmt Hashtbl Insn List Memdep Opcode Spd_ir String Tree
