lib/analysis/forwarding.mli: Spd_ir
