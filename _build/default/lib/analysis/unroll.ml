(** Tree grafting by loop unrolling.

    The paper's section 7 names tree enlargement ("grafting") as the lever
    for exposing more SpD opportunities: trees in integer codes are often
    too small to contain a pair of ambiguous references.  This pass
    implements the loop form of grafting: a canonical self-looping tree

    {v  [pc -> self(args)] [-> after(args0)]  v}

    is replicated in place.  The second body copy reads the back-edge
    arguments of the first, its side effects are additionally guarded by
    the first copy's back-edge condition, and the tree gains a third,
    intermediate exit.  The result is still a decision tree (single entry,
    prioritized exits) with twice the SpD surface.

    Runs before memory-arc construction; arcs are built afresh on the
    enlarged tree. *)

open Spd_ir

(** Recognize the canonical single-tree loop produced by the frontend. *)
let self_loop (tree : Tree.t) :
    (Insn.guard * Reg.t list * Tree.exit) option =
  match tree.exits with
  | [| { xguard = Some g; kind = Jump { target; args } }; fall |]
    when target = tree.id ->
      Some (g, args, fall)
  | _ -> None

let unroll_once (tree : Tree.t) : Tree.t option =
  match self_loop tree with
  | None -> None
  | Some (g1, back_args, fall) ->
      let gen = Reg.Gen.above (Reg.Set.elements (Tree.all_regs tree)) in
      let next_id = ref (Tree.max_insn_id tree + 1) in
      let fresh_id () =
        let id = !next_id in
        incr next_id;
        id
      in
      (* copy-2 substitution: parameters take the back-edge arguments *)
      let subst = Hashtbl.create 16 in
      List.iter2
        (fun p a -> Hashtbl.replace subst p a)
        tree.params back_args;
      let lookup r =
        match Hashtbl.find_opt subst r with Some r' -> r' | None -> r
      in
      (* the first copy's continue condition as a value *)
      let extra = ref [] in
      let g1_val =
        if g1.positive then g1.greg
        else begin
          let d = Reg.Gen.fresh gen in
          extra :=
            Insn.make ~id:(fresh_id ()) Opcode.Not ~dst:(Some d)
              ~srcs:[ g1.greg ]
            :: !extra;
          d
        end
      in
      let guard_with_g1 (guard : Insn.guard option) : Insn.guard option =
        match guard with
        | None -> Some { Insn.greg = g1_val; positive = true }
        | Some g ->
            let gv =
              if g.positive then lookup g.greg
              else begin
                let d = Reg.Gen.fresh gen in
                extra :=
                  Insn.make ~id:(fresh_id ()) Opcode.Not ~dst:(Some d)
                    ~srcs:[ lookup g.greg ]
                  :: !extra;
                d
              end
            in
            let d = Reg.Gen.fresh gen in
            extra :=
              Insn.make ~id:(fresh_id ()) (Opcode.Ibin Opcode.And)
                ~dst:(Some d) ~srcs:[ gv; g1_val ]
              :: !extra;
            Some { Insn.greg = d; positive = true }
      in
      let copy2 =
        Array.to_list tree.insns
        |> List.map (fun (insn : Insn.t) ->
               let guard =
                 if Opcode.has_side_effect insn.op then
                   guard_with_g1 insn.guard
                 else None
               in
               let srcs = List.map lookup insn.srcs in
               let dst =
                 Option.map
                   (fun d ->
                     let d' = Reg.Gen.fresh gen in
                     Hashtbl.replace subst d d';
                     d')
                   insn.dst
               in
               let i =
                 Insn.make ~id:(fresh_id ()) ?guard insn.op ~dst ~srcs
               in
               let pending = List.rev !extra in
               extra := [];
               (pending, i))
      in
      let copy2_insns = List.concat_map (fun (p, i) -> p @ [ i ]) copy2 in
      (* combined continue condition: g1 && g2' *)
      let g2' =
        match self_loop tree with
        | Some (g2, _, _) -> { g2 with Insn.greg = lookup g2.greg }
        | None -> assert false
      in
      let g2_val =
        if g2'.positive then [ (g2'.Insn.greg, []) ]
        else begin
          let d = Reg.Gen.fresh gen in
          [
            ( d,
              [
                Insn.make ~id:(fresh_id ()) Opcode.Not ~dst:(Some d)
                  ~srcs:[ g2'.Insn.greg ];
              ] );
          ]
        end
      in
      let g2_reg, g2_insns = List.hd g2_val in
      let g12 = Reg.Gen.fresh gen in
      let g12_insn =
        Insn.make ~id:(fresh_id ()) (Opcode.Ibin Opcode.And) ~dst:(Some g12)
          ~srcs:[ g1_val; g2_reg ]
      in
      let back_args' = List.map lookup back_args in
      let fall2 = Tree.map_exit_regs lookup fall in
      let insns =
        Array.of_list
          (Array.to_list tree.insns
          @ copy2_insns @ g2_insns @ [ g12_insn ])
      in
      let exits =
        [|
          {
            Tree.xguard = Some { Insn.greg = g12; positive = true };
            kind = Tree.Jump { target = tree.id; args = back_args' };
          };
          { Tree.xguard = Some { g1 with Insn.greg = g1.greg }; kind = fall2.kind };
          fall;
        |]
      in
      let tree' = { tree with insns; exits; arcs = [] } in
      Tree.validate tree';
      Some tree'

(** Unroll every canonical loop tree of the program [factor - 1] times
    (factor 2 = one replication).  Trees larger than [max_tree_size]
    operations are left alone to bound code growth. *)
let run ?(factor = 2) ?(max_tree_size = 120) (prog : Prog.t) : Prog.t =
  let prog' =
    Prog.map_trees
      (fun _ tree ->
        let rec go t k =
          if k <= 1 || Tree.size t > max_tree_size then t
          else match unroll_once t with None -> t | Some t' -> go t' (k - 1)
        in
        go tree factor)
      prog
  in
  Prog.validate prog';
  prog'
