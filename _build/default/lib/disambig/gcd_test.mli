(** The GCD test for linear diophantine equations.

    The dependence equation of two subscripts is [c1*s1 + ... + cn*sn = -c0]
    (the difference of the two affine address forms set to zero).  An
    integer solution exists iff [gcd(c1..cn)] divides [c0]; when it does
    not, the references can never alias (Banerjee, "Dependence Analysis
    for Supercomputing"). *)


(** The GCD test for linear diophantine equations.

    The dependence equation of two subscripts is [c1*s1 + ... + cn*sn = -c0]
    (the difference of the two affine address forms set to zero).  An
    integer solution exists iff [gcd(c1..cn)] divides [c0]; when it does
    not, the references can never alias (Banerjee, "Dependence Analysis
    for Supercomputing"). *)
val gcd : int -> int -> int
val gcd_list : int list -> int

(** [may_have_solution ~coeffs ~const] decides whether
    [sum coeffs_i * x_i + const = 0] can hold for integer [x_i]:

    - no coefficients: a solution exists iff [const = 0];
    - otherwise a solution exists iff [gcd coeffs] divides [const]. *)
val may_have_solution : coeffs:int list -> const:int -> bool
