(** The static alias oracle.

    Combines the distinct-object rule, the GCD test and the Banerjee
    inequalities over symbolic affine address forms, answering for a pair
    of addresses exactly the three-way question of the paper's section 2.2:

    - [No]: never the same address;
    - [Must]: always the same address (the difference is identically 0);
    - [Unknown p]: possibly aliased, with an estimated alias probability
      when the subscript equation admits one. *)

module Affine = Spd_analysis.Affine
type answer = No | Must | Unknown of float option
val equal_answer : answer -> answer -> bool
val pp_answer : Format.formatter -> answer -> unit

(** Compare two affine address forms within a tree. *)
val query_forms : Spd_ir.Tree.t -> Affine.t -> Affine.t -> answer

(** Compare the addresses of two memory instructions of [tree] under the
    affine environment [env] (from {!Spd_analysis.Affine.analyze}). *)
val query :
  Spd_ir.Tree.t ->
  Affine.t Spd_ir.Reg.Map.t -> Spd_ir.Insn.t -> Spd_ir.Insn.t -> answer
