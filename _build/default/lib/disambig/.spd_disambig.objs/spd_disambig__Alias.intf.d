lib/disambig/alias.mli: Format Spd_analysis Spd_ir
