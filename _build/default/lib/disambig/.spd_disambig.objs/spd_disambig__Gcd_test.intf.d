lib/disambig/gcd_test.mli:
