lib/disambig/static_disambig.mli: Spd_analysis Spd_ir Spd_sim
