lib/disambig/static_disambig.ml: Alias List Memdep Prog Spd_analysis Spd_ir Spd_sim Tree
