lib/disambig/banerjee.ml: Interval Reg Spd_analysis Spd_ir Tree
