lib/disambig/alias.ml: Banerjee Fmt Gcd_test Insn Int List Spd_analysis Spd_ir Tree
