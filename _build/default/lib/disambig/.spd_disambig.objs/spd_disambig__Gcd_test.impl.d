lib/disambig/gcd_test.ml: List
