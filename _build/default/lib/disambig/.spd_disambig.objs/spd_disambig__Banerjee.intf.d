lib/disambig/banerjee.mli: Spd_analysis Spd_ir
