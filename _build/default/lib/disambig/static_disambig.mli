(** The STATIC disambiguator: refine every memory dependence arc of a
    program using the {!Alias} oracle (GCD/Banerjee over affine forms).

    Arcs proven independent are marked [Removed By_static]; arcs proven
    always-aliasing become [Must]; the rest stay [Ambiguous], annotated
    with an alias probability when the oracle can compute one. *)

module Affine = Spd_analysis.Affine
type stats = {
  mutable proven_no : int;
  mutable proven_must : int;
  mutable unknown : int;
}
val refine_tree : ?stats:stats -> Spd_ir.Tree.t -> Spd_ir.Tree.t
val run : ?stats:stats -> Spd_ir.Prog.t -> Spd_ir.Prog.t

(** The PERFECT disambiguator lives here too: given a profile from an
    instrumented run, remove every arc whose references never dynamically
    hit the same address (the paper's "superfluous arcs").  As in the
    paper this is an optimistic oracle — its answers are specific to the
    profiled input. *)
val perfect : profile:Spd_sim.Profile.t -> Spd_ir.Prog.t -> Spd_ir.Prog.t
