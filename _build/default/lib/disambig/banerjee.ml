(** The Banerjee bounds test.

    Where the GCD test reasons over unrestricted integers, the Banerjee
    inequalities bound the dependence-equation difference using the known
    ranges of the symbols (for us: induction variables with static loop
    bounds).  If the interval of [f1 - f2] excludes zero, the references
    are independent. *)

open Spd_ir
module Affine = Spd_analysis.Affine

(** Interval of an affine difference under the tree's parameter ranges. *)
let bounds (tree : Tree.t) (diff : Affine.t) : Interval.t =
  Affine.range tree diff

(** True when the bounds prove the difference never vanishes. *)
let proves_independent tree diff =
  Interval.excludes_zero (bounds tree diff)

(** Exact refinement for a single-symbol difference [c1*s + c0] with a
    finite range for [s]: either pinpoint the unique solution (returning
    the alias probability [1 / |range|] under a uniform traversal of the
    range) or prove independence.

    Returns [None] when the difference does not have this shape. *)
let single_symbol_probability (tree : Tree.t) (diff : Affine.t) : [ `No | `Prob of float ] option =
  match Affine.Sym_map.bindings diff.terms with
  | [ (s, c1) ] -> (
      let iv =
        match s with
        | Affine.Sreg r -> (
            match Reg.Map.find_opt r tree.ranges with
            | Some iv -> iv
            | None -> Interval.top)
        | Affine.Sglobal _ | Affine.Sframe -> Interval.top
      in
      match Interval.cardinal iv with
      | None -> None
      | Some card when card <= 0 -> Some `No
      | Some card ->
          if diff.const mod c1 <> 0 then Some `No
          else
            let sol = -diff.const / c1 in
            if Interval.contains iv sol then
              Some (`Prob (1.0 /. float_of_int card))
            else Some `No)
  | _ -> None
