(** The Banerjee bounds test.

    Where the GCD test reasons over unrestricted integers, the Banerjee
    inequalities bound the dependence-equation difference using the known
    ranges of the symbols (for us: induction variables with static loop
    bounds).  If the interval of [f1 - f2] excludes zero, the references
    are independent. *)

module Affine = Spd_analysis.Affine

(** Interval of an affine difference under the tree's parameter ranges. *)
val bounds : Spd_ir.Tree.t -> Affine.t -> Spd_ir.Interval.t

(** True when the bounds prove the difference never vanishes. *)
val proves_independent : Spd_ir.Tree.t -> Affine.t -> bool

(** Exact refinement for a single-symbol difference [c1*s + c0] with a
    finite range for [s]: either pinpoint the unique solution (returning
    the alias probability [1 / |range|] under a uniform traversal of the
    range) or prove independence.

    Returns [None] when the difference does not have this shape. *)
val single_symbol_probability :
  Spd_ir.Tree.t -> Affine.t -> [ `No | `Prob of float ] option
