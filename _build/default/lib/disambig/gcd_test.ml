(** The GCD test for linear diophantine equations.

    The dependence equation of two subscripts is [c1*s1 + ... + cn*sn = -c0]
    (the difference of the two affine address forms set to zero).  An
    integer solution exists iff [gcd(c1..cn)] divides [c0]; when it does
    not, the references can never alias (Banerjee, "Dependence Analysis
    for Supercomputing"). *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let gcd_list = function
  | [] -> 0
  | x :: rest -> List.fold_left gcd (abs x) rest

(** [may_have_solution ~coeffs ~const] decides whether
    [sum coeffs_i * x_i + const = 0] can hold for integer [x_i]:

    - no coefficients: a solution exists iff [const = 0];
    - otherwise a solution exists iff [gcd coeffs] divides [const]. *)
let may_have_solution ~coeffs ~const =
  match coeffs with
  | [] -> const = 0
  | _ ->
      let g = gcd_list coeffs in
      if g = 0 then const = 0 else const mod g = 0
