(** Runtime scalar values of the simulated machine.

    The LIFE-style machine we model is word oriented: every register and
    every memory word holds either a (boxed-width) integer or an IEEE
    double.  Addresses are plain integers (word addressed). *)

type t = Int of int | Float of float
val zero : t
val one : t
val of_bool : bool -> t
val is_true : t -> bool

(** [to_int v] reads [v] as an integer.  Floats are truncated, matching the
    C semantics of an implicit (int) conversion. *)
val to_int : t -> int

(** [to_float v] reads [v] as a float, converting integers. *)
val to_float : t -> float
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
