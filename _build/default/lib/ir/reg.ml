(** Virtual registers.

    Registers are per-function.  Within a single decision tree every
    register is assigned at most once ([Tree.validate] enforces this);
    across trees of the same activation the register file is persistent and
    updated by the parallel copies performed at tree transitions. *)

type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Fun.id

let pp ppf r = Fmt.pf ppf "r%d" r
let to_string r = Fmt.str "%a" pp r

module Set = Set.Make (Int)
module Map = Map.Make (Int)

(** Fresh-register generators.  One generator per function being built or
    transformed; [dub] builds a generator that continues above every
    register already used by an existing function. *)
module Gen = struct
  type reg = t
  type t = { mutable next : int }

  let create ?(from = 0) () = { next = from }

  let fresh t =
    let r = t.next in
    t.next <- t.next + 1;
    r

  (** [above regs] is a generator producing registers strictly greater than
      any element of [regs]. *)
  let above (regs : reg list) =
    let top = List.fold_left (fun acc r -> max acc r) (-1) regs in
    create ~from:(top + 1) ()
end
