(** Decision trees: the compilation and scheduling unit.

    A decision tree is the if-converted, flattened form of the largest
    single-entry acyclic group of basic blocks (paper section 4.1).  It
    consists of:

    - an ordered array of guarded instructions.  Order is the sequential
      ("original program") order and is the ground truth for memory
      semantics; register flow is single-assignment so any topological
      order consistent with the dependence arcs is equivalent;
    - a prioritized array of exits.  During a traversal the first exit (in
      array order) whose guard evaluates true is taken; the final exit is
      unconditional.  Exits carry block arguments: a parallel copy into the
      parameters of the successor tree;
    - the set of memory dependence arcs between its memory operations,
      which the disambiguators refine;
    - static value ranges for its parameters (loop induction variables with
      known bounds), consumed by the Banerjee test. *)

type exit_kind =
  | Jump of { target : int; args : Reg.t list }
      (** continue at tree [target] of the same function *)
  | Call of {
      callee : string;
      call_args : Reg.t list;
      ret : Reg.t option;
          (** register of the current activation receiving the result *)
      return_to : int;
      cont_args : Reg.t list;
          (** block arguments for [return_to], evaluated before the call *)
    }
  | Return of { value : Reg.t option }

type exit = { xguard : Insn.guard option; kind : exit_kind }

type t = {
  id : int;
  name : string;
  params : Reg.t list;
  insns : Insn.t array;
  exits : exit array;
  arcs : Memdep.t list;
  ranges : Interval.t Reg.Map.t;
  addr_params : Reg.Set.t;
      (** parameters known to hold object addresses (array parameters);
          the address analysis treats them as opaque base symbols *)
}

let make ~id ~name ~params ~insns ~exits ~arcs ~ranges
    ?(addr_params = Reg.Set.empty) () =
  { id; name; params; insns; exits; arcs; ranges; addr_params }

(* ------------------------------------------------------------------ *)
(* Accessors *)

let size t = Array.length t.insns + Array.length t.exits
(** Code size in operations, the metric of the paper's Figure 6-4 (exit
    branches count as operations; no-ops do not exist in this count). *)

let insn_index t id =
  let found = ref (-1) in
  Array.iteri (fun i insn -> if insn.Insn.id = id then found := i) t.insns;
  if !found < 0 then invalid_arg "Tree.insn_index: unknown instruction id"
  else !found

let insn_by_id t id = t.insns.(insn_index t id)

let mem_insns t =
  Array.to_list t.insns |> List.filter Insn.is_mem

let max_insn_id t =
  Array.fold_left (fun acc i -> max acc i.Insn.id) (-1) t.insns

let regs_of_exit_kind = function
  | Jump { args; _ } -> args
  | Call { call_args; cont_args; _ } -> call_args @ cont_args
  | Return { value = Some v } -> [ v ]
  | Return { value = None } -> []

let exit_uses (e : exit) =
  let g = match e.xguard with None -> [] | Some g -> [ g.Insn.greg ] in
  g @ regs_of_exit_kind e.kind

(** Every register mentioned anywhere in the tree. *)
let all_regs t =
  let acc = ref Reg.Set.empty in
  let add r = acc := Reg.Set.add r !acc in
  List.iter add t.params;
  Array.iter
    (fun i ->
      List.iter add (Insn.uses i);
      List.iter add (Insn.defs i))
    t.insns;
  Array.iter (fun e -> List.iter add (exit_uses e)) t.exits;
  !acc

(** Ambiguous (still-removable) arcs. *)
let ambiguous_arcs t = List.filter Memdep.is_ambiguous t.arcs

let active_arcs t = List.filter Memdep.is_active t.arcs

(** Rewrite every register mentioned by an exit through [lookup]. *)
let map_exit_regs (lookup : Reg.t -> Reg.t) (e : exit) : exit =
  let xguard =
    Option.map
      (fun (g : Insn.guard) -> { g with Insn.greg = lookup g.greg })
      e.xguard
  in
  let kind =
    match e.kind with
    | Jump { target; args } -> Jump { target; args = List.map lookup args }
    | Call { callee; call_args; ret; return_to; cont_args } ->
        Call
          {
            callee;
            call_args = List.map lookup call_args;
            ret;
            return_to;
            cont_args = List.map lookup cont_args;
          }
    | Return { value } -> Return { value = Option.map lookup value }
  in
  { xguard; kind }

(* ------------------------------------------------------------------ *)
(* Validation *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(** [validate t] checks the structural invariants listed in the module
    documentation and raises {!Invalid} describing the first violation. *)
let validate t =
  let n = Array.length t.insns in
  (* instruction ids unique *)
  let ids = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      if Hashtbl.mem ids i.Insn.id then
        fail "tree %s: duplicate instruction id %d" t.name i.Insn.id;
      Hashtbl.add ids i.Insn.id ())
    t.insns;
  (* single assignment, defs disjoint from params, def-before-use *)
  let defined = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace defined p ()) t.params;
  let param_set = Reg.Set.of_list t.params in
  Array.iter
    (fun i ->
      List.iter
        (fun u ->
          if not (Hashtbl.mem defined u) then
            fail "tree %s: insn #%d uses undefined %a" t.name i.Insn.id
              Reg.pp u)
        (Insn.uses i);
      List.iter
        (fun d ->
          if Reg.Set.mem d param_set then
            fail "tree %s: insn #%d redefines parameter %a" t.name i.Insn.id
              Reg.pp d;
          if Hashtbl.mem defined d then
            fail "tree %s: insn #%d redefines %a" t.name i.Insn.id Reg.pp d;
          Hashtbl.replace defined d ())
        (Insn.defs i))
    t.insns;
  (* guards only on side-effecting instructions *)
  Array.iter
    (fun i ->
      if Option.is_some i.Insn.guard && not (Opcode.has_side_effect i.Insn.op)
      then
        fail "tree %s: insn #%d is pure but guarded" t.name i.Insn.id)
    t.insns;
  (* exits: at least one; last unconditional; uses defined *)
  let nx = Array.length t.exits in
  if nx = 0 then fail "tree %s: no exits" t.name;
  if Option.is_some t.exits.(nx - 1).xguard then
    fail "tree %s: last exit must be unconditional" t.name;
  Array.iter
    (fun e ->
      List.iter
        (fun u ->
          if not (Hashtbl.mem defined u) then
            fail "tree %s: exit uses undefined %a" t.name Reg.pp u)
        (exit_uses e))
    t.exits;
  (* arcs reference memory instructions, earlier -> later *)
  List.iter
    (fun (a : Memdep.t) ->
      let check_mem id =
        match Hashtbl.mem ids id with
        | false -> fail "tree %s: arc references unknown insn #%d" t.name id
        | true ->
            if not (Insn.is_mem (insn_by_id t id)) then
              fail "tree %s: arc endpoint #%d is not a memory op" t.name id
      in
      check_mem a.src;
      check_mem a.dst;
      if insn_index t a.src >= insn_index t a.dst then
        fail "tree %s: arc #%d -> #%d not in program order" t.name a.src
          a.dst)
    t.arcs;
  ignore n

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_exit ppf (e : exit) =
  let g ppf = Insn.pp_guard ppf e.xguard in
  match e.kind with
  | Jump { target; args } ->
      Fmt.pf ppf "%tjump t%d(%a)" g target Fmt.(list ~sep:(any ", ") Reg.pp) args
  | Call { callee; call_args; ret; return_to; cont_args } ->
      Fmt.pf ppf "%tcall %s(%a) -> %a, resume t%d(%a)" g callee
        Fmt.(list ~sep:(any ", ") Reg.pp)
        call_args
        Fmt.(option ~none:(any "_") Reg.pp)
        ret return_to
        Fmt.(list ~sep:(any ", ") Reg.pp)
        cont_args
  | Return { value } ->
      Fmt.pf ppf "%treturn %a" g Fmt.(option ~none:(any "") Reg.pp) value

let pp ppf t =
  Fmt.pf ppf "@[<v>tree t%d %s(%a):@," t.id t.name
    Fmt.(list ~sep:(any ", ") Reg.pp)
    t.params;
  Array.iter (fun i -> Fmt.pf ppf "  #%-3d %a@," i.Insn.id Insn.pp i) t.insns;
  Array.iter (fun e -> Fmt.pf ppf "  %a@," pp_exit e) t.exits;
  if t.arcs <> [] then begin
    Fmt.pf ppf "  arcs:@,";
    List.iter (fun a -> Fmt.pf ppf "    %a@," Memdep.pp a) t.arcs
  end;
  Fmt.pf ppf "@]"
