(** Guarded instructions.

    An instruction optionally carries a guard: a boolean register plus a
    polarity.  In this machine model only side-effecting operations
    (stores) are guarded — pure operations execute speculatively and their
    results are merged with {!Opcode.Select} — which keeps the
    interpretation of a decision tree simple: evaluate everything, commit
    stores whose guard holds. *)

type guard = { greg : Reg.t; positive : bool }

type t = {
  id : int;  (** unique within the enclosing tree *)
  op : Opcode.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  guard : guard option;
}

let make ~id ?guard op ~dst ~srcs =
  assert (List.length srcs = Opcode.arity op);
  assert (Option.is_some dst = Opcode.has_dst op);
  { id; op; dst; srcs; guard }

(** All registers read by the instruction, including its guard. *)
let uses i =
  match i.guard with None -> i.srcs | Some g -> g.greg :: i.srcs

let defs i = match i.dst with None -> [] | Some d -> [ d ]

let is_store i = i.op = Opcode.Store
let is_load i = i.op = Opcode.Load
let is_mem i = Opcode.is_mem i.op

(** Address register of a memory operation. *)
let addr i =
  match (i.op, i.srcs) with
  | Opcode.Load, [ a ] | Opcode.Store, [ a; _ ] -> a
  | _ -> invalid_arg "Insn.addr: not a memory operation"

(** Value register stored by a store. *)
let store_value i =
  match (i.op, i.srcs) with
  | Opcode.Store, [ _; v ] -> v
  | _ -> invalid_arg "Insn.store_value: not a store"

let pp_guard ppf = function
  | None -> ()
  | Some { greg; positive } ->
      Fmt.pf ppf "(%s%a) " (if positive then "" else "!") Reg.pp greg

let pp ppf i =
  let pp_dst ppf = function
    | Some d -> Fmt.pf ppf "%a = " Reg.pp d
    | None -> ()
  in
  Fmt.pf ppf "%a%a%a %a" pp_guard i.guard pp_dst i.dst Opcode.pp i.op
    Fmt.(list ~sep:(any ", ") Reg.pp)
    i.srcs
