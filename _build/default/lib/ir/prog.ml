(** Whole programs: functions made of decision trees, plus global data.

    Functions use a conventional activation model: each call pushes a fresh
    register file and a frame of [frame_words] words for local arrays.
    Scalars live in registers and flow between trees through block
    arguments. *)

type global = {
  gname : string;
  words : int;  (** size in memory words *)
  ginit : Value.t array;  (** initial values; padded with Int 0 *)
}

type func = {
  fname : string;
  fparams : Reg.t list;  (** also the parameters of the entry tree *)
  frame_words : int;
  entry : int;
  trees : Tree.t list;
}

type t = {
  funcs : (string * func) list;  (** in definition order *)
  globals : global list;
  main : string;
}

(** Built-in procedures implemented directly by the simulator. *)
let builtins = [ ("print_int", 1); ("print_float", 1) ]

let is_builtin name = List.mem_assoc name builtins

let find_func t name =
  match List.assoc_opt name t.funcs with
  | Some f -> f
  | None -> invalid_arg (Fmt.str "Prog.find_func: unknown function %s" name)

let find_tree (f : func) id =
  match List.find_opt (fun (tr : Tree.t) -> tr.id = id) f.trees with
  | Some tr -> tr
  | None ->
      invalid_arg (Fmt.str "Prog.find_tree: no tree %d in %s" id f.fname)

let find_global t name =
  match List.find_opt (fun g -> g.gname = name) t.globals with
  | Some g -> g
  | None -> invalid_arg (Fmt.str "Prog.find_global: unknown global %s" name)

(** [map_trees f t] rebuilds the program with every tree replaced by
    [f func_name tree]; used by the disambiguation pipelines. *)
let map_trees f t =
  let funcs =
    List.map
      (fun (name, fn) ->
        (name, { fn with trees = List.map (f name) fn.trees }))
      t.funcs
  in
  { t with funcs }

let iter_trees f t =
  List.iter (fun (name, fn) -> List.iter (f name) fn.trees) t.funcs

(** Total static code size in operations (paper's Figure 6-4 metric). *)
let code_size t =
  let n = ref 0 in
  iter_trees (fun _ tr -> n := !n + Tree.size tr) t;
  !n

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let validate t =
  if not (List.mem_assoc t.main t.funcs) then
    fail "program: missing main function %s" t.main;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun g ->
      if Hashtbl.mem seen g.gname then fail "duplicate global %s" g.gname;
      Hashtbl.add seen g.gname ();
      if g.words <= 0 then fail "global %s has size %d" g.gname g.words;
      if Array.length g.ginit > g.words then
        fail "global %s: initializer larger than object" g.gname)
    t.globals;
  List.iter
    (fun (name, f) ->
      if name <> f.fname then fail "function table inconsistency at %s" name;
      let tree_ids = List.map (fun (tr : Tree.t) -> tr.id) f.trees in
      let params_of id = (find_tree f id).params in
      if not (List.mem f.entry tree_ids) then
        fail "%s: entry tree %d missing" name f.entry;
      if params_of f.entry <> f.fparams then
        fail "%s: entry tree parameters differ from function parameters" name;
      List.iter
        (fun (tr : Tree.t) ->
          (try Tree.validate tr
           with Tree.Invalid msg -> fail "%s: %s" name msg);
          Array.iter
            (fun (e : Tree.exit) ->
              let check_target ?ret target args =
                if not (List.mem target tree_ids) then
                  fail "%s: tree %d jumps to unknown tree %d" name tr.id
                    target;
                (* a call continuation has one extra trailing parameter
                   receiving the return value *)
                let want = List.length args + (match ret with Some _ -> 1 | None -> 0) in
                let tparams = params_of target in
                if List.length tparams <> want then
                  fail "%s: tree %d -> %d argument count mismatch" name tr.id
                    target;
                match ret with
                | Some r ->
                    if List.nth tparams (want - 1) <> r then
                      fail
                        "%s: tree %d call return register is not the \
                         continuation's trailing parameter"
                        name tr.id
                | None -> ()
              in
              match e.kind with
              | Tree.Jump { target; args } -> check_target target args
              | Tree.Call { callee; call_args; ret; return_to; cont_args } ->
                  (match List.assoc_opt callee builtins with
                  | Some arity ->
                      if List.length call_args <> arity then
                        fail "%s: builtin %s arity mismatch" name callee
                  | None -> (
                      match List.assoc_opt callee t.funcs with
                      | None -> fail "%s: call to unknown %s" name callee
                      | Some g ->
                          if
                            List.length call_args <> List.length g.fparams
                          then fail "%s: call to %s arity mismatch" name callee));
                  check_target ?ret return_to cont_args
              | Tree.Return _ -> ())
            tr.exits)
        f.trees)
    t.funcs

let pp ppf t =
  List.iter
    (fun g -> Fmt.pf ppf "global %s[%d]@." g.gname g.words)
    t.globals;
  List.iter
    (fun (_, f) ->
      Fmt.pf ppf "@.func %s(%a) frame=%d entry=t%d@." f.fname
        Fmt.(list ~sep:(any ", ") Reg.pp)
        f.fparams f.frame_words f.entry;
      List.iter (fun tr -> Fmt.pf ppf "%a@." Tree.pp tr) f.trees)
    t.funcs
