(** Operation set of the target machine.

    The operation repertoire follows the LIFE machine model of the paper:
    universal functional units executing integer/float ALU operations,
    compares, guarded selects, loads and stores.  Branches are not
    instructions; they are the prioritized exits of a decision tree (see
    {!Tree}).

    Latencies implement Table 6-1 of the paper; memory latency is a
    parameter (2 or 6 cycles in the experiments). *)

type ibin =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

type icmp = Eq | Ne | Lt | Le | Gt | Ge

type fbin = Fadd | Fsub | Fmul | Fdiv

type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

(** Address bases resolvable only by the runtime: the address of a global
    object, or a slot in the current activation frame.  Kept symbolic in
    the IR so that the static disambiguator can reason about object
    identities. *)
type base =
  | Global of string
  | Frame of int  (** word offset inside the current activation frame *)

type t =
  | Ibin of ibin
  | Icmp of icmp
  | Fbin of fbin
  | Fcmp of fcmp
  | Not  (** logical negation: 0 -> 1, non-zero -> 0 *)
  | Ineg
  | Fneg
  | Mov
  | Select  (** [Select p a b] = if p then a else b; the guarded merge *)
  | Const of Value.t
  | Addrof of base  (** materialize the address of an object *)
  | Itof
  | Ftoi
  | Load  (** srcs = [address] *)
  | Store  (** srcs = [address; value]; the only side-effecting op *)

(** Number of register sources each opcode consumes. *)
let arity = function
  | Ibin _ | Fbin _ | Icmp _ | Fcmp _ -> 2
  | Not | Ineg | Fneg | Mov | Itof | Ftoi | Load -> 1
  | Select -> 3
  | Const _ | Addrof _ -> 0
  | Store -> 2

let has_dst = function Store -> false | _ -> true

(** Only stores modify state that survives a cancelled guard; everything
    else is freely speculable in this machine model (paper section 4.1). *)
let has_side_effect = function Store -> true | _ -> false

let is_mem = function Load | Store -> true | _ -> false

(** Latency in cycles, per Table 6-1.  [mem_latency] is the load/store
    latency of the modelled memory system. *)
let latency ~mem_latency = function
  | Ibin Mul -> 3
  | Ibin Div | Ibin Rem | Fbin Fdiv -> 7
  | Fcmp _ -> 1
  | Ibin _ | Icmp _ | Not | Ineg | Mov | Select | Const _ | Addrof _ -> 1
  | Fbin _ | Fneg | Itof | Ftoi -> 3
  | Load | Store -> mem_latency

(** Latency of a decision-tree exit branch, per Table 6-1. *)
let branch_latency = 2

let pp_ibin ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div -> "div"
    | Rem -> "rem"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Shl -> "shl"
    | Shr -> "shr")

let pp_icmp ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "cmpeq"
    | Ne -> "cmpne"
    | Lt -> "cmplt"
    | Le -> "cmple"
    | Gt -> "cmpgt"
    | Ge -> "cmpge")

let pp_fbin ppf op =
  Fmt.string ppf
    (match op with
    | Fadd -> "fadd"
    | Fsub -> "fsub"
    | Fmul -> "fmul"
    | Fdiv -> "fdiv")

let pp_fcmp ppf op =
  Fmt.string ppf
    (match op with
    | Feq -> "fcmpeq"
    | Fne -> "fcmpne"
    | Flt -> "fcmplt"
    | Fle -> "fcmple"
    | Fgt -> "fcmpgt"
    | Fge -> "fcmpge")

let pp_base ppf = function
  | Global g -> Fmt.pf ppf "&%s" g
  | Frame off -> Fmt.pf ppf "&frame[%d]" off

let pp ppf = function
  | Ibin op -> pp_ibin ppf op
  | Icmp op -> pp_icmp ppf op
  | Fbin op -> pp_fbin ppf op
  | Fcmp op -> pp_fcmp ppf op
  | Not -> Fmt.string ppf "not"
  | Ineg -> Fmt.string ppf "neg"
  | Fneg -> Fmt.string ppf "fneg"
  | Mov -> Fmt.string ppf "mov"
  | Select -> Fmt.string ppf "select"
  | Const v -> Fmt.pf ppf "const %a" Value.pp v
  | Addrof b -> Fmt.pf ppf "addrof %a" pp_base b
  | Itof -> Fmt.string ppf "itof"
  | Ftoi -> Fmt.string ppf "ftoi"
  | Load -> Fmt.string ppf "load"
  | Store -> Fmt.string ppf "store"
