(** Guarded instructions.

    An instruction optionally carries a guard: a boolean register plus a
    polarity.  In this machine model only side-effecting operations
    (stores) are guarded — pure operations execute speculatively and their
    results are merged with {!Opcode.Select} — which keeps the
    interpretation of a decision tree simple: evaluate everything, commit
    stores whose guard holds. *)

type guard = { greg : Reg.t; positive : bool; }
type t = {
  id : int;
  op : Opcode.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  guard : guard option;
}
val make :
  id:int ->
  ?guard:guard ->
  Opcode.t -> dst:Reg.t option -> srcs:Reg.t list -> t

(** All registers read by the instruction, including its guard. *)
val uses : t -> Reg.t list
val defs : t -> Reg.t list
val is_store : t -> bool
val is_load : t -> bool
val is_mem : t -> bool

(** Address register of a memory operation. *)
val addr : t -> Reg.t

(** Value register stored by a store. *)
val store_value : t -> Reg.t
val pp_guard : Format.formatter -> guard option -> unit
val pp : Format.formatter -> t -> unit
