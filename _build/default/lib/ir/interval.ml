(** Integer intervals with open ends.

    Used to annotate live-in registers of a tree with statically known
    value ranges (e.g. a for-loop induction variable with constant bounds),
    which the Banerjee test consumes. *)

type bound = int option
(** [None] is the corresponding infinity. *)

type t = { lo : bound; hi : bound }

let top = { lo = None; hi = None }
let make lo hi = { lo; hi }
let point n = { lo = Some n; hi = Some n }
let of_bounds ~lo ~hi = { lo = Some lo; hi = Some hi }

let is_bounded t = Option.is_some t.lo && Option.is_some t.hi

(** Number of integers in the interval, when finite. *)
let cardinal t =
  match (t.lo, t.hi) with
  | Some lo, Some hi -> if hi < lo then Some 0 else Some (hi - lo + 1)
  | _ -> None

let contains t n =
  (match t.lo with None -> true | Some lo -> lo <= n)
  && match t.hi with None -> true | Some hi -> n <= hi

let add_bound a b =
  match (a, b) with Some x, Some y -> Some (x + y) | _ -> None

(* Multiplying a bound by a scalar flips lo/hi when the scalar is
   negative; the caller handles the flip. *)
let scale_bound c = function None -> None | Some x -> Some (c * x)

let add a b = { lo = add_bound a.lo b.lo; hi = add_bound a.hi b.hi }

let neg a =
  {
    lo = (match a.hi with None -> None | Some h -> Some (-h));
    hi = (match a.lo with None -> None | Some l -> Some (-l));
  }

let scale c a =
  if c = 0 then point 0
  else if c > 0 then { lo = scale_bound c a.lo; hi = scale_bound c a.hi }
  else { lo = scale_bound c a.hi; hi = scale_bound c a.lo }

let shift c a = add (point c) a

(** True when the interval certainly excludes zero. *)
let excludes_zero t =
  (match t.lo with Some lo when lo > 0 -> true | _ -> false)
  || match t.hi with Some hi when hi < 0 -> true | _ -> false

let pp_bound inf ppf = function
  | None -> Fmt.string ppf inf
  | Some n -> Fmt.int ppf n

let pp ppf t =
  Fmt.pf ppf "[%a,%a]" (pp_bound "-inf") t.lo (pp_bound "+inf") t.hi
