lib/ir/reg.mli: Format Int Map Seq Set
