lib/ir/tree.mli: Format Insn Interval Memdep Reg
