lib/ir/interval.mli: Format
