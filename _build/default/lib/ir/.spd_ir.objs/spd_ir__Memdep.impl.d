lib/ir/memdep.ml: Fmt
