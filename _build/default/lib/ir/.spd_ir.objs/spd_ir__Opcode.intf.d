lib/ir/opcode.mli: Format Value
