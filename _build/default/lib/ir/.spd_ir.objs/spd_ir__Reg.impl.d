lib/ir/reg.ml: Fmt Fun Int List Map Set
