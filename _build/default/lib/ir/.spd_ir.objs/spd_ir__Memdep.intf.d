lib/ir/memdep.mli: Format
