lib/ir/value.mli: Format
