lib/ir/opcode.ml: Fmt Value
