lib/ir/value.ml: Float Fmt
