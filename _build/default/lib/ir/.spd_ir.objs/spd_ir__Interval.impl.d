lib/ir/interval.ml: Fmt Option
