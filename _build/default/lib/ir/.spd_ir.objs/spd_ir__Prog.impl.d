lib/ir/prog.ml: Array Fmt Hashtbl List Reg Tree Value
