lib/ir/insn.ml: Fmt List Opcode Option Reg
