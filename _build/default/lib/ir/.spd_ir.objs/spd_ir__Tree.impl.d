lib/ir/tree.ml: Array Fmt Hashtbl Insn Interval List Memdep Opcode Option Reg
