lib/ir/insn.mli: Format Opcode Reg
