lib/ir/prog.mli: Format Reg Tree Value
