(** Integer intervals with open ends.

    Used to annotate live-in registers of a tree with statically known
    value ranges (e.g. a for-loop induction variable with constant bounds),
    which the Banerjee test consumes. *)

type bound = int option
type t = { lo : bound; hi : bound; }
val top : t
val make : bound -> bound -> t
val point : int -> t
val of_bounds : lo:int -> hi:int -> t
val is_bounded : t -> bool

(** Number of integers in the interval, when finite. *)
val cardinal : t -> int option
val contains : t -> int -> bool
val add_bound : int option -> int option -> int option
val scale_bound : int -> int option -> int option
val add : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val shift : int -> t -> t

(** True when the interval certainly excludes zero. *)
val excludes_zero : t -> bool
val pp_bound : string -> Format.formatter -> int option -> unit
val pp : Format.formatter -> t -> unit
