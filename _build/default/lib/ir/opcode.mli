(** Operation set of the target machine.

    The operation repertoire follows the LIFE machine model of the paper:
    universal functional units executing integer/float ALU operations,
    compares, guarded selects, loads and stores.  Branches are not
    instructions; they are the prioritized exits of a decision tree (see
    {!Tree}).

    Latencies implement Table 6-1 of the paper; memory latency is a
    parameter (2 or 6 cycles in the experiments). *)

type ibin = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type icmp = Eq | Ne | Lt | Le | Gt | Ge
type fbin = Fadd | Fsub | Fmul | Fdiv
type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge
type base = Global of string | Frame of int
type t =
    Ibin of ibin
  | Icmp of icmp
  | Fbin of fbin
  | Fcmp of fcmp
  | Not
  | Ineg
  | Fneg
  | Mov
  | Select
  | Const of Value.t
  | Addrof of base
  | Itof
  | Ftoi
  | Load
  | Store

(** Number of register sources each opcode consumes. *)
val arity : t -> int
val has_dst : t -> bool

(** Only stores modify state that survives a cancelled guard; everything
    else is freely speculable in this machine model (paper section 4.1). *)
val has_side_effect : t -> bool
val is_mem : t -> bool

(** Latency in cycles, per Table 6-1.  [mem_latency] is the load/store
    latency of the modelled memory system. *)
val latency : mem_latency:int -> t -> int

(** Latency of a decision-tree exit branch, per Table 6-1. *)
val branch_latency : int
val pp_ibin : Format.formatter -> ibin -> unit
val pp_icmp : Format.formatter -> icmp -> unit
val pp_fbin : Format.formatter -> fbin -> unit
val pp_fcmp : Format.formatter -> fcmp -> unit
val pp_base : Format.formatter -> base -> unit
val pp : Format.formatter -> t -> unit
