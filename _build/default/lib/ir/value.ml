(** Runtime scalar values of the simulated machine.

    The LIFE-style machine we model is word oriented: every register and
    every memory word holds either a (boxed-width) integer or an IEEE
    double.  Addresses are plain integers (word addressed). *)

type t =
  | Int of int
  | Float of float

let zero = Int 0
let one = Int 1

let of_bool b = if b then one else zero

let is_true = function
  | Int 0 -> false
  | Int _ -> true
  | Float f -> f <> 0.0

(** [to_int v] reads [v] as an integer.  Floats are truncated, matching the
    C semantics of an implicit (int) conversion. *)
let to_int = function
  | Int i -> i
  | Float f -> int_of_float f

(** [to_float v] reads [v] as a float, converting integers. *)
let to_float = function
  | Int i -> float_of_int i
  | Float f -> f

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int _, Float _ | Float _, Int _ -> false

let pp ppf = function
  | Int i -> Fmt.pf ppf "%d" i
  | Float f -> Fmt.pf ppf "%h" f

let to_string v = Fmt.str "%a" pp v
