(** Decision trees: the compilation and scheduling unit.

    A decision tree is the if-converted, flattened form of the largest
    single-entry acyclic group of basic blocks (paper section 4.1).  It
    consists of:

    - an ordered array of guarded instructions.  Order is the sequential
      ("original program") order and is the ground truth for memory
      semantics; register flow is single-assignment so any topological
      order consistent with the dependence arcs is equivalent;
    - a prioritized array of exits.  During a traversal the first exit (in
      array order) whose guard evaluates true is taken; the final exit is
      unconditional.  Exits carry block arguments: a parallel copy into the
      parameters of the successor tree;
    - the set of memory dependence arcs between its memory operations,
      which the disambiguators refine;
    - static value ranges for its parameters (loop induction variables with
      known bounds), consumed by the Banerjee test. *)

type exit_kind =
    Jump of { target : int; args : Reg.t list; }
  | Call of { callee : string; call_args : Reg.t list;
      ret : Reg.t option; return_to : int;
      cont_args : Reg.t list;
    }
  | Return of { value : Reg.t option; }
type exit = { xguard : Insn.guard option; kind : exit_kind; }
type t = {
  id : int;
  name : string;
  params : Reg.t list;
  insns : Insn.t array;
  exits : exit array;
  arcs : Memdep.t list;
  ranges : Interval.t Reg.Map.t;
  addr_params : Reg.Set.t;
}
val make :
  id:int ->
  name:string ->
  params:Reg.t list ->
  insns:Insn.t array ->
  exits:exit array ->
  arcs:Memdep.t list ->
  ranges:Interval.t Reg.Map.t ->
  ?addr_params:Reg.Set.t -> unit -> t
val size : t -> int

(** Code size in operations, the metric of the paper's Figure 6-4 (exit
    branches count as operations; no-ops do not exist in this count). *)
val insn_index : t -> int -> int
val insn_by_id : t -> int -> Insn.t
val mem_insns : t -> Insn.t list
val max_insn_id : t -> int
val regs_of_exit_kind : exit_kind -> Reg.t list
val exit_uses : exit -> Reg.t list

(** Every register mentioned anywhere in the tree. *)
val all_regs : t -> Reg.Set.t

(** Ambiguous (still-removable) arcs. *)
val ambiguous_arcs : t -> Memdep.t list
val active_arcs : t -> Memdep.t list

(** Rewrite every register mentioned by an exit through [lookup]. *)
val map_exit_regs : (Reg.t -> Reg.t) -> exit -> exit
exception Invalid of string
val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [validate t] checks the structural invariants listed in the module
    documentation and raises {!Invalid} describing the first violation. *)
val validate : t -> unit
val pp_exit : Format.formatter -> exit -> unit
val pp : Format.formatter -> t -> unit
