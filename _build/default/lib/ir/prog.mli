(** Whole programs: functions made of decision trees, plus global data.

    Functions use a conventional activation model: each call pushes a fresh
    register file and a frame of [frame_words] words for local arrays.
    Scalars live in registers and flow between trees through block
    arguments. *)

type global = { gname : string; words : int; ginit : Value.t array; }
type func = {
  fname : string;
  fparams : Reg.t list;
  frame_words : int;
  entry : int;
  trees : Tree.t list;
}
type t = {
  funcs : (string * func) list;
  globals : global list;
  main : string;
}

(** Built-in procedures implemented directly by the simulator. *)
val builtins : (string * int) list
val is_builtin : string -> bool
val find_func : t -> string -> func
val find_tree : func -> int -> Tree.t
val find_global : t -> string -> global

(** [map_trees f t] rebuilds the program with every tree replaced by
    [f func_name tree]; used by the disambiguation pipelines. *)
val map_trees : (string -> Tree.t -> Tree.t) -> t -> t
val iter_trees : (string -> Tree.t -> unit) -> t -> unit

(** Total static code size in operations (paper's Figure 6-4 metric). *)
val code_size : t -> int
exception Invalid of string
val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
val validate : t -> unit
val pp : Format.formatter -> t -> unit
