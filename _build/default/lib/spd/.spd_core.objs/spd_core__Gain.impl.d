lib/spd/gain.ml: Array Insn List Memdep Spd_analysis Spd_ir Spd_sim Tree
