lib/spd/gain.mli: Spd_analysis Spd_ir Spd_sim
