lib/spd/heuristic.ml: Gain List Memdep Prog Spd_ir Transform Tree
