lib/spd/slice.mli: Spd_ir
