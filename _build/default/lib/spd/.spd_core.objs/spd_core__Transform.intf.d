lib/spd/transform.mli: Format Spd_ir
