lib/spd/slice.ml: Array Hashtbl Insn List Reg Spd_ir Tree
