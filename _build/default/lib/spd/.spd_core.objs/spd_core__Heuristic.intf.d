lib/spd/heuristic.mli: Spd_ir Spd_sim
