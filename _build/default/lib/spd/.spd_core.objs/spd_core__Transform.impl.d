lib/spd/transform.ml: Array Fmt Hashtbl Insn List Memdep Opcode Option Reg Result Slice Spd_ir Tree
