(** Slicing utilities over the flat instruction array of a tree. *)


(** Position of the defining instruction of each register. *)
val def_positions : Spd_ir.Tree.t -> int Spd_ir.Reg.Map.t

(** Forward slice: positions of all instructions that depend, directly or
    transitively through registers, on a value in [roots].  This is the
    paper's [n_L] set — the operations that must be duplicated when SpD is
    applied. *)
val forward_slice : Spd_ir.Tree.t -> Spd_ir.Reg.Set.t -> int list

(** Backward slice suitable for hoisting: the positions (ascending) of the
    instructions at or after [from_pos] that must execute before the
    registers in [regs] are available.  Returns [None] if any such
    instruction is a memory operation or has side effects (those cannot be
    hoisted across stores without dependence analysis). *)
val hoistable_backward_slice :
  Spd_ir.Tree.t -> regs:Spd_ir.Reg.t list -> from_pos:int -> int list option

(** Registers defined inside a position set. *)
val defs_of_positions : Spd_ir.Tree.t -> int list -> Spd_ir.Reg.Set.t

(** Substitute registers in an exit according to [lookup]. *)
val subst_exit :
  (Spd_ir.Reg.t -> Spd_ir.Reg.t) -> Spd_ir.Tree.exit -> Spd_ir.Tree.exit

(** All registers used by any exit of the tree. *)
val exit_used_regs : Spd_ir.Tree.t -> Spd_ir.Reg.Set.t
