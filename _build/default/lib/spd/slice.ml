(** Slicing utilities over the flat instruction array of a tree. *)

open Spd_ir

(** Position of the defining instruction of each register. *)
let def_positions (tree : Tree.t) : int Reg.Map.t =
  let m = ref Reg.Map.empty in
  Array.iteri
    (fun pos insn ->
      List.iter (fun d -> m := Reg.Map.add d pos !m) (Insn.defs insn))
    tree.insns;
  !m

(** Forward slice: positions of all instructions that depend, directly or
    transitively through registers, on a value in [roots].  This is the
    paper's [n_L] set — the operations that must be duplicated when SpD is
    applied. *)
let forward_slice (tree : Tree.t) (roots : Reg.Set.t) : int list =
  let tainted = ref roots in
  let members = ref [] in
  Array.iteri
    (fun pos insn ->
      if List.exists (fun u -> Reg.Set.mem u !tainted) (Insn.uses insn) then begin
        members := pos :: !members;
        List.iter (fun d -> tainted := Reg.Set.add d !tainted) (Insn.defs insn)
      end)
    tree.insns;
  List.rev !members

(** Backward slice suitable for hoisting: the positions (ascending) of the
    instructions at or after [from_pos] that must execute before the
    registers in [regs] are available.  Returns [None] if any such
    instruction is a memory operation or has side effects (those cannot be
    hoisted across stores without dependence analysis). *)
let hoistable_backward_slice (tree : Tree.t) ~(regs : Reg.t list)
    ~(from_pos : int) : int list option =
  let defs = def_positions tree in
  let needed = Hashtbl.create 8 in
  let exception Not_hoistable in
  let rec visit r =
    match Reg.Map.find_opt r defs with
    | None -> () (* parameter *)
    | Some pos when pos < from_pos -> ()
    | Some pos ->
        if not (Hashtbl.mem needed pos) then begin
          let insn = tree.insns.(pos) in
          if Insn.is_mem insn then raise Not_hoistable;
          Hashtbl.replace needed pos ();
          List.iter visit (Insn.uses insn)
        end
  in
  match List.iter visit regs with
  | () ->
      Some (Hashtbl.fold (fun pos () acc -> pos :: acc) needed [] |> List.sort compare)
  | exception Not_hoistable -> None

(** Registers defined inside a position set. *)
let defs_of_positions (tree : Tree.t) (positions : int list) : Reg.Set.t =
  List.fold_left
    (fun acc pos ->
      List.fold_left
        (fun acc d -> Reg.Set.add d acc)
        acc
        (Insn.defs tree.insns.(pos)))
    Reg.Set.empty positions

(** Substitute registers in an exit according to [lookup]. *)
let subst_exit (lookup : Reg.t -> Reg.t) (e : Tree.exit) : Tree.exit =
  Tree.map_exit_regs lookup e

(** All registers used by any exit of the tree. *)
let exit_used_regs (tree : Tree.t) : Reg.Set.t =
  Array.fold_left
    (fun acc e ->
      List.fold_left (fun acc r -> Reg.Set.add r acc) acc (Tree.exit_uses e))
    Reg.Set.empty tree.exits
