(** Execution profiles collected by the interpreter.

    Two kinds of information, both used exactly as in the paper:

    - {b path probabilities}: how often each exit of each tree is taken,
      feeding the [Gain()] estimator of the SpD guidance heuristic;
    - {b alias counts}: for every memory dependence arc, how often the two
      references were both active and hit the same address.  Arcs with
      [alias = 0] are the "superfluous arcs" that define the PERFECT
      disambiguator. *)

type arc_stat = { mutable both_active : int; mutable aliased : int }

type tree_stat = {
  mutable traversals : int;
  exit_taken : int array;
  arc_stats : (int * int, arc_stat) Hashtbl.t;
      (** keyed by (src insn id, dst insn id) *)
}

type t = (string * int, tree_stat) Hashtbl.t
(** keyed by (function name, tree id) *)

let create () : t = Hashtbl.create 64

let tree_stat (p : t) ~func ~(tree : Spd_ir.Tree.t) : tree_stat =
  let key = (func, tree.id) in
  match Hashtbl.find_opt p key with
  | Some s -> s
  | None ->
      let s =
        {
          traversals = 0;
          exit_taken = Array.make (Array.length tree.exits) 0;
          arc_stats = Hashtbl.create 8;
        }
      in
      Hashtbl.add p key s;
      s

let arc_stat (s : tree_stat) ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt s.arc_stats key with
  | Some a -> a
  | None ->
      let a = { both_active = 0; aliased = 0 } in
      Hashtbl.add s.arc_stats key a;
      a

let find (p : t) ~func ~tree_id = Hashtbl.find_opt p (func, tree_id)

(** Probability that traversal of the tree takes exit [k]; uniform when the
    tree was never profiled. *)
let exit_probability (p : t) ~func ~(tree : Spd_ir.Tree.t) k =
  match find p ~func ~tree_id:tree.id with
  | Some s when s.traversals > 0 ->
      float_of_int s.exit_taken.(k) /. float_of_int s.traversals
  | _ -> 1.0 /. float_of_int (Array.length tree.exits)

(** Observed alias probability of an arc, when the pair was ever active. *)
let alias_probability (p : t) ~func ~tree_id ~src ~dst =
  match find p ~func ~tree_id with
  | None -> None
  | Some s -> (
      match Hashtbl.find_opt s.arc_stats (src, dst) with
      | Some a when a.both_active > 0 ->
          Some (float_of_int a.aliased /. float_of_int a.both_active)
      | _ -> None)

(** True when profiling proved the arc superfluous: the two references
    never dynamically touched the same address. *)
let superfluous (p : t) ~func ~tree_id ~src ~dst =
  match find p ~func ~tree_id with
  | None -> false
  | Some s -> (
      match Hashtbl.find_opt s.arc_stats (src, dst) with
      | Some a -> a.aliased = 0
      | None -> s.traversals > 0)
