(** Execution profiles collected by the interpreter.

    Two kinds of information, both used exactly as in the paper:

    - {b path probabilities}: how often each exit of each tree is taken,
      feeding the [Gain()] estimator of the SpD guidance heuristic;
    - {b alias counts}: for every memory dependence arc, how often the two
      references were both active and hit the same address.  Arcs with
      [alias = 0] are the "superfluous arcs" that define the PERFECT
      disambiguator. *)

type arc_stat = { mutable both_active : int; mutable aliased : int; }
type tree_stat = {
  mutable traversals : int;
  exit_taken : int array;
  arc_stats : (int * int, arc_stat) Hashtbl.t;
}
type t = (string * int, tree_stat) Hashtbl.t

(** keyed by (function name, tree id) *)
val create : unit -> t
val tree_stat : t -> func:string -> tree:Spd_ir.Tree.t -> tree_stat

(** Execution profiles collected by the interpreter.

    Two kinds of information, both used exactly as in the paper:

    - {b path probabilities}: how often each exit of each tree is taken,
      feeding the [Gain()] estimator of the SpD guidance heuristic;
    - {b alias counts}: for every memory dependence arc, how often the two
      references were both active and hit the same address.  Arcs with
      [alias = 0] are the "superfluous arcs" that define the PERFECT
      disambiguator. *)
val arc_stat : tree_stat -> src:int -> dst:int -> arc_stat
val find : t -> func:string -> tree_id:int -> tree_stat option

(** Probability that traversal of the tree takes exit [k]; uniform when the
    tree was never profiled. *)
val exit_probability : t -> func:string -> tree:Spd_ir.Tree.t -> int -> float

(** Observed alias probability of an arc, when the pair was ever active. *)
val alias_probability :
  t -> func:string -> tree_id:int -> src:int -> dst:int -> float option

(** True when profiling proved the arc superfluous: the two references
    never dynamically touched the same address. *)
val superfluous :
  t -> func:string -> tree_id:int -> src:int -> dst:int -> bool
