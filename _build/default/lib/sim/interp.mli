(** Cycle-level simulator.

    The interpreter executes decision trees traversal by traversal with
    sequential (original program order) semantics: every instruction is
    evaluated, stores commit only when their guard holds, and the first
    exit whose guard holds is taken.  This is the ground-truth semantics
    against which all disambiguator pipelines are validated.

    Orthogonally, when a {!Timing} table is supplied (built from a machine
    schedule or from the infinite-machine ASAP analysis), each traversal is
    charged [max(taken-exit completion, committed store completions)]
    cycles, and the total is the program's execution time on that machine —
    the paper's measurement methodology.

    The interpreter also fills in a {!Profile}: exit frequencies and
    dynamic alias counts per memory dependence arc (the PERFECT
    disambiguator's input). *)

exception Runtime_error of string
val errf : ('a, Format.formatter, unit, 'b) format4 -> 'a
type result = {
  ret : Spd_ir.Value.t;
  output : Spd_ir.Value.t list;
  cycles : int;
  traversals : int;
}
type finfo = {
  func : Spd_ir.Prog.func;
  by_id : Spd_ir.Tree.t option array;
  nregs : int;
}
type frame = {
  saved_regs : Spd_ir.Value.t array;
  saved_fp : int;
  saved_sp : int;
  saved_fi : finfo;
  ret_reg : Spd_ir.Reg.t option;
  resume : int;
}
val build_finfo : Spd_ir.Prog.func -> finfo

(** Lay out globals in low memory; returns the address map and the first
    free address.  Address 0 is reserved so that a stray null-ish pointer
    faults loudly in bounds checks of size-0 accesses. *)
val layout : Spd_ir.Prog.t -> (string -> int) * int
type traversal_cost =
    func:string ->
    tree:Spd_ir.Tree.t ->
    addrs:int array -> active:bool array -> taken:int -> int

(** Per-traversal cost callback for dynamic timing models: receives the
    traversal's concrete memory addresses ([addrs], indexed by instruction
    position, [-1] for non-memory ops), which guarded operations committed
    ([active]) and the taken exit, and returns the traversal's cycles.
    Used by the hardware dynamic-disambiguation baseline, which resolves
    aliases with run-time address compares. *)
val run :
  ?timing:Timing.t ->
  ?traversal_cost:traversal_cost ->
  ?profile:Profile.t ->
  ?mem_words:int -> ?max_traversals:int -> Spd_ir.Prog.t -> result

(** Run and return just the observable behaviour (return value and output),
    used for semantic-equivalence checks between pipelines. *)
val observe :
  ?mem_words:int ->
  ?max_traversals:int ->
  Spd_ir.Prog.t -> Spd_ir.Value.t * Spd_ir.Value.t list
