(** Timing tables consumed by the interpreter.

    The scheduler (or the infinite-machine ASAP analysis) produces, for
    every tree, the completion cycle of each instruction and of each exit
    branch.  During simulation a traversal that takes exit [k] and commits
    stores [S] costs

    [max (exit_completion.(k), max over s in S of insn_completion(s))]

    cycles: the machine leaves the tree when the taken branch resolves and
    all committed state has drained. *)

type tree_timing = {
  insn_completion : int array;
  exit_completion : int array;
}
type t = (string * int, tree_timing) Hashtbl.t

(** keyed by (function name, tree id) *)
val create : unit -> t
val add : t -> func:string -> tree_id:int -> tree_timing -> unit
val find : t -> func:string -> tree_id:int -> tree_timing

(** Longest completion over the whole tree; a simple upper bound used in
    diagnostics. *)
val span : tree_timing -> int
val pp : Format.formatter -> Spd_ir.Tree.t -> tree_timing -> unit
