(** Timing tables consumed by the interpreter.

    The scheduler (or the infinite-machine ASAP analysis) produces, for
    every tree, the completion cycle of each instruction and of each exit
    branch.  During simulation a traversal that takes exit [k] and commits
    stores [S] costs

    [max (exit_completion.(k), max over s in S of insn_completion(s))]

    cycles: the machine leaves the tree when the taken branch resolves and
    all committed state has drained. *)

open Spd_ir

type tree_timing = {
  insn_completion : int array;
      (** indexed by position in [Tree.insns]; completion = issue + latency *)
  exit_completion : int array;  (** indexed by exit position *)
}

type t = (string * int, tree_timing) Hashtbl.t
(** keyed by (function name, tree id) *)

let create () : t = Hashtbl.create 64

let add (t : t) ~func ~tree_id timing = Hashtbl.replace t (func, tree_id) timing

let find (t : t) ~func ~tree_id =
  match Hashtbl.find_opt t (func, tree_id) with
  | Some x -> x
  | None ->
      invalid_arg
        (Fmt.str "Timing.find: no timing for %s tree %d" func tree_id)

(** Longest completion over the whole tree; a simple upper bound used in
    diagnostics. *)
let span tt =
  let m = Array.fold_left max 0 tt.insn_completion in
  Array.fold_left max m tt.exit_completion

let pp ppf (tr : Tree.t) tt =
  Fmt.pf ppf "@[<v>timing %s:@," tr.name;
  Array.iteri
    (fun i insn ->
      Fmt.pf ppf "  #%-3d done@%-4d %a@," insn.Insn.id tt.insn_completion.(i)
        Insn.pp insn)
    tr.insns;
  Array.iteri
    (fun k e ->
      Fmt.pf ppf "  exit%-2d done@%-4d %a@," k tt.exit_completion.(k)
        Tree.pp_exit e)
    tr.exits;
  Fmt.pf ppf "@]"
