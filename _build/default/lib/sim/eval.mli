(** Evaluation of pure operations on runtime values. *)

exception Runtime_error of string
val errf : ('a, Format.formatter, unit, 'b) format4 -> 'a
val bool_of : Spd_ir.Value.t -> bool
val eval_ibin :
  Spd_ir.Opcode.ibin -> Spd_ir.Value.t -> Spd_ir.Value.t -> Spd_ir.Value.t
val eval_icmp :
  Spd_ir.Opcode.icmp -> Spd_ir.Value.t -> Spd_ir.Value.t -> Spd_ir.Value.t
val eval_fbin :
  Spd_ir.Opcode.fbin -> Spd_ir.Value.t -> Spd_ir.Value.t -> Spd_ir.Value.t
val eval_fcmp :
  Spd_ir.Opcode.fcmp -> Spd_ir.Value.t -> Spd_ir.Value.t -> Spd_ir.Value.t

(** Evaluate a pure opcode.  Memory operations and [Addrof] are the
    interpreter's business, not ours. *)
val eval_pure : Spd_ir.Opcode.t -> Spd_ir.Value.t list -> Spd_ir.Value.t
