(** Evaluation of pure operations on runtime values. *)

open Spd_ir

exception Runtime_error of string

let errf fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let bool_of v = Value.is_true v

let eval_ibin (op : Opcode.ibin) a b =
  let x = Value.to_int a and y = Value.to_int b in
  let r =
    match op with
    | Add -> x + y
    | Sub -> x - y
    | Mul -> x * y
    | Div -> if y = 0 then errf "integer division by zero" else x / y
    | Rem -> if y = 0 then errf "integer remainder by zero" else x mod y
    | And -> x land y
    | Or -> x lor y
    | Xor -> x lxor y
    | Shl -> x lsl (y land 63)
    | Shr -> x asr (y land 63)
  in
  Value.Int r

let eval_icmp (op : Opcode.icmp) a b =
  let x = Value.to_int a and y = Value.to_int b in
  Value.of_bool
    (match op with
    | Eq -> x = y
    | Ne -> x <> y
    | Lt -> x < y
    | Le -> x <= y
    | Gt -> x > y
    | Ge -> x >= y)

let eval_fbin (op : Opcode.fbin) a b =
  let x = Value.to_float a and y = Value.to_float b in
  Value.Float
    (match op with
    | Fadd -> x +. y
    | Fsub -> x -. y
    | Fmul -> x *. y
    | Fdiv -> x /. y)

let eval_fcmp (op : Opcode.fcmp) a b =
  let x = Value.to_float a and y = Value.to_float b in
  Value.of_bool
    (match op with
    | Feq -> x = y
    | Fne -> x <> y
    | Flt -> x < y
    | Fle -> x <= y
    | Fgt -> x > y
    | Fge -> x >= y)

(** Evaluate a pure opcode.  Memory operations and [Addrof] are the
    interpreter's business, not ours. *)
let eval_pure (op : Opcode.t) (srcs : Value.t list) : Value.t =
  match (op, srcs) with
  | Opcode.Ibin o, [ a; b ] -> eval_ibin o a b
  | Opcode.Icmp o, [ a; b ] -> eval_icmp o a b
  | Opcode.Fbin o, [ a; b ] -> eval_fbin o a b
  | Opcode.Fcmp o, [ a; b ] -> eval_fcmp o a b
  | Opcode.Not, [ a ] -> Value.of_bool (not (bool_of a))
  | Opcode.Ineg, [ a ] -> Value.Int (-Value.to_int a)
  | Opcode.Fneg, [ a ] -> Value.Float (-.Value.to_float a)
  | Opcode.Mov, [ a ] -> a
  | Opcode.Select, [ p; a; b ] -> if bool_of p then a else b
  | Opcode.Const v, [] -> v
  | Opcode.Itof, [ a ] -> Value.Float (Value.to_float a)
  | Opcode.Ftoi, [ a ] -> Value.Int (Value.to_int a)
  | (Opcode.Load | Opcode.Store | Opcode.Addrof _), _ ->
      invalid_arg "Eval.eval_pure: not a pure operation"
  | _ -> invalid_arg "Eval.eval_pure: arity mismatch"
