lib/sim/timing.ml: Array Fmt Hashtbl Insn Spd_ir Tree
