lib/sim/eval.ml: Fmt Opcode Spd_ir Value
