lib/sim/profile.mli: Hashtbl Spd_ir
