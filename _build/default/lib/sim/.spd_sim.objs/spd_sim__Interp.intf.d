lib/sim/interp.mli: Format Profile Spd_ir Timing
