lib/sim/timing.mli: Format Hashtbl Spd_ir
