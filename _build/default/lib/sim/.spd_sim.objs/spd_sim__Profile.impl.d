lib/sim/profile.ml: Array Hashtbl Spd_ir
