lib/sim/eval.mli: Format Spd_ir
