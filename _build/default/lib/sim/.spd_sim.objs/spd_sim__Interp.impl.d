lib/sim/interp.ml: Array Eval Fmt Hashtbl Insn List Memdep Opcode Option Profile Prog Reg Spd_ir Timing Tree Value
