(** Lowering: typed AST -> decision-tree IR.

    This is the frontend's code generator, mirroring what the paper calls
    "an optimizing C compiler which generates decision trees":

    - flat conditionals are {b if-converted} into the enclosing tree:
      control dependence becomes data dependence through materialized path
      conditions; stores are guarded, scalar updates merge via [Select];
    - loops with flat bodies become single self-looping trees (condition
      evaluated in the tree, body guarded by it, back edge as the
      first-priority exit) — the canonical loop-body decision tree of the
      paper;
    - calls, returns and non-flat control flow split trees; values flow
      between trees through block arguments (tree parameters);
    - for-loops with recognizable induction variables annotate the loop
      trees with the variable's static interval, feeding the Banerjee test.

    Registers are single-assignment within a tree by construction. *)

open Tast
module Ir = Spd_ir
module SMap = Map.Make (String)

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Variable kinds within a function *)

type vkind =
  | Kreg of Ast.ty  (** scalar local or parameter: lives in registers *)
  | Kgscalar of Ast.ty  (** global scalar: lives in memory *)
  | Kgarray of Ast.ty  (** global array *)
  | Kfarray of Ast.ty * int  (** local array at a frame offset *)
  | Kparray of Ast.ty  (** array parameter: address in a register *)

(* ------------------------------------------------------------------ *)
(* Tree builder *)

type builder = {
  fname : string;
  gen : Ir.Reg.Gen.t;
  kinds : vkind SMap.t;
  var_order : string list;  (** register-resident variables, fixed order *)
  mutable next_tree : int;
  mutable trees : Ir.Tree.t list;
  (* state of the tree under construction *)
  mutable tree_id : int;
  mutable insns : Ir.Insn.t list;  (** reversed *)
  mutable next_insn : int;
  mutable params : Ir.Reg.t list;
  mutable ranges : (Ir.Reg.t * Ir.Interval.t) list;
  mutable vmap : Ir.Reg.t SMap.t;
  mutable guard : Ir.Reg.t option;  (** materialized path condition *)
  mutable terminated : bool;
  mutable range_env : Ir.Interval.t SMap.t;
      (** known intervals for in-scope induction variables *)
  vn : (Ir.Opcode.t * Ir.Reg.t list, Ir.Reg.t) Hashtbl.t;
      (** per-tree value numbering of pure operations *)
  mem_cache : (Ir.Reg.t, Ir.Reg.t * Ir.Reg.t option) Hashtbl.t;
      (** address register -> (stored value, guard context at the store);
          forwarding applies only under the same guard context *)
  load_cache : (Ir.Reg.t, Ir.Reg.t) Hashtbl.t;
      (** address register -> last loaded value (loads are unguarded) *)
}

let fresh_tree_id b =
  let id = b.next_tree in
  b.next_tree <- id + 1;
  id

let emit b ?guard op srcs =
  let dst = if Ir.Opcode.has_dst op then Some (Ir.Reg.Gen.fresh b.gen) else None in
  let insn = Ir.Insn.make ~id:b.next_insn ?guard op ~dst ~srcs in
  b.next_insn <- b.next_insn + 1;
  b.insns <- insn :: b.insns;
  match dst with Some d -> d | None -> -1

(** Emit a pure operation with local value numbering: within a tree,
    identical pure operations on identical sources share one register. *)
let emit_vn b op srcs =
  match Hashtbl.find_opt b.vn (op, srcs) with
  | Some r -> r
  | None ->
      let r = emit b op srcs in
      Hashtbl.add b.vn (op, srcs) r;
      r

let emit_cached b op = emit_vn b op []

let const_int b v = emit_cached b (Ir.Opcode.Const (Ir.Value.Int v))
let const_float b f = emit_cached b (Ir.Opcode.Const (Ir.Value.Float f))

(** Emit a load from [addr], reusing a forwarded value when available:
    the last store through [addr] in the same guard context, or the last
    load from [addr] (loads execute speculatively, so any context). *)
let emit_load b addr =
  match Hashtbl.find_opt b.mem_cache addr with
  | Some (v, ctx) when ctx = b.guard -> v
  | _ -> (
      match Hashtbl.find_opt b.load_cache addr with
      | Some v -> v
      | None ->
          let d = emit b Ir.Opcode.Load [ addr ] in
          Hashtbl.replace b.load_cache addr d;
          d)

(** Emit a (possibly guarded) store and update the forwarding caches: any
    store may clobber any address, so both caches are flushed before the
    new binding is recorded. *)
let emit_store b addr value =
  let guard =
    match b.guard with
    | None -> None
    | Some g -> Some { Ir.Insn.greg = g; positive = true }
  in
  ignore (emit b ?guard Ir.Opcode.Store [ addr; value ]);
  Hashtbl.reset b.mem_cache;
  Hashtbl.reset b.load_cache;
  Hashtbl.replace b.mem_cache addr (value, b.guard)

(** Registers of the current tree's parameters that hold object addresses
    (array parameters of the function). *)
let addr_params b =
  SMap.fold
    (fun v r acc ->
      match SMap.find_opt v b.kinds with
      | Some (Kparray _) -> Ir.Reg.Set.add r acc
      | _ -> acc)
    b.vmap Ir.Reg.Set.empty
  |> Ir.Reg.Set.filter (fun r -> List.mem r b.params)

(** Close the tree under construction with the given exits. *)
let finish b (exits : Ir.Tree.exit list) =
  assert (not b.terminated);
  let tree =
    Ir.Tree.make ~id:b.tree_id
      ~name:(Printf.sprintf "%s.t%d" b.fname b.tree_id)
      ~params:b.params
      ~insns:(Array.of_list (List.rev b.insns))
      ~exits:(Array.of_list exits) ~arcs:[]
      ~ranges:
        (List.fold_left
           (fun m (r, iv) -> Ir.Reg.Map.add r iv m)
           Ir.Reg.Map.empty b.ranges)
      ~addr_params:(addr_params b) ()
  in
  b.trees <- tree :: b.trees;
  b.terminated <- true

(** Current block arguments: the registers of all register-resident
    variables, in the fixed order. *)
let current_args b = List.map (fun v -> SMap.find v b.vmap) b.var_order

(** Begin a new tree.  Every register-resident variable gets a fresh
    parameter register; [ret_var], when given, receives an extra trailing
    parameter holding a call's return value. *)
let start b ?ret_var id =
  assert b.terminated;
  b.tree_id <- id;
  b.insns <- [];
  b.next_insn <- 0;
  Hashtbl.reset b.vn;
  Hashtbl.reset b.mem_cache;
  Hashtbl.reset b.load_cache;
  b.guard <- None;
  b.terminated <- false;
  let params = List.map (fun _ -> Ir.Reg.Gen.fresh b.gen) b.var_order in
  b.vmap <-
    List.fold_left2
      (fun m v r -> SMap.add v r m)
      SMap.empty b.var_order params;
  b.ranges <-
    List.filter_map
      (fun v ->
        match SMap.find_opt v b.range_env with
        | Some iv -> Some (SMap.find v b.vmap, iv)
        | None -> None)
      b.var_order;
  match ret_var with
  | None -> b.params <- params
  | Some (v, r) ->
      b.params <- params @ [ r ];
      b.vmap <- SMap.add v r b.vmap

(* ------------------------------------------------------------------ *)
(* Expressions *)

let array_base b name =
  match SMap.find_opt name b.kinds with
  | Some (Kgarray _) -> emit_cached b (Ir.Opcode.Addrof (Ir.Opcode.Global name))
  | Some (Kfarray (_, off)) -> emit_cached b (Ir.Opcode.Addrof (Ir.Opcode.Frame off))
  | Some (Kparray _) -> SMap.find name b.vmap
  | _ -> errf "%s: %s is not an array" b.fname name

let ibin_of_op : Ast.binop -> Ir.Opcode.ibin = function
  | Ast.Add -> Add
  | Sub -> Sub
  | Mul -> Mul
  | Div -> Div
  | Mod -> Rem
  | Land | Band -> And
  | Lor | Bor -> Or
  | Bxor -> Xor
  | Shl -> Shl
  | Shr -> Shr
  | _ -> assert false

let icmp_of_op : Ast.binop -> Ir.Opcode.icmp = function
  | Ast.Lt -> Lt
  | Le -> Le
  | Gt -> Gt
  | Ge -> Ge
  | Eq -> Eq
  | Ne -> Ne
  | _ -> assert false

let fbin_of_op : Ast.binop -> Ir.Opcode.fbin = function
  | Ast.Add -> Fadd
  | Sub -> Fsub
  | Mul -> Fmul
  | Div -> Fdiv
  | _ -> assert false

let fcmp_of_op : Ast.binop -> Ir.Opcode.fcmp = function
  | Ast.Lt -> Flt
  | Le -> Fle
  | Gt -> Fgt
  | Ge -> Fge
  | Eq -> Feq
  | Ne -> Fne
  | _ -> assert false

(** Does this node already produce a canonical boolean (0 or 1)? *)
let is_boolean (e : texpr) =
  match e.node with
  | TBinop ((Lt | Le | Gt | Ge | Eq | Ne | Land | Lor), _, _) -> true
  | TUnop (Lnot, _) -> true
  | TInt (0 | 1) -> true
  | _ -> false

let rec lower_expr b (e : texpr) : Ir.Reg.t =
  match e.node with
  | TInt v -> const_int b v
  | TFloat f -> const_float b f
  | TVar name -> (
      match SMap.find_opt name b.kinds with
      | Some (Kreg _) | Some (Kparray _) -> SMap.find name b.vmap
      | Some (Kgscalar _) ->
          let addr = emit_cached b (Ir.Opcode.Addrof (Ir.Opcode.Global name)) in
          emit_load b addr
      | _ -> errf "%s: bad variable %s" b.fname name)
  | TIndex (name, idx) ->
      let addr = lower_addr b name idx in
      emit_load b addr
  | TUnop (Neg, a) ->
      let r = lower_expr b a in
      emit_vn b (if e.ty = Ast.Tdouble then Ir.Opcode.Fneg else Ir.Opcode.Ineg) [ r ]
  | TUnop (Lnot, a) ->
      let r = lower_expr b a in
      emit_vn b Ir.Opcode.Not [ r ]
  | TBinop ((Land | Lor) as op, x, y) ->
      (* operands are booleanized so strict bitwise and/or implement the
         logical connectives *)
      let rx = lower_bool b x and ry = lower_bool b y in
      emit_vn b (Ir.Opcode.Ibin (ibin_of_op op)) [ rx; ry ]
  | TBinop (op, x, y) ->
      let rx = lower_expr b x and ry = lower_expr b y in
      let opc =
        match (op, x.ty) with
        | (Lt | Le | Gt | Ge | Eq | Ne), Ast.Tdouble ->
            Ir.Opcode.Fcmp (fcmp_of_op op)
        | (Lt | Le | Gt | Ge | Eq | Ne), Ast.Tint ->
            Ir.Opcode.Icmp (icmp_of_op op)
        | _, Ast.Tdouble -> Ir.Opcode.Fbin (fbin_of_op op)
        | _, Ast.Tint -> Ir.Opcode.Ibin (ibin_of_op op)
      in
      emit_vn b opc [ rx; ry ]
  | TCast (ty, a) ->
      let r = lower_expr b a in
      if ty = a.ty then r
      else emit_vn b (if ty = Ast.Tdouble then Ir.Opcode.Itof else Ir.Opcode.Ftoi) [ r ]
  | TCall _ -> errf "%s: internal error: call survived normalization" b.fname

and lower_addr b name idx =
  let base = array_base b name in
  match idx.node with
  | TInt 0 -> base
  | _ ->
      let i = lower_expr b idx in
      emit_vn b (Ir.Opcode.Ibin Ir.Opcode.Add) [ base; i ]

(** Lower an expression used as a truth value to a canonical 0/1. *)
and lower_bool b (e : texpr) : Ir.Reg.t =
  let r = lower_expr b e in
  if is_boolean e then r
  else
    let z = const_int b 0 in
    emit_vn b (Ir.Opcode.Icmp Ir.Opcode.Ne) [ r; z ]

(* ------------------------------------------------------------------ *)
(* Path conditions *)

(** Conjoin the current path condition with [pc]. *)
let conj b pc =
  match b.guard with
  | None -> pc
  | Some g -> emit_vn b (Ir.Opcode.Ibin Ir.Opcode.And) [ g; pc ]

let store_guard b : Ir.Insn.guard option =
  match b.guard with
  | None -> None
  | Some g -> Some { Ir.Insn.greg = g; positive = true }

(* ------------------------------------------------------------------ *)
(* Induction variable ranges *)

(** Static interval for the values a for-loop variable has at loop-tree
    entry, when the bounds are literal.  Conservatively widened to include
    the final (test-failing) value. *)
let iv_interval ~(init : texpr option) ~(cond : texpr) ~(step : texpr option)
    ~(var : string) : Ir.Interval.t option =
  let lit (e : texpr) = match e.node with TInt v -> Some v | _ -> None in
  let step_by =
    match step with
    | Some { node = TBinop (Ast.Add, { node = TVar v; _ }, s); _ }
      when v = var ->
        lit s
    | Some { node = TBinop (Ast.Sub, { node = TVar v; _ }, s); _ }
      when v = var ->
        Option.map (fun x -> -x) (lit s)
    | _ -> None
  in
  match (cond.node, step_by) with
  | TBinop (op, { node = TVar v; _ }, bound), Some s when v = var && s <> 0 ->
      let b = lit bound in
      let i0 = Option.bind init lit in
      let mk lo hi = Some (Ir.Interval.make lo hi) in
      if s > 0 then (
        match op with
        | Ast.Lt -> mk i0 (Option.map (fun b -> b + s - 1) b)
        | Ast.Le -> mk i0 (Option.map (fun b -> b + s) b)
        | Ast.Ne -> mk i0 b
        | _ -> None)
      else (
        match op with
        | Ast.Gt -> mk (Option.map (fun b -> b + s + 1) b) i0
        | Ast.Ge -> mk (Option.map (fun b -> b + s) b) i0
        | Ast.Ne -> mk b i0
        | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec lower_stmt b (s : tstmt) : unit =
  if b.terminated then
    (* unreachable code after a return: drop it *)
    ()
  else
    match s with
    | TAssign (lv, { node = TCall (f, args); _ }) -> lower_call b ~dst:(Some lv) f args
    | TExpr { node = TCall (f, args); _ } -> lower_call b ~dst:None f args
    | TExpr _ -> ()
    | TAssign (TLvar (name, _), e) -> (
        let r = lower_expr b e in
        match SMap.find_opt name b.kinds with
        | Some (Kreg _) -> (
            (* under a guard the new value only holds on this path *)
            match b.guard with
            | None -> b.vmap <- SMap.add name r b.vmap
            | Some g ->
                let old = SMap.find name b.vmap in
                let m = emit_vn b Ir.Opcode.Select [ g; r; old ] in
                b.vmap <- SMap.add name m b.vmap)
        | Some (Kgscalar _) ->
            let addr = emit_cached b (Ir.Opcode.Addrof (Ir.Opcode.Global name)) in
            emit_store b addr r
        | _ -> errf "%s: bad assignment target %s" b.fname name)
    | TAssign (TLindex (name, idx, _), e) ->
        let r = lower_expr b e in
        let addr = lower_addr b name idx in
        emit_store b addr r
    | TIf (c, then_, else_) ->
        if List.for_all stmt_is_flat then_ && List.for_all stmt_is_flat else_
        then lower_if_flat b c then_ else_
        else lower_if_split b c then_ else_
    | TWhile (c, body) -> lower_loop b ~range:None c body None
    | TFor { init; cond; step; body } -> lower_for b init cond step body
    | TReturn value ->
        let v = Option.map (lower_expr b) value in
        finish b [ { xguard = None; kind = Ir.Tree.Return { value = v } } ]

(* If-conversion of a flat conditional into the current tree. *)
and lower_if_flat b c then_ else_ =
  let pc = lower_bool b c in
  let outer = b.guard in
  let map0 = b.vmap in
  (* then branch *)
  b.guard <- Some (conj b pc);
  List.iter (lower_stmt b) then_;
  let map1 = b.vmap in
  (* else branch *)
  b.vmap <- map0;
  b.guard <- outer;
  if else_ <> [] then begin
    let npc = emit_vn b Ir.Opcode.Not [ pc ] in
    b.guard <- Some (conj b npc);
    List.iter (lower_stmt b) else_
  end;
  let map2 = b.vmap in
  b.guard <- outer;
  (* merge scalar updates *)
  b.vmap <-
    SMap.merge
      (fun _ r1 r2 ->
        match (r1, r2) with
        | Some r1, Some r2 when Ir.Reg.equal r1 r2 -> Some r1
        | Some r1, Some r2 -> Some (emit_vn b Ir.Opcode.Select [ pc; r1; r2 ])
        | _ -> assert false)
      map1 map2

(* A conditional with loops/calls/returns inside: genuine control split. *)
and lower_if_split b c then_ else_ =
  assert (b.guard = None);
  let pc = lower_bool b c in
  let then_id = fresh_tree_id b in
  let else_id = if else_ = [] then None else Some (fresh_tree_id b) in
  let join_id = fresh_tree_id b in
  let args = current_args b in
  let fall_through =
    match else_id with Some id -> id | None -> join_id
  in
  finish b
    [
      {
        xguard = Some { Ir.Insn.greg = pc; positive = true };
        kind = Ir.Tree.Jump { target = then_id; args };
      };
      { xguard = None; kind = Ir.Tree.Jump { target = fall_through; args } };
    ];
  let lower_branch id stmts =
    start b id;
    List.iter (lower_stmt b) stmts;
    if not b.terminated then
      finish b
        [
          {
            xguard = None;
            kind = Ir.Tree.Jump { target = join_id; args = current_args b };
          };
        ]
  in
  lower_branch then_id then_;
  Option.iter (fun id -> lower_branch id else_) else_id;
  start b join_id

(* Loops.  [range] carries the induction variable's interval; [step] is an
   optional trailing statement (the for-loop increment). *)
and lower_loop b ~range c body (step : tstmt option) =
  assert (b.guard = None);
  let header_id = fresh_tree_id b in
  let after_id = fresh_tree_id b in
  finish b
    [
      {
        xguard = None;
        kind = Ir.Tree.Jump { target = header_id; args = current_args b };
      };
    ];
  let saved_ranges = b.range_env in
  (match range with
  | Some (var, iv) -> b.range_env <- SMap.add var iv b.range_env
  | None -> ());
  let body_stmts = match step with Some s -> body @ [ s ] | None -> body in
  if List.for_all stmt_is_flat body_stmts then begin
    (* single-tree loop: condition + guarded body + back edge *)
    start b header_id;
    let entry_args = current_args b in
    let pc = lower_bool b c in
    b.guard <- Some pc;
    List.iter (lower_stmt b) body_stmts;
    b.guard <- None;
    finish b
      [
        {
          xguard = Some { Ir.Insn.greg = pc; positive = true };
          kind = Ir.Tree.Jump { target = header_id; args = current_args b };
        };
        { xguard = None; kind = Ir.Tree.Jump { target = after_id; args = entry_args } };
      ]
  end
  else begin
    (* multi-tree loop: header tests, body trees loop back *)
    let body_id = fresh_tree_id b in
    start b header_id;
    let pc = lower_bool b c in
    let args = current_args b in
    finish b
      [
        {
          xguard = Some { Ir.Insn.greg = pc; positive = true };
          kind = Ir.Tree.Jump { target = body_id; args };
        };
        { xguard = None; kind = Ir.Tree.Jump { target = after_id; args } };
      ];
    start b body_id;
    List.iter (lower_stmt b) body_stmts;
    if not b.terminated then
      finish b
        [
          {
            xguard = None;
            kind = Ir.Tree.Jump { target = header_id; args = current_args b };
          };
        ]
  end;
  b.range_env <- saved_ranges;
  start b after_id

and lower_for b init cond step body =
  (match init with
  | Some (v, e) -> lower_stmt b (TAssign (TLvar (v, Ast.Tint), e))
  | None -> ());
  let var_of =
    match (init, step) with
    | _, Some (v, _) -> Some v
    | Some (v, _), None -> Some v
    | None, None -> None
  in
  let range =
    match var_of with
    | None -> None
    | Some var ->
        let init_e =
          match init with Some (v, e) when v = var -> Some e | _ -> None
        in
        let step_e =
          match step with Some (v, e) when v = var -> Some e | _ -> None
        in
        (* the interval only applies if the body does not write the var *)
        if List.exists (stmt_writes_var var) body then None
        else
          iv_interval ~init:init_e ~cond ~step:step_e ~var
          |> Option.map (fun iv -> (var, iv))
  in
  let step_stmt =
    Option.map (fun (v, e) -> TAssign (TLvar (v, Ast.Tint), e)) step
  in
  lower_loop b ~range cond body step_stmt

and stmt_writes_var var = function
  | TAssign (TLvar (v, _), _) -> v = var
  | TAssign (TLindex _, _) | TExpr _ | TReturn _ -> false
  | TIf (_, a, b) ->
      List.exists (stmt_writes_var var) a || List.exists (stmt_writes_var var) b
  | TWhile (_, body) -> List.exists (stmt_writes_var var) body
  | TFor { init; step; body; _ } ->
      (match init with Some (v, _) -> v = var | None -> false)
      || (match step with Some (v, _) -> v = var | None -> false)
      || List.exists (stmt_writes_var var) body

(* Calls end the current tree; execution resumes in a continuation tree
   whose extra trailing parameter receives the return value. *)
and lower_call b ~dst f args =
  assert (b.guard = None);
  let call_args =
    List.map
      (function
        | Aexpr e -> lower_expr b e
        | Aarray name -> array_base b name)
      args
  in
  let cont_id = fresh_tree_id b in
  let cont_args = current_args b in
  let ret_var =
    match dst with
    | Some (TLvar (name, _)) -> Some (name, Ir.Reg.Gen.fresh b.gen)
    | Some (TLindex _) ->
        errf "%s: call result must be assigned to a scalar" b.fname
    | None -> None
  in
  let ret = Option.map snd ret_var in
  finish b
    [
      {
        xguard = None;
        kind =
          Ir.Tree.Call { callee = f; call_args; ret; return_to = cont_id; cont_args };
      };
    ];
  start b ?ret_var cont_id

(* ------------------------------------------------------------------ *)
(* Functions and programs *)

let lower_fun ~kinds_global (f : tfun) : Ir.Prog.func =
  (* frame layout for local arrays *)
  let frame_words, kinds =
    List.fold_left
      (fun (off, kinds) (name, k) ->
        match (k : Ast.vkind) with
        | Ast.Scalar ty -> (off, SMap.add name (Kreg ty) kinds)
        | Ast.Array (ty, n) -> (off + n, SMap.add name (Kfarray (ty, off)) kinds)
        | Ast.Array_param _ -> assert false)
      (0, kinds_global) f.locals
  in
  let kinds =
    List.fold_left
      (fun kinds (p : Ast.param) ->
        match p.pkind with
        | Ast.Scalar ty -> SMap.add p.pname (Kreg ty) kinds
        | Ast.Array_param ty -> SMap.add p.pname (Kparray ty) kinds
        | Ast.Array _ -> assert false)
      kinds f.params
  in
  let var_order =
    List.map (fun (p : Ast.param) -> p.pname) f.params
    @ List.filter_map
        (fun (name, k) ->
          match (k : Ast.vkind) with Ast.Scalar _ -> Some name | _ -> None)
        f.locals
  in
  let gen = Ir.Reg.Gen.create () in
  let fparams =
    List.map (fun (p : Ast.param) -> (p.pname, Ir.Reg.Gen.fresh gen)) f.params
  in
  let b =
    {
      fname = f.fname;
      gen;
      kinds;
      var_order;
      next_tree = 1;
      trees = [];
      tree_id = 0;
      insns = [];
      next_insn = 0;
      params = List.map snd fparams;
      ranges = [];
      vmap = List.fold_left (fun m (v, r) -> SMap.add v r m) SMap.empty fparams;
      guard = None;
      terminated = false;
      range_env = SMap.empty;
      vn = Hashtbl.create 32;
      mem_cache = Hashtbl.create 8;
      load_cache = Hashtbl.create 8;
    }
  in
  (* local scalars start as zero *)
  List.iter
    (fun (name, k) ->
      match (k : Ast.vkind) with
      | Ast.Scalar Ast.Tint -> b.vmap <- SMap.add name (const_int b 0) b.vmap
      | Ast.Scalar Ast.Tdouble ->
          b.vmap <- SMap.add name (const_float b 0.0) b.vmap
      | _ -> ())
    f.locals;
  List.iter (lower_stmt b) f.body;
  if not b.terminated then begin
    (* implicit return *)
    let v =
      match f.ret_ty with
      | None -> None
      | Some Ast.Tint -> Some (const_int b 0)
      | Some Ast.Tdouble -> Some (const_float b 0.0)
    in
    finish b [ { xguard = None; kind = Ir.Tree.Return { value = v } } ]
  end;
  {
    Ir.Prog.fname = f.fname;
    fparams = List.map snd fparams;
    frame_words;
    entry = 0;
    trees = List.rev b.trees;
  }

(** Evaluate a constant initializer expression. *)
let rec const_value ty (e : texpr) : Ir.Value.t =
  match (e.node, ty) with
  | TInt v, Ast.Tint -> Ir.Value.Int v
  | TInt v, Ast.Tdouble -> Ir.Value.Float (float_of_int v)
  | TFloat f, Ast.Tdouble -> Ir.Value.Float f
  | TFloat f, Ast.Tint -> Ir.Value.Int (int_of_float f)
  | TUnop (Ast.Neg, a), _ -> (
      match const_value ty a with
      | Ir.Value.Int v -> Ir.Value.Int (-v)
      | Ir.Value.Float f -> Ir.Value.Float (-.f))
  | TCast (t, a), _ -> const_value ty (const_as t a)
  | _ -> errf "global initializers must be constants"

and const_as t (e : texpr) : texpr = { e with ty = t }

let lower_global (g : Ast.global_decl) : Ir.Prog.global =
  let elab e env = Typecheck.check_expr env e in
  let empty_env = Typecheck.{ vars = []; funs = []; globals = [] } in
  match g.gkind with
  | Ast.Scalar ty ->
      let ginit =
        match g.ginit with
        | None -> [| (match ty with Ast.Tint -> Ir.Value.Int 0 | Ast.Tdouble -> Ir.Value.Float 0.0) |]
        | Some (Ast.Init_scalar e) -> [| const_value ty (elab e empty_env) |]
        | Some (Ast.Init_array _) -> assert false
      in
      { Ir.Prog.gname = g.gname; words = 1; ginit }
  | Ast.Array (ty, n) ->
      let ginit =
        match g.ginit with
        | None -> [||]
        | Some (Ast.Init_array es) ->
            Array.of_list (List.map (fun e -> const_value ty (elab e empty_env)) es)
        | Some (Ast.Init_scalar _) -> assert false
      in
      { Ir.Prog.gname = g.gname; words = n; ginit }
  | Ast.Array_param _ -> assert false

(** Lower a checked, normalized program. *)
let lower (p : tprog) : Ir.Prog.t =
  let kinds_global =
    List.fold_left
      (fun m (g : Ast.global_decl) ->
        match g.gkind with
        | Ast.Scalar ty -> SMap.add g.gname (Kgscalar ty) m
        | Ast.Array (ty, _) -> SMap.add g.gname (Kgarray ty) m
        | Ast.Array_param _ -> m)
      SMap.empty p.globals
  in
  let prog =
    {
      Ir.Prog.funcs =
        List.map (fun (f : tfun) -> (f.fname, lower_fun ~kinds_global f)) p.funs;
      globals = List.map lower_global p.globals;
      main = "main";
    }
  in
  Ir.Prog.validate prog;
  prog

(** Front-to-back convenience: parse, check, normalize, lower. *)
let compile (src : string) : Ir.Prog.t =
  let ast = Parser.parse_program src in
  let tast = Typecheck.check ast in
  let tast = Normalize.run tast in
  lower tast
