lib/lang/normalize.ml: Ast List Printf Tast
