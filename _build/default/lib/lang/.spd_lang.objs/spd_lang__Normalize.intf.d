lib/lang/normalize.mli: Ast Tast
