lib/lang/lower.ml: Array Ast Fmt Hashtbl List Map Normalize Option Parser Printf Spd_ir String Tast Typecheck
