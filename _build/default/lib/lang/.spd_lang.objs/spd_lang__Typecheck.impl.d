lib/lang/typecheck.ml: Ast Fmt List Option Spd_ir Tast
