lib/lang/lower.mli: Ast Format Hashtbl Map Seq Spd_ir String Tast
