lib/lang/lexer.mli:
