(** Typed abstract syntax.

    Produced by {!Typecheck}; all implicit conversions have been made
    explicit ([TCast]), every binary operation has operands of one type,
    conditions are [int]-typed, and names are resolved to their kinds. *)

type ty = Ast.ty

type texpr = { node : node; ty : ty }

and node =
  | TInt of int
  | TFloat of float
  | TVar of string
  | TIndex of string * texpr  (** element access; [ty] is the element type *)
  | TUnop of Ast.unop * texpr
  | TBinop of Ast.binop * texpr * texpr
  | TCall of string * targ list
  | TCast of ty * texpr

and targ =
  | Aexpr of texpr
  | Aarray of string  (** an array name decaying to its address *)

type tlvalue =
  | TLvar of string * ty
  | TLindex of string * texpr * ty  (** array, index, element type *)

type tstmt =
  | TAssign of tlvalue * texpr
  | TIf of texpr * tstmt list * tstmt list
  | TWhile of texpr * tstmt list
  | TFor of {
      init : (string * texpr) option;
      cond : texpr;
      step : (string * texpr) option;
      body : tstmt list;
    }
  | TExpr of texpr  (** a call evaluated for effect *)
  | TReturn of texpr option

type tfun = {
  fname : string;
  ret_ty : ty option;
  params : Ast.param list;
  locals : (string * Ast.vkind) list;
  body : tstmt list;
}

type tprog = { globals : Ast.global_decl list; funs : tfun list }

let rec expr_has_call (e : texpr) =
  match e.node with
  | TCall _ -> true
  | TInt _ | TFloat _ | TVar _ -> false
  | TIndex (_, i) -> expr_has_call i
  | TUnop (_, a) | TCast (_, a) -> expr_has_call a
  | TBinop (_, a, b) -> expr_has_call a || expr_has_call b

let rec stmt_has_call = function
  | TAssign (TLvar _, e) | TExpr e -> expr_has_call e
  | TAssign (TLindex (_, i, _), e) -> expr_has_call i || expr_has_call e
  | TIf (c, a, b) ->
      expr_has_call c || List.exists stmt_has_call a
      || List.exists stmt_has_call b
  | TWhile (c, b) -> expr_has_call c || List.exists stmt_has_call b
  | TFor { init; cond; step; body } ->
      (match init with Some (_, e) -> expr_has_call e | None -> false)
      || expr_has_call cond
      || (match step with Some (_, e) -> expr_has_call e | None -> false)
      || List.exists stmt_has_call body
  | TReturn (Some e) -> expr_has_call e
  | TReturn None -> false

(** A statement is flat when it contains no loop, call or return: flat
    regions are what if-conversion may fold into the enclosing decision
    tree. *)
let rec stmt_is_flat s =
  match s with
  | TAssign _ | TExpr _ -> not (stmt_has_call s)
  | TIf (c, a, b) ->
      (not (expr_has_call c))
      && List.for_all stmt_is_flat a
      && List.for_all stmt_is_flat b
  | TWhile _ | TFor _ | TReturn _ -> false
