(** Recursive-descent parser for the mini-C language. *)

open Ast

exception Error of string * int

type st = { toks : (Lexer.token * int) array; mutable pos : int }

let cur st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (Lexer.token_name (cur st)), line st))

let expect st tok =
  if cur st = tok then advance st
  else err st (Printf.sprintf "expected %s" (Lexer.token_name tok))

let expect_ident st =
  match cur st with
  | Lexer.IDENT s -> advance st; s
  | _ -> err st "expected identifier"

let expect_int st =
  match cur st with
  | Lexer.INT_LIT v -> advance st; v
  | _ -> err st "expected integer literal"

let parse_ty st =
  match cur st with
  | Lexer.KW_INT -> advance st; Tint
  | Lexer.KW_DOUBLE -> advance st; Tdouble
  | _ -> err st "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_expr st = parse_lor st

and parse_lor st =
  let lhs = ref (parse_land st) in
  while cur st = Lexer.OROR do
    advance st;
    lhs := Binop (Lor, !lhs, parse_land st)
  done;
  !lhs

and parse_land st =
  let lhs = ref (parse_bor st) in
  while cur st = Lexer.ANDAND do
    advance st;
    lhs := Binop (Land, !lhs, parse_bor st)
  done;
  !lhs

and parse_bor st =
  let lhs = ref (parse_bxor st) in
  while cur st = Lexer.BAR do
    advance st;
    lhs := Binop (Bor, !lhs, parse_bxor st)
  done;
  !lhs

and parse_bxor st =
  let lhs = ref (parse_band st) in
  while cur st = Lexer.CARET do
    advance st;
    lhs := Binop (Bxor, !lhs, parse_band st)
  done;
  !lhs

and parse_band st =
  let lhs = ref (parse_equality st) in
  while cur st = Lexer.AMP do
    advance st;
    lhs := Binop (Band, !lhs, parse_equality st)
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | Lexer.EQ -> advance st; lhs := Binop (Eq, !lhs, parse_relational st)
    | Lexer.NE -> advance st; lhs := Binop (Ne, !lhs, parse_relational st)
    | _ -> continue := false
  done;
  !lhs

and parse_relational st =
  let lhs = ref (parse_shift st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | Lexer.LT -> advance st; lhs := Binop (Lt, !lhs, parse_shift st)
    | Lexer.LE -> advance st; lhs := Binop (Le, !lhs, parse_shift st)
    | Lexer.GT -> advance st; lhs := Binop (Gt, !lhs, parse_shift st)
    | Lexer.GE -> advance st; lhs := Binop (Ge, !lhs, parse_shift st)
    | _ -> continue := false
  done;
  !lhs

and parse_shift st =
  let lhs = ref (parse_additive st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | Lexer.SHL -> advance st; lhs := Binop (Shl, !lhs, parse_additive st)
    | Lexer.SHR -> advance st; lhs := Binop (Shr, !lhs, parse_additive st)
    | _ -> continue := false
  done;
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | Lexer.PLUS -> advance st; lhs := Binop (Add, !lhs, parse_multiplicative st)
    | Lexer.MINUS -> advance st; lhs := Binop (Sub, !lhs, parse_multiplicative st)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | Lexer.STAR -> advance st; lhs := Binop (Mul, !lhs, parse_unary st)
    | Lexer.SLASH -> advance st; lhs := Binop (Div, !lhs, parse_unary st)
    | Lexer.PERCENT -> advance st; lhs := Binop (Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match cur st with
  | Lexer.MINUS -> advance st; Unop (Neg, parse_unary st)
  | Lexer.NOT -> advance st; Unop (Lnot, parse_unary st)
  | Lexer.LPAREN
    when (match fst st.toks.(st.pos + 1) with
         | Lexer.KW_INT | Lexer.KW_DOUBLE -> fst st.toks.(st.pos + 2) = Lexer.RPAREN
         | _ -> false) ->
      advance st;
      let ty = parse_ty st in
      expect st Lexer.RPAREN;
      Cast (ty, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match cur st with
  | Lexer.INT_LIT v -> advance st; Int_lit v
  | Lexer.FLOAT_LIT f -> advance st; Float_lit f
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      advance st;
      match cur st with
      | Lexer.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET;
          Index (name, idx)
      | Lexer.LPAREN ->
          advance st;
          let args = parse_args st in
          Call (name, args)
      | _ -> Var name)
  | _ -> err st "expected an expression"

and parse_args st =
  if cur st = Lexer.RPAREN then begin advance st; [] end
  else begin
    let args = ref [ parse_expr st ] in
    while cur st = Lexer.COMMA do
      advance st;
      args := parse_expr st :: !args
    done;
    expect st Lexer.RPAREN;
    List.rev !args
  end

(* ------------------------------------------------------------------ *)
(* Statements *)

let parse_simple_assign st =
  (* [ident = expr], as used in for-loop headers *)
  let name = expect_ident st in
  expect st Lexer.ASSIGN;
  let e = parse_expr st in
  (name, e)

let rec parse_stmt st : stmt =
  match cur st with
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_block_or_stmt st in
      let else_ =
        if cur st = Lexer.KW_ELSE then begin
          advance st;
          parse_block_or_stmt st
        end
        else []
      in
      If (cond, then_, else_)
  | Lexer.KW_WHILE ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      While (cond, parse_block_or_stmt st)
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      let init =
        if cur st = Lexer.SEMI then None else Some (parse_simple_assign st)
      in
      expect st Lexer.SEMI;
      let cond = parse_expr st in
      expect st Lexer.SEMI;
      let step =
        if cur st = Lexer.RPAREN then None else Some (parse_simple_assign st)
      in
      expect st Lexer.RPAREN;
      For { init; cond; step; body = parse_block_or_stmt st }
  | Lexer.KW_RETURN ->
      advance st;
      if cur st = Lexer.SEMI then begin
        advance st;
        Return None
      end
      else begin
        let e = parse_expr st in
        expect st Lexer.SEMI;
        Return (Some e)
      end
  | Lexer.IDENT name -> (
      advance st;
      match cur st with
      | Lexer.ASSIGN ->
          advance st;
          let e = parse_expr st in
          expect st Lexer.SEMI;
          Assign (Lvar name, e)
      | Lexer.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET;
          expect st Lexer.ASSIGN;
          let e = parse_expr st in
          expect st Lexer.SEMI;
          Assign (Lindex (name, idx), e)
      | Lexer.LPAREN ->
          advance st;
          let args = parse_args st in
          expect st Lexer.SEMI;
          Expr (Call (name, args))
      | _ -> err st "expected '=', '[' or '(' after identifier")
  | _ -> err st "expected a statement"

and parse_block_or_stmt st : stmt list =
  if cur st = Lexer.LBRACE then begin
    advance st;
    let stmts = ref [] in
    while cur st <> Lexer.RBRACE do
      stmts := parse_stmt st :: !stmts
    done;
    advance st;
    List.rev !stmts
  end
  else [ parse_stmt st ]

(* ------------------------------------------------------------------ *)
(* Declarations *)

let parse_init st =
  if cur st = Lexer.LBRACE then begin
    advance st;
    let items = ref [ parse_expr st ] in
    while cur st = Lexer.COMMA do
      advance st;
      items := parse_expr st :: !items
    done;
    expect st Lexer.RBRACE;
    Init_array (List.rev !items)
  end
  else Init_scalar (parse_expr st)

let parse_param st =
  let ty = parse_ty st in
  let name = expect_ident st in
  if cur st = Lexer.LBRACKET then begin
    advance st;
    expect st Lexer.RBRACKET;
    { pname = name; pkind = Array_param ty }
  end
  else { pname = name; pkind = Scalar ty }

let parse_params st =
  expect st Lexer.LPAREN;
  if cur st = Lexer.RPAREN then begin advance st; [] end
  else if cur st = Lexer.KW_VOID && fst st.toks.(st.pos + 1) = Lexer.RPAREN
  then begin
    advance st;
    advance st;
    []
  end
  else begin
    let ps = ref [ parse_param st ] in
    while cur st = Lexer.COMMA do
      advance st;
      ps := parse_param st :: !ps
    done;
    expect st Lexer.RPAREN;
    List.rev !ps
  end

(* A local declaration: [type ident;] or [type ident[N];]. *)
let parse_local st =
  let ty = parse_ty st in
  let name = expect_ident st in
  let kind =
    if cur st = Lexer.LBRACKET then begin
      advance st;
      let n = expect_int st in
      expect st Lexer.RBRACKET;
      Array (ty, n)
    end
    else Scalar ty
  in
  expect st Lexer.SEMI;
  (name, kind)

let parse_fun_body st =
  expect st Lexer.LBRACE;
  let locals = ref [] in
  while cur st = Lexer.KW_INT || cur st = Lexer.KW_DOUBLE do
    locals := parse_local st :: !locals
  done;
  let stmts = ref [] in
  while cur st <> Lexer.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  (List.rev !locals, List.rev !stmts)

(** Parse a whole translation unit. *)
let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let globals = ref [] in
  let funs = ref [] in
  while cur st <> Lexer.EOF do
    let ret_ty = if cur st = Lexer.KW_VOID then (advance st; None) else Some (parse_ty st) in
    let name = expect_ident st in
    match cur st with
    | Lexer.LPAREN ->
        let params = parse_params st in
        let locals, body = parse_fun_body st in
        funs := { fname = name; ret_ty; params; locals; body } :: !funs
    | _ ->
        let ty =
          match ret_ty with
          | Some t -> t
          | None -> err st "global declarations cannot be void"
        in
        let kind =
          if cur st = Lexer.LBRACKET then begin
            advance st;
            let n = expect_int st in
            expect st Lexer.RBRACKET;
            Array (ty, n)
          end
          else Scalar ty
        in
        let init =
          if cur st = Lexer.ASSIGN then begin
            advance st;
            Some (parse_init st)
          end
          else None
        in
        expect st Lexer.SEMI;
        globals := { gname = name; gkind = kind; ginit = init } :: !globals
  done;
  { globals = List.rev !globals; funs = List.rev !funs }
