(** Recursive-descent parser for the mini-C language. *)

exception Error of string * int
type st = { toks : (Lexer.token * int) array; mutable pos : int; }
val cur : st -> Lexer.token
val line : st -> int
val advance : st -> unit
val err : st -> string -> 'a
val expect : st -> Lexer.token -> unit
val expect_ident : st -> string
val expect_int : st -> int
val parse_ty : st -> Ast.ty
val parse_expr : st -> Ast.expr
val parse_lor : st -> Ast.expr
val parse_land : st -> Ast.expr
val parse_bor : st -> Ast.expr
val parse_bxor : st -> Ast.expr
val parse_band : st -> Ast.expr
val parse_equality : st -> Ast.expr
val parse_relational : st -> Ast.expr
val parse_shift : st -> Ast.expr
val parse_additive : st -> Ast.expr
val parse_multiplicative : st -> Ast.expr
val parse_unary : st -> Ast.expr
val parse_primary : st -> Ast.expr
val parse_args : st -> Ast.expr list
val parse_simple_assign : st -> string * Ast.expr
val parse_stmt : st -> Ast.stmt
val parse_block_or_stmt : st -> Ast.stmt list
val parse_init : st -> Ast.init
val parse_param : st -> Ast.param
val parse_params : st -> Ast.param list
val parse_local : st -> string * Ast.vkind
val parse_fun_body :
  st -> (string * Ast.vkind) list * Ast.stmt list

(** Parse a whole translation unit. *)
val parse_program : string -> Ast.program
