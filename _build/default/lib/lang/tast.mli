(** Typed abstract syntax.

    Produced by {!Typecheck}; all implicit conversions have been made
    explicit ([TCast]), every binary operation has operands of one type,
    conditions are [int]-typed, and names are resolved to their kinds. *)

type ty = Ast.ty
type texpr = { node : node; ty : ty; }
and node =
    TInt of int
  | TFloat of float
  | TVar of string
  | TIndex of string * texpr
  | TUnop of Ast.unop * texpr
  | TBinop of Ast.binop * texpr * texpr
  | TCall of string * targ list
  | TCast of ty * texpr
and targ = Aexpr of texpr | Aarray of string
type tlvalue = TLvar of string * ty | TLindex of string * texpr * ty
type tstmt =
    TAssign of tlvalue * texpr
  | TIf of texpr * tstmt list * tstmt list
  | TWhile of texpr * tstmt list
  | TFor of { init : (string * texpr) option; cond : texpr;
      step : (string * texpr) option; body : tstmt list;
    }
  | TExpr of texpr
  | TReturn of texpr option
type tfun = {
  fname : string;
  ret_ty : ty option;
  params : Ast.param list;
  locals : (string * Ast.vkind) list;
  body : tstmt list;
}
type tprog = { globals : Ast.global_decl list; funs : tfun list; }
val expr_has_call : texpr -> bool
val stmt_has_call : tstmt -> bool

(** A statement is flat when it contains no loop, call or return: flat
    regions are what if-conversion may fold into the enclosing decision
    tree. *)
val stmt_is_flat : tstmt -> bool
