(** Call normalization.

    Lowering materializes calls as decision-tree exits, so a call must be
    the entire right-hand side of an assignment or a statement by itself.
    This pass hoists every nested call into a fresh temporary:

    [x = f(a) + g(b);]  becomes  [__t0 = f(a); __t1 = g(b); x = __t0 + __t1;]

    A call in a [while] condition is evaluated before the loop and
    re-evaluated at the end of each iteration. *)

type st = {
  mutable counter : int;
  mutable temps : (string * Ast.vkind) list;
}
val fresh : st -> Ast.ty -> string

(** [norm_expr st e] rewrites [e] so it contains no calls, returning the
    hoisted statements (in execution order) and the residual expression. *)
val norm_expr :
  st -> Tast.texpr -> Tast.tstmt list * Tast.texpr
val norm_call :
  st ->
  string ->
  Tast.targ list ->
  Tast.ty -> Tast.tstmt list * Tast.texpr
val norm_stmt : st -> Tast.tstmt -> Tast.tstmt list
val norm_lvalue :
  st ->
  Tast.tlvalue -> Tast.tstmt list * Tast.tlvalue
val norm_stmts : st -> Tast.tstmt list -> Tast.tstmt list
val norm_fun : Tast.tfun -> Tast.tfun

(** Normalize every function of the program. *)
val run : Tast.tprog -> Tast.tprog
