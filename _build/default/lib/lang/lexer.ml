(** Hand-written lexer for the mini-C language. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_DOUBLE
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | NOT
  | ANDAND
  | OROR
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | EOF

exception Error of string * int  (** message, line *)

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "double" -> Some KW_DOUBLE
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(** [tokenize src] returns the token stream with source line numbers. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let err msg = raise (Error (msg, !line)) in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then err "unterminated comment"
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && src.[!i] = '.' then begin
        is_float := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let text = String.sub src start (!i - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> emit (FLOAT_LIT f)
        | None -> err ("bad float literal " ^ text)
      else
        match int_of_string_opt text with
        | Some v -> emit (INT_LIT v)
        | None -> err ("bad int literal " ^ text)
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      match keyword_of_string text with
      | Some kw -> emit kw
      | None -> emit (IDENT text)
    end
    else begin
      let two tk = emit tk; i := !i + 2 in
      let one tk = emit tk; incr i in
      match (c, peek 1) with
      | '<', Some '=' -> two LE
      | '<', Some '<' -> two SHL
      | '>', Some '=' -> two GE
      | '>', Some '>' -> two SHR
      | '=', Some '=' -> two EQ
      | '!', Some '=' -> two NE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '=', _ -> one ASSIGN
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '!', _ -> one NOT
      | '&', _ -> one AMP
      | '|', _ -> one BAR
      | '^', _ -> one CARET
      | _ -> err (Printf.sprintf "unexpected character %C" c)
    end
  done;
  List.rev ((EOF, !line) :: !toks)

let token_name = function
  | INT_LIT v -> Printf.sprintf "int literal %d" v
  | FLOAT_LIT f -> Printf.sprintf "float literal %g" f
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_INT -> "'int'"
  | KW_DOUBLE -> "'double'"
  | KW_VOID -> "'void'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | NOT -> "'!'"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | CARET -> "'^'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | EOF -> "end of file"
