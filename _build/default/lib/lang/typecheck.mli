(** Type checker and elaborator: AST -> typed AST.

    Responsibilities:
    - name resolution and kind checking (scalar vs array vs array param);
    - arithmetic promotion: a binary operation with one [double] operand
      promotes the other ([TCast]); comparisons yield [int];
    - implicit conversion at assignments, call arguments and returns;
    - conditions are coerced to [int] (a [double] condition becomes
      [d != 0.0]);
    - arity/type checking of calls, including the output builtins. *)

exception Error of string
val errf : ('a, Format.formatter, unit, 'b) format4 -> 'a
type entry = Escalar of Tast.ty | Earray of Tast.ty
type env = {
  vars : (string * entry) list;
  funs : (string * (Tast.ty option * Ast.param list)) list;
  globals : (string * entry) list;
}
val lookup : env -> string -> entry option
val entry_of_kind : Ast.vkind -> entry
val cast_to : Tast.ty -> Tast.texpr -> Tast.texpr
val is_comparison : Ast.binop -> bool
val int_only : Ast.binop -> bool
val check_expr : env -> Ast.expr -> Tast.texpr
val check_call :
  env -> string -> Ast.expr list -> Tast.texpr
val check_cond : env -> Ast.expr -> Tast.texpr
val check_stmt :
  env ->
  ret:Tast.ty option -> Ast.stmt -> Tast.tstmt
val check_fun : env -> Ast.fundef -> Tast.tfun

(** Check a whole program.  Requires an [int main()] entry point. *)
val check : Ast.program -> Tast.tprog
