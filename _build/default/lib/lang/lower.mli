(** Lowering: typed AST -> decision-tree IR.

    This is the frontend's code generator, mirroring what the paper calls
    "an optimizing C compiler which generates decision trees":

    - flat conditionals are {b if-converted} into the enclosing tree:
      control dependence becomes data dependence through materialized path
      conditions; stores are guarded, scalar updates merge via [Select];
    - loops with flat bodies become single self-looping trees (condition
      evaluated in the tree, body guarded by it, back edge as the
      first-priority exit) — the canonical loop-body decision tree of the
      paper;
    - calls, returns and non-flat control flow split trees; values flow
      between trees through block arguments (tree parameters);
    - for-loops with recognizable induction variables annotate the loop
      trees with the variable's static interval, feeding the Banerjee test.

    Registers are single-assignment within a tree by construction. *)

module Ir = Spd_ir
module SMap :
  sig
    type key = String.t
    type 'a t = 'a Map.Make(String).t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
exception Error of string
val errf : ('a, Format.formatter, unit, 'b) format4 -> 'a
type vkind =
    Kreg of Ast.ty
  | Kgscalar of Ast.ty
  | Kgarray of Ast.ty
  | Kfarray of Ast.ty * int
  | Kparray of Ast.ty
type builder = {
  fname : string;
  gen : Ir.Reg.Gen.t;
  kinds : vkind SMap.t;
  var_order : string list;
  mutable next_tree : int;
  mutable trees : Ir.Tree.t list;
  mutable tree_id : int;
  mutable insns : Ir.Insn.t list;
  mutable next_insn : int;
  mutable params : Ir.Reg.t list;
  mutable ranges : (Ir.Reg.t * Ir.Interval.t) list;
  mutable vmap : Ir.Reg.t SMap.t;
  mutable guard : Ir.Reg.t option;
  mutable terminated : bool;
  mutable range_env : Ir.Interval.t SMap.t;
  vn : (Ir.Opcode.t * Ir.Reg.t list, Ir.Reg.t) Hashtbl.t;
  mem_cache : (Ir.Reg.t, Ir.Reg.t * Ir.Reg.t option) Hashtbl.t;
  load_cache : (Ir.Reg.t, Ir.Reg.t) Hashtbl.t;
}
val fresh_tree_id : builder -> int
val emit :
  builder -> ?guard:Ir.Insn.guard -> Ir.Opcode.t -> Spd_ir.Reg.t list -> int

(** Emit a pure operation with local value numbering: within a tree,
    identical pure operations on identical sources share one register. *)
val emit_vn : builder -> Ir.Opcode.t -> Ir.Reg.t list -> Ir.Reg.t
val emit_cached : builder -> Ir.Opcode.t -> Ir.Reg.t
val const_int : builder -> int -> Ir.Reg.t
val const_float : builder -> float -> Ir.Reg.t

(** Emit a load from [addr], reusing a forwarded value when available:
    the last store through [addr] in the same guard context, or the last
    load from [addr] (loads execute speculatively, so any context). *)
val emit_load : builder -> Ir.Reg.t -> Ir.Reg.t

(** Emit a (possibly guarded) store and update the forwarding caches: any
    store may clobber any address, so both caches are flushed before the
    new binding is recorded. *)
val emit_store : builder -> Spd_ir.Reg.t -> Spd_ir.Reg.t -> unit

(** Registers of the current tree's parameters that hold object addresses
    (array parameters of the function). *)
val addr_params : builder -> Ir.Reg.Set.t

(** Close the tree under construction with the given exits. *)
val finish : builder -> Ir.Tree.exit list -> unit

(** Current block arguments: the registers of all register-resident
    variables, in the fixed order. *)
val current_args : builder -> Ir.Reg.t list

(** Begin a new tree.  Every register-resident variable gets a fresh
    parameter register; [ret_var], when given, receives an extra trailing
    parameter holding a call's return value. *)
val start : builder -> ?ret_var:SMap.key * Ir.Reg.t -> int -> unit
val array_base : builder -> SMap.key -> Ir.Reg.t
val ibin_of_op : Ast.binop -> Ir.Opcode.ibin
val icmp_of_op : Ast.binop -> Ir.Opcode.icmp
val fbin_of_op : Ast.binop -> Ir.Opcode.fbin
val fcmp_of_op : Ast.binop -> Ir.Opcode.fcmp

(** Does this node already produce a canonical boolean (0 or 1)? *)
val is_boolean : Tast.texpr -> bool
val lower_expr : builder -> Tast.texpr -> Ir.Reg.t
val lower_addr : builder -> SMap.key -> Tast.texpr -> Ir.Reg.t
val lower_bool : builder -> Tast.texpr -> Ir.Reg.t

(** Conjoin the current path condition with [pc]. *)
val conj : builder -> Ir.Reg.t -> Ir.Reg.t
val store_guard : builder -> Ir.Insn.guard option

(** Static interval for the values a for-loop variable has at loop-tree
    entry, when the bounds are literal.  Conservatively widened to include
    the final (test-failing) value. *)
val iv_interval :
  init:Tast.texpr option ->
  cond:Tast.texpr ->
  step:Tast.texpr option -> var:string -> Ir.Interval.t option
val lower_stmt : builder -> Tast.tstmt -> unit
val lower_if_flat :
  builder ->
  Tast.texpr ->
  Tast.tstmt list -> Tast.tstmt list -> unit
val lower_if_split :
  builder ->
  Tast.texpr ->
  Tast.tstmt list -> Tast.tstmt list -> unit
val lower_loop :
  builder ->
  range:(SMap.key * Ir.Interval.t) option ->
  Tast.texpr ->
  Tast.tstmt list -> Tast.tstmt option -> unit
val lower_for :
  builder ->
  (string * Tast.texpr) option ->
  Tast.texpr ->
  (string * Tast.texpr) option -> Tast.tstmt list -> unit
val stmt_writes_var : string -> Tast.tstmt -> bool
val lower_call :
  builder ->
  dst:Tast.tlvalue option ->
  string -> Tast.targ list -> unit
val lower_fun :
  kinds_global:vkind SMap.t -> Tast.tfun -> Ir.Prog.func

(** Evaluate a constant initializer expression. *)
val const_value : Ast.ty -> Tast.texpr -> Ir.Value.t
val const_as : Tast.ty -> Tast.texpr -> Tast.texpr
val lower_global : Ast.global_decl -> Ir.Prog.global

(** Lower a checked, normalized program. *)
val lower : Tast.tprog -> Ir.Prog.t

(** Front-to-back convenience: parse, check, normalize, lower. *)
val compile : string -> Ir.Prog.t
