(** Abstract syntax of the mini-C input language.

    The language covers what the paper's benchmark kernels need: [int] and
    [double] scalars, one-dimensional arrays (globals, locals and array
    parameters — array parameters are what defeats the static
    disambiguator, exactly as in the NRC benchmarks), structured control
    flow, function calls including recursion, and the two output builtins
    [print_int]/[print_float].

    Multi-dimensional arrays are written with explicit index arithmetic
    ([u[i * 50 + j]]), keeping the subscript math visible to the affine
    address analyzer — the same information a C compiler would recover by
    linearizing subscripts. *)

type ty = Tint | Tdouble

type unop = Neg | Lnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land  (** strict (non-short-circuit) logical and *)
  | Lor  (** strict logical or *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr  (** [a[e]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Cast of ty * expr

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of {
      init : (string * expr) option;  (** [i = e] *)
      cond : expr;
      step : (string * expr) option;
      body : stmt list;
    }
  | Expr of expr  (** call in statement position *)
  | Return of expr option

(** Variable declarations. [Array_param] only occurs in parameter lists. *)
type vkind =
  | Scalar of ty
  | Array of ty * int
  | Array_param of ty

type param = { pname : string; pkind : vkind }

type fundef = {
  fname : string;
  ret_ty : ty option;  (** [None] = void *)
  params : param list;
  locals : (string * vkind) list;
  body : stmt list;
}

type init = Init_scalar of expr | Init_array of expr list

type global_decl = { gname : string; gkind : vkind; ginit : init option }

type program = { globals : global_decl list; funs : fundef list }

let pp_ty ppf t = Fmt.string ppf (match t with Tint -> "int" | Tdouble -> "double")

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
