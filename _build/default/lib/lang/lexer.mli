(** Hand-written lexer for the mini-C language. *)

type token =
    INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_DOUBLE
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | NOT
  | ANDAND
  | OROR
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | EOF
exception Error of string * int

(** message, line *)
val keyword_of_string : string -> token option
val is_digit : char -> bool
val is_ident_start : char -> bool
val is_ident_char : char -> bool

(** [tokenize src] returns the token stream with source line numbers. *)
val tokenize : string -> (token * int) list
val token_name : token -> string
