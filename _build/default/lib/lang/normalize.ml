(** Call normalization.

    Lowering materializes calls as decision-tree exits, so a call must be
    the entire right-hand side of an assignment or a statement by itself.
    This pass hoists every nested call into a fresh temporary:

    [x = f(a) + g(b);]  becomes  [__t0 = f(a); __t1 = g(b); x = __t0 + __t1;]

    A call in a [while] condition is evaluated before the loop and
    re-evaluated at the end of each iteration. *)

open Tast

type st = { mutable counter : int; mutable temps : (string * Ast.vkind) list }

let fresh st (ty : Ast.ty) =
  let name = Printf.sprintf "__t%d" st.counter in
  st.counter <- st.counter + 1;
  st.temps <- (name, Ast.Scalar ty) :: st.temps;
  name

(** [norm_expr st e] rewrites [e] so it contains no calls, returning the
    hoisted statements (in execution order) and the residual expression. *)
let rec norm_expr st (e : texpr) : tstmt list * texpr =
  match e.node with
  | TInt _ | TFloat _ | TVar _ -> ([], e)
  | TIndex (a, i) ->
      let s, i = norm_expr st i in
      (s, { e with node = TIndex (a, i) })
  | TUnop (op, a) ->
      let s, a = norm_expr st a in
      (s, { e with node = TUnop (op, a) })
  | TCast (ty, a) ->
      let s, a = norm_expr st a in
      (s, { e with node = TCast (ty, a) })
  | TBinop (op, a, b) ->
      let sa, a = norm_expr st a in
      let sb, b = norm_expr st b in
      (sa @ sb, { e with node = TBinop (op, a, b) })
  | TCall (f, args) ->
      let s, call = norm_call st f args e.ty in
      let tmp = fresh st e.ty in
      (s @ [ TAssign (TLvar (tmp, e.ty), call) ], { e with node = TVar tmp })

and norm_call st f args ty : tstmt list * texpr =
  let stmts, args =
    List.fold_left
      (fun (stmts, args) arg ->
        match arg with
        | Aarray _ -> (stmts, arg :: args)
        | Aexpr e ->
            let s, e = norm_expr st e in
            (stmts @ s, Aexpr e :: args))
      ([], []) args
  in
  (stmts, { node = TCall (f, List.rev args); ty })

let rec norm_stmt st (s : tstmt) : tstmt list =
  match s with
  | TAssign ((TLvar _ as lv), { node = TCall (f, args); ty }) ->
      let pre, call = norm_call st f args ty in
      pre @ [ TAssign (lv, call) ]
  | TAssign ((TLindex _ as lv), ({ node = TCall _; _ } as e)) ->
      (* calls may only land in scalars; bounce through a temporary *)
      let pre_lv, lv = norm_lvalue st lv in
      let pre, e = norm_expr st e in
      pre_lv @ pre @ [ TAssign (lv, e) ]
  | TAssign (lv, e) ->
      let pre_lv, lv = norm_lvalue st lv in
      let pre, e = norm_expr st e in
      pre_lv @ pre @ [ TAssign (lv, e) ]
  | TExpr { node = TCall (f, args); ty } ->
      let pre, call = norm_call st f args ty in
      pre @ [ TExpr call ]
  | TExpr e ->
      let pre, e = norm_expr st e in
      pre @ [ TExpr e ]
  | TIf (c, a, b) ->
      let pre, c = norm_expr st c in
      pre @ [ TIf (c, norm_stmts st a, norm_stmts st b) ]
  | TWhile (c, body) ->
      if expr_has_call c then begin
        (* t = <c>; while (t) { body; t = <c>; } *)
        let pre, c = norm_expr st c in
        let tmp = fresh st Ast.Tint in
        let set = TAssign (TLvar (tmp, Ast.Tint), c) in
        let tvar = { node = TVar tmp; ty = Ast.Tint } in
        pre @ [ set ] @ [ TWhile (tvar, norm_stmts st body @ pre @ [ set ]) ]
      end
      else [ TWhile (c, norm_stmts st body) ]
  | TFor { init; cond; step; body } ->
      (* the type checker rejects calls in for headers *)
      [ TFor { init; cond; step; body = norm_stmts st body } ]
  | TReturn None -> [ TReturn None ]
  | TReturn (Some e) ->
      let pre, e = norm_expr st e in
      pre @ [ TReturn (Some e) ]

and norm_lvalue st = function
  | TLvar _ as lv -> ([], lv)
  | TLindex (a, i, ty) ->
      let pre, i = norm_expr st i in
      (pre, TLindex (a, i, ty))

and norm_stmts st stmts = List.concat_map (norm_stmt st) stmts

let norm_fun (f : tfun) : tfun =
  let st = { counter = 0; temps = [] } in
  let body = norm_stmts st f.body in
  { f with body; locals = f.locals @ List.rev st.temps }

(** Normalize every function of the program. *)
let run (p : tprog) : tprog = { p with funs = List.map norm_fun p.funs }
