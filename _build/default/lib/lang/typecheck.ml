(** Type checker and elaborator: AST -> typed AST.

    Responsibilities:
    - name resolution and kind checking (scalar vs array vs array param);
    - arithmetic promotion: a binary operation with one [double] operand
      promotes the other ([TCast]); comparisons yield [int];
    - implicit conversion at assignments, call arguments and returns;
    - conditions are coerced to [int] (a [double] condition becomes
      [d != 0.0]);
    - arity/type checking of calls, including the output builtins. *)

open Ast
open Tast

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type entry =
  | Escalar of ty
  | Earray of ty  (** global/local array or array parameter *)

type env = {
  vars : (string * entry) list;  (** innermost first *)
  funs : (string * (ty option * param list)) list;
  globals : (string * entry) list;
}

let lookup env name =
  match List.assoc_opt name env.vars with
  | Some e -> Some e
  | None -> List.assoc_opt name env.globals

let entry_of_kind = function
  | Scalar t -> Escalar t
  | Array (t, _) -> Earray t
  | Array_param t -> Earray t

let cast_to ty (e : texpr) =
  if e.ty = ty then e else { node = TCast (ty, e); ty }

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | _ -> false

let int_only = function
  | Mod | Land | Lor | Band | Bor | Bxor | Shl | Shr -> true
  | _ -> false

let rec check_expr env (e : expr) : texpr =
  match e with
  | Int_lit v -> { node = TInt v; ty = Tint }
  | Float_lit f -> { node = TFloat f; ty = Tdouble }
  | Var name -> (
      match lookup env name with
      | Some (Escalar t) -> { node = TVar name; ty = t }
      | Some (Earray _) -> errf "array %s used as a scalar" name
      | None -> errf "undefined variable %s" name)
  | Index (name, idx) -> (
      match lookup env name with
      | Some (Earray t) ->
          let idx = check_expr env idx in
          if idx.ty <> Tint then errf "index of %s is not an int" name;
          { node = TIndex (name, idx); ty = t }
      | Some (Escalar _) -> errf "scalar %s indexed as an array" name
      | None -> errf "undefined array %s" name)
  | Unop (Neg, a) ->
      let a = check_expr env a in
      { node = TUnop (Neg, a); ty = a.ty }
  | Unop (Lnot, a) ->
      let a = check_cond env a in
      { node = TUnop (Lnot, a); ty = Tint }
  | Binop ((Land | Lor) as op, a, b) ->
      let a = check_cond env a and b = check_cond env b in
      { node = TBinop (op, a, b); ty = Tint }
  | Binop (op, a, b) ->
      let a = check_expr env a and b = check_expr env b in
      let oty =
        if a.ty = Tdouble || b.ty = Tdouble then Tdouble else Tint
      in
      if int_only op && oty = Tdouble then
        errf "operator %s requires integer operands" (binop_name op);
      let a = cast_to oty a and b = cast_to oty b in
      let ty = if is_comparison op then Tint else oty in
      { node = TBinop (op, a, b); ty }
  | Call (name, args) -> check_call env name args
  | Cast (ty, a) ->
      let a = check_expr env a in
      cast_to ty a

and check_call env name args : texpr =
  match List.assoc_opt name Spd_ir.Prog.builtins with
  | Some arity ->
      if List.length args <> arity then errf "builtin %s wants %d argument(s)" name arity;
      let want = if name = "print_float" then Tdouble else Tint in
      let args =
        List.map (fun a -> Aexpr (cast_to want (check_expr env a))) args
      in
      { node = TCall (name, args); ty = Tint }
      (* builtins are void; [check_stmt] only lets them appear in
         statement position, so the bogus type is never observed *)
  | None -> (
      match List.assoc_opt name env.funs with
      | None -> errf "call to undefined function %s" name
      | Some (ret, params) ->
          if List.length args <> List.length params then
            errf "%s expects %d argument(s), got %d" name
              (List.length params) (List.length args);
          let check_arg (p : param) (a : expr) =
            match (p.pkind, a) with
            | Array_param t, Var arr -> (
                match lookup env arr with
                | Some (Earray t') when t' = t -> Aarray arr
                | Some (Earray _) ->
                    errf "array argument %s has wrong element type" arr
                | _ -> errf "argument %s of %s must be an array" arr name)
            | Array_param _, _ ->
                errf "argument of %s must be an array name" name
            | Scalar t, a -> Aexpr (cast_to t (check_expr env a))
            | Array (_, _), _ -> assert false
          in
          let targs = List.map2 check_arg params args in
          let ty = match ret with Some t -> t | None -> Tint in
          { node = TCall (name, targs); ty })

(** Check an expression used as a truth value; result type is [int]. *)
and check_cond env (e : expr) : texpr =
  let t = check_expr env e in
  if t.ty = Tint then t
  else
    {
      node = TBinop (Ne, t, { node = TFloat 0.0; ty = Tdouble });
      ty = Tint;
    }

let rec check_stmt env ~(ret : ty option) (s : stmt) : tstmt =
  match s with
  | Assign (Lvar name, e) -> (
      match lookup env name with
      | Some (Escalar t) ->
          TAssign (TLvar (name, t), cast_to t (check_expr env e))
      | Some (Earray _) -> errf "cannot assign to array %s" name
      | None -> errf "assignment to undefined variable %s" name)
  | Assign (Lindex (name, idx), e) -> (
      match lookup env name with
      | Some (Earray t) ->
          let idx = check_expr env idx in
          if idx.ty <> Tint then errf "index of %s is not an int" name;
          TAssign (TLindex (name, idx, t), cast_to t (check_expr env e))
      | Some (Escalar _) -> errf "scalar %s indexed as an array" name
      | None -> errf "assignment to undefined array %s" name)
  | If (c, a, b) ->
      TIf
        ( check_cond env c,
          List.map (check_stmt env ~ret) a,
          List.map (check_stmt env ~ret) b )
  | While (c, body) ->
      TWhile (check_cond env c, List.map (check_stmt env ~ret) body)
  | For { init; cond; step; body } ->
      let check_iv (name, e) =
        match lookup env name with
        | Some (Escalar Tint) -> (name, cast_to Tint (check_expr env e))
        | Some _ -> errf "for-loop variable %s must be an int scalar" name
        | None -> errf "undefined for-loop variable %s" name
      in
      let init = Option.map check_iv init in
      let step = Option.map check_iv step in
      let cond = check_cond env cond in
      if
        expr_has_call cond
        || (match init with Some (_, e) -> expr_has_call e | None -> false)
        || match step with Some (_, e) -> expr_has_call e | None -> false
      then errf "calls are not allowed in for-loop headers";
      TFor { init; cond; step; body = List.map (check_stmt env ~ret) body }
  | Expr (Call (name, args)) -> TExpr (check_call env name args)
  | Expr _ -> errf "expression statements must be calls"
  | Return None ->
      if ret <> None then errf "missing return value";
      TReturn None
  | Return (Some e) -> (
      match ret with
      | None -> errf "void function returns a value"
      | Some t -> TReturn (Some (cast_to t (check_expr env e))))

let check_fun env (f : fundef) : tfun =
  let add_var vars name entry =
    if List.mem_assoc name vars then errf "duplicate variable %s in %s" name f.fname;
    (name, entry) :: vars
  in
  let vars =
    List.fold_left
      (fun vars (p : param) -> add_var vars p.pname (entry_of_kind p.pkind))
      [] f.params
  in
  let vars =
    List.fold_left
      (fun vars (name, kind) ->
        (match kind with
        | Array_param _ -> errf "local %s cannot be an array parameter" name
        | _ -> ());
        add_var vars name (entry_of_kind kind))
      vars f.locals
  in
  let env = { env with vars } in
  {
    fname = f.fname;
    ret_ty = f.ret_ty;
    params = f.params;
    locals = f.locals;
    body = List.map (check_stmt env ~ret:f.ret_ty) f.body;
  }

(** Check a whole program.  Requires an [int main()] entry point. *)
let check (p : program) : tprog =
  let globals =
    List.map
      (fun (g : global_decl) ->
        (match (g.gkind, g.ginit) with
        | Scalar _, Some (Init_array _) ->
            errf "scalar global %s has array initializer" g.gname
        | Array _, Some (Init_scalar _) ->
            errf "array global %s has scalar initializer" g.gname
        | Array_param _, _ -> errf "global %s cannot be an array parameter" g.gname
        | _ -> ());
        (g.gname, entry_of_kind g.gkind))
      p.globals
  in
  let funs =
    List.map (fun (f : fundef) -> (f.fname, (f.ret_ty, f.params))) p.funs
  in
  List.iter
    (fun (name, _) ->
      if Spd_ir.Prog.is_builtin name then
        errf "function %s shadows a builtin" name;
      if List.length (List.filter (fun (n, _) -> n = name) funs) > 1 then
        errf "duplicate function %s" name)
    funs;
  let env = { vars = []; funs; globals } in
  (match List.assoc_opt "main" funs with
  | Some (Some Tint, []) -> ()
  | Some _ -> errf "main must be declared as int main()"
  | None -> errf "program has no main function");
  { globals = p.globals; funs = List.map (check_fun env) p.funs }
