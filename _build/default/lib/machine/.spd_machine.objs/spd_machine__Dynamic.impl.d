lib/machine/dynamic.ml: Array Descr Hashtbl Insn List Memdep Prog Scheduler Spd_analysis Spd_ir Spd_sim Tree
