lib/machine/descr.mli: Format
