lib/machine/scheduler.ml: Array Fun Hashtbl List Spd_analysis Spd_ir Spd_sim
