lib/machine/timing_builder.ml: Descr Prog Scheduler Spd_analysis Spd_ir Spd_sim Tree
