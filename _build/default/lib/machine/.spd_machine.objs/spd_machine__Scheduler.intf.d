lib/machine/scheduler.mli: Spd_analysis Spd_sim
