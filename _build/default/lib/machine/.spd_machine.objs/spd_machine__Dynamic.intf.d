lib/machine/dynamic.mli: Descr Hashtbl Spd_analysis Spd_ir Spd_sim
