lib/machine/timing_builder.mli: Descr Spd_analysis Spd_ir Spd_sim
