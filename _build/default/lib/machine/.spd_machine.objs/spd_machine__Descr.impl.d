lib/machine/descr.ml: Fmt Spd_ir
