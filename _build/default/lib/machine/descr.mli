(** Machine descriptions.

    The experiments of the paper use LIFE implementations with one to
    eight {b universal} functional units (each able to execute any
    operation, fully pipelined, one issue per cycle) and a memory latency
    of two or six cycles.  [Infinite] is the paper's "infinite machine
    simulator" configuration. *)

type width = Infinite | Fus of int
type t = { width : width; mem_latency : int; }
val make : ?width:width -> ?mem_latency:int -> unit -> t
val infinite : mem_latency:int -> t
val fus : int -> mem_latency:int -> t
val pp_width : Format.formatter -> width -> unit
val pp : Format.formatter -> t -> unit

(** Table 6-1 of the paper, as rendered by the harness.  The authoritative
    encoding is {!Spd_ir.Opcode.latency}; this list exists for reporting
    and is checked against it by the test suite. *)
val table_6_1 : mem_latency:int -> (string * int) list
