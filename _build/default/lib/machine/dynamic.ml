(** Hardware dynamic disambiguation baseline (paper section 2.3).

    Models a processor in the style of the Motorola 88110: the load/store
    unit may reorder memory references whose addresses it can compare at
    run time, but only within a small window.  A memory dependence arc is
    relaxed for a traversal when

    - both references fall within [window] memory operations of each
      other (the hardware's reordering scope), and
    - their dynamic addresses differ this traversal (or one of them did
      not commit).

    Arcs outside the window, and genuinely aliasing pairs, constrain the
    schedule exactly as in the static machine.  The per-traversal cost is
    computed from an ASAP/list schedule for the traversal's alias outcome,
    memoized by outcome bit-mask — outcomes repeat heavily, so almost
    every traversal is a table lookup.

    This is the "more hardware" alternative the paper contrasts SpD
    against: its scope is the window, while SpD's scope is the whole
    decision tree. *)

open Spd_ir
module Ddg = Spd_analysis.Ddg

type tree_info = {
  tree : Tree.t;
  arcs : (Memdep.t * bool) array;  (** arc, in-window flag *)
  src_pos : int array;  (** per arc: position of the source insn *)
  dst_pos : int array;
  memo : (int, Spd_sim.Timing.tree_timing) Hashtbl.t;
}

type t = {
  window : int;
  width : Descr.width;
  mem_latency : int;
  infos : (string * int, tree_info) Hashtbl.t;
}

let build_info ~window (tree : Tree.t) : tree_info =
  (* ordinal of each memory operation, for window distance *)
  let ordinal = Hashtbl.create 8 in
  let n = ref 0 in
  Array.iteri
    (fun pos (insn : Insn.t) ->
      if Insn.is_mem insn then begin
        Hashtbl.replace ordinal pos !n;
        incr n
      end)
    tree.insns;
  let active = Tree.active_arcs tree in
  let arcs =
    Array.of_list
      (List.map
         (fun (arc : Memdep.t) ->
           let sp = Tree.insn_index tree arc.src
           and dp = Tree.insn_index tree arc.dst in
           let dist =
             Hashtbl.find ordinal dp - Hashtbl.find ordinal sp
           in
           (arc, dist <= window))
         active)
  in
  {
    tree;
    arcs;
    src_pos =
      Array.map (fun (a, _) -> Tree.insn_index tree a.Memdep.src) arcs;
    dst_pos =
      Array.map (fun (a, _) -> Tree.insn_index tree a.Memdep.dst) arcs;
    memo = Hashtbl.create 8;
  }

let create ?(window = 8) ~(width : Descr.width) ~mem_latency (prog : Prog.t)
    : t =
  let infos = Hashtbl.create 32 in
  Prog.iter_trees
    (fun func tree ->
      Hashtbl.replace infos (func, tree.id) (build_info ~window tree))
    prog;
  { window; width; mem_latency; infos }

(* Timing of a tree under a specific alias outcome: bit [i] of [mask] set
   means arc [i] is enforced this traversal. *)
let timing_for (t : t) (info : tree_info) (mask : int) :
    Spd_sim.Timing.tree_timing =
  match Hashtbl.find_opt info.memo mask with
  | Some tt -> tt
  | None ->
      let enforced = Hashtbl.create 8 in
      Array.iteri
        (fun i ((arc : Memdep.t), _) ->
          if mask land (1 lsl i) <> 0 then
            Hashtbl.replace enforced (arc.src, arc.dst, arc.kind) ())
        info.arcs;
      let arc_active (a : Memdep.t) =
        Memdep.is_active a && Hashtbl.mem enforced (a.src, a.dst, a.kind)
      in
      let g = Ddg.build ~arc_active ~mem_latency:t.mem_latency info.tree in
      let tt =
        match t.width with
        | Descr.Infinite ->
            let insn_completion, exit_completion = Ddg.asap_completion g in
            { Spd_sim.Timing.insn_completion; exit_completion }
        | Descr.Fus n -> Scheduler.timing g (Scheduler.run ~fus:n g)
      in
      Hashtbl.replace info.memo mask tt;
      tt

(** The traversal-cost callback to pass to {!Spd_sim.Interp.run}. *)
let cost (t : t) : Spd_sim.Interp.traversal_cost =
 fun ~func ~tree ~addrs ~active ~taken ->
  let info =
    match Hashtbl.find_opt t.infos (func, tree.id) with
    | Some i -> i
    | None -> invalid_arg "Dynamic.cost: unknown tree"
  in
  if Array.length info.arcs > 60 then
    invalid_arg "Dynamic.cost: too many arcs for a bit mask";
  let mask = ref 0 in
  Array.iteri
    (fun i ((_ : Memdep.t), in_window) ->
      let sp = info.src_pos.(i) and dp = info.dst_pos.(i) in
      let relaxed =
        in_window
        && (not (active.(sp) && active.(dp)) || addrs.(sp) <> addrs.(dp))
      in
      if not relaxed then mask := !mask lor (1 lsl i))
    info.arcs;
  let tt = timing_for t info !mask in
  let cost = ref tt.exit_completion.(taken) in
  Array.iteri
    (fun pos (insn : Insn.t) ->
      if Insn.is_store insn && active.(pos) then
        cost := max !cost tt.insn_completion.(pos))
    tree.insns;
  !cost

(** Simulate [prog] on the dynamic-disambiguation machine and return the
    cycle count. *)
let cycles ?window ~width ~mem_latency (prog : Prog.t) : int =
  let t = create ?window ~width ~mem_latency prog in
  (Spd_sim.Interp.run ~traversal_cost:(cost t) prog).cycles
