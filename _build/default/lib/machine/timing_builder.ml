(** Build a full program timing table for a machine description. *)

open Spd_ir
module Ddg = Spd_analysis.Ddg

(** Timing of one tree on [descr]. *)
let tree_timing (descr : Descr.t) (tree : Tree.t) : Spd_sim.Timing.tree_timing =
  let g = Ddg.build ~mem_latency:descr.mem_latency tree in
  match descr.width with
  | Descr.Infinite ->
      let insn_completion, exit_completion = Ddg.asap_completion g in
      { Spd_sim.Timing.insn_completion; exit_completion }
  | Descr.Fus n -> Scheduler.timing g (Scheduler.run ~fus:n g)

(** Timing of every tree of the program. *)
let program (descr : Descr.t) (prog : Prog.t) : Spd_sim.Timing.t =
  let tbl = Spd_sim.Timing.create () in
  Prog.iter_trees
    (fun func tree ->
      Spd_sim.Timing.add tbl ~func ~tree_id:tree.id (tree_timing descr tree))
    prog;
  tbl

(** Convenience: simulate [prog] on [descr] and return the cycle count. *)
let cycles (descr : Descr.t) (prog : Prog.t) : int =
  let timing = program descr prog in
  (Spd_sim.Interp.run ~timing prog).cycles
