(** Build a full program timing table for a machine description. *)

module Ddg = Spd_analysis.Ddg

(** Timing of one tree on [descr]. *)
val tree_timing :
  Descr.t -> Spd_ir.Tree.t -> Spd_sim.Timing.tree_timing

(** Timing of every tree of the program. *)
val program : Descr.t -> Spd_ir.Prog.t -> Spd_sim.Timing.t

(** Convenience: simulate [prog] on [descr] and return the cycle count. *)
val cycles : Descr.t -> Spd_ir.Prog.t -> int
