(** Machine descriptions.

    The experiments of the paper use LIFE implementations with one to
    eight {b universal} functional units (each able to execute any
    operation, fully pipelined, one issue per cycle) and a memory latency
    of two or six cycles.  [Infinite] is the paper's "infinite machine
    simulator" configuration. *)

type width = Infinite | Fus of int

type t = { width : width; mem_latency : int }

let make ?(width = Infinite) ?(mem_latency = 2) () = { width; mem_latency }

let infinite ~mem_latency = { width = Infinite; mem_latency }
let fus n ~mem_latency = { width = Fus n; mem_latency }

let pp_width ppf = function
  | Infinite -> Fmt.string ppf "inf"
  | Fus n -> Fmt.pf ppf "%d FU" n

let pp ppf t =
  Fmt.pf ppf "%a, %d-cycle memory" pp_width t.width t.mem_latency

(** Table 6-1 of the paper, as rendered by the harness.  The authoritative
    encoding is {!Spd_ir.Opcode.latency}; this list exists for reporting
    and is checked against it by the test suite. *)
let table_6_1 ~mem_latency =
  [
    ("Integer multiplies", 3);
    ("Integer and FP divides", 7);
    ("FP compares", 1);
    ("Other ALU operations", 1);
    ("Other FPU operations", 3);
    ("Memory loads and stores", mem_latency);
    ("Branches", Spd_ir.Opcode.branch_latency);
  ]
