(** Hardware dynamic disambiguation baseline (paper section 2.3).

    Models a processor in the style of the Motorola 88110: the load/store
    unit may reorder memory references whose addresses it can compare at
    run time, but only within a small window.  A memory dependence arc is
    relaxed for a traversal when

    - both references fall within [window] memory operations of each
      other (the hardware's reordering scope), and
    - their dynamic addresses differ this traversal (or one of them did
      not commit).

    Arcs outside the window, and genuinely aliasing pairs, constrain the
    schedule exactly as in the static machine.  The per-traversal cost is
    computed from an ASAP/list schedule for the traversal's alias outcome,
    memoized by outcome bit-mask — outcomes repeat heavily, so almost
    every traversal is a table lookup.

    This is the "more hardware" alternative the paper contrasts SpD
    against: its scope is the window, while SpD's scope is the whole
    decision tree. *)

module Ddg = Spd_analysis.Ddg
type tree_info = {
  tree : Spd_ir.Tree.t;
  arcs : (Spd_ir.Memdep.t * bool) array;
  src_pos : int array;
  dst_pos : int array;
  memo : (int, Spd_sim.Timing.tree_timing) Hashtbl.t;
}
type t = {
  window : int;
  width : Descr.width;
  mem_latency : int;
  infos : (string * int, tree_info) Hashtbl.t;
}
val build_info : window:int -> Spd_ir.Tree.t -> tree_info
val create :
  ?window:int ->
  width:Descr.width -> mem_latency:int -> Spd_ir.Prog.t -> t
val timing_for : t -> tree_info -> int -> Spd_sim.Timing.tree_timing

(** The traversal-cost callback to pass to {!Spd_sim.Interp.run}. *)
val cost : t -> Spd_sim.Interp.traversal_cost

(** Simulate [prog] on the dynamic-disambiguation machine and return the
    cycle count. *)
val cycles :
  ?window:int ->
  width:Descr.width -> mem_latency:int -> Spd_ir.Prog.t -> int
