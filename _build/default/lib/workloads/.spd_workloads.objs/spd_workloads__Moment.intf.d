lib/workloads/moment.mli: Workload
