lib/workloads/espresso.ml: Workload
