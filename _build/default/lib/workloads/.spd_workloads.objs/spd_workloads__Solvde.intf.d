lib/workloads/solvde.mli: Workload
