lib/workloads/smooft.mli: Workload
