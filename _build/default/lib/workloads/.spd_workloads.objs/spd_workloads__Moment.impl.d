lib/workloads/moment.ml: Workload
