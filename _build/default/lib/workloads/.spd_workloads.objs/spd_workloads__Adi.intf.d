lib/workloads/adi.mli: Workload
