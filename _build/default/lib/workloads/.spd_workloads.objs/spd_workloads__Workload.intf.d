lib/workloads/workload.mli:
