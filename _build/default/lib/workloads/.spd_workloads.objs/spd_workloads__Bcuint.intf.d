lib/workloads/bcuint.mli: Workload
