lib/workloads/fft.ml: Workload
