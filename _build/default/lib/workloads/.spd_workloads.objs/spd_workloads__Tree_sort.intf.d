lib/workloads/tree_sort.mli: Workload
