lib/workloads/quick.ml: Workload
