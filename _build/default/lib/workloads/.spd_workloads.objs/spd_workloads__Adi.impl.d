lib/workloads/adi.ml: Workload
