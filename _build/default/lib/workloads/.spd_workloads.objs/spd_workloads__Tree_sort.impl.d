lib/workloads/tree_sort.ml: Workload
