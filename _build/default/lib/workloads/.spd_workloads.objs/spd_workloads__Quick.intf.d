lib/workloads/quick.mli: Workload
