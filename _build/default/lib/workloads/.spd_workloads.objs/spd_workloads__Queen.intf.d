lib/workloads/queen.mli: Workload
