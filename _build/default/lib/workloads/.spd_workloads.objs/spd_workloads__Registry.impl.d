lib/workloads/registry.ml: Adi Bcuint Espresso Fft List Moment Perm Printf Queen Quick Smooft Solvde String Tree_sort Workload
