lib/workloads/queen.ml: Workload
