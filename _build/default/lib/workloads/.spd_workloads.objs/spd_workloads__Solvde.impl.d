lib/workloads/solvde.ml: Workload
