lib/workloads/bcuint.ml: Workload
