lib/workloads/workload.ml:
