lib/workloads/smooft.ml: Workload
