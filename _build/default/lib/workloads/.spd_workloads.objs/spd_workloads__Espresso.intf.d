lib/workloads/espresso.mli: Workload
