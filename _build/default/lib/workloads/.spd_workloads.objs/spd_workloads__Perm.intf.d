lib/workloads/perm.mli: Workload
