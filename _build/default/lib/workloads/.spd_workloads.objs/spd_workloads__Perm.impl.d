lib/workloads/perm.ml: Workload
