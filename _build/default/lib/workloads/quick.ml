(** quick — quicksort (Stanford Integer Benchmarks).

    Recursive quicksort with the classic two-index partition.  The swap
    writes [v[i]] and [v[j]] with data-dependent indices: an ambiguous
    WAW arc the static disambiguator can never resolve, yet one that
    almost never aliases dynamically — the benchmark where the paper's
    SPEC occasionally beats even PERFECT. *)

let source =
  {|
int sortlist[256];
int seed = 74755;

void quicksort(int l, int r) {
  int i; int j; int x; int w;
  i = l;
  j = r;
  x = sortlist[(l + r) / 2];
  while (i <= j) {
    while (sortlist[i] < x) i = i + 1;
    while (x < sortlist[j]) j = j - 1;
    if (i <= j) {
      w = sortlist[i];
      sortlist[i] = sortlist[j];
      sortlist[j] = w;
      i = i + 1;
      j = j - 1;
    }
  }
  if (l < j) quicksort(l, j);
  if (i < r) quicksort(i, r);
}

int main() {
  int i; int chk; int sorted;
  for (i = 0; i < 256; i = i + 1) {
    seed = (seed * 1309 + 13849) % 65536;
    sortlist[i] = seed;
  }
  quicksort(0, 255);
  sorted = 1;
  chk = 0;
  for (i = 0; i < 256; i = i + 1) {
    chk = (chk + sortlist[i] * (i % 17)) % 1000000007;
    if (i > 0 && sortlist[i - 1] > sortlist[i]) sorted = 0;
  }
  print_int(sorted);
  print_int(chk);
  return chk % 32768;
}
|}

let workload =
  {
    Workload.name = "quick";
    suite = Workload.Stanfint;
    description = "Quicksort.";
    source;
  }
