(** adi — alternating direction implicit method for PDEs (NRC style).

    A Peaceman-Rachford ADI relaxation on an N x N grid: each half-step
    solves a tridiagonal system (Thomas algorithm) along every row, then
    along every column.  All arrays reach the solver as parameters, so the
    static disambiguator cannot separate them — the paper's canonical hard
    case.  The forward-elimination body stores [g[j]] and then loads from
    four other parameter arrays: ambiguous RAW arcs on the critical
    recurrence. *)

let source =
  {|
int N = 12;

double u[144];
double tmp[144];
double aa[12];
double bb[12];
double cc[12];
double rr[12];
double xx[12];
double gg[12];

/* Thomas algorithm: solve a tridiagonal system.  The store to g[j]
   is ambiguously aliased with the loads from a, b, r, x that follow
   it inside the same loop body. */
void trisolve(double a[], double b[], double c[], double r[], double x[],
              double g[], int n) {
  int j;
  double bet;
  bet = b[0];
  x[0] = r[0] / bet;
  for (j = 1; j < n; j = j + 1) {
    g[j] = c[j - 1] / bet;
    bet = b[j] - a[j] * g[j];
    x[j] = (r[j] - a[j] * x[j - 1]) / bet;
  }
  for (j = n - 2; j >= 0; j = j - 1) {
    x[j] = x[j] - g[j + 1] * x[j + 1];
  }
}

/* one ADI half-sweep along rows of the flattened grid */
void row_sweep(double grid[], double next[], double lam) {
  int i; int j; int n;
  n = N;
  for (j = 0; j < n; j = j + 1) {
    aa[j] = -lam;
    bb[j] = 1.0 + 2.0 * lam;
    cc[j] = -lam;
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      rr[j] = grid[i * 12 + j];
      if (i > 0) rr[j] = rr[j] + lam * grid[(i - 1) * 12 + j];
      if (i < n - 1) rr[j] = rr[j] + lam * grid[(i + 1) * 12 + j];
      rr[j] = rr[j] - 2.0 * lam * grid[i * 12 + j];
    }
    trisolve(aa, bb, cc, rr, xx, gg, n);
    for (j = 0; j < n; j = j + 1) {
      next[i * 12 + j] = xx[j];
    }
  }
}

void col_sweep(double grid[], double next[], double lam) {
  int i; int j; int n;
  n = N;
  for (j = 0; j < n; j = j + 1) {
    aa[j] = -lam;
    bb[j] = 1.0 + 2.0 * lam;
    cc[j] = -lam;
  }
  for (j = 0; j < n; j = j + 1) {
    for (i = 0; i < n; i = i + 1) {
      rr[i] = grid[i * 12 + j];
      if (j > 0) rr[i] = rr[i] + lam * grid[i * 12 + j - 1];
      if (j < n - 1) rr[i] = rr[i] + lam * grid[i * 12 + j + 1];
      rr[i] = rr[i] - 2.0 * lam * grid[i * 12 + j];
    }
    trisolve(aa, bb, cc, rr, xx, gg, n);
    for (i = 0; i < n; i = i + 1) {
      next[i * 12 + j] = xx[i];
    }
  }
}

int main() {
  int i; int j; int step; int n;
  double chk;
  n = N;
  /* boundary-heated plate */
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      u[i * 12 + j] = 0.0;
      if (i == 0) u[i * 12 + j] = 1.0;
      if (j == 0) u[i * 12 + j] = 0.5;
    }
  }
  for (step = 0; step < 4; step = step + 1) {
    row_sweep(u, tmp, 0.3);
    col_sweep(tmp, u, 0.3);
  }
  chk = 0.0;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      chk = chk + u[i * 12 + j] * (i + 2 * j + 1);
    }
  }
  print_float(chk);
  return (int)chk;
}
|}

let workload =
  {
    Workload.name = "adi";
    suite = Workload.Nrc;
    description =
      "Alternating direction implicit method for partial differential \
       equations.";
    source;
  }
