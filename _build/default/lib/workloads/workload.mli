(** Benchmark workloads (Table 6-2 of the paper).

    Each workload is a mini-C source faithful to the corresponding kernel:
    six programs in the style of {i Numerical Recipes in C} (arrays passed
    into procedures — the pointer dereferences that defeat static
    disambiguation), four Stanford Integer Benchmarks, and the inner
    cube-cover kernel of espresso (scaled down from the 14,838-line SPEC
    original; see DESIGN.md).

    Every program prints one or more checksums so that all disambiguation
    pipelines can be validated against each other and against the OCaml
    reference implementations in the test suite. *)

type suite = Nrc | Stanfint | Spec
type t = {
  name : string;
  suite : suite;
  description : string;
  source : string;
}
val suite_name : suite -> string

(** Software math routines shared by the numeric kernels.  The LIFE
    machine model has no transcendental units; like the paper's platform,
    sin/sqrt are ordinary compiled code. *)
val math_helpers : string

(** The radix-2 FFT kernel shared by the [fft] and [smooft] workloads
    (NRC [four1] in split real/imaginary form). *)
val fft_function : string
