(** smooft — smoothing of data (NRC style).

    FFT-based smoothing: transform the padded signal, attenuate high
    frequencies with a smooth window, transform back and rescale.  Calls
    the shared FFT kernel; the windowing pass stores into the spectra and
    then loads the window weights through another parameter. *)


(** smooft — smoothing of data (NRC style).

    FFT-based smoothing: transform the padded signal, attenuate high
    frequencies with a smooth window, transform back and rescale.  Calls
    the shared FFT kernel; the windowing pass stores into the spectra and
    then loads the window weights through another parameter. *)
val source_body : string
val source : string
val workload : Workload.t
