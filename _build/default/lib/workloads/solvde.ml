(** solvde — relaxation for a two-point boundary value problem (NRC
    style, simplified).

    Solves the first-order system y0' = y1, y1' = -y0 (harmonic
    oscillator) on a mesh by repeated relaxation sweeps: residual
    computation, correction application, and an error reduction pass, all
    on arrays passed into procedures.  The paper's solvde is a 381-line
    Newton relaxation; this keeps its memory behaviour — sweeps over
    several parameter arrays with interleaved stores and loads — at
    kernel scale (see DESIGN.md). *)

let source =
  {|
int M = 32;

double ya[32];
double yb[32];
double e0[32];
double e1[32];
double scale[32];

/* residuals of the trapezoidal finite-difference equations; stores to
   r0/r1 are ambiguously aliased with the u/v loads that follow */
void residuals(double u[], double v[], double r0[], double r1[], int m,
               double h) {
  int k;
  for (k = 1; k < m; k = k + 1) {
    r0[k] = u[k] - u[k - 1] - 0.5 * h * (v[k] + v[k - 1]);
    r1[k] = v[k] - v[k - 1] + 0.5 * h * (u[k] + u[k - 1]);
  }
}

void apply_corrections(double u[], double v[], double r0[], double r1[],
                       double sc[], int m, double frac) {
  int k;
  for (k = 1; k < m; k = k + 1) {
    u[k] = u[k] - frac * r0[k] * sc[k];
    v[k] = v[k] - frac * r1[k] * sc[k];
  }
}

double max_residual(double r0[], double r1[], int m) {
  int k;
  double err; double a;
  err = 0.0;
  for (k = 1; k < m; k = k + 1) {
    a = r0[k];
    if (a < 0.0) a = -a;
    if (a > err) err = a;
    a = r1[k];
    if (a < 0.0) a = -a;
    if (a > err) err = a;
  }
  return err;
}

int main() {
  int k; int it; int m;
  double h; double err; double chk;
  m = M;
  h = 0.1;
  /* initial guess: straight lines obeying the boundary conditions */
  for (k = 0; k < m; k = k + 1) {
    ya[k] = 0.1 * k * h;
    yb[k] = 1.0;
    scale[k] = 1.0 - 0.004 * k;
    e0[k] = 0.0;
    e1[k] = 0.0;
  }
  err = 1.0;
  it = 0;
  while (it < 12 && err > 0.000001) {
    residuals(ya, yb, e0, e1, m, h);
    apply_corrections(ya, yb, e0, e1, scale, m, 0.8);
    err = max_residual(e0, e1, m);
    it = it + 1;
  }
  chk = err * 1000.0;
  for (k = 0; k < m; k = k + 1) {
    chk = chk + ya[k] * (k + 1) * 0.125 + yb[k] * 0.0625;
  }
  print_float(chk);
  print_int(it);
  return (int)chk;
}
|}

let workload =
  {
    Workload.name = "solvde";
    suite = Workload.Nrc;
    description =
      "Relaxation method for two point boundary value problems.";
    source;
  }
