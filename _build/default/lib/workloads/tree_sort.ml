(** tree — treesort (Stanford Integer Benchmarks).

    Builds a binary search tree in index-array form (the node "pointers"
    are integers read back out of memory — the paper's "address read out
    of another memory location" case) and then checksums an in-order
    traversal driven by an explicit stack.  The node arrays are passed as
    parameters so the references stay ambiguous. *)

let source =
  {|
int key_[300];
int left_[300];
int right_[300];
int stack_[64];
int nnodes = 0;
int seed = 33;

void insert_node(int key[], int left[], int right[], int k, int n) {
  int p; int done;
  key[n] = k;
  left[n] = -1;
  right[n] = -1;
  if (n > 0) {
    p = 0;
    done = 0;
    while (done == 0) {
      if (k < key[p]) {
        if (left[p] < 0) {
          left[p] = n;
          done = 1;
        } else {
          p = left[p];
        }
      } else {
        if (right[p] < 0) {
          right[p] = n;
          done = 1;
        } else {
          p = right[p];
        }
      }
    }
  }
}

int traverse(int key[], int left[], int right[], int stk[], int n) {
  int sp; int cur; int chk; int order;
  if (n == 0) return 0;
  sp = 0;
  cur = 0;
  chk = 0;
  order = 0;
  while (cur >= 0 || sp > 0) {
    while (cur >= 0) {
      stk[sp] = cur;
      sp = sp + 1;
      cur = left[cur];
    }
    sp = sp - 1;
    cur = stk[sp];
    chk = (chk + key[cur] * (order % 13 + 1)) % 1000000007;
    order = order + 1;
    cur = right[cur];
  }
  return chk;
}

int main() {
  int i; int chk;
  nnodes = 0;
  for (i = 0; i < 220; i = i + 1) {
    seed = (seed * 1309 + 13849) % 65536;
    insert_node(key_, left_, right_, seed, nnodes);
    nnodes = nnodes + 1;
  }
  chk = traverse(key_, left_, right_, stack_, nnodes);
  print_int(chk);
  return chk % 32768;
}
|}

let workload =
  {
    Workload.name = "tree";
    suite = Workload.Stanfint;
    description = "Treesort.";
    source;
  }
