(** espresso — boolean function minimization (SPECint 92), kernel scale.

    The inner loops of espresso's cube/cover machinery: cubes are bit
    vectors (two bits per variable), and the dominant operations are
    word-wise distance, containment and merge sweeps over covers reached
    through pointers.  The full 14,838-line program is out of scope for
    the mini-C frontend; this kernel preserves the pointer-heavy,
    bit-parallel memory behaviour of its hot loops (see DESIGN.md). *)


(** espresso — boolean function minimization (SPECint 92), kernel scale.

    The inner loops of espresso's cube/cover machinery: cubes are bit
    vectors (two bits per variable), and the dominant operations are
    word-wise distance, containment and merge sweeps over covers reached
    through pointers.  The full 14,838-line program is out of scope for
    the mini-C frontend; this kernel preserves the pointer-heavy,
    bit-parallel memory behaviour of its hot loops (see DESIGN.md). *)
val source : string
val workload : Workload.t
