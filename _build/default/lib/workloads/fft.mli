(** fft — fast Fourier transform (NRC four1 style).

    Radix-2 decimation-in-time FFT with an explicit bit-reversal pass and
    Danielson-Lanczos butterflies.  The access pattern is the paper's
    textbook non-linear case: strides double every stage ("exponential
    order"), so subscripts are not affine in the loop counters and static
    disambiguation gives up.  The butterfly stores [xr[j]] / [xi[j]] are
    ambiguously aliased with the loads of the other array and of the
    [i]-indexed elements that follow them in the same body. *)


(** fft — fast Fourier transform (NRC four1 style).

    Radix-2 decimation-in-time FFT with an explicit bit-reversal pass and
    Danielson-Lanczos butterflies.  The access pattern is the paper's
    textbook non-linear case: strides double every stage ("exponential
    order"), so subscripts are not affine in the loop counters and static
    disambiguation gives up.  The butterfly stores [xr[j]] / [xi[j]] are
    ambiguously aliased with the loads of the other array and of the
    [i]-indexed elements that follow them in the same body. *)
val source_body : string
val source : string
val workload : Workload.t
