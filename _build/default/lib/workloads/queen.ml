(** queen — eight queens problem (Stanford Integer Benchmarks).

    Counts all 92 solutions by recursive backtracking over column and
    diagonal occupancy arrays. *)

let source =
  {|
int acol[8];
int bdiag[15];
int cdiag[15];
int solutions = 0;

void try_row(int row) {
  int col; int free_;
  for (col = 0; col < 8; col = col + 1) {
    free_ = acol[col] == 0 && bdiag[row + col] == 0
            && cdiag[row - col + 7] == 0;
    if (free_) {
      acol[col] = 1;
      bdiag[row + col] = 1;
      cdiag[row - col + 7] = 1;
      if (row == 7) {
        solutions = solutions + 1;
      } else {
        try_row(row + 1);
      }
      acol[col] = 0;
      bdiag[row + col] = 0;
      cdiag[row - col + 7] = 0;
    }
  }
}

int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    acol[i] = 0;
  }
  for (i = 0; i < 15; i = i + 1) {
    bdiag[i] = 0;
    cdiag[i] = 0;
  }
  solutions = 0;
  try_row(0);
  print_int(solutions);
  return solutions;
}
|}

let workload =
  {
    Workload.name = "queen";
    suite = Workload.Stanfint;
    description = "Eight queens problem.";
    source;
  }
