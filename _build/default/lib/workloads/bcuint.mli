(** bcuint — bicubic interpolation (NRC style).

    Computes the 16 bicubic coefficients of a grid cell from function
    values and derivatives at its corners (the classic weight-matrix
    formulation), then evaluates the interpolant at a sweep of points.
    Function values arrive through array parameters; the coefficient
    store [c[l]] is followed inside the same loop nest by loads from the
    input vectors. *)


(** bcuint — bicubic interpolation (NRC style).

    Computes the 16 bicubic coefficients of a grid cell from function
    values and derivatives at its corners (the classic weight-matrix
    formulation), then evaluates the interpolant at a sweep of points.
    Function values arrive through array parameters; the coefficient
    store [c[l]] is followed inside the same loop nest by loads from the
    input vectors. *)
val source : string
val workload : Workload.t
