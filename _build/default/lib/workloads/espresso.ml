(** espresso — boolean function minimization (SPECint 92), kernel scale.

    The inner loops of espresso's cube/cover machinery: cubes are bit
    vectors (two bits per variable), and the dominant operations are
    word-wise distance, containment and merge sweeps over covers reached
    through pointers.  The full 14,838-line program is out of scope for
    the mini-C frontend; this kernel preserves the pointer-heavy,
    bit-parallel memory behaviour of its hot loops (see DESIGN.md). *)

let source =
  {|
int cover_a[192];
int cover_b[192];
int merged[192];
int keep[48];
int seed = 99;

int popcount(int x) {
  int c;
  c = 0;
  while (x != 0) {
    x = x & (x - 1);
    c = c + 1;
  }
  return c;
}

/* variable positions where the intersection is empty */
int cdist(int a[], int b[], int ai, int bi) {
  int w; int d; int v;
  d = 0;
  for (w = 0; w < 4; w = w + 1) {
    v = a[ai * 4 + w] & b[bi * 4 + w];
    v = (v | (v >> 1)) & 1431655765;
    d = d + 16 - popcount(v);
  }
  return d;
}

/* cube a contains cube b when b's bits are a subset of a's */
int contains_cube(int a[], int b[], int ai, int bi) {
  int w; int ok;
  ok = 1;
  for (w = 0; w < 4; w = w + 1) {
    if ((a[ai * 4 + w] & b[bi * 4 + w]) != b[bi * 4 + w]) ok = 0;
  }
  return ok;
}

/* consensus-style merge: the store to out is ambiguously aliased with
   the a/b loads that follow it in the same body */
void merge_cubes(int a[], int b[], int out[], int ai, int bi, int oi) {
  int w;
  for (w = 0; w < 4; w = w + 1) {
    out[oi * 4 + w] = a[ai * 4 + w] | b[bi * 4 + w];
    out[oi * 4 + w] = out[oi * 4 + w] & (a[ai * 4 + w] | 1431655765);
  }
}

int main() {
  int i; int j; int w; int chk; int d;
  /* random cover */
  for (i = 0; i < 192; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    cover_a[i] = seed % 65536;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    cover_b[i] = seed % 65536;
  }
  for (i = 0; i < 48; i = i + 1) {
    keep[i] = 1;
  }
  /* single-cube containment sweep: irredundant-cover step */
  for (i = 0; i < 48; i = i + 1) {
    for (j = 0; j < 48; j = j + 1) {
      if (i != j && keep[i] == 1) {
        if (contains_cube(cover_a, cover_a, i, j)) {
          keep[j] = 0;
        }
      }
    }
  }
  /* distance profile between the two covers */
  chk = 0;
  for (i = 0; i < 47; i = i + 1) {
    d = cdist(cover_a, cover_b, i, i + 1);
    chk = (chk + d * (i + 3)) % 1000000007;
  }
  /* merge the surviving cubes */
  for (i = 0; i < 47; i = i + 1) {
    if (keep[i] == 1) {
      merge_cubes(cover_a, cover_b, merged, i, i + 1, i);
    }
  }
  for (i = 0; i < 47; i = i + 1) {
    for (w = 0; w < 4; w = w + 1) {
      chk = (chk + merged[i * 4 + w] + keep[i] * 7) % 1000000007;
    }
  }
  print_int(chk);
  return chk % 32768;
}
|}

let workload =
  {
    Workload.name = "espresso";
    suite = Workload.Spec;
    description = "Boolean function minimization (cube-cover kernel).";
    source;
  }
