(** moment — moments of a distribution (NRC style).

    Computes mean, average deviation, standard deviation, variance, skew
    and kurtosis of a data vector.  Results are returned through an output
    array parameter (NRC returns them through pointers), and a
    normalization pass then rewrites the data in place while accumulating
    a checksum from a second vector — store-then-load patterns on
    parameter arrays throughout. *)

let source_body =
  {|
double data[256];
double weight[256];
double out[6];

void moment(double d[], int n, double o[]) {
  int j;
  double s; double p; double ep; double ave; double adev; double var;
  double skew; double curt; double dev;
  s = 0.0;
  for (j = 0; j < n; j = j + 1) {
    s = s + d[j];
  }
  ave = s / n;
  adev = 0.0; var = 0.0; skew = 0.0; curt = 0.0; ep = 0.0;
  for (j = 0; j < n; j = j + 1) {
    dev = d[j] - ave;
    ep = ep + dev;
    if (dev < 0.0) adev = adev - dev;
    else adev = adev + dev;
    p = dev * dev;
    var = var + p;
    p = p * dev;
    skew = skew + p;
    p = p * dev;
    curt = curt + p;
  }
  adev = adev / n;
  var = (var - ep * ep / n) / (n - 1);
  o[0] = ave;
  o[1] = adev;
  o[2] = my_sqrt(var);
  o[3] = var;
  if (var > 0.0) {
    o[4] = skew / (n * var * o[2]);
    o[5] = curt / (n * var * var) - 3.0;
  } else {
    o[4] = 0.0;
    o[5] = 0.0;
  }
}

/* standardize the data in place; the store to d[j] is ambiguously
   aliased with the loads from o[] and w[] that follow it */
double normalize(double d[], double w[], double o[], int n) {
  int j;
  double chk;
  chk = 0.0;
  for (j = 0; j < n; j = j + 1) {
    d[j] = (d[j] - o[0]) / o[2];
    chk = chk + d[j] * w[j];
  }
  return chk;
}

int main() {
  int i; int seed;
  double chk;
  seed = 13;
  for (i = 0; i < 256; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    data[i] = (seed % 1000) * 0.001;
    weight[i] = 1.0 + (i % 7) * 0.125;
  }
  moment(data, 256, out);
  chk = normalize(data, weight, out, 256);
  print_float(out[0]);
  print_float(out[3]);
  print_float(chk);
  return (int)(chk * 100.0);
}
|}

let source = Workload.math_helpers ^ source_body

let workload =
  {
    Workload.name = "moment";
    suite = Workload.Nrc;
    description = "Moments of a distribution.";
    source;
  }
