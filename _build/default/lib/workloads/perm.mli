(** perm — recursive permutation program (Stanford Integer Benchmarks).

    Generates all permutations of a small vector by recursive swapping.
    The swap routine receives the array and two data-dependent indices:
    ambiguous WAR/WAW arcs between the element accesses. *)


(** perm — recursive permutation program (Stanford Integer Benchmarks).

    Generates all permutations of a small vector by recursive swapping.
    The swap routine receives the array and two data-dependent indices:
    ambiguous WAR/WAW arcs between the element accesses. *)
val source : string
val workload : Workload.t
