(** Benchmark workloads (Table 6-2 of the paper).

    Each workload is a mini-C source faithful to the corresponding kernel:
    six programs in the style of {i Numerical Recipes in C} (arrays passed
    into procedures — the pointer dereferences that defeat static
    disambiguation), four Stanford Integer Benchmarks, and the inner
    cube-cover kernel of espresso (scaled down from the 14,838-line SPEC
    original; see DESIGN.md).

    Every program prints one or more checksums so that all disambiguation
    pipelines can be validated against each other and against the OCaml
    reference implementations in the test suite. *)

type suite = Nrc | Stanfint | Spec

type t = {
  name : string;
  suite : suite;
  description : string;
  source : string;
}

let suite_name = function
  | Nrc -> "NRC"
  | Stanfint -> "StanfInt"
  | Spec -> "SPEC"

(** Software math routines shared by the numeric kernels.  The LIFE
    machine model has no transcendental units; like the paper's platform,
    sin/sqrt are ordinary compiled code. *)
let math_helpers =
  {|
double reduce_angle(double x) {
  /* reduce into [-pi, pi] */
  int k;
  k = (int)(x / 6.283185307179586);
  x = x - k * 6.283185307179586;
  if (x > 3.141592653589793) x = x - 6.283185307179586;
  if (x < -3.141592653589793) x = x + 6.283185307179586;
  return x;
}

double my_sin(double xin) {
  double x; double x2; double term; double sum;
  int k;
  x = reduce_angle(xin);
  x2 = x * x;
  term = x;
  sum = x;
  for (k = 1; k < 10; k = k + 1) {
    term = -term * x2 / ((2.0 * k) * (2.0 * k + 1.0));
    sum = sum + term;
  }
  return sum;
}

double my_cos(double xin) {
  double x; double x2; double term; double sum;
  int k;
  x = reduce_angle(xin);
  x2 = x * x;
  term = 1.0;
  sum = 1.0;
  for (k = 1; k < 10; k = k + 1) {
    term = -term * x2 / ((2.0 * k - 1.0) * (2.0 * k));
    sum = sum + term;
  }
  return sum;
}

double my_sqrt(double x) {
  double r;
  int k;
  if (x <= 0.0) return 0.0;
  r = x;
  if (r > 1.0) r = x * 0.5 + 0.5;
  for (k = 0; k < 30; k = k + 1) {
    r = 0.5 * (r + x / r);
  }
  return r;
}
|}

(** The radix-2 FFT kernel shared by the [fft] and [smooft] workloads
    (NRC [four1] in split real/imaginary form). *)
let fft_function =
  {|
void fft(double xr[], double xi[], int n, int isign) {
  int i; int j; int k; int m;
  int mmax; int istep;
  double tr; double ti; double wr; double wi; double wpr; double wpi;
  double wtemp; double theta;
  /* bit reversal */
  j = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i < j) {
      tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;
      ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
    }
    k = n / 2;
    while (k >= 1 && j >= k) {
      j = j - k;
      k = k / 2;
    }
    j = j + k;
  }
  /* Danielson-Lanczos */
  mmax = 1;
  while (mmax < n) {
    istep = mmax * 2;
    theta = isign * 3.141592653589793 / mmax;
    wtemp = my_sin(0.5 * theta);
    wpr = -2.0 * wtemp * wtemp;
    wpi = my_sin(theta);
    wr = 1.0;
    wi = 0.0;
    for (m = 0; m < mmax; m = m + 1) {
      for (i = m; i < n; i = i + istep) {
        j = i + mmax;
        tr = wr * xr[j] - wi * xi[j];
        ti = wr * xi[j] + wi * xr[j];
        xr[j] = xr[i] - tr;
        xi[j] = xi[i] - ti;
        xr[i] = xr[i] + tr;
        xi[i] = xi[i] + ti;
      }
      wtemp = wr;
      wr = wr * wpr - wi * wpi + wr;
      wi = wi * wpr + wtemp * wpi + wi;
    }
    mmax = istep;
  }
}
|}
