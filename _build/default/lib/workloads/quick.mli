(** quick — quicksort (Stanford Integer Benchmarks).

    Recursive quicksort with the classic two-index partition.  The swap
    writes [v[i]] and [v[j]] with data-dependent indices: an ambiguous
    WAW arc the static disambiguator can never resolve, yet one that
    almost never aliases dynamically — the benchmark where the paper's
    SPEC occasionally beats even PERFECT. *)


(** quick — quicksort (Stanford Integer Benchmarks).

    Recursive quicksort with the classic two-index partition.  The swap
    writes [v[i]] and [v[j]] with data-dependent indices: an ambiguous
    WAW arc the static disambiguator can never resolve, yet one that
    almost never aliases dynamically — the benchmark where the paper's
    SPEC occasionally beats even PERFECT. *)
val source : string
val workload : Workload.t
