(** queen — eight queens problem (Stanford Integer Benchmarks).

    Counts all 92 solutions by recursive backtracking over column and
    diagonal occupancy arrays. *)


(** queen — eight queens problem (Stanford Integer Benchmarks).

    Counts all 92 solutions by recursive backtracking over column and
    diagonal occupancy arrays. *)
val source : string
val workload : Workload.t
