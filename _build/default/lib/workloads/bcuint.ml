(** bcuint — bicubic interpolation (NRC style).

    Computes the 16 bicubic coefficients of a grid cell from function
    values and derivatives at its corners (the classic weight-matrix
    formulation), then evaluates the interpolant at a sweep of points.
    Function values arrive through array parameters; the coefficient
    store [c[l]] is followed inside the same loop nest by loads from the
    input vectors. *)

let source =
  {|
int wt[256] = {
  1, 0, -3, 2, 0, 0, 0, 0, -3, 0, 9, -6, 2, 0, -6, 4,
  0, 0, 0, 0, 0, 0, 0, 0, 3, 0, -9, 6, -2, 0, 6, -4,
  0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9, -6, 0, 0, -6, 4,
  0, 0, 3, -2, 0, 0, 0, 0, 0, 0, -9, 6, 0, 0, 6, -4,
  0, 0, 0, 0, 1, 0, -3, 2, -2, 0, 6, -4, 1, 0, -3, 2,
  0, 0, 0, 0, 0, 0, 0, 0, -1, 0, 3, -2, 1, 0, -3, 2,
  0, 0, 0, 0, 0, 0, 0, 0, 0, 0, -3, 2, 0, 0, 3, -2,
  0, 0, 0, 0, 0, 0, 3, -2, 0, 0, -6, 4, 0, 0, 3, -2,
  0, 1, -2, 1, 0, 0, 0, 0, 0, -3, 6, -3, 0, 2, -4, 2,
  0, 0, 0, 0, 0, 0, 0, 0, 0, 3, -6, 3, 0, -2, 4, -2,
  0, 0, 0, 0, 0, 0, 0, 0, 0, 0, -3, 3, 0, 0, 2, -2,
  0, 0, -1, 1, 0, 0, 0, 0, 0, 0, 3, -3, 0, 0, -2, 2,
  0, 0, 0, 0, 0, 1, -2, 1, 0, -2, 4, -2, 0, 1, -2, 1,
  0, 0, 0, 0, 0, 0, 0, 0, 0, -1, 2, -1, 0, 1, -2, 1,
  0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, -1, 0, 0, -1, 1,
  0, 0, 0, 0, 0, 0, -1, 1, 0, 0, 2, -2, 0, 0, -1, 1
};

double yv[4];
double y1v[4];
double y2v[4];
double y12v[4];
double coef[16];

void bcucof(double y[], double y1[], double y2[], double y12[],
            double d1, double d2, double c[]) {
  int l; int k; int i;
  double xx; double d1d2;
  double x[16];
  d1d2 = d1 * d2;
  for (i = 0; i < 4; i = i + 1) {
    x[i] = y[i];
    x[i + 4] = y1[i] * d1;
    x[i + 8] = y2[i] * d2;
    x[i + 12] = y12[i] * d1d2;
  }
  for (l = 0; l < 16; l = l + 1) {
    xx = 0.0;
    for (k = 0; k < 16; k = k + 1) {
      xx = xx + wt[l * 16 + k] * x[k];
    }
    c[l] = xx;
  }
}

double bcuint_eval(double c[], double t, double u) {
  int i;
  double ans;
  ans = 0.0;
  for (i = 3; i >= 0; i = i - 1) {
    ans = t * ans
        + ((c[i * 4 + 3] * u + c[i * 4 + 2]) * u + c[i * 4 + 1]) * u
        + c[i * 4 + 0];
  }
  return ans;
}

int main() {
  int i; int pt;
  double t; double u; double chk; double v;
  /* corner data of a synthetic surface f(x,y) = x^2 y + y^2 */
  yv[0] = 0.0;  yv[1] = 1.0;  yv[2] = 2.0;  yv[3] = 1.0;
  y1v[0] = 0.0; y1v[1] = 2.0; y1v[2] = 2.0; y1v[3] = 0.0;
  y2v[0] = 1.0; y2v[1] = 1.0; y2v[2] = 3.0; y2v[3] = 3.0;
  y12v[0] = 0.0; y12v[1] = 2.0; y12v[2] = 2.0; y12v[3] = 0.0;
  chk = 0.0;
  for (pt = 0; pt < 24; pt = pt + 1) {
    bcucof(yv, y1v, y2v, y12v, 1.0, 1.0, coef);
    t = pt * (1.0 / 24.0);
    u = 1.0 - t * 0.5;
    v = bcuint_eval(coef, t, u);
    chk = chk + v * (pt + 1);
    /* perturb the corner data so each round differs */
    for (i = 0; i < 4; i = i + 1) {
      yv[i] = yv[i] + v * 0.001;
    }
  }
  print_float(chk);
  return (int)chk;
}
|}

let workload =
  {
    Workload.name = "bcuint";
    suite = Workload.Nrc;
    description = "Bicubic interpolation.";
    source;
  }
