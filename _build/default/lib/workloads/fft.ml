(** fft — fast Fourier transform (NRC four1 style).

    Radix-2 decimation-in-time FFT with an explicit bit-reversal pass and
    Danielson-Lanczos butterflies.  The access pattern is the paper's
    textbook non-linear case: strides double every stage ("exponential
    order"), so subscripts are not affine in the loop counters and static
    disambiguation gives up.  The butterfly stores [xr[j]] / [xi[j]] are
    ambiguously aliased with the loads of the other array and of the
    [i]-indexed elements that follow them in the same body. *)

let source_body =
  {|
double re[64];
double im[64];

int main() {
  int i;
  double chk;
  for (i = 0; i < 64; i = i + 1) {
    re[i] = my_sin(0.35 * i) + 0.25 * my_cos(1.1 * i);
    im[i] = 0.0;
  }
  fft(re, im, 64, 1);
  chk = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    chk = chk + re[i] * (i + 1) * 0.01 + im[i] * 0.005 * i;
  }
  /* round trip: the inverse transform recovers the input, scaled by n */
  fft(re, im, 64, -1);
  chk = chk + re[5] / 64.0 + re[17] / 64.0;
  print_float(chk);
  return (int)chk;
}
|}

let source = Workload.math_helpers ^ Workload.fft_function ^ source_body

let workload =
  {
    Workload.name = "fft";
    suite = Workload.Nrc;
    description = "Fast Fourier transform.";
    source;
  }
