(** moment — moments of a distribution (NRC style).

    Computes mean, average deviation, standard deviation, variance, skew
    and kurtosis of a data vector.  Results are returned through an output
    array parameter (NRC returns them through pointers), and a
    normalization pass then rewrites the data in place while accumulating
    a checksum from a second vector — store-then-load patterns on
    parameter arrays throughout. *)


(** moment — moments of a distribution (NRC style).

    Computes mean, average deviation, standard deviation, variance, skew
    and kurtosis of a data vector.  Results are returned through an output
    array parameter (NRC returns them through pointers), and a
    normalization pass then rewrites the data in place while accumulating
    a checksum from a second vector — store-then-load patterns on
    parameter arrays throughout. *)
val source_body : string
val source : string
val workload : Workload.t
