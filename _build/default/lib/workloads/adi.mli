(** adi — alternating direction implicit method for PDEs (NRC style).

    A Peaceman-Rachford ADI relaxation on an N x N grid: each half-step
    solves a tridiagonal system (Thomas algorithm) along every row, then
    along every column.  All arrays reach the solver as parameters, so the
    static disambiguator cannot separate them — the paper's canonical hard
    case.  The forward-elimination body stores [g[j]] and then loads from
    four other parameter arrays: ambiguous RAW arcs on the critical
    recurrence. *)


(** adi — alternating direction implicit method for PDEs (NRC style).

    A Peaceman-Rachford ADI relaxation on an N x N grid: each half-step
    solves a tridiagonal system (Thomas algorithm) along every row, then
    along every column.  All arrays reach the solver as parameters, so the
    static disambiguator cannot separate them — the paper's canonical hard
    case.  The forward-elimination body stores [g[j]] and then loads from
    four other parameter arrays: ambiguous RAW arcs on the critical
    recurrence. *)
val source : string
val workload : Workload.t
