(** smooft — smoothing of data (NRC style).

    FFT-based smoothing: transform the padded signal, attenuate high
    frequencies with a smooth window, transform back and rescale.  Calls
    the shared FFT kernel; the windowing pass stores into the spectra and
    then loads the window weights through another parameter. *)

let source_body =
  {|
double sr[64];
double si[64];
double win[64];
double orig[64];

/* attenuate; the stores to r[]/q[] are ambiguously aliased with the
   loads from w[] that follow in the same body */
void window_pass(double r[], double q[], double w[], int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    r[i] = r[i] * w[i];
    q[i] = q[i] * w[i];
  }
}

void smooft(double r[], double q[], double w[], int n) {
  int i;
  fft(r, q, n, 1);
  window_pass(r, q, w, n);
  fft(r, q, n, -1);
  for (i = 0; i < n; i = i + 1) {
    r[i] = r[i] / n;
    q[i] = q[i] / n;
  }
}

int main() {
  int i; int f;
  double chk; double c;
  for (i = 0; i < 64; i = i + 1) {
    /* a smooth signal plus alternating "noise" */
    sr[i] = my_sin(0.2 * i) + 0.3 * (i % 2) - 0.15;
    si[i] = 0.0;
    orig[i] = sr[i];
    /* raised-cosine low-pass window over frequency bins */
    f = i;
    if (f > 32) f = 64 - f;
    c = my_cos(3.141592653589793 * f / 32.0);
    win[i] = 0.25 * (1.0 + c) * (1.0 + c);
  }
  smooft(sr, si, win, 64);
  chk = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    chk = chk + (sr[i] - orig[i]) * (sr[i] - orig[i]) + sr[i] * 0.01 * i;
  }
  print_float(chk);
  return (int)(chk * 10.0);
}
|}

let source = Workload.math_helpers ^ Workload.fft_function ^ source_body

let workload =
  {
    Workload.name = "smooft";
    suite = Workload.Nrc;
    description = "Smoothing of data.";
    source;
  }
