(** tree — treesort (Stanford Integer Benchmarks).

    Builds a binary search tree in index-array form (the node "pointers"
    are integers read back out of memory — the paper's "address read out
    of another memory location" case) and then checksums an in-order
    traversal driven by an explicit stack.  The node arrays are passed as
    parameters so the references stay ambiguous. *)


(** tree — treesort (Stanford Integer Benchmarks).

    Builds a binary search tree in index-array form (the node "pointers"
    are integers read back out of memory — the paper's "address read out
    of another memory location" case) and then checksums an in-order
    traversal driven by an explicit stack.  The node arrays are passed as
    parameters so the references stay ambiguous. *)
val source : string
val workload : Workload.t
