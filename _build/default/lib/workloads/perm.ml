(** perm — recursive permutation program (Stanford Integer Benchmarks).

    Generates all permutations of a small vector by recursive swapping.
    The swap routine receives the array and two data-dependent indices:
    ambiguous WAR/WAW arcs between the element accesses. *)

let source =
  {|
int permarray[8];
int pctr = 0;

void swap_elems(int v[], int a, int b) {
  int t;
  t = v[a];
  v[a] = v[b];
  v[b] = t;
}

void permute(int n) {
  int k;
  pctr = pctr + 1;
  if (n != 0) {
    permute(n - 1);
    for (k = n - 1; k >= 0; k = k - 1) {
      swap_elems(permarray, n, k);
      permute(n - 1);
      swap_elems(permarray, n, k);
    }
  }
}

int main() {
  int i; int trial; int chk;
  chk = 0;
  for (trial = 0; trial < 3; trial = trial + 1) {
    for (i = 0; i < 8; i = i + 1) {
      permarray[i] = i;
    }
    pctr = 0;
    permute(6);
    chk = chk + pctr;
  }
  for (i = 0; i < 8; i = i + 1) {
    chk = chk + permarray[i] * (i + 1);
  }
  print_int(chk);
  return chk;
}
|}

let workload =
  {
    Workload.name = "perm";
    suite = Workload.Stanfint;
    description = "Recursive permutation program.";
    source;
  }
