(** solvde — relaxation for a two-point boundary value problem (NRC
    style, simplified).

    Solves the first-order system y0' = y1, y1' = -y0 (harmonic
    oscillator) on a mesh by repeated relaxation sweeps: residual
    computation, correction application, and an error reduction pass, all
    on arrays passed into procedures.  The paper's solvde is a 381-line
    Newton relaxation; this keeps its memory behaviour — sweeps over
    several parameter arrays with interleaved stores and loads — at
    kernel scale (see DESIGN.md). *)


(** solvde — relaxation for a two-point boundary value problem (NRC
    style, simplified).

    Solves the first-order system y0' = y1, y1' = -y0 (harmonic
    oscillator) on a mesh by repeated relaxation sweeps: residual
    computation, correction application, and an error reduction pass, all
    on arrays passed into procedures.  The paper's solvde is a 381-line
    Newton relaxation; this keeps its memory behaviour — sweeps over
    several parameter arrays with interleaved stores and loads — at
    kernel scale (see DESIGN.md). *)
val source : string
val workload : Workload.t
