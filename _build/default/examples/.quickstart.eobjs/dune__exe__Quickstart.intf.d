examples/quickstart.mli:
