examples/vliw_pipeline.mli:
