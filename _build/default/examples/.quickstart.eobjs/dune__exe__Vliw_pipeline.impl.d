examples/vliw_pipeline.ml: Array Fmt Fun List Option Spd_analysis Spd_core Spd_harness Spd_ir Spd_lang Spd_machine Spd_workloads Sys
