examples/custom_kernel.ml: Array Fmt Fun List Spd_harness Spd_lang Spd_machine Sys
