examples/alias_explorer.ml: Fmt List Spd_analysis Spd_disambig Spd_ir Spd_lang
