examples/quickstart.ml: Fmt List Spd_harness Spd_ir Spd_lang Spd_machine
