examples/alias_explorer.mli:
