(** Alias explorer: query the static disambiguator (GCD + Banerjee over
    affine address forms) on classic subscript pairs, including the
    paper's Example 2-2 whose alias probability is exactly 0.01.

    Run with: [dune exec examples/alias_explorer.exe] *)

module Alias = Spd_disambig.Alias
module Affine = Spd_analysis.Affine

(* Each scenario is a tiny loop with two references; we compile it, find
   the pair inside the loop tree, and ask the oracle. *)
let scenarios =
  [
    ( "paper Example 2-2: a[2i] vs a[i+4], i in [1,100]",
      {|
double a[300];
int main() {
  int i; double y;
  y = 0.0;
  for (i = 1; i <= 100; i = i + 1) {
    a[2 * i] = y;
    y = y + a[i + 4];
  }
  return (int)y;
}
|} );
    ( "disjoint strides: a[2i] vs a[2i+1]",
      {|
double a[300];
int main() {
  int i; double y;
  y = 0.0;
  for (i = 0; i < 100; i = i + 1) {
    a[2 * i] = y;
    y = y + a[2 * i + 1];
  }
  return (int)y;
}
|} );
    ( "identical subscripts: a[i+1] vs a[i+1]",
      {|
double a[300];
int main() {
  int i; double y;
  y = 0.0;
  for (i = 0; i < 100; i = i + 1) {
    y = y + a[i + 1] * 0.5;
    a[i + 1] = y;
  }
  return (int)y;
}
|} );
    ( "distinct globals: a[i] vs b[j] (any subscripts)",
      {|
double a[100];
double b[100];
int main() {
  int i; double y;
  y = 0.0;
  for (i = 0; i < 100; i = i + 1) {
    a[i] = y;
    y = y + b[i * 7 % 13];
  }
  return (int)y;
}
|} );
    ( "pointer parameters: p[i] vs q[i] (the hard case)",
      {|
double a[100];
double b[100];
double f(double p[], double q[], int n) {
  int i; double y;
  y = 0.0;
  for (i = 0; i < n; i = i + 1) {
    p[i] = y;
    y = y + q[i];
  }
  return y;
}
int main() { return (int)f(a, b, 100); }
|} );
    ( "same-iteration constant distance: a[i] vs a[i+200]",
      {|
double a[400];
double f(int n) {
  int i; double y;
  y = 0.0;
  for (i = 0; i < n; i = i + 1) {
    a[i] = y;
    y = y + a[i + 200];
  }
  return y;
}
int main() { return (int)f(100); }
|} );
    ( "loop bound from a parameter: a[2i] vs a[i+200], i < n",
      {|
double a[700];
double f(int n) {
  int i; double y;
  y = 0.0;
  for (i = 0; i < n; i = i + 1) {
    a[2 * i] = y;
    y = y + a[i + 200];
  }
  return y;
}
int main() { return (int)f(100); }
|} );
    ( "same pair with literal bounds: a[2i] vs a[i+200], i < 100",
      {|
double a[700];
int main() {
  int i; double y;
  y = 0.0;
  for (i = 0; i < 100; i = i + 1) {
    a[2 * i] = y;
    y = y + a[i + 200];
  }
  return (int)y;
}
|} );
  ]

(* The first tree containing a store and a load, with the oracle's answer
   for that pair. *)
let analyze src =
  let prog =
    Spd_analysis.Forwarding.run (Spd_lang.Lower.compile src)
  in
  let answer = ref None in
  Spd_ir.Prog.iter_trees
    (fun _ tree ->
      if !answer = None then begin
        let mems = Spd_ir.Tree.mem_insns tree in
        let stores = List.filter Spd_ir.Insn.is_store mems in
        let loads = List.filter Spd_ir.Insn.is_load mems in
        match (stores, loads) with
        | store :: _, load :: _ ->
            let env = Affine.analyze tree in
            answer := Some (Alias.query tree env store load)
        | _ -> ()
      end)
    prog;
  !answer

let () =
  Fmt.pr "Static disambiguation oracle (GCD + Banerjee over affine forms)@.@.";
  List.iter
    (fun (name, src) ->
      match analyze src with
      | Some a -> Fmt.pr "%-55s -> %a@." name Alias.pp_answer a
      | None -> Fmt.pr "%-55s -> (no store/load pair found)@." name)
    scenarios;
  Fmt.pr
    "@.'no' arcs are deleted by STATIC; 'must' arcs can never be removed;@.\
     'unknown' arcs are what speculative disambiguation attacks at run \
     time.@."
