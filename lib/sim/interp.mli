(** Cycle-level simulator.

    The interpreter executes decision trees traversal by traversal with
    sequential (original program order) semantics: every instruction is
    evaluated, stores commit only when their guard holds, and the first
    exit whose guard holds is taken.  This is the ground-truth semantics
    against which all disambiguator pipelines are validated.

    Orthogonally, when a {!Timing} table is supplied (built from a machine
    schedule or from the infinite-machine ASAP analysis), each traversal is
    charged [max(taken-exit completion, committed store completions)]
    cycles, and the total is the program's execution time on that machine —
    the paper's measurement methodology.

    The interpreter also fills in a {!Profile}: exit frequencies and
    dynamic alias counts per memory dependence arc (the PERFECT
    disambiguator's input). *)

(** {1 Structured errors}

    Every abnormal termination raises {!Sim_error} with a
    machine-readable kind plus the execution context — function, tree
    and faulting operation — so harness layers can render and classify
    failures without parsing message strings. *)

type error_kind =
  | Fuel_exhausted of int  (** the traversal budget that ran out *)
  | Deadline_exceeded of float  (** the wall-clock budget, seconds *)
  | Call_depth_exceeded of int
  | Stack_overflow
  | Store_out_of_bounds of int
  | Unknown_global of string
  | Unknown_function of string
  | No_such_tree of int
  | Globals_exceed_memory
  | Eval_error of string  (** a pure-evaluation fault, e.g. division by zero *)

type error_context = {
  in_func : string option;
  in_tree : int option;
  at_op : string option;
}

val no_context : error_context

exception Sim_error of error_kind * error_context

val pp_error_kind : Format.formatter -> error_kind -> unit
val pp_error : Format.formatter -> error_kind * error_context -> unit

(** The default traversal budget of {!run} when no [fuel] is given. *)
val default_fuel : int

type result = {
  ret : Spd_ir.Value.t;
  output : Spd_ir.Value.t list;
  cycles : int;
  traversals : int;
}
type finfo = {
  func : Spd_ir.Prog.func;
  by_id : Spd_ir.Tree.t option array;
  nregs : int;
}
type frame = {
  saved_regs : Spd_ir.Value.t array;
  saved_fp : int;
  saved_sp : int;
  saved_fi : finfo;
  ret_reg : Spd_ir.Reg.t option;
  resume : int;
}
val build_finfo : Spd_ir.Prog.func -> finfo

(** Lay out globals in low memory; returns the address map and the first
    free address.  Address 0 is reserved so that a stray null-ish pointer
    faults loudly in bounds checks of size-0 accesses. *)
val layout : Spd_ir.Prog.t -> (string -> int) * int

(** Per-traversal cost callback for dynamic timing models: receives the
    traversal's concrete memory addresses ([addrs], indexed by instruction
    position, [-1] for non-memory ops), which guarded operations committed
    ([active]) and the taken exit, and returns the traversal's cycles.
    Used by the hardware dynamic-disambiguation baseline, which resolves
    aliases with run-time address compares. *)
type traversal_cost =
    func:string ->
    tree:Spd_ir.Tree.t ->
    addrs:int array -> active:bool array -> taken:int -> int

(** [run prog] interprets [prog] to completion.

    [fuel] bounds the number of tree traversals (default
    {!default_fuel}); exhausting it raises [Sim_error (Fuel_exhausted
    fuel, _)].  [deadline] is a wall-clock budget in seconds, checked
    every few thousand traversals; exceeding it raises
    [Sim_error (Deadline_exceeded d, _)].  [spd] registers watches on
    SpD-transformed regions; their alias/no-alias commit and squash
    counters are filled in as the program runs.

    [replay] (default true) enables the per-tree {!Replay} cache:
    traversals repeating an already-seen (taken exit, guarded-store
    commit outcome) combination replay the cached cycle charge and
    committed-arc summary instead of re-walking the tree.  Results are
    bit-identical either way — alias address compares always run against
    live addresses, and any guard difference falls back to the full
    walk — so [~replay:false] exists only for the differential tests. *)
val run :
  ?timing:Timing.t ->
  ?traversal_cost:traversal_cost ->
  ?profile:Profile.t ->
  ?spd:Profile.Spd.t ->
  ?mem_words:int ->
  ?fuel:int ->
  ?deadline:float -> ?replay:bool -> Spd_ir.Prog.t -> result

(** Run and return just the observable behaviour (return value and output),
    used for semantic-equivalence checks between pipelines. *)
val observe :
  ?mem_words:int ->
  ?fuel:int ->
  ?deadline:float ->
  Spd_ir.Prog.t -> Spd_ir.Value.t * Spd_ir.Value.t list
