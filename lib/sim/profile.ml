(** Execution profiles collected by the interpreter.

    Two kinds of information, both used exactly as in the paper:

    - {b path probabilities}: how often each exit of each tree is taken,
      feeding the [Gain()] estimator of the SpD guidance heuristic;
    - {b alias counts}: for every memory dependence arc, how often the two
      references were both active and hit the same address.  Arcs with
      [alias = 0] are the "superfluous arcs" that define the PERFECT
      disambiguator. *)

type arc_stat = { mutable both_active : int; mutable aliased : int }

type tree_stat = {
  mutable traversals : int;
  mutable cycles : int;
      (** simulated cycles charged to this tree's traversals; only filled
          when the interpreter runs with both a profile and a timing
          table, in which case the per-tree values sum exactly to the
          run's total cycle count *)
  exit_taken : int array;
  arc_stats : (int * int, arc_stat) Hashtbl.t;
      (** keyed by (src insn id, dst insn id) *)
}

type t = (string * int, tree_stat) Hashtbl.t
(** keyed by (function name, tree id) *)

let create () : t = Hashtbl.create 64

let tree_stat (p : t) ~func ~(tree : Spd_ir.Tree.t) : tree_stat =
  let key = (func, tree.id) in
  match Hashtbl.find_opt p key with
  | Some s -> s
  | None ->
      let s =
        {
          traversals = 0;
          cycles = 0;
          exit_taken = Array.make (Array.length tree.exits) 0;
          arc_stats = Hashtbl.create 8;
        }
      in
      Hashtbl.add p key s;
      s

let arc_stat (s : tree_stat) ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt s.arc_stats key with
  | Some a -> a
  | None ->
      let a = { both_active = 0; aliased = 0 } in
      Hashtbl.add s.arc_stats key a;
      a

let find (p : t) ~func ~tree_id = Hashtbl.find_opt p (func, tree_id)

(** Probability that traversal of the tree takes exit [k]; uniform when the
    tree was never profiled. *)
let exit_probability (p : t) ~func ~(tree : Spd_ir.Tree.t) k =
  match find p ~func ~tree_id:tree.id with
  | Some s when s.traversals > 0 ->
      float_of_int s.exit_taken.(k) /. float_of_int s.traversals
  | _ -> 1.0 /. float_of_int (Array.length tree.exits)

(** Observed alias probability of an arc, when the pair was ever active. *)
let alias_probability (p : t) ~func ~tree_id ~src ~dst =
  match find p ~func ~tree_id with
  | None -> None
  | Some s -> (
      match Hashtbl.find_opt s.arc_stats (src, dst) with
      | Some a when a.both_active > 0 ->
          Some (float_of_int a.aliased /. float_of_int a.both_active)
      | _ -> None)

(** True when profiling proved the arc superfluous: the two references
    never dynamically touched the same address. *)
let superfluous (p : t) ~func ~tree_id ~src ~dst =
  match find p ~func ~tree_id with
  | None -> false
  | Some s -> (
      match Hashtbl.find_opt s.arc_stats (src, dst) with
      | Some a -> a.aliased = 0
      | None -> s.traversals > 0)

(** Run-time dynamics of SpD-transformed regions.

    The SpD transformation materialises, for every transformed arc, an
    alias predicate register: true exactly when the two references
    collide at run time, in which case the region's {e alias version}
    commits; otherwise the speculative {e no-alias version} does.  A
    watch registers that predicate so the interpreter can attribute each
    traversal of the transformed tree to one version, and count guarded
    stores whose guard came out false (squashed operations). *)
module Spd = struct
  type region = {
    func : string;
    tree_id : int;
    predicate : Spd_ir.Reg.t;
    mutable alias_commits : int;
    mutable noalias_commits : int;
  }

  type tree_watch = {
    mutable watched : region list;  (** newest first; see {!regions} *)
    mutable traversals : int;
    mutable squashed : int;
  }

  type t = (string * int, tree_watch) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let watch (w : t) ~func ~tree_id ~predicate : region =
    let tw =
      match Hashtbl.find_opt w (func, tree_id) with
      | Some tw -> tw
      | None ->
          let tw = { watched = []; traversals = 0; squashed = 0 } in
          Hashtbl.add w (func, tree_id) tw;
          tw
    in
    let r =
      { func; tree_id; predicate; alias_commits = 0; noalias_commits = 0 }
    in
    tw.watched <- r :: tw.watched;
    r

  let find (w : t) ~func ~tree_id = Hashtbl.find_opt w (func, tree_id)

  (** Every watched region, sorted by (function, tree id, predicate) —
      a deterministic order independent of registration order. *)
  let regions (w : t) : region list =
    Hashtbl.fold (fun _ tw acc -> tw.watched @ acc) w []
    |> List.sort (fun a b ->
           compare
             (a.func, a.tree_id, a.predicate)
             (b.func, b.tree_id, b.predicate))

  type totals = {
    n_regions : int;
    alias : int;
    noalias : int;
    squashed : int;
  }

  let totals (w : t) : totals =
    let alias = ref 0 and noalias = ref 0 and squashed = ref 0 in
    let n = ref 0 in
    Hashtbl.iter
      (fun _ (tw : tree_watch) ->
        squashed := !squashed + tw.squashed;
        List.iter
          (fun r ->
            incr n;
            alias := !alias + r.alias_commits;
            noalias := !noalias + r.noalias_commits)
          tw.watched)
      w;
    { n_regions = !n; alias = !alias; noalias = !noalias; squashed = !squashed }
end
