(** Execution profiles collected by the interpreter.

    Two kinds of information, both used exactly as in the paper:

    - {b path probabilities}: how often each exit of each tree is taken,
      feeding the [Gain()] estimator of the SpD guidance heuristic;
    - {b alias counts}: for every memory dependence arc, how often the two
      references were both active and hit the same address.  Arcs with
      [alias = 0] are the "superfluous arcs" that define the PERFECT
      disambiguator. *)

type arc_stat = { mutable both_active : int; mutable aliased : int; }

type tree_stat = {
  mutable traversals : int;
  mutable cycles : int;
      (** simulated cycles charged to this tree's traversals; only filled
          when the interpreter runs with both a profile and a timing
          table, in which case the per-tree values sum exactly to the
          run's total cycle count *)
  exit_taken : int array;
  arc_stats : (int * int, arc_stat) Hashtbl.t;
      (** keyed by (src insn id, dst insn id) *)
}

type t = (string * int, tree_stat) Hashtbl.t
(** keyed by (function name, tree id) *)

val create : unit -> t
val tree_stat : t -> func:string -> tree:Spd_ir.Tree.t -> tree_stat
val arc_stat : tree_stat -> src:int -> dst:int -> arc_stat
val find : t -> func:string -> tree_id:int -> tree_stat option

(** Probability that traversal of the tree takes exit [k]; uniform when the
    tree was never profiled. *)
val exit_probability : t -> func:string -> tree:Spd_ir.Tree.t -> int -> float

(** Observed alias probability of an arc, when the pair was ever active. *)
val alias_probability :
  t -> func:string -> tree_id:int -> src:int -> dst:int -> float option

(** True when profiling proved the arc superfluous: the two references
    never dynamically touched the same address. *)
val superfluous :
  t -> func:string -> tree_id:int -> src:int -> dst:int -> bool

(** Run-time dynamics of SpD-transformed regions.

    A watch registers the alias predicate register materialised by an
    SpD application, so the interpreter can attribute each traversal of
    the transformed tree to its alias or no-alias version and count
    guarded stores whose guard came out false (squashed operations). *)
module Spd : sig
  type region = {
    func : string;
    tree_id : int;
    predicate : Spd_ir.Reg.t;
    mutable alias_commits : int;
        (** traversals on which the predicate was true: the two
            references collided and the alias version committed *)
    mutable noalias_commits : int;
        (** traversals on which the speculative no-alias version won *)
  }

  type tree_watch = {
    mutable watched : region list;
    mutable traversals : int;
    mutable squashed : int;
        (** guarded stores of the tree whose guard came out false *)
  }

  type t

  val create : unit -> t

  (** Register a region of interest; the returned handle accumulates
      its commit counts as the interpreter runs. *)
  val watch :
    t -> func:string -> tree_id:int -> predicate:Spd_ir.Reg.t -> region

  val find : t -> func:string -> tree_id:int -> tree_watch option

  (** Every watched region, sorted by (function, tree id, predicate). *)
  val regions : t -> region list

  type totals = {
    n_regions : int;
    alias : int;
    noalias : int;
    squashed : int;
  }

  val totals : t -> totals
end
