(** Cycle-level simulator.

    The interpreter executes decision trees traversal by traversal with
    sequential (original program order) semantics: every instruction is
    evaluated, stores commit only when their guard holds, and the first
    exit whose guard holds is taken.  This is the ground-truth semantics
    against which all disambiguator pipelines are validated.

    Orthogonally, when a {!Timing} table is supplied (built from a machine
    schedule or from the infinite-machine ASAP analysis), each traversal is
    charged [max(taken-exit completion, committed store completions)]
    cycles, and the total is the program's execution time on that machine —
    the paper's measurement methodology.

    The interpreter also fills in a {!Profile}: exit frequencies and
    dynamic alias counts per memory dependence arc (the PERFECT
    disambiguator's input).

    Internally each tree is compiled once per run into a flat array of
    specialized operations (register numbers resolved, store guards
    encoded as ints, memory/store positions pre-indexed) so the traversal
    loop allocates nothing and dispatches one shallow match per
    instruction.  Per-tree bookkeeping — cycle charge, committed-arc
    profile walk, squash count — is memoized in a {!Replay} cache keyed
    on the traversal's guard outcomes; see that module for the exactness
    argument. *)

open Spd_ir

(* ------------------------------------------------------------------ *)
(* Structured simulator errors.  Every abnormal termination of a run
   carries a machine-readable kind plus the execution context (function,
   tree, faulting operation) at the point of failure, so harness layers
   can render and classify failures without parsing strings. *)

type error_kind =
  | Fuel_exhausted of int  (** the traversal budget that ran out *)
  | Deadline_exceeded of float  (** the wall-clock budget, seconds *)
  | Call_depth_exceeded of int
  | Stack_overflow
  | Store_out_of_bounds of int
  | Unknown_global of string
  | Unknown_function of string
  | No_such_tree of int
  | Globals_exceed_memory
  | Eval_error of string  (** a pure-evaluation fault, e.g. division by zero *)

type error_context = {
  in_func : string option;
  in_tree : int option;
  at_op : string option;
}

let no_context = { in_func = None; in_tree = None; at_op = None }

exception Sim_error of error_kind * error_context

let pp_error_kind ppf = function
  | Fuel_exhausted n -> Fmt.pf ppf "fuel exhausted (%d traversals)" n
  | Deadline_exceeded s -> Fmt.pf ppf "deadline exceeded (%.3gs)" s
  | Call_depth_exceeded n -> Fmt.pf ppf "call depth exceeded (%d frames)" n
  | Stack_overflow -> Fmt.pf ppf "stack overflow"
  | Store_out_of_bounds a -> Fmt.pf ppf "store out of bounds: %d" a
  | Unknown_global g -> Fmt.pf ppf "unknown global %s" g
  | Unknown_function f -> Fmt.pf ppf "unknown function %s" f
  | No_such_tree id -> Fmt.pf ppf "no such tree %d" id
  | Globals_exceed_memory -> Fmt.pf ppf "globals exceed memory"
  | Eval_error msg -> Fmt.pf ppf "%s" msg

let pp_error ppf (kind, ctx) =
  pp_error_kind ppf kind;
  (match ctx.in_func with Some f -> Fmt.pf ppf " in %s" f | None -> ());
  (match ctx.in_tree with Some t -> Fmt.pf ppf ", tree %d" t | None -> ());
  match ctx.at_op with Some op -> Fmt.pf ppf ", at %s" op | None -> ()

let () =
  Printexc.register_printer (function
    | Sim_error (kind, ctx) ->
        Some (Fmt.str "Sim_error: %a" pp_error (kind, ctx))
    | _ -> None)

let fail ?(ctx = no_context) kind = raise (Sim_error (kind, ctx))

(** The default traversal budget of {!run} when no [fuel] is given. *)
let default_fuel = 60_000_000

type result = {
  ret : Value.t;  (** return value of [main] *)
  output : Value.t list;  (** values printed by the builtins, in order *)
  cycles : int;  (** total cycles; 0 when no timing table was given *)
  traversals : int;  (** number of tree traversals executed *)
}

(* Per-function runtime metadata. *)
type finfo = {
  func : Prog.func;
  by_id : Tree.t option array;  (** tree lookup by id *)
  nregs : int;
}

type frame = {
  saved_regs : Value.t array;
  saved_fp : int;
  saved_sp : int;
  saved_fi : finfo;
  ret_reg : Reg.t option;
  resume : int;  (** tree id to resume at *)
}

let build_finfo (func : Prog.func) : finfo =
  let max_id =
    List.fold_left (fun m (t : Tree.t) -> max m t.id) 0 func.trees
  in
  let by_id = Array.make (max_id + 1) None in
  List.iter (fun (t : Tree.t) -> by_id.(t.id) <- Some t) func.trees;
  let nregs =
    List.fold_left
      (fun m (t : Tree.t) -> Reg.Set.fold max (Tree.all_regs t) m)
      0 func.trees
    + 1
  in
  { func; by_id; nregs }

(** Lay out globals in low memory; returns the address map and the first
    free address.  Address 0 is reserved so that a stray null-ish pointer
    faults loudly in bounds checks of size-0 accesses. *)
let layout (prog : Prog.t) =
  let tbl = Hashtbl.create 16 in
  let next = ref 16 in
  List.iter
    (fun (g : Prog.global) ->
      Hashtbl.replace tbl g.gname !next;
      next := !next + g.words)
    prog.globals;
  ((fun name ->
     match Hashtbl.find_opt tbl name with
     | Some a -> a
     | None -> fail (Unknown_global name)),
   !next)

type traversal_cost =
  func:string ->
  tree:Tree.t ->
  addrs:int array ->
  active:bool array ->
  taken:int ->
  int
(** Per-traversal cost callback for dynamic timing models: receives the
    traversal's concrete memory addresses ([addrs], indexed by instruction
    position, [-1] for non-memory ops), which guarded operations committed
    ([active]) and the taken exit, and returns the traversal's cycles.
    Used by the hardware dynamic-disambiguation baseline, which resolves
    aliases with run-time address compares. *)

(* ------------------------------------------------------------------ *)
(* Compiled trees.

   Register numbers, guard polarities and memory-op positions are
   resolved once per run so the traversal loop is allocation free.  A
   guard is one int: 0 = unguarded, [g+1] = positive on register [g],
   [-(g+1)] = negative.  Any instruction or exit whose shape falls
   outside the specialized constructors compiles to a [CGen]/[XGen]
   fallback that interprets the original form with the historical code
   path, byte for byte. *)

type cop =
  | CLoad of { pos : int; addr : int; dst : int }
  | CStore of {
      pos : int;
      addr : int;
      src : int;
      guard : int;
      gidx : int;  (** index into the guarded-store mask; -1 unguarded *)
    }
  | CAddr_global of { dst : int; name : string; mutable cached : int }
  | CAddr_frame of { dst : int; off : int }
  | CConst of { dst : int; v : Value.t }
  | CMov of { dst : int; a : int }
  | CIbin of { op : Opcode.ibin; dst : int; a : int; b : int }
  | CIdiv of { op : Opcode.ibin; pos : int; dst : int; a : int; b : int }
      (** Div/Rem: the only pure ops that can fault, kept apart so the
          others dispatch without an exception handler *)
  | CIcmp of { op : Opcode.icmp; dst : int; a : int; b : int }
  | CFbin of { op : Opcode.fbin; dst : int; a : int; b : int }
  | CFcmp of { op : Opcode.fcmp; dst : int; a : int; b : int }
  | CNot of { dst : int; a : int }
  | CIneg of { dst : int; a : int }
  | CFneg of { dst : int; a : int }
  | CSelect of { dst : int; p : int; a : int; b : int }
  | CItof of { dst : int; a : int }
  | CFtoi of { dst : int; a : int }
  | CGen of { pos : int }  (** generic fallback *)

type cexit =
  | XJump of {
      target : int;
      dsts : int array;  (** target params, truncated to the args *)
      srcs : int array;
      scratch : Value.t array;  (** staging for the parallel copy *)
    }
  | XPrint of {
      as_float : bool;
      arg : int;
      return_to : int;
      dsts : int array;
      srcs : int array;
      scratch : Value.t array;
    }
  | XCall of {
      callee : string;
      call_srcs : int array;
      ret : int;  (** receiving register; -1 none *)
      return_to : int;
      dsts : int array;
      srcs : int array;
      scratch : Value.t array;
    }
  | XRet of { value : int (** -1 none *) }
  | XGen  (** generic fallback: interpret the source exit *)

type carc = {
  arc : Memdep.t;
  spos : int;  (** source position in the tree *)
  dpos : int;
}

type ctree = {
  tree : Tree.t;
  code : cop array;
  xguards : int array;  (** per exit, encoded guard *)
  cexits : cexit array;
  store_pos : int array;  (** positions of stores, for the timing walk *)
  gstore_pos : int array;  (** positions of guarded stores *)
  mem_pos : int array;  (** positions of memory ops, for scratch resets *)
  n_gstores : int;
  carcs : carc array;  (** the tree's memory dependence arcs, indexed *)
  parc : Profile.arc_stat option array;
      (** per arc, its profile counters once first resolved — created on
          demand exactly like the historical hashtable path *)
  mutable pstat : Profile.tree_stat option;  (** resolved on first use *)
  mutable watch : Profile.Spd.tree_watch option;
  mutable watch_resolved : bool;
  mutable ttime : Timing.tree_timing option;  (** resolved on first use *)
  replay : Replay.t;
}

let enc_guard = function
  | None -> 0
  | Some { Insn.greg; positive } -> if positive then greg + 1 else -(greg + 1)

let guard_ok (rf : Value.t array) g =
  g = 0
  ||
  let v = Value.is_true rf.(abs g - 1) in
  if g > 0 then v else not v

let compile_exit (fi : finfo) (e : Tree.exit) : cexit =
  let params_of target =
    if target >= 0 && target < Array.length fi.by_id then
      match fi.by_id.(target) with
      | Some (t : Tree.t) -> Some t.params
      | None -> None
    else None
  in
  (* the historical copy pairs each arg with the target param of the
     same rank; more args than params is a runtime error the generic
     path reproduces *)
  let copy_pairs params args =
    let n = List.length args in
    if n <= List.length params then begin
      let dsts = Array.make n 0 and srcs = Array.make n 0 in
      List.iteri (fun i p -> if i < n then dsts.(i) <- p) params;
      List.iteri (fun i r -> srcs.(i) <- r) args;
      Some (dsts, srcs, Array.make n Value.zero)
    end
    else None
  in
  match e.kind with
  | Tree.Jump { target; args } -> (
      match params_of target with
      | Some params -> (
          match copy_pairs params args with
          | Some (dsts, srcs, scratch) -> XJump { target; dsts; srcs; scratch }
          | None -> XGen)
      | None -> XGen)
  | Tree.Call
      {
        callee = ("print_int" | "print_float") as callee;
        call_args;
        return_to;
        cont_args;
        _;
      } -> (
      match (call_args, params_of return_to) with
      | arg :: _, Some params -> (
          match copy_pairs params cont_args with
          | Some (dsts, srcs, scratch) ->
              XPrint
                {
                  as_float = String.equal callee "print_float";
                  arg;
                  return_to;
                  dsts;
                  srcs;
                  scratch;
                }
          | None -> XGen)
      | _ -> XGen)
  | Tree.Call { callee; call_args; ret; return_to; cont_args } -> (
      match params_of return_to with
      | Some params -> (
          match copy_pairs params cont_args with
          | Some (dsts, srcs, scratch) ->
              XCall
                {
                  callee;
                  call_srcs = Array.of_list call_args;
                  ret = (match ret with Some r -> r | None -> -1);
                  return_to;
                  dsts;
                  srcs;
                  scratch;
                }
          | None -> XGen)
      | None -> XGen)
  | Tree.Return { value } ->
      XRet { value = (match value with Some r -> r | None -> -1) }

let compile_tree (fi : finfo) (tree : Tree.t) : ctree =
  let gctr = ref 0 in
  let gen_gstore = ref false in
  let stores = ref [] and gstores = ref [] and mems = ref [] in
  let compile_insn pos (insn : Insn.t) : cop =
    match (insn.op, insn.srcs, insn.dst) with
    | Opcode.Load, [ a ], Some dst ->
        mems := pos :: !mems;
        CLoad { pos; addr = a; dst }
    | Opcode.Store, [ a; v ], None ->
        mems := pos :: !mems;
        stores := pos :: !stores;
        let guard = enc_guard insn.guard in
        let gidx =
          if guard = 0 then -1
          else begin
            gstores := pos :: !gstores;
            let i = !gctr in
            incr gctr;
            i
          end
        in
        CStore { pos; addr = a; src = v; guard; gidx }
    | Opcode.Addrof (Opcode.Global g), [], Some dst ->
        CAddr_global { dst; name = g; cached = -1 }
    | Opcode.Addrof (Opcode.Frame off), [], Some dst ->
        CAddr_frame { dst; off }
    | Opcode.Const v, [], Some dst -> CConst { dst; v }
    | Opcode.Mov, [ a ], Some dst -> CMov { dst; a }
    | Opcode.Ibin ((Opcode.Div | Opcode.Rem) as op), [ a; b ], Some dst ->
        CIdiv { op; pos; dst; a; b }
    | Opcode.Ibin op, [ a; b ], Some dst -> CIbin { op; dst; a; b }
    | Opcode.Icmp op, [ a; b ], Some dst -> CIcmp { op; dst; a; b }
    | Opcode.Fbin op, [ a; b ], Some dst -> CFbin { op; dst; a; b }
    | Opcode.Fcmp op, [ a; b ], Some dst -> CFcmp { op; dst; a; b }
    | Opcode.Not, [ a ], Some dst -> CNot { dst; a }
    | Opcode.Ineg, [ a ], Some dst -> CIneg { dst; a }
    | Opcode.Fneg, [ a ], Some dst -> CFneg { dst; a }
    | Opcode.Select, [ p; a; b ], Some dst -> CSelect { dst; p; a; b }
    | Opcode.Itof, [ a ], Some dst -> CItof { dst; a }
    | Opcode.Ftoi, [ a ], Some dst -> CFtoi { dst; a }
    | _ ->
        if Insn.is_mem insn then mems := pos :: !mems;
        if Insn.is_store insn then begin
          stores := pos :: !stores;
          if insn.guard <> None then begin
            (* a guarded store on the generic path never reaches the
               commit mask, so the tree must not use the replay cache *)
            gen_gstore := true;
            gstores := pos :: !gstores;
            incr gctr
          end
        end;
        CGen { pos }
  in
  let code = Array.mapi compile_insn tree.insns in
  (* positions were consed in reverse *)
  let rev_array l = Array.of_list (List.rev l) in
  let pos_of_id = Array.make (Tree.max_insn_id tree + 1) (-1) in
  Array.iteri (fun pos (i : Insn.t) -> pos_of_id.(i.id) <- pos) tree.insns;
  let carcs =
    Array.of_list
      (List.map
         (fun (arc : Memdep.t) ->
           { arc; spos = pos_of_id.(arc.src); dpos = pos_of_id.(arc.dst) })
         tree.arcs)
  in
  {
    tree;
    code;
    xguards = Array.map (fun (e : Tree.exit) -> enc_guard e.xguard) tree.exits;
    cexits = Array.map (compile_exit fi) tree.exits;
    store_pos = rev_array !stores;
    gstore_pos = rev_array !gstores;
    mem_pos = rev_array !mems;
    n_gstores = !gctr;
    carcs;
    parc = Array.make (Array.length carcs) None;
    pstat = None;
    watch = None;
    watch_resolved = false;
    ttime = None;
    replay =
      Replay.create
        ~n_guarded_stores:(if !gen_gstore then max_int else !gctr)
        ();
  }

(* ------------------------------------------------------------------ *)
(* Pooled memory images.

   Allocating and zeroing a megaword [Value.t array] dominated the cost
   of short runs.  Each domain instead keeps a pool of cleared images,
   keyed by size; a run checks one out, records every word it dirties
   (global initialization as contiguous ranges, committed stores as
   single addresses) and the release hook re-zeroes exactly those words.
   If a run dirties too many individual words to be worth tracking, the
   image is re-zeroed wholesale — never worse than the historical
   allocate-per-run.  Checkout removes the image from the pool, so
   re-entrant or concurrent runs in one domain each get their own. *)

module Mempool = struct
  type image = {
    mem : Value.t array;
    mutable dirty : int array;  (** dirtied single addresses *)
    mutable n_dirty : int;
    mutable ranges : (int * int) list;  (** dirtied (base, len) spans *)
    mutable overflow : bool;  (** too many to track: full re-zero *)
  }

  let pool : (int, image) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 4)

  let acquire words : image =
    let tbl = Domain.DLS.get pool in
    match Hashtbl.find_opt tbl words with
    | Some img ->
        Hashtbl.remove tbl words;
        img
    | None ->
        {
          mem = Array.make words Value.zero;
          dirty = Array.make 256 0;
          n_dirty = 0;
          ranges = [];
          overflow = false;
        }

  let touch img addr =
    if not img.overflow then begin
      let cap = Array.length img.dirty in
      if img.n_dirty = cap then
        if cap >= Array.length img.mem / 8 then img.overflow <- true
        else begin
          let d = Array.make (2 * cap) 0 in
          Array.blit img.dirty 0 d 0 cap;
          img.dirty <- d
        end;
      if not img.overflow then begin
        img.dirty.(img.n_dirty) <- addr;
        img.n_dirty <- img.n_dirty + 1
      end
    end

  let touch_range img base len =
    if len > 0 then img.ranges <- (base, len) :: img.ranges

  let release img =
    (if img.overflow then Array.fill img.mem 0 (Array.length img.mem) Value.zero
     else begin
       for i = 0 to img.n_dirty - 1 do
         img.mem.(img.dirty.(i)) <- Value.zero
       done;
       List.iter
         (fun (base, len) -> Array.fill img.mem base len Value.zero)
         img.ranges
     end);
    img.n_dirty <- 0;
    img.ranges <- [];
    img.overflow <- false;
    let tbl = Domain.DLS.get pool in
    Hashtbl.replace tbl (Array.length img.mem) img
end

(* registered once; sharded, so hot-loop-free bumping is cheap *)
let m_runs = lazy (Spd_telemetry.Metrics.counter "spd.sim.runs")
let m_traversals = lazy (Spd_telemetry.Metrics.counter "spd.sim.traversals")

let m_replay_hits =
  lazy (Spd_telemetry.Metrics.counter "spd.sim.replay_hits")

let m_replay_misses =
  lazy (Spd_telemetry.Metrics.counter "spd.sim.replay_misses")

let run ?timing ?(traversal_cost : traversal_cost option)
    ?(profile : Profile.t option) ?(spd : Profile.Spd.t option)
    ?(mem_words = 1 lsl 20) ?(fuel = default_fuel)
    ?(deadline : float option) ?(replay = true) (prog : Prog.t) : result =
  let deadline_abs =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline
  in
  let global_addr, globals_end = layout prog in
  let image = Mempool.acquire mem_words in
  let mem = image.mem in
  Fun.protect ~finally:(fun () -> Mempool.release image) @@ fun () ->
  List.iter
    (fun (g : Prog.global) ->
      let base = global_addr g.gname in
      if base < mem_words then
        Mempool.touch_range image base
          (min (Array.length g.ginit) (mem_words - base));
      Array.iteri (fun i v -> mem.(base + i) <- v) g.ginit)
    prog.globals;
  if globals_end >= mem_words then fail Globals_exceed_memory;
  let finfos = Hashtbl.create 8 in
  List.iter
    (fun (name, f) -> Hashtbl.replace finfos name (build_finfo f))
    prog.funcs;
  let finfo name =
    match Hashtbl.find_opt finfos name with
    | Some fi -> fi
    | None -> fail (Unknown_function name)
  in
  (* compile every tree once for this run *)
  let cts_of : (string, ctree option array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      let fi = Hashtbl.find finfos name in
      let arr =
        Array.map (Option.map (fun t -> compile_tree fi t)) fi.by_id
      in
      Hashtbl.replace cts_of name arr)
    prog.funcs;
  (* scratch buffers sized to the largest tree *)
  let max_insns =
    List.fold_left
      (fun m (_, (f : Prog.func)) ->
        List.fold_left
          (fun m (t : Tree.t) -> max m (Array.length t.insns))
          m f.trees)
      1 prog.funcs
  in
  let addr_buf = Array.make max_insns (-1) in
  let active_buf = Array.make max_insns false in
  let output = ref [] in
  let cycles = ref 0 in
  let traversals = ref 0 in
  let replay_hits = ref 0 in
  let replay_misses = ref 0 in
  (* current activation *)
  let fi = ref (finfo prog.main) in
  let cts = ref (Hashtbl.find cts_of prog.main) in
  let regs = ref (Array.make !fi.nregs Value.zero) in
  let sp = ref mem_words in
  let fp = ref (mem_words - !fi.func.frame_words) in
  sp := !fp;
  if !sp <= globals_end then fail Stack_overflow;
  let stack : frame list ref = ref [] in
  let tree_id = ref !fi.func.entry in
  let finished = ref None in
  (* context-carrying failure for everything inside the traversal loop *)
  let ctx ?op () =
    { in_func = Some !fi.func.fname; in_tree = Some !tree_id; at_op = op }
  in
  let failc ?op kind = fail ~ctx:(ctx ?op ()) kind in
  (* Loads are non-faulting (the paper's machine model, section 4.6: LIFE
     loads are dismissible): a speculative load from a wild address yields
     zero instead of trapping.  Committed stores are still checked. *)
  let load addr =
    if addr < 0 || addr >= mem_words then Value.zero else mem.(addr)
  in
  let store addr v =
    if addr < 0 || addr >= mem_words then failc (Store_out_of_bounds addr)
    else begin
      Mempool.touch image addr;
      mem.(addr) <- v
    end
  in
  (* per-tree lazily resolved bookkeeping handles *)
  let pstat (ct : ctree) p =
    match ct.pstat with
    | Some s -> s
    | None ->
        let s = Profile.tree_stat p ~func:!fi.func.fname ~tree:ct.tree in
        ct.pstat <- Some s;
        s
  in
  let watch (ct : ctree) w =
    if not ct.watch_resolved then begin
      ct.watch <-
        Profile.Spd.find w ~func:!fi.func.fname ~tree_id:ct.tree.id;
      ct.watch_resolved <- true
    end;
    ct.watch
  in
  let ttime (ct : ctree) tbl =
    match ct.ttime with
    | Some tt -> tt
    | None ->
        let tt = Timing.find tbl ~func:!fi.func.fname ~tree_id:ct.tree.id in
        ct.ttime <- Some tt;
        tt
  in
  let attribute_regions rf (tw : Profile.Spd.tree_watch) =
    List.iter
      (fun (r : Profile.Spd.region) ->
        if Value.is_true rf.(r.predicate) then
          r.alias_commits <- r.alias_commits + 1
        else r.noalias_commits <- r.noalias_commits + 1)
      tw.watched
  in
  (* the historical parallel-copy and transition code, used by the XGen
     fallback for exits whose shape the compiler does not specialize *)
  let generic_transition (tree : Tree.t) rf taken =
    let copy_into target_params args =
      let values = List.map (fun r -> rf.(r)) args in
      List.iter2
        (fun p v -> rf.(p) <- v)
        (List.filteri (fun i _ -> i < List.length values) target_params)
        values
    in
    match tree.exits.(taken).Tree.kind with
    | Tree.Jump { target; args } ->
        let tgt =
          match !fi.by_id.(target) with
          | Some t -> t
          | None -> failc (No_such_tree target)
        in
        copy_into tgt.params args;
        tree_id := target
    | Tree.Call { callee = "print_int"; call_args; return_to; cont_args; _ }
      ->
        output := Value.Int (Value.to_int rf.(List.hd call_args)) :: !output;
        let tgt = Option.get !fi.by_id.(return_to) in
        copy_into tgt.params cont_args;
        tree_id := return_to
    | Tree.Call { callee = "print_float"; call_args; return_to; cont_args; _ }
      ->
        output :=
          Value.Float (Value.to_float rf.(List.hd call_args)) :: !output;
        let tgt = Option.get !fi.by_id.(return_to) in
        copy_into tgt.params cont_args;
        tree_id := return_to
    | Tree.Call { callee; call_args; ret; return_to; cont_args } ->
        let tgt = Option.get !fi.by_id.(return_to) in
        copy_into tgt.params cont_args;
        let callee_fi = finfo callee in
        let arg_values = List.map (fun r -> rf.(r)) call_args in
        stack :=
          {
            saved_regs = rf;
            saved_fp = !fp;
            saved_sp = !sp;
            saved_fi = !fi;
            ret_reg = ret;
            resume = return_to;
          }
          :: !stack;
        if List.length !stack > 100_000 then
          failc (Call_depth_exceeded 100_000);
        fi := callee_fi;
        cts := Hashtbl.find cts_of callee;
        regs := Array.make callee_fi.nregs Value.zero;
        List.iter2
          (fun p v -> !regs.(p) <- v)
          callee_fi.func.fparams arg_values;
        fp := !sp - callee_fi.func.frame_words;
        sp := !fp;
        if !sp <= globals_end then failc Stack_overflow;
        tree_id := callee_fi.func.entry
    | Tree.Return { value } -> (
        let v = match value with Some r -> rf.(r) | None -> Value.zero in
        match !stack with
        | [] -> finished := Some v
        | frame :: rest ->
            stack := rest;
            regs := frame.saved_regs;
            fp := frame.saved_fp;
            sp := frame.saved_sp;
            fi := frame.saved_fi;
            cts := Hashtbl.find cts_of frame.saved_fi.func.fname;
            (match frame.ret_reg with
            | Some r -> !regs.(r) <- v
            | None -> ());
            tree_id := frame.resume)
  in
  (* staged parallel copy: read every source, then write every target *)
  let do_copy rf dsts srcs scratch =
    let n = Array.length srcs in
    for i = 0 to n - 1 do
      scratch.(i) <- rf.(srcs.(i))
    done;
    for i = 0 to n - 1 do
      rf.(dsts.(i)) <- scratch.(i)
    done
  in
  while !finished = None do
    incr traversals;
    if !traversals > fuel then failc (Fuel_exhausted fuel);
    (match deadline_abs with
    | Some dl when !traversals land 0x3fff = 0 && Unix.gettimeofday () > dl
      ->
        failc (Deadline_exceeded (Option.get deadline))
    | _ -> ());
    let ct =
      match !cts.(!tree_id) with
      | Some ct -> ct
      | None -> failc (No_such_tree !tree_id)
    in
    let rf = !regs in
    (* evaluate instructions in program order *)
    let gmask = ref 0 in
    let code = ct.code in
    for i = 0 to Array.length code - 1 do
      match Array.unsafe_get code i with
      | CIbin { op; dst; a; b } -> rf.(dst) <- Eval.eval_ibin op rf.(a) rf.(b)
      | CIcmp { op; dst; a; b } -> rf.(dst) <- Eval.eval_icmp op rf.(a) rf.(b)
      | CFbin { op; dst; a; b } -> rf.(dst) <- Eval.eval_fbin op rf.(a) rf.(b)
      | CFcmp { op; dst; a; b } -> rf.(dst) <- Eval.eval_fcmp op rf.(a) rf.(b)
      | CLoad { pos; addr; dst } ->
          let a = Value.to_int rf.(addr) in
          addr_buf.(pos) <- a;
          active_buf.(pos) <- true;
          rf.(dst) <- load a
      | CStore { pos; addr; src; guard; gidx } ->
          let a = Value.to_int rf.(addr) in
          addr_buf.(pos) <- a;
          let active = guard_ok rf guard in
          active_buf.(pos) <- active;
          if active then begin
            if gidx >= 0 then gmask := !gmask lor (1 lsl gidx);
            store a rf.(src)
          end
      | CConst { dst; v } -> rf.(dst) <- v
      | CMov { dst; a } -> rf.(dst) <- rf.(a)
      | CSelect { dst; p; a; b } ->
          rf.(dst) <- (if Value.is_true rf.(p) then rf.(a) else rf.(b))
      | CNot { dst; a } -> rf.(dst) <- Value.of_bool (not (Value.is_true rf.(a)))
      | CIneg { dst; a } -> rf.(dst) <- Value.Int (-Value.to_int rf.(a))
      | CFneg { dst; a } -> rf.(dst) <- Value.Float (-.Value.to_float rf.(a))
      | CItof { dst; a } -> rf.(dst) <- Value.Float (Value.to_float rf.(a))
      | CFtoi { dst; a } -> rf.(dst) <- Value.Int (Value.to_int rf.(a))
      | CAddr_frame { dst; off } -> rf.(dst) <- Value.Int (!fp + off)
      | CAddr_global g ->
          if g.cached < 0 then g.cached <- global_addr g.name;
          rf.(g.dst) <- Value.Int g.cached
      | CIdiv { op; pos; dst; a; b } -> (
          match Eval.eval_ibin op rf.(a) rf.(b) with
          | v -> rf.(dst) <- v
          | exception Eval.Runtime_error msg ->
              failc
                ~op:(Fmt.str "%a" Opcode.pp ct.tree.insns.(pos).Insn.op)
                (Eval_error msg))
      | CGen { pos } -> (
          let insn = ct.tree.insns.(pos) in
          let guard_holds (g : Insn.guard option) =
            match g with
            | None -> true
            | Some { greg; positive } ->
                let v = Value.is_true rf.(greg) in
                if positive then v else not v
          in
          match insn.op with
          | Opcode.Load ->
              let a = Value.to_int rf.(Insn.addr insn) in
              addr_buf.(pos) <- a;
              active_buf.(pos) <- true;
              rf.(Option.get insn.dst) <- load a
          | Opcode.Store ->
              let a = Value.to_int rf.(Insn.addr insn) in
              addr_buf.(pos) <- a;
              let active = guard_holds insn.guard in
              active_buf.(pos) <- active;
              if active then store a rf.(Insn.store_value insn)
          | Opcode.Addrof (Opcode.Global g) ->
              rf.(Option.get insn.dst) <- Value.Int (global_addr g)
          | Opcode.Addrof (Opcode.Frame off) ->
              rf.(Option.get insn.dst) <- Value.Int (!fp + off)
          | _ -> (
              let srcs = List.map (fun r -> rf.(r)) insn.srcs in
              match Eval.eval_pure insn.op srcs with
              | v -> rf.(Option.get insn.dst) <- v
              | exception Eval.Runtime_error msg ->
                  failc
                    ~op:(Fmt.str "%a" Spd_ir.Opcode.pp insn.op)
                    (Eval_error msg)))
    done;
    (* choose the taken exit *)
    let n_exits = Array.length ct.xguards in
    let taken = ref (n_exits - 1) in
    (try
       for k = 0 to n_exits - 1 do
         if guard_ok rf ct.xguards.(k) then begin
           taken := k;
           raise Exit
         end
       done
     with Exit -> ());
    (* per-traversal bookkeeping: replay a cached summary when this
       (exit, guard outcomes) combination has been walked before *)
    let key =
      if Replay.cacheable ct.replay then
        Replay.key ~taken:!taken ~gmask:!gmask
          ~n_guarded_stores:ct.n_gstores
      else 0
    in
    (match if replay then Replay.find ct.replay key else None with
    | Some s ->
        incr replay_hits;
        (match profile with
        | None -> ()
        | Some p ->
            let stat = pstat ct p in
            stat.traversals <- stat.traversals + 1;
            stat.exit_taken.(!taken) <- stat.exit_taken.(!taken) + 1;
            Array.iter
              (fun (aa : Replay.active_arc) ->
                aa.stat.both_active <- aa.stat.both_active + 1;
                if addr_buf.(aa.spos) = addr_buf.(aa.dpos) then
                  aa.stat.aliased <- aa.stat.aliased + 1)
              s.active_arcs);
        (match spd with
        | None -> ()
        | Some w -> (
            match watch ct w with
            | None -> ()
            | Some tw ->
                tw.traversals <- tw.traversals + 1;
                attribute_regions rf tw;
                tw.squashed <- tw.squashed + s.squashed));
        (match timing with
        | None -> ()
        | Some _ -> (
            cycles := !cycles + s.cost;
            match profile with
            | None -> ()
            | Some p ->
                let stat = pstat ct p in
                stat.cycles <- stat.cycles + s.cost))
    | None ->
        incr replay_misses;
        let cache = replay && Replay.cacheable ct.replay in
        (* profile *)
        let actives = ref [] in
        (match profile with
        | None -> ()
        | Some p ->
            let stat = pstat ct p in
            stat.traversals <- stat.traversals + 1;
            stat.exit_taken.(!taken) <- stat.exit_taken.(!taken) + 1;
            Array.iteri
              (fun i (ca : carc) ->
                if active_buf.(ca.spos) && active_buf.(ca.dpos) then begin
                  let a =
                    match ct.parc.(i) with
                    | Some a -> a
                    | None ->
                        let a =
                          Profile.arc_stat stat ~src:ca.arc.src
                            ~dst:ca.arc.dst
                        in
                        ct.parc.(i) <- Some a;
                        a
                  in
                  a.both_active <- a.both_active + 1;
                  if addr_buf.(ca.spos) = addr_buf.(ca.dpos) then
                    a.aliased <- a.aliased + 1;
                  if cache then
                    actives :=
                      { Replay.stat = a; spos = ca.spos; dpos = ca.dpos }
                      :: !actives
                end)
              ct.carcs);
        (* SpD run-time dynamics: attribute the traversal of each watched
           region to its alias or no-alias version via the predicate
           register (single-assignment within the tree, so reading it
           after instruction evaluation is exact), and count squashed
           guarded stores. *)
        let squashed = ref 0 in
        Array.iter
          (fun pos -> if not active_buf.(pos) then incr squashed)
          ct.gstore_pos;
        let squashed = !squashed in
        (match spd with
        | None -> ()
        | Some w -> (
            match watch ct w with
            | None -> ()
            | Some tw ->
                tw.traversals <- tw.traversals + 1;
                attribute_regions rf tw;
                tw.squashed <- tw.squashed + squashed));
        (* timing *)
        let cost = ref 0 in
        (match timing with
        | None -> ()
        | Some tbl ->
            let tt = ttime ct tbl in
            let t = ref tt.exit_completion.(!taken) in
            Array.iter
              (fun pos ->
                if active_buf.(pos) then
                  t := max !t tt.insn_completion.(pos))
              ct.store_pos;
            cost := !t;
            cycles := !cycles + !t;
            (* attribute the traversal's cost to its tree, so per-region
               cycle accounting sums exactly to the run total *)
            match profile with
            | None -> ()
            | Some p ->
                let stat = pstat ct p in
                stat.cycles <- stat.cycles + !t);
        if cache then
          Replay.add ct.replay key
            {
              Replay.cost = !cost;
              squashed;
              active_arcs = Array.of_list (List.rev !actives);
            });
    (match traversal_cost with
    | None -> ()
    | Some cost ->
        cycles :=
          !cycles
          + cost ~func:!fi.func.fname ~tree:ct.tree ~addrs:addr_buf
              ~active:active_buf ~taken:!taken;
        (* the callback contract promises -1/false outside this tree's
           memory ops, so restore the buffers to their pristine state *)
        Array.iter
          (fun pos ->
            addr_buf.(pos) <- -1;
            active_buf.(pos) <- false)
          ct.mem_pos);
    (* transition *)
    match ct.cexits.(!taken) with
    | XJump { target; dsts; srcs; scratch } ->
        do_copy rf dsts srcs scratch;
        tree_id := target
    | XPrint { as_float; arg; return_to; dsts; srcs; scratch } ->
        output :=
          (if as_float then Value.Float (Value.to_float rf.(arg))
           else Value.Int (Value.to_int rf.(arg)))
          :: !output;
        do_copy rf dsts srcs scratch;
        tree_id := return_to
    | XCall { callee; call_srcs; ret; return_to; dsts; srcs; scratch } ->
        do_copy rf dsts srcs scratch;
        let callee_fi = finfo callee in
        stack :=
          {
            saved_regs = rf;
            saved_fp = !fp;
            saved_sp = !sp;
            saved_fi = !fi;
            ret_reg = (if ret < 0 then None else Some ret);
            resume = return_to;
          }
          :: !stack;
        if List.length !stack > 100_000 then
          failc (Call_depth_exceeded 100_000);
        let newregs = Array.make callee_fi.nregs Value.zero in
        (let rec fill ps i =
           match ps with
           | [] ->
               if i <> Array.length call_srcs then invalid_arg "List.iter2"
           | p :: tl ->
               if i >= Array.length call_srcs then invalid_arg "List.iter2"
               else begin
                 newregs.(p) <- rf.(call_srcs.(i));
                 fill tl (i + 1)
               end
         in
         fill callee_fi.func.fparams 0);
        fi := callee_fi;
        cts := Hashtbl.find cts_of callee;
        regs := newregs;
        fp := !sp - callee_fi.func.frame_words;
        sp := !fp;
        if !sp <= globals_end then failc Stack_overflow;
        tree_id := callee_fi.func.entry
    | XRet { value } -> (
        let v = if value < 0 then Value.zero else rf.(value) in
        match !stack with
        | [] -> finished := Some v
        | frame :: rest ->
            stack := rest;
            regs := frame.saved_regs;
            fp := frame.saved_fp;
            sp := frame.saved_sp;
            fi := frame.saved_fi;
            cts := Hashtbl.find cts_of frame.saved_fi.func.fname;
            (match frame.ret_reg with
            | Some r -> !regs.(r) <- v
            | None -> ());
            tree_id := frame.resume)
    | XGen -> generic_transition ct.tree rf !taken
  done;
  Spd_telemetry.Metrics.incr (Lazy.force m_runs);
  Spd_telemetry.Metrics.incr ~by:!traversals (Lazy.force m_traversals);
  if !replay_hits > 0 then
    Spd_telemetry.Metrics.incr ~by:!replay_hits (Lazy.force m_replay_hits);
  if !replay_misses > 0 then
    Spd_telemetry.Metrics.incr ~by:!replay_misses
      (Lazy.force m_replay_misses);
  {
    ret = Option.get !finished;
    output = List.rev !output;
    cycles = !cycles;
    traversals = !traversals;
  }

(** Run and return just the observable behaviour (return value and output),
    used for semantic-equivalence checks between pipelines. *)
let observe ?mem_words ?fuel ?deadline prog =
  let r = run ?mem_words ?fuel ?deadline prog in
  (r.ret, r.output)
