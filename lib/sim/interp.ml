(** Cycle-level simulator.

    The interpreter executes decision trees traversal by traversal with
    sequential (original program order) semantics: every instruction is
    evaluated, stores commit only when their guard holds, and the first
    exit whose guard holds is taken.  This is the ground-truth semantics
    against which all disambiguator pipelines are validated.

    Orthogonally, when a {!Timing} table is supplied (built from a machine
    schedule or from the infinite-machine ASAP analysis), each traversal is
    charged [max(taken-exit completion, committed store completions)]
    cycles, and the total is the program's execution time on that machine —
    the paper's measurement methodology.

    The interpreter also fills in a {!Profile}: exit frequencies and
    dynamic alias counts per memory dependence arc (the PERFECT
    disambiguator's input). *)

open Spd_ir

(* ------------------------------------------------------------------ *)
(* Structured simulator errors.  Every abnormal termination of a run
   carries a machine-readable kind plus the execution context (function,
   tree, faulting operation) at the point of failure, so harness layers
   can render and classify failures without parsing strings. *)

type error_kind =
  | Fuel_exhausted of int  (** the traversal budget that ran out *)
  | Deadline_exceeded of float  (** the wall-clock budget, seconds *)
  | Call_depth_exceeded of int
  | Stack_overflow
  | Store_out_of_bounds of int
  | Unknown_global of string
  | Unknown_function of string
  | No_such_tree of int
  | Globals_exceed_memory
  | Eval_error of string  (** a pure-evaluation fault, e.g. division by zero *)

type error_context = {
  in_func : string option;
  in_tree : int option;
  at_op : string option;
}

let no_context = { in_func = None; in_tree = None; at_op = None }

exception Sim_error of error_kind * error_context

let pp_error_kind ppf = function
  | Fuel_exhausted n -> Fmt.pf ppf "fuel exhausted (%d traversals)" n
  | Deadline_exceeded s -> Fmt.pf ppf "deadline exceeded (%.3gs)" s
  | Call_depth_exceeded n -> Fmt.pf ppf "call depth exceeded (%d frames)" n
  | Stack_overflow -> Fmt.pf ppf "stack overflow"
  | Store_out_of_bounds a -> Fmt.pf ppf "store out of bounds: %d" a
  | Unknown_global g -> Fmt.pf ppf "unknown global %s" g
  | Unknown_function f -> Fmt.pf ppf "unknown function %s" f
  | No_such_tree id -> Fmt.pf ppf "no such tree %d" id
  | Globals_exceed_memory -> Fmt.pf ppf "globals exceed memory"
  | Eval_error msg -> Fmt.pf ppf "%s" msg

let pp_error ppf (kind, ctx) =
  pp_error_kind ppf kind;
  (match ctx.in_func with Some f -> Fmt.pf ppf " in %s" f | None -> ());
  (match ctx.in_tree with Some t -> Fmt.pf ppf ", tree %d" t | None -> ());
  match ctx.at_op with Some op -> Fmt.pf ppf ", at %s" op | None -> ()

let () =
  Printexc.register_printer (function
    | Sim_error (kind, ctx) ->
        Some (Fmt.str "Sim_error: %a" pp_error (kind, ctx))
    | _ -> None)

let fail ?(ctx = no_context) kind = raise (Sim_error (kind, ctx))

(** The default traversal budget of {!run} when no [fuel] is given. *)
let default_fuel = 60_000_000

type result = {
  ret : Value.t;  (** return value of [main] *)
  output : Value.t list;  (** values printed by the builtins, in order *)
  cycles : int;  (** total cycles; 0 when no timing table was given *)
  traversals : int;  (** number of tree traversals executed *)
}

(* Per-function runtime metadata. *)
type finfo = {
  func : Prog.func;
  by_id : Tree.t option array;  (** tree lookup by id *)
  nregs : int;
}

type frame = {
  saved_regs : Value.t array;
  saved_fp : int;
  saved_sp : int;
  saved_fi : finfo;
  ret_reg : Reg.t option;
  resume : int;  (** tree id to resume at *)
}

let build_finfo (func : Prog.func) : finfo =
  let max_id =
    List.fold_left (fun m (t : Tree.t) -> max m t.id) 0 func.trees
  in
  let by_id = Array.make (max_id + 1) None in
  List.iter (fun (t : Tree.t) -> by_id.(t.id) <- Some t) func.trees;
  let nregs =
    List.fold_left
      (fun m (t : Tree.t) -> Reg.Set.fold max (Tree.all_regs t) m)
      0 func.trees
    + 1
  in
  { func; by_id; nregs }

(** Lay out globals in low memory; returns the address map and the first
    free address.  Address 0 is reserved so that a stray null-ish pointer
    faults loudly in bounds checks of size-0 accesses. *)
let layout (prog : Prog.t) =
  let tbl = Hashtbl.create 16 in
  let next = ref 16 in
  List.iter
    (fun (g : Prog.global) ->
      Hashtbl.replace tbl g.gname !next;
      next := !next + g.words)
    prog.globals;
  ((fun name ->
     match Hashtbl.find_opt tbl name with
     | Some a -> a
     | None -> fail (Unknown_global name)),
   !next)

type traversal_cost =
  func:string ->
  tree:Tree.t ->
  addrs:int array ->
  active:bool array ->
  taken:int ->
  int
(** Per-traversal cost callback for dynamic timing models: receives the
    traversal's concrete memory addresses ([addrs], indexed by instruction
    position, [-1] for non-memory ops), which guarded operations committed
    ([active]) and the taken exit, and returns the traversal's cycles.
    Used by the hardware dynamic-disambiguation baseline, which resolves
    aliases with run-time address compares. *)

(* registered once; sharded, so hot-loop-free bumping is cheap *)
let m_runs = lazy (Spd_telemetry.Metrics.counter "spd.sim.runs")
let m_traversals = lazy (Spd_telemetry.Metrics.counter "spd.sim.traversals")

let run ?timing ?(traversal_cost : traversal_cost option)
    ?(profile : Profile.t option) ?(spd : Profile.Spd.t option)
    ?(mem_words = 1 lsl 20) ?(fuel = default_fuel)
    ?(deadline : float option) (prog : Prog.t) : result =
  let deadline_abs =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline
  in
  let global_addr, globals_end = layout prog in
  let mem = Array.make mem_words Value.zero in
  List.iter
    (fun (g : Prog.global) ->
      let base = global_addr g.gname in
      Array.iteri (fun i v -> mem.(base + i) <- v) g.ginit)
    prog.globals;
  if globals_end >= mem_words then fail Globals_exceed_memory;
  let finfos = Hashtbl.create 8 in
  List.iter
    (fun (name, f) -> Hashtbl.replace finfos name (build_finfo f))
    prog.funcs;
  let finfo name =
    match Hashtbl.find_opt finfos name with
    | Some fi -> fi
    | None -> fail (Unknown_function name)
  in
  (* scratch buffers sized to the largest tree *)
  let max_insns =
    List.fold_left
      (fun m (_, (f : Prog.func)) ->
        List.fold_left
          (fun m (t : Tree.t) -> max m (Array.length t.insns))
          m f.trees)
      1 prog.funcs
  in
  let addr_buf = Array.make max_insns (-1) in
  let active_buf = Array.make max_insns false in
  let output = ref [] in
  let cycles = ref 0 in
  let traversals = ref 0 in
  (* current activation *)
  let fi = ref (finfo prog.main) in
  let regs = ref (Array.make !fi.nregs Value.zero) in
  let sp = ref mem_words in
  let fp = ref (mem_words - !fi.func.frame_words) in
  sp := !fp;
  if !sp <= globals_end then fail Stack_overflow;
  let stack : frame list ref = ref [] in
  let tree_id = ref !fi.func.entry in
  let finished = ref None in
  (* context-carrying failure for everything inside the traversal loop *)
  let ctx ?op () =
    { in_func = Some !fi.func.fname; in_tree = Some !tree_id; at_op = op }
  in
  let failc ?op kind = fail ~ctx:(ctx ?op ()) kind in
  (* Loads are non-faulting (the paper's machine model, section 4.6: LIFE
     loads are dismissible): a speculative load from a wild address yields
     zero instead of trapping.  Committed stores are still checked. *)
  let load addr =
    if addr < 0 || addr >= mem_words then Value.zero else mem.(addr)
  in
  let store addr v =
    if addr < 0 || addr >= mem_words then failc (Store_out_of_bounds addr)
    else mem.(addr) <- v
  in
  while !finished = None do
    incr traversals;
    if !traversals > fuel then failc (Fuel_exhausted fuel);
    (match deadline_abs with
    | Some dl when !traversals land 0x3fff = 0 && Unix.gettimeofday () > dl
      ->
        failc (Deadline_exceeded (Option.get deadline))
    | _ -> ());
    let tree =
      match !fi.by_id.(!tree_id) with
      | Some t -> t
      | None -> failc (No_such_tree !tree_id)
    in
    let rf = !regs in
    let guard_holds (g : Insn.guard option) =
      match g with
      | None -> true
      | Some { greg; positive } ->
          let v = Value.is_true rf.(greg) in
          if positive then v else not v
    in
    (* evaluate instructions in program order *)
    Array.iteri
      (fun pos (insn : Insn.t) ->
        match insn.op with
        | Opcode.Load ->
            let a = Value.to_int rf.(Insn.addr insn) in
            addr_buf.(pos) <- a;
            active_buf.(pos) <- true;
            rf.(Option.get insn.dst) <- load a
        | Opcode.Store ->
            let a = Value.to_int rf.(Insn.addr insn) in
            addr_buf.(pos) <- a;
            let active = guard_holds insn.guard in
            active_buf.(pos) <- active;
            if active then store a rf.(Insn.store_value insn)
        | Opcode.Addrof (Opcode.Global g) ->
            rf.(Option.get insn.dst) <- Value.Int (global_addr g)
        | Opcode.Addrof (Opcode.Frame off) ->
            rf.(Option.get insn.dst) <- Value.Int (!fp + off)
        | _ -> (
            let srcs = List.map (fun r -> rf.(r)) insn.srcs in
            match Eval.eval_pure insn.op srcs with
            | v -> rf.(Option.get insn.dst) <- v
            | exception Eval.Runtime_error msg ->
                failc ~op:(Fmt.str "%a" Spd_ir.Opcode.pp insn.op)
                  (Eval_error msg)))
      tree.insns;
    (* choose the taken exit *)
    let n_exits = Array.length tree.exits in
    let taken = ref (n_exits - 1) in
    (try
       for k = 0 to n_exits - 1 do
         if guard_holds tree.exits.(k).xguard then begin
           taken := k;
           raise Exit
         end
       done
     with Exit -> ());
    (* profile *)
    (match profile with
    | None -> ()
    | Some p ->
        let stat = Profile.tree_stat p ~func:!fi.func.fname ~tree in
        stat.traversals <- stat.traversals + 1;
        stat.exit_taken.(!taken) <- stat.exit_taken.(!taken) + 1;
        List.iter
          (fun (arc : Memdep.t) ->
            let si = Tree.insn_index tree arc.src
            and di = Tree.insn_index tree arc.dst in
            if active_buf.(si) && active_buf.(di) then begin
              let a = Profile.arc_stat stat ~src:arc.src ~dst:arc.dst in
              a.both_active <- a.both_active + 1;
              if addr_buf.(si) = addr_buf.(di) then a.aliased <- a.aliased + 1
            end)
          tree.arcs);
    (* SpD run-time dynamics: attribute the traversal of each watched
       region to its alias or no-alias version via the predicate
       register (single-assignment within the tree, so reading it after
       instruction evaluation is exact), and count squashed guarded
       stores.  Must run before the scratch reset below clears
       [active_buf]. *)
    (match spd with
    | None -> ()
    | Some w -> (
        match Profile.Spd.find w ~func:!fi.func.fname ~tree_id:tree.id with
        | None -> ()
        | Some tw ->
            tw.traversals <- tw.traversals + 1;
            List.iter
              (fun (r : Profile.Spd.region) ->
                if Value.is_true rf.(r.predicate) then
                  r.alias_commits <- r.alias_commits + 1
                else r.noalias_commits <- r.noalias_commits + 1)
              tw.watched;
            Array.iteri
              (fun pos (insn : Insn.t) ->
                if
                  Insn.is_store insn && insn.guard <> None
                  && not active_buf.(pos)
                then tw.squashed <- tw.squashed + 1)
              tree.insns));
    (* timing *)
    (match timing with
    | None -> ()
    | Some tbl ->
        let tt = Timing.find tbl ~func:!fi.func.fname ~tree_id:tree.id in
        let t = ref tt.exit_completion.(!taken) in
        Array.iteri
          (fun pos (insn : Insn.t) ->
            if Insn.is_store insn && active_buf.(pos) then
              t := max !t tt.insn_completion.(pos))
          tree.insns;
        cycles := !cycles + !t;
        (* attribute the traversal's cost to its tree, so per-region
           cycle accounting sums exactly to the run total *)
        match profile with
        | None -> ()
        | Some p ->
            let stat = Profile.tree_stat p ~func:!fi.func.fname ~tree in
            stat.cycles <- stat.cycles + !t);
    (match traversal_cost with
    | None -> ()
    | Some cost ->
        cycles :=
          !cycles
          + cost ~func:!fi.func.fname ~tree ~addrs:addr_buf
              ~active:active_buf ~taken:!taken);
    (* reset scratch *)
    Array.iteri
      (fun pos (insn : Insn.t) ->
        if Insn.is_mem insn then begin
          addr_buf.(pos) <- -1;
          active_buf.(pos) <- false
        end)
      tree.insns;
    (* transition *)
    let copy_into target_params args =
      let values = List.map (fun r -> rf.(r)) args in
      List.iter2
        (fun p v -> rf.(p) <- v)
        (List.filteri (fun i _ -> i < List.length values) target_params)
        values
    in
    match tree.exits.(!taken).kind with
    | Tree.Jump { target; args } ->
        let tgt =
          match !fi.by_id.(target) with
          | Some t -> t
          | None -> failc (No_such_tree target)
        in
        copy_into tgt.params args;
        tree_id := target
    | Tree.Call { callee = "print_int"; call_args; return_to; cont_args; _ } ->
        output := Value.Int (Value.to_int rf.(List.hd call_args)) :: !output;
        let tgt = Option.get !fi.by_id.(return_to) in
        copy_into tgt.params cont_args;
        tree_id := return_to
    | Tree.Call { callee = "print_float"; call_args; return_to; cont_args; _ }
      ->
        output :=
          Value.Float (Value.to_float rf.(List.hd call_args)) :: !output;
        let tgt = Option.get !fi.by_id.(return_to) in
        copy_into tgt.params cont_args;
        tree_id := return_to
    | Tree.Call { callee; call_args; ret; return_to; cont_args } ->
        let tgt = Option.get !fi.by_id.(return_to) in
        copy_into tgt.params cont_args;
        let callee_fi = finfo callee in
        let arg_values = List.map (fun r -> rf.(r)) call_args in
        stack :=
          {
            saved_regs = rf;
            saved_fp = !fp;
            saved_sp = !sp;
            saved_fi = !fi;
            ret_reg = ret;
            resume = return_to;
          }
          :: !stack;
        if List.length !stack > 100_000 then
          failc (Call_depth_exceeded 100_000);
        fi := callee_fi;
        regs := Array.make callee_fi.nregs Value.zero;
        List.iter2
          (fun p v -> !regs.(p) <- v)
          callee_fi.func.fparams arg_values;
        fp := !sp - callee_fi.func.frame_words;
        sp := !fp;
        if !sp <= globals_end then failc Stack_overflow;
        tree_id := callee_fi.func.entry
    | Tree.Return { value } -> (
        let v =
          match value with Some r -> rf.(r) | None -> Value.zero
        in
        match !stack with
        | [] -> finished := Some v
        | frame :: rest ->
            stack := rest;
            regs := frame.saved_regs;
            fp := frame.saved_fp;
            sp := frame.saved_sp;
            fi := frame.saved_fi;
            (match frame.ret_reg with
            | Some r -> !regs.(r) <- v
            | None -> ());
            tree_id := frame.resume)
  done;
  Spd_telemetry.Metrics.incr (Lazy.force m_runs);
  Spd_telemetry.Metrics.incr ~by:!traversals (Lazy.force m_traversals);
  {
    ret = Option.get !finished;
    output = List.rev !output;
    cycles = !cycles;
    traversals = !traversals;
  }

(** Run and return just the observable behaviour (return value and output),
    used for semantic-equivalence checks between pipelines. *)
let observe ?mem_words ?fuel ?deadline prog =
  let r = run ?mem_words ?fuel ?deadline prog in
  (r.ret, r.output)
