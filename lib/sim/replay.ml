(** Exact-replay memoization of per-traversal bookkeeping.

    A traversal's {e bookkeeping} — its cycle charge, which memory
    dependence arcs had both endpoints committed, and how many guarded
    stores were squashed — is a pure function of the tree, the exit it
    took and the set of guarded stores whose guards held.  The
    interpreter therefore keys a per-tree cache on
    [(taken exit, guarded-store commit mask)] and, on a hit, replays the
    cached summary instead of re-walking the tree's instructions.

    Whenever a guard outcome differs — in particular when an
    SpD-transformed region's alias predicate flips, changing which
    version's guarded stores commit — the key differs and the traversal
    falls back to full interpretation, so every [Profile] and
    [Profile.Spd] counter stays exact.  Concrete memory addresses are
    {e not} part of the key: alias hits ([Profile.arc_stat.aliased]) are
    recounted on every traversal from the live address buffer, over the
    summary's committed-arc list.

    The cache is private to one interpreter run (timing tables, profiles
    and fault configuration are fixed for a run, so a summary can never
    leak across configurations), and entry count is capped — pathological
    trees with many independent guards degrade to full interpretation
    rather than unbounded memory. *)

type active_arc = {
  stat : Profile.arc_stat;  (** the arc's profile counters *)
  spos : int;  (** source position in the tree, for address compares *)
  dpos : int;
}

type summary = {
  cost : int;
      (** the traversal's cycle charge under the run's timing table;
          0 when the run has no timing table *)
  squashed : int;  (** guarded stores whose guard came out false *)
  active_arcs : active_arc array;
      (** memory dependence arcs with both endpoints committed; empty
          when the run collects no profile *)
}

type t = {
  cacheable : bool;
      (** false when the tree has too many guarded stores to pack the
          commit mask into an int key — every traversal then takes the
          cold path *)
  table : (int, summary) Hashtbl.t;
  max_entries : int;
}

(** Guarded stores representable in the packed key, leaving room for the
    taken-exit index in the upper bits of a 63-bit int. *)
let max_guarded_stores = 40

let default_max_entries = 1024

let create ?(max_entries = default_max_entries) ~n_guarded_stores () =
  let cacheable = n_guarded_stores <= max_guarded_stores in
  {
    cacheable;
    table = Hashtbl.create (if cacheable then 16 else 1);
    max_entries;
  }

let cacheable t = t.cacheable

(** Pack a traversal outcome into a cache key.  Only meaningful when
    [cacheable]. *)
let key ~taken ~gmask ~n_guarded_stores = (taken lsl n_guarded_stores) lor gmask

let find t k = if t.cacheable then Hashtbl.find_opt t.table k else None

let add t k summary =
  if t.cacheable && Hashtbl.length t.table < t.max_entries then
    Hashtbl.add t.table k summary
