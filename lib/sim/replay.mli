(** Exact-replay memoization of per-traversal bookkeeping.

    Per-tree cache keyed on [(taken exit, guarded-store commit mask)]:
    on a hit the interpreter replays the cached cycle charge, squash
    count and committed-arc list instead of re-walking the tree's
    instructions.  Any guard outcome difference — e.g. an SpD alias
    predicate flipping — changes the key, forcing full interpretation,
    so profile and SpD counters stay exact.  Alias hits are recounted
    from live addresses on every traversal; they are never cached.
    Caches are private to one interpreter run and capped in size. *)

type active_arc = {
  stat : Profile.arc_stat;  (** the arc's profile counters *)
  spos : int;  (** source position in the tree, for address compares *)
  dpos : int;
}

type summary = {
  cost : int;  (** cycle charge; 0 when the run has no timing table *)
  squashed : int;  (** guarded stores whose guard came out false *)
  active_arcs : active_arc array;
      (** arcs with both endpoints committed; empty without a profile *)
}

type t

(** Guarded stores representable in the packed key (40): trees beyond
    this are never cached. *)
val max_guarded_stores : int

val default_max_entries : int

val create : ?max_entries:int -> n_guarded_stores:int -> unit -> t

(** False when the tree has more than {!max_guarded_stores} guarded
    stores; every lookup then misses and no summary is stored. *)
val cacheable : t -> bool

(** Pack a traversal outcome into a cache key.  Only meaningful when
    {!cacheable} holds. *)
val key : taken:int -> gmask:int -> n_guarded_stores:int -> int

val find : t -> int -> summary option
val add : t -> int -> summary -> unit
