(** The SpD guidance heuristic, Figure 5-1 of the paper.

    For each tree: repeatedly apply SpD to the critical ambiguous arc with
    the largest predicted gain, until the tree has grown past
    [max_expansion] times its original size, no critical ambiguous arc
    remains, or the best gain falls below [min_gain]. *)

type params = {
  max_expansion : float;
  min_gain : float;
  max_applications : int;
}
val default_params : params
type application = {
  func : string;
  tree_id : int;
  kind : Spd_ir.Memdep.kind;
  arc : int * int;
  predicate : Spd_ir.Reg.t;
      (** register holding the alias compare: true at run time exactly
          when the region's alias version commits *)
  predicted_gain : float;
  cost : int;
  alias_insns : int list;
      (** ids of the ops committing on the alias outcome *)
  noalias_insns : int list;
      (** ids of the original side effects, now no-alias-guarded *)
}

(** Per-application verification hook: called with the tree before the
    transform, the accepted application and the transformed tree —
    speculative transforms must be machine-checked, not assumed
    correct.  An exception raised by a checker propagates out of
    {!run}; callers decide the blast radius.  In the harness that is
    the experiment engine's protected cell runner: the affected grid
    cell alone records a [Failed] outcome (rendered n/a, CLI exit 2)
    while sibling cells are unaffected. *)
type checker =
  func:string -> before:Spd_ir.Tree.t -> application -> Spd_ir.Tree.t -> unit

(** The fate of one candidate ambiguous arc.  Every candidate the
    heuristic ever considered receives exactly one verdict: [Applied],
    or a rejection carrying the machine-readable reason the arc was
    left in place. *)
type verdict =
  | Applied
  | Rejected_not_critical
      (** removing the arc does not shorten the expected critical path *)
  | Rejected_not_applicable of Transform.not_applicable
  | Rejected_below_min_gain
  | Rejected_max_applications
  | Rejected_max_expansion

(** Stable machine-readable verdict string (["applied"] or
    ["rejected:<reason>"]), used by the [spd-decisions/1] schema and
    the [spd.heuristic.*] counters. *)
val verdict_name : verdict -> string

val pp_verdict : Format.formatter -> verdict -> unit

(** One ledger entry: a candidate ambiguous arc, the [Gain()] numbers
    it was judged on, the budgets in force, and the verdict.  The
    ledger partitions the candidates exactly: applied entries appear
    in application order (matching the returned [application] list
    one-for-one), and every ambiguous arc left in the final tree
    appears once as a rejected entry, judged where the heuristic
    stopped. *)
type decision = {
  func : string;
  tree_id : int;
  kind : Spd_ir.Memdep.kind;
  arc : int * int;
  ambiguity : Spd_ir.Memdep.ambiguity option;
      (** which static test left the arc ambiguous *)
  before : float;  (** expected traversal time with the arc in place *)
  after : float;  (** expected traversal time without the arc *)
  gain : float;  (** [before -. after], compared against [min_gain] *)
  min_gain : float;
  tree_size : int;  (** tree size when the candidate was judged *)
  max_size : int;  (** the [max_expansion] budget, in instructions *)
  verdict : verdict;
  profiled : bool;  (** exit weights from a profile, not uniform *)
}

val run_tree :
  ?profile:Spd_sim.Profile.t ->
  ?checker:checker ->
  params:params ->
  mem_latency:int ->
  func:string ->
  Spd_ir.Tree.t -> Spd_ir.Tree.t * application list * decision list

(** Apply the heuristic to every tree of the program. *)
val run :
  ?profile:Spd_sim.Profile.t ->
  ?checker:checker ->
  ?params:params ->
  mem_latency:int ->
  Spd_ir.Prog.t -> Spd_ir.Prog.t * application list * decision list

(** Tally applications by dependence kind: the row format of Table 6-3. *)
val count_by_kind : application list -> int * int * int

(** Applied ledger entries, in application order. *)
val applied_decisions : decision list -> decision list

(** Rejection-reason histogram of a ledger, sorted by reason name. *)
val rejection_histogram : decision list -> (string * int) list
