(** The SpD guidance heuristic, Figure 5-1 of the paper.

    For each tree: repeatedly apply SpD to the critical ambiguous arc with
    the largest predicted gain, until the tree has grown past
    [max_expansion] times its original size, no critical ambiguous arc
    remains, or the best gain falls below [min_gain]. *)

type params = {
  max_expansion : float;
  min_gain : float;
  max_applications : int;
}
val default_params : params
type application = {
  func : string;
  tree_id : int;
  kind : Spd_ir.Memdep.kind;
  arc : int * int;
  predicate : Spd_ir.Reg.t;
      (** register holding the alias compare: true at run time exactly
          when the region's alias version commits *)
  predicted_gain : float;
  cost : int;
  alias_insns : int list;
      (** ids of the ops committing on the alias outcome *)
  noalias_insns : int list;
      (** ids of the original side effects, now no-alias-guarded *)
}

(** Per-application verification hook: called with the tree before the
    transform, the accepted application and the transformed tree.  A
    checker that raises aborts the whole run — speculative transforms
    must be machine-checked, not assumed correct. *)
type checker =
  func:string -> before:Spd_ir.Tree.t -> application -> Spd_ir.Tree.t -> unit

val run_tree :
  ?profile:Spd_sim.Profile.t ->
  ?checker:checker ->
  params:params ->
  mem_latency:int ->
  func:string -> Spd_ir.Tree.t -> Spd_ir.Tree.t * application list

(** Apply the heuristic to every tree of the program. *)
val run :
  ?profile:Spd_sim.Profile.t ->
  ?checker:checker ->
  ?params:params ->
  mem_latency:int -> Spd_ir.Prog.t -> Spd_ir.Prog.t * application list

(** Tally applications by dependence kind: the row format of Table 6-3. *)
val count_by_kind : application list -> int * int * int
