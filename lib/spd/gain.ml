(** The [Gain()] estimator of the guidance heuristic (paper section 5.3).

    The predicted gain of removing an ambiguous arc is the drop in the
    tree's expected execution time on the infinite machine, where the
    expectation runs over the tree's exits weighted by profiled path
    probabilities (uniform when no profile is available, e.g. on the first
    compile). *)

open Spd_ir
module Ddg = Spd_analysis.Ddg

let arc_eq (a : Memdep.t) (b : Memdep.t) =
  a.src = b.src && a.dst = b.dst && a.kind = b.kind

(** Expected traversal time of [tree] with the given arc filter.

    Matches the simulator's charge for a traversal taking exit [k]:
    [max(exit_k completion, committed store completions)].  The estimator
    conservatively assumes stores commit on every exit. *)
let expected_time ?profile ~mem_latency ~func ?(without : Memdep.t option)
    (tree : Tree.t) : float =
  let arc_active (a : Memdep.t) =
    Memdep.is_active a
    && match without with Some w -> not (arc_eq a w) | None -> true
  in
  let g = Ddg.build ~arc_active ~mem_latency tree in
  let insn_completion, exit_completion = Ddg.asap_completion g in
  let store_max = ref 0 in
  Array.iteri
    (fun pos (insn : Insn.t) ->
      if Insn.is_store insn then
        store_max := max !store_max insn_completion.(pos))
    tree.insns;
  let prob k =
    match profile with
    | Some p -> Spd_sim.Profile.exit_probability p ~func ~tree k
    | None -> 1.0 /. float_of_int (Array.length tree.exits)
  in
  let acc = ref 0.0 in
  Array.iteri
    (fun k c -> acc := !acc +. (prob k *. float_of_int (max c !store_max)))
    exit_completion;
  !acc

(** Predicted gain (in expected cycles per traversal) of removing [arc]. *)
let gain ?profile ~mem_latency ~func (tree : Tree.t) (arc : Memdep.t) : float
    =
  expected_time ?profile ~mem_latency ~func tree
  -. expected_time ?profile ~mem_latency ~func ~without:arc tree

(** One evaluated candidate: an ambiguous arc with the expected time
    of the tree with and without it, and the resulting predicted gain
    ([before -. after]). *)
type candidate = {
  arc : Memdep.t;
  before : float;
  after : float;
  gain : float;
}

(** Every ambiguous arc of [tree], evaluated — the decision ledger's
    raw material.  [before] is computed once and shared; the list is in
    [Tree.ambiguous_arcs] order (program order), which keeps everything
    derived from it deterministic. *)
let candidates ?profile ~mem_latency ~func (tree : Tree.t) : candidate list =
  let before = expected_time ?profile ~mem_latency ~func tree in
  List.map
    (fun arc ->
      let after =
        expected_time ?profile ~mem_latency ~func ~without:arc tree
      in
      { arc; before; after; gain = before -. after })
    (Tree.ambiguous_arcs tree)

(** The ambiguous arcs on a critical path: those whose removal reduces the
    expected traversal time (the paper's [CriticalAlias]). *)
let critical_aliases ?profile ~mem_latency ~func (tree : Tree.t) :
    (Memdep.t * float) list =
  List.filter_map
    (fun c -> if c.gain > 0.0 then Some (c.arc, c.gain) else None)
    (candidates ?profile ~mem_latency ~func tree)
