(** The speculative disambiguation code transformation (paper section 4).

    For an ambiguous arc the transform emits an address compare [p],
    produces code for {b both} outcomes of the alias, guards each side's
    side effects with opposite polarities of [p], and merges escaping
    values with [Select].  Concretely:

    - {b RAW} (store [S] before load [L]): the arc is removed, freeing [L]
      to issue before [S].  The slice dependent on [L] is duplicated with
      [S]'s stored value forwarded in place of the loaded value; the
      duplicate commits when the addresses alias (and [S] committed), the
      original when they do not.  Cost [1 + n_L].
    - {b WAR} (load [L1] before store [S1]): a new load [L3] from [S1]'s
      address is inserted before [L1] and protected by a must-arc
      [L3 -> S1]; the slice dependent on [L1] is duplicated reading [L3].
      Removing the arc frees [S1] to issue before [L1].  Cost [2 + n_L].
    - {b WAW} (store [S1] before store [S2]): the arc is removed, freeing
      [S2] to issue first; [S1] is additionally guarded to not commit when
      the addresses alias (and [S2] committed).  Cost [1].

    The transformation never physically reorders instructions: the
    sequential order of the rewritten tree remains a correct execution,
    and because each side of the compare is correct for its own alias
    outcome, {i any} schedule respecting the remaining arcs is correct
    too.  This is exactly the guarded-execution property the paper relies
    on. *)

type not_applicable =
    Arc_not_ambiguous
  | Intervening_reference
  | Address_unavailable

(** an address (or guard) is not computed early enough to place the
          compare/compensation load *)
val pp_not_applicable : Format.formatter -> not_applicable -> unit

(** Which guarded copies of the region the transformation produced, by
    instruction id: [alias_ids] commit (or feed the selected value) when
    the references collide; [noalias_ids] are the original side effects
    re-guarded to commit only when they do not. *)
type provenance = { alias_ids : int list; noalias_ids : int list }

type buf = {
  tree : Spd_ir.Tree.t;
  gen : Spd_ir.Reg.Gen.t;
  mutable next_id : int;
  pre : Spd_ir.Insn.t list array;
  replace : Spd_ir.Insn.t option array;
  post : Spd_ir.Insn.t list array;
  tail : Spd_ir.Insn.t list ref;
  dropped : bool array;
  mutable alias_ids : int list;
  mutable noalias_ids : int list;
}
val make_buf : Spd_ir.Tree.t -> buf
val fresh_id : buf -> int
val mk_insn :
  buf ->
  ?guard:Spd_ir.Insn.guard ->
  Spd_ir.Opcode.t -> Spd_ir.Reg.t list -> Spd_ir.Insn.t
val emit_before : buf -> int -> Spd_ir.Insn.t -> unit
val emit_after : buf -> int -> Spd_ir.Insn.t -> unit
val emit_tail : buf -> Spd_ir.Insn.t -> unit
val dst_exn : Spd_ir.Insn.t -> Spd_ir.Reg.t

(** Move the pure instructions computing [regs] (from [from_pos] onwards)
    up to just before [to_pos].  Caller must have verified hoistability. *)
val hoist_pure :
  buf -> regs:Spd_ir.Reg.t list -> from_pos:int -> to_pos:int -> unit
val finalize :
  buf ->
  arcs:Spd_ir.Memdep.t list -> exits:Spd_ir.Tree.exit array -> Spd_ir.Tree.t

(** Truth value of an existing guard as a register, materializing a [Not]
    when the polarity is negative.  [emit] places helper instructions. *)
val guard_value :
  buf -> emit:(Spd_ir.Insn.t -> unit) -> Spd_ir.Insn.guard -> Spd_ir.Reg.t

(** Conjoin an optional existing guard with predicate register [p] taken
    with [polarity]; returns the new guard. *)
val conj_guard :
  buf ->
  emit:(Spd_ir.Insn.t -> unit) ->
  Spd_ir.Insn.guard option ->
  p:Spd_ir.Reg.t -> polarity:bool -> Spd_ir.Insn.guard option

(** Predicate "this pair aliases": address equality, conjoined with the
    guard of [committing] when that store is itself conditional (the
    forwarded value only exists if the store commits). *)
val alias_predicate :
  buf ->
  pos:int ->
  Spd_ir.Insn.t option -> Spd_ir.Reg.t -> Spd_ir.Reg.t -> Spd_ir.Reg.t

(** Positions whose active arcs target [id] / leave [id]. *)
val active_arcs : Spd_ir.Tree.t -> Spd_ir.Memdep.t list
val pos_of : Spd_ir.Tree.t -> int -> int

(** Duplicate the forward slice of [root_reg], substituting [fwd_reg] for
    it.  Duplicated side effects are guarded with [p] positive; the
    original side effects in the slice get [p] negative conjoined in.
    Escaping values (used by exits) are merged with [Select p].

    Returns the set of new arcs mirroring the originals onto the
    duplicated memory operations, and the register substitution to apply
    to the exits. *)
val duplicate_slice :
  buf ->
  p:Spd_ir.Reg.t ->
  root_reg:Spd_ir.Reg.t ->
  fwd_reg:Spd_ir.Reg.t ->
  Spd_ir.Memdep.t list * Spd_ir.Reg.t Spd_ir.Reg.Map.t

(** No active arc into [dst_id] from a reference strictly between
    [lo_pos] and [hi_pos] (exclusive bounds). *)
val no_intervening_arc_into :
  Spd_ir.Tree.t -> dst_id:int -> lo_pos:int -> hi_pos:int -> bool

(** No active arc out of [src_id] into a reference strictly between. *)
val no_intervening_arc_out_of :
  Spd_ir.Tree.t -> src_id:int -> lo_pos:int -> hi_pos:int -> bool
val max_def_pos : Spd_ir.Tree.t -> Spd_ir.Reg.Map.key list -> int
val guard_regs : Spd_ir.Insn.t -> Spd_ir.Reg.t list
val check_applicable :
  Spd_ir.Tree.t -> Spd_ir.Memdep.t -> (unit, not_applicable) result
val can_apply : Spd_ir.Tree.t -> Spd_ir.Memdep.t -> bool
val remove_arc :
  Spd_ir.Memdep.t list -> Spd_ir.Memdep.t -> Spd_ir.Memdep.t list
val apply_raw :
  Spd_ir.Tree.t ->
  Spd_ir.Memdep.t -> Spd_ir.Tree.t * Spd_ir.Reg.t * provenance
val apply_waw :
  Spd_ir.Tree.t ->
  Spd_ir.Memdep.t -> Spd_ir.Tree.t * Spd_ir.Reg.t * provenance
val apply_war :
  Spd_ir.Tree.t ->
  Spd_ir.Memdep.t -> Spd_ir.Tree.t * Spd_ir.Reg.t * provenance

(** Apply SpD for [arc] in [tree].  Returns the transformed tree paired
    with the register holding the alias predicate [p] — true at run
    time exactly when the references alias, i.e. when the alias version
    of the region commits — and the version provenance of the rewritten
    operations, or the reason the transformation is not applicable. *)
val apply_traced :
  Spd_ir.Tree.t ->
  Spd_ir.Memdep.t ->
  (Spd_ir.Tree.t * Spd_ir.Reg.t * provenance, not_applicable) result

(** [apply_traced] without the predicate register or provenance. *)
val apply :
  Spd_ir.Tree.t -> Spd_ir.Memdep.t -> (Spd_ir.Tree.t, not_applicable) result

(** Paper cost model: operations added by applying SpD to [arc]
    (1 + n_L for RAW, 2 + n_L for WAR, 1 for WAW). *)
val estimated_cost : Spd_ir.Tree.t -> Spd_ir.Memdep.t -> int
