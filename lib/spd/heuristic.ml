(** The SpD guidance heuristic, Figure 5-1 of the paper.

    For each tree: repeatedly apply SpD to the critical ambiguous arc with
    the largest predicted gain, until the tree has grown past
    [max_expansion] times its original size, no critical ambiguous arc
    remains, or the best gain falls below [min_gain]. *)

open Spd_ir

type params = {
  max_expansion : float;  (** the paper's [MaxExpansion] *)
  min_gain : float;  (** the paper's [MinGain], in expected cycles *)
  max_applications : int;  (** hard safety cap per tree *)
}

let default_params =
  { max_expansion = 4.0; min_gain = 0.75; max_applications = 64 }

(** One successful SpD application, for reporting (Table 6-3) and for
    run-time attribution (the [predicate] register selects, per
    traversal, between the region's alias and no-alias versions). *)
type application = {
  func : string;
  tree_id : int;
  kind : Memdep.kind;
  arc : int * int;
  predicate : Reg.t;  (** register holding the alias compare *)
  predicted_gain : float;
  cost : int;  (** operations added, per the paper's cost model *)
  alias_insns : int list;
      (** ids of the ops committing on the alias outcome *)
  noalias_insns : int list;
      (** ids of the original side effects, now no-alias-guarded *)
}

(** Per-application verification hook: called with the tree before the
    transform, the accepted application and the transformed tree.  A
    checker that raises aborts the whole run — speculative transforms
    must be machine-checked, not assumed correct. *)
type checker =
  func:string -> before:Tree.t -> application -> Tree.t -> unit

let run_tree ?profile ?(checker : checker option) ~(params : params)
    ~mem_latency ~func (tree : Tree.t) : Tree.t * application list =
  let max_size =
    int_of_float (ceil (float_of_int (Tree.size tree) *. params.max_expansion))
  in
  let rec step t log n =
    if n >= params.max_applications || Tree.size t >= max_size then (t, log)
    else
      let candidates =
        Gain.critical_aliases ?profile ~mem_latency ~func t
        |> List.filter (fun (arc, _) -> Transform.can_apply t arc)
      in
      match
        List.sort (fun (_, g1) (_, g2) -> compare g2 g1) candidates
      with
      | [] -> (t, log)
      | (arc, g) :: _ ->
          if g < params.min_gain then (t, log)
          else (
            match Transform.apply_traced t arc with
            | Error _ -> (t, log) (* can_apply filtered; defensive *)
            | Ok (t', predicate, prov) ->
                let app =
                  {
                    func;
                    tree_id = t.id;
                    kind = arc.kind;
                    arc = (arc.src, arc.dst);
                    predicate;
                    predicted_gain = g;
                    cost = Transform.estimated_cost t arc;
                    alias_insns = prov.Transform.alias_ids;
                    noalias_insns = prov.Transform.noalias_ids;
                  }
                in
                (match checker with
                | Some check -> check ~func ~before:t app t'
                | None -> ());
                step t' (app :: log) (n + 1))
  in
  let t, log = step tree [] 0 in
  (t, List.rev log)

(** Apply the heuristic to every tree of the program. *)
let run ?profile ?checker ?(params = default_params) ~mem_latency
    (prog : Prog.t) : Prog.t * application list =
  let all = ref [] in
  let prog' =
    Prog.map_trees
      (fun func tree ->
        let tree', log =
          run_tree ?profile ?checker ~params ~mem_latency ~func tree
        in
        all := !all @ log;
        tree')
      prog
  in
  (prog', !all)

(** Tally applications by dependence kind: the row format of Table 6-3. *)
let count_by_kind (log : application list) : int * int * int =
  List.fold_left
    (fun (raw, war, waw) (a : application) ->
      match a.kind with
      | Memdep.Raw -> (raw + 1, war, waw)
      | Memdep.War -> (raw, war + 1, waw)
      | Memdep.Waw -> (raw, war, waw + 1))
    (0, 0, 0) log
