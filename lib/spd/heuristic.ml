(** The SpD guidance heuristic, Figure 5-1 of the paper.

    For each tree: repeatedly apply SpD to the critical ambiguous arc with
    the largest predicted gain, until the tree has grown past
    [max_expansion] times its original size, no critical ambiguous arc
    remains, or the best gain falls below [min_gain]. *)

open Spd_ir

type params = {
  max_expansion : float;  (** the paper's [MaxExpansion] *)
  min_gain : float;  (** the paper's [MinGain], in expected cycles *)
  max_applications : int;  (** hard safety cap per tree *)
}

let default_params =
  { max_expansion = 4.0; min_gain = 0.75; max_applications = 64 }

(** One successful SpD application, for reporting (Table 6-3) and for
    run-time attribution (the [predicate] register selects, per
    traversal, between the region's alias and no-alias versions). *)
type application = {
  func : string;
  tree_id : int;
  kind : Memdep.kind;
  arc : int * int;
  predicate : Reg.t;  (** register holding the alias compare *)
  predicted_gain : float;
  cost : int;  (** operations added, per the paper's cost model *)
  alias_insns : int list;
      (** ids of the ops committing on the alias outcome *)
  noalias_insns : int list;
      (** ids of the original side effects, now no-alias-guarded *)
}

(** Per-application verification hook: called with the tree before the
    transform, the accepted application and the transformed tree —
    speculative transforms must be machine-checked, not assumed
    correct.  An exception raised by a checker propagates out of
    {!run}; callers decide the blast radius.  In the harness that is
    the experiment engine's protected cell runner: the affected grid
    cell alone records a [Failed] outcome (rendered n/a, CLI exit 2)
    while sibling cells are unaffected. *)
type checker =
  func:string -> before:Tree.t -> application -> Tree.t -> unit

(** The fate of one candidate ambiguous arc.  Every candidate the
    heuristic ever considered receives exactly one verdict: [Applied],
    or a rejection carrying the machine-readable reason the arc was
    left in place. *)
type verdict =
  | Applied
  | Rejected_not_critical
      (** removing the arc does not shorten the expected critical path *)
  | Rejected_not_applicable of Transform.not_applicable
  | Rejected_below_min_gain
  | Rejected_max_applications
  | Rejected_max_expansion

(** Stable machine-readable verdict string, used by the
    [spd-decisions/1] schema and the [spd.heuristic.*] counters. *)
let verdict_name = function
  | Applied -> "applied"
  | Rejected_not_critical -> "rejected:not-critical"
  | Rejected_not_applicable Transform.Arc_not_ambiguous ->
      "rejected:not-applicable:arc-not-ambiguous"
  | Rejected_not_applicable Transform.Intervening_reference ->
      "rejected:not-applicable:intervening-reference"
  | Rejected_not_applicable Transform.Address_unavailable ->
      "rejected:not-applicable:address-unavailable"
  | Rejected_below_min_gain -> "rejected:below-min-gain"
  | Rejected_max_applications -> "rejected:max-applications"
  | Rejected_max_expansion -> "rejected:max-expansion"

let pp_verdict ppf v = Fmt.string ppf (verdict_name v)

(** One ledger entry: a candidate ambiguous arc, the [Gain()] numbers
    it was judged on, the budgets in force, and the verdict.  Applied
    entries appear in application order with the tree state of their
    round; rejected entries are judged against the final tree, where
    the heuristic stopped (so also-rans of every round are observed
    exactly once, with their final gain). *)
type decision = {
  func : string;
  tree_id : int;
  kind : Memdep.kind;
  arc : int * int;
  ambiguity : Memdep.ambiguity option;
      (** which static test left the arc ambiguous *)
  before : float;  (** expected traversal time with the arc in place *)
  after : float;  (** expected traversal time without the arc *)
  gain : float;  (** [before -. after], compared against [min_gain] *)
  min_gain : float;
  tree_size : int;  (** tree size when the candidate was judged *)
  max_size : int;  (** the [max_expansion] budget, in instructions *)
  verdict : verdict;
  profiled : bool;  (** exit weights from a profile, not uniform *)
}

(* why the application loop stopped, for classifying the leftovers *)
type stop =
  | Exhausted  (** no applicable candidate at or above [min_gain] *)
  | Budget_applications
  | Budget_expansion
  | Apply_failed of Transform.not_applicable

let run_tree ?profile ?(checker : checker option) ~(params : params)
    ~mem_latency ~func (tree : Tree.t) :
    Tree.t * application list * decision list =
  let max_size =
    int_of_float (ceil (float_of_int (Tree.size tree) *. params.max_expansion))
  in
  let decide (c : Gain.candidate) ~tree_size verdict : decision =
    {
      func;
      tree_id = tree.id;
      kind = c.Gain.arc.kind;
      arc = (c.Gain.arc.src, c.Gain.arc.dst);
      ambiguity = c.Gain.arc.why;
      before = c.Gain.before;
      after = c.Gain.after;
      gain = c.Gain.gain;
      min_gain = params.min_gain;
      tree_size;
      max_size;
      verdict;
      profiled = profile <> None;
    }
  in
  let rec step t log ledger n =
    if n >= params.max_applications then
      (t, log, ledger, Budget_applications)
    else if Tree.size t >= max_size then (t, log, ledger, Budget_expansion)
    else
      let viable =
        Gain.candidates ?profile ~mem_latency ~func t
        |> List.filter (fun (c : Gain.candidate) ->
               c.gain > 0.0 && Transform.can_apply t c.arc)
      in
      match
        List.sort
          (fun (c1 : Gain.candidate) (c2 : Gain.candidate) ->
            compare c2.gain c1.gain)
          viable
      with
      | [] -> (t, log, ledger, Exhausted)
      | best :: _ ->
          let arc = best.Gain.arc in
          if best.Gain.gain < params.min_gain then
            (t, log, ledger, Exhausted)
          else (
            match Transform.apply_traced t arc with
            | Error r ->
                (* can_apply filtered; defensive *)
                (t, log, ledger, Apply_failed r)
            | Ok (t', predicate, prov) ->
                let app =
                  {
                    func;
                    tree_id = t.id;
                    kind = arc.kind;
                    arc = (arc.src, arc.dst);
                    predicate;
                    predicted_gain = best.Gain.gain;
                    cost = Transform.estimated_cost t arc;
                    alias_insns = prov.Transform.alias_ids;
                    noalias_insns = prov.Transform.noalias_ids;
                  }
                in
                (match checker with
                | Some check -> check ~func ~before:t app t'
                | None -> ());
                let d = decide best ~tree_size:(Tree.size t) Applied in
                step t' (app :: log) (d :: ledger) (n + 1))
  in
  let t, log, ledger, stop = step tree [] [] 0 in
  (* every ambiguous arc of the final tree is a rejected candidate;
     judge each one where the heuristic stopped *)
  let tree_size = Tree.size t in
  let rejected =
    List.map
      (fun (c : Gain.candidate) ->
        let verdict =
          if c.gain <= 0.0 then Rejected_not_critical
          else
            match Transform.check_applicable t c.arc with
            | Error r -> Rejected_not_applicable r
            | Ok () -> (
                if c.gain < params.min_gain then Rejected_below_min_gain
                else
                  match stop with
                  | Budget_applications -> Rejected_max_applications
                  | Budget_expansion -> Rejected_max_expansion
                  | Apply_failed r -> Rejected_not_applicable r
                  | Exhausted ->
                      (* unreachable: an applicable candidate at or
                         above [min_gain] would have been applied *)
                      Rejected_below_min_gain)
        in
        decide c ~tree_size verdict)
      (Gain.candidates ?profile ~mem_latency ~func t)
  in
  (t, List.rev log, List.rev ledger @ rejected)

(** Apply the heuristic to every tree of the program. *)
let run ?profile ?checker ?(params = default_params) ~mem_latency
    (prog : Prog.t) : Prog.t * application list * decision list =
  let all = ref [] and ledger = ref [] in
  let prog' =
    Prog.map_trees
      (fun func tree ->
        let tree', log, ds =
          run_tree ?profile ?checker ~params ~mem_latency ~func tree
        in
        all := !all @ log;
        ledger := !ledger @ ds;
        tree')
      prog
  in
  (prog', !all, !ledger)

(** Applied ledger entries, in application order. *)
let applied_decisions (ledger : decision list) : decision list =
  List.filter (fun d -> d.verdict = Applied) ledger

(** Rejection-reason histogram of a ledger, sorted by reason name. *)
let rejection_histogram (ledger : decision list) : (string * int) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun d ->
      match d.verdict with
      | Applied -> ()
      | v ->
          let name = verdict_name v in
          Hashtbl.replace tbl name
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    ledger;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Tally applications by dependence kind: the row format of Table 6-3. *)
let count_by_kind (log : application list) : int * int * int =
  List.fold_left
    (fun (raw, war, waw) (a : application) ->
      match a.kind with
      | Memdep.Raw -> (raw + 1, war, waw)
      | Memdep.War -> (raw, war + 1, waw)
      | Memdep.Waw -> (raw, war, waw + 1))
    (0, 0, 0) log
