(** The [Gain()] estimator of the guidance heuristic (paper section 5.3).

    The predicted gain of removing an ambiguous arc is the drop in the
    tree's expected execution time on the infinite machine, where the
    expectation runs over the tree's exits weighted by profiled path
    probabilities (uniform when no profile is available, e.g. on the first
    compile). *)

module Ddg = Spd_analysis.Ddg
val arc_eq : Spd_ir.Memdep.t -> Spd_ir.Memdep.t -> bool

(** Expected traversal time of [tree] with the given arc filter.

    Matches the simulator's charge for a traversal taking exit [k]:
    [max(exit_k completion, committed store completions)].  The estimator
    conservatively assumes stores commit on every exit. *)
val expected_time :
  ?profile:Spd_sim.Profile.t ->
  mem_latency:int ->
  func:string -> ?without:Spd_ir.Memdep.t -> Spd_ir.Tree.t -> float

(** Predicted gain (in expected cycles per traversal) of removing [arc]. *)
val gain :
  ?profile:Spd_sim.Profile.t ->
  mem_latency:int -> func:string -> Spd_ir.Tree.t -> Spd_ir.Memdep.t -> float

(** One evaluated candidate: an ambiguous arc with the expected time
    of the tree with and without it, and the resulting predicted gain
    ([before -. after]). *)
type candidate = {
  arc : Spd_ir.Memdep.t;
  before : float;
  after : float;
  gain : float;
}

(** Every ambiguous arc of [tree], evaluated — the decision ledger's
    raw material.  The list is in [Tree.ambiguous_arcs] order (program
    order), which keeps everything derived from it deterministic. *)
val candidates :
  ?profile:Spd_sim.Profile.t ->
  mem_latency:int -> func:string -> Spd_ir.Tree.t -> candidate list

(** The ambiguous arcs on a critical path: those whose removal reduces the
    expected traversal time (the paper's [CriticalAlias]). *)
val critical_aliases :
  ?profile:Spd_sim.Profile.t ->
  mem_latency:int ->
  func:string -> Spd_ir.Tree.t -> (Spd_ir.Memdep.t * float) list
