(** The speculative disambiguation code transformation (paper section 4).

    For an ambiguous arc the transform emits an address compare [p],
    produces code for {b both} outcomes of the alias, guards each side's
    side effects with opposite polarities of [p], and merges escaping
    values with [Select].  Concretely:

    - {b RAW} (store [S] before load [L]): the arc is removed, freeing [L]
      to issue before [S].  The slice dependent on [L] is duplicated with
      [S]'s stored value forwarded in place of the loaded value; the
      duplicate commits when the addresses alias (and [S] committed), the
      original when they do not.  Cost [1 + n_L].
    - {b WAR} (load [L1] before store [S1]): a new load [L3] from [S1]'s
      address is inserted before [L1] and protected by a must-arc
      [L3 -> S1]; the slice dependent on [L1] is duplicated reading [L3].
      Removing the arc frees [S1] to issue before [L1].  Cost [2 + n_L].
    - {b WAW} (store [S1] before store [S2]): the arc is removed, freeing
      [S2] to issue first; [S1] is additionally guarded to not commit when
      the addresses alias (and [S2] committed).  Cost [1].

    The transformation never physically reorders instructions: the
    sequential order of the rewritten tree remains a correct execution,
    and because each side of the compare is correct for its own alias
    outcome, {i any} schedule respecting the remaining arcs is correct
    too.  This is exactly the guarded-execution property the paper relies
    on. *)

open Spd_ir

type not_applicable =
  | Arc_not_ambiguous
  | Intervening_reference
      (** another potentially-aliasing reference sits between the pair, so
          the forwarding compensation would be unsound *)
  | Address_unavailable
      (** an address (or guard) is not computed early enough to place the
          compare/compensation load *)

let pp_not_applicable ppf r =
  Fmt.string ppf
    (match r with
    | Arc_not_ambiguous -> "arc is not ambiguous"
    | Intervening_reference -> "intervening ambiguous reference"
    | Address_unavailable -> "address unavailable early enough")

(** Which guarded copies of the region the transformation produced, by
    instruction id: [alias_ids] are the operations that commit (or whose
    values are selected) when the references collide — the duplicated
    slice plus any compensation load — and [noalias_ids] are the original
    side effects re-guarded to commit only when they do not.  Lets the
    schedule viewer label each SpD op with its version. *)
type provenance = { alias_ids : int list; noalias_ids : int list }

(* ------------------------------------------------------------------ *)
(* Rewrite buffer *)

type buf = {
  tree : Tree.t;
  gen : Reg.Gen.t;
  mutable next_id : int;
  pre : Insn.t list array;  (** reversed; emitted before position k *)
  replace : Insn.t option array;
  post : Insn.t list array;  (** reversed; emitted after position k *)
  tail : Insn.t list ref;  (** reversed; emitted after all insns *)
  dropped : bool array;  (** positions whose instruction moved elsewhere *)
  mutable alias_ids : int list;  (** provenance: alias-version insn ids *)
  mutable noalias_ids : int list;  (** provenance: no-alias-version ids *)
}

let make_buf (tree : Tree.t) =
  let n = Array.length tree.insns in
  {
    tree;
    gen = Reg.Gen.above (Reg.Set.elements (Tree.all_regs tree));
    next_id = Tree.max_insn_id tree + 1;
    pre = Array.make n [];
    replace = Array.make n None;
    post = Array.make n [];
    tail = ref [];
    dropped = Array.make n false;
    alias_ids = [];
    noalias_ids = [];
  }

let provenance_of buf =
  {
    alias_ids = List.sort_uniq compare buf.alias_ids;
    noalias_ids = List.sort_uniq compare buf.noalias_ids;
  }

let fresh_id buf =
  let id = buf.next_id in
  buf.next_id <- id + 1;
  id

let mk_insn buf ?guard op srcs =
  let dst =
    if Opcode.has_dst op then Some (Reg.Gen.fresh buf.gen) else None
  in
  Insn.make ~id:(fresh_id buf) ?guard op ~dst ~srcs

let emit_before buf pos insn = buf.pre.(pos) <- insn :: buf.pre.(pos)
let emit_after buf pos insn = buf.post.(pos) <- insn :: buf.post.(pos)
let emit_tail buf insn = buf.tail := insn :: !(buf.tail)

let dst_exn (i : Insn.t) = Option.get i.dst

(** Move the pure instructions computing [regs] (from [from_pos] onwards)
    up to just before [to_pos].  Caller must have verified hoistability. *)
let hoist_pure buf ~regs ~from_pos ~to_pos =
  match Slice.hoistable_backward_slice buf.tree ~regs ~from_pos with
  | None -> invalid_arg "Transform.hoist_pure: slice not hoistable"
  | Some positions ->
      List.iter
        (fun pos ->
          buf.dropped.(pos) <- true;
          emit_before buf to_pos buf.tree.insns.(pos))
        positions

let finalize buf ~(arcs : Memdep.t list) ~(exits : Tree.exit array) : Tree.t =
  let insns =
    List.concat
      (List.concat
         (List.mapi
            (fun pos orig ->
              let body =
                if buf.dropped.(pos) then []
                else
                  [
                    (match buf.replace.(pos) with Some i -> i | None -> orig);
                  ]
              in
              [ List.rev buf.pre.(pos); body; List.rev buf.post.(pos) ])
            (Array.to_list buf.tree.insns))
      @ [ List.rev !(buf.tail) ])
  in
  { buf.tree with insns = Array.of_list insns; arcs; exits }

(* ------------------------------------------------------------------ *)
(* Helpers *)

(** Truth value of an existing guard as a register, materializing a [Not]
    when the polarity is negative.  [emit] places helper instructions. *)
let guard_value buf ~emit (g : Insn.guard) : Reg.t =
  if g.positive then g.greg
  else begin
    let i = mk_insn buf Opcode.Not [ g.greg ] in
    emit i;
    dst_exn i
  end

(** Conjoin an optional existing guard with predicate register [p] taken
    with [polarity]; returns the new guard. *)
let conj_guard buf ~emit (old_guard : Insn.guard option) ~(p : Reg.t)
    ~(polarity : bool) : Insn.guard option =
  match old_guard with
  | None -> Some { Insn.greg = p; positive = polarity }
  | Some g ->
      let gval = guard_value buf ~emit g in
      let pval =
        if polarity then p
        else begin
          let i = mk_insn buf Opcode.Not [ p ] in
          emit i;
          dst_exn i
        end
      in
      let i = mk_insn buf (Opcode.Ibin Opcode.And) [ gval; pval ] in
      emit i;
      Some { Insn.greg = dst_exn i; positive = true }

(** Predicate "this pair aliases": address equality, conjoined with the
    guard of [committing] when that store is itself conditional (the
    forwarded value only exists if the store commits). *)
let alias_predicate buf ~pos (committing : Insn.t option) addr_a addr_b :
    Reg.t =
  let eq = mk_insn buf (Opcode.Icmp Opcode.Eq) [ addr_a; addr_b ] in
  emit_before buf pos eq;
  match committing with
  | Some { Insn.guard = Some g; _ } ->
      let gval = guard_value buf ~emit:(emit_before buf pos) g in
      let i =
        mk_insn buf (Opcode.Ibin Opcode.And) [ gval; dst_exn eq ]
      in
      emit_before buf pos i;
      dst_exn i
  | _ -> dst_exn eq

(** Positions whose active arcs target [id] / leave [id]. *)
let active_arcs (tree : Tree.t) = List.filter Memdep.is_active tree.arcs

let pos_of tree id = Tree.insn_index tree id

(* ------------------------------------------------------------------ *)
(* Slice duplication (RAW and WAR share it) *)

(** Duplicate the forward slice of [root_reg], substituting [fwd_reg] for
    it.  Duplicated side effects are guarded with [p] positive; the
    original side effects in the slice get [p] negative conjoined in.
    Escaping values (used by exits) are merged with [Select p].

    Returns the set of new arcs mirroring the originals onto the
    duplicated memory operations, and the register substitution to apply
    to the exits. *)
let duplicate_slice buf ~(p : Reg.t) ~(root_reg : Reg.t) ~(fwd_reg : Reg.t) :
    Memdep.t list * Reg.t Reg.Map.t =
  let tree = buf.tree in
  let slice = Slice.forward_slice tree (Reg.Set.singleton root_reg) in
  let subst = ref (Reg.Map.singleton root_reg fwd_reg) in
  let lookup r = match Reg.Map.find_opt r !subst with Some r' -> r' | None -> r in
  let dup_id_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* duplicate, in program order, each slice member right after itself *)
  List.iter
    (fun pos ->
      let orig = tree.insns.(pos) in
      let guard =
        if Opcode.has_side_effect orig.op then begin
          (* duplicate commits on alias *)
          let dup_guard =
            conj_guard buf ~emit:(emit_after buf pos) orig.guard ~p
              ~polarity:true
          in
          (* original now commits only when no alias *)
          let orig_guard =
            conj_guard buf ~emit:(emit_before buf pos) orig.guard ~p
              ~polarity:false
          in
          buf.replace.(pos) <- Some { orig with guard = orig_guard };
          buf.noalias_ids <- orig.id :: buf.noalias_ids;
          dup_guard
        end
        else None
      in
      let srcs = List.map lookup orig.srcs in
      let dst =
        match orig.dst with
        | None -> None
        | Some _ -> Some (Reg.Gen.fresh buf.gen)
      in
      let dup = Insn.make ~id:(fresh_id buf) ?guard orig.op ~dst ~srcs in
      emit_after buf pos dup;
      buf.alias_ids <- dup.id :: buf.alias_ids;
      Hashtbl.replace dup_id_of orig.id dup.id;
      (match (orig.dst, dst) with
      | Some d, Some d' -> subst := Reg.Map.add d d' !subst
      | _ -> ()))
    slice;
  (* mirror active arcs onto the duplicated memory operations *)
  let mirrored =
    List.concat_map
      (fun (arc : Memdep.t) ->
        let s' = Hashtbl.find_opt dup_id_of arc.src in
        let d' = Hashtbl.find_opt dup_id_of arc.dst in
        match (s', d') with
        | None, None -> []
        | Some s', None -> [ { arc with src = s' } ]
        | None, Some d' -> [ { arc with dst = d' } ]
        | Some s', Some d' ->
            [
              { arc with src = s' };
              { arc with dst = d' };
              { arc with src = s'; dst = d' };
            ])
      (active_arcs tree)
  in
  (* merge escaping values *)
  let exit_used = Slice.exit_used_regs tree in
  let exit_subst = ref Reg.Map.empty in
  Reg.Map.iter
    (fun orig dup ->
      if Reg.Set.mem orig exit_used then begin
        let sel = mk_insn buf Opcode.Select [ p; dup; orig ] in
        emit_tail buf sel;
        exit_subst := Reg.Map.add orig (dst_exn sel) !exit_subst
      end)
    !subst;
  (mirrored, !exit_subst)

(* ------------------------------------------------------------------ *)
(* Applicability *)

(** No active arc into [dst_id] from a reference strictly between
    [lo_pos] and [hi_pos] (exclusive bounds). *)
let no_intervening_arc_into tree ~dst_id ~lo_pos ~hi_pos =
  List.for_all
    (fun (arc : Memdep.t) ->
      if arc.dst <> dst_id then true
      else
        let p = pos_of tree arc.src in
        p <= lo_pos || p >= hi_pos)
    (active_arcs tree)

(** No active arc out of [src_id] into a reference strictly between. *)
let no_intervening_arc_out_of tree ~src_id ~lo_pos ~hi_pos =
  List.for_all
    (fun (arc : Memdep.t) ->
      if arc.src <> src_id then true
      else
        let p = pos_of tree arc.dst in
        p <= lo_pos || p >= hi_pos)
    (active_arcs tree)

let max_def_pos tree regs =
  let defs = Slice.def_positions tree in
  List.fold_left
    (fun acc r ->
      match Reg.Map.find_opt r defs with Some p -> max acc p | None -> acc)
    (-1) regs

let guard_regs (i : Insn.t) =
  match i.guard with None -> [] | Some g -> [ g.greg ]

let check_applicable (tree : Tree.t) (arc : Memdep.t) :
    (unit, not_applicable) result =
  if not (Memdep.is_ambiguous arc) then Error Arc_not_ambiguous
  else
    let a = Tree.insn_by_id tree arc.src
    and b = Tree.insn_by_id tree arc.dst in
    let pa = pos_of tree arc.src and pb = pos_of tree arc.dst in
    match arc.kind with
    | Memdep.Raw ->
        (* all stores possibly aliasing the load must precede S, so that
           on alias the forwarded value is the one the load would read *)
        if not (no_intervening_arc_into tree ~dst_id:arc.dst ~lo_pos:pa ~hi_pos:pb)
        then Error Intervening_reference
        else Ok ()
    | Memdep.Waw ->
        (* no load may read S1's (possibly suppressed) value in between *)
        if not (no_intervening_arc_out_of tree ~src_id:arc.src ~lo_pos:pa ~hi_pos:pb)
        then Error Intervening_reference
        else if
          (* the compare and S1's new guard must be computable before S1;
             pure address computations can be hoisted there *)
          Slice.hoistable_backward_slice tree
            ~regs:([ Insn.addr a; Insn.addr b ] @ guard_regs a @ guard_regs b)
            ~from_pos:pa
          = None
        then Error Address_unavailable
        else Ok ()
    | Memdep.War ->
        (* the compensation load L3 reads S1's address at L1's position *)
        if
          Slice.hoistable_backward_slice tree ~regs:[ Insn.addr b ]
            ~from_pos:pa
          = None
        then Error Address_unavailable
        else if
          (* stores aliasing S1 between L1 and S1 would make L3 stale *)
          not
            (List.for_all
               (fun (other : Memdep.t) ->
                 if other.dst <> arc.dst || other.kind <> Memdep.Waw then true
                 else
                   let p = pos_of tree other.src in
                   p <= pa || p >= pb)
               (active_arcs tree))
        then Error Intervening_reference
        else Ok ()

let can_apply tree arc = Result.is_ok (check_applicable tree arc)

(* ------------------------------------------------------------------ *)
(* The three transformations *)

let remove_arc arcs (target : Memdep.t) =
  List.map
    (fun (a : Memdep.t) ->
      if a.src = target.src && a.dst = target.dst && a.kind = target.kind
      then { a with status = Memdep.Removed Memdep.By_spd }
      else a)
    arcs

let apply_raw (tree : Tree.t) (arc : Memdep.t) : Tree.t * Reg.t * provenance
    =
  let s = Tree.insn_by_id tree arc.src in
  let l = Tree.insn_by_id tree arc.dst in
  let l_pos = pos_of tree arc.dst in
  let buf = make_buf tree in
  let p =
    alias_predicate buf ~pos:l_pos (Some s) (Insn.addr s) (Insn.addr l)
  in
  let mirrored, exit_subst =
    duplicate_slice buf ~p ~root_reg:(dst_exn l) ~fwd_reg:(Insn.store_value s)
  in
  let arcs = remove_arc tree.arcs arc @ mirrored in
  let lookup r =
    match Reg.Map.find_opt r exit_subst with Some r' -> r' | None -> r
  in
  let exits = Array.map (Slice.subst_exit lookup) tree.exits in
  (finalize buf ~arcs ~exits, p, provenance_of buf)

let apply_waw (tree : Tree.t) (arc : Memdep.t) : Tree.t * Reg.t * provenance
    =
  let s1 = Tree.insn_by_id tree arc.src in
  let s2 = Tree.insn_by_id tree arc.dst in
  let s1_pos = pos_of tree arc.src in
  let buf = make_buf tree in
  hoist_pure buf
    ~regs:([ Insn.addr s1; Insn.addr s2 ] @ guard_regs s1 @ guard_regs s2)
    ~from_pos:s1_pos ~to_pos:s1_pos;
  let p =
    alias_predicate buf ~pos:s1_pos (Some s2) (Insn.addr s1) (Insn.addr s2)
  in
  let new_guard =
    conj_guard buf ~emit:(emit_before buf s1_pos) s1.guard ~p ~polarity:false
  in
  buf.replace.(s1_pos) <- Some { s1 with guard = new_guard };
  buf.noalias_ids <- s1.id :: buf.noalias_ids;
  let arcs = remove_arc tree.arcs arc in
  (finalize buf ~arcs ~exits:tree.exits, p, provenance_of buf)

let apply_war (tree : Tree.t) (arc : Memdep.t) : Tree.t * Reg.t * provenance
    =
  let l1 = Tree.insn_by_id tree arc.src in
  let s1 = Tree.insn_by_id tree arc.dst in
  let l1_pos = pos_of tree arc.src in
  let buf = make_buf tree in
  hoist_pure buf ~regs:[ Insn.addr s1 ] ~from_pos:l1_pos ~to_pos:l1_pos;
  (* compensation load from S1's address, at L1's point *)
  let l3 = mk_insn buf Opcode.Load [ Insn.addr s1 ] in
  emit_before buf l1_pos l3;
  (* L3's value is the one the alias version consumes *)
  buf.alias_ids <- l3.id :: buf.alias_ids;
  let p =
    alias_predicate buf ~pos:l1_pos None (Insn.addr l1) (Insn.addr s1)
  in
  let mirrored, exit_subst =
    duplicate_slice buf ~p ~root_reg:(dst_exn l1) ~fwd_reg:(dst_exn l3)
  in
  (* L3 must read before S1 may write, and inherits S1's alias
     relationships with other stores (paper section 4.4) *)
  let l3_arcs =
    {
      Memdep.src = l3.id;
      dst = s1.id;
      kind = Memdep.War;
      status = Memdep.Must;
      why = None;
    }
    :: List.filter_map
         (fun (other : Memdep.t) ->
           if other.dst = arc.dst && other.kind = Memdep.Waw then
             (* store X aliasing S1, before L3: X -> L3 is a RAW arc *)
             Some { other with dst = l3.id; kind = Memdep.Raw }
           else if other.src = arc.dst && other.kind = Memdep.Waw then
             (* store Y after S1 aliasing it: L3 must read before Y *)
             Some { other with src = l3.id; kind = Memdep.War }
           else None)
         (active_arcs tree)
  in
  let arcs = remove_arc tree.arcs arc @ mirrored @ l3_arcs in
  let lookup r =
    match Reg.Map.find_opt r exit_subst with Some r' -> r' | None -> r
  in
  let exits = Array.map (Slice.subst_exit lookup) tree.exits in
  (finalize buf ~arcs ~exits, p, provenance_of buf)

(** Apply SpD for [arc] in [tree].  Returns the transformed tree paired
    with the register holding the alias predicate [p] — the address
    compare that selects, at run time, between the alias version
    (commits when [p] is true) and the no-alias version — and the
    version provenance of the rewritten operations, or the reason the
    transformation is not applicable.  The predicate register lets the
    simulator attribute each traversal to one of the two versions
    ({!Spd_sim.Profile.Spd}); the provenance lets the schedule viewer
    label each guarded op. *)
let apply_traced (tree : Tree.t) (arc : Memdep.t) :
    (Tree.t * Reg.t * provenance, not_applicable) result =
  match check_applicable tree arc with
  | Error e -> Error e
  | Ok () ->
      let tree', predicate, prov =
        match arc.kind with
        | Memdep.Raw -> apply_raw tree arc
        | Memdep.War -> apply_war tree arc
        | Memdep.Waw -> apply_waw tree arc
      in
      Tree.validate tree';
      Ok (tree', predicate, prov)

(** [apply_traced] without the predicate register or provenance. *)
let apply (tree : Tree.t) (arc : Memdep.t) : (Tree.t, not_applicable) result =
  Result.map (fun (t, _, _) -> t) (apply_traced tree arc)

(** Paper cost model: operations added by applying SpD to [arc]
    (1 + n_L for RAW, 2 + n_L for WAR, 1 for WAW). *)
let estimated_cost (tree : Tree.t) (arc : Memdep.t) : int =
  match arc.kind with
  | Memdep.Waw -> 1
  | Memdep.Raw ->
      let l = Tree.insn_by_id tree arc.dst in
      1
      + List.length
          (Slice.forward_slice tree (Reg.Set.singleton (dst_exn l)))
  | Memdep.War ->
      let l1 = Tree.insn_by_id tree arc.src in
      2
      + List.length
          (Slice.forward_slice tree (Reg.Set.singleton (dst_exn l1)))
