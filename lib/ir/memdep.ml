(** Memory dependence arcs between instructions of one decision tree.

    An arc connects two memory operations in program order (at least one of
    which is a store).  Its [status] records what the tool chain currently
    knows about it:

    - [Must]: the two references certainly hit the same address whenever
      both execute; the arc can never be removed.
    - [Ambiguous p]: possibility of aliasing; [p] is an estimated alias
      probability when one is available (profiling or counting integer
      solutions of the subscript equation).
    - [Removed why]: the scheduler may ignore the arc.  [why] records which
      disambiguator removed it, which the harness reports. *)

type kind = Raw | War | Waw

type removal = By_static | By_perfect | By_spd

type status =
  | Must
  | Ambiguous of float option
  | Removed of removal

type ambiguity = Opaque_base | Banerjee_inconclusive | Solution_counted

type t = {
  src : int;  (** instruction id of the earlier reference *)
  dst : int;  (** instruction id of the later reference *)
  kind : kind;
  status : status;
  why : ambiguity option;
      (** for [Ambiguous] arcs that survived static disambiguation: which
          test left the pair ambiguous *)
}

let kind_of_ops ~(src_is_store : bool) ~(dst_is_store : bool) =
  match (src_is_store, dst_is_store) with
  | true, false -> Raw
  | false, true -> War
  | true, true -> Waw
  | false, false -> invalid_arg "Memdep.kind_of_ops: load-load pair"

let is_active a = match a.status with Removed _ -> false | _ -> true
let is_ambiguous a =
  match a.status with Ambiguous _ -> true | Must | Removed _ -> false

(** Scheduling weight of an arc, in cycles.

    A RAW arc forces the load to start only after the store has completed
    (the paper's Fig. 4-4 gains exactly [store + load] latency by
    forwarding).  WAR and WAW arcs only constrain issue order. *)
let weight ~mem_latency a =
  match a.kind with Raw -> mem_latency | War | Waw -> 1

let pp_kind ppf k =
  Fmt.string ppf (match k with Raw -> "RAW" | War -> "WAR" | Waw -> "WAW")

let pp_removal ppf = function
  | By_static -> Fmt.string ppf "static"
  | By_perfect -> Fmt.string ppf "perfect"
  | By_spd -> Fmt.string ppf "spd"

(** Stable machine-readable name, used by the decision-ledger schema. *)
let ambiguity_name = function
  | Opaque_base -> "opaque-base"
  | Banerjee_inconclusive -> "banerjee-inconclusive"
  | Solution_counted -> "solution-counted"

let pp_ambiguity ppf a = Fmt.string ppf (ambiguity_name a)

let pp_status ppf = function
  | Must -> Fmt.string ppf "must"
  | Ambiguous None -> Fmt.string ppf "ambig"
  | Ambiguous (Some p) -> Fmt.pf ppf "ambig(p=%.3f)" p
  | Removed r -> Fmt.pf ppf "removed(%a)" pp_removal r

let pp ppf a =
  Fmt.pf ppf "%a #%d -> #%d %a" pp_kind a.kind a.src a.dst pp_status a.status
