(** Memory dependence arcs between instructions of one decision tree.

    An arc connects two memory operations in program order (at least one of
    which is a store).  Its [status] records what the tool chain currently
    knows about it:

    - [Must]: the two references certainly hit the same address whenever
      both execute; the arc can never be removed.
    - [Ambiguous p]: possibility of aliasing; [p] is an estimated alias
      probability when one is available (profiling or counting integer
      solutions of the subscript equation).
    - [Removed why]: the scheduler may ignore the arc.  [why] records which
      disambiguator removed it, which the harness reports. *)

type kind = Raw | War | Waw
type removal = By_static | By_perfect | By_spd
type status = Must | Ambiguous of float option | Removed of removal

(** Why static disambiguation left an arc [Ambiguous]: the references
    have statically incomparable bases ([Opaque_base]); they share a
    base but the Banerjee bounds could not prove independence and no
    probability could be counted ([Banerjee_inconclusive]); or the
    alias probability was estimated by counting integer solutions of
    the subscript equation ([Solution_counted]). *)
type ambiguity = Opaque_base | Banerjee_inconclusive | Solution_counted

type t = {
  src : int;
  dst : int;
  kind : kind;
  status : status;
  why : ambiguity option;
}
val kind_of_ops : src_is_store:bool -> dst_is_store:bool -> kind
val is_active : t -> bool
val is_ambiguous : t -> bool

(** Scheduling weight of an arc, in cycles.

    A RAW arc forces the load to start only after the store has completed
    (the paper's Fig. 4-4 gains exactly [store + load] latency by
    forwarding).  WAR and WAW arcs only constrain issue order. *)
val weight : mem_latency:int -> t -> int
val pp_kind : Format.formatter -> kind -> unit
val pp_removal : Format.formatter -> removal -> unit

(** Stable machine-readable name of an ambiguity reason
    (["opaque-base"], ["banerjee-inconclusive"], ["solution-counted"]),
    used by the [spd-decisions/1] schema. *)
val ambiguity_name : ambiguity -> string

val pp_ambiguity : Format.formatter -> ambiguity -> unit
val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> t -> unit
