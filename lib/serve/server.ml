(** The [spd serve] daemon (see the .mli).

    Concurrency model: one acceptor domain multiplexes the listening
    socket; accepted connections go through admission control into a
    bounded queue drained by [workers] supervised OCaml 5 domains.
    Each worker serves its connection to completion (requests on one
    connection are sequential, as JSON-RPC over a stream implies) and
    loops.  All artefact work funnels into the one shared
    {!Engine.Session}, whose promise-table memoization is what
    deduplicates concurrent identical requests across connections and
    domains.

    Crash-only discipline: every way a client can misbehave has a
    bounded, recoverable cost.  A peer that stalls mid-frame is
    evicted when its per-frame deadline expires; a header flood or
    oversized frame is a framing error answered once and dropped; a
    worker that dies on an unexpected exception is logged, counted and
    respawned by its own supervision loop, so the serving crew never
    shrinks; a full pending queue refuses new connections with a
    structured [server busy] error carrying a [retry_after_ms] hint
    instead of letting latency grow without bound.

    Shutdown is a drain, not a kill: [stop] (idempotent — signal
    handler, CLI, or the [shutdown] method) flips the state to
    [Draining] and writes the wake pipe; new requests other than
    [health]/[ping] are refused with [server shutting down] while
    in-flight requests finish under the drain deadline; then [wait]
    broadcasts on the "dead" pipe — written once, never drained, so
    every [select] in the process wakes — joins the domains and
    removes the socket. *)

module W = Spd_workloads
module Json = Spd_telemetry.Json
module Metrics = Spd_telemetry.Metrics
module Trace = Spd_telemetry.Trace
module Log = Spd_telemetry.Log
module Clock = Spd_telemetry.Clock
module Context = Spd_telemetry.Context
module Engine = Spd_harness.Engine
module Query = Spd_harness.Engine.Query
module Pipeline = Spd_harness.Pipeline
module Artefact = Spd_harness.Artefact
module Explain = Spd_harness.Explain
module Why = Spd_harness.Why
module Validation = Spd_harness.Validation
module Microbench = Spd_harness.Microbench
module Faults = Spd_harness.Faults

let version = "1.1"

let methods =
  [
    "ping"; "health"; "query"; "report"; "explain"; "why"; "validate";
    "micro"; "run"; "metrics"; "metrics_prom"; "stats"; "shutdown";
  ]

let m_requests = lazy (Metrics.counter "spd.serve.requests")
let m_errors = lazy (Metrics.counter "spd.serve.errors")
let m_conn_timeout = lazy (Metrics.counter "spd.serve.conn.timeout")
let m_worker_restart = lazy (Metrics.counter "spd.serve.worker.restart")
let m_rejected = lazy (Metrics.counter "spd.serve.admission.rejected")

let m_request_seconds =
  lazy
    (Metrics.histogram ~buckets:Metrics.time_buckets
       "spd.serve.request_seconds")

(* Per-method latency histograms, one per known method plus "other"
   for garbage method names — a fixed set, so a client inventing
   method names cannot grow the registry without bound. *)
let m_rpc_latency =
  lazy
    (List.map
       (fun m ->
         ( m,
           Metrics.histogram ~buckets:Metrics.time_buckets
             ("spd.serve.rpc.latency." ^ m) ))
       ("other" :: methods))

let rpc_latency meth =
  let hists = Lazy.force m_rpc_latency in
  match List.assoc_opt meth hists with
  | Some h -> h
  | None -> List.assoc "other" hists

(* Request ids: unique for a daemon's lifetime, prefixed with the pid
   so ids stay distinguishable when several daemons' logs are
   aggregated. *)
let rid_seq = Atomic.make 0

let fresh_rid () =
  Printf.sprintf "r%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add rid_seq 1)

(* backoff hint carried in the [server busy] error's data *)
let retry_after_ms = 100

type state = Running | Draining | Stopped

type t = {
  addr : Protocol.addr;
  listen_fd : Unix.file_descr;
  session : Engine.Session.t;
  run_fuel : int option;  (* cap on inline-run fuel requests *)
  run_deadline : float option;
  conn_timeout : float;  (* per-frame read + per-write deadline *)
  drain_deadline : float;  (* grace for in-flight requests on stop *)
  slow_ms : float option;  (* slow-request log threshold, milliseconds *)
  max_pending : int;  (* admission: queue slots beyond the workers *)
  faults : Faults.t;
  state : state Atomic.t;
  served : int Atomic.t;
  in_flight : int Atomic.t;  (* requests between decode and response *)
  active_conns : int Atomic.t;  (* connections claimed by a worker *)
  alive : int Atomic.t;  (* worker domains inside their supervisor *)
  restarts : int Atomic.t;
  timeouts : int Atomic.t;
  rejected : int Atomic.t;
  started_at : float;  (* monotonic (Clock.now), so uptime never jumps *)
  queue : Unix.file_descr Queue.t;  (* accepted, not yet claimed *)
  qmu : Mutex.t;
  qcond : Condition.t;
  (* [stop] -> [wait] handshake; written (one byte) at most once *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* final-shutdown broadcast: written once, never drained, so every
     select in the process stays woken *)
  dead_r : Unix.file_descr;
  dead_w : Unix.file_descr;
  nworkers : int;
  mutable acceptor : unit Domain.t option;
  mutable workers : unit Domain.t list;
  mutable torn_down : bool;  (* [wait] teardown already ran *)
}

(* ------------------------------------------------------------------ *)
(* Request parameter decoding.  [Bad_params] maps to JSON-RPC error
   -32602 (invalid params); compile/simulate exceptions map to -32000
   (server error). *)

exception Bad_params of string
exception Unknown_method of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_params s)) fmt

let obj_params = function
  | None | Some Json.Null -> Json.Obj []
  | Some (Json.Obj _ as o) -> o
  | Some _ -> raise (Bad_params "\"params\" must be an object")

let opt_string name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some (Json.String s) -> Some s
  | Some _ -> bad "%S must be a string" name

let req_string name p =
  match opt_string name p with
  | Some s -> s
  | None -> bad "missing required parameter %S" name

(* positive integer, with the same hint wording as the CLIs' --fuel /
   --jobs flags (Cliflags) *)
let opt_pos_int name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some j -> (
      match Json.to_number j with
      | Some v when Float.is_integer v && v >= 1.0 ->
          Some (int_of_float v)
      | Some v -> bad "%S expects a positive integer, got %g" name v
      | None -> bad "%S expects a positive integer" name)

let opt_nat name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some j -> (
      match Json.to_number j with
      | Some v when Float.is_integer v && v >= 0.0 ->
          Some (int_of_float v)
      | _ -> bad "%S expects a non-negative integer" name)

let opt_pos_float name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some j -> (
      match Json.to_number j with
      | Some v when v > 0.0 -> Some v
      | Some v ->
          bad "%S expects a positive number of seconds, got %g" name v
      | None -> bad "%S expects a positive number of seconds" name)

let opt_string_list name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some (Json.List l) ->
      Some
        (List.map
           (fun j ->
             match Json.to_string_opt j with
             | Some s -> s
             | None -> bad "%S must be a list of strings" name)
           l)
  | Some _ -> bad "%S must be a list of strings" name

let workload_names () =
  W.Registry.names
  @ List.map (fun (w : W.Workload.t) -> w.name) W.Registry.extras

let require_workload name =
  if not (List.mem name (workload_names ())) then
    bad "unknown workload %S (one of: %s)" name
      (String.concat ", " (workload_names ()))

let pipeline_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Pipeline.Naive
  | "static" -> Pipeline.Static
  | "spec" -> Pipeline.Spec
  | "perfect" -> Pipeline.Perfect
  | _ -> bad "unknown pipeline %S (one of: naive, static, spec, perfect)" s

(* machine width: a positive integer number of FUs, or "inf" *)
let opt_width p =
  match Json.member "width" p with
  | None | Some Json.Null -> None
  | Some (Json.String "inf") -> Some Spd_machine.Descr.Infinite
  | Some j -> (
      match Json.to_number j with
      | Some v when Float.is_integer v && v >= 1.0 ->
          Some (Spd_machine.Descr.Fus (int_of_float v))
      | _ -> bad "\"width\" expects a positive integer or \"inf\"")

let opt_min_int a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let opt_min_float a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.min a b)

(* ------------------------------------------------------------------ *)
(* Building engine queries from request parameters *)

let query_of_params p =
  let bench = req_string "bench" p in
  require_workload bench;
  let latency = Option.value ~default:2 (opt_pos_int "latency" p) in
  let fuel = opt_pos_int "fuel" p in
  let deadline = opt_pos_float "deadline" p in
  let kind_for art =
    match opt_string "pipeline" p with
    | Some s -> pipeline_of_string s
    | None -> bad "artefact %S needs a \"pipeline\"" art
  in
  let width_for art =
    match opt_width p with
    | Some w -> w
    | None -> bad "artefact %S needs a \"width\"" art
  in
  let artefact =
    match req_string "artefact" p with
    | "cycles" ->
        Query.Cycles { kind = kind_for "cycles"; width = width_for "cycles" }
    | "code-size" -> Query.Code_size (kind_for "code-size")
    | "spd-counts" -> Query.Spd_counts
    | "spd-dynamics" -> Query.Spd_dynamics
    | "spd-decisions" -> Query.Spd_decisions
    | "spd-validate" -> Query.Spd_verdicts
    | "speedup-over-naive" ->
        Query.Speedup_over_naive
          {
            kind = kind_for "speedup-over-naive";
            width = width_for "speedup-over-naive";
          }
    | "spec-over-static" ->
        Query.Spec_over_static { width = width_for "spec-over-static" }
    | "code-growth" -> Query.Code_growth
    | s ->
        bad "unknown artefact %S (one of: %s)" s
          (String.concat ", " Query.artefact_names)
  in
  Query.v ?fuel ?deadline ~bench ~latency artefact

let dynamics_json (d : Pipeline.dynamics) =
  Json.Obj
    [
      ( "regions",
        Json.List
          (List.map
             (fun (r : Pipeline.region_dynamics) ->
               Json.Obj
                 [
                   ("func", Json.String r.func);
                   ("tree", Json.Int r.tree_id);
                   ( "kind",
                     Json.String
                       (Fmt.str "%a" Spd_ir.Memdep.pp_kind r.dep_kind) );
                   ( "arc",
                     Json.List [ Json.Int (fst r.arc); Json.Int (snd r.arc) ]
                   );
                   ("alias_commits", Json.Int r.alias_commits);
                   ("noalias_commits", Json.Int r.noalias_commits);
                 ])
             d.regions) );
      ("squashed", Json.Int d.squashed);
    ]

let value_json : Engine.value -> Json.t = function
  | Engine.Int n -> Json.Int n
  | Engine.Float x -> Json.Float x
  | Engine.Counts (raw, war, waw) ->
      Json.Obj
        [ ("raw", Json.Int raw); ("war", Json.Int war); ("waw", Json.Int waw) ]
  | Engine.Dynamics d -> dynamics_json d
  | Engine.Decisions ds ->
      (* ledger entries with their tree coordinates inlined; the [why]
         method serves the same entries grouped per tree *)
      Json.List
        (List.map
           (fun (d : Spd_core.Heuristic.decision) ->
             match Why.decision_json d with
             | Json.Obj fields ->
                 Json.Obj
                   (("func", Json.String d.func)
                   :: ("tree", Json.Int d.tree_id)
                   :: fields)
             | j -> j)
           ds)
  | Engine.Verdicts rs ->
      (* ledger entries with their tree coordinates inlined; the
         [validate] method serves the same entries inside the
         spd-validate/1 document *)
      Json.List
        (List.map
           (fun (r : Spd_validate.Validate.report) ->
             match Validation.report_json r with
             | Json.Obj fields ->
                 Json.Obj
                   (("func", Json.String r.Spd_validate.Validate.func)
                   :: ("tree", Json.Int r.Spd_validate.Validate.tree_id)
                   :: fields)
             | j -> j)
           rs)

(* ------------------------------------------------------------------ *)
(* Method dispatch.  Every result is either one of the repository's
   existing schema documents (spd-report/1, spd-explain/1, spd-micro/1,
   spd-metrics/1) or an spd-serve/1 object tagged with its "kind". *)

let serve_doc kind fields =
  Json.Obj
    (("schema", Json.String Protocol.schema)
    :: ("kind", Json.String kind)
    :: fields)

let pending_conns t =
  Mutex.lock t.qmu;
  let n = Queue.length t.queue in
  Mutex.unlock t.qmu;
  n

let health_doc t =
  serve_doc "health"
    [
      (* monotonic difference: survives wall-clock adjustments *)
      ("uptime_seconds", Json.Float (Clock.now () -. t.started_at));
      ("workers", Json.Int t.nworkers);
      ("workers_alive", Json.Int (Atomic.get t.alive));
      ("worker_restarts", Json.Int (Atomic.get t.restarts));
      ("in_flight", Json.Int (Atomic.get t.in_flight));
      ("active_connections", Json.Int (Atomic.get t.active_conns));
      ("pending_connections", Json.Int (pending_conns t));
      ("conn_timeouts", Json.Int (Atomic.get t.timeouts));
      ("admission_rejected", Json.Int (Atomic.get t.rejected));
      ("log_records", Json.Int (Log.records ()));
      ("log_dropped", Json.Int (Log.dropped ()));
      ("draining", Json.Bool (Atomic.get t.state <> Running));
      ("served", Json.Int (Atomic.get t.served));
    ]

let dispatch t meth params : Json.t =
  let p = obj_params params in
  match meth with
  | "ping" ->
      serve_doc "ping"
        [
          ("server", Json.String "spd-serve");
          ("version", Json.String version);
          ("methods", Json.List (List.map (fun m -> Json.String m) methods));
          ( "workloads",
            Json.List
              (List.map (fun w -> Json.String w) (workload_names ())) );
          ( "artefacts",
            Json.List
              (List.map (fun a -> Json.String a) Query.artefact_names) );
        ]
  | "health" -> health_doc t
  | "query" -> (
      let q = query_of_params p in
      let base = [ ("key", Json.String (Query.key q)) ] in
      match Engine.Session.submit t.session q with
      | Engine.Ok v ->
          serve_doc "query"
            (base @ [ ("ok", Json.Bool true); ("value", value_json v) ])
      | Engine.Failed f ->
          (* a failed cell is a successful RPC: the renderers' n/a,
             machine-readable *)
          serve_doc "query"
            (base
            @ [
                ("ok", Json.Bool false);
                ("error", Json.String (Printexc.to_string f.Engine.exn));
                ("attempts", Json.Int f.Engine.attempts);
              ]))
  | "report" ->
      let names =
        match Json.member "artefacts" p with
        | None | Some Json.Null -> Artefact.paper_set
        | Some (Json.List l) ->
            List.map
              (fun j ->
                match Json.to_string_opt j with
                | Some s -> s
                | None -> bad "\"artefacts\" must be a list of names")
              l
        | Some _ -> bad "\"artefacts\" must be a list of names"
      in
      let arts =
        List.map
          (fun n ->
            match Artefact.find n with
            | Some a -> a
            | None ->
                bad "unknown artefact %S (one of: %s)" n
                  (String.concat ", " (Artefact.names ())))
          names
      in
      Artefact.to_json ~session:t.session arts
  | "explain" ->
      let workload = req_string "workload" p in
      require_workload workload;
      let width = Option.value ~default:5 (opt_pos_int "width" p) in
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let fn = opt_string "fn" p in
      let tree = opt_nat "tree" p in
      let e = Explain.analyze ~width ~mem_latency workload in
      if Explain.selected ?fn ?tree e = [] then
        bad "no tree of %S matches the fn/tree filter" workload;
      Explain.to_json ?fn ?tree e
  | "why" ->
      let workload = req_string "workload" p in
      require_workload workload;
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let fn = opt_string "fn" p in
      let tree = opt_nat "tree" p in
      let w = Why.analyze ~mem_latency t.session workload in
      (* an empty ledger is a valid answer; only a filter that matches
         nothing is a caller error *)
      if (fn <> None || tree <> None) && Why.selected ?fn ?tree w = [] then
        bad "no ledger entry of %S matches the fn/tree filter" workload;
      Why.to_json ?fn ?tree w
  | "validate" ->
      let workload = req_string "workload" p in
      require_workload workload;
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let fn = opt_string "fn" p in
      let tree = opt_nat "tree" p in
      let v = Validation.analyze ~mem_latency t.session workload in
      (* an empty ledger (no SpD application) is a valid answer; only a
         filter that matches nothing is a caller error *)
      if
        (fn <> None || tree <> None)
        && Validation.selected ?fn ?tree v = []
      then bad "no validation entry of %S matches the fn/tree filter" workload;
      Validation.to_json ?fn ?tree v
  | "micro" ->
      let workloads = opt_string_list "workloads" p in
      Option.iter (List.iter require_workload) workloads;
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let width = Option.value ~default:5 (opt_pos_int "width" p) in
      let min_time =
        Option.value ~default:0.02 (opt_pos_float "min_time" p)
      in
      if min_time > 5.0 then
        bad "\"min_time\" is capped at 5 seconds on a shared daemon";
      Microbench.to_json
        (Microbench.run ~mem_latency ~width ~min_time ?workloads ())
  | "run" ->
      let source = req_string "source" p in
      let kind =
        match opt_string "pipeline" p with
        | None -> Pipeline.Spec
        | Some s -> pipeline_of_string s
      in
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let width =
        Option.value ~default:(Spd_machine.Descr.Fus 5) (opt_width p)
      in
      (* inline source bypasses the session's grid cells, so the
         daemon's own caps bound these budgets instead *)
      let fuel = opt_min_int t.run_fuel (opt_pos_int "fuel" p) in
      let deadline =
        opt_min_float t.run_deadline (opt_pos_float "deadline" p)
      in
      let prog = Spd_lang.Lower.compile source in
      let config = Pipeline.Config.v ?fuel ?deadline ~mem_latency () in
      let prepared = Pipeline.prepare ~config kind prog in
      let descr = { Spd_machine.Descr.width; mem_latency } in
      let timing = Spd_machine.Timing_builder.program descr prepared.prog in
      let r : Spd_sim.Interp.result =
        Spd_sim.Interp.run ~timing ?fuel ?deadline prepared.prog
      in
      serve_doc "run"
        [
          ("pipeline", Json.String (Pipeline.name kind));
          ("machine", Json.String (Fmt.str "%a" Spd_machine.Descr.pp descr));
          ("cycles", Json.Int r.cycles);
          ("traversals", Json.Int r.traversals);
          ("return", Json.String (Fmt.str "%a" Spd_ir.Value.pp r.ret));
          ( "output",
            Json.List
              (List.map
                 (fun v -> Json.String (Fmt.str "%a" Spd_ir.Value.pp v))
                 r.output) );
          ("code_size", Json.Int (Pipeline.code_size prepared));
          ("applications", Json.Int (List.length prepared.applications));
        ]
  | "metrics" -> Metrics.snapshot_json (Metrics.snapshot ())
  | "metrics_prom" ->
      (* the Prometheus text exposition, wrapped in a JSON envelope the
         same way every other method answers; `spd call metrics
         --format prometheus` unwraps the "text" member *)
      serve_doc "metrics_prom"
        [
          ("content_type", Json.String "text/plain; version=0.0.4");
          ("text", Json.String (Metrics.prometheus (Metrics.snapshot ())));
        ]
  | "stats" ->
      let st = Engine.Session.stats t.session in
      serve_doc "stats"
        [
          ("jobs", Json.Int st.Engine.Stats.jobs);
          ( "counters",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Int v))
                 (Engine.Stats.to_alist st)) );
          ( "stage_seconds",
            Json.Obj
              (List.map
                 (fun (stage, secs) ->
                   (Pipeline.stage_name stage, Json.Float secs))
                 st.Engine.Stats.stage_seconds) );
          ( "failures",
            Json.List
              (List.map
                 (fun (f : Engine.failure) -> Json.String f.Engine.key)
                 (Engine.Session.failures t.session)) );
          ("served", Json.Int (Atomic.get t.served));
        ]
  | "shutdown" -> serve_doc "shutdown" [ ("stopping", Json.Bool true) ]
  | m -> raise (Unknown_method m)

(* the compile/simulate exceptions a [run] request can surface; wording
   matches the spd CLI's handle_errors *)
let app_error_message = function
  | Spd_lang.Lexer.Error (msg, line) ->
      Some (Printf.sprintf "lexical error, line %d: %s" line msg)
  | Spd_lang.Parser.Error (msg, line) ->
      Some (Printf.sprintf "syntax error, line %d: %s" line msg)
  | Spd_lang.Typecheck.Error msg -> Some ("type error: " ^ msg)
  | Spd_lang.Lower.Error msg -> Some ("lowering error: " ^ msg)
  | Spd_sim.Interp.Sim_error (k, ctx) ->
      Some (Fmt.str "runtime error: %a" Spd_sim.Interp.pp_error (k, ctx))
  | _ -> None

(* cumulative per-stage wall clock of the shared session; two
   snapshots bracket a request for the slow-request breakdown *)
let stage_totals t =
  (Engine.Session.stats t.session).Engine.Stats.stage_seconds

let stage_delta before after =
  List.filter_map
    (fun (stage, secs) ->
      let b =
        match List.assoc_opt stage before with Some x -> x | None -> 0.0
      in
      let d = secs -. b in
      if d > 1e-9 then Some (Pipeline.stage_name stage, Json.Float d)
      else None)
    after

(* Every request runs under its freshly assigned rid as the ambient
   Context, so the rpc trace span, the engine's cell/stage spans and
   every log record emitted on this domain carry it — and the response
   envelope echoes it back to the client. *)
let respond t ~id req : Json.t * bool =
  let rid = fresh_rid () in
  Context.with_id rid @@ fun () ->
  match Option.bind (Json.member "method" req) Json.to_string_opt with
  | None ->
      Metrics.incr (Lazy.force m_errors);
      Log.warn "rpc.invalid" [];
      ( Protocol.response_error ~rid ~id ~code:Protocol.invalid_request
          "request has no \"method\" member",
        false )
  | Some meth ->
      Metrics.incr (Lazy.force m_requests);
      let t0 = Clock.now () in
      let stages0 =
        match t.slow_ms with None -> [] | Some _ -> stage_totals t
      in
      let err code msg =
        Metrics.incr (Lazy.force m_errors);
        Protocol.response_error ~rid ~id ~code msg
      in
      let params = Json.member "params" req in
      let resp =
        match
          Trace.with_span ~name:("rpc:" ^ meth) (fun () ->
              dispatch t meth params)
        with
        | result -> Protocol.response_ok ~rid ~id result
        | exception Bad_params msg -> err Protocol.invalid_params msg
        | exception Unknown_method m ->
            err Protocol.method_not_found
              (Printf.sprintf "unknown method %S (one of: %s)" m
                 (String.concat ", " methods))
        | exception Invalid_argument msg -> err Protocol.invalid_params msg
        | exception e -> (
            match app_error_message e with
            | Some msg -> err Protocol.server_error msg
            | None -> err Protocol.server_error (Printexc.to_string e))
      in
      let dt = Clock.now () -. t0 in
      Metrics.observe (Lazy.force m_request_seconds) dt;
      Metrics.observe (rpc_latency meth) dt;
      let ok = Json.member "result" resp <> None in
      Log.info "rpc"
        [
          ("method", Json.String meth);
          ("ok", Json.Bool ok);
          ("ms", Json.Float (dt *. 1000.0));
        ];
      (match t.slow_ms with
      | Some slow when dt *. 1000.0 >= slow ->
          (* stage deltas are session-wide, so under concurrency they
             include work other requests did in the window — an
             attribution hint, not an exact profile *)
          Log.warn "rpc.slow"
            [
              ("method", Json.String meth);
              ("ms", Json.Float (dt *. 1000.0));
              ("threshold_ms", Json.Float slow);
              ("stages", Json.Obj (stage_delta stages0 (stage_totals t)));
            ]
      | _ -> ());
      (resp, meth = "shutdown" && ok)

(* ------------------------------------------------------------------ *)
(* Connection supervision *)

(* the process is going down hard: the dead pipe became readable while
   this connection was waiting for bytes *)
exception Conn_shutdown

let initiate_stop t =
  (* idempotent and safe inside a signal handler: one CAS, one
     nonblocking write *)
  if Atomic.compare_and_set t.state Running Draining then
    try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1)
    with Unix.Unix_error _ -> ()

(* A deadline-enforcing byte source over the connection.  The deadline
   is per frame, not per read: it is reset after each completed
   request, so a legitimate slow consumer stays connected while a
   slow-loris that dribbles bytes forever is still evicted. *)
let conn_reader t fd =
  let deadline = ref (Clock.now () +. t.conn_timeout) in
  let fill buf off len =
    let rec wait () =
      let remaining = !deadline -. Clock.now () in
      if remaining <= 0.0 then raise Protocol.Timeout;
      match Unix.select [ fd; t.dead_r ] [] [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      | [], _, _ -> raise Protocol.Timeout
      | ready, _, _ ->
          if List.mem t.dead_r ready then raise Conn_shutdown
          else Unix.read fd buf off len
    in
    wait ()
  in
  (Protocol.reader fill, deadline)

(* Probes and metrics scrapes still answer during a drain: they are
   cheap, read-only, and exactly what an operator watches while the
   daemon goes down. *)
let is_probe = function
  | Some ("ping" | "health" | "metrics" | "metrics_prom") -> true
  | _ -> false

let handle_conn t fd =
  (* writes are bounded too: a peer that stops reading surfaces as
     Sys_blocked_io through the channel, not a pinned worker *)
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.conn_timeout
   with Unix.Unix_error _ -> ());
  let oc = Unix.out_channel_of_descr fd in
  let r, deadline = conn_reader t fd in
  let finished = ref false in
  let write_resp resp =
    try
      Protocol.write_frame oc resp;
      true
    with Sys_error _ | Sys_blocked_io -> false
  in
  (try
     while not !finished do
       match Protocol.read_frame_r r with
       | Ok None -> finished := true
       | Error e ->
           (* unframeable input: answer once, then drop the peer *)
           let rid = fresh_rid () in
           Log.warn "conn.parse_error"
             [ ("rid", Json.String rid); ("error", Json.String e) ];
           ignore
             (write_resp
                (Protocol.response_error ~rid ~id:Json.Null
                   ~code:Protocol.parse_error e));
           finished := true
       | Ok (Some req) ->
           let id =
             Option.value ~default:Json.Null (Json.member "id" req)
           in
           let draining = Atomic.get t.state <> Running in
           let meth =
             Option.bind (Json.member "method" req) Json.to_string_opt
           in
           if draining && not (is_probe meth) then begin
             (* readiness probes still answer during the drain; real
                work is refused so clients fail over promptly *)
             let rid = fresh_rid () in
             Log.info "rpc.refused"
               [
                 ("rid", Json.String rid);
                 ("reason", Json.String "draining");
               ];
             ignore
               (write_resp
                  (Protocol.response_error ~rid ~id
                     ~code:Protocol.server_shutting_down
                     "server shutting down"));
             finished := true
           end
           else begin
             Atomic.incr t.in_flight;
             (* in_flight covers the response write as well, so the
                drain waits for answers to reach the wire *)
             let quit =
               Fun.protect
                 ~finally:(fun () -> Atomic.decr t.in_flight)
                 (fun () ->
                   let resp, quit = respond t ~id req in
                   if not (write_resp resp) then finished := true;
                   quit)
             in
             Atomic.incr t.served;
             deadline := Clock.now () +. t.conn_timeout;
             if quit then begin
               finished := true;
               initiate_stop t
             end;
             if draining then finished := true
           end
     done
   with
  | Protocol.Timeout ->
      (* slow-loris eviction: no response, the peer used up its frame
         deadline *)
      Atomic.incr t.timeouts;
      Metrics.incr (Lazy.force m_conn_timeout);
      Log.warn "conn.evicted"
        [
          ("reason", Json.String "frame deadline");
          ("timeout_seconds", Json.Float t.conn_timeout);
        ]
  | Conn_shutdown -> ()
  | End_of_file | Sys_error _ | Sys_blocked_io -> ()
  | Unix.Unix_error
      ( ( Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.EAGAIN
        | Unix.EWOULDBLOCK ),
        _,
        _ ) ->
      ());
  try flush oc with Sys_error _ | Sys_blocked_io -> ()

(* ------------------------------------------------------------------ *)
(* Worker domains *)

(* block until a connection is available; None when the server stopped *)
let next_conn t =
  Mutex.lock t.qmu;
  let rec go () =
    if Atomic.get t.state = Stopped then None
    else
      match Queue.take_opt t.queue with
      | Some fd ->
          Atomic.incr t.active_conns;
          Some fd
      | None ->
          Condition.wait t.qcond t.qmu;
          go ()
  in
  let r = go () in
  Mutex.unlock t.qmu;
  r

let rec worker_loop t =
  match next_conn t with
  | None -> ()
  | Some fd ->
      Fun.protect
        ~finally:(fun () ->
          Atomic.decr t.active_conns;
          (* in and out channels share fd; close it exactly once *)
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* the worker-raise fault escapes to the supervisor below:
             the connection is lost (crash-only), the worker is not *)
          Faults.worker_raise t.faults;
          handle_conn t fd);
      worker_loop t

(* Supervision: [worker_loop] returning is a normal exit; an exception
   is a crash.  The connection that killed it is already closed by the
   [Fun.protect] above, so the supervisor just logs, counts and
   re-enters the loop — the serving crew never shrinks. *)
let worker_main t =
  Atomic.incr t.alive;
  Fun.protect
    ~finally:(fun () -> Atomic.decr t.alive)
    (fun () ->
      let rec supervise () =
        match worker_loop t with
        | () -> ()
        | exception e when Atomic.get t.state <> Stopped ->
            Atomic.incr t.restarts;
            Metrics.incr (Lazy.force m_worker_restart);
            Log.err "worker.restart"
              [
                ("error", Json.String (Printexc.to_string e));
                ("restarts", Json.Int (Atomic.get t.restarts));
              ];
            supervise ()
        | exception _ -> ()
      in
      supervise ())

(* ------------------------------------------------------------------ *)
(* Acceptor and admission control *)

let refuse_busy t fd =
  Atomic.incr t.rejected;
  Metrics.incr (Lazy.force m_rejected);
  let rid = fresh_rid () in
  Log.warn "conn.refused"
    [
      ("rid", Json.String rid);
      ("reason", Json.String "busy");
      ("retry_after_ms", Json.Int retry_after_ms);
    ];
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
     let oc = Unix.out_channel_of_descr fd in
     Protocol.write_frame oc
       (Protocol.response_error ~rid
          ~data:(Json.Obj [ ("retry_after_ms", Json.Int retry_after_ms) ])
          ~id:Json.Null ~code:Protocol.server_busy "server busy")
   with Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Admission control: a connection is admitted while the workers plus
   the pending queue have room, otherwise it is answered [server busy]
   (with a retry hint) and closed — latency stays bounded instead of
   the queue growing without bound. *)
let admit t fd =
  Mutex.lock t.qmu;
  let overloaded =
    Atomic.get t.active_conns + Queue.length t.queue
    >= t.nworkers + t.max_pending
  in
  if overloaded then begin
    Mutex.unlock t.qmu;
    refuse_busy t fd
  end
  else begin
    Queue.push fd t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qmu;
    Log.debug "conn.accept" []
  end

(* The acceptor multiplexes the (nonblocking) listening socket against
   the dead pipe, so closing time needs no dummy wake-up connections. *)
let acceptor_main t =
  let rec loop () =
    if Atomic.get t.state = Stopped then ()
    else
      match Unix.select [ t.listen_fd; t.dead_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if List.mem t.dead_r ready then ()
          else begin
            (match Unix.accept t.listen_fd with
            | exception
                Unix.Unix_error
                  ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                    | Unix.ECONNABORTED ),
                    _,
                    _ ) ->
                ()
            | exception Unix.Unix_error _ ->
                (* transient resource trouble (e.g. fd exhaustion):
                   back off instead of spinning *)
                (try Unix.sleepf 0.05
                 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
            | fd, _ ->
                Unix.clear_nonblock fd;
                admit t fd);
            loop ()
          end
  in
  loop ()

(* ------------------------------------------------------------------ *)

let listen addr =
  match addr with
  | Protocol.Unix_path path ->
      (if Sys.file_exists path then
         match (Unix.stat path).Unix.st_kind with
         | Unix.S_SOCK ->
             (* a stale socket from a dead daemon; replace it *)
             (try Unix.unlink path with Unix.Unix_error _ -> ())
         | _ ->
             failwith
               (Printf.sprintf
                  "spd serve: %s exists and is not a socket; refusing to \
                   replace it"
                  path));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         failwith
           (Fmt.str "spd serve: cannot listen on %a: %s" Protocol.pp_addr
              addr (Unix.error_message e)));
      fd
  | Protocol.Tcp (host, port) ->
      let inet =
        match host with
        | "" | "*" | "0.0.0.0" -> Unix.inet_addr_any
        | h -> (
            try Unix.inet_addr_of_string h
            with Failure _ -> (
              match Unix.gethostbyname h with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith ("spd serve: cannot resolve host " ^ h)
              | info -> info.Unix.h_addr_list.(0)
              | exception Not_found ->
                  failwith ("spd serve: cannot resolve host " ^ h)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet, port));
         Unix.listen fd 64
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         failwith
           (Fmt.str "spd serve: cannot listen on %a: %s" Protocol.pp_addr
              addr (Unix.error_message e)));
      fd

let start ?(workers = 4) ?(conn_timeout = 30.0) ?(drain_deadline = 10.0)
    ?(max_pending = 64) ?(faults = Faults.none) ?run_fuel ?run_deadline
    ?slow_ms ~session addr =
  (* a peer that disconnects mid-response must surface as EPIPE, not
     kill the daemon *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let nworkers = max 1 workers in
  let listen_fd = listen addr in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let dead_r, dead_w = Unix.pipe ~cloexec:true () in
  (* [stop] may run inside a signal handler: its pipe writes must not
     block *)
  Unix.set_nonblock wake_w;
  Unix.set_nonblock dead_w;
  (* register every serve metric up front, so a metrics snapshot
     carries the counters whether or not they have fired *)
  ignore (Lazy.force m_requests);
  ignore (Lazy.force m_errors);
  ignore (Lazy.force m_request_seconds);
  ignore (Lazy.force m_conn_timeout);
  ignore (Lazy.force m_worker_restart);
  ignore (Lazy.force m_rejected);
  ignore (Lazy.force m_rpc_latency);
  (* harness-level counters too: the heuristic-decision and disk-cache
     families must appear in scrapes before the first cell computes *)
  Pipeline.register_metrics ();
  Engine.register_metrics ();
  let t =
    {
      addr;
      listen_fd;
      session;
      run_fuel;
      run_deadline;
      conn_timeout;
      drain_deadline;
      slow_ms;
      max_pending;
      faults;
      state = Atomic.make Running;
      served = Atomic.make 0;
      in_flight = Atomic.make 0;
      active_conns = Atomic.make 0;
      alive = Atomic.make 0;
      restarts = Atomic.make 0;
      timeouts = Atomic.make 0;
      rejected = Atomic.make 0;
      started_at = Clock.now ();
      queue = Queue.create ();
      qmu = Mutex.create ();
      qcond = Condition.create ();
      wake_r;
      wake_w;
      dead_r;
      dead_w;
      nworkers;
      acceptor = None;
      workers = [];
      torn_down = false;
    }
  in
  t.workers <-
    List.init nworkers (fun _ -> Domain.spawn (fun () -> worker_main t));
  t.acceptor <- Some (Domain.spawn (fun () -> acceptor_main t));
  Log.info "server.start"
    [
      ("addr", Json.String (Fmt.str "%a" Protocol.pp_addr addr));
      ("workers", Json.Int nworkers);
      ("max_pending", Json.Int max_pending);
    ];
  t

let stop = initiate_stop

let wait t =
  (* block until [stop] runs (signal handler, CLI, shutdown method) *)
  let rec await () =
    if Atomic.get t.state = Running then
      match Unix.select [ t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
      | _ -> ()
  in
  await ();
  if not t.torn_down then begin
    t.torn_down <- true;
    (* the drain transition is logged here, not in [stop]: [stop] must
       stay signal-handler-safe, and a mutex-taking log call is not *)
    Log.info "server.drain"
      [
        ("in_flight", Json.Int (Atomic.get t.in_flight));
        ("drain_deadline_seconds", Json.Float t.drain_deadline);
      ];
    (* graceful drain: let in-flight requests finish writing, bounded
       by the drain deadline *)
    let drain_until = Clock.now () +. t.drain_deadline in
    while Atomic.get t.in_flight > 0 && Clock.now () < drain_until do
      try Unix.sleepf 0.01 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    (* hard stop: the dead pipe wakes every select in the process and
       stays readable *)
    (try ignore (Unix.write t.dead_w (Bytes.make 1 'd') 0 1)
     with Unix.Unix_error _ -> ());
    Mutex.lock t.qmu;
    Atomic.set t.state Stopped;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qmu;
    (match t.acceptor with
    | Some d ->
        Domain.join d;
        t.acceptor <- None
    | None -> ());
    List.iter Domain.join t.workers;
    t.workers <- [];
    (* connections admitted but never claimed by a worker *)
    Mutex.lock t.qmu;
    Queue.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.queue;
    Queue.clear t.queue;
    Mutex.unlock t.qmu;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.wake_r; t.wake_w; t.dead_r; t.dead_w ];
    (match t.addr with
    | Protocol.Unix_path path -> (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Protocol.Tcp _ -> ());
    Log.info "server.stop"
      [
        ("served", Json.Int (Atomic.get t.served));
        ("uptime_seconds", Json.Float (Clock.now () -. t.started_at));
      ];
    Log.flush ()
  end

let served t = Atomic.get t.served
let draining t = Atomic.get t.state <> Running
let workers_alive t = Atomic.get t.alive
let worker_restarts t = Atomic.get t.restarts
let conn_timeouts t = Atomic.get t.timeouts
let admission_rejected t = Atomic.get t.rejected
let active_conns t = Atomic.get t.active_conns
let in_flight t = Atomic.get t.in_flight
