(** The [spd serve] daemon (see the .mli).

    Concurrency model: [workers] OCaml 5 domains share one listening
    socket; each blocks in [accept], serves its connection to
    completion (requests on one connection are sequential, as JSON-RPC
    over a stream implies), and loops.  All artefact work funnels into
    the one shared {!Engine.Session}, whose promise-table memoization
    is what deduplicates concurrent identical requests across
    connections and domains.

    Shutdown: a [stop] (signal handler, or the [shutdown] method) sets
    the stop flag and then dials one dummy connection per worker, so
    every domain blocked in [accept] wakes, observes the flag and
    exits.  [wait] then joins the workers and removes the socket. *)

module W = Spd_workloads
module Json = Spd_telemetry.Json
module Metrics = Spd_telemetry.Metrics
module Trace = Spd_telemetry.Trace
module Engine = Spd_harness.Engine
module Query = Spd_harness.Engine.Query
module Pipeline = Spd_harness.Pipeline
module Artefact = Spd_harness.Artefact
module Explain = Spd_harness.Explain
module Microbench = Spd_harness.Microbench

let version = "1.0"

let methods =
  [
    "ping"; "query"; "report"; "explain"; "micro"; "run"; "metrics";
    "stats"; "shutdown";
  ]

let m_requests = lazy (Metrics.counter "spd.serve.requests")
let m_errors = lazy (Metrics.counter "spd.serve.errors")

let m_request_seconds =
  lazy
    (Metrics.histogram ~buckets:Metrics.time_buckets
       "spd.serve.request_seconds")

type t = {
  addr : Protocol.addr;
  listen_fd : Unix.file_descr;
  session : Engine.Session.t;
  run_fuel : int option;  (* cap on inline-run fuel requests *)
  run_deadline : float option;
  stopping : bool Atomic.t;
  served : int Atomic.t;
  nworkers : int;
  mutable workers : unit Domain.t list;
}

(* ------------------------------------------------------------------ *)
(* Request parameter decoding.  [Bad_params] maps to JSON-RPC error
   -32602 (invalid params); compile/simulate exceptions map to -32000
   (server error). *)

exception Bad_params of string
exception Unknown_method of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_params s)) fmt

let obj_params = function
  | None | Some Json.Null -> Json.Obj []
  | Some (Json.Obj _ as o) -> o
  | Some _ -> raise (Bad_params "\"params\" must be an object")

let opt_string name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some (Json.String s) -> Some s
  | Some _ -> bad "%S must be a string" name

let req_string name p =
  match opt_string name p with
  | Some s -> s
  | None -> bad "missing required parameter %S" name

(* positive integer, with the same hint wording as the CLIs' --fuel /
   --jobs flags (Cliflags) *)
let opt_pos_int name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some j -> (
      match Json.to_number j with
      | Some v when Float.is_integer v && v >= 1.0 ->
          Some (int_of_float v)
      | Some v -> bad "%S expects a positive integer, got %g" name v
      | None -> bad "%S expects a positive integer" name)

let opt_nat name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some j -> (
      match Json.to_number j with
      | Some v when Float.is_integer v && v >= 0.0 ->
          Some (int_of_float v)
      | _ -> bad "%S expects a non-negative integer" name)

let opt_pos_float name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some j -> (
      match Json.to_number j with
      | Some v when v > 0.0 -> Some v
      | Some v ->
          bad "%S expects a positive number of seconds, got %g" name v
      | None -> bad "%S expects a positive number of seconds" name)

let opt_string_list name p =
  match Json.member name p with
  | None | Some Json.Null -> None
  | Some (Json.List l) ->
      Some
        (List.map
           (fun j ->
             match Json.to_string_opt j with
             | Some s -> s
             | None -> bad "%S must be a list of strings" name)
           l)
  | Some _ -> bad "%S must be a list of strings" name

let workload_names () =
  W.Registry.names
  @ List.map (fun (w : W.Workload.t) -> w.name) W.Registry.extras

let require_workload name =
  if not (List.mem name (workload_names ())) then
    bad "unknown workload %S (one of: %s)" name
      (String.concat ", " (workload_names ()))

let pipeline_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Pipeline.Naive
  | "static" -> Pipeline.Static
  | "spec" -> Pipeline.Spec
  | "perfect" -> Pipeline.Perfect
  | _ -> bad "unknown pipeline %S (one of: naive, static, spec, perfect)" s

(* machine width: a positive integer number of FUs, or "inf" *)
let opt_width p =
  match Json.member "width" p with
  | None | Some Json.Null -> None
  | Some (Json.String "inf") -> Some Spd_machine.Descr.Infinite
  | Some j -> (
      match Json.to_number j with
      | Some v when Float.is_integer v && v >= 1.0 ->
          Some (Spd_machine.Descr.Fus (int_of_float v))
      | _ -> bad "\"width\" expects a positive integer or \"inf\"")

let opt_min_int a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let opt_min_float a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.min a b)

(* ------------------------------------------------------------------ *)
(* Building engine queries from request parameters *)

let query_of_params p =
  let bench = req_string "bench" p in
  require_workload bench;
  let latency = Option.value ~default:2 (opt_pos_int "latency" p) in
  let fuel = opt_pos_int "fuel" p in
  let deadline = opt_pos_float "deadline" p in
  let kind_for art =
    match opt_string "pipeline" p with
    | Some s -> pipeline_of_string s
    | None -> bad "artefact %S needs a \"pipeline\"" art
  in
  let width_for art =
    match opt_width p with
    | Some w -> w
    | None -> bad "artefact %S needs a \"width\"" art
  in
  let artefact =
    match req_string "artefact" p with
    | "cycles" ->
        Query.Cycles { kind = kind_for "cycles"; width = width_for "cycles" }
    | "code-size" -> Query.Code_size (kind_for "code-size")
    | "spd-counts" -> Query.Spd_counts
    | "spd-dynamics" -> Query.Spd_dynamics
    | "speedup-over-naive" ->
        Query.Speedup_over_naive
          {
            kind = kind_for "speedup-over-naive";
            width = width_for "speedup-over-naive";
          }
    | "spec-over-static" ->
        Query.Spec_over_static { width = width_for "spec-over-static" }
    | "code-growth" -> Query.Code_growth
    | s ->
        bad "unknown artefact %S (one of: %s)" s
          (String.concat ", " Query.artefact_names)
  in
  Query.v ?fuel ?deadline ~bench ~latency artefact

let dynamics_json (d : Pipeline.dynamics) =
  Json.Obj
    [
      ( "regions",
        Json.List
          (List.map
             (fun (r : Pipeline.region_dynamics) ->
               Json.Obj
                 [
                   ("func", Json.String r.func);
                   ("tree", Json.Int r.tree_id);
                   ( "kind",
                     Json.String
                       (Fmt.str "%a" Spd_ir.Memdep.pp_kind r.dep_kind) );
                   ( "arc",
                     Json.List [ Json.Int (fst r.arc); Json.Int (snd r.arc) ]
                   );
                   ("alias_commits", Json.Int r.alias_commits);
                   ("noalias_commits", Json.Int r.noalias_commits);
                 ])
             d.regions) );
      ("squashed", Json.Int d.squashed);
    ]

let value_json : Engine.value -> Json.t = function
  | Engine.Int n -> Json.Int n
  | Engine.Float x -> Json.Float x
  | Engine.Counts (raw, war, waw) ->
      Json.Obj
        [ ("raw", Json.Int raw); ("war", Json.Int war); ("waw", Json.Int waw) ]
  | Engine.Dynamics d -> dynamics_json d

(* ------------------------------------------------------------------ *)
(* Method dispatch.  Every result is either one of the repository's
   existing schema documents (spd-report/1, spd-explain/1, spd-micro/1,
   spd-metrics/1) or an spd-serve/1 object tagged with its "kind". *)

let serve_doc kind fields =
  Json.Obj
    (("schema", Json.String Protocol.schema)
    :: ("kind", Json.String kind)
    :: fields)

let dispatch t meth params : Json.t =
  let p = obj_params params in
  match meth with
  | "ping" ->
      serve_doc "ping"
        [
          ("server", Json.String "spd-serve");
          ("version", Json.String version);
          ("methods", Json.List (List.map (fun m -> Json.String m) methods));
          ( "workloads",
            Json.List
              (List.map (fun w -> Json.String w) (workload_names ())) );
          ( "artefacts",
            Json.List
              (List.map (fun a -> Json.String a) Query.artefact_names) );
        ]
  | "query" -> (
      let q = query_of_params p in
      let base = [ ("key", Json.String (Query.key q)) ] in
      match Engine.Session.submit t.session q with
      | Engine.Ok v ->
          serve_doc "query"
            (base @ [ ("ok", Json.Bool true); ("value", value_json v) ])
      | Engine.Failed f ->
          (* a failed cell is a successful RPC: the renderers' n/a,
             machine-readable *)
          serve_doc "query"
            (base
            @ [
                ("ok", Json.Bool false);
                ("error", Json.String (Printexc.to_string f.Engine.exn));
                ("attempts", Json.Int f.Engine.attempts);
              ]))
  | "report" ->
      let names =
        match Json.member "artefacts" p with
        | None | Some Json.Null -> Artefact.paper_set
        | Some (Json.List l) ->
            List.map
              (fun j ->
                match Json.to_string_opt j with
                | Some s -> s
                | None -> bad "\"artefacts\" must be a list of names")
              l
        | Some _ -> bad "\"artefacts\" must be a list of names"
      in
      let arts =
        List.map
          (fun n ->
            match Artefact.find n with
            | Some a -> a
            | None ->
                bad "unknown artefact %S (one of: %s)" n
                  (String.concat ", " (Artefact.names ())))
          names
      in
      Artefact.to_json ~session:t.session arts
  | "explain" ->
      let workload = req_string "workload" p in
      require_workload workload;
      let width = Option.value ~default:5 (opt_pos_int "width" p) in
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let fn = opt_string "fn" p in
      let tree = opt_nat "tree" p in
      let e = Explain.analyze ~width ~mem_latency workload in
      if Explain.selected ?fn ?tree e = [] then
        bad "no tree of %S matches the fn/tree filter" workload;
      Explain.to_json ?fn ?tree e
  | "micro" ->
      let workloads = opt_string_list "workloads" p in
      Option.iter (List.iter require_workload) workloads;
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let width = Option.value ~default:5 (opt_pos_int "width" p) in
      let min_time =
        Option.value ~default:0.02 (opt_pos_float "min_time" p)
      in
      if min_time > 5.0 then
        bad "\"min_time\" is capped at 5 seconds on a shared daemon";
      Microbench.to_json
        (Microbench.run ~mem_latency ~width ~min_time ?workloads ())
  | "run" ->
      let source = req_string "source" p in
      let kind =
        match opt_string "pipeline" p with
        | None -> Pipeline.Spec
        | Some s -> pipeline_of_string s
      in
      let mem_latency =
        Option.value ~default:2 (opt_pos_int "mem_latency" p)
      in
      let width =
        Option.value ~default:(Spd_machine.Descr.Fus 5) (opt_width p)
      in
      (* inline source bypasses the session's grid cells, so the
         daemon's own caps bound these budgets instead *)
      let fuel = opt_min_int t.run_fuel (opt_pos_int "fuel" p) in
      let deadline =
        opt_min_float t.run_deadline (opt_pos_float "deadline" p)
      in
      let prog = Spd_lang.Lower.compile source in
      let config = Pipeline.Config.v ?fuel ?deadline ~mem_latency () in
      let prepared = Pipeline.prepare ~config kind prog in
      let descr = { Spd_machine.Descr.width; mem_latency } in
      let timing = Spd_machine.Timing_builder.program descr prepared.prog in
      let r : Spd_sim.Interp.result =
        Spd_sim.Interp.run ~timing ?fuel ?deadline prepared.prog
      in
      serve_doc "run"
        [
          ("pipeline", Json.String (Pipeline.name kind));
          ("machine", Json.String (Fmt.str "%a" Spd_machine.Descr.pp descr));
          ("cycles", Json.Int r.cycles);
          ("traversals", Json.Int r.traversals);
          ("return", Json.String (Fmt.str "%a" Spd_ir.Value.pp r.ret));
          ( "output",
            Json.List
              (List.map
                 (fun v -> Json.String (Fmt.str "%a" Spd_ir.Value.pp v))
                 r.output) );
          ("code_size", Json.Int (Pipeline.code_size prepared));
          ("applications", Json.Int (List.length prepared.applications));
        ]
  | "metrics" -> Metrics.snapshot_json (Metrics.snapshot ())
  | "stats" ->
      let st = Engine.Session.stats t.session in
      serve_doc "stats"
        [
          ("jobs", Json.Int st.Engine.Stats.jobs);
          ( "counters",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Int v))
                 (Engine.Stats.to_alist st)) );
          ( "stage_seconds",
            Json.Obj
              (List.map
                 (fun (stage, secs) ->
                   (Pipeline.stage_name stage, Json.Float secs))
                 st.Engine.Stats.stage_seconds) );
          ( "failures",
            Json.List
              (List.map
                 (fun (f : Engine.failure) -> Json.String f.Engine.key)
                 (Engine.Session.failures t.session)) );
          ("served", Json.Int (Atomic.get t.served));
        ]
  | "shutdown" -> serve_doc "shutdown" [ ("stopping", Json.Bool true) ]
  | m -> raise (Unknown_method m)

(* the compile/simulate exceptions a [run] request can surface; wording
   matches the spd CLI's handle_errors *)
let app_error_message = function
  | Spd_lang.Lexer.Error (msg, line) ->
      Some (Printf.sprintf "lexical error, line %d: %s" line msg)
  | Spd_lang.Parser.Error (msg, line) ->
      Some (Printf.sprintf "syntax error, line %d: %s" line msg)
  | Spd_lang.Typecheck.Error msg -> Some ("type error: " ^ msg)
  | Spd_lang.Lower.Error msg -> Some ("lowering error: " ^ msg)
  | Spd_sim.Interp.Sim_error (k, ctx) ->
      Some (Fmt.str "runtime error: %a" Spd_sim.Interp.pp_error (k, ctx))
  | _ -> None

let respond t ~id req : Json.t * bool =
  match Option.bind (Json.member "method" req) Json.to_string_opt with
  | None ->
      Metrics.incr (Lazy.force m_errors);
      ( Protocol.response_error ~id ~code:Protocol.invalid_request
          "request has no \"method\" member",
        false )
  | Some meth ->
      Metrics.incr (Lazy.force m_requests);
      let t0 = Unix.gettimeofday () in
      let err code msg =
        Metrics.incr (Lazy.force m_errors);
        Protocol.response_error ~id ~code msg
      in
      let params = Json.member "params" req in
      let resp =
        match
          Trace.with_span ~name:("rpc:" ^ meth) (fun () ->
              dispatch t meth params)
        with
        | result -> Protocol.response_ok ~id result
        | exception Bad_params msg -> err Protocol.invalid_params msg
        | exception Unknown_method m ->
            err Protocol.method_not_found
              (Printf.sprintf "unknown method %S (one of: %s)" m
                 (String.concat ", " methods))
        | exception Invalid_argument msg -> err Protocol.invalid_params msg
        | exception e -> (
            match app_error_message e with
            | Some msg -> err Protocol.server_error msg
            | None -> err Protocol.server_error (Printexc.to_string e))
      in
      Metrics.observe
        (Lazy.force m_request_seconds)
        (Unix.gettimeofday () -. t0);
      let ok = Json.member "result" resp <> None in
      (resp, meth = "shutdown" && ok)

(* ------------------------------------------------------------------ *)
(* Connections and workers *)

(* wake one domain blocked in [accept] with a throwaway connection *)
let poke addr =
  let target =
    match addr with
    | Protocol.Unix_path _ -> addr
    | Protocol.Tcp (host, port) ->
        let host =
          match host with "" | "*" | "0.0.0.0" -> "127.0.0.1" | h -> h
        in
        Protocol.Tcp (host, port)
  in
  match Protocol.connect target with
  | Ok c -> Protocol.close c
  | Error _ -> ()

let initiate_stop t =
  if not (Atomic.exchange t.stopping true) then
    for _ = 1 to t.nworkers do
      poke t.addr
    done

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finished = ref false in
  (try
     while (not !finished) && not (Atomic.get t.stopping) do
       match Protocol.read_frame ic with
       | Ok None -> finished := true
       | Error e ->
           (* unframeable input: answer once, then drop the peer *)
           (try
              Protocol.write_frame oc
                (Protocol.response_error ~id:Json.Null
                   ~code:Protocol.parse_error e)
            with Sys_error _ -> ());
           finished := true
       | Ok (Some req) ->
           let id =
             Option.value ~default:Json.Null (Json.member "id" req)
           in
           let resp, quit = respond t ~id req in
           Atomic.incr t.served;
           (try Protocol.write_frame oc resp
            with Sys_error _ -> finished := true);
           if quit then begin
             finished := true;
             initiate_stop t
           end
     done
   with Sys_error _ | End_of_file -> ());
  (try flush oc with Sys_error _ -> ());
  (* ic and oc share fd; close the descriptor exactly once *)
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec worker t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      if Atomic.get t.stopping then () else worker t
  | exception Unix.Unix_error (_, _, _) ->
      (* EBADF and friends: the listening socket is gone *)
      ()
  | fd, _ ->
      if Atomic.get t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else begin
        handle_conn t fd;
        if Atomic.get t.stopping then () else worker t
      end

(* ------------------------------------------------------------------ *)

let listen addr =
  match addr with
  | Protocol.Unix_path path ->
      (if Sys.file_exists path then
         match (Unix.stat path).Unix.st_kind with
         | Unix.S_SOCK ->
             (* a stale socket from a dead daemon; replace it *)
             (try Unix.unlink path with Unix.Unix_error _ -> ())
         | _ ->
             failwith
               (Printf.sprintf
                  "spd serve: %s exists and is not a socket; refusing to \
                   replace it"
                  path));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         failwith
           (Fmt.str "spd serve: cannot listen on %a: %s" Protocol.pp_addr
              addr (Unix.error_message e)));
      fd
  | Protocol.Tcp (host, port) ->
      let inet =
        match host with
        | "" | "*" | "0.0.0.0" -> Unix.inet_addr_any
        | h -> (
            try Unix.inet_addr_of_string h
            with Failure _ -> (
              match Unix.gethostbyname h with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith ("spd serve: cannot resolve host " ^ h)
              | info -> info.Unix.h_addr_list.(0)
              | exception Not_found ->
                  failwith ("spd serve: cannot resolve host " ^ h)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet, port));
         Unix.listen fd 64
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         failwith
           (Fmt.str "spd serve: cannot listen on %a: %s" Protocol.pp_addr
              addr (Unix.error_message e)));
      fd

let start ?(workers = 4) ?run_fuel ?run_deadline ~session addr =
  (* a peer that disconnects mid-response must surface as EPIPE, not
     kill the daemon *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let nworkers = max 1 workers in
  let t =
    {
      addr;
      listen_fd = listen addr;
      session;
      run_fuel;
      run_deadline;
      stopping = Atomic.make false;
      served = Atomic.make 0;
      nworkers;
      workers = [];
    }
  in
  t.workers <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let stop = initiate_stop

let wait t =
  while not (Atomic.get t.stopping) do
    try Unix.sleepf 0.25 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter Domain.join t.workers;
  t.workers <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.addr with
  | Protocol.Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Protocol.Tcp _ -> ()

let served t = Atomic.get t.served
