(** Sampling and rendering behind [spd top ADDR]: a polling terminal
    dashboard over a live daemon's [health] and [metrics] methods.

    The CLI loop lives in [bin/spd.ml]; this module is deliberately
    terminal-free so tests can drive it.  Each poll produces a
    {!sample}; differencing two samples yields per-window rates and
    per-window latency histograms (bucket-count subtraction), from
    which {!render} derives RPS, error rate, cache hit rate and
    p50/p95/p99 per RPC method via {!Spd_telemetry.Metrics.quantile}.
    When counters went backwards between samples (daemon restart or
    metrics reset) the window falls back to cumulative totals instead
    of printing negatives. *)

type sample = {
  at : float;  (** monotonic fetch time, for rate windows *)
  health : (string * Spd_telemetry.Json.t) list;
      (** members of the [health] document *)
  counters : (string * int) list;
  hists : (string * Spd_telemetry.Metrics.hist) list;
}

(** One round trip: call [health] then [metrics] on an established
    client connection and decode both. *)
val fetch : Protocol.client -> (sample, string) result

(** Counter value by full metric name, 0 when absent. *)
val counter : sample -> string -> int

(** [window prev cur name] is the histogram of observations between
    the two samples ([None] if the metric is absent); with no [prev],
    or after a reset, the cumulative histogram. *)
val window :
  sample option -> sample -> string -> Spd_telemetry.Metrics.hist option

(** Events per second of a counter across the window; [None] without a
    previous sample. *)
val rate : sample option -> sample -> string -> float option

(** One dashboard frame as a string (trailing newline included).
    [prev] enables the window line and per-window latency rows. *)
val render : ?prev:sample -> sample -> string
