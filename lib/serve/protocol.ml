(** Wire protocol of the [spd serve] daemon: LSP-style
    [Content-Length] framing around JSON-RPC 2.0 envelopes (see the
    .mli for the layout). *)

module Json = Spd_telemetry.Json

let schema = "spd-serve/1"

(* ------------------------------------------------------------------ *)
(* Addresses *)

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  if s = "" then Error "empty address"
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None ->
        Error
          (Printf.sprintf "TCP address must be tcp:HOST:PORT, got %S" s)
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 1 && p <= 65535 -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "invalid TCP port %S" port))
  end
  else Ok (Unix_path s)

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

(* ------------------------------------------------------------------ *)
(* Framing *)

let max_frame = 64 * 1024 * 1024

let write_frame oc (j : Json.t) =
  let body = Json.to_string j in
  Printf.fprintf oc "Content-Length: %d\r\n\r\n%s" (String.length body) body;
  flush oc

(* Header lines are CRLF-terminated; [input_line] strips the LF, we
   trim the CR.  Only Content-Length is meaningful; unknown headers are
   skipped for forward compatibility. *)
let read_frame ic : (Json.t option, string) result =
  let header_line () =
    match input_line ic with
    | line ->
        let n = String.length line in
        Some (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
              else line)
    | exception End_of_file -> None
  in
  let rec headers seen_any len =
    match header_line () with
    | None ->
        if seen_any then Error "connection closed inside a frame header"
        else Ok None  (* clean end-of-stream between messages *)
    | Some "" -> (
        match len with
        | None -> Error "frame missing Content-Length header"
        | Some n -> body n)
    | Some line -> (
        match String.index_opt line ':' with
        | Some i
          when String.lowercase_ascii (String.trim (String.sub line 0 i))
               = "content-length" -> (
            let v =
              String.trim
                (String.sub line (i + 1) (String.length line - i - 1))
            in
            match int_of_string_opt v with
            | Some n when n >= 0 && n <= max_frame ->
                headers true (Some n)
            | Some n ->
                Error (Printf.sprintf "unreasonable Content-Length %d" n)
            | None -> Error (Printf.sprintf "invalid Content-Length %S" v))
        | _ -> headers true len)
  and body n =
    match really_input_string ic n with
    | exception End_of_file -> Error "connection closed inside a frame body"
    | s -> (
        match Json.of_string s with
        | Ok j -> Ok (Some j)
        | Error e -> Error (Printf.sprintf "malformed frame body: %s" e))
  in
  headers false None

(* ------------------------------------------------------------------ *)
(* JSON-RPC envelopes *)

let parse_error = -32700
let invalid_request = -32600
let method_not_found = -32601
let invalid_params = -32602
let server_error = -32000

let request ~id ~meth ~params =
  Json.Obj
    [
      ("jsonrpc", Json.String "2.0");
      ("id", Json.Int id);
      ("method", Json.String meth);
      ("params", params);
    ]

let response_ok ~id result =
  Json.Obj
    [ ("jsonrpc", Json.String "2.0"); ("id", id); ("result", result) ]

let response_error ~id ~code message =
  Json.Obj
    [
      ("jsonrpc", Json.String "2.0");
      ("id", id);
      ( "error",
        Json.Obj
          [ ("code", Json.Int code); ("message", Json.String message) ] );
    ]

(* ------------------------------------------------------------------ *)
(* Client *)

type client = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect addr =
  try
    let fd =
      match addr with
      | Unix_path path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_UNIX path)
           with e -> Unix.close fd; raise e);
          fd
      | Tcp (host, port) ->
          let inet =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith ("cannot resolve host " ^ host)
              | h -> h.Unix.h_addr_list.(0)
              | exception Not_found ->
                  failwith ("cannot resolve host " ^ host))
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_INET (inet, port))
           with e -> Unix.close fd; raise e);
          fd
    in
    Ok
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
        next_id = 1;
      }
  with
  | Unix.Unix_error (e, _, _) ->
      Error
        (Fmt.str "cannot connect to %a: %s" pp_addr addr
           (Unix.error_message e))
  | Failure msg -> Error msg

let call c meth params =
  let id = c.next_id in
  c.next_id <- id + 1;
  match write_frame c.oc (request ~id ~meth ~params) with
  | exception Sys_error e -> Error ("send failed: " ^ e)
  | () -> (
      match read_frame c.ic with
      | Error e -> Error e
      | Ok None -> Error "connection closed by server"
      | Ok (Some resp) -> (
          match Json.member "error" resp with
          | Some err ->
              let code =
                match
                  Option.bind (Json.member "code" err) Json.to_number
                with
                | Some c -> int_of_float c
                | None -> 0
              in
              let msg =
                match
                  Option.bind (Json.member "message" err) Json.to_string_opt
                with
                | Some m -> m
                | None -> "unknown error"
              in
              Error (Printf.sprintf "server error %d: %s" code msg)
          | None -> (
              match Json.member "result" resp with
              | Some r -> Ok r
              | None -> Error "malformed response: neither result nor error")))

let close c =
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()
