(** Wire protocol of the [spd serve] daemon: LSP-style
    [Content-Length] framing around JSON-RPC 2.0 envelopes (see the
    .mli for the layout), plus the framed client and its retry
    policy. *)

module Json = Spd_telemetry.Json

let schema = "spd-serve/1"

(* ------------------------------------------------------------------ *)
(* Addresses *)

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  if s = "" then Error "empty address"
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None ->
        Error
          (Printf.sprintf "TCP address must be tcp:HOST:PORT, got %S" s)
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 1 && p <= 65535 -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "invalid TCP port %S" port))
  end
  else Ok (Unix_path s)

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

(* ------------------------------------------------------------------ *)
(* Framing *)

let max_frame = 64 * 1024 * 1024
let max_header_bytes = 16 * 1024
let max_headers = 100

exception Timeout

let write_frame oc (j : Json.t) =
  let body = Json.to_string j in
  Printf.fprintf oc "Content-Length: %d\r\n\r\n%s" (String.length body) body;
  flush oc

(* A buffered byte source.  [fill] follows the [Unix.read] contract
   (0 means end of stream) and is where deadline enforcement lives:
   the server's fill [select]s on the connection and raises {!Timeout}
   when the peer stalls. *)
type reader = {
  fill : bytes -> int -> int -> int;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;  (* -1 once [fill] returned 0: sticky EOF *)
}

let reader fill = { fill; rbuf = Bytes.create 8192; rpos = 0; rlen = 0 }
let channel_reader ic = reader (fun b off len -> input ic b off len)

(* refill the buffer if empty; false on end of stream *)
let refill r =
  if r.rlen < 0 then false
  else begin
    (if r.rpos >= r.rlen then begin
       let n = r.fill r.rbuf 0 (Bytes.length r.rbuf) in
       r.rpos <- 0;
       r.rlen <- (if n = 0 then -1 else n)
     end);
    r.rlen > 0
  end

let read_byte r =
  if refill r then begin
    let c = Bytes.get r.rbuf r.rpos in
    r.rpos <- r.rpos + 1;
    Some c
  end
  else None

let read_exact r n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string b)
    else if r.rpos < r.rlen then begin
      let k = min (n - off) (r.rlen - r.rpos) in
      Bytes.blit r.rbuf r.rpos b off k;
      r.rpos <- r.rpos + k;
      go (off + k)
    end
    else if refill r then go off
    else None
  in
  go 0

exception Frame_error of string

let frame_err fmt = Printf.ksprintf (fun s -> raise (Frame_error s)) fmt

(* Header lines are CRLF-terminated; we accept bare LF too and trim the
   CR.  Only Content-Length is meaningful; unknown headers are skipped
   for forward compatibility, but the whole header section is bounded —
   at most [max_headers] lines and [max_header_bytes] bytes — so a
   header flood errors out instead of growing memory. *)
let read_frame_r r : (Json.t option, string) result =
  let total = ref 0 in
  (* one header line, CR stripped; [None] only on a clean end-of-stream
     before the first byte of the frame *)
  let read_line ~first =
    let buf = Buffer.create 80 in
    let rec go () =
      match read_byte r with
      | None ->
          if first && Buffer.length buf = 0 then None
          else frame_err "connection closed inside a frame header"
      | Some c ->
          incr total;
          if !total > max_header_bytes then
            frame_err "frame header exceeds %d bytes" max_header_bytes;
          if c = '\n' then begin
            let s = Buffer.contents buf in
            let n = String.length s in
            Some
              (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1)
               else s)
          end
          else begin
            Buffer.add_char buf c;
            go ()
          end
    in
    go ()
  in
  let rec headers nlines len =
    match read_line ~first:(nlines = 0 && !total = 0) with
    | None -> `Clean_eof
    | Some "" -> (
        match len with
        | None -> frame_err "frame missing Content-Length header"
        | Some n -> `Body n)
    | Some line ->
        if nlines + 1 > max_headers then
          frame_err "frame has more than %d header lines" max_headers;
        let len =
          match String.index_opt line ':' with
          | Some i
            when String.lowercase_ascii (String.trim (String.sub line 0 i))
                 = "content-length" -> (
              let v =
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              match int_of_string_opt v with
              | Some n when n >= 0 && n <= max_frame -> Some n
              | Some n -> frame_err "unreasonable Content-Length %d" n
              | None -> frame_err "invalid Content-Length %S" v)
          | _ -> len
        in
        headers (nlines + 1) len
  in
  match
    match headers 0 None with
    | `Clean_eof -> Ok None
    | `Body n -> (
        match read_exact r n with
        | None -> frame_err "connection closed inside a frame body"
        | Some s -> (
            match Json.of_string s with
            | Ok j -> Ok (Some j)
            | Error e -> frame_err "malformed frame body: %s" e))
  with
  | v -> v
  | exception Frame_error e -> Error e

(* ------------------------------------------------------------------ *)
(* JSON-RPC envelopes *)

let parse_error = -32700
let invalid_request = -32600
let method_not_found = -32601
let invalid_params = -32602
let server_error = -32000
let server_busy = -32001
let server_shutting_down = -32002

let request ~id ~meth ~params =
  Json.Obj
    [
      ("jsonrpc", Json.String "2.0");
      ("id", Json.Int id);
      ("method", Json.String meth);
      ("params", params);
    ]

(* every server-originated envelope can carry the request id the
   daemon assigned, for correlation with its log and trace output *)
let rid_member = function
  | None -> []
  | Some rid -> [ ("rid", Json.String rid) ]

let response_ok ?rid ~id result =
  Json.Obj
    ([ ("jsonrpc", Json.String "2.0"); ("id", id) ]
    @ rid_member rid
    @ [ ("result", result) ])

let response_error ?rid ?data ~id ~code message =
  let err =
    [ ("code", Json.Int code); ("message", Json.String message) ]
    @ match data with None -> [] | Some d -> [ ("data", d) ]
  in
  Json.Obj
    ([ ("jsonrpc", Json.String "2.0"); ("id", id) ]
    @ rid_member rid
    @ [ ("error", Json.Obj err) ])

let response_rid resp =
  Option.bind (Json.member "rid" resp) Json.to_string_opt

(* ------------------------------------------------------------------ *)
(* Client *)

type rpc_error = {
  code : int;
  message : string;
  retry_after_ms : int option;
}

type call_error = Rpc of rpc_error | Transport of string

let error_to_string = function
  | Transport e -> e
  | Rpc { code; message; _ } ->
      Printf.sprintf "server error %d: %s" code message

let rpc_error_of_json err =
  let code =
    match Option.bind (Json.member "code" err) Json.to_number with
    | Some c -> int_of_float c
    | None -> 0
  in
  let message =
    match Option.bind (Json.member "message" err) Json.to_string_opt with
    | Some m -> m
    | None -> "unknown error"
  in
  let retry_after_ms =
    match
      Option.bind (Json.member "data" err) (fun d ->
          Option.bind (Json.member "retry_after_ms" d) Json.to_number)
    with
    | Some ms when ms >= 0.0 -> Some (int_of_float ms)
    | _ -> None
  in
  { code; message; retry_after_ms }

type client = {
  fd : Unix.file_descr;
  r : reader;
  oc : out_channel;
  mutable next_id : int;
  mutable last_rid : string option;
      (* the server-assigned request id echoed on the last response *)
}

let connect addr =
  (* a daemon that refuses or drops us mid-write must surface as a
     broken pipe, not kill the client process *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  try
    let fd =
      match addr with
      | Unix_path path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_UNIX path)
           with e -> Unix.close fd; raise e);
          fd
      | Tcp (host, port) ->
          let inet =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith ("cannot resolve host " ^ host)
              | h -> h.Unix.h_addr_list.(0)
              | exception Not_found ->
                  failwith ("cannot resolve host " ^ host))
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_INET (inet, port))
           with e -> Unix.close fd; raise e);
          fd
    in
    Ok
      {
        fd;
        r = channel_reader (Unix.in_channel_of_descr fd);
        oc = Unix.out_channel_of_descr fd;
        next_id = 1;
        last_rid = None;
      }
  with
  | Unix.Unix_error (e, _, _) ->
      Error
        (Fmt.str "cannot connect to %a: %s" pp_addr addr
           (Unix.error_message e))
  | Failure msg -> Error msg

let call_ex c meth params : (Json.t, call_error) result =
  let id = c.next_id in
  c.next_id <- id + 1;
  let read_response () =
    match read_frame_r c.r with
    | exception Sys_error e -> Error (Transport e)
    | exception End_of_file ->
        Error (Transport "connection closed by server")
    | Error e -> Error (Transport e)
    | Ok None -> Error (Transport "connection closed by server")
    | Ok (Some resp) -> (
        c.last_rid <- response_rid resp;
        match Json.member "error" resp with
        | Some err -> Error (Rpc (rpc_error_of_json err))
        | None -> (
            match Json.member "result" resp with
            | Some r -> Ok r
            | None ->
                Error
                  (Transport
                     "malformed response: neither result nor error")))
  in
  match write_frame c.oc (request ~id ~meth ~params) with
  | exception ((Sys_error _ | Sys_blocked_io) as e) -> (
      (* an admission refusal closes the connection right after its
         error envelope, racing our send — the refusal may already be
         waiting in the receive buffer *)
      let send_err =
        match e with
        | Sys_error msg -> "send failed: " ^ msg
        | _ -> "send failed: write would block"
      in
      match read_response () with
      | Error (Rpc _) as refusal -> refusal
      | _ -> Error (Transport send_err))
  | () -> read_response ()

let call c meth params =
  Result.map_error error_to_string (call_ex c meth params)

let last_rid c = c.last_rid

let close c =
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Transport failures and the two load-shedding errors are worth a
   fresh connection: the daemon may be draining for a restart, a
   supervised worker may have been respawned mid-conversation, or the
   pending queue may simply be full for a moment. *)
let retryable = function
  | Transport _ -> true
  | Rpc { code; _ } -> code = server_busy || code = server_shutting_down

let call_with_retries ?(retries = 1) ?(base_delay = 0.05) addr meth params =
  let attempts = max 1 retries in
  let rec go attempt =
    let outcome =
      match connect addr with
      | Error e -> Error (Transport e)
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> close c)
            (fun () -> call_ex c meth params)
    in
    match outcome with
    | Ok r -> Ok r
    | Error err ->
        if attempt >= attempts || not (retryable err) then
          Error (error_to_string err)
        else begin
          let backoff =
            base_delay *. (2.0 ** float_of_int (attempt - 1))
          in
          let hinted =
            match err with
            | Rpc { retry_after_ms = Some ms; _ } ->
                float_of_int ms /. 1000.0
            | _ -> 0.0
          in
          (try Unix.sleepf (Float.max backoff hinted)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go (attempt + 1)
        end
  in
  go 1
