(** The [spd serve] daemon: an always-on, multi-tenant front end to one
    shared {!Spd_harness.Engine.Session}.

    A fixed crew of OCaml 5 domains accepts connections on one
    listening socket and serves framed JSON-RPC requests
    (see {!Protocol}); every artefact request becomes an
    {!Spd_harness.Engine.Query.t} submitted through
    [Engine.Session.submit], so

    - concurrent identical requests deduplicate onto one computation
      (the engine's per-cell promises), and
    - per-request [fuel]/[deadline] quotas isolate tenants: a
      quota-starved request fails with an [ok:false] response while
      the shared cells stay intact.

    Methods: [ping], [query], [report], [explain], [micro], [run],
    [metrics], [stats], [shutdown].  [report] responses reuse
    {!Spd_harness.Artefact.to_json} verbatim, which is what makes a
    served report byte-identical to [spd report --format json]
    (modulo the run-dependent ["metrics"] member). *)

type t

(** Daemon version string, reported by [ping]. *)
val version : string

(** The methods the daemon understands, reported by [ping]. *)
val methods : string list

(** [start ~session addr] binds [addr], spawns [workers] accept/serve
    domains (default 4) and returns immediately.  [run_fuel] and
    [run_deadline] cap the budgets of inline-source [run] requests the
    same way the session's own budgets cap [query] quotas.  Raises
    [Failure] if the address cannot be bound (e.g. the socket path
    exists and is not a stale socket). *)
val start :
  ?workers:int ->
  ?run_fuel:int ->
  ?run_deadline:float ->
  session:Spd_harness.Engine.Session.t ->
  Protocol.addr -> t

(** Ask the daemon to stop: subsequent accepts are refused and workers
    wind down.  Idempotent, safe from any domain and from signal
    handlers (also triggered by the [shutdown] method). *)
val stop : t -> unit

(** Block until {!stop} was requested, then join the workers, close
    the listening socket and unlink a Unix-domain socket path. *)
val wait : t -> unit

(** Requests answered so far (all methods, errors included). *)
val served : t -> int
