(** The [spd serve] daemon: an always-on, multi-tenant front end to one
    shared {!Spd_harness.Engine.Session}.

    One acceptor domain multiplexes the listening socket; admitted
    connections are served by a fixed crew of supervised OCaml 5
    domains speaking framed JSON-RPC (see {!Protocol}); every artefact
    request becomes an {!Spd_harness.Engine.Query.t} submitted through
    [Engine.Session.submit], so

    - concurrent identical requests deduplicate onto one computation
      (the engine's per-cell promises), and
    - per-request [fuel]/[deadline] quotas isolate tenants: a
      quota-starved request fails with an [ok:false] response while
      the shared cells stay intact.

    The daemon is crash-only: a connection that stalls past its
    per-frame deadline is evicted (counted in
    [spd.serve.conn.timeout]); a worker that dies on an unexpected
    exception is respawned by its supervisor (counted in
    [spd.serve.worker.restart]); a connection arriving while workers
    and the pending queue are full is refused with a structured
    [server busy] error carrying [retry_after_ms] (counted in
    [spd.serve.admission.rejected]); {!stop} drains in-flight requests
    under a deadline instead of dropping them.

    Methods: [ping], [health], [query], [report], [explain], [why],
    [micro], [run], [metrics], [metrics_prom], [stats], [shutdown].
    [report]
    responses reuse {!Spd_harness.Artefact.to_json} verbatim, which is
    what makes a served report byte-identical to [spd report --format
    json] (modulo the run-dependent ["metrics"] member).

    Observability: the daemon assigns every RPC a request id, runs its
    dispatch under that id as the ambient {!Spd_telemetry.Context}
    (so log records and trace spans carry it) and echoes it as the
    response envelope's top-level ["rid"] member.  Request latency is
    observed both in the global [spd.serve.request_seconds] histogram
    and per method in [spd.serve.rpc.latency.<method>]; structured
    [spd-log/1] records (see {!Spd_telemetry.Log}) cover accept,
    admission refusal, timeout eviction, worker restart, the drain
    transitions and every request.  During a drain, [ping]/[health]
    and the metrics methods still answer, so probes and scrapers keep
    working while real work is refused. *)

type t

(** Daemon version string, reported by [ping]. *)
val version : string

(** The methods the daemon understands, reported by [ping]. *)
val methods : string list

(** [start ~session addr] binds [addr], spawns the acceptor and
    [workers] serve domains (default 4) and returns immediately.

    [conn_timeout] (default 30s) bounds both how long a connection may
    take to deliver one complete frame and how long a response write
    may block.  [drain_deadline] (default 10s) bounds how long {!wait}
    lets in-flight requests finish after {!stop}.  [max_pending]
    (default 64) sets the admission-control queue depth beyond the
    worker count.  [faults] arms {!Spd_harness.Faults.worker_raise}
    for supervision tests.  [run_fuel] and [run_deadline] cap the
    budgets of inline-source [run] requests the same way the session's
    own budgets cap [query] quotas.  [slow_ms] arms the slow-request
    log: any request taking at least that many milliseconds logs an
    [rpc.slow] record with a per-stage wall-clock breakdown.  Raises
    [Failure] if the address cannot be bound (e.g. the socket path
    exists and is not a stale socket). *)
val start :
  ?workers:int ->
  ?conn_timeout:float ->
  ?drain_deadline:float ->
  ?max_pending:int ->
  ?faults:Spd_harness.Faults.t ->
  ?run_fuel:int ->
  ?run_deadline:float ->
  ?slow_ms:float ->
  session:Spd_harness.Engine.Session.t ->
  Protocol.addr -> t

(** Begin a graceful drain: new non-probe requests are refused with a
    [server shutting down] error while in-flight requests finish.
    Idempotent, safe from any domain and from signal handlers (also
    triggered by the [shutdown] method). *)
val stop : t -> unit

(** Block until {!stop} was requested, give in-flight requests up to
    the drain deadline to finish, then join the domains, close the
    listening socket and unlink a Unix-domain socket path. *)
val wait : t -> unit

(** Requests answered so far (all methods, errors included). *)
val served : t -> int

(** {1 Introspection} (also served by the [health] method) *)

(** Whether {!stop} has been requested. *)
val draining : t -> bool

(** Worker domains currently inside their supervision loop. *)
val workers_alive : t -> int

(** Times a worker was respawned after an unexpected exception. *)
val worker_restarts : t -> int

(** Connections evicted for stalling past the per-frame deadline. *)
val conn_timeouts : t -> int

(** Connections refused with [server busy]. *)
val admission_rejected : t -> int

(** Connections currently claimed by a worker. *)
val active_conns : t -> int

(** Requests currently between decode and response write. *)
val in_flight : t -> int
