(** Wire protocol of the [spd serve] daemon.

    Requests and responses are JSON-RPC 2.0 envelopes carried over a
    byte stream (Unix-domain socket by default, TCP optionally) with
    LSP-style framing: each message is preceded by a
    [Content-Length: N] header line and a blank line, both
    CRLF-terminated —

    {v
Content-Length: 68\r\n
\r\n
{"jsonrpc":"2.0","id":1,"method":"ping","params":{}}
    v}

    Unknown header lines are ignored, so the framing is forward
    compatible.  Response [result]s are documents in the repository's
    existing schemas ([spd-report/1], [spd-explain/1], [spd-micro/1],
    [spd-metrics/1]) or the daemon's own [spd-serve/1]. *)

(** Schema identifier of the daemon's own response documents:
    ["spd-serve/1"]. *)
val schema : string

(** {1 Addresses} *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host, port *)

(** [addr_of_string s] parses ["tcp:HOST:PORT"] into [Tcp] and any
    other non-empty string into [Unix_path]. *)
val addr_of_string : string -> (addr, string) result

val pp_addr : Format.formatter -> addr -> unit

(** {1 Framing} *)

(** Refuse frames larger than this (64 MiB) rather than attempting the
    allocation. *)
val max_frame : int

(** Write one framed JSON message and flush. *)
val write_frame : out_channel -> Spd_telemetry.Json.t -> unit

(** Read one framed JSON message.  [Ok None] on a clean end-of-stream
    (the peer closed between messages); [Error] on a truncated frame,
    an oversized or missing [Content-Length], or malformed JSON. *)
val read_frame :
  in_channel -> (Spd_telemetry.Json.t option, string) result

(** {1 JSON-RPC envelopes} *)

(** Standard JSON-RPC 2.0 error codes used by the daemon. *)
val parse_error : int         (* -32700 *)
val invalid_request : int     (* -32600 *)
val method_not_found : int    (* -32601 *)
val invalid_params : int      (* -32602 *)
val server_error : int        (* -32000 *)

val request :
  id:int -> meth:string -> params:Spd_telemetry.Json.t -> Spd_telemetry.Json.t

val response_ok :
  id:Spd_telemetry.Json.t -> Spd_telemetry.Json.t -> Spd_telemetry.Json.t

val response_error :
  id:Spd_telemetry.Json.t -> code:int -> string -> Spd_telemetry.Json.t

(** {1 Client} *)

type client

(** Connect to a listening daemon. *)
val connect : addr -> (client, string) result

(** [call c meth params] sends one request and waits for its response.
    [Ok result] on success; [Error] describes either a transport
    problem or the server's JSON-RPC error ("server error -32601:
    ..."). *)
val call :
  client -> string -> Spd_telemetry.Json.t ->
  (Spd_telemetry.Json.t, string) result

val close : client -> unit
