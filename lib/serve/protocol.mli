(** Wire protocol of the [spd serve] daemon.

    Requests and responses are JSON-RPC 2.0 envelopes carried over a
    byte stream (Unix-domain socket by default, TCP optionally) with
    LSP-style framing: each message is preceded by a
    [Content-Length: N] header line and a blank line, both
    CRLF-terminated —

    {v
Content-Length: 68\r\n
\r\n
{"jsonrpc":"2.0","id":1,"method":"ping","params":{}}
    v}

    Unknown header lines are ignored, so the framing is forward
    compatible — but the header section as a whole is bounded (at most
    {!max_headers} lines and {!max_header_bytes} bytes), so a header
    flood is a framing error, not unbounded memory.  Response
    [result]s are documents in the repository's existing schemas
    ([spd-report/1], [spd-explain/1], [spd-micro/1], [spd-metrics/1])
    or the daemon's own [spd-serve/1]. *)

(** Schema identifier of the daemon's own response documents:
    ["spd-serve/1"]. *)
val schema : string

(** {1 Addresses} *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host, port *)

(** [addr_of_string s] parses ["tcp:HOST:PORT"] into [Tcp] and any
    other non-empty string into [Unix_path]. *)
val addr_of_string : string -> (addr, string) result

val pp_addr : Format.formatter -> addr -> unit

(** {1 Framing} *)

(** Refuse frames larger than this (64 MiB) rather than attempting the
    allocation. *)
val max_frame : int

(** Cap on the total byte length of a frame's header section. *)
val max_header_bytes : int

(** Cap on the number of header lines in one frame. *)
val max_headers : int

(** Raised out of a {!reader}'s [fill] when the peer stalled past its
    deadline.  The framing layer never catches it: it propagates to
    whoever owns the connection. *)
exception Timeout

(** Write one framed JSON message and flush. *)
val write_frame : out_channel -> Spd_telemetry.Json.t -> unit

(** A buffered byte source for the framing layer.  Deadline
    enforcement lives in the [fill] function a caller supplies. *)
type reader

(** [reader fill] wraps a [Unix.read]-style function ([fill buf off
    len] returns the number of bytes read, 0 at end of stream). *)
val reader : (bytes -> int -> int -> int) -> reader

(** A reader over an [in_channel].  The reader buffers internally, so
    it must own the channel: create one per connection, not per
    frame. *)
val channel_reader : in_channel -> reader

(** Read one framed JSON message.  [Ok None] on a clean end-of-stream
    (the peer closed between messages); [Error] on a truncated frame,
    an oversized or missing [Content-Length], a header section past
    the caps, or malformed JSON.  {!Timeout} and [Unix.Unix_error]
    from [fill] propagate. *)
val read_frame_r :
  reader -> (Spd_telemetry.Json.t option, string) result

(** {1 JSON-RPC envelopes} *)

(** Standard JSON-RPC 2.0 error codes used by the daemon. *)
val parse_error : int         (* -32700 *)
val invalid_request : int     (* -32600 *)
val method_not_found : int    (* -32601 *)
val invalid_params : int      (* -32602 *)
val server_error : int        (* -32000 *)

(** Load-shedding codes (implementation-defined range).  [server_busy]
    responses carry [data.retry_after_ms]; both are retried by
    {!call_with_retries}. *)
val server_busy : int         (* -32001 *)
val server_shutting_down : int  (* -32002 *)

val request :
  id:int -> meth:string -> params:Spd_telemetry.Json.t -> Spd_telemetry.Json.t

(** [response_ok ?rid ~id result] builds a success envelope.  [rid] is
    the server-assigned request id, echoed as a top-level ["rid"]
    member so a client can correlate the response with the daemon's
    log records and trace spans. *)
val response_ok :
  ?rid:string ->
  id:Spd_telemetry.Json.t -> Spd_telemetry.Json.t -> Spd_telemetry.Json.t

(** [response_error ?rid ?data ~id ~code msg] builds an error
    envelope; [data] becomes the error object's "data" member when
    present, [rid] the top-level ["rid"] member. *)
val response_error :
  ?rid:string ->
  ?data:Spd_telemetry.Json.t ->
  id:Spd_telemetry.Json.t -> code:int -> string -> Spd_telemetry.Json.t

(** The ["rid"] member of a response envelope, if any. *)
val response_rid : Spd_telemetry.Json.t -> string option

(** {1 Client} *)

type client

(** A JSON-RPC error response, decoded. *)
type rpc_error = {
  code : int;
  message : string;
  retry_after_ms : int option;
      (** the server's backoff hint from [error.data.retry_after_ms] *)
}

type call_error =
  | Rpc of rpc_error  (** the server answered with an error envelope *)
  | Transport of string  (** the conversation itself failed *)

(** Renders [Rpc] errors as ["server error CODE: MESSAGE"]. *)
val error_to_string : call_error -> string

(** Connect to a listening daemon. *)
val connect : addr -> (client, string) result

(** [call_ex c meth params] sends one request and waits for its
    response, keeping the error structured. *)
val call_ex :
  client -> string -> Spd_telemetry.Json.t ->
  (Spd_telemetry.Json.t, call_error) result

(** [call c meth params] is {!call_ex} with the error rendered by
    {!error_to_string}. *)
val call :
  client -> string -> Spd_telemetry.Json.t ->
  (Spd_telemetry.Json.t, string) result

(** The server-assigned request id echoed on the last response this
    client received ([None] before the first response, or when the
    server predates rid echoing). *)
val last_rid : client -> string option

val close : client -> unit

(** [call_with_retries ~retries addr meth params] makes up to
    [retries] attempts (so [~retries:1] is a plain call), each on a
    fresh connection.  Transport failures and the {!server_busy} /
    {!server_shutting_down} errors are retried after an exponential
    backoff starting at [base_delay] (default 50ms) and doubling per
    attempt; a [retry_after_ms] hint from the server raises the floor
    of that delay.  Other JSON-RPC errors fail immediately. *)
val call_with_retries :
  ?retries:int -> ?base_delay:float ->
  addr -> string -> Spd_telemetry.Json.t ->
  (Spd_telemetry.Json.t, string) result
