(* The data and rendering layer behind `spd top`: poll one daemon's
   [health] + [metrics] methods, difference consecutive samples, and
   render a fixed-width status frame.  Kept CLI-free so the tests can
   exercise sampling and rendering against a local server without a
   terminal. *)

module Json = Spd_telemetry.Json
module Metrics = Spd_telemetry.Metrics
module Clock = Spd_telemetry.Clock

type sample = {
  at : float;  (* monotonic, for rate windows *)
  health : (string * Json.t) list;
  counters : (string * int) list;
  hists : (string * Metrics.hist) list;
}

let fetch (c : Protocol.client) : (sample, string) result =
  match Protocol.call c "health" (Json.Obj []) with
  | Error e -> Error e
  | Ok h -> (
      match Protocol.call c "metrics" (Json.Obj []) with
      | Error e -> Error e
      | Ok m ->
          let health = match h with Json.Obj kvs -> kvs | _ -> [] in
          let counters =
            match Json.member "counters" m with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) ->
                    match v with Json.Int n -> Some (k, n) | _ -> None)
                  kvs
            | _ -> []
          in
          let hists =
            match Json.member "histograms" m with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) ->
                    Option.map (fun h -> (k, h)) (Metrics.hist_of_json v))
                  kvs
            | _ -> []
          in
          Ok { at = Clock.now (); health; counters; hists })

let counter s name =
  match List.assoc_opt name s.counters with Some n -> n | None -> 0

let hist s name = List.assoc_opt name s.hists

(* Health-doc accessors, defensive about shape so a frame never dies on
   a daemon running a different version. *)
let h_int s name =
  match List.assoc_opt name s.health with
  | Some (Json.Int n) -> n
  | Some (Json.Float f) -> int_of_float f
  | _ -> 0

let h_float s name =
  match Option.bind (List.assoc_opt name s.health) Json.to_number with
  | Some f -> f
  | None -> 0.0

let h_bool s name =
  match List.assoc_opt name s.health with
  | Some (Json.Bool b) -> b
  | _ -> false

(* [window prev cur] is the histogram of observations made between the
   two samples: a bucket-wise subtraction.  Falls back to the cumulative
   [cur] when there is no previous sample or when any count went
   backwards (daemon restart, metrics reset). *)
let window (prev : sample option) (cur : sample) name : Metrics.hist option =
  match hist cur name with
  | None -> None
  | Some h -> (
      match Option.bind prev (fun p -> hist p name) with
      | None -> Some h
      | Some p ->
          if
            Array.length p.buckets <> Array.length h.buckets
            || h.count < p.count
          then Some h
          else
            let counts =
              Array.init (Array.length h.counts) (fun i ->
                  h.counts.(i) - p.counts.(i))
            in
            if Array.exists (fun c -> c < 0) counts then Some h
            else
              Some
                {
                  Metrics.buckets = h.buckets;
                  counts;
                  count = h.count - p.count;
                  sum = h.sum -. p.sum;
                })

let rate (prev : sample option) (cur : sample) name : float option =
  match prev with
  | None -> None
  | Some p ->
      let dt = cur.at -. p.at in
      if dt <= 0.0 then None
      else Some (float_of_int (counter cur name - counter p name) /. dt)

let latency_prefix = "spd.serve.rpc.latency."

(* Per-method latency rows for the current window, busiest first;
   methods with no traffic yet are dropped. *)
let latency_rows (prev : sample option) (cur : sample) :
    (string * Metrics.hist) list =
  List.filter_map
    (fun (name, _) ->
      if String.starts_with ~prefix:latency_prefix name then
        let meth =
          String.sub name (String.length latency_prefix)
            (String.length name - String.length latency_prefix)
        in
        match window prev cur name with
        | Some h when h.Metrics.count > 0 -> Some (meth, h)
        | _ -> None
      else None)
    cur.hists
  |> List.sort (fun (_, a) (_, b) ->
         compare b.Metrics.count a.Metrics.count)

let pct h q =
  match Metrics.quantile h q with
  | Some s -> Printf.sprintf "%8.2f" (s *. 1000.0)
  | None -> Printf.sprintf "%8s" "-"

let render ?prev (s : sample) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  let uptime = h_float s "uptime_seconds" in
  line "spd top — uptime %.0fs   workers %d/%d (restarts %d)%s" uptime
    (h_int s "workers_alive") (h_int s "workers")
    (h_int s "worker_restarts")
    (if h_bool s "draining" then "   DRAINING" else "");
  line "requests  served %d   in-flight %d   conns %d active / %d pending"
    (h_int s "served") (h_int s "in_flight")
    (h_int s "active_connections")
    (h_int s "pending_connections");
  (match prev with
  | Some p ->
      let dt = s.at -. p.at in
      let r name = Option.value ~default:0.0 (rate prev s name) in
      line "window    %.1fs   %.1f rps   %.1f err/s   refused %d   evicted %d"
        dt
        (r "spd.serve.requests")
        (r "spd.serve.errors")
        (counter s "spd.serve.admission.rejected"
        - counter p "spd.serve.admission.rejected")
        (counter s "spd.serve.conn.timeout"
        - counter p "spd.serve.conn.timeout")
  | None ->
      line "window    —  (first sample: totals below are cumulative)");
  let hits = counter s "spd.engine.cache.hits" in
  let misses = counter s "spd.engine.cache.misses" in
  (if hits + misses > 0 then
     line "cache     %.1f%% hit (%d hits / %d misses)"
       (100.0 *. float_of_int hits /. float_of_int (hits + misses))
       hits misses);
  line "log       %d records, %d dropped" (h_int s "log_records")
    (h_int s "log_dropped");
  let rows = latency_rows prev s in
  if rows <> [] then begin
    line "";
    line "%-14s %8s %8s %8s %8s" "latency (ms)" "p50" "p95" "p99" "count";
    List.iter
      (fun (meth, h) ->
        line "  %-12s %s %s %s %8d" meth (pct h 0.50) (pct h 0.95)
          (pct h 0.99) h.Metrics.count)
      rows
  end;
  Buffer.contents b
