(** matmul300 — dense matrix multiply over 300 words of matrix data.

    Three 10x10 matrices held in flat arrays passed as parameters (the
    NRC idiom that defeats static disambiguation), with an in-place
    inner-product update and a checksum pass carrying the ambiguous
    store-then-load pattern SpD targets.  The reference workload for
    [spd explain]; not part of the paper's Table 6-2 set. *)

val source_body : string
val source : string
val workload : Workload.t
