(** The benchmark registry: Table 6-2 of the paper. *)

let all : Workload.t list =
  [
    Adi.workload;
    Bcuint.workload;
    Fft.workload;
    Moment.workload;
    Smooft.workload;
    Solvde.workload;
    Perm.workload;
    Queen.workload;
    Quick.workload;
    Tree_sort.workload;
    Espresso.workload;
  ]

(** Workloads outside the paper's Table 6-2 set: resolvable by name (the
    [spd] CLI, [spd explain]) but excluded from [all]/[names] so the
    paper artefacts, bench reports and their caches are unaffected. *)
let extras : Workload.t list = [ Matmul.workload ]

let nrc = List.filter (fun (w : Workload.t) -> w.suite = Workload.Nrc) all

let by_name name =
  match
    List.find_opt (fun (w : Workload.t) -> w.name = name) (all @ extras)
  with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "unknown workload %s" name)

let names = List.map (fun (w : Workload.t) -> w.name) all

(** Source line count, for the Table 6-2 printout. *)
let lines (w : Workload.t) =
  String.split_on_char '\n' w.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
