(** matmul300 — dense matrix multiply over 300 words of matrix data.

    Three 10x10 matrices held in flat arrays passed as parameters (the
    NRC idiom that defeats static disambiguation).  The inner product
    updates [c] in place, so every innermost traversal carries ambiguous
    WAR arcs from the [a]/[b] loads to the [c] store; the checksum pass
    then stores to [c] and immediately loads [b] — the ambiguous RAW
    pattern SpD's forwarding transformation targets.  Small enough to
    simulate instantly, which makes it the reference workload for
    [spd explain]. *)

let source_body =
  {|
double ma[100];
double mb[100];
double mc[100];

void matmul(double a[], double b[], double c[], int n) {
  int i; int j; int k;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      c[i * n + j] = 0.0;
      for (k = 0; k < n; k = k + 1) {
        c[i * n + j] = c[i * n + j] + a[i * n + k] * b[k * n + j];
      }
    }
  }
}

/* scale the product in place; the store to c[i] is ambiguously aliased
   with the load from b[i] that follows it (RAW on alias) */
double scale(double c[], double b[], int nn) {
  int i;
  double chk;
  chk = 0.0;
  for (i = 0; i < nn; i = i + 1) {
    c[i] = c[i] * 0.5 + 1.0;
    chk = chk + c[i] * b[i];
  }
  return chk;
}

int main() {
  int i;
  double chk;
  for (i = 0; i < 100; i = i + 1) {
    ma[i] = (i % 9) * 0.125 + 0.25;
    mb[i] = (i % 7) * 0.25 - 0.5;
  }
  matmul(ma, mb, mc, 10);
  chk = scale(mc, mb, 100);
  print_float(chk);
  return (int)(chk * 0.01);
}
|}

let source = source_body

let workload =
  {
    Workload.name = "matmul300";
    suite = Workload.Nrc;
    description = "Dense 10x10 matrix multiply (300 words of data).";
    source;
  }
