(** The benchmark registry: Table 6-2 of the paper. *)


(** The benchmark registry: Table 6-2 of the paper. *)
val all : Workload.t list

(** Workloads outside the paper's Table 6-2 set: resolvable by name (the
    [spd] CLI, [spd explain]) but excluded from [all]/[names] so the
    paper artefacts, bench reports and their caches are unaffected. *)
val extras : Workload.t list

val nrc : Workload.t list
val by_name : string -> Workload.t
val names : string list

(** Source line count, for the Table 6-2 printout. *)
val lines : Workload.t -> int
