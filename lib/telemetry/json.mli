(** A minimal JSON value type with a printer and a parser.

    The repository deliberately avoids external JSON dependencies; this
    module is the single implementation shared by the trace writer, the
    machine-readable report emitters and the test-suite readers that
    validate their output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact, valid JSON.  Non-finite floats render as [null]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse a complete JSON document (trailing whitespace allowed,
    trailing garbage rejected). *)
val of_string : string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_number : t -> float option
val to_string_opt : t -> string option
