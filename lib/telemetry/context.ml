(** Ambient per-domain request context (see the .mli). *)

let key : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get () = Domain.DLS.get key

let with_id rid f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some rid);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
