(** Monotonic time for deadlines, uptimes and latency measurement.

    [Unix.gettimeofday] follows the system wall clock, which steps
    under NTP corrections and manual adjustment — a deadline computed
    against it can fire years early or never.  {!now} reads
    [CLOCK_MONOTONIC] instead: its epoch is arbitrary (only
    differences are meaningful), but it never jumps.

    Rule of thumb: use {!now} whenever two readings are subtracted
    (timeouts, histograms, uptime) and {!wall} when a timestamp has to
    name a calendar moment (log records, snapshot file names). *)

(** Seconds on the process's monotonic clock.  The epoch is arbitrary;
    only differences between two readings are meaningful. *)
val now : unit -> float

(** Seconds since the Unix epoch ([Unix.gettimeofday]), for timestamps
    that must name a calendar moment. *)
val wall : unit -> float
