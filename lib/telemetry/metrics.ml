(** A process-global metrics registry: named counters and fixed-bucket
    histograms.

    Designed for simulator and scheduler hot loops: every metric is
    sharded per domain (the writing domain hashes into one of
    {!shards} atomic cells, so concurrent writers almost never contend)
    and shards are merged only on {!snapshot}.  Registration is
    idempotent — [counter "x"] returns the same counter everywhere —
    so instrumentation points never need to thread handles around.

    Snapshots are deterministically ordered (sorted by metric name), so
    rendered output is stable across job counts and platforms. *)

let shards = 64  (* power of two; domains hash into cells *)
let shard () = (Domain.self () :> int) land (shards - 1)

type counter = { c_cells : int Atomic.t array }

type histogram = {
  bounds : float array;  (** ascending upper bounds; one overflow bucket *)
  h_counts : int Atomic.t array array;  (** shard -> bucket *)
  h_sums : float Atomic.t array;  (** per-shard sum of observations *)
}

type metric = C of counter | H of histogram

let mu = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let atomic_array n = Array.init n (fun _ -> Atomic.make 0)

(* [check] raises on kind/bucket clashes, so the unlock must be in a
   [finally] — a bare lock/unlock pair would leave the registry mutex
   held and poison every later registration. *)
let register name build check =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> check m
  | None ->
      let m = build () in
      Hashtbl.replace registry name m;
      m

(** Get-or-register the counter called [name]. *)
let counter name : counter =
  match
    register name
      (fun () -> C { c_cells = atomic_array shards })
      (function
        | C _ as m -> m
        | H _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram"))
  with
  | C c -> c
  | H _ -> assert false

(** Get-or-register the histogram called [name] with the given ascending
    bucket upper bounds (an overflow bucket is implicit). *)
let histogram ~buckets name : histogram =
  let sorted = Array.copy buckets in
  Array.sort compare sorted;
  if sorted <> buckets || Array.length buckets = 0 then
    invalid_arg ("Metrics.histogram: " ^ name ^ ": buckets must be \
                  non-empty and ascending");
  match
    register name
      (fun () ->
        H
          {
            bounds = Array.copy buckets;
            h_counts =
              Array.init shards (fun _ ->
                  atomic_array (Array.length buckets + 1));
            h_sums = Array.init shards (fun _ -> Atomic.make 0.0);
          })
      (function
        | H h as m ->
            if h.bounds <> buckets then
              invalid_arg
                ("Metrics.histogram: " ^ name
               ^ " already registered with different buckets");
            m
        | C _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter"))
  with
  | H h -> h
  | C _ -> assert false

(** Seconds-scale wall-clock buckets, for stage timers. *)
let time_buckets =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0 |]

(** Fraction-scale buckets (0..1], for occupancies and hit rates. *)
let fraction_buckets = [| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 |]

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_cells.(shard ()) by)

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

(* linear scan: bucket arrays are tiny and this sits in hot loops *)
let bucket_of bounds x =
  let n = Array.length bounds in
  let rec go i = if i >= n || x <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h x =
  let s = shard () in
  ignore (Atomic.fetch_and_add h.h_counts.(s).(bucket_of h.bounds x) 1);
  atomic_add_float h.h_sums.(s) x

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type hist = {
  buckets : float array;  (** upper bounds, ascending *)
  counts : int array;  (** per bucket, plus one overflow cell *)
  count : int;  (** total observations *)
  sum : float;  (** sum of observations *)
}

type value = Counter of int | Hist of hist

type snapshot = (string * value) list

let counter_value (c : counter) =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_cells

let hist_of_shard (h : histogram) s : hist =
  let counts = Array.map Atomic.get h.h_counts.(s) in
  {
    buckets = Array.copy h.bounds;
    counts;
    count = Array.fold_left ( + ) 0 counts;
    sum = Atomic.get h.h_sums.(s);
  }

(** Merge two histogram snapshots over the same buckets (associative and
    commutative up to float-addition rounding of [sum]). *)
let merge_hist (a : hist) (b : hist) : hist =
  if a.buckets <> b.buckets then
    invalid_arg "Metrics.merge_hist: bucket mismatch";
  {
    buckets = a.buckets;
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum = a.sum +. b.sum;
  }

let hist_value (h : histogram) : hist =
  let acc = ref (hist_of_shard h 0) in
  for s = 1 to shards - 1 do
    acc := merge_hist !acc (hist_of_shard h s)
  done;
  !acc

(** Merged view of every registered metric, sorted by name. *)
let snapshot () : snapshot =
  Mutex.lock mu;
  let entries = Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [] in
  Mutex.unlock mu;
  entries
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | C c -> Counter (counter_value c)
           | H h -> Hist (hist_value h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Zero every registered metric (the registry itself is kept, so
    existing handles stay valid).  Test isolation helper. *)
let reset () =
  Mutex.lock mu;
  Hashtbl.iter
    (fun _ -> function
      | C c -> Array.iter (fun a -> Atomic.set a 0) c.c_cells
      | H h ->
          Array.iter (Array.iter (fun a -> Atomic.set a 0)) h.h_counts;
          Array.iter (fun a -> Atomic.set a 0.0) h.h_sums)
    registry;
  Mutex.unlock mu

(** Quantile estimate from bucket counts, Prometheus-style: find the
    bucket where the cumulative count crosses [q * count] and
    interpolate linearly inside it (the first bucket's lower bound is
    0).  The overflow bucket has no upper bound, so a quantile landing
    there reports the last finite bound — a known underestimate, the
    standard convention.  [None] on an empty histogram. *)
let quantile (h : hist) q : float option =
  if h.count = 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.count in
    let n = Array.length h.buckets in
    let rec go i cum =
      let c = h.counts.(i) in
      let cum' = cum +. float_of_int c in
      if (cum' >= target && c > 0) || i = n then
        if i = n then Some h.buckets.(n - 1)
        else begin
          let lo = if i = 0 then 0.0 else h.buckets.(i - 1) in
          let hi = h.buckets.(i) in
          Some (lo +. ((hi -. lo) *. ((target -. cum) /. float_of_int c)))
        end
      else go (i + 1) cum'
    in
    go 0 0.0
  end

(** Parse a {!hist_json} rendering back into a {!hist} — what [spd top]
    does to a served [spd-metrics/1] document.  [None] when the shape
    is wrong (missing members, counts/buckets length mismatch). *)
let hist_of_json (j : Json.t) : hist option =
  let numbers name =
    match Option.bind (Json.member name j) Json.to_list with
    | None -> None
    | Some l ->
        let xs = List.filter_map Json.to_number l in
        if List.length xs = List.length l then Some xs else None
  in
  match (numbers "buckets", numbers "counts") with
  | Some bs, Some cs when List.length cs = List.length bs + 1 ->
      let counts = Array.of_list (List.map int_of_float cs) in
      if Array.exists (fun c -> c < 0) counts then None
      else
        Some
          {
            buckets = Array.of_list bs;
            counts;
            count = Array.fold_left ( + ) 0 counts;
            sum =
              (match
                 Option.bind (Json.member "sum" j) Json.to_number
               with
              | Some s -> s
              | None -> 0.0);
          }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_value ppf = function
  | Counter n -> Fmt.pf ppf "%d" n
  | Hist h -> Fmt.pf ppf "count=%d sum=%.6g" h.count h.sum

(** One [name=value] line per metric, sorted by name — deterministic
    rendering for logs and the [timings] artefact. *)
let pp_snapshot ppf (s : snapshot) =
  List.iter (fun (name, v) -> Fmt.pf ppf "%s=%a@." name pp_value v) s

let hist_json (h : hist) =
  Json.Obj
    [
      ("buckets", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.buckets)));
      ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
    ]

(** Schema-versioned JSON rendering of a snapshot: counters and
    histograms under separate keys, each sorted by name. *)
let snapshot_json (s : snapshot) =
  let counters =
    List.filter_map
      (function name, Counter n -> Some (name, Json.Int n) | _ -> None)
      s
  in
  let hists =
    List.filter_map
      (function name, Hist h -> Some (name, hist_json h) | _ -> None)
      s
  in
  Json.Obj
    [
      ("schema", Json.String "spd-metrics/1");
      ("counters", Json.Obj counters);
      ("histograms", Json.Obj hists);
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (version 0.0.4): what `spd call metrics
   --format prometheus` and the daemon's [metrics_prom] method serve.
   Metric names mangle every character outside [a-zA-Z0-9_:] to '_'
   (so "spd.serve.rpc.latency.query" scrapes as
   "spd_serve_rpc_latency_query"); histograms render cumulatively with
   the mandatory "+Inf" bucket, _sum and _count. *)

let prom_name name =
  let mangled =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  match mangled.[0] with '0' .. '9' -> "_" ^ mangled | _ -> mangled

(* shortest float rendering Prometheus parses back exactly *)
let prom_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

(** Render a snapshot in the Prometheus text exposition format. *)
let prometheus (s : snapshot) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pn = prom_name name in
      match v with
      | Counter n ->
          Printf.bprintf b "# TYPE %s counter\n%s %d\n" pn pn n
      | Hist h ->
          Printf.bprintf b "# TYPE %s histogram\n" pn;
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.counts.(i);
              Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" pn
                (prom_float bound) !cum)
            h.buckets;
          Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" pn h.count;
          Printf.bprintf b "%s_sum %s\n" pn (prom_float h.sum);
          Printf.bprintf b "%s_count %d\n" pn h.count)
    s;
  Buffer.contents b
