(** Ambient per-domain request context.

    The serving path assigns every RPC a request id and runs its
    dispatch under {!with_id}; anything that executes downstream in the
    same domain — engine cells, pipeline stages, trace spans, log
    records — can read the id back with {!get} without the id being
    threaded through every signature.  {!Trace} and {!Log} do exactly
    that, which is how one request id correlates a JSON-RPC response,
    its log lines and its trace spans.

    The context is domain-local storage: a value set in one domain is
    invisible to others.  A computation whose result is shared across
    requests (the engine's promise-table dedup) records the id of the
    request that actually computed it; piggybacking requests keep
    their own id on their response envelope. *)

(** The ambient request id of the calling domain, if any. *)
val get : unit -> string option

(** [with_id rid f] runs [f] with [rid] as the ambient request id,
    restoring the previous value afterwards (also on raise). *)
val with_id : string -> (unit -> 'a) -> 'a
