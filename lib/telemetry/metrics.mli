(** A process-global metrics registry: named counters and fixed-bucket
    histograms.

    Metrics are sharded per domain (writers hash into one of {!shards}
    atomic cells) and merged only on {!snapshot}, so instrumented hot
    loops pay one uncontended atomic add per event.  Registration is
    idempotent: [counter "x"] returns the same counter at every call
    site.  Snapshots are sorted by name, so rendered output is
    deterministic. *)

val shards : int

type counter
type histogram

(** Get-or-register the counter called [name].  Raises
    [Invalid_argument] if [name] is already a histogram. *)
val counter : string -> counter

(** Get-or-register the histogram called [name] with the given
    ascending bucket upper bounds (an implicit overflow bucket is
    added).  Raises [Invalid_argument] on empty/unsorted buckets or a
    redefinition with different buckets. *)
val histogram : buckets:float array -> string -> histogram

(** Seconds-scale wall-clock buckets, for stage timers. *)
val time_buckets : float array

(** Fraction-scale buckets (0..1], for occupancies and hit rates. *)
val fraction_buckets : float array

val incr : ?by:int -> counter -> unit
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist = {
  buckets : float array;  (** upper bounds, ascending *)
  counts : int array;  (** per bucket, plus one overflow cell *)
  count : int;  (** total observations *)
  sum : float;  (** sum of observations *)
}

type value = Counter of int | Hist of hist
type snapshot = (string * value) list

(** Merge two histogram snapshots over the same buckets — associative
    and commutative (up to float-addition rounding of [sum]); this is
    exactly the operation {!snapshot} folds over the per-domain
    shards.  Raises [Invalid_argument] on a bucket mismatch. *)
val merge_hist : hist -> hist -> hist

(** [quantile h q] estimates the [q]-quantile (clamped to [0..1]) of a
    histogram from its bucket counts: linear interpolation inside the
    bucket where the cumulative count crosses [q * count], with 0 as
    the first bucket's lower bound.  A quantile landing in the
    overflow bucket reports the last finite bound (the standard
    underestimate).  [None] on an empty histogram. *)
val quantile : hist -> float -> float option

(** Parse a {!hist_json} rendering back into a {!hist}; [None] when
    the shape is wrong. *)
val hist_of_json : Json.t -> hist option

(** Merged view of every registered metric, sorted by name. *)
val snapshot : unit -> snapshot

(** Zero every registered metric; handles stay valid. *)
val reset : unit -> unit

(** One [name=value] line per metric, sorted by name. *)
val pp_snapshot : Format.formatter -> snapshot -> unit

val hist_json : hist -> Json.t

(** Schema-versioned JSON ([spd-metrics/1]) rendering of a snapshot. *)
val snapshot_json : snapshot -> Json.t

(** Render a snapshot in the Prometheus text exposition format
    (version 0.0.4): dots in metric names mangle to underscores,
    histograms render as cumulative [_bucket{le="..."}] series with
    the mandatory [+Inf] bucket, [_sum] and [_count]. *)
val prometheus : snapshot -> string
