(** Span-based tracing with Chrome trace-event output.

    Process-global, off by default; a disabled {!with_span} costs one
    atomic load.  Recording is safe from any domain — each event
    carries the recording domain's id as its [tid], so Perfetto renders
    one track per domain. *)

type event = {
  name : string;
  ts : float;  (** begin, microseconds since [start] *)
  dur : float;  (** duration, microseconds *)
  tid : int;  (** id of the domain that ran the span *)
  args : (string * Json.t) list;
}

val enabled : unit -> bool

(** Bound the in-memory event store (default 1,000,000) — an always-on
    daemon traces for its whole lifetime, so past the cap new events
    are counted in {!dropped} instead of growing memory.  The trace
    document reports a nonzero drop count under
    [otherData.droppedEvents]. *)
val set_capacity : int -> unit

(** Events lost to the capacity cap since {!start}. *)
val dropped : unit -> int

(** Clear recorded events (and the drop counter), reset the clock
    epoch and enable tracing.  Timestamps use the monotonic
    {!Clock}. *)
val start : unit -> unit

val stop : unit -> unit

(** [with_span ~name f] runs [f]; when tracing is enabled, records a
    complete trace event for it (also when [f] raises).  When the
    calling domain has an ambient {!Context} request id and [args]
    does not already carry a ["rid"], the id is attached — this is
    what correlates engine cell/stage spans with the server-side
    request span that caused them. *)
val with_span : ?args:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a

(** Mark an instantaneous event (duration 0). *)
val instant : ?args:(string * Json.t) list -> string -> unit

(** All events recorded since [start], in begin-timestamp order. *)
val events : unit -> event list

(** The Chrome trace-event document for everything recorded so far. *)
val to_json : unit -> Json.t

(** Write the trace to [path] (Chrome trace-event JSON, loadable in
    Perfetto / chrome://tracing). *)
val write : string -> unit

(** [capture path f] runs [f] with tracing enabled when [path] is
    [Some file], writing the trace to [file] even when [f] raises —
    the crash-safe form of [start]/[stop]/[write] used by the CLIs'
    [--trace] flag. *)
val capture : string option -> (unit -> 'a) -> 'a
