(** Leveled structured logging: JSON-lines records under the
    [spd-log/1] schema.

    Each record is one compact JSON object per line:

    {v
    {"schema":"spd-log/1","ts":1754650000.123,"level":"info",
     "event":"rpc","domain":3,"rid":"r812-42","method":"query",...}
    v}

    Reserved members, present on every record:
    - ["schema"]: always ["spd-log/1"]
    - ["ts"]: wall-clock seconds since the Unix epoch (float)
    - ["level"]: one of ["error"], ["warn"], ["info"], ["debug"]
    - ["event"]: a stable dot-separated event name, e.g. ["rpc.slow"]
    - ["domain"]: the id of the domain that emitted the record
    - ["rid"]: the ambient {!Context} request id, when one is set

    Caller-supplied fields follow; they must not reuse the reserved
    names.

    The logger is process-global.  A record below the current level
    costs one atomic load.  An emitted record is rendered to its line
    by the emitting domain, outside any lock; the only shared step is
    one locked append to the sink's buffered channel — hot paths pay
    one enqueue.  [error]/[warn] records are flushed through to the OS
    immediately; [info]/[debug] ride the channel buffer until
    {!flush}/{!close} (or process exit — an [at_exit] hook flushes).

    The default sink is [stderr] at level {!Warn}, so subsystems that
    replaced ad-hoc [eprintf] diagnostics with [Log] calls stay
    visible without configuration. *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string

(** Case-insensitive; accepts the {!level_to_string} spellings plus
    ["warning"]. *)
val level_of_string : string -> (level, string) result

(** {1 Configuration} *)

(** Records strictly below this severity are dropped.  Default
    {!Warn}. *)
val set_level : level -> unit

val level : unit -> level

(** Whether a record at this level would currently be emitted. *)
val enabled : level -> bool

(** Route records to [path] (append mode, created if missing), owned
    by the logger: {!close} closes it.  Replaces (and closes) a
    previously owned sink. *)
val to_file : string -> (unit, string) result

(** Flush the sink, close it if owned, and revert to [stderr]. *)
val close : unit -> unit

(** Flush the sink's channel buffer. *)
val flush : unit -> unit

(** [with_file path f] runs [f] logging to [path] when it is
    [Some file], closing the sink afterwards even when [f] raises —
    the crash-safe form the daemon's [--log] flag uses.  Raises
    [Failure] if the file cannot be opened. *)
val with_file : string option -> (unit -> 'a) -> 'a

(** {1 Emission} *)

(** [log level event fields] appends one record.  [fields] must not
    use the reserved member names (see above). *)
val log : level -> string -> (string * Json.t) list -> unit

val err : string -> (string * Json.t) list -> unit
val warn : string -> (string * Json.t) list -> unit
val info : string -> (string * Json.t) list -> unit
val debug : string -> (string * Json.t) list -> unit

(** {1 Introspection} *)

(** Records emitted (passed the level gate) since process start. *)
val records : unit -> int

(** Records lost to sink write failures (e.g. a full disk). *)
val dropped : unit -> int

val schema : string
