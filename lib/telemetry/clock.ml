(** Monotonic time (see the .mli).  The stub reads [CLOCK_MONOTONIC];
    platforms without it fall back to [gettimeofday] inside the stub,
    so [now] is always safe to call. *)

external now : unit -> float = "spd_clock_monotonic"

let wall = Unix.gettimeofday
