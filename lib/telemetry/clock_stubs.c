/* Monotonic clock primitive for Telemetry.Clock.

   CLOCK_MONOTONIC never jumps when the system wall clock is stepped
   (NTP, manual adjustment), which is what deadlines, uptimes and
   latency measurements need.  The gettimeofday fallback only exists
   for platforms without clock_gettime; on those, Clock.now degrades
   to a wall clock. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value spd_clock_monotonic(value unit)
{
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
  (void)unit;
}
