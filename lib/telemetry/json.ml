(** A minimal JSON value type with a printer and a parser.

    The repository deliberately avoids external JSON dependencies; this
    module is the single implementation shared by the trace writer, the
    machine-readable report emitters and the test-suite readers that
    validate their output.  It covers exactly the JSON the toolchain
    produces: finite numbers, UTF-8 strings, arrays and objects. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* A float rendered as a valid JSON number: shortest round-trip form,
   non-finite values degrade to null (JSON has no inf/nan). *)
let float_token f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_token f)
  | String s -> escape_string b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

let pp ppf v = Fmt.string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing: a small recursive-descent reader. *)

exception Parse_error of string * int  (* message, byte offset *)

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None
let err c msg = raise (Parse_error (msg, c.i))

let advance c = c.i <- c.i + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') -> advance c; skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> err c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else err c (Printf.sprintf "expected %s" word)

(* encode a Unicode scalar value as UTF-8 *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ('0' .. '9' as ch) -> v := (!v * 16) + (Char.code ch - 48)
    | Some ('a' .. 'f' as ch) -> v := (!v * 16) + (Char.code ch - 87)
    | Some ('A' .. 'F' as ch) -> v := (!v * 16) + (Char.code ch - 55)
    | _ -> err c "bad \\u escape");
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> err c "unterminated string"
    | Some '"' -> advance c; Buffer.contents b
    | Some '\\' -> (
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char b '"'; advance c
        | Some '\\' -> Buffer.add_char b '\\'; advance c
        | Some '/' -> Buffer.add_char b '/'; advance c
        | Some 'n' -> Buffer.add_char b '\n'; advance c
        | Some 'r' -> Buffer.add_char b '\r'; advance c
        | Some 't' -> Buffer.add_char b '\t'; advance c
        | Some 'b' -> Buffer.add_char b '\b'; advance c
        | Some 'f' -> Buffer.add_char b '\012'; advance c
        | Some 'u' ->
            advance c;
            let u = hex4 c in
            (* surrogate pair *)
            if u >= 0xd800 && u <= 0xdbff then begin
              expect c '\\';
              expect c 'u';
              let lo = hex4 c in
              if lo < 0xdc00 || lo > 0xdfff then err c "bad surrogate pair";
              add_utf8 b
                (0x10000 + (((u - 0xd800) lsl 10) lor (lo - 0xdc00)))
            end
            else add_utf8 b u
        | _ -> err c "bad escape");
        go ())
    | Some ch -> Buffer.add_char b ch; advance c; go ()
  in
  go ()

let parse_number c =
  let start = c.i in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let tok = String.sub c.s start (c.i - start) in
  match int_of_string_opt tok with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> err c (Printf.sprintf "bad number %S" tok))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> err c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> err c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((k, v) :: acc)
          | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
          | _ -> err c "expected ',' or '}'"
        in
        members []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> err c (Printf.sprintf "unexpected character %C" ch)

let of_string s : (t, string) result =
  let c = { s; i = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.i <> String.length s then err c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, i) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" i msg)

(* ------------------------------------------------------------------ *)
(* Accessors, for the in-repo readers (tests, trace validation). *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_number = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
