(** Leveled structured logging (see the .mli for the spd-log/1 record
    layout and the buffering contract). *)

let schema = "spd-log/1"

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | _ ->
      Stdlib.Error
        (Printf.sprintf "unknown log level %S (one of: error, warn, info, \
                         debug)" s)

(* ------------------------------------------------------------------ *)
(* State.  The threshold is an atomic so the level gate on a disabled
   record is one load; the sink itself is guarded by [mu]. *)

let threshold = Atomic.make (severity Warn)

let set_level l = Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let enabled l = severity l <= Atomic.get threshold

type sink = { oc : out_channel; owned : bool }

let mu = Mutex.create ()
let sink = ref { oc = stderr; owned = false }
let n_records = Atomic.make 0
let n_dropped = Atomic.make 0

let records () = Atomic.get n_records
let dropped () = Atomic.get n_dropped

let flush_sink () = try Stdlib.flush !sink.oc with Sys_error _ -> ()

let flush () =
  Mutex.lock mu;
  flush_sink ();
  Mutex.unlock mu

let () = at_exit flush

let close_locked () =
  flush_sink ();
  if !sink.owned then (try close_out_noerr !sink.oc with Sys_error _ -> ());
  sink := { oc = stderr; owned = false }

let close () =
  Mutex.lock mu;
  close_locked ();
  Mutex.unlock mu

let to_file path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | exception Sys_error e -> Stdlib.Error e
  | oc ->
      Mutex.lock mu;
      close_locked ();
      sink := { oc; owned = true };
      Mutex.unlock mu;
      Ok ()

let with_file path f =
  match path with
  | None -> f ()
  | Some file -> (
      match to_file file with
      | Stdlib.Error e ->
          failwith (Printf.sprintf "cannot open log %s: %s" file e)
      | Ok () -> Fun.protect ~finally:close f)

(* ------------------------------------------------------------------ *)
(* Emission.  The record is rendered by the calling domain outside the
   lock; only the append to the (buffered) channel is serialized. *)

let log lvl event fields =
  if severity lvl <= Atomic.get threshold then begin
    Atomic.incr n_records;
    let base =
      [
        ("schema", Json.String schema);
        ("ts", Json.Float (Clock.wall ()));
        ("level", Json.String (level_to_string lvl));
        ("event", Json.String event);
        ("domain", Json.Int (Domain.self () :> int));
      ]
    in
    let rid =
      match Context.get () with
      | Some r -> [ ("rid", Json.String r) ]
      | None -> []
    in
    let line = Json.to_string (Json.Obj (base @ rid @ fields)) in
    Mutex.lock mu;
    (try
       output_string !sink.oc line;
       output_char !sink.oc '\n';
       (* diagnostics must reach the OS before a crash; bulk records
          ride the channel buffer *)
       if severity lvl <= severity Warn then Stdlib.flush !sink.oc
     with Sys_error _ -> Atomic.incr n_dropped);
    Mutex.unlock mu
  end

let err event fields = log Error event fields
let warn event fields = log Warn event fields
let info event fields = log Info event fields
let debug event fields = log Debug event fields
