(** Span-based tracing with Chrome trace-event output.

    [with_span ~name f] measures [f] and, when tracing is enabled,
    records a complete ("ph":"X") trace event carrying the span's name,
    begin timestamp, duration, the process id and the id of the domain
    that ran it.  The resulting file ([write]) loads directly into
    Perfetto / chrome://tracing, where per-domain tracks make a
    domain-parallel grid run visually inspectable.

    Tracing is process-global and off by default; a disabled
    [with_span] costs one atomic load.  Event recording is safe from
    any domain. *)

type event = {
  name : string;
  ts : float;  (** begin, microseconds since [start] *)
  dur : float;  (** duration, microseconds *)
  tid : int;  (** id of the domain that ran the span *)
  args : (string * Json.t) list;
}

let enabled_flag = Atomic.make false
let mu = Mutex.create ()
let events_rev : event list ref = ref []
let n_events = ref 0
let epoch = ref 0.0

(* An always-on daemon traces for its whole lifetime, so the event
   store is bounded: past [capacity], new events are counted in
   [n_dropped] instead of growing memory without bound. *)
let capacity = Atomic.make 1_000_000
let n_dropped = Atomic.make 0

let set_capacity n = Atomic.set capacity (max 0 n)
let dropped () = Atomic.get n_dropped

(* the monotonic clock: span durations and deadlines must not jump
   when the system wall clock is adjusted *)
let now_us () = Clock.now () *. 1e6

let enabled () = Atomic.get enabled_flag

let start () =
  Mutex.lock mu;
  events_rev := [];
  n_events := 0;
  Atomic.set n_dropped 0;
  epoch := now_us ();
  Mutex.unlock mu;
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let record e =
  Mutex.lock mu;
  if !n_events < Atomic.get capacity then begin
    events_rev := e :: !events_rev;
    incr n_events
  end
  else Atomic.incr n_dropped;
  Mutex.unlock mu

(* the ambient request id rides on every span recorded while a request
   is being served (see Context), unless the caller set its own *)
let with_rid args =
  if List.mem_assoc "rid" args then args
  else
    match Context.get () with
    | Some rid -> ("rid", Json.String rid) :: args
    | None -> args

let with_span ?(args = []) ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      record
        {
          name;
          ts = t0 -. !epoch;
          dur = now_us () -. t0;
          tid = (Domain.self () :> int);
          args = with_rid args;
        }
    in
    match f () with
    | v -> finish (); v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

(** Mark an instantaneous event (duration 0). *)
let instant ?(args = []) name =
  if Atomic.get enabled_flag then
    record
      {
        name;
        ts = now_us () -. !epoch;
        dur = 0.0;
        tid = (Domain.self () :> int);
        args = with_rid args;
      }

(** All events recorded since [start], in begin-timestamp order. *)
let events () =
  Mutex.lock mu;
  let es = !events_rev in
  Mutex.unlock mu;
  List.sort (fun a b -> compare a.ts b.ts) (List.rev es)

let event_json pid (e : event) =
  Json.Obj
    ([
       ("name", Json.String e.name);
       ("cat", Json.String "spd");
       ("ph", Json.String "X");
       ("ts", Json.Float e.ts);
       ("dur", Json.Float e.dur);
       ("pid", Json.Int pid);
       ("tid", Json.Int e.tid);
     ]
    @ if e.args = [] then [] else [ ("args", Json.Obj e.args) ])

(** The Chrome trace-event document for everything recorded so far. *)
let to_json () =
  let pid = Unix.getpid () in
  Json.Obj
    ([
       ("traceEvents", Json.List (List.map (event_json pid) (events ())));
       ("displayTimeUnit", Json.String "ms");
     ]
    @
    match Atomic.get n_dropped with
    | 0 -> []
    | n ->
        [ ("otherData", Json.Obj [ ("droppedEvents", Json.Int n) ]) ])

(** Write the trace to [path] (Chrome trace-event JSON). *)
let write path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json ()));
      Out_channel.output_char oc '\n')

(** [capture path f] runs [f] with tracing enabled when [path] is
    [Some file], writing the trace to [file] even when [f] raises —
    the crash-safe form of [start]/[stop]/[write] used by the CLIs'
    [--trace] flag. *)
let capture path f =
  match path with
  | None -> f ()
  | Some file ->
      start ();
      Fun.protect
        ~finally:(fun () ->
          stop ();
          write file)
        f
