(** Construction of the initial (fully conservative) memory dependence
    arcs of a tree: one arc for every program-ordered pair of memory
    operations of which at least one is a store.  All arcs start out
    [Ambiguous]; the disambiguators refine them. *)

open Spd_ir

let build_tree (tree : Tree.t) : Tree.t =
  let mems =
    Array.to_list tree.insns
    |> List.filter Insn.is_mem
  in
  let rec pairs acc = function
    | [] -> acc
    | x :: rest ->
        let acc =
          List.fold_left
            (fun acc y ->
              if Insn.is_store x || Insn.is_store y then
                {
                  Memdep.src = x.Insn.id;
                  dst = y.Insn.id;
                  kind =
                    Memdep.kind_of_ops ~src_is_store:(Insn.is_store x)
                      ~dst_is_store:(Insn.is_store y);
                  status = Memdep.Ambiguous None;
                  why = None;
                }
                :: acc
              else acc)
            acc rest
        in
        pairs acc rest
  in
  { tree with arcs = List.rev (pairs [] mems) }

(** Annotate every tree of the program; this produces the NAIVE
    configuration. *)
let annotate (prog : Prog.t) : Prog.t =
  Prog.map_trees (fun _ t -> build_tree t) prog
