(** Data dependence graph of a decision tree, and the infinite-machine
    (ASAP) timing derived from it.

    Nodes are the tree's instructions plus its exit branches.  Edges:

    - register flow: producer -> consumer, weighted by the producer's
      latency (guard registers are consumers like any other source);
    - active memory dependence arcs, weighted per {!Spd_ir.Memdep.weight}
      (a RAW arc costs a full memory latency — removing it is where SpD's
      win comes from);
    - the exit priority chain: a branch may not resolve before the
      branches of higher priority (weight 0: same-cycle issue is fine, the
      machine evaluates exit guards in priority order).

    With unlimited functional units the earliest issue time of every node
    is the longest-path distance from the tree's entry; this is the
    paper's "cycle-level infinite machine simulator" timing. *)

open Spd_ir

type t = {
  tree : Tree.t;
  mem_latency : int;
  n_insns : int;
  n_exits : int;
  preds : (int * int) list array;
      (** per node: (predecessor node, edge weight) *)
  succs : (int * int) list array;
  mem_edges : (int * int, Memdep.t) Hashtbl.t;
      (** the memory dependence arcs that constrain this graph, keyed by
          (src node, dst node) — lets consumers tell a memory edge apart
          from a register-flow edge with the same endpoints *)
  node_lat : int array;
      (** per-node latency, filled once at build time so the hot
          scheduling and critical-path loops never re-derive it from the
          opcode *)
}

let n_nodes g = g.n_insns + g.n_exits

let insn_node pos = pos
let exit_node g k = g.n_insns + k

(** Build the dependence graph.  Only arcs for which [arc_active] holds
    constrain the graph; by default that is {!Spd_ir.Memdep.is_active}.

    The build is a constant number of linear passes: node latencies are
    computed once into [node_lat]; register def sites live in an array
    indexed by register number (trees are single-assignment, so one slot
    per register suffices); memory arcs resolve their endpoints through
    an id→position array instead of scanning the instruction vector per
    arc.  Edge insertion order is identical to the historical all-pairs
    build, so [preds]/[succs] lists — and every schedule derived from
    them — are bit-identical to {!Spd_machine.Scheduler.Reference}. *)
let build ?(arc_active = Memdep.is_active) ~mem_latency (tree : Tree.t) : t =
  let n_insns = Array.length tree.insns in
  let n_exits = Array.length tree.exits in
  let n = n_insns + n_exits in
  let node_lat = Array.make n Opcode.branch_latency in
  for pos = 0 to n_insns - 1 do
    node_lat.(pos) <- Opcode.latency ~mem_latency tree.insns.(pos).Insn.op
  done;
  let g =
    {
      tree;
      mem_latency;
      n_insns;
      n_exits;
      preds = Array.make n [];
      succs = Array.make n [];
      mem_edges = Hashtbl.create 8;
      node_lat;
    }
  in
  let add_edge src dst w =
    g.preds.(dst) <- (src, w) :: g.preds.(dst);
    g.succs.(src) <- (dst, w) :: g.succs.(src)
  in
  (* register flow: def sites indexed by register number.  Registers
     defined by no instruction (tree parameters) keep -1 and contribute
     no edge — they are available at cycle 0. *)
  let max_reg = ref (-1) in
  let note r = if r > !max_reg then max_reg := r in
  Array.iter
    (fun (insn : Insn.t) ->
      List.iter note (Insn.defs insn);
      List.iter note (Insn.uses insn))
    tree.insns;
  Array.iter (fun e -> List.iter note (Tree.exit_uses e)) tree.exits;
  let def_pos = Array.make (!max_reg + 1) (-1) in
  Array.iteri
    (fun pos (insn : Insn.t) ->
      List.iter (fun d -> def_pos.(d) <- pos) (Insn.defs insn))
    tree.insns;
  let flow_into node uses =
    List.iter
      (fun r ->
        let p = def_pos.(r) in
        if p >= 0 then add_edge (insn_node p) node node_lat.(p))
      uses
  in
  Array.iteri
    (fun pos insn -> flow_into (insn_node pos) (Insn.uses insn))
    tree.insns;
  Array.iteri
    (fun k e -> flow_into (exit_node g k) (Tree.exit_uses e))
    tree.exits;
  (* memory dependence arcs, endpoints via the id→position index *)
  let pos_of_id = Array.make (Tree.max_insn_id tree + 1) (-1) in
  Array.iteri
    (fun pos (insn : Insn.t) -> pos_of_id.(insn.id) <- pos)
    tree.insns;
  List.iter
    (fun (arc : Memdep.t) ->
      if arc_active arc then begin
        let si = pos_of_id.(arc.src) and di = pos_of_id.(arc.dst) in
        if si < 0 || di < 0 then
          invalid_arg
            (Fmt.str "Ddg.build: arc endpoint not in tree %S" tree.name);
        add_edge (insn_node si) (insn_node di) (Memdep.weight ~mem_latency arc);
        Hashtbl.replace g.mem_edges (insn_node si, insn_node di) arc
      end)
    tree.arcs;
  (* exit priority chain *)
  for k = 1 to n_exits - 1 do
    add_edge (exit_node g (k - 1)) (exit_node g k) 0
  done;
  g

(** Latency of a node: its opcode latency, or the branch latency for
    exits. *)
let node_latency g node = g.node_lat.(node)

(** Earliest issue time of every node on an unbounded machine.  Node order
    is topological by construction (definitions precede uses, arcs point
    forward, the exit chain is ordered). *)
let asap (g : t) : int array =
  let issue = Array.make (n_nodes g) 0 in
  for node = 0 to n_nodes g - 1 do
    List.iter
      (fun (p, w) -> issue.(node) <- max issue.(node) (issue.(p) + w))
      g.preds.(node)
  done;
  issue

(** Longest path from each node to the end of the tree (used as the list
    scheduler's priority: schedule critical nodes first). *)
let height (g : t) : int array =
  let h = Array.make (n_nodes g) 0 in
  for node = n_nodes g - 1 downto 0 do
    h.(node) <- node_latency g node;
    List.iter
      (fun (s, w) -> h.(node) <- max h.(node) (w + h.(s)))
      g.succs.(node)
  done;
  h

(** Lookup the memory dependence arc constraining edge (src, dst), if
    that edge is a memory arc rather than register flow or exit chain. *)
let mem_arc (g : t) ~src ~dst = Hashtbl.find_opt g.mem_edges (src, dst)

(** Length of the unbounded-machine critical path: the largest completion
    time over all nodes when every node issues ASAP. *)
let span (g : t) : int =
  let issue = asap g in
  let s = ref 0 in
  for node = 0 to n_nodes g - 1 do
    s := max !s (issue.(node) + node_latency g node)
  done;
  !s

(** Latest issue time of every node such that, obeying every dependence
    edge, no completion exceeds [span] (resource limits ignored — the
    classic ALAP pass). *)
let alap (g : t) ~span : int array =
  let issue = Array.make (n_nodes g) 0 in
  for node = n_nodes g - 1 downto 0 do
    issue.(node) <- span - node_latency g node;
    List.iter
      (fun (s, w) -> issue.(node) <- min issue.(node) (issue.(s) - w))
      g.succs.(node)
  done;
  issue

(** Per-node scheduling freedom on the unbounded machine: [alap - asap]
    against this graph's own critical-path span.  Zero-slack nodes lie on
    a critical path. *)
let slack (g : t) : int array =
  let late = alap g ~span:(span g) in
  let early = asap g in
  Array.init (n_nodes g) (fun node -> late.(node) - early.(node))

(** Completion times on the unbounded machine, directly consumable as a
    timing table entry: instruction completions by position, exit
    completions by exit index. *)
let asap_completion (g : t) : int array * int array =
  let issue = asap g in
  let insn_completion =
    Array.init g.n_insns (fun pos -> issue.(pos) + node_latency g pos)
  in
  let exit_completion =
    Array.init g.n_exits (fun k ->
        issue.(exit_node g k) + Opcode.branch_latency)
  in
  (insn_completion, exit_completion)

(* ------------------------------------------------------------------ *)
(* Graphviz export *)

(** Render the dependence graph in DOT format: solid edges are register
    flow, bold red edges are memory dependence arcs (dashed when
    ambiguous), dotted edges are the exit priority chain.  Feed to
    [dot -Tsvg] to inspect what constrains a tree's schedule. *)
let pp_dot ppf (g : t) =
  let tree = g.tree in
  Fmt.pf ppf "digraph %S {@." tree.name;
  Fmt.pf ppf "  rankdir=TB; node [shape=box, fontname=monospace];@.";
  Array.iteri
    (fun pos (insn : Insn.t) ->
      Fmt.pf ppf "  n%d [label=\"#%d %s\"%s];@." pos insn.id
        (String.map (function '"' -> '\'' | c -> c)
           (Fmt.str "%a" Insn.pp insn))
        (if Insn.is_mem insn then ", style=filled, fillcolor=lightyellow"
         else ""))
    tree.insns;
  Array.iteri
    (fun k e ->
      Fmt.pf ppf "  x%d [label=\"exit %d: %s\", shape=oval];@." k k
        (String.map (function '"' -> '\'' | c -> c)
           (Fmt.str "%a" Tree.pp_exit e)))
    tree.exits;
  let node_name n = if n < g.n_insns then Fmt.str "n%d" n else Fmt.str "x%d" (n - g.n_insns) in
  Array.iteri
    (fun src succs ->
      List.iter
        (fun (dst, w) ->
          let attrs =
            if src < g.n_insns && dst < g.n_insns then
              match Hashtbl.find_opt g.mem_edges (src, dst) with
              | Some arc ->
                  Fmt.str
                    "color=red, penwidth=2%s, label=\"%a w=%d\""
                    (if Memdep.is_ambiguous arc then ", style=dashed" else "")
                    Memdep.pp_kind arc.kind w
              | None -> Fmt.str "label=\"%d\"" w
            else if src >= g.n_insns && dst >= g.n_insns then
              "style=dotted"
            else Fmt.str "label=\"%d\"" w
          in
          Fmt.pf ppf "  %s -> %s [%s];@." (node_name src) (node_name dst)
            attrs)
        succs)
    g.succs;
  Fmt.pf ppf "}@."
