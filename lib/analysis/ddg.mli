(** Data dependence graph of a decision tree, and the infinite-machine
    (ASAP) timing derived from it.

    Nodes are the tree's instructions plus its exit branches.  Edges:

    - register flow: producer -> consumer, weighted by the producer's
      latency (guard registers are consumers like any other source);
    - active memory dependence arcs, weighted per {!Spd_ir.Memdep.weight}
      (a RAW arc costs a full memory latency — removing it is where SpD's
      win comes from);
    - the exit priority chain: a branch may not resolve before the
      branches of higher priority (weight 0: same-cycle issue is fine, the
      machine evaluates exit guards in priority order).

    With unlimited functional units the earliest issue time of every node
    is the longest-path distance from the tree's entry; this is the
    paper's "cycle-level infinite machine simulator" timing. *)

type t = {
  tree : Spd_ir.Tree.t;
  mem_latency : int;
  n_insns : int;
  n_exits : int;
  preds : (int * int) list array;
  succs : (int * int) list array;
  mem_edges : (int * int, Spd_ir.Memdep.t) Hashtbl.t;
  node_lat : int array;
      (** per-node latency, computed once at build time *)
}
val n_nodes : t -> int
val insn_node : 'a -> 'a
val exit_node : t -> int -> int

(** Build the dependence graph.  Only arcs for which [arc_active] holds
    constrain the graph; by default that is {!Spd_ir.Memdep.is_active}. *)
val build :
  ?arc_active:(Spd_ir.Memdep.t -> bool) ->
  mem_latency:int -> Spd_ir.Tree.t -> t

(** Latency of a node: its opcode latency, or the branch latency for
    exits. *)
val node_latency : t -> int -> int

(** Earliest issue time of every node on an unbounded machine.  Node order
    is topological by construction (definitions precede uses, arcs point
    forward, the exit chain is ordered). *)
val asap : t -> int array

(** Longest path from each node to the end of the tree (used as the list
    scheduler's priority: schedule critical nodes first). *)
val height : t -> int array

(** Lookup the memory dependence arc constraining edge (src, dst), if
    that edge is a memory arc rather than register flow or exit chain. *)
val mem_arc : t -> src:int -> dst:int -> Spd_ir.Memdep.t option

(** Length of the unbounded-machine critical path: the largest completion
    time over all nodes when every node issues ASAP. *)
val span : t -> int

(** Latest issue time of every node such that, obeying every dependence
    edge, no completion exceeds [span] (resource limits ignored — the
    classic ALAP pass). *)
val alap : t -> span:int -> int array

(** Per-node scheduling freedom on the unbounded machine: [alap - asap]
    against this graph's own critical-path span.  Zero-slack nodes lie on
    a critical path. *)
val slack : t -> int array

(** Completion times on the unbounded machine, directly consumable as a
    timing table entry: instruction completions by position, exit
    completions by exit index. *)
val asap_completion : t -> int array * int array

(** Render the dependence graph in DOT format: register-flow edges with
    latency weights, memory dependence arcs in red (dashed when
    ambiguous), and the dotted exit priority chain.  Feed to
    [dot -Tsvg]. *)
val pp_dot : Format.formatter -> t -> unit
