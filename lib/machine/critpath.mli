(** Critical-path extraction and cycle attribution.

    Walks a schedule backwards from its last-completing node and
    partitions the makespan [0, span) into disjoint intervals, each
    charged to one category.  Because the intervals tile [0, span)
    exactly, the per-category totals always sum to the schedule's
    makespan — the invariant the test suite asserts and the per-region
    report relies on. *)

type category =
  | Ambiguous_mem
      (** wait imposed by an ambiguous memory dependence arc — the
          cycles SpD removes *)
  | Dataflow  (** an operation executing, register flow, or a must arc *)
  | Resource  (** a data-ready operation held back for lack of a unit *)
  | Branch  (** exit branches resolving, and the exit priority chain *)

val categories : category list
val category_name : category -> string

type step = {
  node : int;  (** the node whose wait/execution this interval covers *)
  lo : int;
  hi : int;  (** interval [lo, hi); always [lo < hi] *)
  category : category;
}

type t = {
  span : int;
  path : int list;  (** the critical path, entry first *)
  steps : step list;  (** intervals tiling [0, span), latest first *)
  by_category : (category * int) list;  (** cycle totals, all categories *)
}

val analyze : Schedule.t -> t
