(** Reusable schedule event record.

    Pairs a scheduler run with the dependence graph it was scheduled
    from and derives, per node, the event record the introspection tools
    consume: issue cycle, completion cycle, functional-unit slot and
    dependence slack.  Building the record never re-runs or perturbs the
    scheduler — the same decisions that timed the simulation are the
    ones rendered. *)

module Ddg = Spd_analysis.Ddg

type op = {
  node : int;  (** DDG node: insn position, or [n_insns + exit index] *)
  issue : int;
  complete : int;  (** [issue] + node latency *)
  fu : int;  (** functional-unit slot within the issue cycle *)
  slack : int;  (** dependence slack ({!Spd_analysis.Ddg.slack}) *)
}

type t = {
  ddg : Ddg.t;
  width : Descr.width;
  length : int;  (** schedule length: last issue cycle + 1 *)
  span : int;  (** makespan: largest completion cycle over all nodes *)
  ops : op array;  (** indexed by DDG node *)
}

val of_ddg : width:Descr.width -> Ddg.t -> t
val of_tree : descr:Descr.t -> Spd_ir.Tree.t -> t

(** Number of FU columns the occupancy grid needs: the machine width, or
    the widest cycle when units are unlimited. *)
val n_fus : t -> int

(** Cycle-by-FU occupancy grid: [grid.(cycle).(fu)] is the node issuing
    there, if any. *)
val occupancy : t -> int option array array

val is_exit : t -> int -> bool

(** Short human-readable label for a node: ["#12 store"] for the
    instruction with id 12, ["exit0"] for an exit branch. *)
val node_label : t -> int -> string

(** Instruction id of a node, when it is an instruction. *)
val insn_id : t -> int -> int option
