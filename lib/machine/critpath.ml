(** Critical-path extraction and cycle attribution.

    Walks a schedule backwards from its last-completing node and
    partitions the makespan [0, span) into disjoint intervals, each
    charged to one of four categories:

    - {b ambiguous memory arc}: the walk crossed an ambiguous memory
      dependence edge — the wait exists only because the compiler could
      not disambiguate the pair (these are the cycles SpD removes);
    - {b dataflow}: an operation executing, or a wait imposed by a
      register-flow edge or a must memory dependence;
    - {b resource}: the scheduler held a data-ready operation back for
      lack of a free functional unit (or the machine idled);
    - {b branch}: an exit branch resolving, including waits imposed by
      the exit priority chain.

    Because the intervals tile [0, span) exactly, the per-category
    totals always sum to the schedule's makespan — the invariant the
    test suite asserts and the per-region report relies on. *)

module Ddg = Spd_analysis.Ddg
module Memdep = Spd_ir.Memdep

type category = Ambiguous_mem | Dataflow | Resource | Branch

let categories = [ Ambiguous_mem; Dataflow; Resource; Branch ]

let category_name = function
  | Ambiguous_mem -> "ambiguous-mem"
  | Dataflow -> "dataflow"
  | Resource -> "resource"
  | Branch -> "branch"

type step = {
  node : int;  (** the node whose wait/execution this interval covers *)
  lo : int;
  hi : int;  (** interval [lo, hi); always [lo < hi] *)
  category : category;
}

type t = {
  span : int;
  path : int list;  (** the critical path, entry first *)
  steps : step list;  (** intervals tiling [0, span), latest first *)
  by_category : (category * int) list;  (** cycle totals, all categories *)
}

let m_cycles =
  lazy
    (List.map
       (fun c ->
         ( c,
           Spd_telemetry.Metrics.counter
             ("spd.critpath.cycles." ^ category_name c) ))
       categories)

(* Preference order when several predecessor edges tie as the latest
   constraint: surface ambiguous memory arcs first (they are what SpD is
   about), then must memory dependences, then register flow, then the
   exit chain; break remaining ties on the lower node for determinism. *)
let edge_score (g : Ddg.t) ~src ~dst =
  match Ddg.mem_arc g ~src ~dst with
  | Some arc -> if Memdep.is_ambiguous arc then 3 else 2
  | None -> if src >= g.Ddg.n_insns && dst >= g.Ddg.n_insns then 0 else 1

let analyze (s : Schedule.t) : t =
  let g = s.Schedule.ddg in
  let issue node = s.Schedule.ops.(node).Schedule.issue in
  let latency node = Ddg.node_latency g node in
  let self_category node =
    if Schedule.is_exit s node then Branch else Dataflow
  in
  (* last-completing node starts the walk; ties go to the lower node *)
  let start =
    Array.fold_left
      (fun best (op : Schedule.op) ->
        if op.Schedule.complete > s.Schedule.ops.(best).Schedule.complete
        then op.Schedule.node
        else best)
      0 s.Schedule.ops
  in
  let steps = ref [] in
  let path = ref [] in
  let emit node lo hi category =
    if hi > lo then steps := { node; lo; hi; category } :: !steps
  in
  (* Attribute [0, hi) walking up from [cur]; [issue cur <= hi].  Each
     call emits the node's own execution up to [hi], a resource gap
     between data-readiness and issue, then recurses into the
     predecessor that constrained readiness.  The emitted intervals tile
     [0, hi) exactly. *)
  let rec walk cur hi =
    path := cur :: !path;
    emit cur (issue cur) (min hi (issue cur + latency cur))
      (self_category cur);
    let ready, constraining =
      List.fold_left
        (fun (ready, best) (p, w) ->
          let at = issue p + w in
          if at > ready then (at, Some (p, w))
          else if at = ready then
            match best with
            | Some (b, bw)
              when edge_score g ~src:b ~dst:cur > edge_score g ~src:p ~dst:cur
                   || (edge_score g ~src:b ~dst:cur
                       = edge_score g ~src:p ~dst:cur
                      && b <= p) ->
                (ready, Some (b, bw))
            | _ -> (ready, Some (p, w))
          else (ready, best))
        (0, None) g.Ddg.preds.(cur)
    in
    emit cur ready (issue cur) Resource;
    match constraining with
    | None -> () (* data ready at entry: [0, issue) was a resource gap *)
    | Some (p, _w) -> (
        match Ddg.mem_arc g ~src:p ~dst:cur with
        | Some arc when Memdep.is_ambiguous arc ->
            (* the whole wait for [p] exists only because of the
               ambiguous arc: charge it to the arc, not to [p]'s own
               dataflow *)
            emit cur (issue p) ready Ambiguous_mem;
            walk p (issue p)
        | Some _ ->
            (* must dependence: the wait is genuine dataflow *)
            let covered = min ready (issue p + latency p) in
            emit cur covered ready Dataflow;
            walk p covered
        | None ->
            let covered = min ready (issue p + latency p) in
            emit cur covered ready
              (if Schedule.is_exit s p then Branch else Dataflow);
            walk p covered)
  in
  let span = s.Schedule.span in
  if span > 0 then walk start span;
  let by_category =
    List.map
      (fun c ->
        ( c,
          List.fold_left
            (fun acc st -> if st.category = c then acc + (st.hi - st.lo) else acc)
            0 !steps ))
      categories
  in
  List.iter
    (fun (c, n) ->
      if n > 0 then
        Spd_telemetry.Metrics.incr ~by:n
          (List.assoc c (Lazy.force m_cycles)))
    by_category;
  { span; path = !path; steps = !steps; by_category }
