(** Resource-constrained list scheduler.

    Packs the nodes of a tree's dependence graph (instructions plus exit
    branches) into VLIW instruction words of at most [fus] operations per
    cycle, all functional units being universal and fully pipelined.
    Priority is the classic critical-path height: nodes with the longest
    remaining dependence chain issue first.

    The ready set is a binary max-heap keyed on (height, node index):
    higher height pops first, ties pop the lower node index.  That order
    is exactly the (height-descending, node-ascending stable sort) the
    historical ready-list scan used, so schedules are bit-identical to
    {!Reference.run} — and, being a pure function of the graph, identical
    across [--jobs] domain counts.  Nodes whose operands complete in a
    future cycle wait in a release queue (a min-heap on ready cycle)
    instead of being re-scanned every cycle. *)

module Ddg = Spd_analysis.Ddg

type t = {
  issue : int array;  (** per node, the cycle it issues *)
  fu : int array;
      (** per node, the functional-unit slot (0-based) it occupies within
          its issue cycle — distinct nodes issuing the same cycle get
          distinct slots.  Purely descriptive: recording slots does not
          alter any scheduling decision. *)
  length : int;  (** schedule length: last issue cycle + 1 *)
}

let m_schedules = lazy (Spd_telemetry.Metrics.counter "spd.scheduler.schedules")

let m_occupancy =
  lazy
    (Spd_telemetry.Metrics.histogram
       ~buckets:Spd_telemetry.Metrics.fraction_buckets
       "spd.scheduler.fu_occupancy")

(* ------------------------------------------------------------------ *)
(* Priority heap *)

(** Array-backed binary max-heap of (priority, node) pairs with a
    deterministic total order: higher priority first, equal priorities
    broken by the {e lower} node index.  Exposed so the property tests
    can check the pop order directly. *)
module Heap = struct
  type t = {
    mutable prio : int array;
    mutable node : int array;
    mutable size : int;
  }

  let create cap =
    let cap = max cap 1 in
    { prio = Array.make cap 0; node = Array.make cap 0; size = 0 }

  let is_empty h = h.size = 0
  let size h = h.size

  (* strict "pops before": the heap invariant's order *)
  let before h i j =
    h.prio.(i) > h.prio.(j)
    || (h.prio.(i) = h.prio.(j) && h.node.(i) < h.node.(j))

  let swap h i j =
    let p = h.prio.(i) and n = h.node.(i) in
    h.prio.(i) <- h.prio.(j);
    h.node.(i) <- h.node.(j);
    h.prio.(j) <- p;
    h.node.(j) <- n

  let push h ~prio node =
    if h.size = Array.length h.prio then begin
      let cap = 2 * h.size in
      let prio' = Array.make cap 0 and node' = Array.make cap 0 in
      Array.blit h.prio 0 prio' 0 h.size;
      Array.blit h.node 0 node' 0 h.size;
      h.prio <- prio';
      h.node <- node'
    end;
    h.prio.(h.size) <- prio;
    h.node.(h.size) <- node;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && before h !i ((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek h = if h.size = 0 then None else Some (h.prio.(0), h.node.(0))

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.node.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.prio.(0) <- h.prio.(h.size);
        h.node.(0) <- h.node.(h.size);
        let i = ref 0 in
        let sifting = ref true in
        while !sifting do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let best = ref !i in
          if l < h.size && before h l !best then best := l;
          if r < h.size && before h r !best then best := r;
          if !best <> !i then begin
            swap h !i !best;
            i := !best
          end
          else sifting := false
        done
      end;
      Some top
    end
end

(* ------------------------------------------------------------------ *)
(* Scheduling *)

(** Schedule [g] on a machine with [fus] universal units.  [fus = None]
    means unlimited (the result then equals ASAP).

    Resource-constrained case: the ready heap holds data-ready nodes;
    the release queue (min-heap on ready cycle, priorities negated)
    holds nodes whose predecessors have all issued but whose operands
    complete in a future cycle.  Within a cycle the heap drains in
    priority order as a {e generation}: nodes enabled mid-cycle by a
    zero-weight edge (the prioritized exit chain) collect in [deferred]
    and only enter the heap once the current generation has drained
    with slots to spare — reproducing the historical scan's
    snapshot-then-rescan semantics exactly. *)
let run ?fus (g : Ddg.t) : t =
  let n = Ddg.n_nodes g in
  let issue = Array.make n (-1) in
  let fu = Array.make n 0 in
  (match fus with
  | None ->
      let asap = Ddg.asap g in
      Array.blit asap 0 issue 0 n;
      (* unlimited units: slot = rank among same-cycle issuers, in node
         order *)
      let per_cycle = Hashtbl.create 16 in
      for node = 0 to n - 1 do
        let k =
          try Hashtbl.find per_cycle issue.(node) with Not_found -> 0
        in
        fu.(node) <- k;
        Hashtbl.replace per_cycle issue.(node) (k + 1)
      done
  | Some fus ->
      if fus <= 0 then invalid_arg "Scheduler.run: fus must be positive";
      let height = Ddg.height g in
      let n_preds_left = Array.make n 0 in
      (* earliest data-ready cycle, updated as predecessors schedule *)
      let ready_at = Array.make n 0 in
      let ready = Heap.create n in
      let release = Heap.create n in
      for node = 0 to n - 1 do
        n_preds_left.(node) <- List.length g.preds.(node);
        if n_preds_left.(node) = 0 then Heap.push release ~prio:0 node
      done;
      let remaining = ref n in
      let cycle = ref 0 in
      while !remaining > 0 do
        (* admit every node whose operands are ready this cycle *)
        let admitting = ref true in
        while !admitting do
          match Heap.peek release with
          | Some (p, _) when -p <= !cycle -> (
              match Heap.pop release with
              | Some node -> Heap.push ready ~prio:height.(node) node
              | None -> assert false)
          | _ -> admitting := false
        done;
        let slots = ref fus in
        let deferred = ref [] in
        let exhausted = ref false in
        while (not !exhausted) && !slots > 0 do
          match Heap.pop ready with
          | Some node ->
              fu.(node) <- fus - !slots;
              decr slots;
              issue.(node) <- !cycle;
              decr remaining;
              List.iter
                (fun (s, w) ->
                  n_preds_left.(s) <- n_preds_left.(s) - 1;
                  ready_at.(s) <- max ready_at.(s) (!cycle + w);
                  if n_preds_left.(s) = 0 then
                    if ready_at.(s) <= !cycle then deferred := s :: !deferred
                    else Heap.push release ~prio:(-ready_at.(s)) s)
                g.succs.(node)
          | None -> (
              (* generation drained with slots left: the nodes it
                 enabled this cycle form the next generation *)
              match !deferred with
              | [] -> exhausted := true
              | ds ->
                  List.iter
                    (fun s -> Heap.push ready ~prio:height.(s) s)
                    ds;
                  deferred := [])
        done;
        (* slots gone: anything enabled this cycle waits for the next *)
        List.iter (fun s -> Heap.push ready ~prio:height.(s) s) !deferred;
        if !remaining > 0 then
          cycle :=
            if Heap.is_empty ready then
              (* idle until the next operand completes *)
              match Heap.peek release with
              | Some (p, _) -> max (!cycle + 1) (-p)
              | None -> !cycle + 1 (* unreachable: the graph is a DAG *)
            else !cycle + 1
      done);
  let length = Array.fold_left max (-1) issue + 1 in
  Spd_telemetry.Metrics.incr (Lazy.force m_schedules);
  (match fus with
  | Some fus when length > 0 ->
      (* fraction of issue slots the packed schedule actually fills *)
      Spd_telemetry.Metrics.observe (Lazy.force m_occupancy)
        (float_of_int n /. float_of_int (fus * length))
  | _ -> ());
  { issue; fu; length }

(** Convert a schedule into the timing table entry the simulator charges
    traversals with. *)
let timing (g : Ddg.t) (s : t) : Spd_sim.Timing.tree_timing =
  let insn_completion =
    Array.init g.n_insns (fun pos ->
        s.issue.(pos) + Ddg.node_latency g pos)
  in
  let exit_completion =
    Array.init g.n_exits (fun k ->
        s.issue.(Ddg.exit_node g k) + Spd_ir.Opcode.branch_latency)
  in
  { Spd_sim.Timing.insn_completion; exit_completion }

(** Check that a schedule respects every dependence edge and the [fus]
    resource bound; used by the property tests. *)
let valid ?fus (g : Ddg.t) (s : t) : bool =
  let deps_ok = ref true in
  Array.iteri
    (fun node preds ->
      List.iter
        (fun (p, w) ->
          if s.issue.(node) < s.issue.(p) + w then deps_ok := false)
        preds)
    g.preds;
  let resources_ok =
    match fus with
    | None -> true
    | Some fus ->
        let per_cycle = Hashtbl.create 16 in
        Array.for_all
          (fun c ->
            let k = 1 + try Hashtbl.find per_cycle c with Not_found -> 0 in
            Hashtbl.replace per_cycle c k;
            k <= fus)
          s.issue
  in
  (* slot assignment: within bounds and unique per (cycle, fu) pair *)
  let slots_ok = ref (Array.length s.fu = Array.length s.issue) in
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun node c ->
      let slot = s.fu.(node) in
      if slot < 0 then slots_ok := false;
      (match fus with
      | Some fus when slot >= fus -> slots_ok := false
      | _ -> ());
      if Hashtbl.mem seen (c, slot) then slots_ok := false;
      Hashtbl.replace seen (c, slot) ())
    s.issue;
  !deps_ok && resources_ok && !slots_ok

(* ------------------------------------------------------------------ *)
(* Historical reference implementations *)

(** The pre-heap scheduler and pre-indexed DDG build, preserved verbatim
    as a differential oracle.  Production code never calls these; the
    fuzz and property tests schedule every graph through both paths and
    require bit-identical results. *)
module Reference = struct
  open Spd_ir

  (** The historical all-pairs DDG build: def sites in a hashtable,
      memory-arc endpoints through {!Spd_ir.Tree.insn_index}'s linear
      scan.  Same edge multiset (and, by construction, the same edge
      insertion order) as {!Spd_analysis.Ddg.build}. *)
  let build_ddg ?(arc_active = Memdep.is_active) ~mem_latency
      (tree : Tree.t) : Ddg.t =
    let n_insns = Array.length tree.insns in
    let n_exits = Array.length tree.exits in
    let n = n_insns + n_exits in
    let node_lat =
      Array.init n (fun node ->
          if node < n_insns then
            Opcode.latency ~mem_latency tree.insns.(node).Insn.op
          else Opcode.branch_latency)
    in
    let g =
      {
        Ddg.tree;
        mem_latency;
        n_insns;
        n_exits;
        preds = Array.make n [];
        succs = Array.make n [];
        mem_edges = Hashtbl.create 8;
        node_lat;
      }
    in
    let add_edge src dst w =
      g.Ddg.preds.(dst) <- (src, w) :: g.Ddg.preds.(dst);
      g.Ddg.succs.(src) <- (dst, w) :: g.Ddg.succs.(src)
    in
    let def_pos = Hashtbl.create 16 in
    Array.iteri
      (fun pos (insn : Insn.t) ->
        List.iter (fun d -> Hashtbl.replace def_pos d pos) (Insn.defs insn))
      tree.insns;
    let flow_into node uses =
      List.iter
        (fun r ->
          match Hashtbl.find_opt def_pos r with
          | Some p ->
              let w = Opcode.latency ~mem_latency tree.insns.(p).Insn.op in
              add_edge (Ddg.insn_node p) node w
          | None -> ())
        uses
    in
    Array.iteri
      (fun pos insn -> flow_into (Ddg.insn_node pos) (Insn.uses insn))
      tree.insns;
    Array.iteri
      (fun k e -> flow_into (Ddg.exit_node g k) (Tree.exit_uses e))
      tree.exits;
    List.iter
      (fun (arc : Memdep.t) ->
        if arc_active arc then begin
          let si = Tree.insn_index tree arc.src
          and di = Tree.insn_index tree arc.dst in
          add_edge (Ddg.insn_node si) (Ddg.insn_node di)
            (Memdep.weight ~mem_latency arc);
          Hashtbl.replace g.Ddg.mem_edges
            (Ddg.insn_node si, Ddg.insn_node di)
            arc
        end)
      tree.arcs;
    for k = 1 to n_exits - 1 do
      add_edge (Ddg.exit_node g (k - 1)) (Ddg.exit_node g k) 0
    done;
    g

  (** The historical scheduler: every cycle re-scans all nodes for the
      ready set and sorts it (stable, so ties keep node order).  Does not
      touch the telemetry counters — it exists only to be diffed
      against. *)
  let run ?fus (g : Ddg.t) : t =
    let n = Ddg.n_nodes g in
    let issue = Array.make n (-1) in
    let fu = Array.make n 0 in
    (match fus with
    | None ->
        let asap = Ddg.asap g in
        Array.blit asap 0 issue 0 n;
        let per_cycle = Hashtbl.create 16 in
        for node = 0 to n - 1 do
          let k =
            try Hashtbl.find per_cycle issue.(node) with Not_found -> 0
          in
          fu.(node) <- k;
          Hashtbl.replace per_cycle issue.(node) (k + 1)
        done
    | Some fus ->
        if fus <= 0 then
          invalid_arg "Scheduler.Reference.run: fus must be positive";
        let height = Ddg.height g in
        let n_preds_left = Array.make n 0 in
        for node = 0 to n - 1 do
          n_preds_left.(node) <- List.length g.Ddg.preds.(node)
        done;
        let ready_at = Array.make n 0 in
        let remaining = ref n in
        let cycle = ref 0 in
        while !remaining > 0 do
          let slots = ref fus in
          let progress = ref true in
          while !slots > 0 && !progress do
            let ready =
              List.init n Fun.id
              |> List.filter (fun node ->
                     issue.(node) < 0
                     && n_preds_left.(node) = 0
                     && ready_at.(node) <= !cycle)
              |> List.sort (fun a b -> compare height.(b) height.(a))
            in
            progress := false;
            List.iter
              (fun node ->
                if !slots > 0 then begin
                  fu.(node) <- fus - !slots;
                  decr slots;
                  progress := true;
                  issue.(node) <- !cycle;
                  decr remaining;
                  List.iter
                    (fun (s, w) ->
                      n_preds_left.(s) <- n_preds_left.(s) - 1;
                      ready_at.(s) <- max ready_at.(s) (!cycle + w))
                    g.Ddg.succs.(node)
                end)
              ready
          done;
          incr cycle
        done);
    let length = Array.fold_left max (-1) issue + 1 in
    { issue; fu; length }
end
