(** Resource-constrained list scheduler.

    Packs the nodes of a tree's dependence graph (instructions plus exit
    branches) into VLIW instruction words of at most [fus] operations per
    cycle, all functional units being universal and fully pipelined.
    Priority is the classic critical-path height: nodes with the longest
    remaining dependence chain issue first. *)

module Ddg = Spd_analysis.Ddg

type t = {
  issue : int array;  (** per node, the cycle it issues *)
  fu : int array;
      (** per node, the functional-unit slot (0-based) it occupies within
          its issue cycle — distinct nodes issuing the same cycle get
          distinct slots.  Purely descriptive: recording slots does not
          alter any scheduling decision. *)
  length : int;  (** schedule length: last issue cycle + 1 *)
}

let m_schedules = lazy (Spd_telemetry.Metrics.counter "spd.scheduler.schedules")

let m_occupancy =
  lazy
    (Spd_telemetry.Metrics.histogram
       ~buckets:Spd_telemetry.Metrics.fraction_buckets
       "spd.scheduler.fu_occupancy")

(** Schedule [g] on a machine with [fus] universal units.  [fus = None]
    means unlimited (the result then equals ASAP). *)
let run ?fus (g : Ddg.t) : t =
  let n = Ddg.n_nodes g in
  let issue = Array.make n (-1) in
  let fu = Array.make n 0 in
  (match fus with
  | None ->
      let asap = Ddg.asap g in
      Array.blit asap 0 issue 0 n;
      (* unlimited units: slot = rank among same-cycle issuers, in node
         order *)
      let per_cycle = Hashtbl.create 16 in
      for node = 0 to n - 1 do
        let k =
          try Hashtbl.find per_cycle issue.(node) with Not_found -> 0
        in
        fu.(node) <- k;
        Hashtbl.replace per_cycle issue.(node) (k + 1)
      done
  | Some fus ->
      if fus <= 0 then invalid_arg "Scheduler.run: fus must be positive";
      let height = Ddg.height g in
      let n_preds_left = Array.make n 0 in
      for node = 0 to n - 1 do
        n_preds_left.(node) <- List.length g.preds.(node)
      done;
      (* earliest data-ready cycle, updated as predecessors schedule *)
      let ready_at = Array.make n 0 in
      let remaining = ref n in
      let cycle = ref 0 in
      while !remaining > 0 do
        (* fill the cycle's slots, re-scanning so that zero-weight chains
           (prioritized exit branches) may issue in the same word *)
        let slots = ref fus in
        let progress = ref true in
        while !slots > 0 && !progress do
          let ready =
            List.init n Fun.id
            |> List.filter (fun node ->
                   issue.(node) < 0
                   && n_preds_left.(node) = 0
                   && ready_at.(node) <= !cycle)
            |> List.sort (fun a b -> compare height.(b) height.(a))
          in
          progress := false;
          List.iter
            (fun node ->
              if !slots > 0 then begin
                fu.(node) <- fus - !slots;
                decr slots;
                progress := true;
                issue.(node) <- !cycle;
                decr remaining;
                List.iter
                  (fun (s, w) ->
                    n_preds_left.(s) <- n_preds_left.(s) - 1;
                    ready_at.(s) <- max ready_at.(s) (!cycle + w))
                  g.succs.(node)
              end)
            ready
        done;
        incr cycle
      done);
  let length = Array.fold_left max (-1) issue + 1 in
  Spd_telemetry.Metrics.incr (Lazy.force m_schedules);
  (match fus with
  | Some fus when length > 0 ->
      (* fraction of issue slots the packed schedule actually fills *)
      Spd_telemetry.Metrics.observe (Lazy.force m_occupancy)
        (float_of_int n /. float_of_int (fus * length))
  | _ -> ());
  { issue; fu; length }

(** Convert a schedule into the timing table entry the simulator charges
    traversals with. *)
let timing (g : Ddg.t) (s : t) : Spd_sim.Timing.tree_timing =
  let insn_completion =
    Array.init g.n_insns (fun pos ->
        s.issue.(pos) + Ddg.node_latency g pos)
  in
  let exit_completion =
    Array.init g.n_exits (fun k ->
        s.issue.(Ddg.exit_node g k) + Spd_ir.Opcode.branch_latency)
  in
  { Spd_sim.Timing.insn_completion; exit_completion }

(** Check that a schedule respects every dependence edge and the [fus]
    resource bound; used by the property tests. *)
let valid ?fus (g : Ddg.t) (s : t) : bool =
  let deps_ok = ref true in
  Array.iteri
    (fun node preds ->
      List.iter
        (fun (p, w) ->
          if s.issue.(node) < s.issue.(p) + w then deps_ok := false)
        preds)
    g.preds;
  let resources_ok =
    match fus with
    | None -> true
    | Some fus ->
        let per_cycle = Hashtbl.create 16 in
        Array.for_all
          (fun c ->
            let k = 1 + try Hashtbl.find per_cycle c with Not_found -> 0 in
            Hashtbl.replace per_cycle c k;
            k <= fus)
          s.issue
  in
  (* slot assignment: within bounds and unique per (cycle, fu) pair *)
  let slots_ok = ref (Array.length s.fu = Array.length s.issue) in
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun node c ->
      let slot = s.fu.(node) in
      if slot < 0 then slots_ok := false;
      (match fus with
      | Some fus when slot >= fus -> slots_ok := false
      | _ -> ());
      if Hashtbl.mem seen (c, slot) then slots_ok := false;
      Hashtbl.replace seen (c, slot) ())
    s.issue;
  !deps_ok && resources_ok && !slots_ok
