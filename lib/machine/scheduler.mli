(** Resource-constrained list scheduler.

    Packs the nodes of a tree's dependence graph (instructions plus exit
    branches) into VLIW instruction words of at most [fus] operations per
    cycle, all functional units being universal and fully pipelined.
    Priority is the classic critical-path height: nodes with the longest
    remaining dependence chain issue first. *)

module Ddg = Spd_analysis.Ddg

type t = {
  issue : int array;  (** per node, the cycle it issues *)
  fu : int array;
      (** per node, the functional-unit slot (0-based) it occupies within
          its issue cycle; descriptive only, never alters a decision *)
  length : int;  (** schedule length: last issue cycle + 1 *)
}

(** Schedule [g] on a machine with [fus] universal units.  [fus = None]
    means unlimited (the result then equals ASAP). *)
val run : ?fus:int -> Ddg.t -> t

(** Convert a schedule into the timing table entry the simulator charges
    traversals with. *)
val timing : Ddg.t -> t -> Spd_sim.Timing.tree_timing

(** Check that a schedule respects every dependence edge and the [fus]
    resource bound; used by the property tests. *)
val valid : ?fus:int -> Ddg.t -> t -> bool
