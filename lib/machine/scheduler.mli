(** Resource-constrained list scheduler.

    Packs the nodes of a tree's dependence graph (instructions plus exit
    branches) into VLIW instruction words of at most [fus] operations per
    cycle, all functional units being universal and fully pipelined.
    Priority is the classic critical-path height: nodes with the longest
    remaining dependence chain issue first.  The ready set is a priority
    heap with deterministic tie-breaking (equal heights pop the lower
    node index), so schedules are bit-identical to {!Reference.run} and
    across [--jobs] domain counts. *)

module Ddg = Spd_analysis.Ddg

type t = {
  issue : int array;  (** per node, the cycle it issues *)
  fu : int array;
      (** per node, the functional-unit slot (0-based) it occupies within
          its issue cycle; descriptive only, never alters a decision *)
  length : int;  (** schedule length: last issue cycle + 1 *)
}

(** Array-backed binary max-heap of (priority, node) pairs with a
    deterministic total order: higher priority first, equal priorities
    broken by the {e lower} node index.  Exposed for the property
    tests. *)
module Heap : sig
  type t

  (** [create cap] allocates a heap with initial capacity [cap] (grows
      as needed). *)
  val create : int -> t

  val is_empty : t -> bool
  val size : t -> int
  val push : t -> prio:int -> int -> unit

  (** Highest-priority (priority, node) pair, without removing it. *)
  val peek : t -> (int * int) option

  (** Remove and return the highest-priority node; ties yield the lowest
      node index. *)
  val pop : t -> int option
end

(** Schedule [g] on a machine with [fus] universal units.  [fus = None]
    means unlimited (the result then equals ASAP). *)
val run : ?fus:int -> Ddg.t -> t

(** Convert a schedule into the timing table entry the simulator charges
    traversals with. *)
val timing : Ddg.t -> t -> Spd_sim.Timing.tree_timing

(** Check that a schedule respects every dependence edge and the [fus]
    resource bound; used by the property tests. *)
val valid : ?fus:int -> Ddg.t -> t -> bool

(** The pre-heap scheduler and pre-indexed DDG build, preserved verbatim
    as a differential oracle for the fuzz and property tests.  Production
    code must not call these. *)
module Reference : sig
  (** Historical all-pairs DDG build (hashtable def sites, linear-scan
      arc endpoints).  Same edges, in the same order, as
      {!Spd_analysis.Ddg.build}. *)
  val build_ddg :
    ?arc_active:(Spd_ir.Memdep.t -> bool) ->
    mem_latency:int -> Spd_ir.Tree.t -> Ddg.t

  (** Historical ready-list scan scheduler.  Bit-identical schedules to
      {!run}; does not touch telemetry. *)
  val run : ?fus:int -> Ddg.t -> t
end
