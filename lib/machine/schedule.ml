(** Reusable schedule event record.

    The list scheduler's output ({!Scheduler.t}) only carries issue
    cycles; this module pairs it with the dependence graph it was
    scheduled from and derives, per node, the complete event record the
    introspection tools consume: issue cycle, completion cycle,
    functional-unit slot and dependence slack.  Building the record never
    re-runs or perturbs the scheduler — the same decisions that timed the
    simulation are the ones rendered. *)

open Spd_ir
module Ddg = Spd_analysis.Ddg

type op = {
  node : int;  (** DDG node: insn position, or [n_insns + exit index] *)
  issue : int;
  complete : int;  (** [issue] + node latency *)
  fu : int;  (** functional-unit slot within the issue cycle *)
  slack : int;  (** dependence slack ({!Spd_analysis.Ddg.slack}) *)
}

type t = {
  ddg : Ddg.t;
  width : Descr.width;
  length : int;  (** schedule length: last issue cycle + 1 *)
  span : int;  (** makespan: largest completion cycle over all nodes *)
  ops : op array;  (** indexed by DDG node *)
}

let of_ddg ~(width : Descr.width) (g : Ddg.t) : t =
  let sched =
    match width with
    | Descr.Infinite -> Scheduler.run g
    | Descr.Fus n -> Scheduler.run ~fus:n g
  in
  let slack = Ddg.slack g in
  let n = Ddg.n_nodes g in
  let ops =
    Array.init n (fun node ->
        {
          node;
          issue = sched.issue.(node);
          complete = sched.issue.(node) + Ddg.node_latency g node;
          fu = sched.fu.(node);
          slack = slack.(node);
        })
  in
  let span = Array.fold_left (fun acc op -> max acc op.complete) 0 ops in
  { ddg = g; width; length = sched.length; span; ops }

let of_tree ~(descr : Descr.t) (tree : Tree.t) : t =
  of_ddg ~width:descr.width (Ddg.build ~mem_latency:descr.mem_latency tree)

(** Number of FU columns the occupancy grid needs: the machine width, or
    the widest cycle when units are unlimited. *)
let n_fus (t : t) : int =
  match t.width with
  | Descr.Fus n -> n
  | Descr.Infinite ->
      1 + Array.fold_left (fun acc op -> max acc op.fu) 0 t.ops

(** Cycle-by-FU occupancy grid: [grid.(cycle).(fu)] is the node issuing
    there, if any. *)
let occupancy (t : t) : int option array array =
  let grid = Array.make_matrix t.length (n_fus t) None in
  Array.iter (fun op -> grid.(op.issue).(op.fu) <- Some op.node) t.ops;
  grid

let is_exit (t : t) node = node >= t.ddg.Ddg.n_insns

(** Short human-readable label for a node: ["#12 store"] for the
    instruction with id 12, ["exit0"] for an exit branch. *)
let node_label (t : t) node : string =
  if is_exit t node then Fmt.str "exit%d" (node - t.ddg.Ddg.n_insns)
  else
    let insn = t.ddg.Ddg.tree.Tree.insns.(node) in
    Fmt.str "#%d %a" insn.Insn.id Opcode.pp insn.Insn.op

(** Instruction id of a node, when it is an instruction. *)
let insn_id (t : t) node : int option =
  if is_exit t node then None
  else Some t.ddg.Ddg.tree.Tree.insns.(node).Insn.id
