(** Path-wise symbolic execution of decision trees.

    The evaluator runs a tree under the sequential ("original program
    order") semantics with symbolic inputs: every tree parameter is an
    opaque term, memory is a symbolic store chain rooted at one initial
    memory, and pure operations build hash-consed terms.  Control is
    made concrete per path: whenever the truth of a guard, a select
    predicate or an address comparison cannot be decided from the terms'
    affine forms, the evaluator raises {!Need_atom} and the exploration
    driver forks the path on that atom — this is how the speculated
    alias predicate of an SpD application is split into its alias and
    no-alias cases.

    Address equality is decided with the same machinery the static
    disambiguator uses ({!Spd_analysis.Affine}): a constant difference
    decides the compare outright, a GCD test refutes unsatisfiable
    equalities, and references whose affine forms sit on distinct known
    objects (different globals, or a global versus the frame) are taken
    to be distinct — the no-cross-object-aliasing model every
    disambiguator in this code base already assumes.  Opaque pointers
    (address parameters) separate nothing; comparisons involving them
    become case-split atoms, which is precisely the situation SpD
    speculates on. *)

open Spd_ir
module Affine = Spd_analysis.Affine

(* ------------------------------------------------------------------ *)
(* Terms and symbolic memory *)

type term = { tid : int; node : node }

and node =
  | Const of Value.t
  | Param of Reg.t  (** initial value of a tree parameter *)
  | App of Opcode.t * term list
  | Load of mem * term  (** residual read of the initial memory *)

and mem = { mid : int; mnode : mnode }
and mnode = Init | Store of { prev : mem; addr : term; value : term }

type tkey =
  | Kconst of Value.t
  | Kparam of Reg.t
  | Kapp of Opcode.t * int list
  | Kload of int * int

type mkey = int * int * int

type ctx = {
  terms : (tkey, term) Hashtbl.t;
  mems : (mkey, mem) Hashtbl.t;
  by_tid : (int, term) Hashtbl.t;
  aff : (int, Affine.t) Hashtbl.t;
  mutable next_tid : int;
  mutable next_mid : int;
  is_addr_param : Reg.t -> bool;
}

let init_mem = { mid = 0; mnode = Init }

let create ~is_addr_param =
  {
    terms = Hashtbl.create 256;
    mems = Hashtbl.create 64;
    by_tid = Hashtbl.create 256;
    aff = Hashtbl.create 256;
    next_tid = 0;
    next_mid = 1;
    is_addr_param;
  }

let aff_term ctx (t : term) = Hashtbl.find ctx.aff t.tid

(* Term-level affine forms, mirroring [Affine.analyze]'s opcode
   coverage.  Opaque terms become their own symbols keyed by term id;
   hash-consing guarantees the same symbolic value maps to the same
   symbol no matter which tree computed it. *)
let affine_of_node ctx tid node =
  let opaque () = Affine.sym (Affine.Sreg tid) in
  match node with
  | Const (Value.Int v) -> Affine.const v
  | Const (Value.Float _) -> opaque ()
  | Param _ -> opaque ()
  | App (Opcode.Addrof (Opcode.Global g), []) -> Affine.sym (Affine.Sglobal g)
  | App (Opcode.Addrof (Opcode.Frame off), []) ->
      Affine.add (Affine.sym Affine.Sframe) (Affine.const off)
  | App (Opcode.Ibin Opcode.Add, [ a; b ]) ->
      Affine.add (aff_term ctx a) (aff_term ctx b)
  | App (Opcode.Ibin Opcode.Sub, [ a; b ]) ->
      Affine.sub (aff_term ctx a) (aff_term ctx b)
  | App (Opcode.Ineg, [ a ]) -> Affine.neg (aff_term ctx a)
  | App (Opcode.Ibin Opcode.Mul, [ a; b ]) -> (
      let fa = aff_term ctx a and fb = aff_term ctx b in
      match (Affine.const_value fa, Affine.const_value fb) with
      | Some k, _ -> Affine.scale k fb
      | _, Some k -> Affine.scale k fa
      | None, None -> opaque ())
  | App (Opcode.Ibin Opcode.Shl, [ a; b ]) -> (
      match Affine.const_value (aff_term ctx b) with
      | Some k when k >= 0 && k < 62 -> Affine.scale (1 lsl k) (aff_term ctx a)
      | _ -> opaque ())
  | App _ | Load _ -> opaque ()

let intern ctx key node =
  match Hashtbl.find_opt ctx.terms key with
  | Some t -> t
  | None ->
      let tid = ctx.next_tid in
      ctx.next_tid <- tid + 1;
      let t = { tid; node } in
      Hashtbl.add ctx.terms key t;
      Hashtbl.add ctx.by_tid tid t;
      Hashtbl.add ctx.aff tid (affine_of_node ctx tid node);
      t

let const ctx v = intern ctx (Kconst v) (Const v)
let param ctx r = intern ctx (Kparam r) (Param r)

let is_commutative (op : Opcode.t) =
  match op with
  | Opcode.Ibin (Opcode.Add | Opcode.Mul | Opcode.And | Opcode.Or | Opcode.Xor)
    ->
      true
  | Opcode.Icmp (Opcode.Eq | Opcode.Ne) -> true
  | Opcode.Fbin (Opcode.Fadd | Opcode.Fmul) -> true
  | Opcode.Fcmp (Opcode.Feq | Opcode.Fne) -> true
  | _ -> false

exception Unsupported of string

(* Build an application term.  Only assumption-independent
   simplification is allowed here — the term table is shared by every
   explored path. *)
let app ctx (op : Opcode.t) (args : term list) : term =
  match (op, args) with
  | Opcode.Mov, [ a ] -> a
  | _ -> (
      let op, args =
        match (op, args) with
        | Opcode.Icmp Opcode.Gt, [ a; b ] -> (Opcode.Icmp Opcode.Lt, [ b; a ])
        | Opcode.Icmp Opcode.Ge, [ a; b ] -> (Opcode.Icmp Opcode.Le, [ b; a ])
        | Opcode.Fcmp Opcode.Fgt, [ a; b ] ->
            (Opcode.Fcmp Opcode.Flt, [ b; a ])
        | Opcode.Fcmp Opcode.Fge, [ a; b ] ->
            (Opcode.Fcmp Opcode.Fle, [ b; a ])
        | _ -> (op, args)
      in
      let args =
        if is_commutative op then
          List.sort (fun a b -> Int.compare a.tid b.tid) args
        else args
      in
      let all_const =
        List.for_all
          (fun a -> match a.node with Const _ -> true | _ -> false)
          args
      in
      let foldable =
        match op with
        | Opcode.Load | Opcode.Store | Opcode.Addrof _ -> false
        | _ -> true
      in
      if all_const && foldable then
        let vals =
          List.map
            (fun a -> match a.node with Const v -> v | _ -> assert false)
            args
        in
        match Spd_sim.Eval.eval_pure op vals with
        | v -> const ctx v
        | exception Spd_sim.Eval.Runtime_error msg -> raise (Unsupported msg)
      else intern ctx (Kapp (op, List.map (fun a -> a.tid) args)) (App (op, args)))

let store ctx prev ~addr ~value =
  let key = (prev.mid, addr.tid, value.tid) in
  match Hashtbl.find_opt ctx.mems key with
  | Some m -> m
  | None ->
      let mid = ctx.next_mid in
      ctx.next_mid <- mid + 1;
      let m = { mid; mnode = Store { prev; addr; value } } in
      Hashtbl.add ctx.mems key m;
      m

let load_term ctx m a = intern ctx (Kload (m.mid, a.tid)) (Load (m, a))

let pp_term ppf (t : term) =
  let rec go depth ppf t =
    if depth > 4 then Fmt.pf ppf "t%d" t.tid
    else
      match t.node with
      | Const v -> Value.pp ppf v
      | Param r -> Fmt.pf ppf "%a@@entry" Reg.pp r
      | App (op, args) ->
          Fmt.pf ppf "(%a@ %a)" Opcode.pp op
            Fmt.(list ~sep:sp (go (depth + 1)))
            args
      | Load (_, a) -> Fmt.pf ppf "mem0[%a]" (go (depth + 1)) a
  in
  go 0 ppf t

(* ------------------------------------------------------------------ *)
(* Atoms and assumptions *)

type atom =
  | Aeq of Affine.t  (** the normalized affine form equals zero *)
  | Atruth of int  (** the term with this id is true (non-zero) *)

let compare_affine (a : Affine.t) (b : Affine.t) =
  match Int.compare a.Affine.const b.Affine.const with
  | 0 -> Affine.Sym_map.compare Int.compare a.Affine.terms b.Affine.terms
  | c -> c

let compare_atom x y =
  match (x, y) with
  | Aeq a, Aeq b -> compare_affine a b
  | Atruth a, Atruth b -> Int.compare a b
  | Aeq _, Atruth _ -> -1
  | Atruth _, Aeq _ -> 1

module Atom_map = Map.Make (struct
  type t = atom

  let compare = compare_atom
end)

exception Need_atom of atom

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Canonicalize "form = 0": decide constant forms, apply the GCD test,
   divide through by the coefficient gcd and fix the sign so every
   spelling of the same equality shares one atom. *)
let norm_eq (d : Affine.t) =
  match Affine.const_value d with
  | Some c -> `Decided (c = 0)
  | None ->
      let g =
        Affine.Sym_map.fold (fun _ c acc -> gcd (abs c) acc) d.Affine.terms 0
      in
      if g > 1 && d.Affine.const mod g <> 0 then `Decided false
      else
        let d =
          if g > 1 then
            {
              Affine.const = d.Affine.const / g;
              terms = Affine.Sym_map.map (fun c -> c / g) d.Affine.terms;
            }
          else d
        in
        let flip =
          match Affine.Sym_map.min_binding_opt d.Affine.terms with
          | Some (_, c) -> c < 0
          | None -> false
        in
        `Atom (Aeq (if flip then Affine.neg d else d))

(* ------------------------------------------------------------------ *)
(* Equality saturation over the assumed affine atoms.

   The assumed-true [Aeq] atoms span a rational lattice of affine forms
   that are zero on the path.  [basis] keeps the spanning forms in
   echelon shape — one pivot symbol per form, every pivot eliminated
   from every other form — so a single elimination pass decides span
   membership.  Elimination only ever scales a form by a positive
   integer, which preserves zero-ness, so reduction is sound for
   equality decisions.  This is what gives the checker transitivity
   ([r3 = r10] and [r10 = r20] decide [r3 = r20]) and lets the explorer
   prune assumption sets no concrete run can realize. *)

type basis = (Affine.sym * Affine.t) list

(* Cancel [pivot] out of [g] using [using] (which has a non-zero
   coefficient on it), by an exact integer combination. *)
let eliminate ~pivot ~(using : Affine.t) (g : Affine.t) =
  match Affine.Sym_map.find_opt pivot g.Affine.terms with
  | None | Some 0 -> g
  | Some d ->
      let c = Affine.Sym_map.find pivot using.Affine.terms in
      let l = gcd (abs c) (abs d) in
      let k = d / l * if c < 0 then -1 else 1 in
      Affine.sub (Affine.scale (abs c / l) g) (Affine.scale k using)

let reduce (basis : basis) (f : Affine.t) =
  List.fold_left (fun g (p, bf) -> eliminate ~pivot:p ~using:bf g) f basis

(* Add "f = 0" to the span; [None] when it reduces to a non-zero
   constant (the combined equalities are unsatisfiable). *)
let basis_add (basis : basis) (f : Affine.t) : basis option =
  let r = reduce basis f in
  match Affine.const_value r with
  | Some 0 -> Some basis (* already implied *)
  | Some _ -> None
  | None ->
      let p, _ = Affine.Sym_map.min_binding r.Affine.terms in
      let basis =
        List.map (fun (q, bf) -> (q, eliminate ~pivot:p ~using:r bf)) basis
      in
      Some ((p, r) :: basis)

(* The basis spanned by an assumption set, or [None] when the set is
   infeasible: the true equalities contradict each other, or a false
   equality is in their span. *)
let basis_of_asm asm : basis option =
  let b =
    Atom_map.fold
      (fun a v acc ->
        match (acc, a, v) with
        | Some basis, Aeq f, true -> basis_add basis f
        | _ -> acc)
      asm (Some [])
  in
  match b with
  | None -> None
  | Some basis ->
      let contradicted =
        Atom_map.exists
          (fun a v ->
            match (a, v) with
            | Aeq f, false -> Affine.const_value (reduce basis f) = Some 0
            | _ -> false)
          asm
      in
      if contradicted then None else Some basis

type obase = Obj of Affine.sym | Opaque | Nobase | Mixed

let is_addr_symbol ctx = function
  | Affine.Sglobal _ | Affine.Sframe -> true
  | Affine.Sreg tid -> (
      match Hashtbl.find_opt ctx.by_tid tid with
      | Some { node = Param r; _ } -> ctx.is_addr_param r
      | _ -> false)

let base_of ctx (f : Affine.t) : obase =
  let addrs =
    Affine.Sym_map.filter (fun s _ -> is_addr_symbol ctx s) f.Affine.terms
  in
  match Affine.Sym_map.bindings addrs with
  | [] -> Nobase
  | [ (s, 1) ] -> (
      match s with
      | Affine.Sglobal _ | Affine.Sframe -> Obj s
      | Affine.Sreg _ -> Opaque)
  | _ -> Mixed

(* ------------------------------------------------------------------ *)
(* Per-path state *)

type path = {
  ctx : ctx;
  asm : bool Atom_map.t;
  basis : basis;
      (* echelon span of the assumed-true [Aeq] atoms; [basis_of_asm]
         guarantees consistency with the assumed-false ones *)
  mutable residuals : (term * term) list;
      (* (address, load term) of reads that fell through to the initial
         memory on this path, unified up to decided address equality *)
}

let decide_eq (st : path) (a : term) (b : term) : bool =
  if a.tid = b.tid then true
  else
    let fa = aff_term st.ctx a and fb = aff_term st.ctx b in
    match norm_eq (reduce st.basis (Affine.sub fa fb)) with
    | `Decided v -> v
    | `Atom atom -> (
        match (base_of st.ctx fa, base_of st.ctx fb) with
        | Obj o1, Obj o2 when o1 <> o2 -> false
        | _ -> (
            match Atom_map.find_opt atom st.asm with
            | Some v -> v
            | None -> raise (Need_atom atom)))

let rec is_boolish (t : term) =
  match t.node with
  | Const (Value.Int (0 | 1)) -> true
  | Const _ -> false
  | App ((Opcode.Icmp _ | Opcode.Fcmp _ | Opcode.Not), _) -> true
  | App (Opcode.Ibin (Opcode.And | Opcode.Or), [ a; b ]) ->
      is_boolish a && is_boolish b
  | _ -> false

let rec truth (st : path) (t : term) : bool =
  match t.node with
  | Const v -> Value.is_true v
  | App (Opcode.Icmp Opcode.Eq, [ a; b ]) -> decide_eq st a b
  | App (Opcode.Icmp Opcode.Ne, [ a; b ]) -> not (decide_eq st a b)
  | App (Opcode.Not, [ a ]) -> not (truth st a)
  | App (Opcode.Ibin Opcode.Or, [ a; b ]) ->
      (* x lor y is non-zero iff either operand is, for all integers *)
      truth st a || truth st b
  | App (Opcode.Ibin Opcode.And, [ a; b ]) when is_boolish a && is_boolish b ->
      truth st a && truth st b
  | App (Opcode.Icmp op, [ a; b ]) -> (
      let d =
        reduce st.basis (Affine.sub (aff_term st.ctx a) (aff_term st.ctx b))
      in
      match Affine.const_value d with
      | Some c -> (
          match op with
          | Opcode.Lt -> c < 0
          | Opcode.Le -> c <= 0
          | Opcode.Gt -> c > 0
          | Opcode.Ge -> c >= 0
          | Opcode.Eq | Opcode.Ne -> assert false)
      | None -> lookup_truth st t)
  | _ -> lookup_truth st t

and lookup_truth st t =
  match Atom_map.find_opt (Atruth t.tid) st.asm with
  | Some v -> v
  | None -> raise (Need_atom (Atruth t.tid))

(* Read [a] from [m]: walk the store chain deciding each address
   compare (splitting when undecidable), and canonicalize residual
   reads of the initial memory through the per-path table so
   decided-equal addresses share one load term — this is what unifies a
   WAR compensation load with the original load it stands in for. *)
let resolve_load (st : path) (m : mem) (a : term) : term =
  let rec walk m =
    match m.mnode with
    | Store { prev; addr; value } ->
        if decide_eq st addr a then value else walk prev
    | Init -> (
        match
          List.find_opt (fun (a0, _) -> decide_eq st a0 a) st.residuals
        with
        | Some (_, t) -> t
        | None ->
            let t = load_term st.ctx init_mem a in
            st.residuals <- (a, t) :: st.residuals;
            t)
  in
  walk m

(* ------------------------------------------------------------------ *)
(* Tree execution *)

type observable =
  | Ojump of { target : int; args : term list }
  | Ocall of {
      callee : string;
      call_args : term list;
      ret : Reg.t option;
      return_to : int;
      cont_args : term list;
    }
  | Oreturn of term option

type run = { obs : observable; mem : mem }

let exec (st : path) (tree : Tree.t) : run =
  let env = Hashtbl.create 64 in
  let lookup r =
    match Hashtbl.find_opt env r with Some t -> t | None -> param st.ctx r
  in
  let bind r t = Hashtbl.replace env r t in
  let mem = ref init_mem in
  Array.iter
    (fun (insn : Insn.t) ->
      match insn.op with
      | Opcode.Store ->
          let committed =
            match insn.guard with
            | None -> true
            | Some { greg; positive } ->
                let b = truth st (lookup greg) in
                if positive then b else not b
          in
          if committed then
            let addr = lookup (Insn.addr insn) in
            let value = lookup (Insn.store_value insn) in
            mem := store st.ctx !mem ~addr ~value
      | Opcode.Load -> (
          let v = resolve_load st !mem (lookup (Insn.addr insn)) in
          match insn.dst with Some d -> bind d v | None -> ())
      | Opcode.Select -> (
          match (insn.dst, insn.srcs) with
          | Some d, [ p; a; b ] ->
              bind d (if truth st (lookup p) then lookup a else lookup b)
          | _ -> raise (Unsupported "malformed select"))
      | op -> (
          match insn.dst with
          | None -> ()
          | Some d -> bind d (app st.ctx op (List.map lookup insn.srcs))))
    tree.insns;
  let n = Array.length tree.exits in
  let rec taken i =
    if i >= n - 1 then i
    else
      match tree.exits.(i).Tree.xguard with
      | None -> i
      | Some { greg; positive } ->
          let b = truth st (lookup greg) in
          if (if positive then b else not b) then i else taken (i + 1)
  in
  let idx = taken 0 in
  let e = tree.exits.(idx) in
  let obs =
    match e.Tree.kind with
    | Tree.Jump { target; args } ->
        Ojump { target; args = List.map lookup args }
    | Tree.Call { callee; call_args; ret; return_to; cont_args } ->
        Ocall
          {
            callee;
            call_args = List.map lookup call_args;
            ret;
            return_to;
            cont_args = List.map lookup cont_args;
          }
    | Tree.Return { value } -> Oreturn (Option.map lookup value)
  in
  { obs; mem = !mem }

(* ------------------------------------------------------------------ *)
(* Path comparison *)

(* Value equality never splits: two terms are equal when their affine
   difference is zero, or when the path already assumed the equality
   atom (a split made while deciding a branch or an address) — asking
   for a fresh split here would manufacture "values differ" paths that
   no concrete run distinguishes. *)
let equal_value (st : path) (a : term) (b : term) =
  a.tid = b.tid
  ||
  let d = Affine.sub (aff_term st.ctx a) (aff_term st.ctx b) in
  match norm_eq (reduce st.basis d) with
  | `Decided v -> v
  | `Atom atom -> Atom_map.find_opt atom st.asm = Some true

(* Last-write-wins memory classes: the final value per decided address
   class of committed stores, oldest store first so overwrites land on
   the class of the first store to that address. *)
let mem_classes (st : path) (m : mem) : (term * term) list =
  let rec chain acc m =
    match m.mnode with
    | Init -> acc
    | Store { prev; addr; value } -> chain ((addr, value) :: acc) prev
  in
  let stores = chain [] m in
  List.fold_left
    (fun classes (a, v) ->
      let rec upd = function
        | [] -> [ (a, v) ]
        | (a0, _) :: rest when decide_eq st a0 a -> (a0, v) :: rest
        | c :: rest -> c :: upd rest
      in
      upd classes)
    [] stores

let compare_values st what la lb =
  if List.length la <> List.length lb then
    Some (Printf.sprintf "%s: arity differs" what)
  else
    let rec go i = function
      | [], [] -> None
      | a :: ra, b :: rb ->
          if equal_value st a b then go (i + 1) (ra, rb)
          else
            Some
              (Fmt.str "@[%s %d differs:@ %a@ vs %a@]" what i pp_term a
                 pp_term b)
      | _ -> assert false
    in
    go 0 (la, lb)

let compare_obs st (a : run) (b : run) : string option =
  match (a.obs, b.obs) with
  | Ojump ja, Ojump jb ->
      if ja.target <> jb.target then
        Some
          (Printf.sprintf "taken exits jump to different trees: %d vs %d"
             ja.target jb.target)
      else compare_values st "jump argument" ja.args jb.args
  | Ocall ca, Ocall cb ->
      if ca.callee <> cb.callee then
        Some
          (Printf.sprintf "taken exits call different functions: %s vs %s"
             ca.callee cb.callee)
      else if ca.return_to <> cb.return_to then
        Some "taken exits return to different trees"
      else if ca.ret <> cb.ret then
        Some "taken exits bind the return value to different registers"
      else (
        match compare_values st "call argument" ca.call_args cb.call_args with
        | Some d -> Some d
        | None ->
            compare_values st "continuation argument" ca.cont_args cb.cont_args)
  | Oreturn ra, Oreturn rb -> (
      match (ra, rb) with
      | None, None -> None
      | Some x, Some y ->
          if equal_value st x y then None
          else
            Some
              (Fmt.str "@[return values differ:@ %a@ vs %a@]" pp_term x
                 pp_term y)
      | _ -> Some "one exit returns a value, the other does not")
  | _ -> Some "taken exits have different kinds"

let compare_classes st ca cb : string option =
  let rec missing side xs ys =
    match xs with
    | [] -> None
    | (a, v) :: rest -> (
        match List.find_opt (fun (b, _) -> decide_eq st b a) ys with
        | None ->
            Some
              (Fmt.str "@[%s store at %a@ has no counterpart@]" side pp_term a)
        | Some (_, w) ->
            if equal_value st v w then missing side rest ys
            else
              Some
                (Fmt.str "@[values stored at %a differ:@ %a@ vs %a@]" pp_term
                   a pp_term v pp_term w))
  in
  match missing "original" ca cb with
  | Some d -> Some d
  | None -> missing "transformed" cb ca

(* ------------------------------------------------------------------ *)
(* Exploration *)

type stats = { paths : int; splits : int; terms : int }
type digests = { exit_digest : string; store_digest : string }

type outcome =
  | Equivalent
  | Mismatch of { assumptions : string list; detail : string }
  | Overflow of int
  | Unmodelled of string

let pp_atom ppf = function
  | Aeq f -> Fmt.pf ppf "0 = %a" Affine.pp f
  | Atruth tid -> Fmt.pf ppf "t%d" tid

let render_assumptions asm =
  List.map
    (fun (a, v) -> Fmt.str "%s%a" (if v then "" else "!") pp_atom a)
    (Atom_map.bindings asm)

let render_obs buf (r : run) =
  Buffer.add_string buf
    (match r.obs with
    | Ojump { target; args } ->
        Printf.sprintf "jump %d (%s)" target
          (String.concat "," (List.map (fun t -> string_of_int t.tid) args))
    | Ocall { callee; call_args; ret; return_to; cont_args } ->
        Printf.sprintf "call %s (%s) ret=%s to %d (%s)" callee
          (String.concat ","
             (List.map (fun t -> string_of_int t.tid) call_args))
          (match ret with None -> "-" | Some r -> string_of_int r)
          return_to
          (String.concat ","
             (List.map (fun t -> string_of_int t.tid) cont_args))
    | Oreturn None -> "return"
    | Oreturn (Some t) -> Printf.sprintf "return %d" t.tid)

let render_classes buf classes =
  List.iter
    (fun (a, v) -> Buffer.add_string buf (Printf.sprintf "[%d]=%d;" a.tid v.tid))
    classes

exception Too_many_paths

(* Check one fully-split path; raises [Need_atom] when a new split is
   required.  Recording into the digest buffers happens only after all
   raising work is done, so re-explored prefixes never record twice. *)
let check_path st ~before ~after ~exit_buf ~store_buf : string option =
  let ra = exec st before in
  let rb = exec st after in
  let ca = mem_classes st ra.mem in
  let cb = mem_classes st rb.mem in
  let result =
    match compare_obs st ra rb with
    | Some d -> Some d
    | None -> compare_classes st ca cb
  in
  let prefix = String.concat " & " (render_assumptions st.asm) in
  Buffer.add_string exit_buf ("{" ^ prefix ^ "} ");
  render_obs exit_buf ra;
  Buffer.add_char exit_buf '\n';
  Buffer.add_string store_buf ("{" ^ prefix ^ "} ");
  render_classes store_buf ca;
  Buffer.add_char store_buf '\n';
  result

let explore ?(max_paths = 4096) ~is_addr_param ~(before : Tree.t)
    ~(after : Tree.t) () : outcome * stats * digests =
  let ctx = create ~is_addr_param in
  let exit_buf = Buffer.create 256 and store_buf = Buffer.create 256 in
  let paths = ref 0 and splits = ref 0 in
  let found = ref None in
  let rec go asm =
    if !found <> None then ()
    else if !paths >= max_paths then raise Too_many_paths
    else
      match basis_of_asm asm with
      | None -> () (* infeasible assumption set: no concrete run reaches it *)
      | Some basis -> (
          let st = { ctx; asm; basis; residuals = [] } in
          match check_path st ~before ~after ~exit_buf ~store_buf with
          | None -> incr paths
          | Some detail ->
              incr paths;
              found := Some (render_assumptions asm, detail)
          | exception Need_atom a ->
              incr splits;
              go (Atom_map.add a true asm);
              go (Atom_map.add a false asm))
  in
  let finish outcome =
    let stats = { paths = !paths; splits = !splits; terms = ctx.next_tid } in
    let digests =
      {
        exit_digest = Digest.to_hex (Digest.string (Buffer.contents exit_buf));
        store_digest =
          Digest.to_hex (Digest.string (Buffer.contents store_buf));
      }
    in
    (outcome, stats, digests)
  in
  match go Atom_map.empty with
  | () ->
      finish
        (match !found with
        | None -> Equivalent
        | Some (assumptions, detail) -> Mismatch { assumptions; detail })
  | exception Too_many_paths -> finish (Overflow !paths)
  | exception Unsupported msg -> finish (Unmodelled msg)
