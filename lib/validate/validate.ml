(** Translation validation of single SpD applications.

    [check_trees] proves (or refutes, or gives up on) the claim that a
    transformed tree and the tree it was derived from have the same
    sequential observable behaviour: the taken exit, the live-out
    values it carries, and the final committed store state, on every
    path — in particular on both sides of the speculated alias
    predicate.  [check_application] wraps it for the
    {!Spd_core.Heuristic} checker hook and produces the ledger row the
    harness caches and serializes as [spd-validate/1]. *)

open Spd_ir
module Heuristic = Spd_core.Heuristic

type stats = Symexec.stats = { paths : int; splits : int; terms : int }

type report = {
  func : string;
  tree_id : int;
  kind : Memdep.kind;
  arc : int * int;
  verdict : Verdict.t;
  stats : stats;
  exit_digest : string;
      (** digest of the original tree's per-path taken-exit behaviour *)
  store_digest : string;
      (** digest of the original tree's per-path committed-store classes *)
  time_ms : float;
      (** wall-clock of the first computation; cached with the row and
          reported by the pretty renderer only — the JSON document must
          be a pure function of its inputs *)
}

let default_max_paths = 4096
let default_samples = 64

let check_trees ?(max_paths = default_max_paths) ?(samples = default_samples)
    ~(before : Tree.t) ~(after : Tree.t) () :
    Verdict.t * stats * Symexec.digests =
  let is_addr_param r =
    Reg.Set.mem r before.Tree.addr_params
    || Reg.Set.mem r after.Tree.addr_params
  in
  let outcome, stats, digests =
    Symexec.explore ~max_paths ~is_addr_param ~before ~after ()
  in
  let verdict =
    match outcome with
    | Symexec.Equivalent -> Verdict.Proved
    | Symexec.Overflow n -> Verdict.Unknown (Verdict.Split_overflow n)
    | Symexec.Unmodelled msg -> Verdict.Unknown (Verdict.Unsupported msg)
    | Symexec.Mismatch { assumptions; detail } -> (
        (* a refutation must concretize: hunt for a diverging valuation *)
        let rec search seed =
          if seed >= samples then None
          else
            match Concrete.divergence ~seed ~before ~after with
            | Some d -> Some (seed, d)
            | None -> search (seed + 1)
        in
        match search 0 with
        | Some (seed, d) ->
            Verdict.Refuted
              {
                seed;
                inputs = Concrete.inputs_of_seed ~seed ~before ~after;
                detail = d;
              }
        | None ->
            let where =
              if assumptions = [] then ""
              else " under " ^ String.concat " & " assumptions
            in
            Verdict.Unknown (Verdict.No_witness (detail ^ where)))
  in
  (verdict, stats, digests)

let check_application ?max_paths ?samples ~func ~(before : Tree.t)
    (app : Heuristic.application) (after : Tree.t) : report =
  let t0 = Unix.gettimeofday () in
  let verdict, stats, digests =
    check_trees ?max_paths ?samples ~before ~after ()
  in
  {
    func;
    tree_id = app.Heuristic.tree_id;
    kind = app.Heuristic.kind;
    arc = app.Heuristic.arc;
    verdict;
    stats;
    exit_digest = digests.Symexec.exit_digest;
    store_digest = digests.Symexec.store_digest;
    time_ms = (Unix.gettimeofday () -. t0) *. 1000.;
  }

(** Counts of (proved, refuted, unknown) verdicts in a ledger. *)
let tally (reports : report list) =
  List.fold_left
    (fun (p, r, u) rep ->
      match rep.verdict with
      | Verdict.Proved -> (p + 1, r, u)
      | Verdict.Refuted _ -> (p, r + 1, u)
      | Verdict.Unknown _ -> (p, r, u + 1))
    (0, 0, 0) reports

(** Re-run the seeded concrete valuation of a counterexample; exposed
    so tests can confirm that a [Refuted] verdict concretizes to a real
    divergence. *)
let concrete_divergence = Concrete.divergence
