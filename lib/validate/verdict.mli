(** Structured verdicts of the per-application translation validator.

    [Proved] means every explored symbolic path of the original and the
    transformed tree agreed on the taken exit, its live-out values and
    the committed store state.  [Refuted] always carries a concrete
    counterexample that was re-executed and observed to diverge.
    Anything the checker cannot settle either way is [Unknown]. *)

type reason =
  | Split_overflow of int
      (** exploration exceeded the path budget; the argument is the
          number of paths explored before giving up *)
  | Unsupported of string
      (** the trees use a construct the symbolic evaluator does not
          model (e.g. a constant division by zero under folding) *)
  | No_witness of string
      (** a symbolic mismatch was found but no concrete valuation
          reproduced it; the payload describes the symbolic mismatch *)

type counterexample = {
  seed : int;  (** valuation seed; replays deterministically *)
  inputs : (Spd_ir.Reg.t * Spd_ir.Value.t) list;
      (** concrete tree parameter values *)
  detail : string;  (** which observable diverged, rendered *)
}

type t = Proved | Refuted of counterexample | Unknown of reason

(** Stable machine-readable name (["proved"], ["refuted"],
    ["unknown"]), used by the [spd-validate/1] schema and the
    [spd.validate.*] counters. *)
val name : t -> string

(** One-line human rendering of an [Unknown] reason. *)
val reason_text : reason -> string

val pp : Format.formatter -> t -> unit
