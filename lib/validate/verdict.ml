(** Structured verdicts of the per-application translation validator.

    A verdict is deliberately three-valued.  [Proved] is a claim: every
    explored symbolic path of the original and the transformed tree
    agreed on the taken exit, its live-out values and the committed
    store state.  [Refuted] is also a claim, and a stronger one: it
    always carries a concrete counterexample that was *re-executed* and
    observed to diverge, so a refutation can never be an artefact of
    symbolic imprecision.  Everything the checker cannot settle either
    way — case-split overflow, a construct outside the affine fragment,
    or a symbolic mismatch for which no concrete witness was found —
    is [Unknown], never silently promoted to either side. *)

open Spd_ir

type reason =
  | Split_overflow of int
      (** exploration exceeded the path budget; the argument is the
          number of paths explored before giving up *)
  | Unsupported of string
      (** the trees use a construct the symbolic evaluator does not
          model (e.g. a constant division by zero under folding) *)
  | No_witness of string
      (** a symbolic mismatch was found but no concrete valuation
          reproduced it; the payload describes the symbolic mismatch *)

type counterexample = {
  seed : int;  (** valuation seed; replays deterministically *)
  inputs : (Reg.t * Value.t) list;  (** concrete tree parameter values *)
  detail : string;  (** which observable diverged, rendered *)
}

type t = Proved | Refuted of counterexample | Unknown of reason

(** Stable machine-readable names, used by the [spd-validate/1]
    schema and the [spd.validate.*] counters. *)
let name = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Unknown _ -> "unknown"

let reason_text = function
  | Split_overflow n -> Printf.sprintf "case-split overflow after %d paths" n
  | Unsupported what -> Printf.sprintf "unsupported construct: %s" what
  | No_witness what -> Printf.sprintf "symbolic mismatch without witness: %s" what

let pp ppf = function
  | Proved -> Fmt.string ppf "proved"
  | Refuted cex ->
      Fmt.pf ppf "refuted (seed %d: %s)" cex.seed cex.detail
  | Unknown r -> Fmt.pf ppf "unknown (%s)" (reason_text r)
