(** Concrete single-tree execution for witness checking.

    Runs one decision tree under the sequential semantics on a fully
    concrete valuation: every pure operation is evaluated, stores
    commit when their guard holds, and the first exit whose guard holds
    is taken.  Globals are laid out at fixed synthetic bases, the
    activation frame at another, and address parameters draw from a
    seeded pool that deliberately re-uses earlier addresses about half
    the time — concrete runs must exercise both the alias and the
    no-alias outcome of a speculated predicate.

    This evaluator exists so that a symbolic mismatch is only ever
    reported as [Refuted] after a concrete valuation has been observed
    to diverge, and so the property tests can cross-check [Proved]
    verdicts against real executions. *)

open Spd_ir

type obs = {
  exit_render : string;  (** taken exit with its concrete live-out values *)
  writes : (int * Value.t) list;  (** written cells, sorted by address *)
}

type outcome = Finished of obs | Trap of string

type case = {
  inputs : (Reg.t * Value.t) list;
  global_base : string -> int;
  frame_base : int;
  init_mem : int -> Value.t;
}

let run ~(param_value : Reg.t -> Value.t) ~(global_base : string -> int)
    ~(frame_base : int) ~(init_mem : int -> Value.t) (tree : Tree.t) :
    outcome =
  let env = Hashtbl.create 64 in
  let lookup r =
    match Hashtbl.find_opt env r with Some v -> v | None -> param_value r
  in
  let bind r v = Hashtbl.replace env r v in
  let mem = Hashtbl.create 64 in
  let read a =
    match Hashtbl.find_opt mem a with Some v -> v | None -> init_mem a
  in
  let guard_holds = function
    | None -> true
    | Some { Insn.greg; positive } ->
        let b = Value.is_true (lookup greg) in
        if positive then b else not b
  in
  try
    Array.iter
      (fun (insn : Insn.t) ->
        match insn.op with
        | Opcode.Store ->
            if guard_holds insn.guard then
              Hashtbl.replace mem
                (Value.to_int (lookup (Insn.addr insn)))
                (lookup (Insn.store_value insn))
        | Opcode.Load -> (
            let v = read (Value.to_int (lookup (Insn.addr insn))) in
            match insn.dst with Some d -> bind d v | None -> ())
        | Opcode.Addrof (Opcode.Global g) -> (
            match insn.dst with
            | Some d -> bind d (Value.Int (global_base g))
            | None -> ())
        | Opcode.Addrof (Opcode.Frame off) -> (
            match insn.dst with
            | Some d -> bind d (Value.Int (frame_base + off))
            | None -> ())
        | op -> (
            match insn.dst with
            | None -> ()
            | Some d ->
                bind d (Spd_sim.Eval.eval_pure op (List.map lookup insn.srcs))))
      tree.insns;
    let n = Array.length tree.exits in
    let rec taken i =
      if i >= n - 1 then i
      else
        match tree.exits.(i).Tree.xguard with
        | None -> i
        | Some { greg; positive } ->
            let b = Value.is_true (lookup greg) in
            if (if positive then b else not b) then i else taken (i + 1)
    in
    let e = tree.exits.(taken 0) in
    let exit_render =
      match e.Tree.kind with
      | Tree.Jump { target; args } ->
          Fmt.str "jump %d(%a)" target
            Fmt.(list ~sep:comma Value.pp)
            (List.map lookup args)
      | Tree.Call { callee; call_args; ret; return_to; cont_args } ->
          Fmt.str "call %s(%a) ret=%a to %d(%a)" callee
            Fmt.(list ~sep:comma Value.pp)
            (List.map lookup call_args)
            Fmt.(option ~none:(any "-") Reg.pp)
            ret return_to
            Fmt.(list ~sep:comma Value.pp)
            (List.map lookup cont_args)
      | Tree.Return { value } ->
          Fmt.str "return %a"
            Fmt.(option ~none:(any "-") Value.pp)
            (Option.map lookup value)
    in
    let writes =
      Hashtbl.fold (fun a v acc -> (a, v) :: acc) mem []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    Finished { exit_render; writes }
  with Spd_sim.Eval.Runtime_error msg -> Trap msg

(* ------------------------------------------------------------------ *)
(* Seeded valuations *)

let case_of_seed ~seed (before : Tree.t) (after : Tree.t) : case =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let globals =
    let tbl = Hashtbl.create 8 in
    let scan (t : Tree.t) =
      Array.iter
        (fun (i : Insn.t) ->
          match i.op with
          | Opcode.Addrof (Opcode.Global g) -> Hashtbl.replace tbl g ()
          | _ -> ())
        t.insns
    in
    scan before;
    scan after;
    List.sort String.compare (Hashtbl.fold (fun g () acc -> g :: acc) tbl [])
  in
  let gbase = List.mapi (fun i g -> (g, 0x1000 * (i + 1))) globals in
  let global_base g = match List.assoc_opt g gbase with Some b -> b | None -> 0x800 in
  let frame_base = 0x80000 in
  let arena = ref 0x100000 in
  let prev_addrs = ref [] in
  let fresh_addr () =
    match !prev_addrs with
    | _ :: _ when Random.State.bool rng ->
        (* re-use an earlier address parameter: the alias case *)
        List.nth !prev_addrs (Random.State.int rng (List.length !prev_addrs))
    | _ -> (
        match Random.State.int rng 3 with
        | 0 when gbase <> [] ->
            let _, b =
              List.nth gbase (Random.State.int rng (List.length gbase))
            in
            b + Random.State.int rng 8
        | 1 -> frame_base + Random.State.int rng 8
        | _ ->
            arena := !arena + 64;
            !arena + Random.State.int rng 4)
  in
  let is_addr r =
    Reg.Set.mem r before.Tree.addr_params
    || Reg.Set.mem r after.Tree.addr_params
  in
  let inputs =
    List.map
      (fun r ->
        let v =
          if is_addr r then (
            let a = fresh_addr () in
            prev_addrs := a :: !prev_addrs;
            a)
          else Random.State.int rng 33 - 16
        in
        (r, Value.Int v))
      before.Tree.params
  in
  let init_mem a =
    Value.Int (((a * 2654435761 + (seed * 0x9e3779b9)) land 0xffff mod 41) - 20)
  in
  { inputs; global_base; frame_base; init_mem }

let compare_runs ~init_mem (a : outcome) (b : outcome) : string option =
  match (a, b) with
  | Trap ma, Trap mb ->
      if ma = mb then None
      else Some (Printf.sprintf "different traps: %s vs %s" ma mb)
  | Trap m, Finished _ ->
      Some (Printf.sprintf "original traps (%s), transformed finishes" m)
  | Finished _, Trap m ->
      Some (Printf.sprintf "transformed traps (%s), original finishes" m)
  | Finished oa, Finished ob ->
      if oa.exit_render <> ob.exit_render then
        Some
          (Printf.sprintf "taken exit differs: %s vs %s" oa.exit_render
             ob.exit_render)
      else
        let addrs =
          List.sort_uniq Int.compare
            (List.map fst oa.writes @ List.map fst ob.writes)
        in
        let look ws a =
          match List.assoc_opt a ws with Some v -> v | None -> init_mem a
        in
        let rec go = function
          | [] -> None
          | a :: rest ->
              let va = look oa.writes a and vb = look ob.writes a in
              if Value.equal va vb then go rest
              else
                Some
                  (Fmt.str "memory at %d differs: %a vs %a" a Value.pp va
                     Value.pp vb)
        in
        go addrs

(** [divergence ~seed ~before ~after] runs both trees on the seeded
    valuation and returns a rendering of the first observable
    difference, or [None] when the runs agree. *)
let divergence ~seed ~(before : Tree.t) ~(after : Tree.t) : string option =
  let c = case_of_seed ~seed before after in
  let values = Reg.Map.of_seq (List.to_seq c.inputs) in
  let param_value r =
    match Reg.Map.find_opt r values with Some v -> v | None -> Value.Int 0
  in
  let go t =
    run ~param_value ~global_base:c.global_base ~frame_base:c.frame_base
      ~init_mem:c.init_mem t
  in
  compare_runs ~init_mem:c.init_mem (go before) (go after)

(** The concrete parameter values the seeded valuation assigns. *)
let inputs_of_seed ~seed ~(before : Tree.t) ~(after : Tree.t) :
    (Reg.t * Value.t) list =
  (case_of_seed ~seed before after).inputs
