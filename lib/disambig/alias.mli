(** The static alias oracle.

    Combines the distinct-object rule, the GCD test and the Banerjee
    inequalities over symbolic affine address forms, answering for a pair
    of addresses exactly the three-way question of the paper's section 2.2:

    - [No]: never the same address;
    - [Must]: always the same address (the difference is identically 0);
    - [Unknown p]: possibly aliased, with an estimated alias probability
      when the subscript equation admits one. *)

module Affine = Spd_analysis.Affine
type answer = No | Must | Unknown of float option
val equal_answer : answer -> answer -> bool
val pp_answer : Format.formatter -> answer -> unit

(** Compare two affine address forms within a tree. *)
val query_forms : Spd_ir.Tree.t -> Affine.t -> Affine.t -> answer

(** Like {!query_forms}, but when the answer is [Unknown] also report
    which test left the pair ambiguous (the decision ledger's
    provenance): [Opaque_base] on the distinct-base fallthrough,
    [Banerjee_inconclusive] when neither GCD nor the Banerjee bounds
    could decide, [Solution_counted] when an alias probability was
    estimated by counting subscript solutions. *)
val query_forms_why :
  Spd_ir.Tree.t ->
  Affine.t -> Affine.t -> answer * Spd_ir.Memdep.ambiguity option

(** Compare the addresses of two memory instructions of [tree] under the
    affine environment [env] (from {!Spd_analysis.Affine.analyze}). *)
val query :
  Spd_ir.Tree.t ->
  Affine.t Spd_ir.Reg.Map.t -> Spd_ir.Insn.t -> Spd_ir.Insn.t -> answer

(** {!query} with the ambiguity provenance of {!query_forms_why}. *)
val query_why :
  Spd_ir.Tree.t ->
  Affine.t Spd_ir.Reg.Map.t ->
  Spd_ir.Insn.t ->
  Spd_ir.Insn.t -> answer * Spd_ir.Memdep.ambiguity option
