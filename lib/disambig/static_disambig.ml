(** The STATIC disambiguator: refine every memory dependence arc of a
    program using the {!Alias} oracle (GCD/Banerjee over affine forms).

    Arcs proven independent are marked [Removed By_static]; arcs proven
    always-aliasing become [Must]; the rest stay [Ambiguous], annotated
    with an alias probability when the oracle can compute one. *)

open Spd_ir
module Affine = Spd_analysis.Affine

type stats = {
  mutable proven_no : int;
  mutable proven_must : int;
  mutable unknown : int;
}

let refine_tree ?stats (tree : Tree.t) : Tree.t =
  let env = Affine.analyze tree in
  let bump f =
    match stats with None -> () | Some s -> f s
  in
  let arcs =
    List.map
      (fun (arc : Memdep.t) ->
        match arc.status with
        | Memdep.Removed _ | Memdep.Must -> arc
        | Memdep.Ambiguous _ -> (
            let a = Tree.insn_by_id tree arc.src
            and b = Tree.insn_by_id tree arc.dst in
            match Alias.query_why tree env a b with
            | Alias.No, _ ->
                bump (fun s -> s.proven_no <- s.proven_no + 1);
                { arc with status = Memdep.Removed Memdep.By_static }
            | Alias.Must, _ ->
                bump (fun s -> s.proven_must <- s.proven_must + 1);
                { arc with status = Memdep.Must }
            | Alias.Unknown p, why ->
                bump (fun s -> s.unknown <- s.unknown + 1);
                { arc with status = Memdep.Ambiguous p; why }))
      tree.arcs
  in
  { tree with arcs }

let run ?stats (prog : Prog.t) : Prog.t =
  Prog.map_trees (fun _ t -> refine_tree ?stats t) prog

(** The PERFECT disambiguator lives here too: given a profile from an
    instrumented run, remove every arc whose references never dynamically
    hit the same address (the paper's "superfluous arcs").  As in the
    paper this is an optimistic oracle — its answers are specific to the
    profiled input. *)
let perfect ~(profile : Spd_sim.Profile.t) (prog : Prog.t) : Prog.t =
  Prog.map_trees
    (fun func (tree : Tree.t) ->
      let arcs =
        List.map
          (fun (arc : Memdep.t) ->
            match arc.status with
            | Memdep.Removed _ -> arc
            | Memdep.Must | Memdep.Ambiguous _ ->
                if
                  Spd_sim.Profile.superfluous profile ~func ~tree_id:tree.id
                    ~src:arc.src ~dst:arc.dst
                then { arc with status = Memdep.Removed Memdep.By_perfect }
                else arc)
          tree.arcs
      in
      { tree with arcs })
    prog
