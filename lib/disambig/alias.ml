(** The static alias oracle.

    Combines the distinct-object rule, the GCD test and the Banerjee
    inequalities over symbolic affine address forms, answering for a pair
    of addresses exactly the three-way question of the paper's section 2.2:

    - [No]: never the same address;
    - [Must]: always the same address (the difference is identically 0);
    - [Unknown p]: possibly aliased, with an estimated alias probability
      when the subscript equation admits one. *)

open Spd_ir
module Affine = Spd_analysis.Affine

type answer =
  | No
  | Must
  | Unknown of float option

let equal_answer a b =
  match (a, b) with
  | No, No | Must, Must -> true
  | Unknown x, Unknown y -> x = y
  | _ -> false

let pp_answer ppf = function
  | No -> Fmt.string ppf "no"
  | Must -> Fmt.string ppf "must"
  | Unknown None -> Fmt.string ppf "unknown"
  | Unknown (Some p) -> Fmt.pf ppf "unknown(p=%.4f)" p

(** Compare two affine address forms within a tree; when the answer is
    [Unknown], also say which test left the pair ambiguous. *)
let query_forms_why (tree : Tree.t) (f1 : Affine.t) (f2 : Affine.t) :
    answer * Memdep.ambiguity option =
  let addr1, int1 = Affine.split_base tree f1 in
  let addr2, int2 = Affine.split_base tree f2 in
  if Affine.Sym_map.equal Int.equal addr1 addr2 then begin
    (* same object (or same pointer expression): compare offsets *)
    let diff = Affine.sub int1 int2 in
    match Affine.const_value diff with
    | Some 0 -> (Must, None)
    | Some _ -> (No, None)
    | None ->
        let coeffs =
          Affine.Sym_map.bindings diff.terms |> List.map snd
        in
        if not (Gcd_test.may_have_solution ~coeffs ~const:diff.const) then
          (No, None)
        else if Banerjee.proves_independent tree diff then (No, None)
        else (
          match Banerjee.single_symbol_probability tree diff with
          | Some `No -> (No, None)
          | Some (`Prob p) ->
              (Unknown (Some p), Some Memdep.Solution_counted)
          | None -> (Unknown None, Some Memdep.Banerjee_inconclusive))
  end
  else
    (* different address parts: distinct named objects never alias; any
       opaque pointer may point anywhere (the paper's hard cases) *)
    match (Affine.base_of tree f1, Affine.base_of tree f2) with
    | Affine.Known_object b1, Affine.Known_object b2
      when Affine.compare_sym b1 b2 <> 0 ->
        (No, None)
    | _ -> (Unknown None, Some Memdep.Opaque_base)

let query_forms tree f1 f2 : answer = fst (query_forms_why tree f1 f2)

(** Compare the addresses of two memory instructions of [tree] under the
    affine environment [env] (from {!Spd_analysis.Affine.analyze}). *)
let query_why tree env (a : Insn.t) (b : Insn.t) :
    answer * Memdep.ambiguity option =
  query_forms_why tree
    (Affine.form_of env (Insn.addr a))
    (Affine.form_of env (Insn.addr b))

let query tree env a b : answer = fst (query_why tree env a b)
