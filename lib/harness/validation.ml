(** Translation-validation introspection ([spd validate]).

    For one workload at one memory latency, reads the per-application
    translation-validation ledger through the engine's single request
    path ({!Engine.Query.Spd_verdicts}) and renders it as data: one row
    per SpD application with its verdict, the exploration statistics
    and the symbolic exit/store digests of the original tree; plus a
    program-wide summary with the verdict tally.

    The same document backs the [spd validate] CLI, the daemon's
    [validate] method and the [spd report spd-validate] rollup, so the
    three surfaces cannot drift apart: they all read the same memoized
    cell and serialize it with the same code.

    Determinism contract: the JSON document is a pure function of the
    workload and the configuration — wall-clock time is deliberately
    absent (the cached row carries it; only the pretty renderer shows
    it), so the serialized document is bit-identical across job counts
    and cold/warm caches, like [spd why]. *)

module Json = Spd_telemetry.Json
module V = Spd_validate.Validate
module Verdict = Spd_validate.Verdict
module Memdep = Spd_ir.Memdep
module W = Spd_workloads

let schema = "spd-validate/1"

type t = {
  workload : string;
  mem_latency : int;
  reports : V.report list;  (** the full ledger, in application order *)
}

(** Fetch the SPEC pipeline's validation ledger for [workload].  Raises
    [Invalid_argument] for an unknown workload name and
    {!Engine.Cell_failed} when the cell failed (in particular when a
    [Refuted] verdict failed the validated preparation). *)
let analyze ?(mem_latency = 2) session workload : t =
  ignore (W.Registry.by_name workload);
  let reports =
    Engine.Session.spd_verdicts session ~bench:workload ~latency:mem_latency
  in
  { workload; mem_latency; reports }

let selected ?fn ?tree (t : t) : V.report list =
  List.filter
    (fun (r : V.report) ->
      (match fn with Some f -> f = r.V.func | None -> true)
      && match tree with Some id -> id = r.V.tree_id | None -> true)
    t.reports

let kind_name = function
  | Memdep.Raw -> "raw"
  | Memdep.War -> "war"
  | Memdep.Waw -> "waw"

(* ------------------------------------------------------------------ *)
(* JSON *)

let counterexample_json (cx : Verdict.counterexample) : Json.t =
  Json.Obj
    [
      ("seed", Json.Int cx.Verdict.seed);
      ( "inputs",
        Json.Obj
          (List.map
             (fun (r, v) ->
               ( Fmt.str "%a" Spd_ir.Reg.pp r,
                 Json.String (Fmt.str "%a" Spd_ir.Value.pp v) ))
             cx.Verdict.inputs) );
      ("detail", Json.String cx.Verdict.detail);
    ]

let report_json (r : V.report) : Json.t =
  Json.Obj
    [
      ("src", Json.Int (fst r.V.arc));
      ("dst", Json.Int (snd r.V.arc));
      ("kind", Json.String (kind_name r.V.kind));
      ("verdict", Json.String (Verdict.name r.V.verdict));
      ( "reason",
        match r.V.verdict with
        | Verdict.Unknown reason ->
            Json.String (Verdict.reason_text reason)
        | Verdict.Proved | Verdict.Refuted _ -> Json.Null );
      ( "counterexample",
        match r.V.verdict with
        | Verdict.Refuted cx -> counterexample_json cx
        | Verdict.Proved | Verdict.Unknown _ -> Json.Null );
      ("paths", Json.Int r.V.stats.V.paths);
      ("splits", Json.Int r.V.stats.V.splits);
      ("terms", Json.Int r.V.stats.V.terms);
      ("exit_digest", Json.String r.V.exit_digest);
      ("store_digest", Json.String r.V.store_digest);
    ]

(** The per-workload [spd-validate/1] document: the verdict tally at
    the top, then one entry per SpD application grouped per tree.
    Filters narrow both forms consistently. *)
let to_json ?fn ?tree (t : t) : Json.t =
  let rs = selected ?fn ?tree t in
  let proved, refuted, unknown = V.tally rs in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("workload", Json.String t.workload);
      ("mem_latency", Json.Int t.mem_latency);
      ("applications", Json.Int (List.length rs));
      ("proved", Json.Int proved);
      ("refuted", Json.Int refuted);
      ("unknown", Json.Int unknown);
      ( "verdicts",
        Json.List
          (List.map
             (fun (r : V.report) ->
               match report_json r with
               | Json.Obj fields ->
                   Json.Obj
                     (("func", Json.String r.V.func)
                     :: ("tree", Json.Int r.V.tree_id)
                     :: fields)
               | j -> j)
             rs) );
    ]

(* ------------------------------------------------------------------ *)
(* Tables *)

let verdict_text (r : V.report) =
  match r.V.verdict with
  | Verdict.Proved -> "proved"
  | Verdict.Refuted cx ->
      Printf.sprintf "refuted (seed %d)" cx.Verdict.seed
  | Verdict.Unknown reason ->
      Printf.sprintf "unknown: %s" (Verdict.reason_text reason)

let verdicts_table (t : t) (rs : V.report list) : Table.t =
  Table.v
    ~id:(Printf.sprintf "validate.verdicts.%s" t.workload)
    ~title:
      (Printf.sprintf "SpD translation validation %s (%d-cycle memory)"
         t.workload t.mem_latency)
    ~notes:
      [
        "one row per SpD application the heuristic performed;";
        "proved: original and transformed tree agree on every symbolic";
        "path (taken exit, live-out values, committed stores)";
      ]
    ~label_header:"arc"
    ~columns:[ "func"; "tree"; "kind"; "verdict"; "paths"; "splits"; "ms" ]
    (List.map
       (fun (r : V.report) ->
         Table.row
           (Printf.sprintf "#%d->#%d" (fst r.V.arc) (snd r.V.arc))
           [
             Table.Text r.V.func;
             Table.Int r.V.tree_id;
             Table.Text (kind_name r.V.kind);
             Table.Text (verdict_text r);
             Table.Int r.V.stats.V.paths;
             Table.Int r.V.stats.V.splits;
             Table.Num r.V.time_ms;
           ])
       rs)

let summary_table (t : t) (rs : V.report list) : Table.t =
  let proved, refuted, unknown = V.tally rs in
  Table.v
    ~id:(Printf.sprintf "validate.summary.%s" t.workload)
    ~title:
      (Printf.sprintf "Validation summary %s (%d-cycle memory)" t.workload
         t.mem_latency)
    ~label_header:"verdict" ~columns:[ "count" ]
    [
      Table.row "applications" [ Table.Int (List.length rs) ];
      Table.row "proved" [ Table.Int proved ];
      Table.row "refuted" [ Table.Int refuted ];
      Table.row "unknown" [ Table.Int unknown ];
    ]

(** Every table of a validate run: the per-application verdict table,
    then the summary (over the same selection). *)
let tables ?fn ?tree (t : t) : Table.t list =
  let rs = selected ?fn ?tree t in
  [ verdicts_table t rs; summary_table t rs ]

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render ?fn ?tree (format : Artefact.format) ppf (t : t) =
  match format with
  | Artefact.Pretty -> List.iter (Table.pp ppf) (tables ?fn ?tree t)
  | Artefact.Json -> Fmt.pf ppf "%s@." (Json.to_string (to_json ?fn ?tree t))
  | Artefact.Csv ->
      Fmt.pf ppf "%s@." Table.csv_header;
      List.iter
        (fun tbl -> List.iter (Fmt.pf ppf "%s@.") (Table.to_csv_lines tbl))
        (tables ?fn ?tree t)

(* ------------------------------------------------------------------ *)
(* Grid certification ([spd report --validate]) *)

type certification = {
  cells : int;  (** grid cells certified (workloads × latencies) *)
  applications : int;
  proved : int;
  refuted : int;
  unknown : int;
  failed : (string * string) list;
      (** cells whose validated preparation failed: (cell key, error) —
          a [Refuted] verdict surfaces here, as [Validation_failed] *)
}

(** Certify every SpD application of the paper grid: for each built-in
    workload at each memory latency, fetch the validation ledger and
    tally the verdicts.  A refuted application fails its cell
    ({!Pipeline.Validation_failed}), so it appears in [failed] as well
    as making the certification unacceptable. *)
let certify ?(latencies = [ 2; 6 ]) session : certification =
  let grid =
    List.concat_map
      (fun bench -> List.map (fun lat -> (bench, lat)) latencies)
      W.Registry.names
  in
  let outcomes =
    Engine.Session.parallel_map session
      (fun (bench, latency) ->
        ( Printf.sprintf "%s/%d/SPEC/verdicts" bench latency,
          Engine.Session.submit session
            (Engine.Query.v ~bench ~latency Engine.Query.Spd_verdicts) ))
      grid
  in
  List.fold_left
    (fun acc (key, outcome) ->
      match Engine.to_verdicts outcome with
      | Engine.Ok rs ->
          let p, r, u = V.tally rs in
          {
            acc with
            cells = acc.cells + 1;
            applications = acc.applications + List.length rs;
            proved = acc.proved + p;
            refuted = acc.refuted + r;
            unknown = acc.unknown + u;
          }
      | Engine.Failed f ->
          {
            acc with
            cells = acc.cells + 1;
            failed =
              acc.failed @ [ (key, Printexc.to_string f.Engine.exn) ];
          })
    {
      cells = 0;
      applications = 0;
      proved = 0;
      refuted = 0;
      unknown = 0;
      failed = [];
    }
    outcomes

(** [true] iff the certification is acceptable: no refutation, no
    failed cell.  [Unknown] verdicts are tolerated (counted and
    reported). *)
let acceptable (c : certification) = c.refuted = 0 && c.failed = []

let pp_certification ppf (c : certification) =
  Fmt.pf ppf
    "translation validation: %d cells, %d applications — %d proved, %d \
     refuted, %d unknown"
    c.cells c.applications c.proved c.refuted c.unknown;
  List.iter
    (fun (key, err) -> Fmt.pf ppf "@.  FAILED %s: %s" key err)
    c.failed
