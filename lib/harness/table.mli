(** Structured report tables.

    Every artefact (paper table, figure, extension experiment) is built
    as data — a {!t} — and only then rendered, so the pretty printer,
    the JSON emitter and the CSV emitter all read the same values and
    cannot drift apart. *)

type cell =
  | Int of int
  | Num of float  (** plain number; pretty-printed with 3 decimals *)
  | Pct of float  (** a fraction; pretty-printed as [12.3%] *)
  | Text of string
  | Na  (** a failed grid cell: [n/a] / JSON [null] *)

type row = { label : string; cells : cell list }

type t = {
  id : string;  (** stable machine key, e.g. ["fig6_2.lat2"] *)
  title : string;
  notes : string list;  (** preamble lines under the title *)
  label_header : string;  (** header of the label column *)
  groups : (string * int) list;
      (** optional super-header: (group label, data columns spanned) *)
  columns : string list;
  rows : row list;
  footers : row list;
  bar_of : (row -> float option) option;
      (** pretty-only: per row, the signed fraction to draw as a bar *)
}

val v :
  ?notes:string list ->
  ?label_header:string ->
  ?groups:(string * int) list ->
  ?footers:row list ->
  ?bar_of:(row -> float option) ->
  id:string -> title:string -> columns:string list -> row list -> t

val row : string -> cell list -> row

(** The pretty cell rendering ([n/a] for {!Na}, [12.3%] for {!Pct} ...);
    exactly what {!pp} puts in the grid. *)
val cell_text : cell -> string

(** Generic fixed-width pretty rendering: title, notes, optional group
    header, header, rows, footers, with per-row ASCII bars when
    [bar_of] is set. *)
val pp : Format.formatter -> t -> unit

(** The table as JSON (render hints like [bar_of] excluded). *)
val to_json : t -> Spd_telemetry.Json.t

val csv_header : string

(** CSV long format, one [table,row,column,value] line per cell; no
    header line.  Floats carry full precision ([%.17g]); failed cells
    render as [n/a] — the same encoding {!cell_text} uses, so the CSV
    and pretty renderings agree and a reader can tell a failed cell
    from an empty one. *)
val to_csv_lines : t -> string list
